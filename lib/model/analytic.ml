type params = { achieved_bw_fraction : float; sync_cost_cycles : float }

let default_params = { achieved_bw_fraction = 0.62; sync_cost_cycles = 40.0 }

let add_params_fingerprint fp p =
  let module F = Gpp_cache.Fingerprint in
  F.add_float fp p.achieved_bw_fraction;
  F.add_float fp p.sync_cost_cycles

type bound = Memory_bound | Compute_bound | Latency_bound

type projection = {
  characteristics : Characteristics.t;
  occupancy : Occupancy.t;
  mwp : float;
  cwp : float;
  comp_cycles_per_warp : float;
  mem_cycles_per_warp : float;
  cycles : float;
  kernel_time : float;
  bound : bound;
}

let bound_name = function
  | Memory_bound -> "memory-bound"
  | Compute_bound -> "compute-bound"
  | Latency_bound -> "latency-bound"

let project ?(params = default_params) ~gpu (c : Characteristics.t) =
  let gpu : Gpp_arch.Gpu.t = gpu in
  let ( let* ) = Result.bind in
  let* () = Characteristics.validate ~gpu c in
  let* occ = Occupancy.of_characteristics ~gpu c in
  (* Per-warp instruction issue cost: every operation occupies the SM's
     issue pipeline for [issue_cycles]; divergence re-issues both branch
     paths; barriers add a fixed stall. *)
  let insts =
    c.flops_per_thread +. c.int_ops_per_thread +. c.load_insts_per_thread
    +. c.store_insts_per_thread
  in
  let comp_cycles =
    (insts *. gpu.issue_cycles *. c.divergence_factor)
    +. (c.syncs_per_thread *. params.sync_cost_cycles)
  in
  let mem_insts = Characteristics.mem_insts_per_thread c in
  let transactions = c.load_transactions_per_warp +. c.store_transactions_per_warp in
  let mem_latency = float_of_int gpu.dram_latency_cycles in
  let mem_cycles = mem_insts *. mem_latency in
  (* Work distribution over SMs: with fewer blocks than SMs only part of
     the device is busy; the busiest SM defines kernel time. *)
  let warps_per_block = Characteristics.warps_per_block ~gpu c in
  let active_sms = min gpu.sm_count c.grid_blocks in
  let blocks_on_busiest_sm =
    (c.grid_blocks + gpu.sm_count - 1) / gpu.sm_count |> float_of_int
  in
  let warps_on_busiest_sm = blocks_on_busiest_sm *. float_of_int warps_per_block in
  let n = Float.min (float_of_int occ.active_warps) warps_on_busiest_sm in
  let reps = warps_on_busiest_sm /. n in
  (* Bandwidth-limited memory warp parallelism: how many warps' worth of
     one memory period's traffic the SM's bandwidth share can service
     within one memory latency. *)
  let bytes_per_cycle_per_sm =
    gpu.dram_bandwidth *. params.achieved_bw_fraction
    /. (float_of_int active_sms *. gpu.clock_ghz *. 1e9)
  in
  let bytes_per_mem_period =
    if mem_insts > 0.0 then
      transactions /. mem_insts *. Characteristics.transaction_bytes ~gpu c
    else 0.0
  in
  let mwp_bw =
    if bytes_per_mem_period > 0.0 then mem_latency *. bytes_per_cycle_per_sm /. bytes_per_mem_period
    else Float.infinity
  in
  let mwp = Float.min mwp_bw n in
  let comp_period = if mem_insts > 0.0 then comp_cycles /. mem_insts else comp_cycles in
  let cwp_full =
    if comp_period > 0.0 then (mem_latency +. comp_period) /. comp_period else Float.infinity
  in
  let cwp = Float.min cwp_full n in
  let exec_cycles, bound =
    if mem_insts = 0.0 then (comp_cycles *. n, Compute_bound)
    else if mwp >= cwp && cwp_full <= n then
      (* Enough memory parallelism: computation dominates; the first
         latency is exposed, the rest hide under issue. *)
      (mem_latency +. (comp_cycles *. n), Compute_bound)
    else if cwp > mwp then
      (* Memory-bound: each group of MWP warps' requests serializes. *)
      ((mem_cycles *. n /. mwp) +. (comp_period *. (mwp -. 1.0)), Memory_bound)
    else
      (* Too few warps to hide latency in either direction. *)
      (mem_cycles +. comp_cycles +. (comp_period *. (n -. 1.0)), Latency_bound)
  in
  let cycles = exec_cycles *. reps in
  let kernel_time = (cycles *. Gpp_arch.Gpu.cycle_time gpu) +. gpu.launch_overhead in
  Ok
    {
      characteristics = c;
      occupancy = occ;
      mwp;
      cwp;
      comp_cycles_per_warp = comp_cycles;
      mem_cycles_per_warp = mem_cycles;
      cycles;
      kernel_time;
      bound;
    }

let pp_projection ppf p =
  Format.fprintf ppf "%s [%s]: %a (%s; MWP %.1f, CWP %.1f, %a)" p.characteristics.kernel_name
    p.characteristics.config_label Gpp_util.Units.pp_time p.kernel_time (bound_name p.bound) p.mwp
    p.cwp Occupancy.pp p.occupancy
