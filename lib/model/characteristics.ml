type t = {
  kernel_name : string;
  config_label : string;
  grid_blocks : int;
  threads_per_block : int;
  registers_per_thread : int;
  shared_mem_per_block : int;
  flops_per_thread : float;
  int_ops_per_thread : float;
  load_insts_per_thread : float;
  store_insts_per_thread : float;
  load_transactions_per_warp : float;
  store_transactions_per_warp : float;
  syncs_per_thread : float;
  divergence_factor : float;
  scattered_fraction : float;
}

let create ?(config_label = "baseline") ?(registers_per_thread = 16) ?(shared_mem_per_block = 0)
    ?(int_ops_per_thread = 0.0) ?(syncs_per_thread = 0.0) ?(divergence_factor = 1.0)
    ?(scattered_fraction = 0.0) ~kernel_name ~grid_blocks ~threads_per_block ~flops_per_thread
    ~load_insts_per_thread ~store_insts_per_thread ~load_transactions_per_warp
    ~store_transactions_per_warp () =
  {
    kernel_name;
    config_label;
    grid_blocks;
    threads_per_block;
    registers_per_thread;
    shared_mem_per_block;
    flops_per_thread;
    int_ops_per_thread;
    load_insts_per_thread;
    store_insts_per_thread;
    load_transactions_per_warp;
    store_transactions_per_warp;
    syncs_per_thread;
    divergence_factor;
    scattered_fraction;
  }

let total_threads t = t.grid_blocks * t.threads_per_block

let warps_per_block ~gpu t =
  let warp = (gpu : Gpp_arch.Gpu.t).warp_size in
  (t.threads_per_block + warp - 1) / warp

let total_warps ~gpu t = t.grid_blocks * warps_per_block ~gpu t

let mem_insts_per_thread t = t.load_insts_per_thread +. t.store_insts_per_thread

let total_transactions ~gpu t =
  float_of_int (total_warps ~gpu t)
  *. (t.load_transactions_per_warp +. t.store_transactions_per_warp)

let transaction_bytes ~gpu t =
  let segment = float_of_int (gpu : Gpp_arch.Gpu.t).coalesce_segment in
  (segment *. (1.0 -. t.scattered_fraction)) +. (segment /. 2.0 *. t.scattered_fraction)

let add_fingerprint fp t =
  let module F = Gpp_cache.Fingerprint in
  F.add_string fp t.kernel_name;
  F.add_string fp t.config_label;
  F.add_int fp t.grid_blocks;
  F.add_int fp t.threads_per_block;
  F.add_int fp t.registers_per_thread;
  F.add_int fp t.shared_mem_per_block;
  F.add_float fp t.flops_per_thread;
  F.add_float fp t.int_ops_per_thread;
  F.add_float fp t.load_insts_per_thread;
  F.add_float fp t.store_insts_per_thread;
  F.add_float fp t.load_transactions_per_warp;
  F.add_float fp t.store_transactions_per_warp;
  F.add_float fp t.syncs_per_thread;
  F.add_float fp t.divergence_factor;
  F.add_float fp t.scattered_fraction

let fingerprint t = Gpp_cache.Fingerprint.of_value add_fingerprint t

let validate ~gpu t =
  let gpu : Gpp_arch.Gpu.t = gpu in
  let check cond msg =
    if cond then Ok () else Error (Printf.sprintf "%s (%s): %s" t.kernel_name t.config_label msg)
  in
  let ( let* ) = Result.bind in
  let* () = check (t.grid_blocks > 0) "grid_blocks must be positive" in
  let* () = check (t.threads_per_block > 0) "threads_per_block must be positive" in
  let* () =
    check (t.threads_per_block <= gpu.max_threads_per_block) "block exceeds device limit"
  in
  let* () = check (t.registers_per_thread > 0) "registers_per_thread must be positive" in
  let* () = check (t.shared_mem_per_block >= 0) "negative shared memory" in
  let* () =
    check (t.shared_mem_per_block <= gpu.shared_mem_per_sm) "shared memory exceeds SM capacity"
  in
  let non_negative =
    [
      ("flops", t.flops_per_thread);
      ("int ops", t.int_ops_per_thread);
      ("load insts", t.load_insts_per_thread);
      ("store insts", t.store_insts_per_thread);
      ("load transactions", t.load_transactions_per_warp);
      ("store transactions", t.store_transactions_per_warp);
      ("syncs", t.syncs_per_thread);
    ]
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        check (v >= 0.0) (name ^ " must be non-negative"))
      (Ok ()) non_negative
  in
  let* () = check (t.divergence_factor >= 1.0) "divergence_factor must be >= 1" in
  check
    (t.scattered_fraction >= 0.0 && t.scattered_fraction <= 1.0)
    "scattered_fraction outside [0, 1]"

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s [%s]: %d blocks x %d threads@,\
     per thread: %.2f flops, %.2f int, %.2f loads, %.2f stores, %.2f syncs@,\
     per warp: %.2f load + %.2f store transactions; %d regs, %d B shared@,\
     divergence %.2f, scattered %.0f%%@]"
    t.kernel_name t.config_label t.grid_blocks t.threads_per_block t.flops_per_thread
    t.int_ops_per_thread t.load_insts_per_thread t.store_insts_per_thread t.syncs_per_thread
    t.load_transactions_per_warp t.store_transactions_per_warp t.registers_per_thread
    t.shared_mem_per_block t.divergence_factor
    (t.scattered_fraction *. 100.0)
