(** Synthesized performance characteristics of one transformed GPU
    kernel.

    GROPHECY explores code transformations of a skeleton and, for each,
    synthesizes the characteristics a real implementation would exhibit
    (paper §II-C).  This record is that synthesis product: everything
    the analytic model and the transaction-level simulator need to cost
    a kernel, with no reference back to the skeleton. *)

type t = {
  kernel_name : string;
  config_label : string;  (** Human-readable transformation summary. *)
  grid_blocks : int;  (** Thread blocks launched. *)
  threads_per_block : int;
  registers_per_thread : int;
  shared_mem_per_block : int;  (** Bytes. *)
  flops_per_thread : float;
  int_ops_per_thread : float;
  load_insts_per_thread : float;  (** Global-memory load instructions. *)
  store_insts_per_thread : float;
  load_transactions_per_warp : float;
      (** Memory transactions (coalescing already applied) a warp issues
          for its loads. *)
  store_transactions_per_warp : float;
  syncs_per_thread : float;  (** Block-level barriers executed. *)
  divergence_factor : float;  (** >= 1: issue-slot multiplier from warp
                                  divergence. *)
  scattered_fraction : float;
      (** Fraction of memory transactions that are isolated (gather /
          scatter) rather than part of a streaming burst, in [0, 1].
          The DRAM model in the simulator sustains less bandwidth on
          scattered traffic. *)
}

val create :
  ?config_label:string ->
  ?registers_per_thread:int ->
  ?shared_mem_per_block:int ->
  ?int_ops_per_thread:float ->
  ?syncs_per_thread:float ->
  ?divergence_factor:float ->
  ?scattered_fraction:float ->
  kernel_name:string ->
  grid_blocks:int ->
  threads_per_block:int ->
  flops_per_thread:float ->
  load_insts_per_thread:float ->
  store_insts_per_thread:float ->
  load_transactions_per_warp:float ->
  store_transactions_per_warp:float ->
  unit ->
  t
(** Defaults: label ["baseline"], 16 registers, no shared memory, no
    integer ops, no syncs, divergence 1.0, nothing scattered. *)

val total_threads : t -> int

val total_warps : gpu:Gpp_arch.Gpu.t -> t -> int
(** Warps per block (rounded up) times blocks. *)

val warps_per_block : gpu:Gpp_arch.Gpu.t -> t -> int

val mem_insts_per_thread : t -> float

val total_transactions : gpu:Gpp_arch.Gpu.t -> t -> float
(** Across the whole grid. *)

val transaction_bytes : gpu:Gpp_arch.Gpu.t -> t -> float
(** Mean size of one memory transaction: streaming bursts move a full
    coalescing segment, while scattered lanes are served by half-size
    transactions (the G80's 32 B minimum), weighted by
    [scattered_fraction]. *)

val add_fingerprint : Gpp_cache.Fingerprint.t -> t -> unit
(** Feed every field into a digest — the per-kernel half of the
    simulation cache key. *)

val fingerprint : t -> string

val validate : gpu:Gpp_arch.Gpu.t -> t -> (unit, string) result
(** Positive launch dimensions, block within device limits, counts
    non-negative, factors within their domains. *)

val pp : Format.formatter -> t -> unit
