(** Analytic GPU kernel execution-time model (GROPHECY's predictor).

    An MWP/CWP-style model in the spirit of Hong & Kim (ISCA'09), the
    family GROPHECY builds on: from the kernel's characteristics and the
    device description it derives how many warps' memory requests can be
    in flight (memory warp parallelism, MWP) and how many warps of
    computation fit under one memory period (computation warp
    parallelism, CWP), then composes per-SM cycle counts for the
    memory-bound, compute-bound, and latency-bound regimes.

    Deliberately idealized — uniform memory latency, no DRAM queueing or
    bank effects, no partial-wave imbalance.  The transaction-level
    simulator ([Gpp_gpusim]) models those, which is precisely why
    predicted and "measured" kernel times differ in the reproduction, as
    they do in the paper (§V-B). *)

type params = {
  achieved_bw_fraction : float;
      (** Fraction of peak DRAM bandwidth the model assumes sustainable
          (GROPHECY-style effective bandwidth). *)
  sync_cost_cycles : float;  (** Cycles charged per block barrier. *)
}

val default_params : params

val add_params_fingerprint : Gpp_cache.Fingerprint.t -> params -> unit
(** Feed the tunables into a digest, for projection cache keys. *)

type bound = Memory_bound | Compute_bound | Latency_bound

type projection = {
  characteristics : Characteristics.t;
  occupancy : Occupancy.t;
  mwp : float;
  cwp : float;
  comp_cycles_per_warp : float;
  mem_cycles_per_warp : float;
  cycles : float;  (** Busiest-SM cycle count for the whole grid. *)
  kernel_time : float;  (** Seconds, including launch overhead. *)
  bound : bound;
}

val project :
  ?params:params -> gpu:Gpp_arch.Gpu.t -> Characteristics.t -> (projection, string) result
(** [Error] when the characteristics are invalid or a block cannot be
    scheduled on the device. *)

val bound_name : bound -> string

val pp_projection : Format.formatter -> projection -> unit
