(** Static feature vectors for the learned correction stage.

    One vector per (program, transfer plan, chosen kernel
    characteristics, source machine, target machine) tuple, derived
    entirely from analysis outputs the pipeline already computes — no
    measurement and no randomness, so extraction is pure and
    bit-deterministic on any domain.  Counts and byte totals are
    log1p-compressed; source/target link ratios carry the
    cross-machine signal. *)

val names : string list
(** Feature names, in vector order.  Stable: the committed benchmarks
    and goldens embed fits over this layout. *)

val dim : int
(** [List.length names]. *)

val extract :
  source:Gpp_arch.Machine.t ->
  target:Gpp_arch.Machine.t ->
  program:Gpp_skeleton.Program.t ->
  plan:Gpp_dataflow.Analyzer.plan ->
  kernels:Gpp_model.Characteristics.t list ->
  float array
(** The feature vector ([dim] entries, [names] order).  [kernels] are
    the winning candidates' synthesized characteristics, program
    order. *)

val achieved_bandwidth : Gpp_arch.Machine.t -> Gpp_pcie.Link.direction -> float
(** Spec'd achieved link bandwidth (bytes/s): the packetised wire
    ceiling derated by the machine's default DMA efficiency.  Shared
    with {!Pricing.make}'s beta scaling. *)

val dma_setup : Gpp_arch.Machine.t -> Gpp_pcie.Link.direction -> float
(** The machine's default per-transfer DMA setup latency (seconds),
    {!Pricing.make}'s alpha scaling. *)
