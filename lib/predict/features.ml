module Machine = Gpp_arch.Machine
module Pcie_spec = Gpp_arch.Pcie_spec
module Link = Gpp_pcie.Link
module Analyzer = Gpp_dataflow.Analyzer
module Characteristics = Gpp_model.Characteristics

(* Static features of one (program, transfer plan, chosen kernels,
   source machine, target machine) tuple.  Everything is derived from
   analysis outputs the pipeline already computes — no measurement, no
   RNG — so extraction is pure and bit-deterministic wherever it runs
   (the batch runner extracts on worker domains).

   Counts and byte totals are log1p-compressed so workloads spanning
   four orders of magnitude land on comparable scales; ratios between
   source and target link parameters carry the cross-machine signal the
   Scaled stage uses analytically, letting the learned correction
   model what spec scaling misses. *)

let names =
  [
    "bias";
    "kernels";
    "schedule_length";
    "log_input_mib";
    "log_output_mib";
    "transfer_count";
    "conservative_fraction";
    "log_total_flops";
    "log_mem_insts";
    "mean_divergence";
    "mean_scattered";
    "mean_syncs";
    "log_grid_blocks";
    "log_bytes_per_flop";
    "log_target_bandwidth";
    "log_bandwidth_ratio";
    "log_setup_ratio";
  ]

let dim = List.length names

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Spec'd achieved bandwidth of a machine's link in one direction: the
   packetised wire ceiling derated by the default DMA-engine
   efficiency.  The same quantity {!Pricing.make} scales beta by. *)
let achieved_bandwidth (m : Machine.t) direction =
  let config = Link.default_config m in
  let efficiency =
    match (direction : Link.direction) with
    | Link.Host_to_device -> config.Link.dma_efficiency_h2d
    | Link.Device_to_host -> config.Link.dma_efficiency_d2h
  in
  Pcie_spec.effective_bandwidth m.Machine.pcie *. efficiency

let dma_setup (m : Machine.t) direction =
  let config = Link.default_config m in
  match (direction : Link.direction) with
  | Link.Host_to_device -> config.Link.dma_setup_h2d
  | Link.Device_to_host -> config.Link.dma_setup_d2h

let extract ~(source : Machine.t) ~(target : Machine.t)
    ~(program : Gpp_skeleton.Program.t) ~(plan : Analyzer.plan)
    ~(kernels : Characteristics.t list) =
  let transfers = Analyzer.transfers plan in
  let transfer_count = List.length transfers in
  let conservative_fraction =
    if transfer_count = 0 then 0.0
    else
      float_of_int
        (List.length (List.filter (fun (t : Analyzer.transfer) -> t.conservative) transfers))
      /. float_of_int transfer_count
  in
  let per_kernel f = List.map f kernels in
  let total_over_threads per_thread =
    List.fold_left
      (fun acc (k : Characteristics.t) ->
        acc +. (per_thread k *. float_of_int (Characteristics.total_threads k)))
      0.0 kernels
  in
  let total_flops = total_over_threads (fun k -> k.Characteristics.flops_per_thread) in
  let total_mem_insts = total_over_threads Characteristics.mem_insts_per_thread in
  let total_bytes = float_of_int (Analyzer.total_bytes plan) in
  let mib = float_of_int Gpp_util.Units.mib in
  let avg_over_directions f =
    0.5 *. (f Link.Host_to_device +. f Link.Device_to_host)
  in
  let target_bw = avg_over_directions (achieved_bandwidth target) in
  let source_bw = avg_over_directions (achieved_bandwidth source) in
  let target_setup = avg_over_directions (dma_setup target) in
  let source_setup = avg_over_directions (dma_setup source) in
  [|
    1.0;
    float_of_int (List.length kernels);
    float_of_int (List.length (Gpp_skeleton.Program.flatten_schedule program));
    Float.log1p (float_of_int (Analyzer.input_bytes plan) /. mib);
    Float.log1p (float_of_int (Analyzer.output_bytes plan) /. mib);
    float_of_int transfer_count;
    conservative_fraction;
    Float.log1p total_flops;
    Float.log1p total_mem_insts;
    mean (per_kernel (fun k -> k.Characteristics.divergence_factor));
    mean (per_kernel (fun k -> k.Characteristics.scattered_fraction));
    mean (per_kernel (fun k -> k.Characteristics.syncs_per_thread));
    Float.log1p
      (List.fold_left
         (fun acc (k : Characteristics.t) -> acc +. float_of_int k.Characteristics.grid_blocks)
         0.0 kernels);
    Float.log1p (total_bytes /. (total_flops +. 1.0));
    Float.log1p (target_bw /. 1e9);
    log (source_bw /. target_bw);
    log (target_setup /. source_setup);
  |]
