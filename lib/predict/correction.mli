(** The learned predictor stage: a multiplicative correction of the
    analytic projected total, ridge-fitted over {!Features} vectors
    against simulator-measured times.

    Training targets are measured/projected ratios; the regression is
    on [ratio - 1], so heavier regularization shrinks toward the
    identity correction instead of toward zero.  Applied multipliers
    are clamped to [0.05, 20]. *)

type t

val default_lambda : float
(** 1.0 — strong enough to keep leave-one-out fits over a handful of
    workloads stable. *)

val fit : ?lambda:float -> (float array * float) list -> (t, string) result
(** [fit samples] with samples as (feature vector, measured/projected
    ratio) pairs.  Errors on an empty set, ragged vectors, or
    non-positive ratios — never raises. *)

val multiplier : t -> features:float array -> float
(** The clamped correction factor for one feature vector. *)

val apply : t -> features:float array -> base:float -> float
(** [base * multiplier]. *)

val weights : t -> float array
(** A copy of the fitted weights, {!Features.names} order. *)

val lambda : t -> float

val min_multiplier : float

val max_multiplier : float

val pp : Format.formatter -> t -> unit
