(* Ridge regression by normal equations: w = (X^T X + lambda I)^-1 X^T y,
   solved with Gaussian elimination under partial pivoting.  Feature
   counts here are tiny (tens), so dense O(p^3) is the right tool; no
   external linear algebra needed. *)

let solve a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Ridge.solve: matrix/vector size mismatch";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Ridge.solve: matrix is not square")
    a;
  (* Work on copies: callers reuse their matrices. *)
  let a = Array.map Array.copy a in
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: swap in the row with the largest remaining
       magnitude in this column. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    let p = a.(col).(col) in
    if Float.abs p < 1e-300 then invalid_arg "Ridge.solve: singular system";
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. p in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref b.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. a.(row).(row)
  done;
  x

let fit ?(lambda = 0.0) ~xs ~ys () =
  if lambda < 0.0 then invalid_arg "Ridge.fit: negative lambda";
  match xs with
  | [] -> invalid_arg "Ridge.fit: no samples"
  | first :: _ ->
      let p = Array.length first in
      if p = 0 then invalid_arg "Ridge.fit: empty feature vectors";
      if List.length xs <> List.length ys then
        invalid_arg "Ridge.fit: sample/target count mismatch";
      List.iter
        (fun x ->
          if Array.length x <> p then invalid_arg "Ridge.fit: ragged feature vectors")
        xs;
      let xtx = Array.make_matrix p p 0.0 in
      let xty = Array.make p 0.0 in
      List.iter2
        (fun x y ->
          for i = 0 to p - 1 do
            xty.(i) <- xty.(i) +. (x.(i) *. y);
            for j = 0 to p - 1 do
              xtx.(i).(j) <- xtx.(i).(j) +. (x.(i) *. x.(j))
            done
          done)
        xs ys;
      for i = 0 to p - 1 do
        xtx.(i).(i) <- xtx.(i).(i) +. lambda
      done;
      solve xtx xty

let predict w x =
  if Array.length w <> Array.length x then invalid_arg "Ridge.predict: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i wi -> acc := !acc +. (wi *. x.(i))) w;
  !acc

let norm w = sqrt (Array.fold_left (fun acc wi -> acc +. (wi *. wi)) 0.0 w)
