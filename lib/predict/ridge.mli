(** Pure-OCaml ridge regression (Tikhonov-regularized least squares).

    Fits [w = argmin |Xw - y|^2 + lambda |w|^2] by the normal equations
    [(X^T X + lambda I) w = X^T y], solved with Gaussian elimination
    under partial pivoting.  Feature counts in this repo are tiny, so
    the dense O(p^3) solve is exact and instantaneous; there are no
    external linear-algebra dependencies. *)

val fit : ?lambda:float -> xs:float array list -> ys:float list -> unit -> float array
(** Fitted weight vector, one entry per feature.  [lambda] defaults to
    0 (ordinary least squares).  With [lambda > 0] the system is
    positive definite and always solvable.
    @raise Invalid_argument on empty/ragged samples, a negative
    [lambda], or (at [lambda = 0]) a numerically singular system. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves the dense linear system [a x = b]; inputs are
    not mutated.  Exposed for property tests.
    @raise Invalid_argument on shape mismatch or a singular matrix. *)

val predict : float array -> float array -> float
(** Dot product [w . x].  @raise Invalid_argument on length mismatch. *)

val norm : float array -> float
(** Euclidean norm, for the regularization-shrinks-norms property. *)
