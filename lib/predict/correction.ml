(* The learned stage: a ridge-fitted multiplicative correction of the
   analytic projected total.  Targets are measured/projected ratios; the
   fit is on [ratio - 1], so lambda -> infinity shrinks toward the
   identity correction (multiplier 1) rather than toward a zero
   prediction.  The applied multiplier is clamped to a sane band so an
   extrapolated fit can misprice a workload but never nonsense it. *)

type t = { weights : float array; lambda : float }

let default_lambda = 1.0

let min_multiplier = 0.05

let max_multiplier = 20.0

let fit ?(lambda = default_lambda) samples =
  match samples with
  | [] -> Error "learned correction: no training samples"
  | (first, _) :: _ ->
      let dim = Array.length first in
      if List.exists (fun (x, _) -> Array.length x <> dim) samples then
        Error "learned correction: ragged feature vectors"
      else if List.exists (fun (_, r) -> not (Float.is_finite r) || r <= 0.0) samples then
        Error "learned correction: non-positive measured/projected ratio"
      else
        let xs = List.map fst samples in
        let ys = List.map (fun (_, ratio) -> ratio -. 1.0) samples in
        (match Ridge.fit ~lambda ~xs ~ys () with
        | weights -> Ok { weights; lambda }
        | exception Invalid_argument m -> Error (Printf.sprintf "learned correction: %s" m))

let multiplier t ~features =
  let raw = 1.0 +. Ridge.predict t.weights features in
  Float.min max_multiplier (Float.max min_multiplier raw)

let apply t ~features ~base = base *. multiplier t ~features

let weights t = Array.copy t.weights

let lambda t = t.lambda

let pp ppf t =
  Format.fprintf ppf "ridge correction (lambda %g, %d features, |w| %.4f)" t.lambda
    (Array.length t.weights) (Ridge.norm t.weights)
