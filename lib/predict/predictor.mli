(** Named, composable prediction pipelines.

    A predictor is an ordered list of stages applied on top of the
    analytic projection:

    - [Analytic] — the identity base: calibrated (alpha, beta) models
      price the transfer plan exactly as the paper's pipeline always
      has.  The default, and the byte-identity anchor for every
      committed golden.
    - [Scaled] — before pricing, rescale the source machine's
      calibrated (alpha, beta) by the spec'd bandwidth and setup-latency
      ratios between source and target machines (see
      {!Pricing.make}).  A no-op when source = target.
    - [Learned] — after pricing, multiply the projected total by a
      ridge-fitted correction over static program/machine features
      (see {!Correction}), trained leave-one-workload-out against
      simulator-measured times.

    Predictor names are the comma-joined stage names ("scaled,learned");
    {!of_string} is the single parser behind the [--predict] flag, the
    [GPP_PREDICT] environment variable, and the config file's
    [(predict ...)] group. *)

type stage = Analytic | Scaled | Learned

type t = private { name : string; stages : stage list }

val analytic : t
(** The default predictor: the identity base alone. *)

val of_string : string -> (t, string) result
(** Parse a comma-separated stage list.  Unknown stage names produce a
    message with a Levenshtein nearest-name suggestion; duplicates and
    compositions of ["analytic"] with other stages are rejected. *)

val name : t -> string
(** Canonical comma-joined stage names (the parse of [name t] is
    [t]). *)

val stages : t -> stage list

val has_scaled : t -> bool

val has_learned : t -> bool

val equal : t -> t -> bool

val stage_name : stage -> string

val stage_names : string list
(** All known stage names, in documentation order. *)

val pp : Format.formatter -> t -> unit
