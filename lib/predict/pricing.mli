(** Transfer pricing through a predictor: the calibrated (alpha, beta)
    models plus everything a predictor's stages contribute.

    This is the value the projection pipeline prices transfers with.
    The [Analytic] base passes the calibrated models through untouched
    (bit-for-bit — committed goldens depend on it); [Scaled] rescales
    them by spec'd bandwidth/latency ratios between [source] (where
    they were calibrated) and [target] (where they will predict);
    [Learned] attaches a fitted {!Correction} applied to the projected
    total. *)

type t = {
  predictor : Predictor.t;
  source : Gpp_arch.Machine.t;  (** Machine the models were calibrated on. *)
  target : Gpp_arch.Machine.t;  (** Machine the predictions are for. *)
  h2d : Gpp_pcie.Model.t;  (** Upload pricing model, post-scaling. *)
  d2h : Gpp_pcie.Model.t;  (** Download pricing model, post-scaling. *)
  correction : Correction.t option;  (** The learned stage's fit, if trained. *)
}

val make :
  ?correction:Correction.t ->
  predictor:Predictor.t ->
  source:Gpp_arch.Machine.t ->
  target:Gpp_arch.Machine.t ->
  h2d:Gpp_pcie.Model.t ->
  d2h:Gpp_pcie.Model.t ->
  unit ->
  t
(** Apply the predictor's model-level stages.  When [predictor] lacks
    [Scaled] or [source] and [target] share an id, the models are the
    caller's values unchanged (physically equal). *)

val of_models :
  machine:Gpp_arch.Machine.t -> h2d:Gpp_pcie.Model.t -> d2h:Gpp_pcie.Model.t -> t
(** The identity pricing: analytic predictor, source = target =
    [machine].  What every pre-predictor call site meant. *)

val with_correction : t -> Correction.t -> t

val machine : t -> Gpp_arch.Machine.t
(** [target] — the machine projections priced with this value describe. *)

val predict : t -> Gpp_pcie.Link.direction -> bytes:int -> float
(** Price one transfer with the post-scaling model for [direction]. *)

val corrected_total : t -> features:float array -> total:float -> float
(** Apply the learned correction to a projected total; the identity
    when no correction is attached. *)

val pp : Format.formatter -> t -> unit
