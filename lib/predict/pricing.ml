module Machine = Gpp_arch.Machine
module Model = Gpp_pcie.Model
module Link = Gpp_pcie.Link

type t = {
  predictor : Predictor.t;
  source : Machine.t;
  target : Machine.t;
  h2d : Model.t;
  d2h : Model.t;
  correction : Correction.t option;
}

(* The Scaled stage (Stevens & Klockner's question): carry a calibration
   across machines by rescaling the fitted line with spec'd ratios.
   beta is inverse achieved bandwidth, so it scales by
   source-over-target bandwidth; alpha is setup latency, so it scales by
   target-over-source DMA setup.  Same-machine ratios are exactly 1, but
   we skip the rebuild entirely so the default path hands back the
   calibrated models bit-for-bit untouched. *)
let scale_model ~(source : Machine.t) ~(target : Machine.t) direction (m : Model.t) =
  let bandwidth_ratio =
    Features.achieved_bandwidth source direction /. Features.achieved_bandwidth target direction
  in
  let setup_ratio = Features.dma_setup target direction /. Features.dma_setup source direction in
  Model.create
    ~alpha:(m.Model.alpha *. setup_ratio)
    ~beta:(m.Model.beta *. bandwidth_ratio)
    ~direction:m.Model.direction ~memory:m.Model.memory

let make ?correction ~predictor ~(source : Machine.t) ~(target : Machine.t) ~h2d ~d2h () =
  let h2d, d2h =
    if Predictor.has_scaled predictor && source.Machine.id <> target.Machine.id then
      ( scale_model ~source ~target Link.Host_to_device h2d,
        scale_model ~source ~target Link.Device_to_host d2h )
    else (h2d, d2h)
  in
  { predictor; source; target; h2d; d2h; correction }

let of_models ~machine ~h2d ~d2h =
  { predictor = Predictor.analytic; source = machine; target = machine; h2d; d2h;
    correction = None }

let with_correction t correction = { t with correction = Some correction }

let machine t = t.target

let predict t direction ~bytes =
  let model = match (direction : Link.direction) with
    | Link.Host_to_device -> t.h2d
    | Link.Device_to_host -> t.d2h
  in
  Model.predict model ~bytes

let corrected_total t ~features ~total =
  match t.correction with
  | None -> total
  | Some c -> Correction.apply c ~features ~base:total

let pp ppf t =
  Format.fprintf ppf "%s pricing %s->%s" (Predictor.name t.predictor) t.source.Machine.id
    t.target.Machine.id
