type stage = Analytic | Scaled | Learned

let stage_name = function Analytic -> "analytic" | Scaled -> "scaled" | Learned -> "learned"

let stage_names = [ "analytic"; "scaled"; "learned" ]

let stage_of_name = function
  | "analytic" -> Some Analytic
  | "scaled" -> Some Scaled
  | "learned" -> Some Learned
  | _ -> None

type t = { name : string; stages : stage list }

let analytic = { name = "analytic"; stages = [ Analytic ] }

let name t = t.name

let stages t = t.stages

let has stage t = List.mem stage t.stages

let has_scaled = has Scaled

let has_learned = has Learned

let equal a b = String.equal a.name b.name

(* "scaled,learned" → [Scaled; Learned].  Analytic is the identity base
   every pipeline starts from; naming it explicitly is allowed only on
   its own, so a predictor name reads unambiguously. *)
let of_string s =
  let raw = String.split_on_char ',' s |> List.map String.trim in
  let parts = List.filter (fun p -> p <> "") raw in
  if parts = [] then Error "empty predictor (expected stage names, e.g. \"scaled,learned\")"
  else
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match stage_of_name (String.lowercase_ascii p) with
          | Some stage ->
              if List.mem stage acc then
                Error (Printf.sprintf "duplicate predictor stage %S" p)
              else parse (stage :: acc) rest
          | None ->
              let suggestion =
                match
                  Gpp_util.Levenshtein.nearest ~candidates:stage_names
                    (String.lowercase_ascii p)
                with
                | Some near -> Printf.sprintf " (did you mean %S?)" near
                | None -> ""
              in
              Error
                (Printf.sprintf "unknown predictor stage %S%s; known stages: %s" p suggestion
                   (String.concat ", " stage_names)))
    in
    match parse [] parts with
    | Error _ as e -> e
    | Ok stages ->
        if List.mem Analytic stages && List.length stages > 1 then
          Error "\"analytic\" is the identity base and composes with nothing"
        else
          Ok { name = String.concat "," (List.map stage_name stages); stages }

let pp ppf t = Format.pp_print_string ppf t.name
