module Obs = Gpp_obs.Obs

let c_candidates = Obs.counter "transform.candidates"

let c_feasible = Obs.counter "transform.feasible"

type space = {
  block_sizes : int list;
  unroll_factors : int list;
  vector_widths : int list;
  allow_tiling : bool;
}

let default_space =
  {
    block_sizes = [ 64; 128; 192; 256; 384; 512 ];
    unroll_factors = [ 1; 2; 4 ];
    vector_widths = [ 1; 2; 4 ];
    allow_tiling = true;
  }

type candidate = {
  config : Synthesize.config;
  characteristics : Gpp_model.Characteristics.t;
  projection : Gpp_model.Analytic.projection;
}

let configs_of_space space =
  List.concat_map
    (fun threads_per_block ->
      List.concat_map
        (fun unroll ->
          List.concat_map
            (fun vector_width ->
              let base =
                { Synthesize.threads_per_block; unroll; vector_width; shared_tiling = false }
              in
              if space.allow_tiling then [ base; { base with Synthesize.shared_tiling = true } ]
              else [ base ])
            space.vector_widths)
        space.unroll_factors)
    space.block_sizes

(* Searching one kernel evaluates the full transformation cross-product
   (block sizes x unrolls x vector widths x tiling) through synthesis
   and the analytic model.  The result is a pure function of the device,
   the declarations, the kernel skeleton, the space, and the analytic
   params, so repeated searches — across experiment figures, iteration
   sweeps, and benchmark repetitions — are served from a memo table
   keyed by a structural digest of exactly that tuple. *)
let search_memo : candidate list Gpp_cache.Memo.t =
  Gpp_cache.Memo.create ~name:"transform.search" ~capacity:1024 ()

(* Bump the schema whenever [candidate] (or anything reachable from it)
   changes shape: stale store files are then skipped, not misread. *)
let () = Gpp_cache.Memo.persist ~schema:1 search_memo

let search_key ~params ~space ~gpu ~decls kernel =
  let module F = Gpp_cache.Fingerprint in
  let fp = F.create () in
  Gpp_arch.Gpu.add_fingerprint fp gpu;
  F.add_list fp Gpp_skeleton.Decl.add_fingerprint decls;
  Gpp_skeleton.Ir.add_fingerprint fp kernel;
  F.add_int_list fp space.block_sizes;
  F.add_int_list fp space.unroll_factors;
  F.add_int_list fp space.vector_widths;
  F.add_bool fp space.allow_tiling;
  Gpp_model.Analytic.add_params_fingerprint fp params;
  F.digest fp

let search ?(cache = true) ?params ?(space = default_space) ~gpu ~decls kernel =
  let compute () =
    Obs.span "transform.search" @@ fun () ->
    let evaluate cfg =
      Obs.span "transform.candidate" @@ fun () ->
      Obs.incr c_candidates;
      match Synthesize.characteristics ~gpu ~decls kernel cfg with
      | Error _ -> None
      | Ok characteristics -> (
          match Gpp_model.Analytic.project ?params ~gpu characteristics with
          | Error _ -> None
          | Ok projection ->
              Obs.incr c_feasible;
              Some { config = cfg; characteristics; projection })
    in
    configs_of_space space
    |> List.filter_map evaluate
    |> List.sort (fun a b ->
           Float.compare a.projection.Gpp_model.Analytic.kernel_time
             b.projection.Gpp_model.Analytic.kernel_time)
  in
  let key =
    search_key
      ~params:(Option.value params ~default:Gpp_model.Analytic.default_params)
      ~space ~gpu ~decls kernel
  in
  Gpp_cache.Memo.find_or_add ~cache search_memo ~key compute

let best ?cache ?params ?space ~gpu ~decls kernel =
  match search ?cache ?params ?space ~gpu ~decls kernel with
  | [] ->
      Error
        (Printf.sprintf "kernel %s: no feasible GPU transformation found"
           kernel.Gpp_skeleton.Ir.name)
  | fastest :: _ -> Ok fastest

let pp_candidate ppf c = Gpp_model.Analytic.pp_projection ppf c.projection
