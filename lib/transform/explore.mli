(** Transformation-space search.

    GROPHECY "explores various code transformations, synthesizes
    performance characteristics for each transformation, and supplies
    the characteristics to a GPU performance model" (paper §II-C),
    eventually reporting the best achievable configuration.  This module
    is that loop. *)

type space = {
  block_sizes : int list;
  unroll_factors : int list;
  vector_widths : int list;
  allow_tiling : bool;
}

val default_space : space
(** Blocks of 64..512 threads, coarsening 1..4, vector widths 1..4,
    tiling enabled. *)

type candidate = {
  config : Synthesize.config;
  characteristics : Gpp_model.Characteristics.t;
  projection : Gpp_model.Analytic.projection;
}

val search :
  ?cache:bool ->
  ?params:Gpp_model.Analytic.params ->
  ?space:space ->
  gpu:Gpp_arch.Gpu.t ->
  decls:Gpp_skeleton.Decl.t list ->
  Gpp_skeleton.Ir.kernel ->
  candidate list
(** All feasible configurations, fastest first.  Infeasible points
    (block too large, no tiling opportunity, ...) are silently
    discarded, as GROPHECY prunes illegal transformations.

    Results are memoized in a process-wide table keyed by a structural
    digest of (GPU, declarations, kernel, space, analytic params); pass
    [~cache:false] (or disable {!Gpp_cache.Control}) to force
    re-evaluation. *)

val best :
  ?cache:bool ->
  ?params:Gpp_model.Analytic.params ->
  ?space:space ->
  gpu:Gpp_arch.Gpu.t ->
  decls:Gpp_skeleton.Decl.t list ->
  Gpp_skeleton.Ir.kernel ->
  (candidate, string) result
(** Fastest feasible candidate, or [Error] when the whole space is
    infeasible (e.g. a kernel with no data parallelism). *)

val pp_candidate : Format.formatter -> candidate -> unit
