(** Observability core: hierarchical timed spans, named counters, and
    two sinks — an in-memory per-phase aggregator and a streaming
    Chrome-trace writer.

    Everything is gated on one process-wide flag (off by default).
    Disabled, {!span} is a single branch plus a tail call and counter
    updates are a single branch: no allocation, no clock read, no
    output, so golden pipeline output is byte-identical with the
    library linked in and idle.

    The layer is domain-safe: counters are atomic (totals are exact
    under concurrent increments), the open-span stack is domain-local
    (each domain's spans form their own properly nested trace track,
    distinguished by [tid] in the Chrome output), and the aggregator
    and trace sink are mutex-protected.  Read {!aggregates} /
    {!counters} after concurrent spans have closed (e.g. after the
    domain pool joins) for a consistent view. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val now_us : unit -> float
(** Monotonic clock, microseconds since an arbitrary epoch
    (CLOCK_MONOTONIC — the bench harness reads the same source).
    Immune to NTP steps: consecutive reads never decrease, and span
    durations measure elapsed time even across wall-clock
    adjustments. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a phase named [name] (dotted names —
    ["transform.search"] — group into categories in the trace viewer).
    Spans nest; the innermost open span is the parent.  The span is
    closed (aggregated, and its ["E"] event written) even if [f]
    raises.  Disabled: exactly [f ()]. *)

val depth : unit -> int
(** Number of spans currently open on the calling domain. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Interned handle: the same name always yields the same counter.
    Create handles at module level so hot paths skip the name lookup. *)

val add : counter -> int -> unit
val incr : counter -> unit

val set : counter -> int -> unit
(** Gauge-style absolute update. *)

val value : counter -> int

val counters : unit -> (string * int) list
(** Non-zero counters, sorted by name. *)

(** {1 Trace sink} *)

val start_trace : string -> (unit, string) result
(** Open [path] and start streaming Chrome trace events to it.  Fails
    if a trace is already open or the file cannot be created. *)

val stop_trace : unit -> unit
(** Sample every counter into the trace, write the JSON trailer, and
    close the file.  Idempotent. *)

val tracing : unit -> bool

val event : ?detail:string -> string -> unit
(** Instant event (cache hit, store flush...).  Only lands in the
    trace sink; the aggregator ignores instants. *)

(** {1 Aggregator} *)

type agg = {
  name : string;
  mutable count : int;
  mutable total_us : float;  (** Inclusive wall time. *)
  mutable self_us : float;  (** Exclusive wall time (children removed). *)
  mutable depth : int;  (** Shallowest nesting depth observed. *)
}

val aggregates : unit -> agg list
(** One row per span name, first-seen order. *)

val summary_table : unit -> string option
(** Render spans + non-zero counters with {!Gpp_util.Ascii_table};
    [None] when nothing was recorded. *)

val print_summary : ?out:out_channel -> unit -> unit
(** Print {!summary_table} (default: to [stderr]) if non-empty. *)

val reset : unit -> unit
(** Clear aggregates, zero counters, drop open-span bookkeeping.  Does
    not touch the enabled flag or an open trace sink. *)
