(* Self-contained Chrome-trace validation: a minimal JSON parser plus
   structural checks over the event array, so CI can gate on trace
   well-formedness without any external tooling (`grophecy trace
   selftest`).  The parser accepts exactly the JSON this tool needs to
   read back — which is full standard JSON minus \u surrogate-pair
   decoding (escapes are validated, not interpreted). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | ('"' | '\\' | '/') as c ->
                   Buffer.add_char b c;
                   advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   String.iter
                     (fun c ->
                       match c with
                       | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                       | _ -> fail "bad \\u escape")
                     hex;
                   Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                   pos := !pos + 4
               | _ -> fail "bad escape");
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* Trace-level checks. *)

type stats = {
  events : int;
  spans : int;  (* matched B/E pairs *)
  instants : int;
  counter_samples : int;
  max_depth : int;
}

let field name = function Obj kvs -> List.assoc_opt name kvs | _ -> None

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate_events events =
  (* B/E nesting is tracked per (pid, tid): concurrent domains each
     write their own properly nested track, and tracks interleave
     freely in the event stream. *)
  let open_spans : (float * float, string list) Hashtbl.t = Hashtbl.create 4 in
  let spans_of track = Option.value (Hashtbl.find_opt open_spans track) ~default:[] in
  let stats = ref { events = 0; spans = 0; instants = 0; counter_samples = 0; max_depth = 0 } in
  let rec go i = function
    | [] ->
        let leftovers =
          Hashtbl.fold (fun _ spans acc -> List.rev_append spans acc) open_spans []
        in
        if leftovers <> [] then
          err "unmatched begin event(s) at end of trace: %s" (String.concat ", " leftovers)
        else Ok !stats
    | ev :: rest -> (
        let get_str k = match field k ev with Some (Str s) -> Some s | _ -> None in
        let get_num k = match field k ev with Some (Num f) -> Some f | _ -> None in
        match ev with
        | Obj _ -> (
            let name = get_str "name" in
            match get_str "ph" with
            | None -> err "event %d: missing \"ph\"" i
            | Some ph -> (
                let need_ts_ids () =
                  match (get_num "ts", get_num "pid", get_num "tid") with
                  | None, _, _ -> err "event %d (%s): missing numeric \"ts\"" i ph
                  | _, None, _ | _, _, None -> err "event %d (%s): missing \"pid\"/\"tid\"" i ph
                  | Some ts, _, _ when ts < 0.0 -> err "event %d (%s): negative ts" i ph
                  | _ -> Ok ()
                in
                let track () =
                  (Option.value (get_num "pid") ~default:0.0,
                   Option.value (get_num "tid") ~default:0.0)
                in
                let count f = stats := f !stats in
                match ph with
                | "B" -> (
                    match (name, need_ts_ids ()) with
                    | None, _ -> err "event %d: begin event without a name" i
                    | _, (Error _ as e) -> e
                    | Some nm, Ok () ->
                        let track = track () in
                        let spans = nm :: spans_of track in
                        Hashtbl.replace open_spans track spans;
                        count (fun s ->
                            {
                              s with
                              events = s.events + 1;
                              max_depth = max s.max_depth (List.length spans);
                            });
                        go (i + 1) rest)
                | "E" -> (
                    match need_ts_ids () with
                    | Error _ as e -> e
                    | Ok () -> (
                        match spans_of (track ()) with
                        | [] -> err "event %d: end event with no span open" i
                        | top :: deeper -> (
                            match name with
                            | Some nm when nm <> top ->
                                err "event %d: end event %S closes open span %S" i nm top
                            | _ ->
                                Hashtbl.replace open_spans (track ()) deeper;
                                count (fun s ->
                                    { s with events = s.events + 1; spans = s.spans + 1 });
                                go (i + 1) rest)))
                | "X" -> (
                    match (name, need_ts_ids (), get_num "dur") with
                    | None, _, _ -> err "event %d: complete event without a name" i
                    | _, (Error _ as e), _ -> e
                    | _, _, None -> err "event %d: complete event without \"dur\"" i
                    | Some _, Ok (), Some _ ->
                        count (fun s -> { s with events = s.events + 1; spans = s.spans + 1 });
                        go (i + 1) rest)
                | "i" | "I" -> (
                    match (name, need_ts_ids ()) with
                    | None, _ -> err "event %d: instant event without a name" i
                    | _, (Error _ as e) -> e
                    | Some _, Ok () ->
                        count (fun s -> { s with events = s.events + 1; instants = s.instants + 1 });
                        go (i + 1) rest)
                | "C" -> (
                    match (name, need_ts_ids (), field "args" ev) with
                    | None, _, _ -> err "event %d: counter event without a name" i
                    | _, (Error _ as e), _ -> e
                    | _, _, (None | Some (Obj [])) ->
                        err "event %d: counter event without args" i
                    | Some _, Ok (), Some (Obj _) ->
                        count (fun s ->
                            { s with events = s.events + 1; counter_samples = s.counter_samples + 1 });
                        go (i + 1) rest
                    | Some _, Ok (), Some _ -> err "event %d: counter args must be an object" i)
                | "M" ->
                    count (fun s -> { s with events = s.events + 1 });
                    go (i + 1) rest
                | ph -> err "event %d: unsupported phase %S" i ph))
        | _ -> err "event %d: not a JSON object" i)
  in
  go 0 events

let validate_string s =
  match parse s with
  | Error e -> err "invalid JSON: %s" e
  | Ok json -> (
      match json with
      | Arr events -> validate_events events
      | Obj _ -> (
          match field "traceEvents" json with
          | Some (Arr events) -> validate_events events
          | Some _ -> Error "\"traceEvents\" is not an array"
          | None -> Error "top-level object has no \"traceEvents\" array")
      | _ -> Error "trace must be an array or an object with \"traceEvents\"")

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> validate_string contents

let pp_stats ppf s =
  Format.fprintf ppf "%d events: %d span pair(s), %d instant(s), %d counter sample(s), max depth %d"
    s.events s.spans s.instants s.counter_samples s.max_depth
