(* Streaming Chrome trace-event JSON writer.

   Emits the "JSON Object Format" understood by chrome://tracing and
   Perfetto: {"traceEvents":[...], ...}.  Events are written as they
   happen — nothing is buffered beyond the out_channel — so a crashed
   run still leaves a readable prefix (both viewers accept a truncated
   event array).  Timestamps are microseconds relative to the writer's
   creation, which keeps them small and diff-friendly. *)

type t = {
  oc : out_channel;
  epoch : float;  (* absolute microseconds at creation *)
  mutable events : int;
  mutable closed : bool;
}

(* JSON string escaping: the mandatory set (quote, backslash, control
   characters).  Span and counter names are ASCII identifiers in
   practice, so the fast path is a plain copy. *)
let escape s =
  let plain c = c >= ' ' && c <> '"' && c <> '\\' && c < '\x7f' in
  if String.for_all plain s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when c < ' ' || c = '\x7f' -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let create ~epoch oc =
  output_string oc "{\"traceEvents\":[";
  { oc; epoch; events = 0; closed = false }

let ts t abs_us = abs_us -. t.epoch

let emit t fmt =
  if t.closed then Printf.ifprintf t.oc fmt
  else begin
    if t.events > 0 then output_string t.oc ",\n";
    t.events <- t.events + 1;
    Printf.fprintf t.oc fmt
  end

(* Category = the dotted prefix of the span name ("transform.search" ->
   "transform"), which groups events into colored families in the
   viewers without callers passing a category everywhere. *)
let category name =
  match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name

(* [tid] separates concurrent timelines: the obs layer passes one tid
   per domain so B/E events nest properly on each track.  Default 1 —
   single-domain traces are unchanged. *)

let duration_begin t ~name ?(tid = 1) ~ts:abs () =
  emit t "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
    (escape name) (escape (category name)) (ts t abs) tid

let duration_end t ~name ?(tid = 1) ~ts:abs () =
  emit t "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
    (escape name) (escape (category name)) (ts t abs) tid

let instant t ~name ?detail ?(tid = 1) ~ts:abs () =
  match detail with
  | None ->
      emit t "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\"}"
        (escape name) (escape (category name)) (ts t abs) tid
  | Some d ->
      emit t
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"detail\":\"%s\"}}"
        (escape name) (escape (category name)) (ts t abs) tid (escape d)

let counter t ~name ~value ~ts:abs =
  emit t "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"%s\":%d}}"
    (escape name) (ts t abs) (escape name) value

let metadata t ~name ~value =
  emit t "{\"name\":\"%s\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"name\":\"%s\"}}"
    (escape name) (escape value)

let close t =
  if not t.closed then begin
    t.closed <- true;
    output_string t.oc "],\"displayTimeUnit\":\"ms\"}\n";
    close_out_noerr t.oc
  end

let event_count t = t.events
