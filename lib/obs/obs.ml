(* Observability core: hierarchical timed spans, named counters, and two
   sinks — an in-memory per-phase aggregator rendered with Ascii_table,
   and a streaming Chrome-trace writer (chrome.ml).

   Everything is gated on one process-wide flag, off by default: with
   observability disabled, [span] is a single branch and a tail call,
   and counter updates are a single branch — no allocation, no clock
   reads, no output.  Golden experiment output is byte-identical with
   the library linked in and disabled.

   Domain safety: the batch runner shards work across OCaml 5 domains,
   so every piece of shared state here is either atomic, domain-local,
   or mutex-protected.  Counters are [Atomic.t] (exact totals under
   concurrent increments); the open-span stack is domain-local storage
   (spans opened on one domain close on that domain, and trace events
   carry the domain as their [tid] so B/E pairs nest per timeline); the
   aggregator tables and the trace sink sit behind small mutexes taken
   only on span close / registration, never while user code runs. *)

let enabled = Atomic.make false

let set_enabled b = Atomic.set enabled b

let is_enabled () = Atomic.get enabled

(* Monotonic clock in microseconds — the same clock source the bench
   harness reads.  [Unix.gettimeofday] is NTP-steppable: in a process
   that lives for days, a backwards step silently zeroes span durations
   and a forwards step inflates them, and the old per-domain clamp only
   papered over the backwards case (a span straddling a forward step
   still measured the step, not the work).  CLOCK_MONOTONIC never
   steps, so durations are honest across clock adjustments and every
   domain shares one monotonic timeline. *)
let now_us () = Int64.to_float (Monotonic_clock.now ()) /. 1e3

(* Trace-track id for the calling domain.  The initial domain is 0, so
   single-domain traces keep the historical [tid = 1]. *)
let tid () = 1 + (Domain.self () :> int)

(* Counters.  Handles are interned by name so hot paths pay one atomic
   add, not a hash lookup; the intern table itself is touched only at
   handle creation and when listing, under a mutex.  Counters double as
   gauges via [set]. *)

type counter = { cname : string; value : int Atomic.t }

let counter_mutex = Mutex.create ()

let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter_order : counter list ref = ref []

let counter name =
  Mutex.protect counter_mutex @@ fun () ->
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> c
  | None ->
      let c = { cname = name; value = Atomic.make 0 } in
      Hashtbl.replace counter_tbl name c;
      counter_order := c :: !counter_order;
      c

let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.value n)

let incr c = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.value 1)

let set c n = if Atomic.get enabled then Atomic.set c.value n

let value c = Atomic.get c.value

let counters () =
  let handles = Mutex.protect counter_mutex (fun () -> List.rev !counter_order) in
  handles
  |> List.filter_map (fun c ->
         let v = Atomic.get c.value in
         if v <> 0 then Some (c.cname, v) else None)
  |> List.sort compare

(* Span aggregator: one row per span name, accumulating call count,
   inclusive (total) and exclusive (self) wall time, and the shallowest
   nesting depth the name was seen at (used to indent the summary
   table).  Rows keep first-seen order, which for a phased pipeline
   reads as execution order.  All row mutation happens under
   [agg_mutex]; readers get a consistent view once concurrent spans
   have closed. *)

type agg = {
  name : string;
  mutable count : int;
  mutable total_us : float;
  mutable self_us : float;
  mutable depth : int;
}

let agg_mutex = Mutex.create ()

let agg_tbl : (string, agg) Hashtbl.t = Hashtbl.create 64

let agg_order : agg list ref = ref []

let agg_of name ~depth =
  Mutex.protect agg_mutex @@ fun () ->
  match Hashtbl.find_opt agg_tbl name with
  | Some a ->
      if depth < a.depth then a.depth <- depth;
      a
  | None ->
      let a = { name; count = 0; total_us = 0.0; self_us = 0.0; depth } in
      Hashtbl.replace agg_tbl name a;
      agg_order := a :: !agg_order;
      a

let aggregates () = Mutex.protect agg_mutex (fun () -> List.rev !agg_order)

(* Trace sink.  One writer for the whole process; emission from
   concurrent domains is serialised by [sink_mutex] (the writer streams
   straight to an out_channel, so interleaved emits would corrupt the
   JSON).  Each event carries its domain's tid. *)

let sink_mutex = Mutex.create ()

let sink : Chrome.t option ref = ref None

let with_sink f =
  (* Cheap unsynchronised None check first: tracing off costs a load. *)
  match !sink with
  | None -> ()
  | Some _ ->
      Mutex.protect sink_mutex (fun () -> match !sink with Some w -> f w | None -> ())

let start_trace path =
  Mutex.protect sink_mutex @@ fun () ->
  match !sink with
  | Some _ -> Error "a trace is already being written"
  | None -> (
      match open_out path with
      | exception Sys_error e -> Error e
      | oc ->
          let w = Chrome.create ~epoch:(now_us ()) oc in
          Chrome.metadata w ~name:"process_name" ~value:"grophecy";
          sink := Some w;
          Ok ())

(* Counter values are sampled into the trace as one final "C" event
   each, so Perfetto's counter tracks end at the totals the summary
   table reports. *)
let stop_trace () =
  let totals = counters () in
  Mutex.protect sink_mutex @@ fun () ->
  match !sink with
  | None -> ()
  | Some w ->
      let ts = now_us () in
      List.iter (fun (name, v) -> Chrome.counter w ~name ~value:v ~ts) totals;
      Chrome.close w;
      sink := None

let tracing () = !sink <> None

(* Open-span stack, one per domain: a span opened on a domain is closed
   on that domain, and its B/E events share that domain's tid, so each
   trace track nests properly even when domains interleave. *)

type frame = { f_agg : agg; f_start : float; mutable f_child : float }

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let depth () = List.length !(Domain.DLS.get stack_key)

let span_enabled name f =
  let stack = Domain.DLS.get stack_key in
  let d = List.length !stack in
  let a = agg_of name ~depth:d in
  let tid = tid () in
  let start = now_us () in
  with_sink (fun w -> Chrome.duration_begin w ~name ~tid ~ts:start ());
  let fr = { f_agg = a; f_start = start; f_child = 0.0 } in
  stack := fr :: !stack;
  Fun.protect
    ~finally:(fun () ->
      let stop = now_us () in
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | _ ->
          (* An inner span escaped (exception through a span that had
             already been popped): drop frames down to ours so the
             stack stays consistent. *)
          let rec pop = function
            | top :: rest when top == fr -> rest
            | _ :: rest -> pop rest
            | [] -> []
          in
          stack := pop !stack);
      let dur = stop -. start in
      Mutex.protect agg_mutex (fun () ->
          a.count <- a.count + 1;
          a.total_us <- a.total_us +. dur;
          a.self_us <- a.self_us +. Float.max 0.0 (dur -. fr.f_child));
      (match !stack with parent :: _ -> parent.f_child <- parent.f_child +. dur | [] -> ());
      with_sink (fun w -> Chrome.duration_end w ~name ~tid ~ts:stop ()))
    f

let span name f = if Atomic.get enabled then span_enabled name f else f ()

let event ?detail name =
  if Atomic.get enabled then
    with_sink (fun w -> Chrome.instant w ~name ?detail ~tid:(tid ()) ~ts:(now_us ()) ())

let reset () =
  Domain.DLS.get stack_key := [];
  Mutex.protect agg_mutex (fun () ->
      Hashtbl.reset agg_tbl;
      agg_order := []);
  Mutex.protect counter_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counter_tbl)

(* Per-phase summary, rendered as two Ascii_table blocks: spans (in
   first-seen order, indented by nesting depth) and non-zero
   counters. *)

let pp_us us =
  if us >= 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
  else Printf.sprintf "%.1f us" us

let summary_table () =
  match aggregates () with
  | [] -> None
  | aggs ->
      let root_total =
        List.fold_left (fun acc a -> if a.depth = 0 then acc +. a.total_us else acc) 0.0 aggs
      in
      let module T = Gpp_util.Ascii_table in
      let t =
        T.create ~title:"per-phase summary"
          ~columns:
            [
              ("phase", T.Left);
              ("calls", T.Right);
              ("total", T.Right);
              ("self", T.Right);
              ("mean", T.Right);
              ("% run", T.Right);
            ]
          ()
      in
      List.iter
        (fun a ->
          let indent = String.make (2 * min a.depth 8) ' ' in
          T.add_row t
            [
              indent ^ a.name;
              string_of_int a.count;
              pp_us a.total_us;
              pp_us a.self_us;
              pp_us (a.total_us /. float_of_int (max 1 a.count));
              (if root_total > 0.0 then Printf.sprintf "%.1f" (100.0 *. a.total_us /. root_total)
               else "-");
            ])
        aggs;
      let counters = counters () in
      if counters <> [] then begin
        T.add_separator t;
        List.iter (fun (name, v) -> T.add_row t [ name; string_of_int v; ""; ""; ""; "" ]) counters
      end;
      Some (T.render t)

let print_summary ?(out = stderr) () =
  match summary_table () with None -> () | Some s -> output_string out s
