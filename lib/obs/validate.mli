(** Chrome-trace validation without external tooling.

    A minimal JSON parser plus structural checks over the trace-event
    array: every element is an object with a known ["ph"], numeric
    [ts]/[pid]/[tid], names where required, and — the property the
    qcheck suite leans on — every ["B"] begin event is closed by a
    matching ["E"] end event in LIFO order. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Standard JSON (escape sequences are validated but [\u] pairs are
    kept verbatim rather than decoded). *)

type stats = {
  events : int;
  spans : int;  (** Matched B/E pairs (plus X complete events). *)
  instants : int;
  counter_samples : int;
  max_depth : int;  (** Deepest B-nesting observed. *)
}

val validate_string : string -> (stats, string) result
(** Accepts a bare event array or the [{"traceEvents": [...]}] object
    format ({!Chrome} emits the latter). *)

val validate_file : string -> (stats, string) result

val pp_stats : Format.formatter -> stats -> unit
