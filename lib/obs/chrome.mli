(** Streaming Chrome trace-event JSON writer.

    Produces the trace-event "JSON Object Format" that
    [chrome://tracing] and Perfetto open directly:
    [{"traceEvents":[...], "displayTimeUnit":"ms"}].  Events stream to
    the underlying channel as they are emitted; timestamps are
    microseconds relative to the writer's epoch.  All events carry
    [pid = 1]; duration and instant events accept a [tid] (default 1)
    so each domain's spans nest on their own timeline track. *)

type t

val create : epoch:float -> out_channel -> t
(** [create ~epoch oc] writes the object header and returns a writer.
    [epoch] is the absolute time (in microseconds, same clock as every
    [~ts] below) subtracted from every emitted timestamp. *)

val duration_begin : t -> name:string -> ?tid:int -> ts:float -> unit -> unit
(** A ["ph":"B"] event.  The category is derived from the dotted prefix
    of [name] ("transform.search" → "transform"). *)

val duration_end : t -> name:string -> ?tid:int -> ts:float -> unit -> unit
(** The matching ["ph":"E"] event; [name] must equal the innermost open
    begin event's name on the same [tid] (the writer does not check —
    {!Validate} does). *)

val instant : t -> name:string -> ?detail:string -> ?tid:int -> ts:float -> unit -> unit
(** A thread-scoped ["ph":"i"] instant event (cache hits, flushes...),
    optionally carrying a [detail] argument. *)

val counter : t -> name:string -> value:int -> ts:float -> unit
(** A ["ph":"C"] counter sample. *)

val metadata : t -> name:string -> value:string -> unit
(** A ["ph":"M"] metadata event (e.g. process_name). *)

val close : t -> unit
(** Write the closing bracket and close the channel.  Idempotent; after
    closing, every emit is a silent no-op. *)

val event_count : t -> int

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)
