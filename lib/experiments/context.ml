module Registry = Gpp_workloads.Registry
module Grophecy = Gpp_core.Grophecy
module Engine = Gpp_engine

type t = {
  session : Grophecy.session;
  machine : Gpp_arch.Machine.t;
  instances : (Registry.instance * Grophecy.report) list;
}

(* One batch over the Table I instances on one machine: the batch runner
   creates the calibrated session and runs the cells in paper order,
   which is the exact session/analyze order this module always used, so
   the reports are bit-identical to the pre-engine implementation. *)
let create ?(machine = Gpp_arch.Machine.argonne_node) ?seed () =
  let config =
    {
      Engine.Config.default with
      Engine.Config.machine;
      seed = Option.value seed ~default:Engine.Config.default.Engine.Config.seed;
    }
  in
  let workloads = List.map Registry.key Registry.paper_instances in
  let batch = Engine.Batch.run config ~workloads in
  (* Aggregate every failing workload into one report instead of
     aborting on the first: a suite author sees the whole damage. *)
  (match Engine.Batch.failed batch with
  | [] -> ()
  | failures ->
      invalid_arg
        (Printf.sprintf "Context.create: %d workload(s) failed: %s" (List.length failures)
           (String.concat "; "
              (List.map
                 (fun ((cell : Engine.Batch.cell), e) ->
                   Printf.sprintf "%s: %s" cell.workload (Engine.Error.message e))
                 failures))));
  let reports =
    List.map
      (fun ((cell : Engine.Batch.cell), r) -> (cell.workload, r))
      (Engine.Batch.succeeded batch)
  in
  let instances =
    List.map
      (fun (inst : Registry.instance) -> (inst, List.assoc (Registry.key inst) reports))
      Registry.paper_instances
  in
  let session =
    match Engine.Batch.session batch ~machine:machine.Gpp_arch.Machine.name with
    | Some s -> s
    | None -> invalid_arg "Context.create: batch produced no session"
  in
  { session; machine; instances }

let session t = t.session

let machine t = t.machine

let instances t = t.instances

let find_report t ~app ~size =
  Option.map snd
    (List.find_opt
       (fun ((i : Registry.instance), _) -> i.app = app && i.size = size)
       t.instances)

let report t ~app ~size =
  match find_report t ~app ~size with
  | Some report -> report
  | None ->
      invalid_arg
        (Printf.sprintf "Context.report: no report for %S/%S (known: %s)" app size
           (String.concat ", " (List.map (fun (i, _) -> Registry.key i) t.instances)))

let reports_of_app t app =
  List.filter_map
    (fun ((i : Registry.instance), report) -> if i.app = app then Some (i.size, report) else None)
    t.instances

let apps t =
  List.rev
    (List.fold_left
       (fun acc ((i : Registry.instance), _) -> if List.mem i.app acc then acc else i.app :: acc)
       [] t.instances)
