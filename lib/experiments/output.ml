type t = { id : string; title : string; body : string }

let make ~id ~title ~body = { id; title; body }

let render t =
  let rule = String.make 74 '=' in
  Printf.sprintf "%s\n%s: %s\n%s\n%s\n" rule (String.uppercase_ascii t.id) t.title rule t.body

let print t = print_string (render t)
