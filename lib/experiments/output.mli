(** Rendered experiment artifacts. *)

type t = {
  id : string;  (** Short identifier, e.g. ["fig2"], ["table1"]. *)
  title : string;  (** Paper caption summary. *)
  body : string;  (** Preformatted text: tables and/or plots. *)
}

val make : id:string -> title:string -> body:string -> t

val render : t -> string
(** The exact bytes {!print} writes (header rule + body).  The serve
    layer returns these verbatim so HTTP responses stay byte-equivalent
    to CLI output. *)

val print : t -> unit
(** Write {!render} to stdout. *)
