module Machine = Gpp_arch.Machine
module Pcie_spec = Gpp_arch.Pcie_spec
module Link = Gpp_pcie.Link
module Model = Gpp_pcie.Model
module Calibrate = Gpp_pcie.Calibrate
module Grophecy = Gpp_core.Grophecy
module Projection = Gpp_core.Projection
module Measurement = Gpp_core.Measurement
module Error = Gpp_core.Error
module Predictor = Gpp_predict.Predictor
module Pricing = Gpp_predict.Pricing
module Correction = Gpp_predict.Correction
module Features = Gpp_predict.Features

(* Cross-machine evaluation of the paper's calibration protocol: how far
   does a (alpha, beta) pair calibrated on machine A carry when its
   predictions are scored against machine B?

   For every machine we build a session (staging-aware two-point
   calibration, exactly what `grophecy analyze` runs) and take the
   link's *noise-free* transfer times as that machine's ground truth.
   For every ordered pair (source, target) we then score:

   - transfer accuracy: the source's calibrated models predicting the
     target's ground-truth sweep, mean absolute % error per direction —
     with (source = target) rows giving the same-machine baseline, i.e.
     the residual of two-point calibration against measurement noise;

   - end-to-end accuracy: each workload is projected once per machine
     with its own models; the cross projection reuses the target's
     explored kernels and transfer plan but prices transfers with the
     source's models (Projection.assemble is pure), so the delta
     isolates exactly what mis-calibrated transfer pricing does to the
     projected total.

   Everything here is deterministic in (seed, machines, workloads,
   sizes): sessions draw from per-machine seeded streams and the ground
   truth is noise-free, so the TSV is golden-diffable. *)

type pair = {
  source : Machine.t;
  target : Machine.t;
  h2d_err : float;  (** Mean abs % error over the transfer sweep. *)
  d2h_err : float;
  e2e_err : float;  (** Mean abs % error of the projected total. *)
}

type t = {
  machines : Machine.t list;
  workloads : string list;
  sizes : int list;
  pairs : pair list;  (** Source-major, machine order. *)
}

let default_workloads = [ "vecadd/16M"; "hotspot/512 x 512"; "srad/1024 x 1024" ]

type mctx = {
  machine : Machine.t;
  session : Grophecy.session;
  truth : Link.direction -> bytes:int -> float;
  projections : (string * Projection.t) list;
}

let context ?protocol ?analytic_params ?space ?policy ~seed ~workloads machine =
  let ( let* ) = Result.bind in
  let session = Grophecy.init ~seed ?protocol machine in
  let memory = Link.memory_of_staging machine.Machine.staging in
  let truth direction ~bytes =
    Link.expected_time session.Grophecy.calibration_link direction memory ~bytes
  in
  let* projections =
    List.fold_left
      (fun acc key ->
        let* acc = acc in
        let* instance =
          match Gpp_workloads.Registry.find_by_key key with
          | Some i -> Ok i
          | None -> Error (Error.parse ~source:key (Printf.sprintf "unknown workload %S" key))
        in
        let program = instance.Gpp_workloads.Registry.program 1 in
        let* projection =
          Projection.project ?analytic_params ?space ?policy
            ~pricing:session.Grophecy.pricing program
        in
        Ok ((key, projection) :: acc))
      (Ok []) workloads
  in
  Ok { machine; session; truth; projections = List.rev projections }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let abs_pct ~truth value = Float.abs (value -. truth) /. truth *. 100.0

let transfer_error ~sizes (source : mctx) (target : mctx) direction =
  let model =
    match direction with
    | Link.Host_to_device -> source.session.Grophecy.h2d
    | Link.Device_to_host -> source.session.Grophecy.d2h
  in
  mean
    (List.map
       (fun bytes ->
         abs_pct ~truth:(target.truth direction ~bytes) (Model.predict model ~bytes))
       sizes)

let e2e_error (source : mctx) (target : mctx) =
  (* Unscaled cross pricing: the source's models carried verbatim to the
     target machine, exactly the historical [~machine ~h2d ~d2h] call. *)
  let pricing =
    Pricing.make ~predictor:Predictor.analytic ~source:source.machine ~target:target.machine
      ~h2d:source.session.Grophecy.h2d ~d2h:source.session.Grophecy.d2h ()
  in
  mean
    (List.map
       (fun (_, (own : Projection.t)) ->
         let cross =
           Projection.assemble ~pricing ~kernels:own.Projection.kernels
             ~plan:own.Projection.plan own.Projection.program
         in
         abs_pct ~truth:own.Projection.total_time cross.Projection.total_time)
       target.projections)

let run ?protocol ?analytic_params ?space ?policy ?(seed = 0x1B0A_2013_6CA1_55AAL)
    ?(workloads = default_workloads) ?(max_bytes = 64 * Gpp_util.Units.mib) ~machines () =
  let ( let* ) = Result.bind in
  let sizes = Calibrate.power_of_two_sizes ~max_bytes () in
  let* contexts =
    List.fold_left
      (fun acc machine ->
        let* acc = acc in
        let* ctx = context ?protocol ?analytic_params ?space ?policy ~seed ~workloads machine in
        Ok (ctx :: acc))
      (Ok []) machines
  in
  let contexts = List.rev contexts in
  let pairs =
    List.concat_map
      (fun source ->
        List.map
          (fun target ->
            {
              source = source.machine;
              target = target.machine;
              h2d_err = transfer_error ~sizes source target Link.Host_to_device;
              d2h_err = transfer_error ~sizes source target Link.Device_to_host;
              e2e_err = e2e_error source target;
            })
          contexts)
      contexts
  in
  Ok { machines; workloads; sizes; pairs }

(* --- predictor variants --------------------------------------------- *)

(* The predictor-stack ablation: the same machine grid, but every
   (source, target) pair scored once per predictor variant, against the
   target's *simulated measured* totals rather than its own projection —
   so the numbers answer "how close does variant V get to what the
   target machine actually runs", the question EXPERIMENTS.md tables.

   Measured ground truth is deterministic: kernel times draw from the
   session's noise seed exactly as the Simulate stage does, and transfer
   times are the link's noise-free expected times (no stateful RNG
   advances), so the TSV is golden-diffable. *)

type ventry = {
  projection : Projection.t;  (** The target's own analytic projection. *)
  measured_total : float;  (** Simulated kernel time + expected transfers. *)
}

type vctx = { ctx : mctx; entries : (string * ventry) list }

type variant_row = {
  v_predictor : Predictor.t;
  v_source : Machine.t;
  v_target : Machine.t;
  v_h2d_err : float;  (** Mean abs % error over the transfer sweep. *)
  v_d2h_err : float;
  v_e2e_err : float;  (** Mean abs % error vs the target's measured total. *)
}

type variants = {
  v_machines : Machine.t list;
  v_workloads : string list;
  v_sizes : int list;
  v_predictors : Predictor.t list;
  rows : variant_row list;  (** Predictor-major, then source-major. *)
}

let measured_entries ?sim_config ?runs (ctx : mctx) =
  let ( let* ) = Result.bind in
  let machine = ctx.machine in
  let memory = Link.memory_of_staging machine.Machine.staging in
  let* entries =
    List.fold_left
      (fun acc (key, (p : Projection.t)) ->
        let* acc = acc in
        let* _, kernel_time =
          Measurement.measure_kernels ?sim_config ?runs ~seed:ctx.session.Grophecy.noise_seed
            ~machine ~kernels:p.Projection.kernels p.Projection.program
        in
        let transfer_time =
          List.fold_left
            (fun a (tm : Measurement.transfer_measurement) -> a +. tm.Measurement.time)
            0.0
            (Measurement.expected_transfers ~memory ~link:ctx.session.Grophecy.application_link
               p.Projection.plan)
        in
        Ok ((key, { projection = p; measured_total = kernel_time +. transfer_time }) :: acc))
      (Ok []) ctx.projections
  in
  Ok { ctx; entries = List.rev entries }

let entry_features ~(source : vctx) ~(target : vctx) (e : ventry) =
  Features.extract ~source:source.ctx.machine ~target:target.ctx.machine
    ~program:e.projection.Projection.program ~plan:e.projection.Projection.plan
    ~kernels:
      (List.map
         (fun (kp : Projection.kernel_projection) ->
           kp.Projection.candidate.Gpp_transform.Explore.characteristics)
         e.projection.Projection.kernels)

let cross_total pricing (e : ventry) =
  let p =
    Projection.assemble ~pricing ~kernels:e.projection.Projection.kernels
      ~plan:e.projection.Projection.plan e.projection.Projection.program
  in
  p.Projection.predicted_total

let variant_errors ~lambda ~sizes ~predictor (source : vctx) (target : vctx) =
  let ( let* ) = Result.bind in
  let pricing =
    Pricing.make ~predictor ~source:source.ctx.machine ~target:target.ctx.machine
      ~h2d:source.ctx.session.Grophecy.h2d ~d2h:source.ctx.session.Grophecy.d2h ()
  in
  let sweep direction =
    mean
      (List.map
         (fun bytes ->
           abs_pct ~truth:(target.ctx.truth direction ~bytes)
             (Pricing.predict pricing direction ~bytes))
         sizes)
  in
  let* e2e_errs =
    List.fold_left
      (fun acc (key, e) ->
        let* acc = acc in
        let* prediction =
          if not (Predictor.has_learned predictor) then Ok (cross_total pricing e)
          else
            (* Leave-one-workload-out: the correction for the held-out
               workload trains on the pair's remaining workloads. *)
            let samples =
              List.filter_map
                (fun (k, e') ->
                  if String.equal k key then None
                  else
                    let base = cross_total pricing e' in
                    if base <= 0.0 then None
                    else Some (entry_features ~source ~target e', e'.measured_total /. base))
                target.entries
            in
            match Correction.fit ~lambda samples with
            | Error m ->
                Error
                  (Error.config
                     (Printf.sprintf "crossval learned fit (%s -> %s, holding out %s): %s"
                        source.ctx.machine.Machine.id target.ctx.machine.Machine.id key m))
            | Ok corr -> Ok (cross_total (Pricing.with_correction pricing corr) e)
        in
        Ok (abs_pct ~truth:e.measured_total prediction :: acc))
      (Ok []) target.entries
  in
  Ok
    {
      v_predictor = predictor;
      v_source = source.ctx.machine;
      v_target = target.ctx.machine;
      v_h2d_err = sweep Link.Host_to_device;
      v_d2h_err = sweep Link.Device_to_host;
      v_e2e_err = mean (List.rev e2e_errs);
    }

let run_variants ?protocol ?analytic_params ?space ?policy ?sim_config ?runs
    ?(lambda = Correction.default_lambda) ?(seed = 0x1B0A_2013_6CA1_55AAL)
    ?(workloads = default_workloads) ?(max_bytes = 64 * Gpp_util.Units.mib) ~predictors ~machines
    () =
  let ( let* ) = Result.bind in
  let sizes = Calibrate.power_of_two_sizes ~max_bytes () in
  let* contexts =
    List.fold_left
      (fun acc machine ->
        let* acc = acc in
        let* ctx = context ?protocol ?analytic_params ?space ?policy ~seed ~workloads machine in
        let* vctx = measured_entries ?sim_config ?runs ctx in
        Ok (vctx :: acc))
      (Ok []) machines
  in
  let contexts = List.rev contexts in
  let* rows =
    List.fold_left
      (fun acc predictor ->
        List.fold_left
          (fun acc source ->
            List.fold_left
              (fun acc target ->
                let* acc = acc in
                let* row = variant_errors ~lambda ~sizes ~predictor source target in
                Ok (row :: acc))
              acc contexts)
          acc contexts)
      (Ok []) predictors
  in
  Ok
    {
      v_machines = machines;
      v_workloads = workloads;
      v_sizes = sizes;
      v_predictors = predictors;
      rows = List.rev rows;
    }

let variants_tsv_header = "predictor\tsource\ttarget\tsame\th2d_err\td2h_err\te2e_err"

let variants_to_tsv v =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf variants_tsv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Printf.bprintf buf "%s\t%s\t%s\t%s\t%.3f\t%.3f\t%.3f\n" (Predictor.name r.v_predictor)
        r.v_source.Machine.id r.v_target.Machine.id
        (if r.v_source.Machine.id = r.v_target.Machine.id then "yes" else "no")
        r.v_h2d_err r.v_d2h_err r.v_e2e_err)
    v.rows;
  Buffer.contents buf

let row_is_cross r = r.v_source.Machine.id <> r.v_target.Machine.id

let pp_variants_summary ppf v =
  Format.fprintf ppf "@[<v>predictor variants: %d machines, %d workloads, %d predictors@,"
    (List.length v.v_machines) (List.length v.v_workloads) (List.length v.v_predictors);
  List.iter
    (fun predictor ->
      let mine =
        List.filter (fun r -> Predictor.equal r.v_predictor predictor && row_is_cross r) v.rows
      in
      let transfer =
        mean (List.map (fun r -> 0.5 *. (r.v_h2d_err +. r.v_d2h_err)) mine)
      in
      let e2e = mean (List.map (fun r -> r.v_e2e_err) mine) in
      Format.fprintf ppf "  %-16s cross transfer %7.1f%%  cross e2e %7.1f%%@,"
        (Predictor.name predictor) transfer e2e)
    v.v_predictors;
  Format.fprintf ppf "  (errors vs each target's simulated measured totals)@]"

(* --- rendering ------------------------------------------------------ *)

let tsv_header = "source\ttarget\tsame\tsource_link\ttarget_link\th2d_err\td2h_err\te2e_err"

let to_tsv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf tsv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      Printf.bprintf buf "%s\t%s\t%s\t%s\t%s\t%.3f\t%.3f\t%.3f\n" p.source.Machine.id
        p.target.Machine.id
        (if p.source.Machine.id = p.target.Machine.id then "yes" else "no")
        (Pcie_spec.link_label p.source.Machine.pcie)
        (Pcie_spec.link_label p.target.Machine.pcie)
        p.h2d_err p.d2h_err p.e2e_err)
    t.pairs;
  Buffer.contents buf

let is_same p = p.source.Machine.id = p.target.Machine.id

let transfer_err p = 0.5 *. (p.h2d_err +. p.d2h_err)

(* The accuracy/scope tradeoff in one block: the same-machine rows bound
   what calibration can do at all (residual vs measurement noise); the
   cross rows say how quickly that accuracy decays as the target machine
   diverges, and how many targets a single calibration covers at a given
   error budget. *)
let pp_summary ppf t =
  let same, cross = List.partition is_same t.pairs in
  let worst_by f = function
    | [] -> None
    | ps -> Some (List.fold_left (fun a p -> if f p > f a then p else a) (List.hd ps) ps)
  in
  let best_by f = function
    | [] -> None
    | ps -> Some (List.fold_left (fun a p -> if f p < f a then p else a) (List.hd ps) ps)
  in
  let budget = 10.0 in
  let within =
    List.length (List.filter (fun p -> p.e2e_err <= budget) cross)
  in
  Format.fprintf ppf "@[<v>cross-machine calibration: %d machines, %d workloads, %d sizes@,"
    (List.length t.machines) (List.length t.workloads) (List.length t.sizes);
  Format.fprintf ppf "  same-machine transfer error (calibration residual): %.2f%% mean@,"
    (mean (List.map transfer_err same));
  (match (best_by transfer_err cross, worst_by transfer_err cross) with
  | Some b, Some w ->
      Format.fprintf ppf
        "  cross-machine transfer error: %.1f%% mean (best %s->%s %.1f%%, worst %s->%s %.1f%%)@,"
        (mean (List.map transfer_err cross))
        b.source.Machine.id b.target.Machine.id (transfer_err b) w.source.Machine.id
        w.target.Machine.id (transfer_err w)
  | _ -> ());
  (match worst_by (fun p -> p.e2e_err) cross with
  | Some w ->
      Format.fprintf ppf
        "  cross-machine end-to-end error: %.1f%% mean (worst %s->%s %.1f%%)@,"
        (mean (List.map (fun p -> p.e2e_err) cross))
        w.source.Machine.id w.target.Machine.id w.e2e_err
  | None -> ());
  if cross <> [] then
    Format.fprintf ppf
      "  scope: %d/%d cross pairs stay within %.0f%% projected-total error@]" within
      (List.length cross) budget
  else Format.fprintf ppf "  scope: no cross pairs (single machine)@]"
