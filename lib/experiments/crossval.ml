module Machine = Gpp_arch.Machine
module Pcie_spec = Gpp_arch.Pcie_spec
module Link = Gpp_pcie.Link
module Model = Gpp_pcie.Model
module Calibrate = Gpp_pcie.Calibrate
module Grophecy = Gpp_core.Grophecy
module Projection = Gpp_core.Projection
module Error = Gpp_core.Error

(* Cross-machine evaluation of the paper's calibration protocol: how far
   does a (alpha, beta) pair calibrated on machine A carry when its
   predictions are scored against machine B?

   For every machine we build a session (staging-aware two-point
   calibration, exactly what `grophecy analyze` runs) and take the
   link's *noise-free* transfer times as that machine's ground truth.
   For every ordered pair (source, target) we then score:

   - transfer accuracy: the source's calibrated models predicting the
     target's ground-truth sweep, mean absolute % error per direction —
     with (source = target) rows giving the same-machine baseline, i.e.
     the residual of two-point calibration against measurement noise;

   - end-to-end accuracy: each workload is projected once per machine
     with its own models; the cross projection reuses the target's
     explored kernels and transfer plan but prices transfers with the
     source's models (Projection.assemble is pure), so the delta
     isolates exactly what mis-calibrated transfer pricing does to the
     projected total.

   Everything here is deterministic in (seed, machines, workloads,
   sizes): sessions draw from per-machine seeded streams and the ground
   truth is noise-free, so the TSV is golden-diffable. *)

type pair = {
  source : Machine.t;
  target : Machine.t;
  h2d_err : float;  (** Mean abs % error over the transfer sweep. *)
  d2h_err : float;
  e2e_err : float;  (** Mean abs % error of the projected total. *)
}

type t = {
  machines : Machine.t list;
  workloads : string list;
  sizes : int list;
  pairs : pair list;  (** Source-major, machine order. *)
}

let default_workloads = [ "vecadd/16M"; "hotspot/512 x 512"; "srad/1024 x 1024" ]

type mctx = {
  machine : Machine.t;
  session : Grophecy.session;
  truth : Link.direction -> bytes:int -> float;
  projections : (string * Projection.t) list;
}

let context ?protocol ?analytic_params ?space ?policy ~seed ~workloads machine =
  let ( let* ) = Result.bind in
  let session = Grophecy.init ~seed ?protocol machine in
  let memory = Link.memory_of_staging machine.Machine.staging in
  let truth direction ~bytes =
    Link.expected_time session.Grophecy.calibration_link direction memory ~bytes
  in
  let* projections =
    List.fold_left
      (fun acc key ->
        let* acc = acc in
        let* instance =
          match Gpp_workloads.Registry.find_by_key key with
          | Some i -> Ok i
          | None -> Error (Error.parse ~source:key (Printf.sprintf "unknown workload %S" key))
        in
        let program = instance.Gpp_workloads.Registry.program 1 in
        let* projection =
          Projection.project ?analytic_params ?space ?policy ~machine
            ~h2d:session.Grophecy.h2d ~d2h:session.Grophecy.d2h program
        in
        Ok ((key, projection) :: acc))
      (Ok []) workloads
  in
  Ok { machine; session; truth; projections = List.rev projections }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let abs_pct ~truth value = Float.abs (value -. truth) /. truth *. 100.0

let transfer_error ~sizes (source : mctx) (target : mctx) direction =
  let model =
    match direction with
    | Link.Host_to_device -> source.session.Grophecy.h2d
    | Link.Device_to_host -> source.session.Grophecy.d2h
  in
  mean
    (List.map
       (fun bytes ->
         abs_pct ~truth:(target.truth direction ~bytes) (Model.predict model ~bytes))
       sizes)

let e2e_error (source : mctx) (target : mctx) =
  mean
    (List.map
       (fun (_, (own : Projection.t)) ->
         let cross =
           Projection.assemble ~machine:target.machine ~h2d:source.session.Grophecy.h2d
             ~d2h:source.session.Grophecy.d2h ~kernels:own.Projection.kernels
             ~plan:own.Projection.plan own.Projection.program
         in
         abs_pct ~truth:own.Projection.total_time cross.Projection.total_time)
       target.projections)

let run ?protocol ?analytic_params ?space ?policy ?(seed = 0x1B0A_2013_6CA1_55AAL)
    ?(workloads = default_workloads) ?(max_bytes = 64 * Gpp_util.Units.mib) ~machines () =
  let ( let* ) = Result.bind in
  let sizes = Calibrate.power_of_two_sizes ~max_bytes () in
  let* contexts =
    List.fold_left
      (fun acc machine ->
        let* acc = acc in
        let* ctx = context ?protocol ?analytic_params ?space ?policy ~seed ~workloads machine in
        Ok (ctx :: acc))
      (Ok []) machines
  in
  let contexts = List.rev contexts in
  let pairs =
    List.concat_map
      (fun source ->
        List.map
          (fun target ->
            {
              source = source.machine;
              target = target.machine;
              h2d_err = transfer_error ~sizes source target Link.Host_to_device;
              d2h_err = transfer_error ~sizes source target Link.Device_to_host;
              e2e_err = e2e_error source target;
            })
          contexts)
      contexts
  in
  Ok { machines; workloads; sizes; pairs }

(* --- rendering ------------------------------------------------------ *)

let tsv_header = "source\ttarget\tsame\tsource_link\ttarget_link\th2d_err\td2h_err\te2e_err"

let to_tsv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf tsv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      Printf.bprintf buf "%s\t%s\t%s\t%s\t%s\t%.3f\t%.3f\t%.3f\n" p.source.Machine.id
        p.target.Machine.id
        (if p.source.Machine.id = p.target.Machine.id then "yes" else "no")
        (Pcie_spec.link_label p.source.Machine.pcie)
        (Pcie_spec.link_label p.target.Machine.pcie)
        p.h2d_err p.d2h_err p.e2e_err)
    t.pairs;
  Buffer.contents buf

let is_same p = p.source.Machine.id = p.target.Machine.id

let transfer_err p = 0.5 *. (p.h2d_err +. p.d2h_err)

(* The accuracy/scope tradeoff in one block: the same-machine rows bound
   what calibration can do at all (residual vs measurement noise); the
   cross rows say how quickly that accuracy decays as the target machine
   diverges, and how many targets a single calibration covers at a given
   error budget. *)
let pp_summary ppf t =
  let same, cross = List.partition is_same t.pairs in
  let worst_by f = function
    | [] -> None
    | ps -> Some (List.fold_left (fun a p -> if f p > f a then p else a) (List.hd ps) ps)
  in
  let best_by f = function
    | [] -> None
    | ps -> Some (List.fold_left (fun a p -> if f p < f a then p else a) (List.hd ps) ps)
  in
  let budget = 10.0 in
  let within =
    List.length (List.filter (fun p -> p.e2e_err <= budget) cross)
  in
  Format.fprintf ppf "@[<v>cross-machine calibration: %d machines, %d workloads, %d sizes@,"
    (List.length t.machines) (List.length t.workloads) (List.length t.sizes);
  Format.fprintf ppf "  same-machine transfer error (calibration residual): %.2f%% mean@,"
    (mean (List.map transfer_err same));
  (match (best_by transfer_err cross, worst_by transfer_err cross) with
  | Some b, Some w ->
      Format.fprintf ppf
        "  cross-machine transfer error: %.1f%% mean (best %s->%s %.1f%%, worst %s->%s %.1f%%)@,"
        (mean (List.map transfer_err cross))
        b.source.Machine.id b.target.Machine.id (transfer_err b) w.source.Machine.id
        w.target.Machine.id (transfer_err w)
  | _ -> ());
  (match worst_by (fun p -> p.e2e_err) cross with
  | Some w ->
      Format.fprintf ppf
        "  cross-machine end-to-end error: %.1f%% mean (worst %s->%s %.1f%%)@,"
        (mean (List.map (fun p -> p.e2e_err) cross))
        w.source.Machine.id w.target.Machine.id w.e2e_err
  | None -> ());
  if cross <> [] then
    Format.fprintf ppf
      "  scope: %d/%d cross pairs stay within %.0f%% projected-total error@]" within
      (List.length cross) budget
  else Format.fprintf ppf "  scope: no cross pairs (single machine)@]"
