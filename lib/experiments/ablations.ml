module Link = Gpp_pcie.Link
module Calibrate = Gpp_pcie.Calibrate
module Model = Gpp_pcie.Model
module Units = Gpp_util.Units
module Stats = Gpp_util.Stats
module Analyzer = Gpp_dataflow.Analyzer

let validation_sweep ctx direction =
  let link = (Context.session ctx).Gpp_core.Grophecy.calibration_link in
  let sizes = Calibrate.power_of_two_sizes ~max_bytes:(512 * Units.mib) () in
  Calibrate.measure_sweep link direction Link.Pinned ~sizes

let model_error_on sweep model =
  Stats.mean
    (List.map
       (fun (bytes, measured) ->
         Stats.error_magnitude ~predicted:(Model.predict model ~bytes) ~measured)
       sweep)

let run_calibration_size ctx =
  let link = (Context.session ctx).Gpp_core.Grophecy.calibration_link in
  let sweep = validation_sweep ctx Link.Host_to_device in
  let table =
    Gpp_util.Ascii_table.create ~title:"Model error vs large-calibration-transfer size (CPU-to-GPU)"
      ~columns:
        [
          ("Calibration size", Gpp_util.Ascii_table.Right);
          ("1/beta", Gpp_util.Ascii_table.Right);
          ("Mean model error", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun large_bytes ->
      let protocol = { Calibrate.default_protocol with Calibrate.large_bytes } in
      let model = Calibrate.calibrate ~protocol link Link.Host_to_device Link.Pinned in
      Gpp_util.Ascii_table.add_row table
        [
          Units.bytes_to_string large_bytes;
          Units.bandwidth_to_string (Model.bandwidth model);
          Printf.sprintf "%.2f%%" (model_error_on sweep model);
        ])
    [
      64 * Units.kib;
      Units.mib;
      4 * Units.mib;
      16 * Units.mib;
      64 * Units.mib;
      128 * Units.mib;
      512 * Units.mib;
    ];
  Output.make ~id:"ablation-calibration-size"
    ~title:"Sensitivity of the two-point calibration to the large-transfer size (footnote 5)"
    ~body:
      (Gpp_util.Ascii_table.render table
      ^ "the two-point form subtracts the small-transfer time before\n\
         dividing, so latency never contaminates beta: every size down to\n\
         64 KiB recovers the same bandwidth, and the choice of large\n\
         calibration size is immaterial, as footnote 5 claims\n")

let run_regression ctx =
  let link = (Context.session ctx).Gpp_core.Grophecy.calibration_link in
  let table =
    Gpp_util.Ascii_table.create ~title:"Two-point calibration vs least-squares fit (pinned)"
      ~columns:
        [
          ("Direction", Gpp_util.Ascii_table.Left);
          ("Method", Gpp_util.Ascii_table.Left);
          ("alpha", Gpp_util.Ascii_table.Right);
          ("1/beta", Gpp_util.Ascii_table.Right);
          ("Mean error", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun direction ->
      let sweep = validation_sweep ctx direction in
      let two_point = Calibrate.calibrate link direction Link.Pinned in
      let fitted = Calibrate.least_squares_model link direction Link.Pinned ~sweep in
      List.iter
        (fun (label, model) ->
          Gpp_util.Ascii_table.add_row table
            [
              Link.direction_name direction;
              label;
              Units.time_to_string (Model.latency model);
              Units.bandwidth_to_string (Model.bandwidth model);
              Printf.sprintf "%.2f%%" (model_error_on sweep model);
            ])
        [ ("two-point (paper)", two_point); ("least squares", fitted) ])
    [ Link.Host_to_device; Link.Device_to_host ];
  Output.make ~id:"ablation-regression"
    ~title:"Two measurements suffice: two-point calibration vs full regression"
    ~body:
      (Gpp_util.Ascii_table.render table
      ^ "least squares is dominated by the huge transfers and mis-estimates alpha,\n\
         so the paper's two-point scheme is both cheaper and at least as accurate\n\
         at small sizes\n")

let per_plan_times ctx (plan : Analyzer.plan) =
  let session = Context.session ctx in
  let model_of = function
    | Analyzer.To_device -> session.Gpp_core.Grophecy.h2d
    | Analyzer.From_device -> session.Gpp_core.Grophecy.d2h
  in
  List.fold_left
    (fun acc (t : Analyzer.transfer) ->
      acc +. Model.predict (model_of t.Analyzer.direction) ~bytes:t.Analyzer.bytes)
    0.0 (Analyzer.transfers plan)

let batched_times ctx (plan : Analyzer.plan) =
  let session = Context.session ctx in
  Model.predict session.Gpp_core.Grophecy.h2d ~bytes:(Analyzer.input_bytes plan)
  +. Model.predict session.Gpp_core.Grophecy.d2h ~bytes:(Analyzer.output_bytes plan)

let run_batching ctx =
  let table =
    Gpp_util.Ascii_table.create ~title:"Per-array transfers vs one batched transfer per direction"
      ~columns:
        [
          ("Workload", Gpp_util.Ascii_table.Left);
          ("Arrays", Gpp_util.Ascii_table.Right);
          ("Per-array (paper)", Gpp_util.Ascii_table.Right);
          ("Batched", Gpp_util.Ascii_table.Right);
          ("Saving", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      let plan = report.projection.Gpp_core.Projection.plan in
      let separate = per_plan_times ctx plan and batched = batched_times ctx plan in
      Gpp_util.Ascii_table.add_row table
        [
          Gpp_workloads.Registry.key inst;
          string_of_int (List.length (Analyzer.transfers plan));
          Units.time_to_string separate;
          Units.time_to_string batched;
          Printf.sprintf "%.2f%%" (100.0 *. (separate -. batched) /. separate);
        ])
    (Context.instances ctx);
  Output.make ~id:"ablation-batching"
    ~title:"Batching arrays saves one latency term per extra array (\u{00a7}III-B: a minor benefit)"
    ~body:(Gpp_util.Ascii_table.render table)

let run_memory_type ctx =
  let session = Context.session ctx in
  let link = session.Gpp_core.Grophecy.calibration_link in
  let pageable_h2d = Calibrate.calibrate link Link.Host_to_device Link.Pageable in
  let pageable_d2h = Calibrate.calibrate link Link.Device_to_host Link.Pageable in
  let table =
    Gpp_util.Ascii_table.create ~title:"Predicted transfer time: pinned vs pageable assumption"
      ~columns:
        [
          ("Workload", Gpp_util.Ascii_table.Left);
          ("Pinned", Gpp_util.Ascii_table.Right);
          ("Pageable", Gpp_util.Ascii_table.Right);
          ("Pageable penalty", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      let plan = report.projection.Gpp_core.Projection.plan in
      let pinned = per_plan_times ctx plan in
      let pageable =
        List.fold_left
          (fun acc (t : Analyzer.transfer) ->
            let model =
              match t.Analyzer.direction with
              | Analyzer.To_device -> pageable_h2d
              | Analyzer.From_device -> pageable_d2h
            in
            acc +. Model.predict model ~bytes:t.Analyzer.bytes)
          0.0 (Analyzer.transfers plan)
      in
      Gpp_util.Ascii_table.add_row table
        [
          Gpp_workloads.Registry.key inst;
          Units.time_to_string pinned;
          Units.time_to_string pageable;
          Printf.sprintf "%.2fx" (pageable /. pinned);
        ])
    (Context.instances ctx);
  Output.make ~id:"ablation-memory-type"
    ~title:"Cost of the pageable-memory fallback the framework's pinned assumption avoids"
    ~body:(Gpp_util.Ascii_table.render table)

(* Synthetic sparse-gather workload for the transfer-policy ablation: a
   kernel that gathers ~10% of a large sparse table. *)
let sparse_gather_program ~table_elements ~nnz =
  let module Ir = Gpp_skeleton.Ir in
  let module Decl = Gpp_skeleton.Decl in
  let module Ix = Gpp_skeleton.Index_expr in
  let arrays =
    [
      Decl.sparse "table" ~nnz ~dims:[ table_elements ];
      Decl.dense "indices" ~dims:[ nnz ];
      Decl.dense "out" ~dims:[ nnz ];
    ]
  in
  let kernel =
    Ir.kernel "gather"
      ~loops:[ Ir.loop "i" ~extent:nnz ]
      ~body:
        [
          Ir.load "indices" [ Ix.var "i" ];
          Ir.load_indirect "table" ~via:"indices";
          Ir.compute 1.0;
          Ir.store "out" [ Ix.var "i" ];
        ]
  in
  Gpp_skeleton.Program.create ~name:"sparse-gather" ~arrays ~kernels:[ kernel ]
    ~schedule:[ Gpp_skeleton.Program.Call "gather" ] ()

let run_sparse_policy ctx =
  let program = sparse_gather_program ~table_elements:(8 * 1024 * 1024) ~nnz:(800 * 1024) in
  let conservative = Analyzer.analyze program in
  let exact =
    Analyzer.analyze ~policy:{ Analyzer.default_policy with Analyzer.sparse_exact = true } program
  in
  let session = Context.session ctx in
  let time plan =
    Model.predict session.Gpp_core.Grophecy.h2d ~bytes:(Analyzer.input_bytes plan)
  in
  let body =
    Printf.sprintf
      "synthetic gather of 800K entries from an 8M-element sparse table:\n\
      \  conservative policy (paper): upload %s, predicted %s\n\
      \  exact-population policy:     upload %s, predicted %s\n\
       the conservative assumption costs %.1fx more transfer when only the\n\
       populated entries are actually referenced; the paper accepts this\n\
       in exchange for requiring no user hints (\u{00a7}III-B)\n"
      (Units.bytes_to_string (Analyzer.input_bytes conservative))
      (Units.time_to_string (time conservative))
      (Units.bytes_to_string (Analyzer.input_bytes exact))
      (Units.time_to_string (time exact))
      (float_of_int (Analyzer.input_bytes conservative)
      /. float_of_int (Analyzer.input_bytes exact))
  in
  Output.make ~id:"ablation-sparse-policy"
    ~title:"Conservative whole-array vs exact sparse transfer policy" ~body

let all =
  [ run_calibration_size; run_regression; run_batching; run_memory_type; run_sparse_policy ]
