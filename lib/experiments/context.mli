(** Shared experiment state.

    Runs one {!Gpp_engine.Batch} over every Table I application/data-size
    pair on one machine (calibrating a single session, exactly as the
    paper derives all results from one set of runs); every table and
    figure then reads from these cached reports. *)

type t

val create : ?machine:Gpp_arch.Machine.t -> ?seed:int64 -> unit -> t
(** Analyze every Table I instance at one iteration.  Defaults: the
    Argonne node, a fixed seed.

    @raise Invalid_argument if any instance fails to analyze; the
    message aggregates every failing workload, not just the first. *)

val session : t -> Gpp_core.Grophecy.session

val machine : t -> Gpp_arch.Machine.t

val instances : t -> (Gpp_workloads.Registry.instance * Gpp_core.Grophecy.report) list
(** Paper order. *)

val find_report : t -> app:string -> size:string -> Gpp_core.Grophecy.report option

val report : t -> app:string -> size:string -> Gpp_core.Grophecy.report
(** @raise Invalid_argument for an unknown pair, naming the pair and the
    known keys. *)

val reports_of_app : t -> string -> (string * Gpp_core.Grophecy.report) list
(** [(size, report)] pairs for one application. *)

val apps : t -> string list
(** Distinct applications, first-appearance order. *)
