module Link = Gpp_pcie.Link
module Memory_choice = Gpp_pcie.Memory_choice
module Fusion = Gpp_transform.Fusion
module Overlap = Gpp_core.Overlap
module Analyzer = Gpp_dataflow.Analyzer
module Units = Gpp_util.Units

let run_memory_choice ctx =
  let session = Context.session ctx in
  let link = session.Gpp_core.Grophecy.calibration_link in
  let h2d = Memory_choice.models_for link Link.Host_to_device in
  let d2h = Memory_choice.models_for link Link.Device_to_host in
  let table =
    Gpp_util.Ascii_table.create
      ~title:"Memory-type choice per transfer (allocation cost amortized over reuses)"
      ~columns:
        [
          ("Workload", Gpp_util.Ascii_table.Left);
          ("Array", Gpp_util.Ascii_table.Left);
          ("Dir", Gpp_util.Ascii_table.Left);
          ("Size", Gpp_util.Ascii_table.Right);
          ("One-shot choice", Gpp_util.Ascii_table.Left);
          ("x100 choice", Gpp_util.Ascii_table.Left);
          ("Pinned pays from", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      List.iter
        (fun (t : Analyzer.transfer) ->
          let models =
            match t.Analyzer.direction with Analyzer.To_device -> h2d | Analyzer.From_device -> d2h
          in
          let once = Memory_choice.choose models ~bytes:t.Analyzer.bytes ~reuses:1 in
          let many = Memory_choice.choose models ~bytes:t.Analyzer.bytes ~reuses:100 in
          let break_even =
            match Memory_choice.break_even_reuses models ~bytes:t.Analyzer.bytes with
            | Some n -> string_of_int n
            | None -> "never"
          in
          Gpp_util.Ascii_table.add_row table
            [
              Gpp_workloads.Registry.key inst;
              t.Analyzer.array;
              (match t.Analyzer.direction with Analyzer.To_device -> "in" | Analyzer.From_device -> "out");
              Units.bytes_to_string t.Analyzer.bytes;
              Link.memory_name once.Memory_choice.memory;
              Link.memory_name many.Memory_choice.memory;
              break_even;
            ])
        (Analyzer.transfers report.projection.Gpp_core.Projection.plan))
    (Context.instances ctx);
  Output.make ~id:"extension-memory-choice"
    ~title:"Future work \u{00a7}VII: pinned vs pageable with allocation overhead"
    ~body:
      (Gpp_util.Ascii_table.render table
      ^ "one-shot small transfers avoid the pinning cost; reused or large buffers\n\
         amortize it quickly, vindicating the paper's pinned-memory default for\n\
         its (iterative, multi-megabyte) workloads\n")

let run_fusion ctx =
  let machine = Context.machine ctx in
  let gpu = machine.Gpp_arch.Machine.gpu in
  let iterations = 100 in
  let program = Gpp_workloads.Hotspot.program ~iterations ~n:1024 () in
  let table =
    Gpp_util.Ascii_table.create
      ~title:
        (Printf.sprintf "Temporal fusion of HotSpot 1024 x 1024 across %d iterations" iterations)
      ~columns:
        [
          ("Factor", Gpp_util.Ascii_table.Right);
          ("Launches", Gpp_util.Ascii_table.Right);
          ("Per launch", Gpp_util.Ascii_table.Right);
          ("Total kernel time", Gpp_util.Ascii_table.Right);
          ("Shared mem/block", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  match Fusion.best_factor ~gpu program with
  | Error e ->
      Output.make ~id:"extension-fusion" ~title:"Temporal kernel fusion" ~body:("error: " ^ e)
  | Ok plans ->
      let by_factor = List.sort (fun a b -> compare a.Fusion.factor b.Fusion.factor) plans in
      List.iter
        (fun (p : Fusion.plan) ->
          Gpp_util.Ascii_table.add_row table
            [
              string_of_int p.Fusion.factor;
              string_of_int p.Fusion.launches;
              Units.time_to_string p.Fusion.launch_time;
              Units.time_to_string p.Fusion.total_time;
              Units.bytes_to_string
                p.Fusion.characteristics.Gpp_model.Characteristics.shared_mem_per_block;
            ])
        by_factor;
      let best = List.hd plans in
      let baseline =
        List.find (fun (p : Fusion.plan) -> p.Fusion.factor = 1) by_factor
      in
      Output.make ~id:"extension-fusion"
        ~title:"\u{00a7}IV-B: fusing iterative stencil invocations (temporal blocking)"
        ~body:
          (Gpp_util.Ascii_table.render table
          ^ Printf.sprintf
              "best factor: %d (%.2fx kernel-time improvement over unfused; transfers are\n\
               unchanged, so the end-to-end gain is smaller at low iteration counts)\n"
              best.Fusion.factor
              (baseline.Fusion.total_time /. best.Fusion.total_time))

let run_overlap ctx =
  let table =
    Gpp_util.Ascii_table.create ~title:"Streamed (chunked) transfers: best-case overlap bound"
      ~columns:
        [
          ("Workload", Gpp_util.Ascii_table.Left);
          ("Serial total", Gpp_util.Ascii_table.Right);
          ("Streamed total", Gpp_util.Ascii_table.Right);
          ("Saving", Gpp_util.Ascii_table.Right);
          ("Chunks", Gpp_util.Ascii_table.Right);
          ("Bottleneck", Gpp_util.Ascii_table.Left);
        ]
      ()
  in
  List.iter
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      let o = Overlap.best_chunks report.projection in
      Gpp_util.Ascii_table.add_row table
        [
          Gpp_workloads.Registry.key inst;
          Units.time_to_string o.Overlap.serial_total;
          Units.time_to_string o.Overlap.overlapped_total;
          Printf.sprintf "%.0f%%"
            (100.0 *. o.Overlap.saving /. o.Overlap.serial_total);
          string_of_int o.Overlap.chunks;
          (match o.Overlap.bottleneck with
          | `Upload -> "upload"
          | `Kernel -> "kernel"
          | `Download -> "download");
        ])
    (Context.instances ctx);
  Output.make ~id:"extension-overlap"
    ~title:"Streams: overlapping transfers with computation (best-case bound)"
    ~body:
      (Gpp_util.Ascii_table.render table
      ^ "even perfect overlap cannot rescue transfer-dominated workloads: the bus\n\
         remains the pipeline bottleneck, so the projected decision rarely flips\n")

let run_hardware ctx =
  ignore ctx;
  let machines = Gpp_arch.Machine.presets in
  let sessions = List.map (fun m -> (m, Gpp_core.Grophecy.init m)) machines in
  let table =
    Gpp_util.Ascii_table.create
      ~title:"Projected end-to-end GPU speedup across machine generations"
      ~columns:
        ([ ("Workload", Gpp_util.Ascii_table.Left) ]
        @ List.map (fun (m : Gpp_arch.Machine.t) -> (m.Gpp_arch.Machine.gpu.Gpp_arch.Gpu.name, Gpp_util.Ascii_table.Right)) machines)
      ()
  in
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let program = inst.Gpp_workloads.Registry.program 1 in
      let cells =
        List.map
          (fun (machine, session) ->
            match
              Gpp_core.Projection.project ~pricing:session.Gpp_core.Grophecy.pricing program
            with
            | Error _ -> "-"
            | Ok projection ->
                let cpu = Gpp_core.Evaluation.cpu_time ~machine program in
                Printf.sprintf "%.2fx" (cpu /. projection.Gpp_core.Projection.total_time))
          sessions
      in
      Gpp_util.Ascii_table.add_row table (Gpp_workloads.Registry.key inst :: cells))
    Gpp_workloads.Registry.paper_instances;
  Output.make ~id:"extension-hardware"
    ~title:"Future work \u{00a7}VII: the same skeletons projected on newer hardware"
    ~body:
      (Gpp_util.Ascii_table.render table
      ^ "a faster bus and GPU lift every workload, but transfer-bound kernels\n\
         (Stassuij) remain losses even a hardware generation later\n")

type roofline_point = {
  flops_per_thread : float;
  model_time : float;
  sim_time : float;
  model_bound : Gpp_model.Analytic.bound;
}

let default_roofline_flops = [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0 ]

let roofline_points ?(flops = default_roofline_flops) ctx =
  let gpu = (Context.machine ctx).Gpp_arch.Machine.gpu in
  let sim_config =
    { Gpp_gpusim.Gpu_sim.default_config with Gpp_gpusim.Gpu_sim.noise_sigma = 0.0; latency_jitter = 0.0 }
  in
  List.map
    (fun flops_per_thread ->
      let c =
        Gpp_model.Characteristics.create ~kernel_name:"roofline" ~grid_blocks:1024
          ~threads_per_block:256 ~flops_per_thread ~load_insts_per_thread:2.0
          ~store_insts_per_thread:1.0 ~load_transactions_per_warp:4.0
          ~store_transactions_per_warp:2.0 ()
      in
      let projection =
        match Gpp_model.Analytic.project ~gpu c with
        | Ok p -> p
        | Error e -> invalid_arg ("roofline: " ^ e)
      in
      let sim =
        match
          Gpp_gpusim.Gpu_sim.run ~config:sim_config ~rng:(Gpp_util.Rng.create 11L) ~gpu c
        with
        | Ok r -> r
        | Error e -> invalid_arg ("roofline: " ^ e)
      in
      {
        flops_per_thread;
        model_time = projection.Gpp_model.Analytic.kernel_time;
        sim_time = sim.Gpp_gpusim.Gpu_sim.time;
        model_bound = projection.Gpp_model.Analytic.bound;
      })
    flops

let run_roofline ctx =
  let pts = roofline_points ctx in
  let table =
    Gpp_util.Ascii_table.create
      ~title:"Synthetic roofline: analytic model vs transaction-level simulator"
      ~columns:
        [
          ("Flops/thread", Gpp_util.Ascii_table.Right);
          ("Model", Gpp_util.Ascii_table.Right);
          ("Simulator", Gpp_util.Ascii_table.Right);
          ("Model/Sim", Gpp_util.Ascii_table.Right);
          ("Regime", Gpp_util.Ascii_table.Left);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [
          Printf.sprintf "%.0f" p.flops_per_thread;
          Units.time_to_string p.model_time;
          Units.time_to_string p.sim_time;
          Printf.sprintf "%.2f" (p.model_time /. p.sim_time);
          Gpp_model.Analytic.bound_name p.model_bound;
        ])
    pts;
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log ~y_scale:Gpp_util.Ascii_plot.Log
      ~title:"Kernel time vs arithmetic intensity" ~x_label:"flops per thread"
      ~y_label:"time (s)"
      [
        Gpp_util.Ascii_plot.series ~label:"analytic model" ~glyph:'m'
          (List.map (fun p -> (p.flops_per_thread, p.model_time)) pts);
        Gpp_util.Ascii_plot.series ~label:"simulator" ~glyph:'s'
          (List.map (fun p -> (p.flops_per_thread, p.sim_time)) pts);
      ]
  in
  Output.make ~id:"extension-roofline"
    ~title:"Model vs simulator across the memory-/compute-bound transition"
    ~body:
      (Gpp_util.Ascii_table.render table ^ "\n" ^ Gpp_util.Ascii_plot.render plot
      ^ "the two execution paths agree through the roofline knee; their residual\n\
         gap on irregular access patterns is what drives the paper's kernel errors\n")

let all = [ run_memory_choice; run_fusion; run_overlap; run_hardware; run_roofline ]
