(** Cross-machine transfer-model evaluation.

    The paper calibrates [T(d) = alpha + beta*d] per system (§III-C);
    this experiment quantifies what happens when a calibration is
    carried to a different system.  For every ordered (source, target)
    machine pair it scores the source's calibrated models against the
    target's noise-free ground truth (mean absolute % error over a
    power-of-two transfer sweep, per direction) and against the
    target's own end-to-end projections (the target's explored kernels
    and transfer plan, re-priced with the source's models).  Rows with
    source = target are the same-machine baseline: the residual of
    two-point calibration against measurement noise.

    Deterministic in (seed, machines, workloads, sweep) — the TSV is
    golden-diffable. *)

type pair = {
  source : Gpp_arch.Machine.t;
  target : Gpp_arch.Machine.t;
  h2d_err : float;  (** Mean abs % transfer error over the sweep. *)
  d2h_err : float;
  e2e_err : float;
      (** Mean abs % error of the cross-priced projected total vs the
          target's own projection, over the workloads. *)
}

type t = {
  machines : Gpp_arch.Machine.t list;
  workloads : string list;
  sizes : int list;
  pairs : pair list;  (** Source-major, in machine order. *)
}

val default_workloads : string list
(** [vecadd/16M], [hotspot/512 x 512], [srad/1024 x 1024] — small,
    feasible on every catalog machine, spanning transfer-bound and
    kernel-bound regimes. *)

val run :
  ?protocol:Gpp_pcie.Calibrate.protocol ->
  ?analytic_params:Gpp_model.Analytic.params ->
  ?space:Gpp_transform.Explore.space ->
  ?policy:Gpp_dataflow.Analyzer.policy ->
  ?seed:int64 ->
  ?workloads:string list ->
  ?max_bytes:int ->
  machines:Gpp_arch.Machine.t list ->
  unit ->
  (t, Gpp_core.Error.t) result
(** Calibrate every machine (staging-aware, like any session), project
    every workload per machine, then score every ordered pair.
    [max_bytes] bounds the power-of-two sweep (default 64 MiB).
    Failures are the usual pipeline errors (unknown workload, no
    feasible transformation). *)

(** {2 Predictor variants}

    The predictor-stack ablation: the same machine grid, scored once
    per predictor variant against each target's {e simulated measured}
    totals (deterministic: seeded kernel simulation plus the link's
    noise-free expected transfer times).  [analytic] carries the
    source's models verbatim; [scaled] rescales (alpha, beta) by the
    machines' spec'd setup/bandwidth ratios; [learned] additionally
    fits a ridge correction leave-one-workload-out per pair. *)

type variant_row = {
  v_predictor : Gpp_predict.Predictor.t;
  v_source : Gpp_arch.Machine.t;
  v_target : Gpp_arch.Machine.t;
  v_h2d_err : float;  (** Mean abs % transfer error over the sweep. *)
  v_d2h_err : float;
  v_e2e_err : float;
      (** Mean abs % error of the variant's cross-assembled total vs
          the target's simulated measured total, over the workloads. *)
}

type variants = {
  v_machines : Gpp_arch.Machine.t list;
  v_workloads : string list;
  v_sizes : int list;
  v_predictors : Gpp_predict.Predictor.t list;
  rows : variant_row list;  (** Predictor-major, then source-major. *)
}

val run_variants :
  ?protocol:Gpp_pcie.Calibrate.protocol ->
  ?analytic_params:Gpp_model.Analytic.params ->
  ?space:Gpp_transform.Explore.space ->
  ?policy:Gpp_dataflow.Analyzer.policy ->
  ?sim_config:Gpp_gpusim.Gpu_sim.config ->
  ?runs:int ->
  ?lambda:float ->
  ?seed:int64 ->
  ?workloads:string list ->
  ?max_bytes:int ->
  predictors:Gpp_predict.Predictor.t list ->
  machines:Gpp_arch.Machine.t list ->
  unit ->
  (variants, Gpp_core.Error.t) result
(** Score every ordered machine pair under every predictor in
    [predictors].  [lambda] is the learned correction's ridge strength
    (default {!Gpp_predict.Correction.default_lambda}).  A degenerate
    learned fit is {!Gpp_core.Error.Config}. *)

val variants_tsv_header : string

val variants_to_tsv : variants -> string
(** One row per (predictor, ordered pair): predictor name, ids,
    same-machine marker, and the three errors at fixed precision. *)

val pp_variants_summary : Format.formatter -> variants -> unit
(** Per-predictor mean cross-machine transfer and end-to-end error —
    the naive/scaled/learned comparison in one block. *)

val tsv_header : string

val to_tsv : t -> string
(** One row per ordered pair: ids, same-machine marker, link labels,
    and the three errors at fixed precision. *)

val pp_summary : Format.formatter -> t -> unit
(** The accuracy/scope tradeoff: same-machine residual, cross-machine
    decay (best/worst pairs), and how many cross pairs stay within a
    10% projected-total error budget. *)
