(** Cross-machine transfer-model evaluation.

    The paper calibrates [T(d) = alpha + beta*d] per system (§III-C);
    this experiment quantifies what happens when a calibration is
    carried to a different system.  For every ordered (source, target)
    machine pair it scores the source's calibrated models against the
    target's noise-free ground truth (mean absolute % error over a
    power-of-two transfer sweep, per direction) and against the
    target's own end-to-end projections (the target's explored kernels
    and transfer plan, re-priced with the source's models).  Rows with
    source = target are the same-machine baseline: the residual of
    two-point calibration against measurement noise.

    Deterministic in (seed, machines, workloads, sweep) — the TSV is
    golden-diffable. *)

type pair = {
  source : Gpp_arch.Machine.t;
  target : Gpp_arch.Machine.t;
  h2d_err : float;  (** Mean abs % transfer error over the sweep. *)
  d2h_err : float;
  e2e_err : float;
      (** Mean abs % error of the cross-priced projected total vs the
          target's own projection, over the workloads. *)
}

type t = {
  machines : Gpp_arch.Machine.t list;
  workloads : string list;
  sizes : int list;
  pairs : pair list;  (** Source-major, in machine order. *)
}

val default_workloads : string list
(** [vecadd/16M], [hotspot/512 x 512], [srad/1024 x 1024] — small,
    feasible on every catalog machine, spanning transfer-bound and
    kernel-bound regimes. *)

val run :
  ?protocol:Gpp_pcie.Calibrate.protocol ->
  ?analytic_params:Gpp_model.Analytic.params ->
  ?space:Gpp_transform.Explore.space ->
  ?policy:Gpp_dataflow.Analyzer.policy ->
  ?seed:int64 ->
  ?workloads:string list ->
  ?max_bytes:int ->
  machines:Gpp_arch.Machine.t list ->
  unit ->
  (t, Gpp_core.Error.t) result
(** Calibrate every machine (staging-aware, like any session), project
    every workload per machine, then score every ordered pair.
    [max_bytes] bounds the power-of-two sweep (default 64 MiB).
    Failures are the usual pipeline errors (unknown workload, no
    feasible transformation). *)

val tsv_header : string

val to_tsv : t -> string
(** One row per ordered pair: ids, same-machine marker, link labels,
    and the three errors at fixed precision. *)

val pp_summary : Format.formatter -> t -> unit
(** The accuracy/scope tradeoff: same-machine residual, cross-machine
    decay (best/worst pairs), and how many cross pairs stay within a
    10% projected-total error budget. *)
