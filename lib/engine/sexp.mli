(** Minimal s-expression reader for scenario configuration files.

    Supports atoms, double-quoted strings (with backslash escapes for
    backslash, quote, [n], [t]), nested lists, and [;] line comments —
    just enough for
    [--config FILE] without pulling in a sexp library.  Errors carry the
    1-based line number. *)

type t = Atom of string | List of t list

val parse_string : string -> (t, string) result
(** Parse exactly one expression (trailing blanks/comments allowed). *)

val parse_file : string -> (t, string) result
(** {!parse_string} over a file's contents; [Error] also covers
    unreadable files. *)

val to_string : t -> string
(** Canonical one-line rendering (atoms quoted only when needed). *)
