(** Process-wide scenario side effects (logging, tracing, caching).

    Exactly one [install] (or the individual pieces) should run per
    process, before any pipeline work.  Shared by every binary so the
    single-run commands, the batch runner, and the experiment suite
    honour [--trace]/[--no-cache]/[--cache-dir] identically. *)

val install : Config.t -> unit
(** Apply the scenario's observability and cache settings: set the log
    level from [verbose]; when [trace] is set, enable observability and
    stream a Chrome trace to the file (summary on stderr at exit); apply
    [cache_dir]; with [cache_enabled] load the persistent cache tier and
    register its flush on exit, otherwise disable both cache tiers.

    Registers the trace [at_exit] before the cache flush [at_exit] so
    the flush is still captured by the trace. *)

val setup_logs : bool -> unit
(** Just the log-level piece ([true] = debug). *)

val setup_trace : string option -> unit

val setup_cache : enabled:bool -> dir:string option -> unit
