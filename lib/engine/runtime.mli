(** Process-wide scenario side effects (logging, tracing, caching).

    Exactly one [install] (or the individual pieces) should run per
    process, before any pipeline work.  Shared by every binary so the
    single-run commands, the batch runner, and the experiment suite
    honour [--trace]/[--no-cache]/[--cache-dir] identically. *)

val install : Config.t -> unit
(** Apply the scenario's observability and cache settings: set the log
    level from [verbose]; when [trace] is set, enable observability and
    stream a Chrome trace to the file (summary on stderr at exit); apply
    [cache_dir]; with [cache_enabled] load the persistent cache tier and
    register its flush on exit, otherwise disable both cache tiers.

    Registers the trace [at_exit] before the cache flush [at_exit] so
    the flush is still captured by the trace. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (no-op where the signal doesn't exist),
    so writing to a closed pipe or socket raises a catchable
    [Sys_error] / [Unix_error EPIPE] instead of killing the process.
    Every binary should call this before its first write; servers rely
    on it to map a hung-up client to a per-connection close. *)

val is_broken_pipe : exn -> bool
(** Recognise the exceptions a write to a closed peer raises once
    SIGPIPE is ignored ([EPIPE]/[ECONNRESET], or the stdlib's
    ["Broken pipe"] [Sys_error]).  A CLI whose stdout was truncated
    ([grophecy suite | head]) should treat these as success. *)

val discard_stdout : unit -> unit
(** After a broken pipe on stdout: silence [Format.std_formatter] and
    close the channel so the interpreter's at_exit flushes cannot
    re-raise on the dead descriptor.  Call just before [exit 0] when
    treating a truncated stdout as success. *)

val flush_stdout : unit -> unit
(** Flush [Format.std_formatter] and [stdout].  Call inside the same
    [try] that treats {!is_broken_pipe} as success: an output small
    enough to stay in the channel buffer otherwise first hits EPIPE in
    the at_exit flush, where no handler can catch it. *)

val setup_logs : bool -> unit
(** Just the log-level piece ([true] = debug). *)

val setup_trace : string option -> unit

val setup_cache : enabled:bool -> dir:string option -> unit
