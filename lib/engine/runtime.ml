(* Process-wide side effects of a resolved scenario: logging level,
   trace sink, cache switches.  Moved out of the CLI preamble so the
   batch runner and the experiment suite install the exact same
   behaviour.

   The trace sink is set up *before* the cache at_exit is registered:
   at_exit handlers run in reverse order, so the final cache flush is
   still captured by the trace before the trailer is written. *)

(* SIGPIPE kills the whole process by default, so `grophecy suite |
   head` — or a server whose client hung up — dies mid-write instead of
   seeing the EPIPE error on the write itself.  Ignoring the signal
   turns the kill into a regular [Sys_error]/[Unix_error] that each
   writer handles: the CLI exits 0 on a truncated stdout, the server
   closes just that connection. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> (* no SIGPIPE on this platform *) ()

(* With SIGPIPE ignored, a write to a closed peer surfaces as one of
   these depending on the layer doing the writing (stdlib channels
   stringify the errno; Format/Printf on a closed stdout raise the
   Sys_error at flush time). *)
let is_broken_pipe = function
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> true
  | Sys_error msg ->
      (* e.g. "Broken pipe" or "...: Broken pipe" from stdlib channels *)
      let sub = "roken pipe" in
      let n = String.length sub and m = String.length msg in
      let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
      at 0
  | _ -> false

(* Once the pipe is broken, buffered stdout can never be delivered —
   and Format.std_formatter's at_exit flush re-raises Sys_error on the
   dead fd (Stdlib's own flush_all swallows it, Format's does not).
   Point the formatter at a sink and close the channel so a subsequent
   [exit] is clean. *)
let discard_stdout () =
  Format.pp_set_formatter_output_functions Format.std_formatter (fun _ _ _ -> ()) (fun () -> ());
  close_out_noerr stdout

(* Deliver buffered output while the caller's broken-pipe handler is
   still in scope.  An output small enough to sit entirely in the
   channel buffer (e.g. `list | head -3`) never writes during command
   evaluation; its first EPIPE surfaces in Stdlib's at_exit flush,
   *after* any [try ... with] around the command — a fatal uncaught
   [Sys_error].  Flushing explicitly inside the handler's scope turns
   that into a catchable exception. *)
let flush_stdout () =
  Format.pp_print_flush Format.std_formatter ();
  flush stdout

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let setup_trace = function
  | None -> ()
  | Some file -> (
      Gpp_obs.Obs.set_enabled true;
      match Gpp_obs.Obs.start_trace file with
      | Ok () ->
          at_exit (fun () ->
              Gpp_obs.Obs.stop_trace ();
              Gpp_obs.Obs.print_summary ();
              Format.eprintf "wrote %s (open in chrome://tracing or Perfetto)@." file)
      | Error e -> Format.eprintf "cannot open trace file %s: %s (tracing disabled)@." file e)

let setup_cache ~enabled ~dir =
  Option.iter Gpp_cache.Control.set_dir dir;
  if not enabled then begin
    Gpp_cache.Control.set_enabled false;
    Gpp_cache.Control.set_disk_enabled false
  end
  else begin
    Gpp_cache.Memo.load_disk ();
    at_exit (fun () -> Gpp_cache.Memo.flush_disk ())
  end

let install (c : Config.t) =
  setup_logs c.Config.verbose;
  setup_trace c.Config.trace;
  setup_cache ~enabled:c.Config.cache_enabled ~dir:c.Config.cache_dir
