(* Process-wide side effects of a resolved scenario: logging level,
   trace sink, cache switches.  Moved out of the CLI preamble so the
   batch runner and the experiment suite install the exact same
   behaviour.

   The trace sink is set up *before* the cache at_exit is registered:
   at_exit handlers run in reverse order, so the final cache flush is
   still captured by the trace before the trailer is written. *)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let setup_trace = function
  | None -> ()
  | Some file -> (
      Gpp_obs.Obs.set_enabled true;
      match Gpp_obs.Obs.start_trace file with
      | Ok () ->
          at_exit (fun () ->
              Gpp_obs.Obs.stop_trace ();
              Gpp_obs.Obs.print_summary ();
              Format.eprintf "wrote %s (open in chrome://tracing or Perfetto)@." file)
      | Error e -> Format.eprintf "cannot open trace file %s: %s (tracing disabled)@." file e)

let setup_cache ~enabled ~dir =
  Option.iter Gpp_cache.Control.set_dir dir;
  if not enabled then begin
    Gpp_cache.Control.set_enabled false;
    Gpp_cache.Control.set_disk_enabled false
  end
  else begin
    Gpp_cache.Memo.load_disk ();
    at_exit (fun () -> Gpp_cache.Memo.flush_disk ())
  end

let install (c : Config.t) =
  setup_logs c.Config.verbose;
  setup_trace c.Config.trace;
  setup_cache ~enabled:c.Config.cache_enabled ~dir:c.Config.cache_dir
