(** The pipeline's stages as first-class, inspectable identifiers.

    The order follows the paper's workflow: skeleton parse, static
    analysis, BRS dataflow analysis, transformation search, GPU-sim
    measurement, predictor-stack pricing construction, PCIe transfer
    pricing + projection, evaluation. *)

type id = Parse | Lint | Analyze | Explore | Simulate | Predict | Project | Evaluate

val all : id list
(** Pipeline order. *)

val name : id -> string
(** Stable lowercase name ([parse], [lint], ...). *)

val description : id -> string

val of_name : string -> id option

val index : id -> int
(** Position in {!all}. *)

val compare : id -> id -> int
(** Pipeline order. *)

val pp : Format.formatter -> id -> unit
