include Gpp_core.Error
