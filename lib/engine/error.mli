(** Structured pipeline errors ({!Gpp_core.Error} re-exported).

    Every engine stage, the batch runner, and the configuration layers
    all report this one type; {!exit_code} is the single mapping onto
    the CLI's 0/1/2 exit-code space.  The type lives in [gpp_core] so
    the core pipeline functions can produce it; the engine re-exports it
    as [Gpp_engine.Error] because the engine is its primary consumer. *)

include module type of struct
  include Gpp_core.Error
end
