module Grophecy = Gpp_core.Grophecy
module Projection = Gpp_core.Projection
module Measurement = Gpp_core.Measurement
module Analyzer = Gpp_dataflow.Analyzer
module Registry = Gpp_workloads.Registry
module Link = Gpp_pcie.Link
module Features = Gpp_predict.Features
module Correction = Gpp_predict.Correction
module Obs = Gpp_obs.Obs

(* Trainer for the Learned predictor stage.

   For every bundled Table I workload except the one under prediction
   (leave-one-workload-out), project it analytically on the session's
   machine, "measure" it on the simulated substrate, and collect one
   (feature vector, measured/projected ratio) sample; the ridge fit
   over those samples is the correction the Predict stage attaches to
   the pipeline's pricing.

   Determinism: kernel measurement draws from a fresh RNG seeded with
   the session's noise seed (the Simulate stage's seed), and transfer
   ground truth is the link's noise-free expected time — no stateful
   link RNG is advanced, so training neither perturbs the measurement
   stream the goldens depend on nor depends on call order.  Training on
   a worker domain is safe. *)

let sample (config : Config.t) (session : Grophecy.session) (instance : Registry.instance) =
  let ( let* ) = Result.bind in
  let machine = session.Grophecy.machine in
  let program = instance.Registry.program 1 in
  let* kernels =
    Projection.explore ?cache:config.Config.use_cache ?analytic_params:config.Config.analytic
      ?space:config.Config.space ~machine program
  in
  let plan = Analyzer.analyze ?policy:config.Config.policy program in
  let projection = Projection.assemble ~pricing:session.Grophecy.pricing ~kernels ~plan program in
  let* _kernel_measurements, measured_kernel_time =
    Measurement.measure_kernels ?cache:config.Config.use_cache ?sim_config:config.Config.sim
      ?runs:config.Config.runs ~seed:session.Grophecy.noise_seed ~machine ~kernels program
  in
  let memory = Link.memory_of_staging machine.Gpp_arch.Machine.staging in
  let measured_transfer_time =
    List.fold_left
      (fun acc (tm : Measurement.transfer_measurement) -> acc +. tm.Measurement.time)
      0.0
      (Measurement.expected_transfers ~memory ~link:session.Grophecy.application_link plan)
  in
  let measured_total = measured_kernel_time +. measured_transfer_time in
  let features =
    Features.extract ~source:machine ~target:machine ~program ~plan
      ~kernels:
        (List.map
           (fun (kp : Projection.kernel_projection) ->
             kp.Projection.candidate.Gpp_transform.Explore.characteristics)
           kernels)
  in
  if projection.Projection.total_time <= 0.0 then
    Error (Error.config "learned predictor: non-positive projected total in training set")
  else Ok (features, measured_total /. projection.Projection.total_time)

let correction ?exclude ~(config : Config.t) ~(session : Grophecy.session) () =
  Obs.span "engine.learn" @@ fun () ->
  let ( let* ) = Result.bind in
  let instances =
    List.filter
      (fun inst ->
        match exclude with Some key -> not (String.equal (Registry.key inst) key) | None -> true)
      Registry.paper_instances
  in
  let* samples =
    List.fold_left
      (fun acc inst ->
        let* acc = acc in
        let* s = sample config session inst in
        Ok (s :: acc))
      (Ok []) instances
  in
  match Correction.fit ~lambda:config.Config.predict_lambda (List.rev samples) with
  | Ok c -> Ok c
  | Error m -> Error (Error.config (Printf.sprintf "learned predictor: %s" m))
