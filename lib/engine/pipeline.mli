(** The staged prediction pipeline, with each stage an inspectable value.

    {v Parse → Lint → Analyze → Explore → Simulate → Predict → Project
       → Evaluate v}

    Each stage reads a resolved {!Config.t} scenario plus the fields
    earlier stages filled in, and either extends the {!state} or fails
    with a structured {!Error.t}.  The stage list is a plain value
    ({!stages}), so tools can enumerate, describe, or partially run the
    pipeline ({!run} with [?through]).

    Numerics parity: given a default config, running all stages is
    bit-identical to [Grophecy.analyze] — the stages are the same
    computations in the same RNG draw order, only the control flow and
    error plumbing moved. *)

type state = {
  config : Config.t;
  workload : string;  (** The workload spelling being resolved. *)
  instance : Gpp_workloads.Registry.instance option;
  program : Gpp_skeleton.Program.t option;
  lint_report : Gpp_analysis.Driver.report option;
  plan : Gpp_dataflow.Analyzer.plan option;
  kernels : Gpp_core.Projection.kernel_projection list option;
  measurement : Gpp_core.Measurement.t option;
  pricing : Gpp_predict.Pricing.t option;
      (** The Predict stage's output: the session's (possibly scaled)
          transfer pricing, with a trained correction attached when the
          scenario's predictor includes [Learned]. *)
  projection : Gpp_core.Projection.t option;
  report : Gpp_core.Grophecy.report option;
}
(** Accumulated stage outputs; [None] = stage not run yet. *)

type stage = {
  id : Stage.id;
  run : session:Gpp_core.Grophecy.session -> state -> (state, Error.t) result;
}

val stages : stage list
(** All eight stages in pipeline order. *)

val init : Config.t -> workload:string -> state
(** Fresh state with every output empty. *)

val session_of : Config.t -> Gpp_core.Grophecy.session
(** Calibrate a session for the scenario's machine, seed, outlier
    probability, and protocol.  Runs the PCIe calibration benchmark. *)

val run :
  ?through:Stage.id ->
  session:Gpp_core.Grophecy.session ->
  Config.t ->
  workload:string ->
  (state, Error.t) result
(** Run stages in order up to and including [through] (default
    {!Stage.Evaluate}), stopping at the first error.  The Lint stage is
    a no-op unless [config.lint] is set. *)

val resume :
  ?through:Stage.id ->
  session:Gpp_core.Grophecy.session ->
  state ->
  (state, Error.t) result
(** Continue a partially run [state] up to and including [through]:
    stages whose output is already present ({!completed}) are skipped,
    the remaining ones run in pipeline order.  Used by the batch runner
    to finish cells whose Simulate output was assembled out of band. *)

val completed : state -> Stage.id list
(** Which stages have produced their output (Lint counts only when it
    actually ran). *)

val report_exn : state -> Gpp_core.Grophecy.report
(** @raise Invalid_argument if Evaluate has not run. *)

val projection_exn : state -> Gpp_core.Projection.t
(** @raise Invalid_argument if Project has not run. *)

val program_exn : state -> Gpp_skeleton.Program.t
(** @raise Invalid_argument if Parse has not run. *)
