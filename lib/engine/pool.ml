(* Work-stealing domain pool for a fixed set of independent, indexed
   tasks.

   Each worker owns a deque seeded with a contiguous block of task
   indices: the owner pops from the front, idle workers steal from the
   back of other workers' deques.  Blocks keep the common case (evenly
   sized tasks) contention-free — a worker only touches other deques
   once its own is drained — while stealing rebalances skewed matrices
   (one workload much slower than the rest) without any central queue
   bottleneck.

   Tasks never enqueue new tasks, so termination is simple: a worker
   exits once every deque is empty — any remaining task is already
   executing on some other worker.  The per-deque mutex makes both ends
   O(1) under a lock that is held for a handful of instructions; tasks
   here are whole pipeline runs (milliseconds at least), so a lock-free
   Chase-Lev deque would buy nothing measurable. *)

type deque = {
  lock : Mutex.t;
  tasks : int array;
  mutable head : int;  (* owner pops here *)
  mutable tail : int;  (* thieves steal here; live window is [head, tail) *)
}

let pop_own d =
  Mutex.protect d.lock @@ fun () ->
  if d.head < d.tail then begin
    let i = d.tasks.(d.head) in
    d.head <- d.head + 1;
    Some i
  end
  else None

let steal d =
  Mutex.protect d.lock @@ fun () ->
  if d.head < d.tail then begin
    d.tail <- d.tail - 1;
    Some d.tasks.(d.tail)
  end
  else None

let default_jobs () = min 64 (Domain.recommended_domain_count ())

(* The OCaml 5 runtime degrades sharply past 128 domains; stay well
   clear so a wild --jobs value cannot wedge the process. *)
let max_jobs = 64

let run ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Pool.run: negative task count";
  if jobs < 1 || jobs > max_jobs then
    invalid_arg
      (Printf.sprintf "Pool.run: jobs = %d out of range (1 .. %d)" jobs max_jobs);
  (* Never spawn more workers than tasks; a surplus worker would only
     spin through empty deques. *)
  let jobs = min jobs (max 1 n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let deques =
      Array.init jobs (fun w ->
          let lo = w * n / jobs and hi = (w + 1) * n / jobs in
          {
            lock = Mutex.create ();
            tasks = Array.init (hi - lo) (fun k -> lo + k);
            head = 0;
            tail = hi - lo;
          })
    in
    (* First failure wins; the other workers drain the remaining tasks
       normally (tasks are independent) and the exception is re-raised
       on the calling domain once everyone has joined. *)
    let failure = Atomic.make None in
    let run_task i =
      try f i
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    let worker w =
      let rec own () =
        match pop_own deques.(w) with
        | Some i ->
            run_task i;
            own ()
        | None -> hunt 1
      and hunt k =
        if k < jobs then
          match steal deques.((w + k) mod jobs) with
          | Some i ->
              run_task i;
              own ()
          | None -> hunt (k + 1)
      in
      own ()
    in
    (* The calling domain works too: jobs = N means N workers total,
       N - 1 spawned domains. *)
    let domains = Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
