(** Workload resolution: bundled ["app/size"] keys or [.skel] files.

    Shared by the single-run commands, the batch runner, and the
    experiment context, so every entry point accepts the same workload
    spellings and fails with the same {!Error.Parse} messages. *)

val resolve : string -> (Gpp_workloads.Registry.instance, Error.t) result
(** Look the key up in the registry; fall back to parsing it as a path
    to a textual skeleton.  [Error] is {!Error.Parse} carrying the key
    as [source]. *)
