module Machine = Gpp_arch.Machine
module Cpu = Gpp_arch.Cpu
module Gpu = Gpp_arch.Gpu
module Pcie_spec = Gpp_arch.Pcie_spec

(* Machine-descriptor parsing shares the config file's error style:
   raise [Bad] with a message that names the offending key, catch it at
   the file boundary, and wrap it into a structured config error. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let atom key = function
  | Sexp.Atom a -> a
  | Sexp.List _ -> bad "%s: expected an atom, got a list" key

let get parse key v =
  match parse (atom key v) with Ok x -> x | Error m -> bad "%s: %s" key m

let int_of_atom s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "expected an integer, got %S" s)

let float_of_atom s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "expected a number, got %S" s)

let pairs_of context = function
  | Sexp.Atom a -> bad "%s: expected a list of (key value) pairs, got %S" context a
  | Sexp.List items ->
      List.map
        (function
          | Sexp.List [ Sexp.Atom key; value ] -> (key, value)
          | s -> bad "%s: expected (key value), got %s" context (Sexp.to_string s))
        items

let preset_of context presets key v =
  let name = atom key v in
  match List.assoc_opt name presets with
  | Some p -> p
  | None ->
      bad "%s: unknown preset %S (expected %s)" context name
        (String.concat ", " (List.map fst presets))

(* Component groups fold (key value) pairs over a seed record: the
   [preset] key (processed first, wherever it appears) restarts the seed
   from the named catalog entry, every other key overrides one field.
   Bandwidth fields take raw bytes/s; [-gb] / [-us] variants accept the
   human units the README examples use. *)

let seed_of context presets base pairs =
  match List.assoc_opt "preset" pairs with
  | Some v -> preset_of context presets "preset" v
  | None -> base

let cpu_group base value =
  let pairs = pairs_of "cpu" value in
  List.fold_left
    (fun (c : Cpu.t) (key, v) ->
      match key with
      | "preset" -> c
      | "name" -> { c with name = atom key v }
      | "cores" -> { c with cores = get int_of_atom key v }
      | "threads" -> { c with threads = get int_of_atom key v }
      | "clock-ghz" -> { c with clock_ghz = get float_of_atom key v }
      | "flops-per-core-cycle" -> { c with flops_per_core_cycle = get float_of_atom key v }
      | "mem-bandwidth" -> { c with mem_bandwidth = get float_of_atom key v }
      | "mem-bandwidth-gb" ->
          { c with mem_bandwidth = Gpp_util.Units.gb_per_s (get float_of_atom key v) }
      | "achieved-bw-fraction" -> { c with achieved_bw_fraction = get float_of_atom key v }
      | "llc-bytes" -> { c with llc_bytes = get int_of_atom key v }
      | "cache-bandwidth" -> { c with cache_bandwidth = get float_of_atom key v }
      | "cache-bandwidth-gb" ->
          { c with cache_bandwidth = Gpp_util.Units.gb_per_s (get float_of_atom key v) }
      | "parallel-efficiency" -> { c with parallel_efficiency = get float_of_atom key v }
      | "parallel-overhead" -> { c with parallel_overhead = get float_of_atom key v }
      | "parallel-overhead-us" ->
          { c with parallel_overhead = Gpp_util.Units.us (get float_of_atom key v) }
      | _ -> bad "cpu: unknown key %S" key)
    (seed_of "cpu" Cpu.presets base pairs)
    pairs

let gpu_group base value =
  let pairs = pairs_of "gpu" value in
  List.fold_left
    (fun (g : Gpu.t) (key, v) ->
      match key with
      | "preset" -> g
      | "name" -> { g with name = atom key v }
      | "sm-count" -> { g with sm_count = get int_of_atom key v }
      | "cores-per-sm" -> { g with cores_per_sm = get int_of_atom key v }
      | "clock-ghz" -> { g with clock_ghz = get float_of_atom key v }
      | "warp-size" -> { g with warp_size = get int_of_atom key v }
      | "max-threads-per-sm" -> { g with max_threads_per_sm = get int_of_atom key v }
      | "max-blocks-per-sm" -> { g with max_blocks_per_sm = get int_of_atom key v }
      | "max-threads-per-block" -> { g with max_threads_per_block = get int_of_atom key v }
      | "registers-per-sm" -> { g with registers_per_sm = get int_of_atom key v }
      | "shared-mem-per-sm" -> { g with shared_mem_per_sm = get int_of_atom key v }
      | "dram-bandwidth" -> { g with dram_bandwidth = get float_of_atom key v }
      | "dram-bandwidth-gb" ->
          { g with dram_bandwidth = Gpp_util.Units.gb_per_s (get float_of_atom key v) }
      | "dram-latency-cycles" -> { g with dram_latency_cycles = get int_of_atom key v }
      | "coalesce-segment" -> { g with coalesce_segment = get int_of_atom key v }
      | "issue-cycles" -> { g with issue_cycles = get float_of_atom key v }
      | "launch-overhead" -> { g with launch_overhead = get float_of_atom key v }
      | "launch-overhead-us" ->
          { g with launch_overhead = Gpp_util.Units.us (get float_of_atom key v) }
      | "flops-per-core-cycle" -> { g with flops_per_core_cycle = get float_of_atom key v }
      | _ -> bad "gpu: unknown key %S" key)
    (seed_of "gpu" Gpu.presets base pairs)
    pairs

let link_group base value =
  let pairs = pairs_of "link" value in
  List.fold_left
    (fun (l : Pcie_spec.t) (key, v) ->
      match key with
      | "preset" -> l
      | "generation" -> { l with generation = get Pcie_spec.generation_of_name key v }
      | "lanes" -> { l with lanes = get int_of_atom key v }
      | "max-payload" -> { l with max_payload = get int_of_atom key v }
      | "header-bytes" -> { l with header_bytes = get int_of_atom key v }
      | _ -> bad "link: unknown key %S" key)
    (seed_of "link" Pcie_spec.presets base pairs)
    pairs

(* One descriptor: a (key value) pair list.  [base] (looked up in the
   catalog built so far, so a descriptor can extend a builtin or an
   earlier entry in the same file) seeds every component; without it the
   seed is the paper's testbed.  [id] defaults to the base's id, so
   [(base kepler) (staging pageable)] *overrides* kepler in place. *)
let of_sexp ~base:lookup sexp =
  let pairs = pairs_of "machine" sexp in
  let base =
    match List.assoc_opt "base" pairs with
    | None -> None
    | Some v -> (
        let id = atom "base" v in
        match lookup id with
        | Some m -> Some m
        | None -> bad "base: unknown machine %S" id)
  in
  let id =
    match (List.assoc_opt "id" pairs, base) with
    | Some v, _ -> atom "id" v
    | None, Some (b : Machine.t) -> b.id
    | None, None -> bad "machine: missing (id ...) (or a (base ...) to inherit one)"
  in
  let start =
    match base with Some b -> { b with Machine.id } | None -> { Machine.argonne_node with id }
  in
  let wrap f = try f () with Bad m -> bad "machine %s: %s" id m in
  let t =
    List.fold_left
      (fun (m : Machine.t) (key, v) ->
        match key with
        | "id" | "base" -> m
        | "name" -> { m with name = atom key v }
        | "staging" -> { m with staging = get Machine.staging_of_name key v }
        | "cpu" -> wrap (fun () -> { m with cpu = cpu_group m.cpu v })
        | "gpu" -> wrap (fun () -> { m with gpu = gpu_group m.gpu v })
        | "link" | "pcie" -> wrap (fun () -> { m with pcie = link_group m.pcie v })
        | _ -> bad "machine %s: unknown key %S" id key)
      start pairs
  in
  match Machine.validate t with Ok () -> t | Error m -> bad "machine %s" m

(* Full explicit rendering, the inverse of [of_sexp] on its output: raw
   SI units, floats printed with enough digits to round-trip exactly. *)
let fl f = Sexp.Atom (Printf.sprintf "%.17g" f)

let it n = Sexp.Atom (string_of_int n)

let pair key v = Sexp.List [ Sexp.Atom key; v ]

let to_sexp (m : Machine.t) =
  let c = m.cpu and g = m.gpu and l = m.pcie in
  Sexp.List
    [
      pair "id" (Sexp.Atom m.id);
      pair "name" (Sexp.Atom m.name);
      pair "staging" (Sexp.Atom (Machine.staging_name m.staging));
      pair "cpu"
        (Sexp.List
           [
             pair "name" (Sexp.Atom c.name);
             pair "cores" (it c.cores);
             pair "threads" (it c.threads);
             pair "clock-ghz" (fl c.clock_ghz);
             pair "flops-per-core-cycle" (fl c.flops_per_core_cycle);
             pair "mem-bandwidth" (fl c.mem_bandwidth);
             pair "achieved-bw-fraction" (fl c.achieved_bw_fraction);
             pair "llc-bytes" (it c.llc_bytes);
             pair "cache-bandwidth" (fl c.cache_bandwidth);
             pair "parallel-efficiency" (fl c.parallel_efficiency);
             pair "parallel-overhead" (fl c.parallel_overhead);
           ]);
      pair "gpu"
        (Sexp.List
           [
             pair "name" (Sexp.Atom g.name);
             pair "sm-count" (it g.sm_count);
             pair "cores-per-sm" (it g.cores_per_sm);
             pair "clock-ghz" (fl g.clock_ghz);
             pair "warp-size" (it g.warp_size);
             pair "max-threads-per-sm" (it g.max_threads_per_sm);
             pair "max-blocks-per-sm" (it g.max_blocks_per_sm);
             pair "max-threads-per-block" (it g.max_threads_per_block);
             pair "registers-per-sm" (it g.registers_per_sm);
             pair "shared-mem-per-sm" (it g.shared_mem_per_sm);
             pair "dram-bandwidth" (fl g.dram_bandwidth);
             pair "dram-latency-cycles" (it g.dram_latency_cycles);
             pair "coalesce-segment" (it g.coalesce_segment);
             pair "issue-cycles" (fl g.issue_cycles);
             pair "launch-overhead" (fl g.launch_overhead);
             pair "flops-per-core-cycle" (fl g.flops_per_core_cycle);
           ]);
      pair "link"
        (Sexp.List
           [
             pair "generation"
               (Sexp.Atom (String.lowercase_ascii (Pcie_spec.generation_name l.generation)));
             pair "lanes" (it l.lanes);
             pair "max-payload" (it l.max_payload);
             pair "header-bytes" (it l.header_bytes);
           ]);
    ]

(* Replace by id where ids collide (catalog order preserved), append the
   rest — so a descriptor file can both tweak builtins and add new
   machines, and `grophecy list` keeps a stable order. *)
let merge base extra =
  let replaced =
    List.map
      (fun (m : Machine.t) ->
        match List.find_opt (fun (e : Machine.t) -> String.equal e.Machine.id m.id) extra with
        | Some e -> e
        | None -> m)
      base
  in
  let fresh =
    List.filter
      (fun (e : Machine.t) ->
        not (List.exists (fun (m : Machine.t) -> String.equal m.Machine.id e.Machine.id) base))
      extra
  in
  replaced @ fresh

let extend ~base descriptors =
  let parsed =
    List.fold_left
      (fun acc sexp ->
        let lookup id =
          match List.find_opt (fun (m : Machine.t) -> String.equal m.Machine.id id) acc with
          | Some m -> Some m
          | None -> List.find_opt (fun (m : Machine.t) -> String.equal m.Machine.id id) base
        in
        let m = of_sexp ~base:lookup sexp in
        if List.exists (fun (e : Machine.t) -> String.equal e.Machine.id m.Machine.id) acc then
          bad "duplicate machine id %S" m.Machine.id
        else acc @ [ m ])
      [] descriptors
  in
  merge base parsed

let extend_result ~base descriptors =
  match extend ~base descriptors with
  | catalog -> Ok catalog
  | exception Bad m -> Error m

(* A catalog file is [(machines <descriptor> ...)], or a bare list of
   descriptors. *)
let descriptors_of_file_sexp = function
  | Sexp.Atom a -> bad "expected (machines ...), got %S" a
  | Sexp.List (Sexp.Atom "machines" :: rest) -> rest
  | Sexp.List items -> items

let load_file ~base path =
  match Sexp.parse_file path with
  | Error m -> Error (Error.config ~source:path (Printf.sprintf "%s: %s" path m))
  | Ok sexp -> (
      match extend ~base (descriptors_of_file_sexp sexp) with
      | catalog -> Ok catalog
      | exception Bad m -> Error (Error.config ~source:path (Printf.sprintf "%s: %s" path m)))

let find catalog id =
  match List.find_opt (fun (m : Machine.t) -> String.equal m.Machine.id id) catalog with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown machine %S (catalog: %s)" id
           (String.concat ", " (List.map (fun (m : Machine.t) -> m.Machine.id) catalog)))
