(** Typed scenario configuration with layered resolution.

    One {!t} record captures everything a pipeline run depends on — the
    target machine, the noise seeds, the simulator/CPU/analytic model
    parameters, the transfer policy, and the cache/observability
    switches.  {!resolve} builds it by layering, lowest precedence
    first:

    {v library defaults < sexp config file (--config FILE)
       < GPP_* environment variables < command-line flags v}

    The defaults reproduce the historical
    [Grophecy.init machine] behaviour bit-for-bit, so a default-resolved
    config is byte-identical to every pre-engine run. *)

type t = {
  machine : Gpp_arch.Machine.t;
  machines : Gpp_arch.Machine.t list;
      (** The resolved machine catalog: the builtin
          {!Gpp_arch.Machine.catalog} merged with descriptors from the
          config file's [(machines ...)] group, [GPP_MACHINES], and
          [--machines] (later layers replace matching ids).  Machine
          names everywhere — [machine]/[-m], the batch axis, crossval —
          resolve against this list. *)
  seed : int64;  (** Seed for the simulated hardware's noise streams. *)
  outlier_probability : float;
      (** Slow-transfer outlier rate of the application link (§V-A). *)
  protocol : Gpp_pcie.Calibrate.protocol option;
      (** Calibration protocol override (sizes and runs). *)
  runs : int option;  (** Runs per measurement mean (default 10). *)
  iterations : int option;
      (** When set, rescale the program's [Repeat] nodes. *)
  use_cache : bool option;
      (** Per-call memo override handed to the core pipeline; [None]
          defers to the global switch. *)
  analytic : Gpp_model.Analytic.params option;
  space : Gpp_transform.Explore.space option;
  policy : Gpp_dataflow.Analyzer.policy option;
  sim : Gpp_gpusim.Gpu_sim.config option;
  cpu : Gpp_cpu.Timing.params option;
  predictor : Gpp_predict.Predictor.t;
      (** The predictor stack projections price through
          ([--predict]/[GPP_PREDICT]/config [(predict (stages ...))];
          default {!Gpp_predict.Predictor.analytic}, byte-identical to
          the pre-predictor pipeline). *)
  predict_lambda : float;
      (** Ridge regularization strength for the Learned stage's
          correction fit (config [(predict (lambda ...))], default
          {!Gpp_predict.Correction.default_lambda}). *)
  lint : bool;  (** Run the Lint stage (diagnostics to stderr). *)
  jobs : int;
      (** Worker domains for the batch runner ([--jobs]/[GPP_JOBS],
          default 1 = sequential).  Output is byte-identical at any
          value; see {!Batch.run}. *)
  cache_enabled : bool;  (** Process-wide cache switch ([--no-cache]). *)
  cache_dir : string option;  (** Persistent-store directory override. *)
  trace : string option;  (** Chrome-trace output file ([--trace]). *)
  verbose : bool;
  listen : string;
      (** [grophecy serve] bind address: [HOST:PORT] (port [0] = pick a
          free one) or [unix:PATH] ([--listen]/[GPP_LISTEN], default
          [127.0.0.1:8080]). *)
  flush_every : int;
      (** [grophecy serve]: flush the persistent cache tier every N
          requests ([--flush-every]/[GPP_FLUSH_EVERY], default 64), so a
          killed server loses at most the last N requests' worth of
          memoized work. *)
}

val default : t

val core_params : t -> Gpp_core.Grophecy.params
(** Project the scenario down to the core facade's per-call params. *)

val machine_of_name : string -> (Gpp_arch.Machine.t, string) result
(** Builtin-catalog lookup by id, for callers without a resolved
    scenario (simple CLI commands, the serve API).  Scenario layers use
    {!find_machine} so file-loaded machines resolve too. *)

val find_machine : t -> string -> (Gpp_arch.Machine.t, string) result
(** Lookup in the scenario's resolved [machines] catalog. *)

val machine_names : string list
(** Ids of the builtin catalog. *)

val apply_file : t -> path:string -> (t, Error.t) result
(** Layer a sexp scenario file onto [t].  The file is one list of
    [(key value)] pairs; parameter groups ([analytic], [cpu], [sim],
    [policy], [space], [protocol], [cache]) nest another pair list and
    start from the library defaults, so partial groups override only the
    named fields.  A [(machines <descriptor> ...)] group (see
    {!Machines}) merges into the catalog first, whatever its position,
    so [(machine NAME)] can name a machine the same file defines.
    Unknown keys, malformed sexps, and unreadable files are
    {!Error.Config} naming the file. *)

val apply_env : ?getenv:(string -> string option) -> t -> (t, Error.t) result
(** Layer the [GPP_*] environment variables onto [t].  [getenv] is
    injectable for tests.  Malformed values are {!Error.Config} naming
    the variable. *)

val env_vars : string list
(** The variables {!apply_env} consults. *)

type overrides = {
  o_machines_file : string option;
      (** [--machines FILE]: merge a machine-descriptor catalog over the
          lower layers' catalog before any name resolves. *)
  o_machine : string option;
      (** [-m NAME]: resolved against the final catalog, so it can name
          a machine that [--machines] (or any lower layer) defined. *)
  o_seed : int64 option;
  o_runs : int option;
  o_iterations : int option;
  o_jobs : int option;
  o_no_cache : bool;
  o_cache_dir : string option;
  o_trace : string option;
  o_verbose : bool;
  o_transfer_plan : Gpp_dataflow.Analyzer.plan_policy option;
      (** [--transfer-plan]: overrides the [plan] field of the policy
          layer (config file [policy (plan ...)], environment
          [GPP_TRANSFER_PLAN]). *)
  o_predict : string option;
      (** [--predict NAME[,NAME...]]: the predictor stack, parsed with
          {!Gpp_predict.Predictor.of_string}.  Unknown stage names are
          {!Error.Config} (exit 2) with a nearest-name suggestion. *)
  o_listen : string option;  (** [--listen] for [grophecy serve]. *)
  o_flush_every : int option;  (** [--flush-every] for [grophecy serve]. *)
}
(** The command-line flag layer: [None]/[false] means "flag not given,
    keep the lower layers' value". *)

val no_overrides : overrides

val apply_overrides : t -> overrides -> (t, Error.t) result
(** Layer the flag overrides onto [t].  Loading [o_machines_file] and
    resolving [o_machine] can fail; both are {!Error.Config} (exit 2). *)

val resolve :
  ?getenv:(string -> string option) ->
  ?file:string ->
  ?overrides:overrides ->
  unit ->
  (t, Error.t) result
(** Full layered resolution: defaults, then [file], then environment,
    then [overrides], then cross-layer validation ([jobs] within
    {!Pool.max_jobs}, [flush_every >= 1]) — an out-of-range value is an
    {!Error.Config} (exit 2) whichever layer supplied it. *)
