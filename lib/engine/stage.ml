type id = Parse | Lint | Analyze | Explore | Simulate | Predict | Project | Evaluate

let all = [ Parse; Lint; Analyze; Explore; Simulate; Predict; Project; Evaluate ]

let name = function
  | Parse -> "parse"
  | Lint -> "lint"
  | Analyze -> "analyze"
  | Explore -> "explore"
  | Simulate -> "simulate"
  | Predict -> "predict"
  | Project -> "project"
  | Evaluate -> "evaluate"

let description = function
  | Parse -> "resolve the workload and build its program skeleton"
  | Lint -> "run the static-analysis passes over the skeleton"
  | Analyze -> "BRS dataflow analysis: derive the transfer plan"
  | Explore -> "transformation-space search per kernel"
  | Simulate -> "measure kernels and transfers on the simulated hardware"
  | Predict -> "build the predictor stack's pricing (scale models, train corrections)"
  | Project -> "price planned transfers and assemble the projection"
  | Evaluate -> "derive CPU time, speedups, and error magnitudes"

let of_name = function
  | "parse" -> Some Parse
  | "lint" -> Some Lint
  | "analyze" -> Some Analyze
  | "explore" -> Some Explore
  | "simulate" -> Some Simulate
  | "predict" -> Some Predict
  | "project" -> Some Project
  | "evaluate" -> Some Evaluate
  | _ -> None

let index = function
  | Parse -> 0
  | Lint -> 1
  | Analyze -> 2
  | Explore -> 3
  | Simulate -> 4
  | Predict -> 5
  | Project -> 6
  | Evaluate -> 7

let compare a b = Int.compare (index a) (index b)

let pp ppf id = Format.pp_print_string ppf (name id)
