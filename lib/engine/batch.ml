module Grophecy = Gpp_core.Grophecy
module Measurement = Gpp_core.Measurement
module Obs = Gpp_obs.Obs

type cell = { workload : string; machine : Gpp_arch.Machine.t; iterations : int option }

type cell_result = { cell : cell; outcome : (Grophecy.report, Error.t) result }

type t = {
  config : Config.t;
  sessions : (string * Grophecy.session) list;
  cells : cell_result list;
}

(* Cells are enumerated machine-major, then workload, then iteration —
   the exact order the experiment context has always used, so a batch
   over the paper instances reproduces the suite's reports bit-for-bit.

   Parallelism does not change the output.  The only cross-cell state is
   each machine session's application link, whose stateful RNG advances
   a data-dependent number of draws per transfer (outliers draw extra),
   so transfer pricing must happen in a fixed order.  The parallel path
   therefore splits each cell at the Simulate stage: the deterministic
   phases (Parse..Explore plus the kernel simulations, which seed a
   fresh RNG from the session's noise seed) are sharded across worker
   domains, while transfer pricing runs serially in cell-index order —
   precisely the draw order of the sequential path.  The TSV is
   byte-identical at any [jobs] value. *)

(* Deterministic per-cell half: resolve, analyze, explore, and simulate
   the kernels.  Runs on worker domains; touches no shared mutable state
   beyond the (domain-safe) memo tables. *)
let run_deterministic ~session (cconfig : Config.t) ~workload =
  match Pipeline.run ~through:Stage.Explore ~session cconfig ~workload with
  | Error e -> Error e
  | Ok state -> (
      let program = Option.get state.Pipeline.program in
      let kernels = Option.get state.Pipeline.kernels in
      match
        Measurement.measure_kernels ?cache:cconfig.Config.use_cache
          ?sim_config:cconfig.Config.sim ?runs:cconfig.Config.runs
          ~seed:session.Grophecy.noise_seed ~machine:cconfig.Config.machine ~kernels program
      with
      | Error e -> Error e
      | Ok (kmeas, ktime) -> Ok (state, kmeas, ktime))

(* Serial per-cell half: price the planned transfers on the machine
   session's stateful link, then finish the pipeline (Project and
   Evaluate are pure in the session's calibrated models). *)
let finish_cell ~session (cconfig : Config.t) (state, kmeas, ktime) =
  let plan = Option.get state.Pipeline.plan in
  let transfers =
    Obs.span "batch.price" @@ fun () ->
    Measurement.price_transfers ?runs:cconfig.Config.runs
      ~memory:
        (Gpp_pcie.Link.memory_of_staging
           cconfig.Config.machine.Gpp_arch.Machine.staging)
      ~link:session.Grophecy.application_link plan
  in
  let measurement = Measurement.of_parts ~kernels:kmeas ~kernel_time:ktime ~transfers in
  let state = { state with Pipeline.measurement = Some measurement } in
  match Pipeline.resume ~session state with
  | Ok state -> Ok (Pipeline.report_exn state)
  | Error e -> Error e

let run ?machines ?(iterations = [ None ]) ?jobs (config : Config.t) ~workloads =
  let machines = match machines with Some ms -> ms | None -> [ config.Config.machine ] in
  let jobs = match jobs with Some j -> j | None -> config.Config.jobs in
  (* Sessions calibrate serially whatever [jobs] is: each owns
     independent RNG streams seeded from the scenario, so calibration
     order cannot affect cell results, and keeping it off the pool makes
     the session list deterministic for free. *)
  let sessions =
    List.map
      (fun (machine : Gpp_arch.Machine.t) ->
        let mconfig = { config with Config.machine } in
        let session = Obs.span "batch.calibrate" (fun () -> Pipeline.session_of mconfig) in
        (machine, mconfig, session))
      machines
  in
  let cells =
    List.concat_map
      (fun (machine, (mconfig : Config.t), session) ->
        List.concat_map
          (fun workload ->
            List.map
              (fun iters ->
                ( { workload; machine; iterations = iters },
                  { mconfig with Config.iterations = iters },
                  session ))
              iterations)
          workloads)
      sessions
  in
  let cells = Array.of_list cells in
  let n = Array.length cells in
  let outcomes =
    if jobs <= 1 then
      (* Sequential path: each cell runs the whole pipeline in one go,
         exactly as before the pool existed. *)
      Array.map
        (fun (cell, cconfig, session) ->
          Obs.span "batch.cell" @@ fun () ->
          match Pipeline.run ~session cconfig ~workload:cell.workload with
          | Ok state -> Ok (Pipeline.report_exn state)
          | Error e -> Error e)
        cells
    else begin
      let partial = Array.make n None in
      Pool.run ~jobs n (fun i ->
          let cell, cconfig, session = cells.(i) in
          let r =
            Obs.span "batch.cell" @@ fun () ->
            run_deterministic ~session cconfig ~workload:cell.workload
          in
          partial.(i) <- Some r);
      Array.init n (fun i ->
          let _cell, cconfig, session = cells.(i) in
          match Option.get partial.(i) with
          | Error e -> Error e
          | Ok parts -> finish_cell ~session cconfig parts)
    end
  in
  let cell_results =
    Array.to_list
      (Array.mapi
         (fun i outcome ->
           let cell, _, _ = cells.(i) in
           { cell; outcome })
         outcomes)
  in
  {
    config;
    sessions = List.map (fun (m, _, s) -> (m.Gpp_arch.Machine.name, s)) sessions;
    cells = cell_results;
  }

let session t ~machine =
  List.assoc_opt machine t.sessions

let succeeded t =
  List.filter_map
    (fun { cell; outcome } -> match outcome with Ok r -> Some (cell, r) | Error _ -> None)
    t.cells

let failed t =
  List.filter_map
    (fun { cell; outcome } -> match outcome with Ok _ -> None | Error e -> Some (cell, e))
    t.cells

let tsv_header =
  "workload\tmachine\titerations\tstatus\tmeasured\tkernel_only\ttransfer_only\twith_transfer\tkernel_error\ttransfer_error"

(* Stable text rendering for golden files: fixed six-decimal floats,
   tab-separated, one row per cell in run order.  Failed cells keep
   their row (status = the error category) so a matrix diff shows
   exactly which cell regressed. *)
let to_tsv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf tsv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun { cell; outcome } ->
      let iters = match cell.iterations with None -> "-" | Some n -> string_of_int n in
      (match outcome with
      | Ok (r : Grophecy.report) ->
          let s = r.speedups in
          Printf.bprintf buf "%s\t%s\t%s\tok\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f"
            cell.workload cell.machine.Gpp_arch.Machine.name iters s.Gpp_core.Evaluation.measured
            s.Gpp_core.Evaluation.kernel_only s.Gpp_core.Evaluation.transfer_only
            s.Gpp_core.Evaluation.with_transfer r.kernel_error r.transfer_error
      | Error e ->
          Printf.bprintf buf "%s\t%s\t%s\terror:%s\t-\t-\t-\t-\t-\t-" cell.workload
            cell.machine.Gpp_arch.Machine.name iters (Error.category e));
      Buffer.add_char buf '\n')
    t.cells;
  Buffer.contents buf
