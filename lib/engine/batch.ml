module Grophecy = Gpp_core.Grophecy
module Obs = Gpp_obs.Obs

type cell = { workload : string; machine : Gpp_arch.Machine.t; iterations : int option }

type cell_result = { cell : cell; outcome : (Grophecy.report, Error.t) result }

type t = {
  config : Config.t;
  sessions : (string * Grophecy.session) list;
  cells : cell_result list;
}

(* Cells run sequentially, grouped by machine: one calibrated session
   per machine serves all of its cells, and within a machine the
   workloads run in the given order.  This is the exact session/analyze
   order the experiment context has always used, so a batch over the
   paper instances reproduces the suite's reports bit-for-bit (the
   application link's RNG is stateful; order is part of the result). *)
let run ?machines ?(iterations = [ None ]) (config : Config.t) ~workloads =
  let machines = match machines with Some ms -> ms | None -> [ config.Config.machine ] in
  let sessions_rev = ref [] in
  let cells_rev = ref [] in
  List.iter
    (fun (machine : Gpp_arch.Machine.t) ->
      let config = { config with Config.machine } in
      let session = Obs.span "batch.calibrate" (fun () -> Pipeline.session_of config) in
      sessions_rev := (machine.Gpp_arch.Machine.name, session) :: !sessions_rev;
      List.iter
        (fun workload ->
          List.iter
            (fun iters ->
              let config = { config with Config.iterations = iters } in
              let outcome =
                Obs.span "batch.cell" @@ fun () ->
                match Pipeline.run ~session config ~workload with
                | Ok state -> Ok (Pipeline.report_exn state)
                | Error e -> Error e
              in
              cells_rev :=
                { cell = { workload; machine; iterations = iters }; outcome } :: !cells_rev)
            iterations)
        workloads)
    machines;
  { config; sessions = List.rev !sessions_rev; cells = List.rev !cells_rev }

let session t ~machine =
  List.assoc_opt machine t.sessions

let succeeded t =
  List.filter_map
    (fun { cell; outcome } -> match outcome with Ok r -> Some (cell, r) | Error _ -> None)
    t.cells

let failed t =
  List.filter_map
    (fun { cell; outcome } -> match outcome with Ok _ -> None | Error e -> Some (cell, e))
    t.cells

let tsv_header =
  "workload\tmachine\titerations\tstatus\tmeasured\tkernel_only\ttransfer_only\twith_transfer\tkernel_error\ttransfer_error"

(* Stable text rendering for golden files: fixed six-decimal floats,
   tab-separated, one row per cell in run order.  Failed cells keep
   their row (status = the error category) so a matrix diff shows
   exactly which cell regressed. *)
let to_tsv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf tsv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun { cell; outcome } ->
      let iters = match cell.iterations with None -> "-" | Some n -> string_of_int n in
      (match outcome with
      | Ok (r : Grophecy.report) ->
          let s = r.speedups in
          Printf.bprintf buf "%s\t%s\t%s\tok\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f"
            cell.workload cell.machine.Gpp_arch.Machine.name iters s.Gpp_core.Evaluation.measured
            s.Gpp_core.Evaluation.kernel_only s.Gpp_core.Evaluation.transfer_only
            s.Gpp_core.Evaluation.with_transfer r.kernel_error r.transfer_error
      | Error e ->
          Printf.bprintf buf "%s\t%s\t%s\terror:%s\t-\t-\t-\t-\t-\t-" cell.workload
            cell.machine.Gpp_arch.Machine.name iters (Error.category e));
      Buffer.add_char buf '\n')
    t.cells;
  Buffer.contents buf
