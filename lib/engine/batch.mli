(** Batch runner: a workload × machine × iterations matrix through the
    staged pipeline, optionally sharded across worker domains.

    One calibrated session per machine; cells are enumerated in
    machine-major, then workload, then iteration order — the exact order
    the experiment suite has always used, so batches over the paper
    instances reproduce its reports bit-for-bit.  Per-cell failures are
    collected, not fatal: one bad skeleton does not sink the matrix.

    With [jobs > 1] the deterministic phases of each cell (parse through
    kernel simulation) run on a {!Pool} of worker domains, while
    transfer pricing — the only computation that advances shared state,
    the per-machine application link's RNG — runs serially in cell-index
    order.  That is the sequential path's exact draw order, so
    {!to_tsv} is byte-identical at every [jobs] value. *)

type cell = {
  workload : string;  (** Registry key ([app/size]) or [.skel] path. *)
  machine : Gpp_arch.Machine.t;
  iterations : int option;
}

type cell_result = { cell : cell; outcome : (Gpp_core.Grophecy.report, Error.t) result }

type t = {
  config : Config.t;
  sessions : (string * Gpp_core.Grophecy.session) list;
      (** Calibrated session per machine name, in run order. *)
  cells : cell_result list;  (** All cells, in run order. *)
}

val run :
  ?machines:Gpp_arch.Machine.t list ->
  ?iterations:int option list ->
  ?jobs:int ->
  Config.t ->
  workloads:string list ->
  t
(** Run every cell of [workloads × machines × iterations].  [machines]
    defaults to the scenario's machine; [iterations] defaults to
    [[None]] (each program as bundled); [jobs] defaults to the
    scenario's [jobs] field and must satisfy {!Pool.run}'s range
    ([Config.resolve] already enforces it for user input; [jobs = 1]
    runs each whole cell sequentially on the calling domain).  The
    scenario's
    cache settings are honoured per cell; calibration, cells, and
    transfer pricing get obs spans ([batch.calibrate], [batch.cell],
    [batch.price]). *)

val session : t -> machine:string -> Gpp_core.Grophecy.session option
(** The calibrated session for a machine name. *)

val succeeded : t -> (cell * Gpp_core.Grophecy.report) list

val failed : t -> (cell * Error.t) list

val to_tsv : t -> string
(** Stable tab-separated rendering (fixed 6-decimal floats), one row per
    cell in run order; failed cells carry their error category.  The CI
    batch-matrix leg diffs this against a committed golden file. *)

val tsv_header : string
