module Machine = Gpp_arch.Machine

type t = {
  machine : Machine.t;
  machines : Machine.t list;
  seed : int64;
  outlier_probability : float;
  protocol : Gpp_pcie.Calibrate.protocol option;
  runs : int option;
  iterations : int option;
  use_cache : bool option;
  analytic : Gpp_model.Analytic.params option;
  space : Gpp_transform.Explore.space option;
  policy : Gpp_dataflow.Analyzer.policy option;
  sim : Gpp_gpusim.Gpu_sim.config option;
  cpu : Gpp_cpu.Timing.params option;
  predictor : Gpp_predict.Predictor.t;
  predict_lambda : float;
  lint : bool;
  jobs : int;
  cache_enabled : bool;
  cache_dir : string option;
  trace : string option;
  verbose : bool;
  listen : string;  (* serve: HOST:PORT or unix:PATH *)
  flush_every : int;  (* serve: flush the disk cache every N requests *)
}

(* Mirrors Grophecy.init's defaults exactly: resolving a default config
   and running it must be bit-identical to the historical
   [Grophecy.init machine] + [Grophecy.analyze session program] path. *)
let default =
  {
    machine = Machine.argonne_node;
    machines = Machine.catalog;
    seed = 0x1B0A_2013_6CA1_55AAL;
    outlier_probability = 0.05;
    protocol = None;
    runs = None;
    iterations = None;
    use_cache = None;
    analytic = None;
    space = None;
    policy = None;
    sim = None;
    cpu = None;
    predictor = Gpp_predict.Predictor.analytic;
    predict_lambda = Gpp_predict.Correction.default_lambda;
    lint = false;
    jobs = 1;
    cache_enabled = true;
    cache_dir = None;
    trace = None;
    verbose = false;
    listen = "127.0.0.1:8080";
    flush_every = 64;
  }

let core_params (t : t) =
  {
    Gpp_core.Grophecy.cache = t.use_cache;
    analytic_params = t.analytic;
    space = t.space;
    policy = t.policy;
    sim_config = t.sim;
    cpu_params = t.cpu;
    runs = t.runs;
    iterations = t.iterations;
  }

let machine_names = List.map (fun (m : Machine.t) -> m.Machine.id) Machine.catalog

(* Builtin-catalog lookup, for callers that resolve a name without a
   scenario (simple CLI commands, the serve API).  Layered resolution
   goes through [t.machines] instead, so file-loaded machines are
   addressable too. *)
let machine_of_name name = Machines.find Machine.catalog name

let find_machine (t : t) name = Machines.find t.machines name

(* Scalar parsers shared by the file and environment layers. *)

let bool_of_atom s =
  match String.lowercase_ascii s with
  | "true" | "yes" | "on" | "1" -> Ok true
  | "false" | "no" | "off" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "expected a boolean, got %S" s)

let int_of_atom s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "expected an integer, got %S" s)

let pos_int_of_atom s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "expected a positive integer, got %d" n)
  | None -> Error (Printf.sprintf "expected an integer, got %S" s)

let int64_of_atom s =
  match Int64.of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "expected an integer seed, got %S" s)

let float_of_atom s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "expected a number, got %S" s)

(* --- configuration file layer (sexp) ------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let atom key = function
  | Sexp.Atom a -> a
  | Sexp.List _ -> bad "%s: expected an atom, got a list" key

let get parse key v =
  match parse (atom key v) with Ok x -> x | Error m -> bad "%s: %s" key m

let int_list key = function
  | Sexp.Atom _ -> bad "%s: expected a list of integers" key
  | Sexp.List items -> List.map (get int_of_atom key) items

(* Key/value pairs: each entry of the top-level list is (key value)
   where value is an atom or a nested key/value list for the parameter
   groups. *)
let pairs_of context = function
  | Sexp.Atom _ -> bad "%s: expected a list of (key value) pairs" context
  | Sexp.List items ->
      List.map
        (function
          | Sexp.List [ Sexp.Atom key; value ] -> (key, value)
          | s -> bad "%s: expected (key value), got %s" context (Sexp.to_string s))
        items

let fold_group ~context ~seed ~field value =
  List.fold_left (fun acc (key, v) -> field acc key v) seed (pairs_of context value)

let analytic_group base value =
  fold_group ~context:"analytic" ~seed:(Option.value base ~default:Gpp_model.Analytic.default_params)
    ~field:(fun (p : Gpp_model.Analytic.params) key v ->
      match key with
      | "achieved-bw-fraction" -> { p with achieved_bw_fraction = get float_of_atom key v }
      | "sync-cost-cycles" -> { p with sync_cost_cycles = get float_of_atom key v }
      | _ -> bad "analytic: unknown key %S" key)
    value

let cpu_group base value =
  fold_group ~context:"cpu" ~seed:(Option.value base ~default:Gpp_cpu.Timing.default_params)
    ~field:(fun (p : Gpp_cpu.Timing.params) key v ->
      match key with
      | "ilp-efficiency" -> { p with ilp_efficiency = get float_of_atom key v }
      | "heavy-op-cycles" -> { p with heavy_op_cycles = get float_of_atom key v }
      | "streaming-bw-fraction" ->
          { p with streaming_bw_fraction_override = Some (get float_of_atom key v) }
      | _ -> bad "cpu: unknown key %S" key)
    value

let sim_group base value =
  fold_group ~context:"sim" ~seed:(Option.value base ~default:Gpp_gpusim.Gpu_sim.default_config)
    ~field:(fun (c : Gpp_gpusim.Gpu_sim.config) key v ->
      match key with
      | "streaming-efficiency" -> { c with streaming_efficiency = get float_of_atom key v }
      | "scattered-efficiency" -> { c with scattered_efficiency = get float_of_atom key v }
      | "latency-jitter" -> { c with latency_jitter = get float_of_atom key v }
      | "block-dispatch-cycles" -> { c with block_dispatch_cycles = get float_of_atom key v }
      | "drain-cycles" -> { c with drain_cycles = get float_of_atom key v }
      | "noise-sigma" -> { c with noise_sigma = get float_of_atom key v }
      | "max-simulated-blocks" -> { c with max_simulated_blocks = get int_of_atom key v }
      | _ -> bad "sim: unknown key %S" key)
    value

let policy_group base value =
  fold_group ~context:"policy" ~seed:(Option.value base ~default:Gpp_dataflow.Analyzer.default_policy)
    ~field:(fun (p : Gpp_dataflow.Analyzer.policy) key v ->
      match key with
      | "sparse-exact" -> { p with Gpp_dataflow.Analyzer.sparse_exact = get bool_of_atom key v }
      | "plan" -> { p with Gpp_dataflow.Analyzer.plan = get Gpp_dataflow.Analyzer.plan_policy_of_name key v }
      | _ -> bad "policy: unknown key %S" key)
    value

let space_group base value =
  fold_group ~context:"space" ~seed:(Option.value base ~default:Gpp_transform.Explore.default_space)
    ~field:(fun (s : Gpp_transform.Explore.space) key v ->
      match key with
      | "block-sizes" -> { s with block_sizes = int_list key v }
      | "unroll-factors" -> { s with unroll_factors = int_list key v }
      | "vector-widths" -> { s with vector_widths = int_list key v }
      | "allow-tiling" -> { s with allow_tiling = get bool_of_atom key v }
      | _ -> bad "space: unknown key %S" key)
    value

let protocol_group base value =
  fold_group ~context:"protocol"
    ~seed:(Option.value base ~default:Gpp_pcie.Calibrate.default_protocol)
    ~field:(fun (p : Gpp_pcie.Calibrate.protocol) key v ->
      match key with
      | "small-bytes" -> { p with small_bytes = get int_of_atom key v }
      | "large-bytes" -> { p with large_bytes = get int_of_atom key v }
      | "runs" -> { p with runs = get int_of_atom key v }
      | _ -> bad "protocol: unknown key %S" key)
    value

(* Shared by every layer that names a predictor, so the error text (and
   its Levenshtein suggestion) is identical whether the bad name came
   from a file, GPP_PREDICT, or --predict. *)
let predictor_of_atom s =
  match Gpp_predict.Predictor.of_string s with
  | Ok p -> Ok p
  | Error m -> Error m

let nonneg_float_of_atom s =
  match float_of_string_opt s with
  | Some f when f >= 0.0 -> Ok f
  | Some f -> Error (Printf.sprintf "expected a non-negative number, got %g" f)
  | None -> Error (Printf.sprintf "expected a number, got %S" s)

let predict_group (t : t) value =
  List.fold_left
    (fun (t : t) (key, v) ->
      match key with
      | "stages" -> { t with predictor = get predictor_of_atom key v }
      | "lambda" -> { t with predict_lambda = get nonneg_float_of_atom key v }
      | _ -> bad "predict: unknown key %S" key)
    t (pairs_of "predict" value)

let serve_group (t : t) value =
  List.fold_left
    (fun (t : t) (key, v) ->
      match key with
      | "listen" -> { t with listen = atom key v }
      | "flush-every" -> { t with flush_every = get pos_int_of_atom key v }
      | _ -> bad "serve: unknown key %S" key)
    t (pairs_of "serve" value)

let cache_group (t : t) value =
  List.fold_left
    (fun (t : t) (key, v) ->
      match key with
      | "enabled" -> { t with cache_enabled = get bool_of_atom key v }
      | "dir" -> { t with cache_dir = Some (atom key v) }
      | _ -> bad "cache: unknown key %S" key)
    t (pairs_of "cache" value)

let machines_group (t : t) value =
  match value with
  | Sexp.Atom _ -> bad "machines: expected a list of machine descriptors"
  | Sexp.List descriptors -> (
      match Machines.extend_result ~base:t.machines descriptors with
      | Ok machines -> { t with machines }
      | Error m -> bad "machines: %s" m)

let apply_entry (t : t) key value =
  match key with
  | "machine" -> { t with machine = get (find_machine t) key value }
  | "seed" -> { t with seed = get int64_of_atom key value }
  | "outlier-probability" -> { t with outlier_probability = get float_of_atom key value }
  | "runs" -> { t with runs = Some (get int_of_atom key value) }
  | "iterations" -> { t with iterations = Some (get int_of_atom key value) }
  | "use-cache" -> { t with use_cache = Some (get bool_of_atom key value) }
  | "lint" -> { t with lint = get bool_of_atom key value }
  | "jobs" -> { t with jobs = get pos_int_of_atom key value }
  | "trace" -> { t with trace = Some (atom key value) }
  | "verbose" -> { t with verbose = get bool_of_atom key value }
  | "cache" -> cache_group t value
  | "serve" -> serve_group t value
  | "predict" -> predict_group t value
  | "protocol" -> { t with protocol = Some (protocol_group t.protocol value) }
  | "analytic" -> { t with analytic = Some (analytic_group t.analytic value) }
  | "cpu" -> { t with cpu = Some (cpu_group t.cpu value) }
  | "sim" -> { t with sim = Some (sim_group t.sim value) }
  | "policy" -> { t with policy = Some (policy_group t.policy value) }
  | "space" -> { t with space = Some (space_group t.space value) }
  | "machines" -> machines_group t value
  | key -> bad "unknown key %S" key

(* [machines] groups apply before everything else, whatever their
   position in the file, so [(machine my-box)] can name a machine the
   same file defines. *)
let apply_sexp (t : t) sexp =
  let pairs = pairs_of "config" sexp in
  let is_machines (key, _) = String.equal key "machines" in
  let t =
    List.fold_left (fun t (_, value) -> machines_group t value) t (List.filter is_machines pairs)
  in
  List.fold_left
    (fun t (key, value) -> apply_entry t key value)
    t
    (List.filter (fun p -> not (is_machines p)) pairs)

let apply_file (t : t) ~path =
  match Sexp.parse_file path with
  | Error m -> Error (Error.config ~source:path (Printf.sprintf "%s: %s" path m))
  | Ok sexp -> (
      match apply_sexp t sexp with
      | t -> Ok t
      | exception Bad m -> Error (Error.config ~source:path (Printf.sprintf "%s: %s" path m)))

(* --- environment layer --------------------------------------------- *)

(* The plan choice rides on the policy layer: keep whatever the lower
   layers set (sparse-exact etc.), replacing only the plan field. *)
let set_plan policy plan =
  { (Option.value policy ~default:Gpp_dataflow.Analyzer.default_policy) with
    Gpp_dataflow.Analyzer.plan
  }

let env_vars =
  [
    "GPP_MACHINES";
    "GPP_MACHINE";
    "GPP_SEED";
    "GPP_RUNS";
    "GPP_ITERATIONS";
    "GPP_JOBS";
    "GPP_OUTLIER_PROBABILITY";
    "GPP_NO_CACHE";
    "GPP_CACHE_DIR";
    "GPP_TRACE";
    "GPP_VERBOSE";
    "GPP_TRANSFER_PLAN";
    "GPP_PREDICT";
    "GPP_LISTEN";
    "GPP_FLUSH_EVERY";
  ]

let apply_env ?(getenv = Sys.getenv_opt) (t : t) =
  let ( let* ) = Result.bind in
  let scalar name parse set t =
    match getenv name with
    | None -> Ok t
    | Some raw -> (
        match parse raw with
        | Ok v -> Ok (set t v)
        | Error m -> Error (Error.config ~source:name (Printf.sprintf "%s: %s" name m)))
  in
  (* Catalog file first: GPP_MACHINE may name a machine it defines. *)
  let* t =
    match getenv "GPP_MACHINES" with
    | None -> Ok t
    | Some path -> (
        match Machines.load_file ~base:t.machines path with
        | Ok machines -> Ok { t with machines }
        | Error e -> Error e)
  in
  let* t = scalar "GPP_MACHINE" (find_machine t) (fun t machine -> { t with machine }) t in
  let* t = scalar "GPP_SEED" int64_of_atom (fun t seed -> { t with seed }) t in
  let* t = scalar "GPP_RUNS" int_of_atom (fun t runs -> { t with runs = Some runs }) t in
  let* t =
    scalar "GPP_ITERATIONS" int_of_atom (fun t n -> { t with iterations = Some n }) t
  in
  let* t = scalar "GPP_JOBS" pos_int_of_atom (fun t jobs -> { t with jobs }) t in
  let* t =
    scalar "GPP_OUTLIER_PROBABILITY" float_of_atom
      (fun t outlier_probability -> { t with outlier_probability })
      t
  in
  let* t =
    scalar "GPP_NO_CACHE" bool_of_atom (fun t no -> { t with cache_enabled = not no }) t
  in
  let* t = scalar "GPP_CACHE_DIR" (fun s -> Ok s) (fun t d -> { t with cache_dir = Some d }) t in
  let* t = scalar "GPP_TRACE" (fun s -> Ok s) (fun t f -> { t with trace = Some f }) t in
  let* t = scalar "GPP_VERBOSE" bool_of_atom (fun t verbose -> { t with verbose }) t in
  let* t =
    scalar "GPP_TRANSFER_PLAN" Gpp_dataflow.Analyzer.plan_policy_of_name
      (fun t plan -> { t with policy = Some (set_plan t.policy plan) })
      t
  in
  let* t =
    scalar "GPP_PREDICT" predictor_of_atom (fun t predictor -> { t with predictor }) t
  in
  let* t = scalar "GPP_LISTEN" (fun s -> Ok s) (fun t listen -> { t with listen }) t in
  let* t =
    scalar "GPP_FLUSH_EVERY" pos_int_of_atom (fun t flush_every -> { t with flush_every }) t
  in
  Ok t

(* --- flag layer ----------------------------------------------------- *)

type overrides = {
  o_machines_file : string option;
  o_machine : string option;
  o_seed : int64 option;
  o_runs : int option;
  o_iterations : int option;
  o_jobs : int option;
  o_no_cache : bool;
  o_cache_dir : string option;
  o_trace : string option;
  o_verbose : bool;
  o_transfer_plan : Gpp_dataflow.Analyzer.plan_policy option;
  o_predict : string option;
  o_listen : string option;
  o_flush_every : int option;
}

let no_overrides =
  {
    o_machines_file = None;
    o_machine = None;
    o_seed = None;
    o_runs = None;
    o_iterations = None;
    o_jobs = None;
    o_no_cache = false;
    o_cache_dir = None;
    o_trace = None;
    o_verbose = false;
    o_transfer_plan = None;
    o_predict = None;
    o_listen = None;
    o_flush_every = None;
  }

(* The machine flags can fail (unreadable catalog file, unknown name),
   so the flag layer resolves to a result; both failures are config
   errors (exit 2) like their file/env counterparts. *)
let apply_overrides (t : t) (o : overrides) =
  let ( let* ) = Result.bind in
  let* t =
    match o.o_machines_file with
    | None -> Ok t
    | Some path -> (
        match Machines.load_file ~base:t.machines path with
        | Ok machines -> Ok { t with machines }
        | Error e -> Error e)
  in
  let* t =
    match o.o_machine with
    | None -> Ok t
    | Some name -> (
        match find_machine t name with
        | Ok machine -> Ok { t with machine }
        | Error m -> Error (Error.config m))
  in
  let t = match o.o_seed with Some seed -> { t with seed } | None -> t in
  let t = match o.o_runs with Some runs -> { t with runs = Some runs } | None -> t in
  let t = match o.o_iterations with Some n -> { t with iterations = Some n } | None -> t in
  let t = match o.o_jobs with Some jobs -> { t with jobs } | None -> t in
  let t = if o.o_no_cache then { t with cache_enabled = false } else t in
  let t = match o.o_cache_dir with Some d -> { t with cache_dir = Some d } | None -> t in
  let t = match o.o_trace with Some f -> { t with trace = Some f } | None -> t in
  let t =
    match o.o_transfer_plan with
    | Some plan -> { t with policy = Some (set_plan t.policy plan) }
    | None -> t
  in
  let* t =
    match o.o_predict with
    | None -> Ok t
    | Some s -> (
        match predictor_of_atom s with
        | Ok predictor -> Ok { t with predictor }
        | Error m -> Error (Error.config ~source:"--predict" m))
  in
  let t = match o.o_listen with Some listen -> { t with listen } | None -> t in
  let t = match o.o_flush_every with Some n -> { t with flush_every = n } | None -> t in
  Ok (if o.o_verbose then { t with verbose = true } else t)

(* Cross-layer validation, applied to the fully resolved value so a bad
   setting is rejected no matter which layer (file, env, flag) supplied
   it.  Pool.run would raise Invalid_argument on the same range; user
   input must surface as a structured config error (exit 2) instead. *)
let validate (t : t) =
  if t.jobs < 1 || t.jobs > Pool.max_jobs then
    Error
      (Error.config
         (Printf.sprintf "jobs = %d out of range (expected 1 .. %d)" t.jobs Pool.max_jobs))
  else if t.flush_every < 1 then
    Error
      (Error.config
         (Printf.sprintf "flush-every = %d out of range (expected >= 1)" t.flush_every))
  else Ok t

let resolve ?getenv ?file ?(overrides = no_overrides) () =
  let ( let* ) = Result.bind in
  let* t = match file with None -> Ok default | Some path -> apply_file default ~path in
  let* t = apply_env ?getenv t in
  let* t = apply_overrides t overrides in
  validate t
