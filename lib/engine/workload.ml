module Registry = Gpp_workloads.Registry

(* A workload argument is either a bundled "app/size" key or a path to a
   textual .skel file (moved verbatim from the CLI so every consumer —
   single-run commands, the batch runner, the experiment context —
   resolves identically). *)
let resolve key =
  match Registry.find_by_key key with
  | Some inst -> Ok inst
  | None when Sys.file_exists key && not (Sys.is_directory key) -> (
      match Gpp_skeleton.Parser.parse_file key with
      | Ok program ->
          Ok
            {
              Registry.app = program.Gpp_skeleton.Program.name;
              size = "file";
              program =
                (fun iterations ->
                  if iterations = 1 then program
                  else Gpp_skeleton.Program.with_iterations program iterations);
            }
      | Error e ->
          (* parse/validation errors already carry the path *)
          Error (Error.parse ~source:key e))
  | None ->
      let known = List.map Registry.key Registry.all in
      Error
        (Error.parse ~source:key
           (Printf.sprintf "unknown workload %S; known: %s (or a path to a .skel file)" key
              (String.concat ", " known)))
