module Grophecy = Gpp_core.Grophecy
module Projection = Gpp_core.Projection
module Measurement = Gpp_core.Measurement
module Analyzer = Gpp_dataflow.Analyzer
module Registry = Gpp_workloads.Registry
module Obs = Gpp_obs.Obs

type state = {
  config : Config.t;
  workload : string;
  instance : Registry.instance option;
  program : Gpp_skeleton.Program.t option;
  lint_report : Gpp_analysis.Driver.report option;
  plan : Analyzer.plan option;
  kernels : Projection.kernel_projection list option;
  measurement : Measurement.t option;
  pricing : Gpp_predict.Pricing.t option;
  projection : Projection.t option;
  report : Grophecy.report option;
}

type stage = {
  id : Stage.id;
  run : session:Grophecy.session -> state -> (state, Error.t) result;
}

let init config ~workload =
  {
    config;
    workload;
    instance = None;
    program = None;
    lint_report = None;
    plan = None;
    kernels = None;
    measurement = None;
    pricing = None;
    projection = None;
    report = None;
  }

let session_of (c : Config.t) =
  Grophecy.init ~seed:c.seed ~outlier_probability:c.outlier_probability ?protocol:c.protocol
    ~predictor:c.predictor c.machine

(* Stages consume only fields earlier stages filled in; a [None] there
   means the runner was asked to start mid-pipeline, which is a
   programming error, not a scenario failure. *)
let required stage = function
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Pipeline: stage %s ran before its inputs" stage)

let run_parse ~session:_ state =
  Obs.span "parse" @@ fun () ->
  match Workload.resolve state.workload with
  | Error e -> Error e
  | Ok inst ->
      let program = inst.Registry.program 1 in
      let program =
        match state.config.Config.iterations with
        | Some n -> Gpp_skeleton.Program.with_iterations program n
        | None -> program
      in
      Ok { state with instance = Some inst; program = Some program }

(* Static analysis: surface warnings and errors on stderr before a
   projection, so an ill-formed-but-valid skeleton never projects
   silently (infos stay quiet here; `grophecy lint` prints the full
   report).  Never fails — strict gating belongs to the lint command. *)
let run_lint ~session:_ state =
  if not state.config.Config.lint then Ok state
  else
    Obs.span "analysis.lint" @@ fun () ->
    let program = required "lint" state.program in
    let report =
      Gpp_analysis.Driver.run ~gpu:state.config.Config.machine.Gpp_arch.Machine.gpu program
    in
    List.iter
      (fun (d : Gpp_analysis.Diagnostic.t) ->
        if d.severity <> Gpp_analysis.Diagnostic.Info then
          Format.eprintf "%s: %a@." report.Gpp_analysis.Driver.program_name
            Gpp_analysis.Diagnostic.pp d)
      report.Gpp_analysis.Driver.diagnostics;
    Ok { state with lint_report = Some report }

let run_analyze ~session:_ state =
  Obs.span "engine.analyze" @@ fun () ->
  let program = required "analyze" state.program in
  Ok { state with plan = Some (Analyzer.analyze ?policy:state.config.Config.policy program) }

let run_explore ~session:_ state =
  Obs.span "engine.explore" @@ fun () ->
  let program = required "explore" state.program in
  let c = state.config in
  match
    Projection.explore ?cache:c.Config.use_cache ?analytic_params:c.Config.analytic
      ?space:c.Config.space ~machine:c.Config.machine program
  with
  | Error e -> Error e
  | Ok kernels -> Ok { state with kernels = Some kernels }

let run_simulate ~session state =
  Obs.span "engine.simulate" @@ fun () ->
  let program = required "simulate" state.program in
  let kernels = required "simulate" state.kernels in
  let plan = required "simulate" state.plan in
  let c = state.config in
  match
    Measurement.measure_parts ?cache:c.Config.use_cache ?sim_config:c.Config.sim
      ?runs:c.Config.runs ~seed:session.Grophecy.noise_seed
      ~link:session.Grophecy.application_link ~machine:c.Config.machine ~kernels ~plan program
  with
  | Error e -> Error e
  | Ok measurement -> Ok { state with measurement = Some measurement }

(* Build the predictor stack's pricing for this run.  The session
   already carries the scenario predictor's scaled (here: identity,
   source = target) models; the only work left is training the Learned
   stage's correction — leave-one-workload-out against the workload
   under prediction. *)
let run_predict ~session state =
  Obs.span "engine.predict" @@ fun () ->
  let base = session.Grophecy.pricing in
  if not (Gpp_predict.Predictor.has_learned state.config.Config.predictor) then
    Ok { state with pricing = Some base }
  else
    let exclude =
      match state.instance with
      | Some inst -> Some (Registry.key inst)
      | None -> Some state.workload
    in
    match Learn.correction ?exclude ~config:state.config ~session () with
    | Error e -> Error e
    | Ok correction ->
        Ok { state with pricing = Some (Gpp_predict.Pricing.with_correction base correction) }

let run_project ~session:_ state =
  Obs.span "engine.project" @@ fun () ->
  let program = required "project" state.program in
  let kernels = required "project" state.kernels in
  let plan = required "project" state.plan in
  let pricing = required "project" state.pricing in
  let projection = Projection.assemble ~pricing ~kernels ~plan program in
  Ok { state with projection = Some projection }

let run_evaluate ~session:_ state =
  Obs.span "engine.evaluate" @@ fun () ->
  let program = required "evaluate" state.program in
  let projection = required "evaluate" state.projection in
  let measurement = required "evaluate" state.measurement in
  let report =
    Grophecy.evaluate ?cpu_params:state.config.Config.cpu ~machine:state.config.Config.machine
      ~projection ~measurement program
  in
  Ok { state with report = Some report }

let stages =
  [
    { id = Stage.Parse; run = run_parse };
    { id = Stage.Lint; run = run_lint };
    { id = Stage.Analyze; run = run_analyze };
    { id = Stage.Explore; run = run_explore };
    { id = Stage.Simulate; run = run_simulate };
    { id = Stage.Predict; run = run_predict };
    { id = Stage.Project; run = run_project };
    { id = Stage.Evaluate; run = run_evaluate };
  ]

let completed state =
  List.filter
    (fun id ->
      match (id : Stage.id) with
      | Stage.Parse -> state.program <> None
      | Stage.Lint -> state.lint_report <> None
      | Stage.Analyze -> state.plan <> None
      | Stage.Explore -> state.kernels <> None
      | Stage.Simulate -> state.measurement <> None
      | Stage.Predict -> state.pricing <> None
      | Stage.Project -> state.projection <> None
      | Stage.Evaluate -> state.report <> None)
    Stage.all

let run ?(through = Stage.Evaluate) ~session config ~workload =
  let limit = Stage.index through in
  List.fold_left
    (fun acc stage ->
      match acc with
      | Error _ -> acc
      | Ok state -> if Stage.index stage.id > limit then acc else stage.run ~session state)
    (Ok (init config ~workload))
    stages

(* Continue a partially run state: stages whose output is already
   present are skipped, the rest run in order.  This is how the batch
   runner finishes a cell whose Simulate output was assembled out of
   band (parallel kernel simulation + serial transfer pricing). *)
let resume ?(through = Stage.Evaluate) ~session state =
  let limit = Stage.index through in
  let done_ = completed state in
  List.fold_left
    (fun acc stage ->
      match acc with
      | Error _ -> acc
      | Ok state ->
          if Stage.index stage.id > limit || List.mem stage.id done_ then acc
          else stage.run ~session state)
    (Ok state) stages

let report_exn state =
  match state.report with
  | Some r -> r
  | None -> invalid_arg "Pipeline.report_exn: the Evaluate stage has not run"

let projection_exn state =
  match state.projection with
  | Some p -> p
  | None -> invalid_arg "Pipeline.projection_exn: the Project stage has not run"

let program_exn state =
  match state.program with
  | Some p -> p
  | None -> invalid_arg "Pipeline.program_exn: the Parse stage has not run"
