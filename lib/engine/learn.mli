(** Trainer for the [Learned] predictor stage.

    Builds the leave-one-workload-out training set the paper-style
    correction needs: every bundled Table I workload except [exclude]
    is projected analytically on the session's machine and "measured"
    on the simulated substrate (deterministically: kernel seeds derive
    from the session's noise seed, transfer ground truth is the link's
    noise-free expected time — no stateful RNG is advanced), and a
    ridge correction is fitted over the resulting (static features,
    measured/projected ratio) samples with the scenario's
    [predict_lambda].

    The engine's Predict stage calls this when the scenario's predictor
    includes [Learned] and attaches the result to the pipeline's
    pricing. *)

val correction :
  ?exclude:string ->
  config:Config.t ->
  session:Gpp_core.Grophecy.session ->
  unit ->
  (Gpp_predict.Correction.t, Error.t) result
(** [exclude] is the registry key of the workload being predicted
    (leave-one-out); [None] trains on the full set.  Failures are the
    usual pipeline errors, or {!Error.Config} when the training set is
    degenerate. *)
