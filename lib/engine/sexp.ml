type t = Atom of string | List of t list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Hand-rolled reader: atoms, double-quoted strings with backslash
   escapes (backslash, quote, n, t), nested lists, and semicolon line
   comments.  Scenario files are a few dozen tokens, so clarity beats
   speed. *)
let parse_string input =
  let len = String.length input in
  let pos = ref 0 in
  let line = ref 1 in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () =
    (match peek () with Some '\n' -> incr line | _ -> ());
    incr pos
  in
  let rec skip_blanks () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance ();
        skip_blanks ()
    | Some ';' ->
        let rec to_eol () =
          match peek () with
          | Some '\n' | None -> ()
          | Some _ ->
              advance ();
              to_eol ()
        in
        to_eol ();
        skip_blanks ()
    | _ -> ()
  in
  let read_quoted () =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "line %d: unterminated string" !line
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some (('"' | '\\') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some c -> fail "line %d: unknown escape '\\%c'" !line c
          | None -> fail "line %d: unterminated string" !line)
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let read_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"') | None -> ()
      | Some _ ->
          advance ();
          go ()
    in
    go ();
    Atom (String.sub input start (!pos - start))
  in
  let rec read_value () =
    skip_blanks ();
    match peek () with
    | None -> fail "line %d: unexpected end of input" !line
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_blanks ();
          match peek () with
          | None -> fail "line %d: unclosed '('" !line
          | Some ')' ->
              advance ();
              List (List.rev acc)
          | Some _ -> items (read_value () :: acc)
        in
        items []
    | Some ')' -> fail "line %d: unexpected ')'" !line
    | Some '"' -> read_quoted ()
    | Some _ -> read_atom ()
  in
  match
    let v = read_value () in
    skip_blanks ();
    if !pos < len then fail "line %d: trailing input after expression" !line;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> parse_string contents

let needs_quotes s =
  s = ""
  || String.exists (function ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"' | '\\' -> true | _ -> false) s

let rec to_string = function
  | Atom a when needs_quotes a ->
      let buf = Buffer.create (String.length a + 2) in
      Buffer.add_char buf '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\t' -> Buffer.add_string buf "\\t"
          | c -> Buffer.add_char buf c)
        a;
      Buffer.add_char buf '"';
      Buffer.contents buf
  | Atom a -> a
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"
