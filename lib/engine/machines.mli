(** Machine-descriptor catalogs: the sexp form of {!Gpp_arch.Machine.t}.

    A descriptor is a [(key value)] pair list:

    {v ((id ampere-x8)
        (base ampere)                ; seed from a catalog machine
        (name "Ampere, x8 slot")
        (staging pageable)
        (cpu  ((preset epyc-7502) (cores 16)))
        (gpu  ((preset a100)))
        (link ((preset pcie4-x16) (lanes 8)))) v}

    [base] seeds every field from an existing catalog entry (a builtin
    or an earlier descriptor in the same file); without it the seed is
    the paper's testbed and [id] is required.  Component groups may
    start from a named [preset] ({!Gpp_arch.Cpu.presets},
    {!Gpp_arch.Gpu.presets}, {!Gpp_arch.Pcie_spec.presets}) and
    override individual fields; bandwidths take raw bytes/s or the
    [-gb] convenience keys, overheads seconds or [-us].

    Catalog files ([--machines FILE] / [GPP_MACHINES] / the config
    file's [(machines ...)] group) hold [(machines <descriptor> ...)].
    Parsed machines are validated ({!Gpp_arch.Machine.validate});
    errors name the file and the machine id.  Merging replaces catalog
    entries with a matching [id] in place and appends new ids. *)

exception Bad of string
(** Parse/validation failure; the message names the key and machine. *)

val of_sexp :
  base:(string -> Gpp_arch.Machine.t option) -> Sexp.t -> Gpp_arch.Machine.t
(** Parse one descriptor.  [base] resolves [(base id)] references.
    @raise Bad on malformed input or failed validation. *)

val to_sexp : Gpp_arch.Machine.t -> Sexp.t
(** Full explicit rendering; [of_sexp] over it reconstructs the machine
    exactly (floats keep every bit). *)

val extend :
  base:Gpp_arch.Machine.t list -> Sexp.t list -> Gpp_arch.Machine.t list
(** Parse descriptors in order against [base] and merge.  Duplicate ids
    {e within} the descriptors are an error; overriding a [base] entry
    is the point.  @raise Bad as {!of_sexp}. *)

val extend_result :
  base:Gpp_arch.Machine.t list ->
  Sexp.t list ->
  (Gpp_arch.Machine.t list, string) result
(** {!extend} with [Bad] captured. *)

val load_file :
  base:Gpp_arch.Machine.t list ->
  string ->
  (Gpp_arch.Machine.t list, Error.t) result
(** Parse a catalog file and merge it over [base].  All failures —
    unreadable file, sexp syntax, bad descriptor, duplicate id, failed
    validation — are {!Error.Config} naming the file (exit 2). *)

val merge :
  Gpp_arch.Machine.t list -> Gpp_arch.Machine.t list -> Gpp_arch.Machine.t list
(** [merge base extra]: replace by id, preserving [base] order; append
    ids new to [base]. *)

val find : Gpp_arch.Machine.t list -> string -> (Gpp_arch.Machine.t, string) result
(** Catalog lookup by id; the error lists the available ids. *)
