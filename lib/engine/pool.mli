(** Work-stealing domain pool for independent, indexed tasks.

    [run ~jobs n f] executes [f 0 .. f (n-1)] exactly once each across
    [jobs] workers (the calling domain plus [jobs - 1] spawned
    domains).  Each worker owns a deque seeded with a contiguous block
    of indices; owners pop from the front, idle workers steal from the
    back of others' deques, so skewed task costs rebalance without a
    central queue.

    Tasks must not assume any execution order and must be domain-safe;
    they may run on any worker, concurrently with any other index.
    Completion of [run] happens-after every task, so tasks may write to
    disjoint slots of a shared results array and the caller reads them
    safely after [run] returns. *)

val run : ?jobs:int -> int -> (int -> unit) -> unit
(** [jobs] defaults to 1 and must be in [1 .. max_jobs]; out-of-range
    values raise [Invalid_argument] (callers resolving user input
    should validate through [Config.resolve], which reports a
    structured config error instead).  At most [n] workers are used.
    With one job the tasks run sequentially, in index order, on the
    calling domain — no domain is spawned.  If a task raises, the
    remaining tasks still run, and the first exception (with its
    backtrace) is re-raised on the calling domain after all workers
    join. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [jobs] for this
    machine. *)

val max_jobs : int
(** Upper bound on [jobs] (64), kept well under the OCaml runtime's
    128-domain limit.  Values above it are rejected, not clamped. *)
