type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Growing seeds the fresh array with the entry about to be inserted:
   a real value of the payload type, so no [Obj.magic] dummy is ever
   manufactured (which would crash if ['a] were float — the flat float
   array optimization makes [Array.make] specialize on the seed). *)
let ensure_capacity t entry =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let new_cap = max 16 (cap * 2) in
    let bigger = Array.make new_cap entry in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let push t ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: non-finite time";
  let entry = { time; seq = t.next_seq; payload } in
  ensure_capacity t entry;
  t.next_seq <- t.next_seq + 1;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
