(** On-disk tier of the projection cache: one store file per memo table.

    A store file is a sequence of (key, payload) entries in a versioned
    binary framing:

    {v
    magic     8 bytes   "GPPCACHE"
    version   u32 LE    format version (see {!format_version})
    tag       u32 LE length + bytes; table name, schema version, and
                        the producing runtime (payloads are marshalled,
                        so files never cross OCaml versions or word
                        sizes)
    entry*    u32 LE key length
              u32 LE payload length
              key bytes
              payload bytes
              u32 LE CRC-32 of key and payload
    v}

    Writers stage the whole file beside its final path and atomically
    [rename] it into place, so readers never observe a half-written
    store.  Loading is corruption-safe by construction: a missing,
    truncated, version-mismatched, or checksum-failing file degrades to
    fewer cache entries — it is reported to the caller (and logged by
    the memo layer) but never raises. *)

val format_version : int

val suffix : string
(** File suffix of store files ([".gppc"]). *)

val temp_suffix : string
(** Suffix of staging files ([".gppc.tmp"]); leftovers from an
    interrupted writer are ignored by {!load} and removed by
    {!clear_dir}. *)

val path : dir:string -> table:string -> string
(** [path ~dir ~table] is [dir/<table>.gppc]. *)

type entry = { key : string; payload : string }

type header_error =
  | Missing  (** No file at the path — a cold cache, not an error. *)
  | Unreadable of string
  | Bad_magic
  | Bad_version of int  (** Format version found (this build wants {!format_version}). *)
  | Bad_tag of string  (** Tag found — another table, schema, or runtime. *)
  | Truncated_header

val describe_header_error : header_error -> string

type load_result = {
  entries : entry list;  (** Checksum-verified entries, in file order. *)
  corrupt : int;  (** Entries dropped: bad CRC, impossible framing, or a
                      truncated tail. *)
  header : header_error option;  (** [Some _] when the file as a whole
                                     was skipped ([entries] is []). *)
}

val load : path:string -> tag:string -> load_result
(** Never raises; every failure mode is reported in the result. *)

val save : path:string -> tag:string -> entry list -> (int, string) result
(** [save ~path ~tag entries] writes a fresh store via temp-file +
    atomic rename, creating the directory if needed, and returns the
    file size in bytes.  [Error] carries a human-readable reason (e.g.
    an unwritable directory); it never raises. *)

type verify_report = {
  vpath : string;
  total : int;  (** Entries examined. *)
  intact : int;  (** Entries whose framing and CRC check out. *)
  vcorrupt : int;  (** Entries that fail their CRC or whose framing is
                       impossible (the walk stops at broken framing). *)
  vheader : header_error option;
}

val verify : path:string -> verify_report
(** Walk a store file and checksum every entry without decoding any
    payload.  Tag mismatches are reported via [vheader] but the entry
    walk still runs (the framing is tag-independent within a format
    version). *)

val list_dir : dir:string -> string list
(** Paths of the store files in [dir], sorted; [] if the directory does
    not exist. *)

val clear_dir : dir:string -> int
(** Remove every store file and leftover staging file in [dir]; returns
    how many files were removed. *)
