(** CRC-32 (IEEE 802.3 polynomial, reflected), as used by gzip and PNG.

    The disk store frames every entry with a checksum of its key and
    payload bytes so that a flipped bit anywhere in an entry is detected
    before the payload is unmarshalled — corruption must surface as a
    cache miss, never as a crash or a wrong value. *)

val string : string -> int32
(** [string s] is the CRC-32 of all of [s]. *)

val strings : string list -> int32
(** [strings parts] is the CRC-32 of the concatenation of [parts],
    without materialising it. *)
