type t = Buffer.t

let create () = Buffer.create 256

(* Every combinator writes a one-character tag so that adjacent values
   of different types can never collide, and strings are length-prefixed
   so that concatenation boundaries are unambiguous. *)

let add_string t s =
  Buffer.add_char t 's';
  Buffer.add_string t (string_of_int (String.length s));
  Buffer.add_char t ':';
  Buffer.add_string t s

let add_int t i =
  Buffer.add_char t 'i';
  Buffer.add_string t (string_of_int i);
  Buffer.add_char t ';'

let add_int64 t i =
  Buffer.add_char t 'I';
  Buffer.add_string t (Int64.to_string i);
  Buffer.add_char t ';'

(* Hash the IEEE-754 bit pattern, not a decimal rendering: two floats
   digest equal iff they are the same value (NaNs with different
   payloads intentionally differ). *)
let add_float t f =
  Buffer.add_char t 'f';
  Buffer.add_string t (Printf.sprintf "%Lx" (Int64.bits_of_float f));
  Buffer.add_char t ';'

let add_bool t b = Buffer.add_char t (if b then 'T' else 'F')

let add_int_list t xs =
  Buffer.add_char t '[';
  List.iter (add_int t) xs;
  Buffer.add_char t ']'

let add_list t f xs =
  Buffer.add_char t '[';
  List.iter (f t) xs;
  Buffer.add_char t ']'

let digest t = Digest.to_hex (Digest.string (Buffer.contents t))

let of_value f v =
  let t = create () in
  f t v;
  digest t
