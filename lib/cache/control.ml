let enabled = ref true

let set_enabled b = enabled := b

let is_enabled () = !enabled

let without_cache f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f
