(* Atomic rather than a plain ref: worker domains read the flag on
   every memoized lookup while the main domain may toggle it. *)
let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b

let is_enabled () = Atomic.get enabled

let without_cache f =
  let saved = Atomic.get enabled in
  Atomic.set enabled false;
  Fun.protect ~finally:(fun () -> Atomic.set enabled saved) f

(* Disk tier.  [disk_enabled] gates loading and flushing only — the
   in-memory tables keep working when it is off.  Disabling the cache as
   a whole (--no-cache) is expressed by turning both switches off at the
   call site, so [is_enabled] stays the single flag the hot lookup path
   reads. *)

let disk = Atomic.make true

let set_disk_enabled b = Atomic.set disk b

let disk_enabled () = Atomic.get disk && Atomic.get enabled

let explicit_dir = ref None

let set_dir d = explicit_dir := Some d

let nonempty = function Some "" -> None | v -> v

let default_dir () =
  match nonempty (Sys.getenv_opt "GPP_CACHE_DIR") with
  | Some d -> d
  | None -> (
      match nonempty (Sys.getenv_opt "XDG_CACHE_HOME") with
      | Some d -> Filename.concat d "grophecy"
      | None -> (
          match nonempty (Sys.getenv_opt "HOME") with
          | Some home -> Filename.concat (Filename.concat home ".cache") "grophecy"
          | None -> Filename.concat (Filename.get_temp_dir_name ()) "grophecy-cache"))

let dir () = match !explicit_dir with Some d -> d | None -> default_dir ()
