let enabled = ref true

let set_enabled b = enabled := b

let is_enabled () = !enabled

let without_cache f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f

(* Disk tier.  [disk_enabled] gates loading and flushing only — the
   in-memory tables keep working when it is off.  Disabling the cache as
   a whole (--no-cache) is expressed by turning both switches off at the
   call site, so [is_enabled] stays the single flag the hot lookup path
   reads. *)

let disk = ref true

let set_disk_enabled b = disk := b

let disk_enabled () = !disk && !enabled

let explicit_dir = ref None

let set_dir d = explicit_dir := Some d

let nonempty = function Some "" -> None | v -> v

let default_dir () =
  match nonempty (Sys.getenv_opt "GPP_CACHE_DIR") with
  | Some d -> d
  | None -> (
      match nonempty (Sys.getenv_opt "XDG_CACHE_HOME") with
      | Some d -> Filename.concat d "grophecy"
      | None -> (
          match nonempty (Sys.getenv_opt "HOME") with
          | Some home -> Filename.concat (Filename.concat home ".cache") "grophecy"
          | None -> Filename.concat (Filename.get_temp_dir_name ()) "grophecy-cache"))

let dir () = match !explicit_dir with Some d -> d | None -> default_dir ()
