(** Structural digest builder for cache keys.

    A fingerprint accumulates a canonical, collision-resistant byte
    encoding of a value (tagged, length-prefixed fields) and hashes it
    down to a fixed-size hex digest.  Two values receive the same digest
    exactly when the same sequence of combinator calls was applied with
    equal arguments — i.e. when they are structurally equal — which is
    what makes the digests stable across separately constructed but
    identical programs, GPU descriptions, and configurations.

    Data-owning modules expose [add_fingerprint : Fingerprint.t -> t ->
    unit] helpers and the cache layers compose them into memo keys. *)

type t

val create : unit -> t

val add_string : t -> string -> unit

val add_int : t -> int -> unit

val add_int64 : t -> int64 -> unit

val add_float : t -> float -> unit
(** Hashes the IEEE-754 bit pattern, so the digest distinguishes values
    a decimal rendering would conflate (and [-0.] from [0.]). *)

val add_bool : t -> bool -> unit

val add_int_list : t -> int list -> unit

val add_list : t -> (t -> 'a -> unit) -> 'a list -> unit
(** Adds list delimiters around the elements, so nested lists and
    adjacent lists cannot collide. *)

val digest : t -> string
(** Hex digest of everything added so far. *)

val of_value : (t -> 'a -> unit) -> 'a -> string
(** [of_value add v] is the digest of a fresh fingerprint with [add]
    applied to [v] — convenience for single-value keys. *)
