type snapshot = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;
  entries : int;
  capacity : int;
  bytes : int;
}

(* Doubly-linked LRU list threaded through the table entries: [first] is
   the most recently used node, [last] the eviction candidate. *)
type 'v node = {
  key : string;
  value : 'v;
  mutable prev : 'v node option;  (* towards most recently used *)
  mutable next : 'v node option;  (* towards least recently used *)
}

type 'v t = {
  name : string;
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable first : 'v node option;
  mutable last : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bypasses : int;
}

(* Registry of every memo table in the process, for uniform statistics
   reporting and for resetting between benchmark phases.  Tables have
   heterogeneous value types, so the registry stores closures. *)
let registered : (string * (unit -> snapshot) * (unit -> unit)) list ref = ref []

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.first <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let touch t node =
  match t.first with
  | Some f when f == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.bypasses <- 0

let word_bytes = Sys.word_size / 8

let snapshot t =
  {
    name = t.name;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    bypasses = t.bypasses;
    entries = Hashtbl.length t.table;
    capacity = t.capacity;
    bytes = Obj.reachable_words (Obj.repr t.table) * word_bytes;
  }

let create ?(capacity = 1024) ~name () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be positive";
  let t =
    {
      name;
      capacity;
      table = Hashtbl.create 64;
      first = None;
      last = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      bypasses = 0;
    }
  in
  registered := !registered @ [ (name, (fun () -> snapshot t), fun () -> clear t) ];
  t

let evict_lru t =
  match t.last with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1

let find_or_add ?(cache = true) t ~key compute =
  if not (cache && Control.is_enabled ()) then begin
    t.bypasses <- t.bypasses + 1;
    compute ()
  end
  else
    match Hashtbl.find_opt t.table key with
    | Some node ->
        t.hits <- t.hits + 1;
        touch t node;
        node.value
    | None ->
        t.misses <- t.misses + 1;
        let value = compute () in
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        value

let snapshots () = List.map (fun (_, snap, _) -> snap ()) !registered

let clear_all () = List.iter (fun (_, _, clear) -> clear ()) !registered

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "%s: %d hits / %d misses / %d evictions / %d bypasses, %d/%d entries, %a"
    s.name s.hits s.misses s.evictions s.bypasses s.entries s.capacity Gpp_util.Units.pp_bytes
    s.bytes
