let log_src = Logs.Src.create "gpp.cache" ~doc:"GROPHECY++ projection cache"

module Log = (val Logs.src_log log_src)

module Obs = Gpp_obs.Obs

(* Process-wide observability counters, shared with every other
   instrumented stage (see lib/obs): `grophecy cache stats` and the
   experiments suite read these instead of keeping private tallies. *)
let c_hits = Obs.counter "cache.hits"

let c_misses = Obs.counter "cache.misses"

let c_bypasses = Obs.counter "cache.bypasses"

let c_evictions = Obs.counter "cache.evictions"

let c_disk_loaded = Obs.counter "cache.disk.loaded"

let c_disk_rejected = Obs.counter "cache.disk.rejected"

let c_disk_flushed = Obs.counter "cache.disk.flushed"

type disk_stats = {
  path : string;
  loaded : int;
  rejected : int;
  flushed : int;
  file_bytes : int;
}

type snapshot = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;
  entries : int;
  capacity : int;
  bytes : int;
  disk : disk_stats option;
}

(* Doubly-linked LRU list threaded through the table entries: [first] is
   the most recently used node, [last] the eviction candidate. *)
type 'v node = {
  key : string;
  value : 'v;
  mutable prev : 'v node option;  (* towards most recently used *)
  mutable next : 'v node option;  (* towards least recently used *)
}

(* Every mutable field below — the hash table, the LRU links, and the
   statistics — is guarded by [lock].  The lock is never held while a
   caller's [compute] runs, so under contention two domains may compute
   the same key concurrently; the second insert is dropped in favour of
   the first (computations are deterministic, so the values agree). *)
type 'v t = {
  name : string;
  capacity : int;
  lock : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  mutable first : 'v node option;
  mutable last : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bypasses : int;
  mutable disk : disk_stats option;
  (* Incremental-flush bookkeeping: [dirty] counts content mutations
     (inserts, evictions, clears) since the store file last matched the
     table, and [synced_path] names that store file when it does.  A
     flush with [dirty = 0] against [synced_path] is skipped outright,
     which is what makes periodic flushing from a long-running server
     cheap and [flush_disk] idempotent. *)
  mutable dirty : int;
  mutable synced_path : string option;
}

(* Registry of every memo table in the process, for uniform statistics
   reporting and for resetting between benchmark phases.  Tables have
   heterogeneous value types, so the registry stores closures; tables
   opted into the disk tier (see [persist]) additionally register
   load/flush closures keyed off the resolved cache directory.

   Entries are prepended (appending with [l @ [x]] is quadratic across
   registrations) and reversed on read, so readers still see
   registration order.  The lists are mutated under [registry_mutex] —
   registration normally happens at module init on the main domain, but
   nothing stops a worker domain from creating a table. *)
let registry_mutex = Mutex.create ()

let registered : (string * (unit -> snapshot) * (unit -> unit)) list ref = ref []

let persistent :
    (string * (dir:string -> unit) * (dir:string -> unit) * (unit -> int)) list ref =
  ref []

(* Serialises whole-process disk traffic: concurrent [flush_disk] /
   [load_disk] calls (a periodic flusher racing an at_exit flush, say)
   would otherwise fight over the same temp file.  Table locks are
   never held while waiting on this mutex, so lookups proceed
   concurrently with a flush. *)
let disk_mutex = Mutex.create ()

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.first <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let push_back t node =
  node.prev <- t.last;
  node.next <- None;
  (match t.last with Some l -> l.next <- Some node | None -> t.first <- Some node);
  t.last <- Some node

let touch t node =
  match t.first with
  | Some f when f == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let clear t =
  Mutex.protect t.lock @@ fun () ->
  if Hashtbl.length t.table > 0 then begin
    t.dirty <- t.dirty + 1;
    t.synced_path <- None
  end;
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.bypasses <- 0

let word_bytes = Sys.word_size / 8

let snapshot t =
  Mutex.protect t.lock @@ fun () ->
  {
    name = t.name;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    bypasses = t.bypasses;
    entries = Hashtbl.length t.table;
    capacity = t.capacity;
    bytes = Obj.reachable_words (Obj.repr t.table) * word_bytes;
    disk = t.disk;
  }

let create ?(capacity = 1024) ~name () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be positive";
  let t =
    {
      name;
      capacity;
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      first = None;
      last = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      bypasses = 0;
      disk = None;
      dirty = 0;
      synced_path = None;
    }
  in
  Mutex.protect registry_mutex (fun () ->
      registered := (name, (fun () -> snapshot t), fun () -> clear t) :: !registered);
  t

(* Caller holds [t.lock]. *)
let evict_lru t =
  match t.last with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      t.dirty <- t.dirty + 1;
      Obs.incr c_evictions

let find_or_add ?(cache = true) t ~key compute =
  if not (cache && Control.is_enabled ()) then begin
    Mutex.protect t.lock (fun () -> t.bypasses <- t.bypasses + 1);
    Obs.incr c_bypasses;
    compute ()
  end
  else begin
    let cached =
      Mutex.protect t.lock @@ fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          t.hits <- t.hits + 1;
          touch t node;
          Some node.value
      | None ->
          t.misses <- t.misses + 1;
          None
    in
    match cached with
    | Some value ->
        Obs.incr c_hits;
        Obs.event ~detail:t.name "cache.hit";
        value
    | None ->
        Obs.incr c_misses;
        Obs.event ~detail:t.name "cache.miss";
        let value = compute () in
        Mutex.protect t.lock @@ fun () -> (
          (* Another domain may have computed and inserted this key while
             we were outside the lock; keep its node (and return its
             value — the computation is deterministic, so they agree)
             rather than threading a duplicate into the LRU list. *)
          match Hashtbl.find_opt t.table key with
          | Some node ->
              touch t node;
              node.value
          | None ->
              if Hashtbl.length t.table >= t.capacity then evict_lru t;
              let node = { key; value; prev = None; next = None } in
              Hashtbl.replace t.table key node;
              push_front t node;
              t.dirty <- t.dirty + 1;
              value)
  end

(* Disk tier.  Values round-trip through [Marshal] (floats by bit
   pattern, so cached-across-processes output stays equal to the bit);
   decoding untrusted bytes is safe because every payload sits behind a
   store-level CRC and a tag that pins the table, a caller-owned schema
   version, the OCaml version, and the word size. *)

let tag ~name ~schema =
  Printf.sprintf "%s;schema=%d;ocaml=%s;word=%d" name schema Sys.ocaml_version Sys.word_size

(* One guarded open: probing with [Sys.file_exists] first is a TOCTOU —
   the file can vanish between the check and the open (a concurrent
   [clear], another process's flush renaming over it), and the open
   itself already reports that case. *)
let file_size path =
  try In_channel.with_open_bin path In_channel.length |> Int64.to_int with Sys_error _ -> 0

let persist ?(schema = 1) (t : 'v t) =
  let tag = tag ~name:t.name ~schema in
  let encode (v : 'v) = Marshal.to_string v [] in
  let decode payload : 'v option =
    try Some (Marshal.from_string payload 0) with _ -> None
  in
  let load ~dir =
    let path = Store.path ~dir ~table:t.name in
    let { Store.entries; corrupt; header } = Store.load ~path ~tag in
    match header with
    | Some Store.Missing -> ()
    | Some err ->
        Log.warn (fun m ->
            m "%s: skipping store %s: %s" t.name path (Store.describe_header_error err));
        let stats =
          Some { path; loaded = 0; rejected = 0; flushed = 0; file_bytes = file_size path }
        in
        Mutex.protect t.lock (fun () -> t.disk <- stats)
    | None ->
        let loaded = ref 0 and rejected = ref corrupt and skipped = ref 0 in
        Mutex.protect t.lock (fun () ->
            let had_prior = Hashtbl.length t.table > 0 in
            List.iter
              (fun { Store.key; payload } ->
                if Hashtbl.length t.table < t.capacity && not (Hashtbl.mem t.table key) then
                  match decode payload with
                  | Some value ->
                      let node = { key; value; prev = None; next = None } in
                      Hashtbl.replace t.table key node;
                      (* Append in file order (most recent first on disk), so
                         a load-then-flush cycle preserves the file's
                         recency order byte for byte. *)
                      push_back t node;
                      incr loaded
                  | None -> incr rejected
                else incr skipped)
              entries;
            if !rejected > 0 || !skipped > 0 || had_prior then begin
              (* The table and the store diverge (corrupt entries to
                 shed, capacity-skipped entries, or in-memory state the
                 file lacks): force the next flush to rewrite. *)
              t.dirty <- t.dirty + 1;
              t.synced_path <- None
            end
            else begin
              (* Every file entry is now in memory, in file order — the
                 table mirrors the store exactly, so the next flush can
                 skip the rewrite. *)
              t.dirty <- 0;
              t.synced_path <- Some path
            end);
        if !rejected > 0 then
          Log.warn (fun m ->
              m "%s: dropped %d corrupt entr%s from %s (served as cache misses)" t.name !rejected
                (if !rejected = 1 then "y" else "ies")
                path);
        Log.info (fun m -> m "%s: loaded %d entries from %s" t.name !loaded path);
        Obs.add c_disk_loaded !loaded;
        Obs.add c_disk_rejected !rejected;
        Obs.event ~detail:t.name "cache.load";
        let stats =
          Some { path; loaded = !loaded; rejected = !rejected; flushed = 0; file_bytes = file_size path }
        in
        Mutex.protect t.lock (fun () -> t.disk <- stats)
  in
  let flush ~dir =
    let path = Store.path ~dir ~table:t.name in
    (* Snapshot the entries and the mutation count together; the lock is
       released before the (slow) file write, so lookups and inserts
       proceed concurrently.  A clean table whose store already matches
       skips the write entirely — that idempotence is what lets a
       periodic flusher run on every request batch without rewriting an
       unchanged store each time. *)
    let plan =
      Mutex.protect t.lock @@ fun () ->
      if t.dirty = 0 && t.synced_path = Some path then None
      else
        let rec walk acc = function
          | None -> List.rev acc
          | Some node ->
              walk ({ Store.key = node.key; payload = encode node.value } :: acc) node.next
        in
        Some (walk [] t.first, t.dirty)
    in
    match plan with
    | None -> Log.debug (fun m -> m "%s: store %s already current, skipping flush" t.name path)
    | Some (entries, observed_dirty) -> (
        match Store.save ~path ~tag entries with
        | Ok bytes ->
            Log.info (fun m -> m "%s: flushed %d entries to %s" t.name (List.length entries) path);
            Obs.add c_disk_flushed (List.length entries);
            Obs.event ~detail:t.name "cache.flush";
            Mutex.protect t.lock (fun () ->
                (* Mutations that raced the file write stay dirty and
                   trigger the next flush. *)
                t.dirty <- t.dirty - observed_dirty;
                t.synced_path <- (if t.dirty = 0 then Some path else None);
                let stats =
                  match t.disk with
                  | Some d -> { d with path; flushed = List.length entries; file_bytes = bytes }
                  | None ->
                      {
                        path;
                        loaded = 0;
                        rejected = 0;
                        flushed = List.length entries;
                        file_bytes = bytes;
                      }
                in
                t.disk <- Some stats)
        | Error msg -> Log.warn (fun m -> m "%s: could not flush to %s: %s" t.name path msg))
  in
  let dirty () = Mutex.protect t.lock (fun () -> t.dirty) in
  Mutex.protect registry_mutex (fun () ->
      persistent := (t.name, load, flush, dirty) :: !persistent)

let resolve_dir = function Some d -> d | None -> Control.dir ()

let persistent_entries () = Mutex.protect registry_mutex (fun () -> List.rev !persistent)

let registered_entries () = Mutex.protect registry_mutex (fun () -> List.rev !registered)

let load_disk ?dir () =
  if Control.disk_enabled () then
    Obs.span "cache.load" @@ fun () ->
    Mutex.protect disk_mutex @@ fun () ->
    let dir = resolve_dir dir in
    List.iter (fun (_, load, _, _) -> load ~dir) (persistent_entries ())

let flush_disk ?dir () =
  if Control.disk_enabled () then
    Obs.span "cache.flush" @@ fun () ->
    Mutex.protect disk_mutex @@ fun () ->
    let dir = resolve_dir dir in
    List.iter (fun (_, _, flush, _) -> flush ~dir) (persistent_entries ())

let dirty_entries () =
  List.fold_left (fun acc (_, _, _, dirty) -> acc + dirty ()) 0 (persistent_entries ())

let snapshots () = List.map (fun (_, snap, _) -> snap ()) (registered_entries ())

let clear_all () = List.iter (fun (_, _, clear) -> clear ()) (registered_entries ())

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "%s: %d hits / %d misses / %d evictions / %d bypasses, %d/%d entries, %a"
    s.name s.hits s.misses s.evictions s.bypasses s.entries s.capacity Gpp_util.Units.pp_bytes
    s.bytes;
  match s.disk with
  | None -> ()
  | Some d ->
      Format.fprintf ppf "; disk: %d loaded / %d rejected / %d flushed, %a (%s)" d.loaded
        d.rejected d.flushed Gpp_util.Units.pp_bytes d.file_bytes d.path
