(* Table-driven CRC-32 with the reflected IEEE polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let crc = ref crc in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  !crc

let strings parts =
  Int32.logxor 0xFFFFFFFFl (List.fold_left update 0xFFFFFFFFl parts)

let string s = strings [ s ]
