(** Process-wide cache switch.

    Every {!Memo.t} consults this flag on lookup, so a single call turns
    the whole projection cache off — the [--no-cache] flag of the
    binaries and the uncached leg of the benchmark both go through
    here.  Per-call opt-outs ([~cache:false] on the projection entry
    points) compose with it: a lookup is served from the cache only
    when both agree. *)

val set_enabled : bool -> unit
(** Globally enable or disable all memo tables (default: enabled). *)

val is_enabled : unit -> bool

val without_cache : (unit -> 'a) -> 'a
(** Run [f] with caching globally disabled, restoring the previous
    state afterwards (also on exceptions). *)
