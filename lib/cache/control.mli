(** Process-wide cache switches and cache-directory resolution.

    Every {!Memo.t} consults the in-memory flag on lookup, so a single
    call turns the whole projection cache off — the [--no-cache] flag of
    the binaries and the uncached leg of the benchmark both go through
    here.  Per-call opt-outs ([~cache:false] on the projection entry
    points) compose with it: a lookup is served from the cache only
    when both agree.

    The disk tier ({!Store}, wired up by {!Memo.persist}) has its own
    switch and a cache-directory resolution chain:
    [--cache-dir] (via {!set_dir}) > [GPP_CACHE_DIR] >
    [$XDG_CACHE_HOME/grophecy] > [$HOME/.cache/grophecy]. *)

val set_enabled : bool -> unit
(** Globally enable or disable all memo tables (default: enabled). *)

val is_enabled : unit -> bool

val without_cache : (unit -> 'a) -> 'a
(** Run [f] with caching globally disabled, restoring the previous
    state afterwards (also on exceptions). *)

val set_disk_enabled : bool -> unit
(** Enable or disable the on-disk tier (default: enabled).  [--no-cache]
    turns this and {!set_enabled} off together. *)

val disk_enabled : unit -> bool
(** True only when both the disk switch and {!is_enabled} agree — a
    globally disabled cache never touches the disk either. *)

val set_dir : string -> unit
(** Pin the cache directory explicitly ([--cache-dir]); wins over every
    environment fallback. *)

val dir : unit -> string
(** The effective cache directory: {!set_dir} if called, else
    [GPP_CACHE_DIR], else [$XDG_CACHE_HOME/grophecy], else
    [$HOME/.cache/grophecy] (else a directory under the system temp dir
    when even [HOME] is unset).  The directory is created lazily by the
    first flush, never by resolution. *)

val default_dir : unit -> string
(** The environment-derived fallback, ignoring {!set_dir}. *)
