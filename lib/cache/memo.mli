(** Content-addressed memo table with LRU eviction and instrumentation.

    Keys are structural digests (see {!Fingerprint}); values are the
    results of pure computations.  Each table tracks hits, misses,
    evictions, and bypasses, and registers itself in a process-wide
    registry so callers (CLI, benchmarks, the [gpp.core] log source) can
    report every cache's statistics uniformly.

    Tables can additionally opt into the on-disk tier ({!persist}):
    entries then survive process exit via {!flush_disk} and are
    reloaded by {!load_disk}, keyed by the same structural fingerprints
    and round-tripping values bit-identically (floats by IEEE-754 bit
    pattern).

    Tables are domain-safe: every table guards its hash table, LRU
    links, and statistics with a private mutex that is {e not} held
    while the caller's compute function runs.  Under contention two
    domains may therefore compute the same key concurrently; the first
    insert wins and both callers get equal values (computations are
    deterministic in the key).  Statistics stay coherent: every lookup
    is counted exactly once as a hit, a miss, or a bypass. *)

type 'v t

type disk_stats = {
  path : string;  (** Store file backing this table. *)
  loaded : int;  (** Entries admitted from disk by the last load. *)
  rejected : int;  (** Entries dropped by the last load: failed CRC,
                       broken framing, or unmarshalable payload — each
                       one degrades to a cache miss. *)
  flushed : int;  (** Entries written by the last flush. *)
  file_bytes : int;  (** Store file size after the last load/flush. *)
}

type snapshot = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;  (** Lookups served uncached because caching was off. *)
  entries : int;  (** Live entries at snapshot time. *)
  capacity : int;
  bytes : int;  (** Approximate heap footprint of the table (reachable
                    words of keys, values, and bookkeeping). *)
  disk : disk_stats option;  (** Disk-tier counters; [None] until the
                                 table touches the disk. *)
}

val create : ?capacity:int -> name:string -> unit -> 'v t
(** A new table holding at most [capacity] (default 1024) entries; the
    least recently used entry is evicted on overflow.  The table is
    added to the global registry under [name]. *)

val find_or_add : ?cache:bool -> 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_add t ~key compute] returns the cached value for [key] or
    runs [compute], stores the result, and returns it.  With
    [~cache:false], or when {!Control.is_enabled} is false, [compute]
    runs unconditionally and the table is neither read nor written (the
    lookup is counted as a bypass).  If [compute] raises, nothing is
    stored. *)

val persist : ?schema:int -> 'v t -> unit
(** Opt [t] into the disk tier.  Values are serialised with [Marshal];
    the store file is tagged with the table name, [schema] (default 1 —
    bump it whenever the value type changes shape), the OCaml version,
    and the word size, so a stale or foreign file is skipped wholesale
    rather than misdecoded.  Call once, right after {!create}. *)

val load_disk : ?dir:string -> unit -> unit
(** Load every persistent table's store file from [dir] (default:
    {!Control.dir}).  Corrupt or stale files and entries are logged on
    the [gpp.cache] source and simply yield fewer entries; this never
    raises.  No-op when {!Control.disk_enabled} is false. *)

val flush_disk : ?dir:string -> unit -> unit
(** Write every persistent table's entries to its store file under
    [dir] (default: {!Control.dir}) via temp-file + atomic rename,
    creating the directory if needed.  Failures are logged, never
    raised.  No-op when {!Control.disk_enabled} is false.

    Idempotent and safe to call at any time — periodically from a
    long-running server, concurrently with lookups (table locks are
    only held to snapshot entries, never during the file write), and
    concurrently with other [flush_disk]/[load_disk] calls (disk
    traffic is serialised process-wide).  A table whose store file
    already matches its contents skips the write entirely, so calling
    this on a quiet server costs one mutex round per table. *)

val dirty_entries : unit -> int
(** Total content mutations (inserts, evictions, clears) across all
    persistent tables since their stores were last synced — [0] means
    {!flush_disk} would write nothing.  Size-triggered flushers compare
    this against a threshold. *)

val clear : 'v t -> unit
(** Drop all entries and reset the counters. *)

val snapshot : 'v t -> snapshot

val snapshots : unit -> snapshot list
(** One snapshot per registered table, in registration order. *)

val clear_all : unit -> unit
(** {!clear} every registered table — used between benchmark phases. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
