(** Content-addressed memo table with LRU eviction and instrumentation.

    Keys are structural digests (see {!Fingerprint}); values are the
    results of pure computations.  Each table tracks hits, misses,
    evictions, and bypasses, and registers itself in a process-wide
    registry so callers (CLI, benchmarks, the [gpp.core] log source) can
    report every cache's statistics uniformly. *)

type 'v t

type snapshot = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;  (** Lookups served uncached because caching was off. *)
  entries : int;  (** Live entries at snapshot time. *)
  capacity : int;
  bytes : int;  (** Approximate heap footprint of the table (reachable
                    words of keys, values, and bookkeeping). *)
}

val create : ?capacity:int -> name:string -> unit -> 'v t
(** A new table holding at most [capacity] (default 1024) entries; the
    least recently used entry is evicted on overflow.  The table is
    added to the global registry under [name]. *)

val find_or_add : ?cache:bool -> 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_add t ~key compute] returns the cached value for [key] or
    runs [compute], stores the result, and returns it.  With
    [~cache:false], or when {!Control.is_enabled} is false, [compute]
    runs unconditionally and the table is neither read nor written (the
    lookup is counted as a bypass).  If [compute] raises, nothing is
    stored. *)

val clear : 'v t -> unit
(** Drop all entries and reset the counters. *)

val snapshot : 'v t -> snapshot

val snapshots : unit -> snapshot list
(** One snapshot per registered table, in registration order. *)

val clear_all : unit -> unit
(** {!clear} every registered table — used between benchmark phases. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
