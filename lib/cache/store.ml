let magic = "GPPCACHE"

let format_version = 1

let suffix = ".gppc"

let temp_suffix = ".gppc.tmp"

(* Table names are dot-separated identifiers ("transform.search"); keep
   the mapping to file names injective and path-safe anyway. *)
let path ~dir ~table =
  let safe =
    String.map (fun c -> if c = '/' || c = '\\' || c = '\000' then '_' else c) table
  in
  Filename.concat dir (safe ^ suffix)

type entry = { key : string; payload : string }

type header_error =
  | Missing
  | Unreadable of string
  | Bad_magic
  | Bad_version of int
  | Bad_tag of string
  | Truncated_header

let describe_header_error = function
  | Missing -> "no store file"
  | Unreadable msg -> Printf.sprintf "unreadable (%s)" msg
  | Bad_magic -> "bad magic (not a grophecy cache store)"
  | Bad_version v -> Printf.sprintf "format version %d (this build reads %d)" v format_version
  | Bad_tag tag -> Printf.sprintf "stale tag %S" tag
  | Truncated_header -> "truncated header"

type load_result = {
  entries : entry list;
  corrupt : int;
  header : header_error option;
}

type verify_report = {
  vpath : string;
  total : int;
  intact : int;
  vcorrupt : int;
  vheader : header_error option;
}

let i32_to_bytes i =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 i;
  Bytes.unsafe_to_string b

let u32_to_bytes n = i32_to_bytes (Int32.of_int n)

(* Unsigned read: lengths and counts are always in [0, 2^32). *)
let u32_at data pos = Int32.to_int (String.get_int32_le data pos) land 0xFFFF_FFFF

let header_size = String.length magic + 4 (* version *) + 4 (* tag length *)

(* Parse the header; [Ok (tag, entries_offset)] or the reason the whole
   file must be skipped.  [expect_tag = None] accepts any tag (verify). *)
let parse_header data ~expect_tag =
  let len = String.length data in
  if len < header_size then Error Truncated_header
  else if String.sub data 0 (String.length magic) <> magic then Error Bad_magic
  else
    let version = u32_at data (String.length magic) in
    if version <> format_version then Error (Bad_version version)
    else
      let tag_len = u32_at data (String.length magic + 4) in
      if tag_len > len - header_size then Error Truncated_header
      else
        let tag = String.sub data header_size tag_len in
        match expect_tag with
        | Some expected when not (String.equal tag expected) -> Error (Bad_tag tag)
        | _ -> Ok (tag, header_size + tag_len)

(* Walk the entry stream from [pos], calling [emit] for each entry that
   passes its CRC.  Returns (intact, corrupt).  A bad CRC only skips
   that entry (the framing survived); an impossible length or a
   truncated tail ends the walk — everything past broken framing is
   unreachable and counted as one corrupt region. *)
let walk_entries data ~pos ~emit =
  let len = String.length data in
  let intact = ref 0 and corrupt = ref 0 in
  let pos = ref pos in
  let continue = ref true in
  while !continue && !pos < len do
    if len - !pos < 8 then begin
      incr corrupt;
      continue := false
    end
    else
      let key_len = u32_at data !pos in
      let payload_len = u32_at data (!pos + 4) in
      if key_len > len || payload_len > len || len - !pos - 8 < key_len + payload_len + 4 then begin
        incr corrupt;
        continue := false
      end
      else begin
        let key = String.sub data (!pos + 8) key_len in
        let payload = String.sub data (!pos + 8 + key_len) payload_len in
        let stored_crc = String.get_int32_le data (!pos + 8 + key_len + payload_len) in
        if Int32.equal stored_crc (Crc32.strings [ key; payload ]) then begin
          incr intact;
          emit { key; payload }
        end
        else incr corrupt;
        pos := !pos + 8 + key_len + payload_len + 4
      end
  done;
  (!intact, !corrupt)

let read_file path =
  if not (Sys.file_exists path) then Error Missing
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | data -> Ok data
    | exception Sys_error msg -> Error (Unreadable msg)

let load ~path ~tag =
  match read_file path with
  | Error e -> { entries = []; corrupt = 0; header = Some e }
  | Ok data -> (
      match parse_header data ~expect_tag:(Some tag) with
      | Error e -> { entries = []; corrupt = 0; header = Some e }
      | Ok (_, pos) ->
          let acc = ref [] in
          let _, corrupt = walk_entries data ~pos ~emit:(fun e -> acc := e :: !acc) in
          { entries = List.rev !acc; corrupt; header = None })

let verify ~path =
  match read_file path with
  | Error e -> { vpath = path; total = 0; intact = 0; vcorrupt = 0; vheader = Some e }
  | Ok data -> (
      match parse_header data ~expect_tag:None with
      | Error e -> { vpath = path; total = 0; intact = 0; vcorrupt = 0; vheader = Some e }
      | Ok (_, pos) ->
          let intact, corrupt = walk_entries data ~pos ~emit:(fun _ -> ()) in
          { vpath = path; total = intact + corrupt; intact; vcorrupt = corrupt; vheader = None })

let rec ensure_dir dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ~path ~tag entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_string buf (u32_to_bytes format_version);
  Buffer.add_string buf (u32_to_bytes (String.length tag));
  Buffer.add_string buf tag;
  List.iter
    (fun { key; payload } ->
      Buffer.add_string buf (u32_to_bytes (String.length key));
      Buffer.add_string buf (u32_to_bytes (String.length payload));
      Buffer.add_string buf key;
      Buffer.add_string buf payload;
      Buffer.add_string buf (i32_to_bytes (Crc32.strings [ key; payload ])))
    entries;
  let tmp = Filename.chop_suffix path suffix ^ temp_suffix in
  try
    ensure_dir (Filename.dirname path);
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
    Sys.rename tmp path;
    Ok (Buffer.length buf)
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error msg

let list_dir ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n suffix)
      |> List.sort String.compare
      |> List.map (Filename.concat dir)

let clear_dir ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun removed n ->
          if Filename.check_suffix n suffix || Filename.check_suffix n temp_suffix then (
            match Sys.remove (Filename.concat dir n) with
            | () -> removed + 1
            | exception Sys_error _ -> removed)
          else removed)
        0 names
