module Region = Gpp_brs.Region
module Section = Gpp_brs.Section
module Smap = Map.Make (String)

type t = Region.t Smap.t

let empty = Smap.empty

let find array t =
  match Smap.find_opt array t with Some r -> r | None -> Region.empty ~array

let add_section array section t = Smap.add array (Region.add (find array t) section) t

let add_region array region t = Smap.add array (Region.merge (find array t) region) t

let covers array section t = Region.covers (find array t) section

let mem array t = not (Region.is_empty (find array t))

let leq a b = Smap.for_all (fun array r -> Region.subset r (find array b)) a

let join a b = Smap.union (fun _ x y -> Some (Region.merge x y)) a b

let widen a b =
  let joined = join a b in
  Smap.mapi
    (fun array r ->
      if Region.subset r (find array a) then r
      else
        match Region.sections r with
        | [] | [ _ ] -> r
        | s :: rest -> Region.of_section (List.fold_left Section.union s rest))
    joined

let equal a b = leq a b && leq b a
