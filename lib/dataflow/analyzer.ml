module Program = Gpp_skeleton.Program
module Decl = Gpp_skeleton.Decl
module Region = Gpp_brs.Region
module Extract = Gpp_brs.Extract
module Obs = Gpp_obs.Obs
module Fixpoint = Gpp_fixpoint.Fixpoint

let c_planned = Obs.counter "dataflow.transfers"

let c_conservative = Obs.counter "dataflow.conservative"

let c_kernels = Obs.counter "dataflow.kernels_visited"

type direction = To_device | From_device

type transfer = {
  array : string;
  direction : direction;
  bytes : int;
  elements : int;
  conservative : bool;
}

type plan_policy = Conservative | Minimal

type policy = { sparse_exact : bool; plan : plan_policy }

let default_policy = { sparse_exact = false; plan = Conservative }

let plan_policy_name = function Conservative -> "conservative" | Minimal -> "minimal"

let plan_policy_of_name = function
  | "conservative" -> Ok Conservative
  | "minimal" -> Ok Minimal
  | s -> Error (Printf.sprintf "unknown transfer plan %S (expected conservative or minimal)" s)

type plan = {
  program_name : string;
  policy : policy;
  to_device : transfer list;
  from_device : transfer list;
}

module Smap = Map.Make (String)

(* The forward walk is a fixpoint client over the section-map lattice:
   the fact entering an invocation is the per-array region already
   produced on the device.  On straight-line schedules this is the
   single §III-B pass; a [Repeat] body is re-evaluated until the fact
   stabilizes (two body passes in practice) instead of being unrolled
   once per iteration.  The side accumulations below are sound under
   re-evaluation because region insertion is idempotent and the fact
   only grows: a read uncovered on a later pass was uncovered on the
   first, so the upload set equals the fully unrolled walk's. *)
module Walk = Fixpoint.Make (Section_lattice)

let analyze ?(policy = default_policy) (program : Program.t) =
  Obs.span "dataflow.analyze" @@ fun () ->
  let decls = program.arrays in
  let find_decl name =
    match List.find_opt (fun (d : Decl.t) -> d.name = name) decls with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Analyzer: undeclared array %s" name)
  in
  (* Per-kernel access summaries are iteration-invariant; compute once.
     The minimal plan refines them by statement order and execution
     weight, dropping statically dead references (see {!Liveness}).
     Both policies track device residency with the *conservative*
     writes: the minimal plan is an ablation of the paper's plan, so it
     must price a subset of the same transfers — letting a dead write
     stop retiring uploads could otherwise make the minimal plan move
     more bytes than the conservative one. *)
  let summaries =
    List.map
      (fun (k : Gpp_skeleton.Ir.kernel) ->
        let a = Extract.of_kernel ~decls k in
        match policy.plan with
        | Conservative ->
            (k.name, (a.Extract.reads, a.Extract.writes, a.Extract.writes, a.Extract.inexact_arrays))
        | Minimal ->
            let r = Liveness.refine ~decls k in
            ( k.name,
              (r.Liveness.live_reads, r.Liveness.live_writes, a.Extract.writes,
               r.Liveness.inexact_arrays) ))
      program.kernels
  in
  let to_device = ref Smap.empty in
  let all_written = ref Smap.empty in
  let conservative = ref Smap.empty in
  let mark_conservative name = conservative := Smap.add name true !conservative in
  let region_update name section map =
    let region =
      match Smap.find_opt name map with
      | Some r -> Region.add r section
      | None -> Region.of_section section
    in
    Smap.add name region map
  in
  let transfer ~index:_ name device_written =
    let reads, writes, resident_writes, inexact = List.assoc name summaries in
    List.iter mark_conservative inexact;
    (* Reads not already produced on the device must come from the
       host.  Sections previously uploaded are absorbed by the exact
       region merge, so re-reads cost nothing extra. *)
    List.iter
      (fun (array, region) ->
        List.iter
          (fun section ->
            if not (Section_lattice.covers array section device_written) then
              to_device := region_update array section !to_device)
          (Region.sections region))
      reads;
    List.iter
      (fun (array, region) ->
        List.iter
          (fun section -> all_written := region_update array section !all_written)
          (Region.sections region))
      writes;
    List.fold_left
      (fun fact (array, region) -> Section_lattice.add_region array region fact)
      device_written resident_writes
  in
  let solved = Walk.forward ~schedule:program.schedule ~transfer ~init:Section_lattice.empty in
  Obs.add c_kernels solved.Walk.stats.Fixpoint.passes;
  let transfer_of direction (array, region) =
    let d = find_decl array in
    let is_conservative = Smap.mem array !conservative in
    let elements =
      match (d.kind, policy.sparse_exact) with
      | Decl.Sparse { nnz = Some n }, true -> n
      | (Decl.Sparse _ | Decl.Dense), _ ->
          min (Region.covered_elements region) (Decl.elements d)
    in
    { array; direction; bytes = elements * d.elem_bytes; elements; conservative = is_conservative }
  in
  let to_device_transfers =
    Smap.bindings !to_device
    |> List.map (transfer_of To_device)
    |> List.filter (fun t -> t.bytes > 0)
  in
  let from_device_transfers =
    Smap.bindings !all_written
    |> List.filter (fun (array, _) -> not (List.mem array program.temporaries))
    |> List.map (transfer_of From_device)
    |> List.filter (fun t -> t.bytes > 0)
  in
  if Obs.is_enabled () then begin
    let transfers = to_device_transfers @ from_device_transfers in
    Obs.add c_planned (List.length transfers);
    Obs.add c_conservative (List.length (List.filter (fun t -> t.conservative) transfers))
  end;
  {
    program_name = program.name;
    policy;
    to_device = to_device_transfers;
    from_device = from_device_transfers;
  }

let sum side = List.fold_left (fun acc t -> acc + t.bytes) 0 side

let input_bytes plan = sum plan.to_device

let output_bytes plan = sum plan.from_device

let total_bytes plan = input_bytes plan + output_bytes plan

let transfers plan = plan.to_device @ plan.from_device

let direction_name = function To_device -> "to device" | From_device -> "from device"

let pp_plan ppf plan =
  let pp_side label side =
    Format.fprintf ppf "%s (%s total):@," label
      (Gpp_util.Units.bytes_to_string (sum side));
    List.iter
      (fun t ->
        Format.fprintf ppf "  %s: %s%s@," t.array
          (Gpp_util.Units.bytes_to_string t.bytes)
          (if t.conservative then " (conservative)" else ""))
      side
  in
  Format.fprintf ppf "@[<v>transfer plan for %s%s:@," plan.program_name
    (match plan.policy.plan with Conservative -> "" | Minimal -> " (minimal)");
  pp_side "to device" plan.to_device;
  pp_side "from device" plan.from_device;
  Format.fprintf ppf "@]"
