(** The BRS section-map lattice: per-array {!Gpp_brs.Region} unions,
    ordered by (sound, incomplete) region containment.

    This is the lattice the fixpoint engine is instantiated at for both
    directions of the data usage analysis: forward, a fact maps each
    array to the sections already produced on the device; backward, to
    the sections still read at or after a schedule point.  [join] is
    region union (exact merges where the BRS arithmetic allows, kept
    section lists otherwise); [leq] uses {!Gpp_brs.Region.subset}, whose
    incompleteness can only delay loop convergence, never unsoundly
    declare it.  [widen] collapses any array whose region is still
    growing to the single bounding-hull section, which reaches a fixed
    point in a handful of steps regardless of how sections fragment. *)

module Smap : Map.S with type key = string

type t = Gpp_brs.Region.t Smap.t

val empty : t

val find : string -> t -> Gpp_brs.Region.t
(** The array's region; an empty region when absent. *)

val add_section : string -> Gpp_brs.Section.t -> t -> t

val add_region : string -> Gpp_brs.Region.t -> t -> t

val covers : string -> Gpp_brs.Section.t -> t -> bool

val mem : string -> t -> bool
(** Whether the array has a non-empty region in the fact. *)

val leq : t -> t -> bool

val join : t -> t -> t

val widen : t -> t -> t

val equal : t -> t -> bool
(** [leq] both ways. *)
