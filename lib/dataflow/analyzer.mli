(** The data usage analyzer (paper §III-B).

    Walks the program's kernel invocation sequence, maintaining per-array
    regions of data already produced on the device:

    - array sections {e read but not previously written} on the GPU must
      be transferred from the CPU — their union, per array, is the input
      transfer set;
    - the union of all {e written} sections is the output transfer set,
      minus arrays the user hints are temporaries;
    - sparse or indirectly accessed arrays are handled conservatively:
      the whole array is assumed referenced (unless the exact-sparse
      policy is enabled, an ablation);
    - each array is transferred separately (§III-B), so the plan is a
      list of per-array transfers;
    - for iterative schedules the transfer set is independent of the
      iteration count: inputs move once before the first iteration,
      outputs once after the last (§IV-B).

    The walk itself is a forward client of the fixpoint engine
    ({!Gpp_fixpoint.Fixpoint}) over the section-map lattice
    ({!Section_lattice}): [Repeat] bodies are iterated until the
    resident-region fact stabilizes rather than being unrolled per
    iteration, which yields the identical plan in a bounded number of
    body passes.

    Two plan policies exist.  [Conservative] (the default) is the
    paper's analysis exactly.  [Minimal] additionally prices only
    statically live references, using the statement-order and
    execution-weight refinement of {!Liveness.refine}: references under
    probability-0 branches and loads covered by an identical-subscript
    prior store in the same kernel are dropped.  Device residency is
    tracked with the conservative writes under both policies, so the
    minimal plan prices a strict subset of the conservative transfers:
    [Minimal] never plans more bytes than [Conservative], per
    direction. *)

type direction = To_device | From_device

type transfer = {
  array : string;
  direction : direction;
  bytes : int;
  elements : int;
  conservative : bool;
      (** Whether the size comes from the whole-array fallback rather
          than exact section analysis. *)
}

type plan_policy =
  | Conservative  (** The paper's analysis: every reference counts. *)
  | Minimal  (** Price only statically live sections (ablation). *)

type policy = {
  sparse_exact : bool;
      (** Use the declared population ([nnz]) of sparse arrays instead
          of their full capacity.  Default [false]: the paper's
          conservative assumption. *)
  plan : plan_policy;  (** Default [Conservative]. *)
}

val default_policy : policy

val plan_policy_name : plan_policy -> string

val plan_policy_of_name : string -> (plan_policy, string) result
(** Shared by the CLI flag, the config-file key, and
    [GPP_TRANSFER_PLAN]. *)

type plan = {
  program_name : string;
  policy : policy;
  to_device : transfer list;
  from_device : transfer list;
}

val analyze : ?policy:policy -> Gpp_skeleton.Program.t -> plan
(** Run the analysis.  The program should be validated first; undeclared
    arrays raise [Invalid_argument]. *)

val input_bytes : plan -> int

val output_bytes : plan -> int

val total_bytes : plan -> int

val transfers : plan -> transfer list
(** Inputs then outputs, in plan order. *)

val direction_name : direction -> string

val pp_plan : Format.formatter -> plan -> unit
