(** Live-section analysis: the fixpoint clients behind the [minimal]
    transfer plan and the GPP6xx transfer diagnostics.

    Two refinements over the conservative per-kernel summaries of
    {!Gpp_brs.Extract.of_kernel}:

    - {b statement order and execution weight}: the conservative
      analyzer counts every reference ("data that might be touched must
      be resident").  {!refine} walks the kernel body in syntactic
      order instead: a reference under a branch of probability 0 can
      never execute, and a load whose subscripts are identical to an
      earlier {e unconditional} store of the same array reads elements
      the same innermost iteration has already produced — per-iteration
      identity of the subscript expressions makes this sound even for
      fully parallel loops.  Both kinds of reference are statically
      dead for transfer purposes.
    - {b backward liveness over the schedule}: {!device_live} runs the
      fixpoint engine backward over the invocation schedule, computing
      for every call site which array sections are still read at or
      after it on the device.  [Repeat] back edges are iterated to a
      fixed point, so a section written late in a loop body and read at
      the top of the next iteration is correctly live. *)

type dead_reason =
  | Never_executed  (** Enclosing branch probability is 0. *)
  | Covered_by_prior_write
      (** An earlier unconditional store in the same kernel writes
          exactly the elements this load reads (identical affine
          subscripts). *)

type dead_ref = {
  array : string;
  access : Gpp_skeleton.Ir.access;
  location : string;  (** [Ir.pp_ref] rendering, for diagnostics. *)
  reason : dead_reason;
  bytes : int;  (** Section size of the dead reference. *)
}

type refined = {
  kernel : string;
  live_reads : (string * Gpp_brs.Region.t) list;
      (** Reads that can actually execute and are not covered by a
          prior in-kernel write — the sections a transfer plan must
          make resident. *)
  live_writes : (string * Gpp_brs.Region.t) list;
      (** Writes that can actually execute. *)
  dead_refs : dead_ref list;  (** In syntactic order. *)
  inexact_arrays : string list;
      (** Arrays with a live conservative (inexact) reference. *)
}

val refine :
  decls:Gpp_skeleton.Decl.t list -> Gpp_skeleton.Ir.kernel -> refined
(** Statement-order, weight-aware access summary.  Falls back to the
    conservative summary semantics when nothing is provably dead. *)

val reason_text : dead_reason -> string

type live_point = {
  index : int;  (** Call-site index, schedule pre-order. *)
  kernel : string;
  live_before : Section_lattice.t;
      (** Sections read on the device at or after this point,
          including by this invocation. *)
  live_after : Section_lattice.t;
      (** Sections read strictly after this invocation (next-iteration
          reads included via the loop back edge). *)
}

type result = {
  points : live_point list;
  entry_live : Section_lattice.t;
      (** Live before the whole schedule: every section the device
          ever reads — the upload demand ignoring device-side
          production. *)
  stats : Gpp_fixpoint.Fixpoint.stats;
}

val device_live :
  summaries:(string * Gpp_brs.Extract.access) list ->
  Gpp_skeleton.Program.t ->
  result
(** Backward may-liveness of device reads over the schedule.  No kill
    set is applied (a write does not retire liveness), which keeps the
    analysis a pure over-approximation; clients that need "never read
    after" — dead-temporary detection, download auditing — test for
    absence from [live_after]. *)
