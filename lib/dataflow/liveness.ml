module Ir = Gpp_skeleton.Ir
module Program = Gpp_skeleton.Program
module Extract = Gpp_brs.Extract
module Region = Gpp_brs.Region
module Section = Gpp_brs.Section
module Fixpoint = Gpp_fixpoint.Fixpoint

type dead_reason = Never_executed | Covered_by_prior_write

type dead_ref = {
  array : string;
  access : Ir.access;
  location : string;
  reason : dead_reason;
  bytes : int;
}

type refined = {
  kernel : string;
  live_reads : (string * Region.t) list;
  live_writes : (string * Region.t) list;
  dead_refs : dead_ref list;
  inexact_arrays : string list;
}

let reason_text = function
  | Never_executed -> "its enclosing branch has probability 0, so it can never execute"
  | Covered_by_prior_write ->
      "the same kernel writes exactly these elements (identical subscripts) before reading them"

let add_to assoc name section =
  let region =
    match List.assoc_opt name assoc with
    | Some r -> Region.add r section
    | None -> Region.of_section section
  in
  (name, region) :: List.remove_assoc name assoc

let pattern_equal a b =
  match (a, b) with
  | Ir.Affine xs, Ir.Affine ys ->
      List.length xs = List.length ys && List.for_all2 Gpp_skeleton.Index_expr.equal xs ys
  | _, _ -> false

let location_of (r : Ir.array_ref) = Format.asprintf "%a" Ir.pp_ref r

let refine ~decls (k : Ir.kernel) =
  let live_reads = ref [] and live_writes = ref [] in
  let dead_refs = ref [] and inexact = ref [] in
  (* Unconditional affine stores seen so far, in body order: a later
     load with identical subscripts reads elements its own innermost
     iteration already produced. *)
  let prior_stores = ref [] in
  let record (weight, (r : Ir.array_ref)) =
    let info = Extract.section_of_ref ~decls ~kernel:k r in
    let elem_bytes =
      match List.find_opt (fun (d : Gpp_skeleton.Decl.t) -> d.name = r.array) decls with
      | Some d -> d.elem_bytes
      | None -> 1
    in
    let dead reason =
      dead_refs :=
        {
          array = r.array;
          access = r.access;
          location = location_of r;
          reason;
          bytes = Section.bytes ~elem_bytes info.section;
        }
        :: !dead_refs
    in
    let mark_live () =
      if (not info.exact) && not (List.mem r.array !inexact) then inexact := r.array :: !inexact
    in
    if weight = 0.0 then dead Never_executed
    else
      match r.access with
      | Ir.Load ->
          if
            List.exists
              (fun (array, pattern) -> array = r.array && pattern_equal pattern r.pattern)
              !prior_stores
          then dead Covered_by_prior_write
          else begin
            mark_live ();
            live_reads := add_to !live_reads r.array info.section
          end
      | Ir.Store ->
          mark_live ();
          live_writes := add_to !live_writes r.array info.section;
          if weight = 1.0 then
            match r.pattern with
            | Ir.Affine _ -> prior_stores := (r.array, r.pattern) :: !prior_stores
            | Ir.Indirect _ -> ()
  in
  List.iter record (Ir.refs k);
  {
    kernel = k.name;
    live_reads = List.rev !live_reads;
    live_writes = List.rev !live_writes;
    dead_refs = List.rev !dead_refs;
    inexact_arrays = List.rev !inexact;
  }

type live_point = {
  index : int;
  kernel : string;
  live_before : Section_lattice.t;
  live_after : Section_lattice.t;
}

type result = {
  points : live_point list;
  entry_live : Section_lattice.t;
  stats : Fixpoint.stats;
}

module Solver = Fixpoint.Make (Section_lattice)

let device_live ~summaries (program : Program.t) =
  let transfer ~index:_ name after =
    match List.assoc_opt name summaries with
    | None -> after
    | Some (access : Extract.access) ->
        List.fold_left
          (fun fact (array, region) -> Section_lattice.add_region array region fact)
          after access.Extract.reads
  in
  let solved =
    Solver.backward ~schedule:program.schedule ~transfer ~exit_:Section_lattice.empty
  in
  {
    points =
      List.map
        (fun (p : Solver.point) ->
          { index = p.index; kernel = p.kernel; live_before = p.before; live_after = p.after })
        solved.points;
    entry_live = solved.exit_fact;
    stats = solved.stats;
  }
