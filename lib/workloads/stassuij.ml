module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Ix = Gpp_skeleton.Index_expr
module Program = Gpp_skeleton.Program

type shape = { rows : int; cols : int; dense_cols : int; nnz : int }

let default_shape = { rows = 132; cols = 132; dense_cols = 2048; nnz = 1716 }

let program ?(iterations = 1) ?(shape = default_shape) () =
  let nnz_per_row = max 1 (shape.nnz / shape.rows) in
  let complex_bytes = 16 (* double-precision complex, as transferred *) in
  let arrays =
    [
      Decl.dense "xmat" ~elem_bytes:complex_bytes ~dims:[ shape.rows; shape.dense_cols ];
      Decl.dense "ymat" ~elem_bytes:complex_bytes ~dims:[ shape.rows; shape.dense_cols ];
      Decl.dense "vals" ~elem_bytes:8 ~dims:[ shape.nnz ];
      Decl.dense "col_idx" ~dims:[ shape.nnz ];
      Decl.dense "row_ptr" ~dims:[ shape.rows + 1 ];
    ]
  in
  (* One thread per (row, dense column); the serial loop walks the
     row's stored entries.  The sparse entry and its column index are
     warp-uniform (broadcast); the gathered dense row is coalesced
     along j through the indirect base. *)
  let entry = Ix.add (Ix.var ~coeff:nnz_per_row "i") (Ix.var "k") in
  let per_row_weight = 1.0 /. float_of_int nnz_per_row in
  let kernel =
    Ir.kernel "sparse_multiply"
      ~loops:
        [
          Ir.loop "i" ~extent:shape.rows;
          Ir.loop "j" ~extent:shape.dense_cols;
          Ir.loop ~parallel:false "k" ~extent:nnz_per_row;
        ]
      ~body:
        [
          Ir.load "col_idx" [ entry ];
          Ir.load "vals" [ entry ];
          Ir.load_indirect "xmat" ~via:"col_idx" ~offset:[ Ix.var "j" ];
          (* Complex accumulator update: (re, im) each get a multiply
             and an add per stored entry. *)
          Ir.compute ~int_ops:3.0 6.0;
          (* Once per (i, j): row bounds from the CSR row pointers, and
             the read-modify-write of the accumulator element. *)
          Ir.branch ~divergent:false ~probability:per_row_weight
            [
              Ir.load "row_ptr" [ Ix.var "i" ];
              Ir.load "row_ptr" [ Ix.offset (Ix.var "i") 1 ];
              Ir.load "ymat" [ Ix.var "i"; Ix.var "j" ];
              Ir.compute ~int_ops:2.0 2.0;
              Ir.store "ymat" [ Ix.var "i"; Ix.var "j" ];
            ];
        ]
  in
  Program.create
    ~name:
      (Printf.sprintf "stassuij-%dx%dx%d" shape.rows shape.cols shape.dense_cols)
    ~arrays ~kernels:[ kernel ]
    ~schedule:[ Program.Repeat (iterations, [ Program.Call "sparse_multiply" ]) ]
    ()

module Reference = struct
  type csr = {
    rows : int;
    cols : int;
    row_ptr : int array;
    col_idx : int array;
    values : float array;
  }

  type complex_matrix = { m_rows : int; m_cols : int; re : float array; im : float array }

  (* [Array.init] with an effectful body has unspecified application
     order; every rng-drawing site below fills its array with an
     explicit ascending loop so the draw order (and hence the generated
     matrices) cannot drift with the stdlib. *)
  let init_in_order n f =
    if n = 0 then [||]
    else begin
      let a = Array.make n (f 0) in
      for i = 1 to n - 1 do
        a.(i) <- f i
      done;
      a
    end

  let random_csr ?(seed = 42L) ~rows ~cols ~density () =
    if density <= 0.0 || density > 1.0 then invalid_arg "Stassuij.random_csr: bad density";
    let rng = Gpp_util.Rng.create seed in
    let row_entries =
      init_in_order rows (fun _ ->
          let want = max 1 (int_of_float (Float.round (density *. float_of_int cols))) in
          (* Distinct, sorted column indices for this row. *)
          let chosen = Hashtbl.create want in
          while Hashtbl.length chosen < want do
            Hashtbl.replace chosen (Gpp_util.Rng.int rng ~bound:cols) ()
          done;
          Hashtbl.fold (fun c () acc -> c :: acc) chosen []
          |> List.sort compare
          |> List.map (fun c -> (c, Gpp_util.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)))
    in
    let nnz = Array.fold_left (fun acc l -> acc + List.length l) 0 row_entries in
    let row_ptr = Array.make (rows + 1) 0 in
    let col_idx = Array.make nnz 0 in
    let values = Array.make nnz 0.0 in
    let cursor = ref 0 in
    Array.iteri
      (fun r entries ->
        row_ptr.(r) <- !cursor;
        List.iter
          (fun (c, v) ->
            col_idx.(!cursor) <- c;
            values.(!cursor) <- v;
            incr cursor)
          entries)
      row_entries;
    row_ptr.(rows) <- !cursor;
    { rows; cols; row_ptr; col_idx; values }

  let random_complex ?(seed = 7L) ~rows ~cols () =
    let rng = Gpp_util.Rng.create seed in
    (* Bind [re] before [im]: record-field evaluation order is also
       unspecified, and both draw from the same stream. *)
    let re = init_in_order (rows * cols) (fun _ -> Gpp_util.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let im = init_in_order (rows * cols) (fun _ -> Gpp_util.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    { m_rows = rows; m_cols = cols; re; im }

  let zeros ~rows ~cols =
    { m_rows = rows; m_cols = cols; re = Array.make (rows * cols) 0.0; im = Array.make (rows * cols) 0.0 }

  let multiply_accumulate a x ~into =
    if a.cols <> x.m_rows then invalid_arg "Stassuij.multiply: inner dimension mismatch";
    if into.m_rows <> a.rows || into.m_cols <> x.m_cols then
      invalid_arg "Stassuij.multiply: output dimension mismatch";
    let result =
      {
        m_rows = into.m_rows;
        m_cols = into.m_cols;
        re = Array.copy into.re;
        im = Array.copy into.im;
      }
    in
    for r = 0 to a.rows - 1 do
      for e = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
        let c = a.col_idx.(e) and v = a.values.(e) in
        let src = c * x.m_cols and dst = r * x.m_cols in
        for j = 0 to x.m_cols - 1 do
          result.re.(dst + j) <- result.re.(dst + j) +. (v *. x.re.(src + j));
          result.im.(dst + j) <- result.im.(dst + j) +. (v *. x.im.(src + j))
        done
      done
    done;
    result

  let multiply a x = multiply_accumulate a x ~into:(zeros ~rows:a.rows ~cols:x.m_cols)

  let dense_multiply a x =
    let dense = Array.make_matrix a.rows a.cols 0.0 in
    for r = 0 to a.rows - 1 do
      for e = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
        dense.(r).(a.col_idx.(e)) <- dense.(r).(a.col_idx.(e)) +. a.values.(e)
      done
    done;
    let out = zeros ~rows:a.rows ~cols:x.m_cols in
    for r = 0 to a.rows - 1 do
      for c = 0 to a.cols - 1 do
        let v = dense.(r).(c) in
        if v <> 0.0 then
          for j = 0 to x.m_cols - 1 do
            out.re.((r * x.m_cols) + j) <-
              out.re.((r * x.m_cols) + j) +. (v *. x.re.((c * x.m_cols) + j));
            out.im.((r * x.m_cols) + j) <-
              out.im.((r * x.m_cols) + j) +. (v *. x.im.((c * x.m_cols) + j))
          done
      done
    done;
    out

  let max_abs_diff a b =
    if a.m_rows <> b.m_rows || a.m_cols <> b.m_cols then
      invalid_arg "Stassuij.max_abs_diff: size mismatch";
    let worst = ref 0.0 in
    Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.re.(i)))) a.re;
    Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.im.(i)))) a.im;
    !worst
end
