(** "Measured" application performance from the simulated substrate.

    The paper measures a hand-written CUDA implementation that employs
    the transformations GROPHECY suggested (§IV-A); here the
    transaction-level GPU simulator executes the winning candidate's
    characteristics, and the PCIe link simulator executes the planned
    transfers with pinned memory.  Every time is the arithmetic mean of
    a configurable number of runs (default 10, the paper's protocol). *)

type kernel_measurement = {
  kernel_name : string;
  time : float;  (** Mean simulated time of one invocation. *)
}

type transfer_measurement = {
  transfer : Gpp_dataflow.Analyzer.transfer;
  time : float;  (** Mean simulated transfer time. *)
}

type t = {
  kernels : kernel_measurement list;  (** Per distinct kernel. *)
  kernel_time : float;  (** Summed over the invocation schedule. *)
  transfers : transfer_measurement list;
  transfer_time : float;
  total_time : float;
}

val measure :
  ?cache:bool ->
  ?sim_config:Gpp_gpusim.Gpu_sim.config ->
  ?runs:int ->
  ?seed:int64 ->
  link:Gpp_pcie.Link.t ->
  Projection.t ->
  (t, Error.t) result
(** Execute the projection's chosen kernels and planned transfers on the
    simulated hardware.  The link is used as-is (construct it with
    outliers enabled to reproduce the noisy application-transfer
    behaviour of §V-A).

    Kernel simulations are seeded deterministically and memoized (see
    {!Gpp_gpusim.Gpu_sim.run_mean}); transfer times come from the
    stateful link and are never cached.  [~cache:false] forces
    re-simulation.  Failures are {!Error.Simulation}. *)

val measure_kernels :
  ?cache:bool ->
  ?sim_config:Gpp_gpusim.Gpu_sim.config ->
  ?runs:int ->
  ?seed:int64 ->
  machine:Gpp_arch.Machine.t ->
  kernels:Projection.kernel_projection list ->
  Gpp_skeleton.Program.t ->
  (kernel_measurement list * float, Error.t) result
(** The kernel half of {!measure_parts}: simulate every chosen
    candidate and sum the program's invocation schedule, returning the
    per-kernel means and the scheduled kernel time.  Deterministic in
    its arguments — kernel seeds come from a fresh RNG over [seed], so
    this half is safe to run on worker domains in any order. *)

val expected_transfers :
  ?memory:Gpp_pcie.Link.memory ->
  link:Gpp_pcie.Link.t ->
  Gpp_dataflow.Analyzer.plan ->
  transfer_measurement list
(** Noise-free counterpart of {!price_transfers}: each planned transfer
    at the link's deterministic expected time ({!Gpp_pcie.Link.expected_time}).
    Pure — no RNG draw — so it is safe on any domain in any order; the
    learned-correction trainer and the cross-machine variant scorer use
    it as measured ground truth for transfers. *)

val price_transfers :
  ?runs:int ->
  ?memory:Gpp_pcie.Link.memory ->
  link:Gpp_pcie.Link.t ->
  Gpp_dataflow.Analyzer.plan ->
  transfer_measurement list
(** The transfer half of {!measure_parts}: execute the planned
    transfers on [link] with [memory] staging (default pinned, the
    paper's protocol).  Each draw advances the link's
    stateful RNG, so call order across measurements is part of the
    result — callers that need reproducible output must price in a
    fixed order (the batch runner prices serially in cell order). *)

val of_parts :
  kernels:kernel_measurement list ->
  kernel_time:float ->
  transfers:transfer_measurement list ->
  t
(** Assemble a measurement from the two halves (sums transfer and total
    times). *)

val measure_parts :
  ?cache:bool ->
  ?sim_config:Gpp_gpusim.Gpu_sim.config ->
  ?runs:int ->
  ?seed:int64 ->
  link:Gpp_pcie.Link.t ->
  machine:Gpp_arch.Machine.t ->
  kernels:Projection.kernel_projection list ->
  plan:Gpp_dataflow.Analyzer.plan ->
  Gpp_skeleton.Program.t ->
  (t, Error.t) result
(** Staged variant of {!measure} taking the Explore stage's chosen
    candidates and the Analyze stage's transfer plan directly, so the
    engine can simulate before transfers are priced.  [measure p] is
    exactly [measure_parts ~machine:p.machine ~kernels:p.kernels
    ~plan:p.plan p.program] — identical RNG draw order, identical
    results. *)

val kernel_time_of : t -> string -> float option

val per_kernel_times : t -> (string * float) list

val pp : Format.formatter -> t -> unit
