type t =
  | Parse of { source : string option; message : string }
  | Lint of { program : string; errors : int; warnings : int }
  | Projection of { kernel : string option; message : string }
  | Calibration of { machine : string option; message : string }
  | Simulation of { kernel : string option; message : string }
  | Cache of { path : string option; message : string }
  | Io of { path : string option; message : string }
  | Config of { source : string option; message : string }
  | Usage of string

let parse ?source message = Parse { source; message }

let projection ?kernel message = Projection { kernel; message }

let simulation ?kernel message = Simulation { kernel; message }

let calibration ?machine message = Calibration { machine; message }

let cache ?path message = Cache { path; message }

let io ?path message = Io { path; message }

let config ?source message = Config { source; message }

let usage message = Usage message

(* The payload messages are complete sentences as the CLI has always
   printed them (several are golden-tested downstream), so rendering is
   just the message — the constructors exist for programmatic dispatch,
   not for prefixing. *)
let message = function
  | Parse { message; _ }
  | Projection { message; _ }
  | Calibration { message; _ }
  | Simulation { message; _ }
  | Cache { message; _ }
  | Io { message; _ }
  | Config { message; _ } ->
      message
  | Lint { program; errors; warnings } ->
      Printf.sprintf "%s: lint found %d error(s) and %d warning(s)" program errors warnings
  | Usage message -> message

let category = function
  | Parse _ -> "parse"
  | Lint _ -> "lint"
  | Projection _ -> "projection"
  | Calibration _ -> "calibration"
  | Simulation _ -> "simulation"
  | Cache _ -> "cache"
  | Io _ -> "io"
  | Config _ -> "config"
  | Usage _ -> "usage"

(* One exit-code space for every consumer (documented in the CLI man
   page): 2 for requests that could never succeed (unknown workload,
   malformed input or configuration), 1 for operations that were asked
   for correctly but failed. *)
let exit_code = function
  | Parse _ | Config _ | Usage _ -> 2
  | Lint _ | Projection _ | Calibration _ | Simulation _ | Cache _ | Io _ -> 1

let pp ppf e = Format.pp_print_string ppf (message e)

let to_string = message
