(** End-to-end GPU performance projection (the GROPHECY++ pipeline).

    For each kernel of a program skeleton, explore the transformation
    space and keep the best analytic projection; run the data usage
    analyzer over the kernel sequence; price each planned transfer
    through the predictor stack's {!Gpp_predict.Pricing.t}.  The result
    carries everything the paper's evaluation derives predictions
    from. *)

type kernel_projection = {
  kernel_name : string;
  candidate : Gpp_transform.Explore.candidate;
      (** Winning transformation and its analytic projection. *)
  time : float;  (** Predicted execution time of one invocation. *)
}

type priced_transfer = {
  transfer : Gpp_dataflow.Analyzer.transfer;
  time : float;  (** Predicted by the (possibly rescaled) linear PCIe
                     model. *)
}

type t = {
  program : Gpp_skeleton.Program.t;
  machine : Gpp_arch.Machine.t;  (** The pricing's target machine. *)
  pricing : Gpp_predict.Pricing.t;
      (** The predictor-stack pricing the transfers flowed through. *)
  h2d : Gpp_pcie.Model.t;  (** Model used to price uploads
                               ([pricing.h2d], post-scaling). *)
  d2h : Gpp_pcie.Model.t;  (** Model used to price downloads. *)
  kernels : kernel_projection list;  (** One entry per distinct kernel. *)
  kernel_time : float;
      (** Predicted GPU kernel time summed over the whole invocation
          schedule. *)
  plan : Gpp_dataflow.Analyzer.plan;
  transfers : priced_transfer list;
  transfer_time : float;  (** Sum of predicted transfer times. *)
  total_time : float;  (** [kernel_time + transfer_time]. *)
  predicted_total : float;
      (** The predictor stack's final answer: [total_time] with the
          learned correction applied when one is attached; exactly
          [total_time] otherwise. *)
}

val project :
  ?cache:bool ->
  ?analytic_params:Gpp_model.Analytic.params ->
  ?space:Gpp_transform.Explore.space ->
  ?policy:Gpp_dataflow.Analyzer.policy ->
  pricing:Gpp_predict.Pricing.t ->
  Gpp_skeleton.Program.t ->
  (t, Error.t) result
(** [Error] ({!Error.Projection}) when the program fails validation or
    some kernel admits no feasible GPU transformation.  The machine is
    the pricing's target; build identity pricing from a calibrated pair
    with {!Gpp_predict.Pricing.of_models}.

    The per-kernel transformation searches are memoized (see
    {!Gpp_transform.Explore.search}); [~cache:false] forces them to be
    re-evaluated. *)

val explore :
  ?cache:bool ->
  ?analytic_params:Gpp_model.Analytic.params ->
  ?space:Gpp_transform.Explore.space ->
  machine:Gpp_arch.Machine.t ->
  Gpp_skeleton.Program.t ->
  (kernel_projection list, Error.t) result
(** Stage 1 of {!project}: validate the program and run the
    transformation-space search for every kernel (program order).  The
    engine's staged pipeline calls this directly; {!project} composes it
    with the dataflow analysis and {!assemble}. *)

val assemble :
  pricing:Gpp_predict.Pricing.t ->
  kernels:kernel_projection list ->
  plan:Gpp_dataflow.Analyzer.plan ->
  Gpp_skeleton.Program.t ->
  t
(** Stage 3 of {!project}: price the planned transfers through the
    predictor's pricing, total the kernel schedule, apply the learned
    correction (if attached) to the total, and build the projection
    record.  Pure — never fails. *)

val kernel_time_of : t -> string -> float option
(** Predicted single-invocation time of a named kernel. *)

val per_kernel_times : t -> (string * float) list

val pp : Format.formatter -> t -> unit
