module Link = Gpp_pcie.Link
module Calibrate = Gpp_pcie.Calibrate

let log_src = Logs.Src.create "gpp.core" ~doc:"GROPHECY++ pipeline"

module Log = (val Logs.src_log log_src)

type session = {
  machine : Gpp_arch.Machine.t;
  calibration_link : Link.t;
  application_link : Link.t;
  h2d : Gpp_pcie.Model.t;
  d2h : Gpp_pcie.Model.t;
  predictor : Gpp_predict.Predictor.t;
  pricing : Gpp_predict.Pricing.t;
  noise_seed : int64;
}

let init ?(seed = 0x1B0A_2013_6CA1_55AAL) ?(outlier_probability = 0.05) ?protocol
    ?(predictor = Gpp_predict.Predictor.analytic) machine =
  let base_config = Link.default_config machine in
  let calibration_link = Link.create ~seed base_config in
  let application_link =
    Link.create ~seed:(Int64.add seed 1L) { base_config with outlier_probability }
  in
  (* Calibrate for the machine's default staging mode: the legacy
     presets all stage pinned (the paper's assumption, §III-C), so their
     sessions are bit-identical to the historical pinned pair. *)
  let h2d, d2h =
    Gpp_obs.Obs.span "pcie.calibrate" @@ fun () ->
    Calibrate.calibrate_pair ?protocol calibration_link
      (Link.memory_of_staging machine.Gpp_arch.Machine.staging)
  in
  Log.info (fun m ->
      m "calibrated %s: %a / %a" machine.Gpp_arch.Machine.name Gpp_pcie.Model.pp h2d
        Gpp_pcie.Model.pp d2h);
  (* Same-machine pricing: the Scaled stage is the identity here, so
     the models inside are the calibrated pair bit for bit whatever the
     predictor.  Learned corrections are trained and attached by the
     engine's Predict stage, not at session construction. *)
  let pricing =
    Gpp_predict.Pricing.make ~predictor ~source:machine ~target:machine ~h2d ~d2h ()
  in
  {
    machine;
    calibration_link;
    application_link;
    h2d;
    d2h;
    predictor;
    pricing;
    noise_seed = Int64.add seed 2L;
  }

type report = {
  program : Gpp_skeleton.Program.t;
  projection : Projection.t;
  measurement : Measurement.t;
  cpu_time : float;
  speedups : Evaluation.speedups;
  errors : Evaluation.errors;
  kernel_error : float;
  transfer_error : float;
}

let log_cache_stats () =
  List.iter
    (fun s -> Log.info (fun m -> m "cache %a" Gpp_cache.Memo.pp_snapshot s))
    (Gpp_cache.Memo.snapshots ())

type params = {
  cache : bool option;
  analytic_params : Gpp_model.Analytic.params option;
  space : Gpp_transform.Explore.space option;
  policy : Gpp_dataflow.Analyzer.policy option;
  sim_config : Gpp_gpusim.Gpu_sim.config option;
  cpu_params : Gpp_cpu.Timing.params option;
  runs : int option;
  iterations : int option;
}

let default_params =
  {
    cache = None;
    analytic_params = None;
    space = None;
    policy = None;
    sim_config = None;
    cpu_params = None;
    runs = None;
    iterations = None;
  }

let evaluate ?cpu_params ~machine ~projection ~measurement program =
  let cpu_time = Evaluation.cpu_time ?params:cpu_params ~machine program in
  let speedups = Evaluation.speedups ~cpu_time projection measurement in
  {
    program;
    projection;
    measurement;
    cpu_time;
    speedups;
    errors = Evaluation.errors speedups;
    kernel_error = Evaluation.kernel_error projection measurement;
    transfer_error = Evaluation.transfer_error projection measurement;
  }

let analyze ?(params = default_params) session program =
  let { cache; analytic_params; space; policy; sim_config; cpu_params; runs; iterations } =
    params
  in
  let ( let* ) = Result.bind in
  let program =
    match iterations with
    | Some n -> Gpp_skeleton.Program.with_iterations program n
    | None -> program
  in
  let* projection =
    Projection.project ?cache ?analytic_params ?space ?policy ~pricing:session.pricing program
  in
  Log.info (fun m ->
      m "%s: projected kernel %a + transfer %a" program.Gpp_skeleton.Program.name
        Gpp_util.Units.pp_time projection.Projection.kernel_time Gpp_util.Units.pp_time
        projection.Projection.transfer_time);
  List.iter
    (fun (kp : Projection.kernel_projection) ->
      Log.debug (fun m ->
          m "  %s via %s: %a" kp.Projection.kernel_name
            kp.Projection.candidate.Gpp_transform.Explore.characteristics
              .Gpp_model.Characteristics.config_label
            Gpp_util.Units.pp_time kp.Projection.time))
    projection.Projection.kernels;
  let* measurement =
    Measurement.measure ?cache ?sim_config ?runs ~seed:session.noise_seed
      ~link:session.application_link projection
  in
  Log.info (fun m ->
      m "%s: measured kernel %a + transfer %a" program.Gpp_skeleton.Program.name
        Gpp_util.Units.pp_time measurement.Measurement.kernel_time Gpp_util.Units.pp_time
        measurement.Measurement.transfer_time);
  Ok (evaluate ?cpu_params ~machine:session.machine ~projection ~measurement program)

let iteration_sweep ?cpu_params report ~iterations =
  Evaluation.iteration_sweep ?params:cpu_params report.projection report.measurement ~iterations

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@,cpu time: %a@,%a@,errors: kernel %.1f%%, transfer %.1f%%@]"
    Projection.pp r.projection Measurement.pp r.measurement Gpp_util.Units.pp_time r.cpu_time
    Evaluation.pp_speedups r.speedups r.kernel_error r.transfer_error
