module Program = Gpp_skeleton.Program
module Analyzer = Gpp_dataflow.Analyzer
module Gpu_sim = Gpp_gpusim.Gpu_sim
module Link = Gpp_pcie.Link

type kernel_measurement = { kernel_name : string; time : float }

type transfer_measurement = { transfer : Analyzer.transfer; time : float }

type t = {
  kernels : kernel_measurement list;
  kernel_time : float;
  transfers : transfer_measurement list;
  transfer_time : float;
  total_time : float;
}

(* The measurement splits into two halves with very different
   concurrency behaviour.  [measure_kernels] is deterministic per cell:
   it draws kernel seeds from a fresh RNG created from [seed], so two
   calls with the same inputs agree bit for bit no matter what else ran
   in between — the batch runner executes it on worker domains.
   [price_transfers] draws from the *stateful* link RNG, so the draw
   order across cells is part of the result; the batch runner calls it
   serially, in cell-index order, which is exactly the order the
   sequential path has always used. *)
let measure_kernels ?cache ?sim_config ?(runs = 10) ?(seed = 0x4A7C_15F3_9E37_79B9L) ~machine
    ~kernels:(chosen : Projection.kernel_projection list) (program : Program.t) =
  let ( let* ) = Result.bind in
  let gpu = machine.Gpp_arch.Machine.gpu in
  let rng = Gpp_util.Rng.create seed in
  let* kernels =
    List.fold_left
      (fun acc (kp : Projection.kernel_projection) ->
        let* acc = acc in
        let kernel_seed = Gpp_util.Rng.next_int64 rng in
        let* time =
          Result.map_error
            (fun m -> Error.simulation ~kernel:kp.Projection.kernel_name m)
            (Gpu_sim.run_mean ?cache ?config:sim_config ~runs ~seed:kernel_seed ~gpu
               kp.Projection.candidate.Gpp_transform.Explore.characteristics)
        in
        Ok ({ kernel_name = kp.Projection.kernel_name; time } :: acc))
      (Ok []) chosen
  in
  let kernels = List.rev kernels in
  let time_of name =
    match List.find_opt (fun km -> km.kernel_name = name) kernels with
    | Some km -> km.time
    | None -> 0.0
  in
  let kernel_time =
    List.fold_left (fun acc name -> acc +. time_of name) 0.0 (Program.flatten_schedule program)
  in
  Ok (kernels, kernel_time)

(* Noise-free counterpart of [price_transfers]: the link's deterministic
   ground truth per planned transfer.  Pure (no RNG draw), so the
   learned-correction trainer and the cross-machine variant scorer can
   run it on any domain, in any order, without perturbing the stateful
   application-link stream the goldens depend on. *)
let expected_transfers ?(memory = Link.Pinned) ~link plan =
  List.map
    (fun (tr : Analyzer.transfer) ->
      let direction =
        match tr.Analyzer.direction with
        | Analyzer.To_device -> Link.Host_to_device
        | Analyzer.From_device -> Link.Device_to_host
      in
      let time = Link.expected_time link direction memory ~bytes:tr.Analyzer.bytes in
      { transfer = tr; time })
    (Analyzer.transfers plan)

let price_transfers ?(runs = 10) ?(memory = Link.Pinned) ~link plan =
  List.map
    (fun (tr : Analyzer.transfer) ->
      let direction =
        match tr.Analyzer.direction with
        | Analyzer.To_device -> Link.Host_to_device
        | Analyzer.From_device -> Link.Device_to_host
      in
      let time = Link.mean_transfer_time link ~runs direction memory ~bytes:tr.Analyzer.bytes in
      { transfer = tr; time })
    (Analyzer.transfers plan)

let of_parts ~kernels ~kernel_time ~transfers =
  let transfer_time = List.fold_left (fun acc tm -> acc +. tm.time) 0.0 transfers in
  { kernels; kernel_time; transfers; transfer_time; total_time = kernel_time +. transfer_time }

(* [measure_parts] is the staged entry point: it consumes exactly what
   the Explore and Analyze stages produced (chosen candidates + transfer
   plan), so the engine can simulate before transfers are priced.  The
   classic [measure] on a finished projection delegates to it — same
   draws from the same RNG streams in the same order, so both paths are
   bit-identical. *)
let measure_parts ?cache ?sim_config ?runs ?seed ~link ~machine
    ~kernels:(chosen : Projection.kernel_projection list) ~plan (program : Program.t) =
  Gpp_obs.Obs.span "core.measure" @@ fun () ->
  match measure_kernels ?cache ?sim_config ?runs ?seed ~machine ~kernels:chosen program with
  | Error e -> Error e
  | Ok (kernels, kernel_time) ->
      let memory = Link.memory_of_staging machine.Gpp_arch.Machine.staging in
      let transfers = price_transfers ?runs ~memory ~link plan in
      Ok (of_parts ~kernels ~kernel_time ~transfers)

let measure ?cache ?sim_config ?runs ?seed ~link (projection : Projection.t) =
  measure_parts ?cache ?sim_config ?runs ?seed ~link ~machine:projection.Projection.machine
    ~kernels:projection.Projection.kernels ~plan:projection.Projection.plan
    projection.Projection.program

let kernel_time_of t name =
  List.find_opt (fun (km : kernel_measurement) -> km.kernel_name = name) t.kernels
  |> Option.map (fun (km : kernel_measurement) -> km.time)

let per_kernel_times t =
  List.map (fun (km : kernel_measurement) -> (km.kernel_name, km.time)) t.kernels

let pp ppf t =
  Format.fprintf ppf "@[<v>measured:@,";
  List.iter
    (fun km -> Format.fprintf ppf "  %s: %a@," km.kernel_name Gpp_util.Units.pp_time km.time)
    t.kernels;
  Format.fprintf ppf "  kernel time (schedule): %a@," Gpp_util.Units.pp_time t.kernel_time;
  Format.fprintf ppf "  transfer time: %a@,  total: %a@]" Gpp_util.Units.pp_time t.transfer_time
    Gpp_util.Units.pp_time t.total_time
