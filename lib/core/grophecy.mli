(** GROPHECY++ facade: one-call workflows over the full pipeline.

    A {!session} bundles a machine description with its simulated PCIe
    link and the transfer-time models calibrated on it — mirroring how
    the real framework automatically benchmarks each new system it runs
    on (§III-C).  {!analyze} then produces, for any program skeleton,
    the complete prediction + "measurement" + error report the paper's
    evaluation is built from. *)

type session = {
  machine : Gpp_arch.Machine.t;
  calibration_link : Gpp_pcie.Link.t;
      (** Clean link used by the synthetic calibration benchmark. *)
  application_link : Gpp_pcie.Link.t;
      (** Link used for application transfer measurements; constructed
          with rare slow-transfer outliers enabled, reflecting the
          production-machine variability of §V-A. *)
  h2d : Gpp_pcie.Model.t;  (** Calibrated pinned host-to-device model. *)
  d2h : Gpp_pcie.Model.t;  (** Calibrated pinned device-to-host model. *)
  predictor : Gpp_predict.Predictor.t;
      (** The predictor stack this session prices through. *)
  pricing : Gpp_predict.Pricing.t;
      (** Same-machine pricing over the calibrated pair.  The Scaled
          stage is the identity here; Learned corrections are trained
          and attached by the engine's Predict stage. *)
  noise_seed : int64;
      (** Seed from which per-analysis measurement noise derives, so a
          session is reproducible end to end. *)
}

val init :
  ?seed:int64 ->
  ?outlier_probability:float ->
  ?protocol:Gpp_pcie.Calibrate.protocol ->
  ?predictor:Gpp_predict.Predictor.t ->
  Gpp_arch.Machine.t ->
  session
(** Build the link simulators and run the two-point calibration.
    [outlier_probability] (default 0.05) only affects the application
    link; [predictor] defaults to {!Gpp_predict.Predictor.analytic},
    under which the session is bit-identical to the historical one. *)

type report = {
  program : Gpp_skeleton.Program.t;
  projection : Projection.t;
  measurement : Measurement.t;
  cpu_time : float;
  speedups : Evaluation.speedups;
  errors : Evaluation.errors;
  kernel_error : float;  (** Error magnitude of total kernel time. *)
  transfer_error : float;  (** Error magnitude of total transfer time. *)
}

type params = {
  cache : bool option;
      (** Per-call memo-table override; [None] defers to the global
          {!Gpp_cache.Control} switch. *)
  analytic_params : Gpp_model.Analytic.params option;
  space : Gpp_transform.Explore.space option;
  policy : Gpp_dataflow.Analyzer.policy option;
  sim_config : Gpp_gpusim.Gpu_sim.config option;
  cpu_params : Gpp_cpu.Timing.params option;
  runs : int option;  (** Runs per measurement mean (default 10). *)
  iterations : int option;
      (** When set, rescales the program's [Repeat] nodes first. *)
}
(** Every tunable of one {!analyze} call in a single record, replacing
    the former eight-way optional-argument threading.  Build one with
    record update on {!default_params}; the engine's [Config] layer
    resolves its own scenario record down to this. *)

val default_params : params
(** Everything [None]: library defaults throughout. *)

val analyze :
  ?params:params -> session -> Gpp_skeleton.Program.t -> (report, Error.t) result
(** Project, measure, and evaluate one program.

    Transformation searches and kernel simulations are memoized (the
    report is bit-identical either way); [{ params with cache = Some
    false }] bypasses both memo tables for this call. *)

val evaluate :
  ?cpu_params:Gpp_cpu.Timing.params ->
  machine:Gpp_arch.Machine.t ->
  projection:Projection.t ->
  measurement:Measurement.t ->
  Gpp_skeleton.Program.t ->
  report
(** The Evaluate stage alone: derive CPU time, speedups, and error
    magnitudes from an existing projection/measurement pair.  Pure. *)

val log_cache_stats : unit -> unit
(** Emit one [info]-level line per projection-cache memo table (hits,
    misses, evictions, entries, bytes) on the [gpp.core] log source. *)

val iteration_sweep :
  ?cpu_params:Gpp_cpu.Timing.params ->
  report ->
  iterations:int list ->
  Evaluation.iteration_point list
(** Re-derive speedups across iteration counts from an existing report
    (no re-simulation needed; see {!Evaluation.iteration_sweep}). *)

val pp_report : Format.formatter -> report -> unit
