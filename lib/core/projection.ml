module Program = Gpp_skeleton.Program
module Analyzer = Gpp_dataflow.Analyzer
module Explore = Gpp_transform.Explore
module Pricing = Gpp_predict.Pricing

type kernel_projection = {
  kernel_name : string;
  candidate : Explore.candidate;
  time : float;
}

type priced_transfer = { transfer : Analyzer.transfer; time : float }

type t = {
  program : Program.t;
  machine : Gpp_arch.Machine.t;
  pricing : Pricing.t;
  h2d : Gpp_pcie.Model.t;
  d2h : Gpp_pcie.Model.t;
  kernels : kernel_projection list;
  kernel_time : float;
  plan : Analyzer.plan;
  transfers : priced_transfer list;
  transfer_time : float;
  total_time : float;
  predicted_total : float;
}

(* The pipeline is exposed in stages — validate + search ([explore]),
   dataflow analysis (the caller runs [Analyzer.analyze]), and transfer
   pricing ([assemble]) — so the engine's staged runner can inspect each
   intermediate.  [project] is the one-call composition; both paths
   perform the identical computations in the identical order, so their
   results (and cache keys) are bit-for-bit the same. *)

let explore ?cache ?analytic_params ?space ~machine (program : Program.t) =
  let ( let* ) = Result.bind in
  let* () =
    Result.map_error (fun m -> Error.projection m) (Program.validate program)
  in
  let* kernels =
    List.fold_left
      (fun acc (k : Gpp_skeleton.Ir.kernel) ->
        let* acc = acc in
        let* candidate =
          (* The span exists even when the search itself is a memo hit,
             so a traced run always shows the search phase. *)
          Gpp_obs.Obs.span "core.search" @@ fun () ->
          Result.map_error
            (fun m -> Error.projection ~kernel:k.name m)
            (Explore.best ?cache ?params:analytic_params ?space ~gpu:machine.Gpp_arch.Machine.gpu
               ~decls:program.arrays k)
        in
        Ok
          ({
             kernel_name = k.name;
             candidate;
             time = candidate.projection.Gpp_model.Analytic.kernel_time;
           }
          :: acc))
      (Ok []) program.kernels
  in
  Ok (List.rev kernels)

(* Transfer pricing flows through the predictor: [pricing] carries the
   post-[Scaled] models and the optional [Learned] correction.  The
   default identity pricing reproduces the historical
   [~machine ~h2d ~d2h] behaviour bit for bit (same models, no
   correction, [predicted_total = total_time]). *)
let assemble ~(pricing : Pricing.t) ~kernels ~plan (program : Program.t) =
  let machine = Pricing.machine pricing in
  let time_of name =
    match List.find_opt (fun kp -> kp.kernel_name = name) kernels with
    | Some kp -> kp.time
    | None -> 0.0 (* unreachable: schedule validated against kernels *)
  in
  let kernel_time =
    List.fold_left (fun acc name -> acc +. time_of name) 0.0 (Program.flatten_schedule program)
  in
  let price (tr : Analyzer.transfer) =
    let direction =
      match tr.direction with
      | Analyzer.To_device -> Gpp_pcie.Link.Host_to_device
      | Analyzer.From_device -> Gpp_pcie.Link.Device_to_host
    in
    { transfer = tr; time = Pricing.predict pricing direction ~bytes:tr.bytes }
  in
  let transfers =
    Gpp_obs.Obs.span "core.price_transfers" @@ fun () ->
    List.map price (Analyzer.transfers plan)
  in
  let transfer_time = List.fold_left (fun acc pt -> acc +. pt.time) 0.0 transfers in
  let total_time = kernel_time +. transfer_time in
  let predicted_total =
    match pricing.Pricing.correction with
    | None -> total_time
    | Some _ ->
        let features =
          Gpp_predict.Features.extract ~source:pricing.Pricing.source
            ~target:pricing.Pricing.target ~program ~plan
            ~kernels:
              (List.map
                 (fun kp -> kp.candidate.Explore.characteristics)
                 kernels)
        in
        Pricing.corrected_total pricing ~features ~total:total_time
  in
  {
    program;
    machine;
    pricing;
    h2d = pricing.Pricing.h2d;
    d2h = pricing.Pricing.d2h;
    kernels;
    kernel_time;
    plan;
    transfers;
    transfer_time;
    total_time;
    predicted_total;
  }

let project ?cache ?analytic_params ?space ?policy ~pricing (program : Program.t) =
  Gpp_obs.Obs.span "core.project" @@ fun () ->
  let ( let* ) = Result.bind in
  let machine = Pricing.machine pricing in
  let* kernels = explore ?cache ?analytic_params ?space ~machine program in
  let plan = Analyzer.analyze ?policy program in
  Ok (assemble ~pricing ~kernels ~plan program)

let kernel_time_of t name =
  List.find_opt (fun (kp : kernel_projection) -> kp.kernel_name = name) t.kernels
  |> Option.map (fun (kp : kernel_projection) -> kp.time)

let per_kernel_times t =
  List.map (fun (kp : kernel_projection) -> (kp.kernel_name, kp.time)) t.kernels

let pp ppf t =
  Format.fprintf ppf "@[<v>projection for %s on %s@," t.program.Program.name
    t.machine.Gpp_arch.Machine.name;
  List.iter
    (fun kp ->
      Format.fprintf ppf "  %s: %a via %s@," kp.kernel_name Gpp_util.Units.pp_time kp.time
        kp.candidate.Explore.characteristics.Gpp_model.Characteristics.config_label)
    t.kernels;
  Format.fprintf ppf "  kernel time (schedule): %a@," Gpp_util.Units.pp_time t.kernel_time;
  List.iter
    (fun pt ->
      Format.fprintf ppf "  transfer %s %s (%s): %a@,"
        (Analyzer.direction_name pt.transfer.Analyzer.direction)
        pt.transfer.Analyzer.array
        (Gpp_util.Units.bytes_to_string pt.transfer.Analyzer.bytes)
        Gpp_util.Units.pp_time pt.time)
    t.transfers;
  Format.fprintf ppf "  transfer time: %a@,  total: %a" Gpp_util.Units.pp_time t.transfer_time
    Gpp_util.Units.pp_time t.total_time;
  (* Only a trained Learned stage adds output: the default predictor's
     rendering is byte-identical to the pre-predictor pipeline. *)
  (match t.pricing.Pricing.correction with
  | None -> ()
  | Some _ ->
      Format.fprintf ppf "@,  corrected total (%s): %a"
        (Gpp_predict.Predictor.name t.pricing.Pricing.predictor)
        Gpp_util.Units.pp_time t.predicted_total);
  Format.fprintf ppf "@]"
