module Program = Gpp_skeleton.Program
module Analyzer = Gpp_dataflow.Analyzer
module Explore = Gpp_transform.Explore

type kernel_projection = {
  kernel_name : string;
  candidate : Explore.candidate;
  time : float;
}

type priced_transfer = { transfer : Analyzer.transfer; time : float }

type t = {
  program : Program.t;
  machine : Gpp_arch.Machine.t;
  h2d : Gpp_pcie.Model.t;
  d2h : Gpp_pcie.Model.t;
  kernels : kernel_projection list;
  kernel_time : float;
  plan : Analyzer.plan;
  transfers : priced_transfer list;
  transfer_time : float;
  total_time : float;
}

(* The pipeline is exposed in stages — validate + search ([explore]),
   dataflow analysis (the caller runs [Analyzer.analyze]), and transfer
   pricing ([assemble]) — so the engine's staged runner can inspect each
   intermediate.  [project] is the one-call composition; both paths
   perform the identical computations in the identical order, so their
   results (and cache keys) are bit-for-bit the same. *)

let explore ?cache ?analytic_params ?space ~machine (program : Program.t) =
  let ( let* ) = Result.bind in
  let* () =
    Result.map_error (fun m -> Error.projection m) (Program.validate program)
  in
  let* kernels =
    List.fold_left
      (fun acc (k : Gpp_skeleton.Ir.kernel) ->
        let* acc = acc in
        let* candidate =
          (* The span exists even when the search itself is a memo hit,
             so a traced run always shows the search phase. *)
          Gpp_obs.Obs.span "core.search" @@ fun () ->
          Result.map_error
            (fun m -> Error.projection ~kernel:k.name m)
            (Explore.best ?cache ?params:analytic_params ?space ~gpu:machine.Gpp_arch.Machine.gpu
               ~decls:program.arrays k)
        in
        Ok
          ({
             kernel_name = k.name;
             candidate;
             time = candidate.projection.Gpp_model.Analytic.kernel_time;
           }
          :: acc))
      (Ok []) program.kernels
  in
  Ok (List.rev kernels)

let assemble ~machine ~h2d ~d2h ~kernels ~plan (program : Program.t) =
  let time_of name =
    match List.find_opt (fun kp -> kp.kernel_name = name) kernels with
    | Some kp -> kp.time
    | None -> 0.0 (* unreachable: schedule validated against kernels *)
  in
  let kernel_time =
    List.fold_left (fun acc name -> acc +. time_of name) 0.0 (Program.flatten_schedule program)
  in
  let price (tr : Analyzer.transfer) =
    let model = match tr.direction with Analyzer.To_device -> h2d | Analyzer.From_device -> d2h in
    { transfer = tr; time = Gpp_pcie.Model.predict model ~bytes:tr.bytes }
  in
  let transfers =
    Gpp_obs.Obs.span "core.price_transfers" @@ fun () ->
    List.map price (Analyzer.transfers plan)
  in
  let transfer_time = List.fold_left (fun acc pt -> acc +. pt.time) 0.0 transfers in
  {
    program;
    machine;
    h2d;
    d2h;
    kernels;
    kernel_time;
    plan;
    transfers;
    transfer_time;
    total_time = kernel_time +. transfer_time;
  }

let project ?cache ?analytic_params ?space ?policy ~machine ~h2d ~d2h (program : Program.t) =
  Gpp_obs.Obs.span "core.project" @@ fun () ->
  let ( let* ) = Result.bind in
  let* kernels = explore ?cache ?analytic_params ?space ~machine program in
  let plan = Analyzer.analyze ?policy program in
  Ok (assemble ~machine ~h2d ~d2h ~kernels ~plan program)

let kernel_time_of t name =
  List.find_opt (fun (kp : kernel_projection) -> kp.kernel_name = name) t.kernels
  |> Option.map (fun (kp : kernel_projection) -> kp.time)

let per_kernel_times t =
  List.map (fun (kp : kernel_projection) -> (kp.kernel_name, kp.time)) t.kernels

let pp ppf t =
  Format.fprintf ppf "@[<v>projection for %s on %s@," t.program.Program.name
    t.machine.Gpp_arch.Machine.name;
  List.iter
    (fun kp ->
      Format.fprintf ppf "  %s: %a via %s@," kp.kernel_name Gpp_util.Units.pp_time kp.time
        kp.candidate.Explore.characteristics.Gpp_model.Characteristics.config_label)
    t.kernels;
  Format.fprintf ppf "  kernel time (schedule): %a@," Gpp_util.Units.pp_time t.kernel_time;
  List.iter
    (fun pt ->
      Format.fprintf ppf "  transfer %s %s (%s): %a@,"
        (Analyzer.direction_name pt.transfer.Analyzer.direction)
        pt.transfer.Analyzer.array
        (Gpp_util.Units.bytes_to_string pt.transfer.Analyzer.bytes)
        Gpp_util.Units.pp_time pt.time)
    t.transfers;
  Format.fprintf ppf "  transfer time: %a@,  total: %a@]" Gpp_util.Units.pp_time t.transfer_time
    Gpp_util.Units.pp_time t.total_time
