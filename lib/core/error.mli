(** Structured pipeline errors.

    Every fallible step of the GROPHECY++ pipeline reports one of these
    variants instead of a bare string, so callers (the engine's staged
    runner, the CLI, the batch executor) can dispatch on what went wrong
    without matching on message text.  The variants follow the pipeline
    phases: skeleton parsing, static analysis, transformation
    search/projection, PCIe calibration, GPU simulation, the projection
    cache, file I/O, and scenario configuration.

    Rendering is intentionally bare: each payload carries the complete
    message as the CLI has always printed it, and {!exit_code} maps every
    variant onto the established 0/1/2 exit-code space. *)

type t =
  | Parse of { source : string option; message : string }
      (** Workload resolution or [.skel] parsing failed.  [source] is
          the workload key or file path that was looked up. *)
  | Lint of { program : string; errors : int; warnings : int }
      (** Static analysis found diagnostics at or above the failure
          threshold. *)
  | Projection of { kernel : string option; message : string }
      (** Program validation failed or a kernel admits no feasible GPU
          transformation. *)
  | Calibration of { machine : string option; message : string }
      (** The synthetic PCIe calibration benchmark failed. *)
  | Simulation of { kernel : string option; message : string }
      (** The transaction-level GPU simulator rejected a kernel. *)
  | Cache of { path : string option; message : string }
      (** Projection-cache store failure that cannot degrade to a
          miss. *)
  | Io of { path : string option; message : string }
      (** Reading or writing an output artifact failed. *)
  | Config of { source : string option; message : string }
      (** A scenario configuration layer (file, environment variable, or
          flag set) is malformed.  [source] names the file or
          variable. *)
  | Usage of string  (** Malformed command-line request. *)

val parse : ?source:string -> string -> t

val projection : ?kernel:string -> string -> t

val simulation : ?kernel:string -> string -> t

val calibration : ?machine:string -> string -> t

val cache : ?path:string -> string -> t

val io : ?path:string -> string -> t

val config : ?source:string -> string -> t

val usage : string -> t

val message : t -> string
(** The complete human-readable message (no category prefix — payload
    messages are full sentences). *)

val category : t -> string
(** Stable lowercase tag per variant ([parse], [lint], ...). *)

val exit_code : t -> int
(** [2] for requests that could never succeed (parse, config, usage);
    [1] for well-formed operations that failed. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Alias of {!message}. *)
