module Engine = Gpp_sim.Engine
module Fifo_server = Gpp_sim.Fifo_server
module Rng = Gpp_util.Rng
module Characteristics = Gpp_model.Characteristics
module Occupancy = Gpp_model.Occupancy
module Obs = Gpp_obs.Obs

(* Simulator-side observability counters: simulated work volume (blocks,
   warps, DRAM transactions) rather than wall time, which the spans
   cover.  All are single-branch no-ops unless observability is on. *)
let c_blocks = Obs.counter "sim.blocks"

let c_waves = Obs.counter "sim.waves"

let c_warp_phases = Obs.counter "sim.warp_phases"

let c_dram_requests = Obs.counter "sim.dram.requests"

let c_dram_transactions = Obs.counter "sim.dram.transactions"

let c_divergent = Obs.counter "sim.divergence.serializations"

let c_events = Obs.counter "sim.engine.events"

let c_extrapolated = Obs.counter "sim.blocks.extrapolated"

let c_rng = Obs.counter "rng.draws"

type config = {
  streaming_efficiency : float;
  scattered_efficiency : float;
  latency_jitter : float;
  block_dispatch_cycles : float;
  drain_cycles : float;
  noise_sigma : float;
  max_simulated_blocks : int;
}

let default_config =
  {
    streaming_efficiency = 0.55;
    scattered_efficiency = 0.45;
    latency_jitter = 0.15;
    block_dispatch_cycles = 300.0;
    drain_cycles = 600.0;
    noise_sigma = 0.012;
    max_simulated_blocks = 2048;
  }

type result = {
  kernel_name : string;
  time : float;
  busy_time : float;
  dram_utilization : float;
  issue_utilization : float;
  simulated_blocks : int;
  total_blocks : int;
  extrapolated : bool;
  events : int;
}

(* Barrier stall cost, matching the analytic model's default so that
   sync-heavy kernels do not diverge for bookkeeping reasons alone. *)
let sync_cost_cycles = 40.0

type sm = { issue : Fifo_server.t; mutable resident_blocks : int }

let run ?(config = default_config) ?trace ~rng ~gpu (c : Characteristics.t) =
  Obs.span "gpusim.run" @@ fun () ->
  let gpu : Gpp_arch.Gpu.t = gpu in
  match Occupancy.of_characteristics ~gpu c with
  | Error e -> Error e
  | Ok occ ->
      let cycle = Gpp_arch.Gpu.cycle_time gpu in
      let warps_per_block = Characteristics.warps_per_block ~gpu c in
      (* Per-warp workload parameters. *)
      let insts =
        c.flops_per_thread +. c.int_ops_per_thread +. c.load_insts_per_thread
        +. c.store_insts_per_thread
      in
      let comp_cycles =
        (insts *. gpu.issue_cycles *. c.divergence_factor)
        +. (c.syncs_per_thread *. sync_cost_cycles)
      in
      let mem_insts = Characteristics.mem_insts_per_thread c in
      let periods = if mem_insts > 0.0 then max 1 (int_of_float (Float.ceil mem_insts)) else 0 in
      let comp_chunk = comp_cycles /. float_of_int (periods + 1) *. cycle in
      let transactions = c.load_transactions_per_warp +. c.store_transactions_per_warp in
      let dram_efficiency =
        (config.streaming_efficiency *. (1.0 -. c.scattered_fraction))
        +. (config.scattered_efficiency *. c.scattered_fraction)
      in
      let bytes_per_period =
        if periods = 0 then 0.0
        else transactions /. float_of_int periods *. Characteristics.transaction_bytes ~gpu c
      in
      let dram_service = bytes_per_period /. (gpu.dram_bandwidth *. dram_efficiency) in
      let base_latency = float_of_int gpu.dram_latency_cycles *. cycle in
      let dispatch_cost = config.block_dispatch_cycles *. cycle in
      (* Wave-sampling budget: whole waves only. *)
      let blocks_per_wave = gpu.sm_count * occ.blocks_per_sm in
      let total_blocks = c.grid_blocks in
      let budget =
        if total_blocks <= config.max_simulated_blocks then total_blocks
        else
          let waves = max 2 (config.max_simulated_blocks / blocks_per_wave) in
          min total_blocks (waves * blocks_per_wave)
      in
      Obs.add c_waves ((budget + blocks_per_wave - 1) / blocks_per_wave);
      (* Per-period integer work volume, precomputed so the hot event
         handlers only pay counter increments. *)
      let txn_per_period =
        if periods = 0 then 0 else int_of_float (Float.ceil (transactions /. float_of_int periods))
      in
      let divergent = c.divergence_factor > 1.0 in
      let engine = Engine.create () in
      let dram = Fifo_server.create ~name:"dram" () in
      let sms =
        Array.init gpu.sm_count (fun i ->
            { issue = Fifo_server.create ~name:(Printf.sprintf "sm%d" i) (); resident_blocks = 0 })
      in
      let next_block = ref 0 in
      let completed = ref 0 in
      let completion_half = ref 0.0 in
      let completion_last = ref 0.0 in
      let half_mark = max 1 (budget / 2) in
      let rec start_block sm_idx engine =
        let sm = sms.(sm_idx) in
        Obs.incr c_blocks;
        sm.resident_blocks <- sm.resident_blocks + 1;
        let block_id = !next_block in
        let block_start = Engine.now engine in
        incr next_block;
        let remaining_warps = ref warps_per_block in
        let warp_done engine =
          decr remaining_warps;
          if !remaining_warps = 0 then begin
            (match trace with
            | Some tr ->
                Trace.record tr
                  ~name:(Printf.sprintf "block %d" block_id)
                  ~category:"block" ~track:sm_idx ~start:block_start
                  ~duration:(Engine.now engine -. block_start)
            | None -> ());
            block_done sm_idx engine
          end
        in
        for _ = 1 to warps_per_block do
          Engine.schedule engine ~delay:dispatch_cost (warp_phase sm_idx 0 warp_done)
        done
      and warp_phase sm_idx period warp_done engine =
        let sm = sms.(sm_idx) in
        Obs.incr c_warp_phases;
        if divergent then Obs.incr c_divergent;
        let now = Engine.now engine in
        let issue_start, issue_finish =
          Fifo_server.reserve sm.issue ~arrival:now ~service:comp_chunk
        in
        (match trace with
        | Some tr ->
            Trace.record tr ~name:"issue" ~category:"compute" ~track:sm_idx ~start:issue_start
              ~duration:(issue_finish -. issue_start)
        | None -> ());
        if period >= periods then Engine.schedule_at engine ~time:issue_finish warp_done
        else
          Engine.schedule_at engine ~time:issue_finish (fun engine ->
              let now = Engine.now engine in
              Obs.incr c_dram_requests;
              Obs.add c_dram_transactions txn_per_period;
              let dram_start, dram_finish =
                Fifo_server.reserve dram ~arrival:now ~service:dram_service
              in
              (match trace with
              | Some tr ->
                  Trace.record tr ~name:"mem" ~category:"dram" ~track:Trace.dram_track
                    ~start:dram_start ~duration:(dram_finish -. dram_start)
              | None -> ());
              Obs.incr c_rng;
              let latency =
                base_latency
                *. (1.0 +. Rng.uniform rng ~lo:(-.config.latency_jitter) ~hi:config.latency_jitter)
              in
              let ready = Float.max (now +. latency) dram_finish in
              Engine.schedule_at engine ~time:ready (warp_phase sm_idx (period + 1) warp_done))
      and block_done sm_idx engine =
        let sm = sms.(sm_idx) in
        sm.resident_blocks <- sm.resident_blocks - 1;
        incr completed;
        let now = Engine.now engine in
        if !completed = half_mark then completion_half := now;
        if !completed = budget then completion_last := now;
        if !next_block < budget then start_block sm_idx engine
      in
      (* Initial dispatch: fill every SM to its occupancy limit. *)
      let sm_idx = ref 0 in
      while !next_block < min budget (blocks_per_wave) do
        let idx = !sm_idx mod gpu.sm_count in
        if sms.(idx).resident_blocks < occ.blocks_per_sm then start_block idx engine;
        incr sm_idx
      done;
      Engine.run engine;
      Obs.add c_events (Engine.processed engine);
      let span = Float.max !completion_last (Fifo_server.next_free dram) in
      let busy_sim = span +. (config.drain_cycles *. cycle) in
      let extrapolated = budget < total_blocks in
      let busy_time =
        if not extrapolated then busy_sim
        else begin
          (* Steady-state rate from the back half of the simulated
             blocks extrapolates the remaining waves. *)
          let measured = budget - half_mark in
          let rate = (!completion_last -. !completion_half) /. float_of_int (max 1 measured) in
          busy_sim +. (rate *. float_of_int (total_blocks - budget))
        end
      in
      if extrapolated then Obs.add c_extrapolated (total_blocks - budget);
      Obs.incr c_rng;
      let time =
        (gpu.launch_overhead +. busy_time) *. Rng.lognormal_noise rng ~sigma:config.noise_sigma
      in
      let issue_utilization =
        if span <= 0.0 then 0.0
        else
          Array.fold_left (fun acc sm -> acc +. Fifo_server.utilization sm.issue ~horizon:span) 0.0 sms
          /. float_of_int gpu.sm_count
      in
      Ok
        {
          kernel_name = c.kernel_name;
          time;
          busy_time;
          dram_utilization = (if span <= 0.0 then 0.0 else Fifo_server.utilization dram ~horizon:span);
          issue_utilization;
          simulated_blocks = budget;
          total_blocks;
          extrapolated;
          events = Engine.processed engine;
        }

(* [run_mean] draws every random number from an rng seeded by its own
   [seed] argument, so — unlike a single [run] fed a shared stream — it
   is a pure function of (config, runs, seed, gpu, characteristics).
   It is also where the experiments suite spends almost all of its
   time, so results are memoized under a structural digest of exactly
   those inputs; cached and uncached runs are bit-identical. *)
let run_mean_memo : (float, string) Stdlib.Result.t Gpp_cache.Memo.t =
  Gpp_cache.Memo.create ~name:"gpusim.run_mean" ~capacity:4096 ()

(* Bump the schema if the memoized result type ever changes shape. *)
let () = Gpp_cache.Memo.persist ~schema:1 run_mean_memo

let add_config_fingerprint fp config =
  let module F = Gpp_cache.Fingerprint in
  F.add_float fp config.streaming_efficiency;
  F.add_float fp config.scattered_efficiency;
  F.add_float fp config.latency_jitter;
  F.add_float fp config.block_dispatch_cycles;
  F.add_float fp config.drain_cycles;
  F.add_float fp config.noise_sigma;
  F.add_int fp config.max_simulated_blocks

let run_mean ?(cache = true) ?(config = default_config) ?(runs = 10) ~seed ~gpu c =
  if runs <= 0 then invalid_arg "Gpu_sim.run_mean: runs must be positive";
  let compute () =
    Obs.span "gpusim.run_mean" @@ fun () ->
    let rng = Rng.create seed in
    let rec go acc k =
      if k = 0 then Ok (acc /. float_of_int runs)
      else
        match run ~config ~rng ~gpu c with
        | Error e -> Error e
        | Ok r -> go (acc +. r.time) (k - 1)
    in
    go 0.0 runs
  in
  let key =
    let module F = Gpp_cache.Fingerprint in
    let fp = F.create () in
    add_config_fingerprint fp config;
    F.add_int fp runs;
    F.add_int64 fp seed;
    Gpp_arch.Gpu.add_fingerprint fp gpu;
    Characteristics.add_fingerprint fp c;
    F.digest fp
  in
  Gpp_cache.Memo.find_or_add ~cache run_mean_memo ~key compute
