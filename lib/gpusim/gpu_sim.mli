(** Transaction-level GPU kernel simulator — the reproduction's
    "measured" execution path (see DESIGN.md).

    Simulates a kernel launch as a discrete-event system:

    - thread blocks dispatch onto SMs up to the occupancy limit, with a
      per-block dispatch cost; remaining blocks queue and start as slots
      free (wave scheduling, including ragged final waves);
    - each warp alternates compute phases — serialized on its SM's
      issue pipeline (a FIFO server) — with memory phases that reserve
      the shared DRAM channel, pay queueing delay under contention, and
      wait out the access latency (jittered per request);
    - DRAM sustains pattern-dependent bandwidth: streaming bursts
      achieve a high fraction of peak, scattered (gather/scatter)
      transactions a much lower one.

    These contention and second-order effects are exactly what the
    analytic model idealizes away, so simulated times exceed analytic
    projections most for irregular kernels — reproducing the error
    structure of the paper's measurements (§V-B: CFD's kernel time is
    under-predicted far more than the stencils').

    Large grids are wave-sampled: a configurable number of whole waves
    is simulated in full detail and the steady-state per-block rate
    extrapolates the rest. *)

type config = {
  streaming_efficiency : float;
      (** Fraction of peak DRAM bandwidth sustained by coalesced
          streaming bursts. *)
  scattered_efficiency : float;
      (** Fraction sustained by isolated/scattered transactions. *)
  latency_jitter : float;
      (** Relative half-width of the per-request uniform latency
          jitter. *)
  block_dispatch_cycles : float;  (** Cost to start one block on an SM. *)
  drain_cycles : float;  (** Pipeline drain at kernel end. *)
  noise_sigma : float;  (** Run-to-run multiplicative noise on the final
                            time. *)
  max_simulated_blocks : int;
      (** Full-detail block budget before wave-sampled extrapolation
          kicks in. *)
}

val default_config : config

type result = {
  kernel_name : string;
  time : float;  (** Seconds, including launch overhead and noise. *)
  busy_time : float;  (** Noise-free simulated execution span. *)
  dram_utilization : float;  (** DRAM busy fraction over the simulated
                                 span. *)
  issue_utilization : float;  (** Mean SM issue-pipeline busy fraction. *)
  simulated_blocks : int;
  total_blocks : int;
  extrapolated : bool;  (** Whether wave sampling was used. *)
  events : int;  (** Discrete events processed (diagnostics). *)
}

val run :
  ?config:config ->
  ?trace:Trace.t ->
  rng:Gpp_util.Rng.t ->
  gpu:Gpp_arch.Gpu.t ->
  Gpp_model.Characteristics.t ->
  (result, string) Result.t
(** Simulate one launch.  [Error] when the characteristics cannot be
    scheduled on the device.  Pass a {!Trace.t} to record block, issue,
    and DRAM activity for inspection or Chrome-trace export. *)

val run_mean :
  ?cache:bool ->
  ?config:config ->
  ?runs:int ->
  seed:int64 ->
  gpu:Gpp_arch.Gpu.t ->
  Gpp_model.Characteristics.t ->
  (float, string) Result.t
(** Arithmetic-mean time of [runs] (default 10) independent simulated
    launches — the paper's measurement protocol.

    Because all randomness derives from [seed], the result is a pure
    function of its arguments and is memoized under a structural digest
    of (config, runs, seed, GPU, characteristics); cached and uncached
    calls return bit-identical times.  Pass [~cache:false] (or disable
    {!Gpp_cache.Control}) to re-simulate. *)
