(* Minimal blocking HTTP/1.1 over Unix file descriptors.  The server
   side parses one request at a time off a connected socket; the client
   side exists for the tests and the bench harness.  Both sides treat a
   vanished peer (EPIPE / ECONNRESET / EOF mid-message) as the
   per-connection [Closed] condition, never as a process-level error. *)

exception Closed

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; content_type : string; body : string }

(* Hard limits: a prediction request is a short target plus at most a
   small JSON body, so anything larger is garbage (or abuse), not load. *)
let max_head_bytes = 16 * 1024
let max_body_bytes = 4 * 1024 * 1024

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n && hex_val s.[!i + 1] >= 0 && hex_val s.[!i + 2] >= 0 ->
        Buffer.add_char b (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
        i := !i + 2
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let split_on_first c s =
  match String.index_opt s c with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let parse_query q =
  String.split_on_char '&' q
  |> List.filter (fun p -> p <> "")
  |> List.map (fun pair ->
         let k, v = split_on_first '=' pair in
         (percent_decode k, percent_decode (Option.value v ~default:"")))

let query_param (r : request) key =
  List.assoc_opt key r.query

let header (r : request) name =
  List.assoc_opt (String.lowercase_ascii name) r.headers

let wants_keep_alive (r : request) =
  match header r "connection" with
  | Some v -> String.lowercase_ascii (String.trim v) <> "close"
  | None -> true

(* Read with EOF and hangup discrimination.  [read_some] returns "" on
   clean EOF and raises [Closed] on a reset. *)
let rec read_some fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> ""
  | n -> Bytes.sub_string buf 0 n
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> raise Closed
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd buf

let find_head_end s =
  (* Index just past "\r\n\r\n", or -1. *)
  let n = String.length s in
  let rec go i =
    if i + 4 > n then -1
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then i + 4
    else go (i + 1)
  in
  go 0

let parse_head head =
  match String.split_on_char '\n' head |> List.map (fun l -> String.trim l) with
  | [] | [ "" ] -> Error "empty request head"
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let raw_path, raw_query = split_on_first '?' target in
          let headers =
            List.filter_map
              (fun line ->
                if line = "" then None
                else
                  let name, value = split_on_first ':' line in
                  Some
                    ( String.lowercase_ascii (String.trim name),
                      String.trim (Option.value value ~default:"") ))
              header_lines
          in
          Ok
            ( String.uppercase_ascii meth,
              percent_decode raw_path,
              (match raw_query with None -> [] | Some q -> parse_query q),
              headers )
      | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

let read_request fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 1024 in
  let rec fill_head () =
    let s = Buffer.contents buf in
    let e = find_head_end s in
    if e >= 0 then Ok (String.sub s 0 e, String.sub s e (String.length s - e))
    else if Buffer.length buf > max_head_bytes then Error "request head too large"
    else
      match read_some fd chunk with
      | "" -> if Buffer.length buf = 0 then Ok ("", "") else raise Closed
      | piece ->
          Buffer.add_string buf piece;
          fill_head ()
  in
  match fill_head () with
  | Error msg -> Error msg
  | Ok ("", _) -> Ok None (* clean close between requests *)
  | Ok (head, rest) -> (
      match parse_head head with
      | Error msg -> Error msg
      | Ok (meth, path, query, headers) -> (
          let content_length =
            match List.assoc_opt "content-length" headers with
            | None -> Ok 0
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 && n <= max_body_bytes -> Ok n
                | Some _ -> Error "content-length out of range"
                | None -> Error "malformed content-length")
          in
          match content_length with
          | Error msg -> Error msg
          | Ok wanted ->
              let body = Buffer.create wanted in
              Buffer.add_string body rest;
              while Buffer.length body < wanted do
                match read_some fd chunk with
                | "" -> raise Closed
                | piece -> Buffer.add_string body piece
              done;
              let body = Buffer.contents body in
              let body =
                if String.length body > wanted then String.sub body 0 wanted else body
              in
              Ok (Some { meth; path; query; headers; body })))

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let response ?(content_type = "text/plain; charset=utf-8") status body =
  { status; content_type; body }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | written -> pos := !pos + written
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_response fd ~keep_alive { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n"
      status (status_text status) content_type (String.length body)
      (if keep_alive then "keep-alive" else "close")
  in
  write_all fd (head ^ body)

(* --- tiny blocking client (tests and bench only) --- *)

let read_to_eof fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 1024 in
  let rec go () =
    match read_some fd chunk with
    | "" -> Buffer.contents buf
    | piece ->
        Buffer.add_string buf piece;
        go ()
  in
  go ()

let request_fd fd ?(meth = "GET") ?(body = "") target =
  let head =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: grophecy\r\nConnection: close\r\n%s\r\n" meth target
      (if body = "" then "" else Printf.sprintf "Content-Length: %d\r\n" (String.length body))
  in
  write_all fd (head ^ body);
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error (_, _, _) -> ());
  let raw = read_to_eof fd in
  let e = find_head_end raw in
  if e < 0 then Error "truncated response head"
  else
    let head = String.sub raw 0 e in
    let resp_body = String.sub raw e (String.length raw - e) in
    match String.split_on_char '\n' head |> List.map String.trim with
    | status_line :: header_lines -> (
        match String.split_on_char ' ' status_line with
        | _http :: code :: _ -> (
            match int_of_string_opt code with
            | None -> Error (Printf.sprintf "malformed status line %S" status_line)
            | Some status ->
                let headers =
                  List.filter_map
                    (fun line ->
                      if line = "" then None
                      else
                        let name, value = split_on_first ':' line in
                        Some
                          ( String.lowercase_ascii (String.trim name),
                            String.trim (Option.value value ~default:"") ))
                    header_lines
                in
                Ok (status, headers, resp_body))
        | _ -> Error (Printf.sprintf "malformed status line %S" status_line))
    | [] -> Error "empty response head"
