(* The prediction service.  See serve.mli for the endpoint contract.

   Threading model: one accept thread plus one thread per connection
   (systhreads, not domains — handlers spend their time in the engine,
   which already shards real work across its own domain pool).  The
   pipeline's per-machine application-link RNG is stateful, so requests
   never share a session: each computation builds its own context and
   the response-level memo + in-flight coalescing make repeats cheap. *)

module Config = Gpp_engine.Config
module Error = Gpp_engine.Error
module Memo = Gpp_cache.Memo
module Fingerprint = Gpp_cache.Fingerprint
module Obs = Gpp_obs.Obs
module Validate = Gpp_obs.Validate
module Render = Gpp_analysis.Render

let c_requests = Obs.counter "serve.requests"
let c_connections = Obs.counter "serve.connections"
let c_computed = Obs.counter "serve.computed"
let c_coalesced = Obs.counter "serve.coalesced"
let c_broken_pipe = Obs.counter "serve.broken_pipe"
let c_flushes = Obs.counter "serve.flushes"
let c_errors = Obs.counter "serve.errors"

(* Response-level memo: (status, content-type, body), persisted so a
   restarted server answers repeat questions from disk.  Created
   lazily so plain CLI runs that link this library never register (or
   flush) the table. *)
let responses : (int * string * string) Memo.t Lazy.t =
  lazy
    (let m = Memo.create ~capacity:256 ~name:"serve.responses" () in
     Memo.persist ~schema:1 m;
     m)

(* A computed (or error) response escaping the normal return path —
   raised inside the memoized compute so error responses are delivered
   to every coalesced waiter without being stored. *)
exception Reply of (int * string * string)

let json_ct = "application/json"
let text_ct = "text/plain; charset=utf-8"

let error_body (e : Error.t) =
  Render.json_object
    [
      ("error", Render.json_string (Error.category e));
      ("message", Render.json_string (Error.message e));
    ]

let error_triple (e : Error.t) =
  let status = if Error.exit_code e = 2 then 400 else 500 in
  (status, json_ct, error_body e)

let fail e = raise (Reply (error_triple e))
let fail_usage msg = fail (Error.usage msg)

(* --- in-flight coalescing ------------------------------------------- *)

type waiter = {
  wm : Mutex.t;
  wc : Condition.t;
  mutable result : (int * string * string) option;
}

let inflight : (string, waiter) Hashtbl.t = Hashtbl.create 16
let inflight_mu = Mutex.create ()

(* Exactly one caller per key runs [compute] (through the memo — so N
   concurrent duplicates cost one memo miss); the rest block on the
   leader's waiter and reuse its result, whatever it was. *)
let coalesced ~key compute =
  let role =
    Mutex.protect inflight_mu (fun () ->
        match Hashtbl.find_opt inflight key with
        | Some w -> `Follow w
        | None ->
            let w = { wm = Mutex.create (); wc = Condition.create (); result = None } in
            Hashtbl.add inflight key w;
            `Lead w)
  in
  match role with
  | `Follow w ->
      Obs.incr c_coalesced;
      Mutex.protect w.wm (fun () ->
          while w.result = None do
            Condition.wait w.wc w.wm
          done;
          Option.get w.result)
  | `Lead w ->
      let finish value =
        Mutex.protect inflight_mu (fun () -> Hashtbl.remove inflight key);
        Mutex.protect w.wm (fun () ->
            w.result <- Some value;
            Condition.broadcast w.wc);
        value
      in
      let value =
        try
          Memo.find_or_add (Lazy.force responses) ~key (fun () ->
              Obs.incr c_computed;
              compute ())
        with
        | Reply r -> r
        | e ->
            Obs.incr c_errors;
            error_triple
              (Error.io (Printf.sprintf "internal error: %s" (Printexc.to_string e)))
      in
      finish value

(* --- request → memo key --------------------------------------------- *)

(* The request shape plus every scenario field that influences response
   bytes; anything else (cache switches, trace, jobs) only affects how
   fast the answer arrives, never what it says. *)
let request_key (c : Config.t) (r : Http.request) =
  let fp = Fingerprint.create () in
  Fingerprint.add_string fp "serve.request";
  Fingerprint.add_string fp r.meth;
  Fingerprint.add_string fp r.path;
  Fingerprint.add_list fp
    (fun fp (k, v) ->
      Fingerprint.add_string fp k;
      Fingerprint.add_string fp v)
    (List.sort compare r.query);
  Fingerprint.add_string fp r.body;
  Fingerprint.add_string fp c.machine.Gpp_arch.Machine.name;
  Fingerprint.add_int64 fp c.seed;
  Fingerprint.add_float fp c.outlier_probability;
  Fingerprint.add_int fp (Option.value c.runs ~default:(-1));
  Fingerprint.add_int fp (Option.value c.iterations ~default:(-1));
  let policy = Option.value c.policy ~default:Gpp_dataflow.Analyzer.default_policy in
  Fingerprint.add_bool fp policy.Gpp_dataflow.Analyzer.sparse_exact;
  Fingerprint.add_string fp (Gpp_dataflow.Analyzer.plan_policy_name policy.plan);
  Fingerprint.add_string fp (Gpp_predict.Predictor.name c.predictor);
  Fingerprint.add_float fp c.predict_lambda;
  Fingerprint.digest fp

(* --- endpoint handlers ----------------------------------------------- *)

(* GET /experiment/ID — exactly the bytes `grophecy experiment ID`
   writes to stdout: Output.render plus the CLI's separating newline. *)
let run_experiment (c : Config.t) id =
  match Gpp_experiments.Suite.find id with
  | None -> fail_usage (Printf.sprintf "unknown experiment id %s (try GET /experiments)" id)
  | Some e ->
      let ctx = Gpp_experiments.Context.create ~machine:c.machine ~seed:c.seed () in
      let out = e.run ctx in
      (200, text_ct, Gpp_experiments.Output.render out ^ "\n")

let split_csv v =
  String.split_on_char ',' v |> List.map String.trim |> List.filter (fun s -> s <> "")

(* GET|POST /batch — the `grophecy batch` TSV for the requested matrix
   (defaults match the CLI: every Table I instance on the scenario's
   machine). *)
let run_batch (c : Config.t) (r : Http.request) =
  let machines =
    match Http.query_param r "machines" with
    | None -> None
    | Some v ->
        Some
          (List.map
             (fun name ->
               match Config.machine_of_name name with
               | Ok m -> m
               | Error msg -> fail (Error.config msg))
             (split_csv v))
  in
  let workloads =
    match Http.query_param r "workloads" with
    | None -> List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.paper_instances
    | Some v -> split_csv v
  in
  let iterations =
    match Http.query_param r "iterations" with
    | None -> [ None ]
    | Some v ->
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some n -> Some n
            | None -> fail_usage (Printf.sprintf "iterations: %S is not an integer" s))
          (split_csv v)
  in
  let batch = Gpp_engine.Batch.run ?machines ~iterations c ~workloads in
  (200, text_ct, Gpp_engine.Batch.to_tsv batch)

(* /project parameters come from the query string and, for POST, a JSON
   object body; body fields win.  Malformed JSON or fields of the wrong
   shape are a structured 400, never a dead server. *)
type project_params = {
  workload : string option;
  machine : Gpp_arch.Machine.t option;
  seed : int64 option;
  iterations : int option;
}

let project_params_of_request (r : Http.request) =
  let machine_of name =
    match Config.machine_of_name name with Ok m -> m | Error msg -> fail (Error.config msg)
  in
  let of_query =
    {
      workload = Http.query_param r "workload";
      machine = Option.map machine_of (Http.query_param r "machine");
      seed =
        Option.map
          (fun s ->
            match Int64.of_string_opt s with
            | Some n -> n
            | None -> fail_usage (Printf.sprintf "seed: %S is not an integer" s))
          (Http.query_param r "seed");
      iterations =
        Option.map
          (fun s ->
            match int_of_string_opt s with
            | Some n -> n
            | None -> fail_usage (Printf.sprintf "iterations: %S is not an integer" s))
          (Http.query_param r "iterations");
    }
  in
  let body = String.trim r.body in
  if body = "" then of_query
  else
    match Validate.parse body with
    | Error msg -> fail_usage (Printf.sprintf "malformed JSON body: %s" msg)
    | Ok (Validate.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            match (k, (v : Validate.json)) with
            | "workload", Str s -> { acc with workload = Some s }
            | "machine", Str s -> { acc with machine = Some (machine_of s) }
            | "seed", Num f when Float.is_integer f -> { acc with seed = Some (Int64.of_float f) }
            | "seed", Str s -> (
                match Int64.of_string_opt s with
                | Some n -> { acc with seed = Some n }
                | None -> fail_usage (Printf.sprintf "seed: %S is not an integer" s))
            | "iterations", Num f when Float.is_integer f ->
                { acc with iterations = Some (int_of_float f) }
            | _ ->
                fail_usage
                  (Printf.sprintf
                     "unknown or ill-typed field %S (expected workload, machine, seed, \
                      iterations)"
                     k))
          of_query fields
    | Ok _ -> fail_usage "JSON body must be an object"

(* GET|POST /project — the `grophecy project` stdout: projection report
   then transfer plan, rendered by the same printers on formatters with
   the CLI's default geometry. *)
let run_project (c : Config.t) (r : Http.request) =
  let p = project_params_of_request r in
  let workload =
    match p.workload with
    | Some w -> w
    | None -> fail_usage "project: missing workload (query param or JSON field)"
  in
  let c =
    {
      c with
      Config.lint = true;
      machine = Option.value p.machine ~default:c.machine;
      seed = Option.value p.seed ~default:c.seed;
      iterations =
        (match p.iterations with Some n -> Some n | None -> Some (Option.value c.iterations ~default:1));
    }
  in
  let session = Gpp_engine.Pipeline.session_of c in
  match Gpp_engine.Pipeline.run ~through:Gpp_engine.Stage.Project ~session c ~workload with
  | Error e -> fail e
  | Ok state ->
      let projection = Gpp_engine.Pipeline.projection_exn state in
      let body =
        Format.asprintf "%a@." Gpp_core.Projection.pp projection
        ^ Format.asprintf "%a@." Gpp_dataflow.Analyzer.pp_plan
            projection.Gpp_core.Projection.plan
      in
      (200, text_ct, body)

let experiments_list () =
  let b = Buffer.create 256 in
  List.iter
    (fun (e : Gpp_experiments.Suite.entry) ->
      Buffer.add_string b (Printf.sprintf "%-26s %s\n" e.id e.title))
    Gpp_experiments.Suite.all;
  (200, text_ct, Buffer.contents b)

(* --- the server ------------------------------------------------------ *)

type t = {
  config : Config.t;
  fd : Unix.file_descr;
  addr : Unix.sockaddr;
  stopping : bool Atomic.t;
  started_us : float;
  served : int Atomic.t;
  mutable accept_thread : Thread.t option;
}

let health t =
  let uptime = (Obs.now_us () -. t.started_us) /. 1e6 in
  ( 200,
    json_ct,
    Render.json_object
      [
        ("status", Render.json_string "ok");
        ("uptime_seconds", Printf.sprintf "%.3f" uptime);
        ("requests", string_of_int (Atomic.get t.served));
      ] )

(* Flat `name value` lines: every non-zero obs counter plus per-table
   cache statistics, dots mapped to underscores, gpp_ prefixed. *)
let metrics () =
  let b = Buffer.create 512 in
  let line name v =
    let name = String.map (fun ch -> if ch = '.' || ch = '-' then '_' else ch) name in
    Buffer.add_string b (Printf.sprintf "gpp_%s %d\n" name v)
  in
  List.iter (fun (name, v) -> line name v) (Obs.counters ());
  List.iter
    (fun (s : Memo.snapshot) ->
      line (Printf.sprintf "cache.%s.hits" s.name) s.hits;
      line (Printf.sprintf "cache.%s.misses" s.name) s.misses;
      line (Printf.sprintf "cache.%s.entries" s.name) s.entries)
    (Memo.snapshots ());
  line "cache.dirty_entries" (Memo.dirty_entries ());
  (200, text_ct, Buffer.contents b)

let respond_memo t (r : Http.request) compute =
  let key = request_key t.config r in
  coalesced ~key compute

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let handle_request t (r : Http.request) =
  let c = t.config in
  match (r.meth, r.path) with
  | "GET", "/healthz" -> health t
  | "GET", "/metrics" -> metrics ()
  | "GET", "/experiments" -> experiments_list ()
  | ("GET" | "POST"), "/batch" -> respond_memo t r (fun () -> run_batch c r)
  | ("GET" | "POST"), "/project" -> respond_memo t r (fun () -> run_project c r)
  | "GET", path when starts_with ~prefix:"/experiment/" path ->
      let id = String.sub path 12 (String.length path - 12) in
      respond_memo t r (fun () -> run_experiment c id)
  | meth, ("/healthz" | "/metrics" | "/experiments") ->
      (405, json_ct, error_body (Error.usage (Printf.sprintf "%s not allowed here" meth)))
  | _, path ->
      ( 404,
        json_ct,
        error_body
          (Error.usage
             (Printf.sprintf
                "no route %s (try /healthz, /metrics, /experiments, /experiment/ID, /batch, \
                 /project)"
                path)) )

(* Incremental durability: flush the disk tier every flush_every-th
   request (or sooner under heavy mutation), so a killed server loses a
   bounded amount of memoized work. *)
let maybe_flush t =
  let n = Atomic.fetch_and_add t.served 1 + 1 in
  if n mod t.config.Config.flush_every = 0 || Memo.dirty_entries () >= 512 then begin
    Memo.flush_disk ();
    Obs.incr c_flushes
  end

let response_of_triple (status, content_type, body) : Http.response =
  { Http.status; content_type; body }

let handle_conn t fd =
  let rec loop () =
    match Http.read_request fd with
    | Ok None -> ()
    | Error msg ->
        Obs.incr c_errors;
        Http.write_response fd ~keep_alive:false
          (response_of_triple (400, json_ct, error_body (Error.usage msg)))
    | Ok (Some req) ->
        Obs.incr c_requests;
        let resp =
          try handle_request t req with
          | Reply triple -> triple
          | Http.Closed as e -> raise e
          | e ->
              Obs.incr c_errors;
              error_triple
                (Error.io (Printf.sprintf "internal error: %s" (Printexc.to_string e)))
        in
        maybe_flush t;
        let keep_alive = Http.wants_keep_alive req in
        Http.write_response fd ~keep_alive (response_of_triple resp);
        if keep_alive then loop ()
  in
  (try loop () with
  | Http.Closed -> Obs.incr c_broken_pipe
  | _ -> Obs.incr c_errors);
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let rec accept_loop t =
  if not (Atomic.get t.stopping) then
    match Unix.accept t.fd with
    | conn, _peer ->
        Obs.incr c_connections;
        ignore (Thread.create (fun () -> handle_conn t conn) ());
        accept_loop t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop t
    | exception Unix.Unix_error (_, _, _) ->
        (* closed listener (stop), or a fatal accept error: either way
           the accept loop is done. *)
        ()

(* --- address parsing -------------------------------------------------- *)

let parse_listen s =
  let config_err fmt = Printf.ksprintf (fun m -> Error (Error.config ~source:"listen" m)) fmt in
  if starts_with ~prefix:"unix:" s then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then config_err "listen = %S: empty socket path" s
    else Ok (Unix.ADDR_UNIX path)
  end
  else
    match String.rindex_opt s ':' with
    | None -> config_err "listen = %S: expected HOST:PORT or unix:PATH" s
    | Some i -> (
        let host = String.sub s 0 i in
        let port_s = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port_s with
        | Some port when port >= 0 && port <= 65535 -> (
            let host = if host = "" then "127.0.0.1" else host in
            match Unix.inet_addr_of_string host with
            | addr -> Ok (Unix.ADDR_INET (addr, port))
            | exception Failure _ -> (
                match Unix.gethostbyname host with
                | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                    config_err "listen = %S: unknown host %S" s host
                | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))))
        | Some port -> config_err "listen = %S: port %d out of range" s port
        | None -> config_err "listen = %S: malformed port %S" s port_s)

let render_addr = function
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

(* --- lifecycle -------------------------------------------------------- *)

let start (c : Config.t) =
  match parse_listen c.Config.listen with
  | Error e -> Error e
  | Ok sockaddr -> (
      Gpp_engine.Runtime.ignore_sigpipe ();
      (* Counters feed /healthz and /metrics; enabling the obs layer
         writes nothing to stdout, so response bytes are unaffected. *)
      Obs.set_enabled true;
      ignore (Lazy.force responses);
      Memo.load_disk ();
      (match sockaddr with
      | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
      | Unix.ADDR_INET (_, _) -> ());
      let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
      (match sockaddr with
      | Unix.ADDR_INET (_, _) -> Unix.setsockopt fd Unix.SO_REUSEADDR true
      | Unix.ADDR_UNIX _ -> ());
      match Unix.bind fd sockaddr with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Error
            (Error.config ~source:"listen"
               (Printf.sprintf "cannot bind %s: %s" c.Config.listen (Unix.error_message err)))
      | () ->
          Unix.listen fd 64;
          let t =
            {
              config = c;
              fd;
              addr = Unix.getsockname fd;
              stopping = Atomic.make false;
              started_us = Obs.now_us ();
              served = Atomic.make 0;
              accept_thread = None;
            }
          in
          t.accept_thread <- Some (Thread.create accept_loop t);
          Ok t)

let address t = render_addr t.addr

let port t = match t.addr with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

let wait t = match t.accept_thread with Some th -> Thread.join th | None -> ()

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
    wait t;
    (match t.addr with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    | Unix.ADDR_INET (_, _) -> ());
    Memo.flush_disk ()
  end

(* --- in-process client ------------------------------------------------ *)

let request t ?meth ?body target =
  let fd = Unix.socket (Unix.domain_of_sockaddr t.addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      match Unix.connect fd t.addr with
      | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "connect %s: %s" (render_addr t.addr) (Unix.error_message err))
      | () -> ( try Http.request_fd fd ?meth ?body target with Http.Closed -> Error "connection closed"))
