(** [grophecy serve] — the prediction pipeline as a long-running service.

    One process binds a TCP or Unix-domain socket, keeps the calibrated
    sessions' memo tables and the persistent disk tier warm, and answers
    HTTP/1.1 requests whose bodies are byte-equivalent to the
    corresponding CLI output — the committed CLI goldens double as
    server goldens:

    - [GET /healthz] — liveness JSON (status, uptime, request count).
    - [GET /metrics] — [lib/obs] counters and cache-table statistics as
      plain [name value] lines.
    - [GET /experiments] — available experiment ids, one per line.
    - [GET /experiment/ID] — exactly what [grophecy experiment ID]
      writes to stdout (e.g. [/experiment/fig5] reproduces the fig5
      golden byte-for-byte).
    - [GET|POST /batch?machines=a,b&workloads=k1,k2&iterations=n1,n2] —
      the [grophecy batch] TSV for that matrix.
    - [GET /project?workload=app/size] or [POST /project] with a JSON
      body [{"workload": K, "machine": M, "seed": N, "iterations": N}] —
      the [grophecy project] report.

    Responses to the expensive endpoints are memoized in a persistent
    table ([serve.responses]) keyed by the same structural fingerprints
    the engine's memo tables use (request shape + the scenario fields
    that influence output), and identical in-flight requests coalesce
    onto one computation: N concurrent duplicates cost exactly one memo
    miss.  The disk tier is flushed incrementally every
    [Config.flush_every] requests, so killing the server loses at most
    that many requests' worth of memoized work.

    Structured pipeline errors become JSON bodies
    [{"error": category, "message": ...}] with status 400 (parse,
    config, usage — exit code 2 at the CLI) or 500 (everything else);
    a malformed HTTP request gets a 400 and the connection is closed; a
    peer that hangs up mid-response is counted
    ([serve.broken_pipe]) and only that connection dies. *)

type t

val start : Gpp_engine.Config.t -> (t, Gpp_engine.Error.t) result
(** Bind [config.listen] ([HOST:PORT], port [0] = pick a free one, or
    [unix:PATH]), load the persistent cache tier, and start accepting
    connections (one lightweight thread per connection).  Enables the
    [lib/obs] counter layer so [/metrics] has data.  Errors (unparsable
    address, bind failure) are {!Gpp_engine.Error.Config}. *)

val address : t -> string
(** The actual bound address, e.g. ["127.0.0.1:45123"] after binding
    port 0, or ["unix:/tmp/grophecy.sock"]. *)

val port : t -> int option
(** TCP port actually bound; [None] for Unix-domain sockets. *)

val wait : t -> unit
(** Block until the server is stopped (joins the accept loop). *)

val stop : t -> unit
(** Stop accepting, close the listening socket, and flush the
    persistent cache tier.  Idempotent.  In-flight connection threads
    finish their current response and exit on their own. *)

val request :
  t ->
  ?meth:string ->
  ?body:string ->
  string ->
  (int * (string * string) list * string, string) result
(** In-process client for tests and benchmarks: open a connection to
    the server's own address, perform one request for [target] (path +
    optional query string, already percent-encoded), and return
    (status, headers, body). *)
