(** Minimal self-contained HTTP/1.1 layer for the prediction service.

    Exactly what [grophecy serve] needs and nothing more: blocking
    request parsing off a connected socket (request line, headers,
    [Content-Length] bodies), percent-decoding for targets (workload
    keys contain spaces and slashes), and a response writer that maps a
    hung-up peer to the {!Closed} exception so the server closes that
    connection instead of dying.  No external dependencies, in the
    spirit of the in-house sexp and Chrome-trace layers.

    A tiny blocking client ({!request_fd}) backs the tests and the
    bench harness. *)

exception Closed
(** Writing to (or reading from) a peer that hung up.  Per-connection
    condition, never fatal to the server. *)

type request = {
  meth : string;  (** Verb, uppercased ([GET], [POST], ...). *)
  path : string;  (** Percent-decoded path, no query string. *)
  query : (string * string) list;  (** Decoded key/value pairs, in order. *)
  headers : (string * string) list;  (** Names lowercased, values trimmed. *)
  body : string;  (** [Content-Length] bytes ([""] when absent). *)
}

val query_param : request -> string -> string option
(** First value of a query key. *)

val header : request -> string -> string option
(** Header value by (case-insensitive) name. *)

val wants_keep_alive : request -> bool
(** HTTP/1.1 default keep-alive unless [Connection: close]. *)

val read_request :
  Unix.file_descr -> (request option, string) result
(** Parse one request off [fd].  [Ok None] — the peer closed cleanly
    between requests; [Error msg] — malformed or oversized input (the
    connection should get a 400 and close); raises {!Closed} if the
    peer vanishes mid-request. *)

val percent_decode : string -> string
(** RFC 3986 percent-decoding, plus [+] → space (form/query style).
    Malformed escapes are kept verbatim. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

val response : ?content_type:string -> int -> string -> response
(** [response status body] with [content_type] defaulting to
    [text/plain; charset=utf-8]. *)

val status_text : int -> string

val write_response :
  Unix.file_descr -> keep_alive:bool -> response -> unit
(** Serialise and send; raises {!Closed} if the peer hung up. *)

val request_fd :
  Unix.file_descr ->
  ?meth:string ->
  ?body:string ->
  string ->
  (int * (string * string) list * string, string) result
(** Blocking test/bench client: send [meth] (default [GET]) for
    [target] over the connected [fd] with [Connection: close], read the
    full response, return (status, headers, body). *)
