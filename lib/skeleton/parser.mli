(** Textual code-skeleton format.

    Lets users describe kernels in a small declarative language instead
    of building the IR programmatically — the file-format equivalent of
    the paper's "code skeleton" input.  Example:

    {v
    # 5-point blur over an image
    program blur

    array src dense 1024 1024
    array dst dense 1024 1024

    kernel blur
      loop y parallel 1024
      loop x parallel 1024
      load src [y, x]
      load src [y-1, x]
      load src [y+1, x]
      load src [y, x-1]
      load src [y, x+1]
      compute flops 5 int 2
      store dst [y, x]
    end

    schedule
      repeat 10 {
        call blur
      }
    end
    v}

    Syntax summary (one construct per line, [#] comments):
    - [program NAME]
    - [array NAME dense D1 D2 ... \[elem BYTES\]]
    - [array NAME sparse \[nnz N\] D1 ... \[elem BYTES\]]
    - [temporary NAME ...] — the §III-B user hints
    - [kernel NAME ... end] containing, in order:
      {ul
      {- [loop VAR parallel|serial EXTENT]}
      {- statements: [load ARR \[E, E\]], [store ARR \[E, E\]],
         [load ARR via IDX \[E\]] (indirect; the offset list is
         optional), [compute \[flops F\] \[int I\] \[heavy H\]],
         [branch P \[uniform\] { ... }]}}
    - [schedule ... end] containing [call NAME] and
      [repeat N { ... }]

    Index expressions are affine: [i], [2*i], [i+1], [y-1], [3],
    [i*4+j]. *)

val parse : ?path:string -> string -> (Program.t, string) result
(** Parse a skeleton source text.  The resulting program is validated;
    errors carry 1-based line numbers, prefixed with [path] when given
    so multi-file tooling (the linter, CI) can point at the source.
    Duplicate kernel or array names are rejected at parse time. *)

val parse_file : string -> (Program.t, string) result
(** Read and {!parse} a file; parse and validation errors are prefixed
    with the file path. *)
