exception Parse_error of string

let errf num fmt = Format.kasprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" num s))) fmt

type line = { num : int; tokens : string list }

(* Pad structural punctuation with spaces so it tokenizes regardless of
   the author's spacing, then split on whitespace. *)
let tokenize_line num raw =
  let without_comment =
    match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
  in
  let buf = Buffer.create (String.length without_comment + 8) in
  String.iter
    (fun c ->
      match c with
      | '[' | ']' | '{' | '}' | ',' ->
          Buffer.add_char buf ' ';
          Buffer.add_char buf c;
          Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    without_comment;
  let tokens =
    String.split_on_char ' ' (Buffer.contents buf)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  { num; tokens }

let tokenize source =
  String.split_on_char '\n' source
  |> List.mapi (fun i raw -> tokenize_line (i + 1) raw)
  |> List.filter (fun l -> l.tokens <> [])

(* Affine index expressions: [-]TERM {(+|-) TERM} with
   TERM = INT | INT*VAR | VAR | VAR*INT.  Parsed from the token list of
   one comma-separated field, joined without spaces. *)
let parse_expr num text =
  let n = String.length text in
  if n = 0 then errf num "empty index expression";
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || is_digit c in
  let read_int () =
    let start = !pos in
    while !pos < n && is_digit text.[!pos] do
      incr pos
    done;
    if !pos = start then errf num "expected a number in %S" text
    else int_of_string (String.sub text start (!pos - start))
  in
  let read_ident () =
    let start = !pos in
    while !pos < n && is_ident text.[!pos] do
      incr pos
    done;
    if !pos = start then errf num "expected a variable in %S" text
    else String.sub text start (!pos - start)
  in
  let read_term sign =
    match peek () with
    | Some c when is_digit c ->
        let k = read_int () in
        if peek () = Some '*' then begin
          incr pos;
          let v = read_ident () in
          Index_expr.var ~coeff:(sign * k) v
        end
        else Index_expr.const (sign * k)
    | Some c when is_ident c ->
        let v = read_ident () in
        if peek () = Some '*' then begin
          incr pos;
          let k = read_int () in
          Index_expr.var ~coeff:(sign * k) v
        end
        else Index_expr.var ~coeff:sign v
    | Some c -> errf num "unexpected %C in index expression %S" c text
    | None -> errf num "truncated index expression %S" text
  in
  let first_sign =
    match peek () with
    | Some '-' ->
        incr pos;
        -1
    | Some '+' ->
        incr pos;
        1
    | _ -> 1
  in
  let expr = ref (read_term first_sign) in
  let continue = ref true in
  while !continue do
    match peek () with
    | Some '+' ->
        incr pos;
        expr := Index_expr.add !expr (read_term 1)
    | Some '-' ->
        incr pos;
        expr := Index_expr.add !expr (read_term (-1))
    | Some c -> errf num "unexpected %C in index expression %S" c text
    | None -> continue := false
  done;
  !expr

(* Split the token stream of a bracketed index list into expressions:
   tokens between "[" and "]" separated by ",", each field's tokens
   concatenated (so "i + 1" and "i+1" both work). *)
let parse_index_list num tokens =
  let rec fields acc current = function
    | [] -> errf num "missing closing ']'"
    | "]" :: rest ->
        let acc = if current = [] then acc else List.rev current :: acc in
        (List.rev acc, rest)
    | "," :: rest ->
        if current = [] then errf num "empty index field";
        fields (List.rev current :: acc) [] rest
    | tok :: rest -> fields acc (tok :: current) rest
  in
  match tokens with
  | "[" :: rest ->
      let fs, remaining = fields [] [] rest in
      (List.map (fun toks -> parse_expr num (String.concat "" toks)) fs, remaining)
  | _ -> errf num "expected '['"

let parse_float num tok =
  match float_of_string_opt tok with Some f -> f | None -> errf num "expected a number, got %S" tok

let parse_int num tok =
  match int_of_string_opt tok with Some i -> i | None -> errf num "expected an integer, got %S" tok

(* Statements, recursively over lines (branch blocks nest). *)
let rec parse_stmts lines ~terminator num_start =
  let rec go acc = function
    | [] -> errf num_start "missing %s" terminator
    | ({ num; tokens } : line) :: rest -> (
        match tokens with
        | [ t ] when t = terminator -> (List.rev acc, rest)
        | "load" :: name :: "via" :: idx :: more ->
            let offset, leftover =
              if more = [] then ([], []) else parse_index_list num more
            in
            if leftover <> [] then errf num "trailing tokens after indirect load";
            go (Ir.load_indirect ~offset name ~via:idx :: acc) rest
        | "store" :: name :: "via" :: idx :: more ->
            let offset, leftover =
              if more = [] then ([], []) else parse_index_list num more
            in
            if leftover <> [] then errf num "trailing tokens after indirect store";
            go (Ir.store_indirect ~offset name ~via:idx :: acc) rest
        | "load" :: name :: more ->
            let indices, leftover = parse_index_list num more in
            if leftover <> [] then errf num "trailing tokens after load";
            go (Ir.load name indices :: acc) rest
        | "store" :: name :: more ->
            let indices, leftover = parse_index_list num more in
            if leftover <> [] then errf num "trailing tokens after store";
            go (Ir.store name indices :: acc) rest
        | "compute" :: more ->
            let rec fields flops int_ops heavy = function
              | [] -> (flops, int_ops, heavy)
              | "flops" :: v :: rest -> fields (parse_float num v) int_ops heavy rest
              | "int" :: v :: rest -> fields flops (parse_float num v) heavy rest
              | "heavy" :: v :: rest -> fields flops int_ops (parse_float num v) rest
              | tok :: _ -> errf num "unexpected %S in compute (want flops/int/heavy N)" tok
            in
            let flops, int_ops, heavy_ops = fields 0.0 0.0 0.0 more in
            go (Ir.compute ~int_ops ~heavy_ops flops :: acc) rest
        | "branch" :: p :: more ->
            let probability = parse_float num p in
            let divergent, more =
              match more with "uniform" :: rest -> (false, rest) | rest -> (true, rest)
            in
            if more <> [ "{" ] then errf num "expected '{' to open the branch body";
            let body, remaining = parse_stmts rest ~terminator:"}" num in
            go (Ir.branch ~divergent ~probability body :: acc) remaining
        | tok :: _ -> errf num "unknown statement %S" tok
        | [] -> go acc rest)
  in
  go [] lines

let parse_kernel name lines num_start =
  let rec loops acc = function
    | ({ num; tokens } : line) :: rest -> (
        match tokens with
        | [ "loop"; var; kind; extent ] ->
            let parallel =
              match kind with
              | "parallel" -> true
              | "serial" -> false
              | k -> errf num "loop kind must be parallel or serial, got %S" k
            in
            loops (Ir.loop ~parallel var ~extent:(parse_int num extent) :: acc) rest
        | _ -> (List.rev acc, { num; tokens } :: rest))
    | [] -> (List.rev acc, [])
  in
  let loop_list, rest = loops [] lines in
  let body, remaining = parse_stmts rest ~terminator:"end" num_start in
  (Ir.kernel name ~loops:loop_list ~body, remaining)

let rec parse_invocations lines ~terminator num_start =
  let rec go acc = function
    | [] -> errf num_start "missing %s in schedule" terminator
    | ({ num; tokens } : line) :: rest -> (
        match tokens with
        | [ t ] when t = terminator -> (List.rev acc, rest)
        | [ "call"; name ] -> go (Program.Call name :: acc) rest
        | [ "repeat"; n; "{" ] ->
            let body, remaining = parse_invocations rest ~terminator:"}" num in
            go (Program.Repeat (parse_int num n, body) :: acc) remaining
        | tok :: _ -> errf num "unknown schedule entry %S" tok
        | [] -> go acc rest)
  in
  go [] lines

let parse_array num tokens =
  match tokens with
  | name :: kind :: rest ->
      let dims = ref [] and elem = ref 4 and nnz = ref None in
      let rec scan = function
        | [] -> ()
        | "elem" :: v :: rest ->
            elem := parse_int num v;
            scan rest
        | "nnz" :: v :: rest ->
            nnz := Some (parse_int num v);
            scan rest
        | tok :: rest ->
            dims := parse_int num tok :: !dims;
            scan rest
      in
      scan rest;
      let dims = List.rev !dims in
      if dims = [] then errf num "array %s has no dimensions" name;
      (match kind with
      | "dense" -> Decl.dense ~elem_bytes:!elem name ~dims
      | "sparse" -> Decl.sparse ~elem_bytes:!elem ?nnz:!nnz name ~dims
      | k -> errf num "array kind must be dense or sparse, got %S" k)
  | _ -> errf num "array declaration needs a name and a kind"

let parse ?path source =
  (* Prefix parse *and* validation errors with the source file path, so
     a message like "line 12: ..." still identifies which of several
     linted files it came from. *)
  let locate msg = match path with Some p -> p ^ ": " ^ msg | None -> msg in
  try
    let lines = tokenize source in
    let name = ref None in
    let arrays = ref [] in
    let temporaries = ref [] in
    let kernels = ref [] in
    let schedule = ref None in
    let rec toplevel = function
      | [] -> ()
      | ({ num; tokens } : line) :: rest -> (
          match tokens with
          | [ "program"; n ] ->
              if !name <> None then errf num "duplicate program declaration";
              name := Some n;
              toplevel rest
          | "array" :: more ->
              let decl = parse_array num more in
              if List.exists (fun (d : Decl.t) -> d.name = decl.Decl.name) !arrays then
                errf num "duplicate array name %s" decl.Decl.name;
              arrays := decl :: !arrays;
              toplevel rest
          | "temporary" :: names when names <> [] ->
              temporaries := !temporaries @ names;
              toplevel rest
          | [ "kernel"; kname ] ->
              if List.exists (fun (k : Ir.kernel) -> k.Ir.name = kname) !kernels then
                errf num "duplicate kernel name %s" kname;
              let kernel, remaining = parse_kernel kname rest num in
              kernels := kernel :: !kernels;
              toplevel remaining
          | [ "schedule" ] ->
              if !schedule <> None then errf num "duplicate schedule";
              let invocations, remaining = parse_invocations rest ~terminator:"end" num in
              schedule := Some invocations;
              toplevel remaining
          | tok :: _ -> errf num "unknown declaration %S" tok
          | [] -> toplevel rest)
    in
    toplevel lines;
    let name = match !name with Some n -> n | None -> raise (Parse_error "missing 'program NAME'") in
    let schedule =
      match !schedule with
      | Some s -> s
      | None -> raise (Parse_error "missing 'schedule ... end' block")
    in
    let program =
      Program.create ~temporaries:!temporaries ~name ~arrays:(List.rev !arrays)
        ~kernels:(List.rev !kernels) ~schedule ()
    in
    match Program.validate program with Ok () -> Ok program | Error e -> Error (locate e)
  with Parse_error msg -> Error (locate msg)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse ~path source
  | exception Sys_error e -> Error e
