type access = Load | Store

type pattern =
  | Affine of Index_expr.t list
  | Indirect of { index_array : string; offset : Index_expr.t list }

type array_ref = { array : string; access : access; pattern : pattern }

type stmt =
  | Ref of array_ref
  | Compute of { flops : float; int_ops : float; heavy_ops : float }
  | Branch of { probability : float; divergent : bool; body : stmt list }

type loop = { var : string; extent : int; parallel : bool }

type kernel = { name : string; loops : loop list; body : stmt list }

let loop ?(parallel = true) var ~extent = { var; extent; parallel }

let load array indices = Ref { array; access = Load; pattern = Affine indices }

let store array indices = Ref { array; access = Store; pattern = Affine indices }

let load_indirect ?(offset = []) array ~via =
  Ref { array; access = Load; pattern = Indirect { index_array = via; offset } }

let store_indirect ?(offset = []) array ~via =
  Ref { array; access = Store; pattern = Indirect { index_array = via; offset } }

let compute ?(int_ops = 0.0) ?(heavy_ops = 0.0) flops = Compute { flops; int_ops; heavy_ops }

let branch ?(divergent = true) ~probability body = Branch { probability; divergent; body }

let kernel name ~loops ~body = { name; loops; body }

let trip_count k = List.fold_left (fun acc l -> acc * l.extent) 1 k.loops

let parallel_iterations k =
  List.fold_left (fun acc l -> if l.parallel then acc * l.extent else acc) 1 k.loops

let loop_bounds k var =
  match List.find_opt (fun l -> l.var = var) k.loops with
  | Some l -> (0, l.extent - 1)
  | None -> raise Not_found

let fold_refs k ~init ~f =
  let rec go acc weight stmts =
    List.fold_left
      (fun acc stmt ->
        match stmt with
        | Ref r -> f acc ~weight r
        | Compute _ -> acc
        | Branch { probability; body; _ } -> go acc (weight *. probability) body)
      acc stmts
  in
  go init 1.0 k.body

let refs k =
  List.rev (fold_refs k ~init:[] ~f:(fun acc ~weight r -> (weight, r) :: acc))

module F = Gpp_cache.Fingerprint

let add_ref_fingerprint fp r =
  F.add_string fp (match r.access with Load -> "load" | Store -> "store");
  F.add_string fp r.array;
  let add_exprs fp = F.add_list fp (fun fp e -> F.add_string fp (Index_expr.to_string e)) in
  match r.pattern with
  | Affine indices ->
      F.add_string fp "affine";
      add_exprs fp indices
  | Indirect { index_array; offset } ->
      F.add_string fp "indirect";
      F.add_string fp index_array;
      add_exprs fp offset

let rec add_stmt_fingerprint fp = function
  | Ref r -> add_ref_fingerprint fp r
  | Compute { flops; int_ops; heavy_ops } ->
      F.add_string fp "compute";
      F.add_float fp flops;
      F.add_float fp int_ops;
      F.add_float fp heavy_ops
  | Branch { probability; divergent; body } ->
      F.add_string fp "branch";
      F.add_float fp probability;
      F.add_bool fp divergent;
      F.add_list fp add_stmt_fingerprint body

let add_fingerprint fp k =
  F.add_string fp "kernel";
  F.add_string fp k.name;
  F.add_list fp
    (fun fp l ->
      F.add_string fp l.var;
      F.add_int fp l.extent;
      F.add_bool fp l.parallel)
    k.loops;
  F.add_list fp add_stmt_fingerprint k.body

let fingerprint k = F.of_value add_fingerprint k

let validate ~decls k =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "kernel %s: %s" k.name s)) fmt in
  let find_decl name = List.find_opt (fun (d : Decl.t) -> d.name = name) decls in
  let* () = if k.loops = [] then err "empty loop nest" else Ok () in
  let* () = if k.body = [] then err "empty body" else Ok () in
  let* () =
    match List.find_opt (fun l -> l.extent <= 0) k.loops with
    | Some l -> err "loop %s has non-positive extent %d" l.var l.extent
    | None -> Ok ()
  in
  let loop_vars = List.map (fun l -> l.var) k.loops in
  let* () =
    if List.length (List.sort_uniq String.compare loop_vars) <> List.length loop_vars then
      err "duplicate loop variables"
    else Ok ()
  in
  let check_ref r =
    match find_decl r.array with
    | None -> err "reference to undeclared array %s" r.array
    | Some d -> (
        match r.pattern with
        | Affine indices ->
            if List.length indices <> List.length d.dims then
              err "array %s: %d subscripts for %d dimensions" r.array (List.length indices)
                (List.length d.dims)
            else
              let free =
                List.concat_map Index_expr.vars indices
                |> List.filter (fun v -> not (List.mem v loop_vars))
              in
              (match free with
              | [] -> Ok ()
              | v :: _ -> err "array %s subscript uses unbound variable %s" r.array v)
        | Indirect { index_array; offset } -> (
            match find_decl index_array with
            | None -> err "indirect access via undeclared array %s" index_array
            | Some _ -> (
                let free =
                  List.concat_map Index_expr.vars offset
                  |> List.filter (fun v -> not (List.mem v loop_vars))
                in
                match free with
                | [] -> Ok ()
                | v :: _ -> err "array %s indirect offset uses unbound variable %s" r.array v)))
  in
  let rec check_stmts stmts =
    List.fold_left
      (fun acc stmt ->
        let* () = acc in
        match stmt with
        | Ref r -> check_ref r
        | Compute { flops; int_ops; heavy_ops } ->
            if flops < 0.0 || int_ops < 0.0 || heavy_ops < 0.0 then
              err "negative operation count"
            else Ok ()
        | Branch { probability; body; _ } ->
            if probability < 0.0 || probability > 1.0 then
              err "branch probability %g outside [0, 1]" probability
            else check_stmts body)
      (Ok ()) stmts
  in
  check_stmts k.body

let pp_access ppf = function
  | Load -> Format.pp_print_string ppf "load"
  | Store -> Format.pp_print_string ppf "store"

let pp_ref ppf r =
  match r.pattern with
  | Affine indices ->
      Format.fprintf ppf "%a %s[%s]" pp_access r.access r.array
        (String.concat "][" (List.map Index_expr.to_string indices))
  | Indirect { index_array; offset } ->
      let offset_str =
        match offset with
        | [] -> ""
        | _ :: _ -> "][" ^ String.concat "][" (List.map Index_expr.to_string offset)
      in
      Format.fprintf ppf "%a %s[<%s>%s]" pp_access r.access r.array index_array offset_str

let rec pp_stmt indent ppf = function
  | Ref r -> Format.fprintf ppf "%s%a@," indent pp_ref r
  | Compute { flops; int_ops; heavy_ops } ->
      Format.fprintf ppf "%scompute %g flops, %g int ops, %g heavy ops@," indent flops int_ops
        heavy_ops
  | Branch { probability; divergent; body } ->
      Format.fprintf ppf "%sif (p=%g%s) {@," indent probability
        (if divergent then ", divergent" else "");
      List.iter (pp_stmt (indent ^ "  ") ppf) body;
      Format.fprintf ppf "%s}@," indent

let pp_kernel ppf k =
  Format.fprintf ppf "@[<v>kernel %s:@," k.name;
  List.iteri
    (fun i l ->
      Format.fprintf ppf "%sfor %s in 0..%d%s:@,"
        (String.make (2 * i) ' ')
        l.var (l.extent - 1)
        (if l.parallel then " (parallel)" else ""))
    k.loops;
  let indent = String.make (2 * List.length k.loops) ' ' in
  List.iter (pp_stmt indent ppf) k.body;
  Format.fprintf ppf "@]"
