(** Program skeletons: a set of kernels plus an invocation schedule.

    The data usage analyzer reasons about the dataflow among multiple
    kernels (paper §III-B): data produced by one kernel and consumed by
    the next stays on the GPU, and iterative applications transfer a
    fixed amount of data regardless of the iteration count (§IV-B). *)

type invocation =
  | Call of string  (** Invoke a kernel once, by name. *)
  | Repeat of int * invocation list
      (** Invoke a sub-schedule a number of times (iterative solvers). *)

type t = {
  name : string;
  arrays : Decl.t list;
  kernels : Ir.kernel list;
  schedule : invocation list;
  temporaries : string list;
      (** User hints (§III-B): arrays written on the GPU that the CPU
          never needs back, so they are not transferred out. *)
}

val create :
  ?temporaries:string list ->
  name:string ->
  arrays:Decl.t list ->
  kernels:Ir.kernel list ->
  schedule:invocation list ->
  unit ->
  t

val find_kernel : t -> string -> Ir.kernel option

val kernel_exn : t -> string -> Ir.kernel
(** @raise Not_found when the kernel is not defined. *)

val flatten_schedule : t -> string list
(** Fully unrolled invocation sequence (kernel names in execution
    order).  [Repeat] nodes are expanded. *)

val invocation_count : t -> int
(** Length of {!flatten_schedule} without materializing it. *)

val with_iterations : t -> int -> t
(** [with_iterations t n] rescales every [Repeat] node's count by
    replacing it with [n].  This matches the paper's iteration sweeps
    (Figures 8, 10, 12), where each application has a single iteration
    dimension.  Programs without a [Repeat] node are returned
    unchanged.  @raise Invalid_argument if [n < 1]. *)

val add_fingerprint : Gpp_cache.Fingerprint.t -> t -> unit
(** Feed arrays, kernels, schedule, and temporaries into a digest. *)

val fingerprint : t -> string
(** Stable structural digest of the whole program; equal for separately
    constructed but structurally identical programs. *)

val validate : t -> (unit, string) result
(** All kernels valid w.r.t. the declared arrays, kernel names unique,
    schedule references defined kernels, repeat counts positive,
    temporaries declared, and the schedule is non-empty. *)

val pp : Format.formatter -> t -> unit
