(** Kernel-level intermediate representation of a code skeleton.

    A skeleton summarizes the high-level semantics of a CPU kernel —
    loops, parallelism, computational intensity, and data access
    patterns (paper §II-C) — without any executable code.  GROPHECY
    explores GPU transformations of this IR; the data usage analyzer
    extracts array sections from it. *)

type access = Load | Store

type pattern =
  | Affine of Index_expr.t list
      (** One affine subscript per array dimension, outermost first. *)
  | Indirect of { index_array : string; offset : Index_expr.t list }
      (** Access through an index array.  [offset] is the affine part of
          the subscript {e within} the indirectly selected base — empty
          for a pure gather ([a\[nb\[i\]\]], every lane lands somewhere
          unrelated), or e.g. [\[j\]] for an indexed-row access
          ([a\[col\[k\]\]\[j\]], coalesced along [j]).  Either way the
          accessed section is statically unknown and the data usage
          analyzer treats the target array conservatively (§III-B);
          only the coalescing analysis consults [offset]. *)

type array_ref = {
  array : string;  (** Declared array being accessed. *)
  access : access;
  pattern : pattern;
}

type stmt =
  | Ref of array_ref  (** One array access per innermost iteration. *)
  | Compute of { flops : float; int_ops : float; heavy_ops : float }
      (** Arithmetic per innermost iteration.  Fractional values express
          amortized work (e.g. one operation every other iteration).
          [heavy_ops] counts long-latency operations — divides, square
          roots, transcendentals — which cost far more than a fused
          multiply-add on both architectures, and asymmetrically so
          (CPUs lack a fast SFU path). *)
  | Branch of { probability : float; divergent : bool; body : stmt list }
      (** Conditional execution: [body] runs with the given probability
          per iteration.  [divergent] marks data-dependent conditions
          that split GPU warps. *)

type loop = {
  var : string;  (** Loop variable, unique within a kernel. *)
  extent : int;  (** Iteration count; the variable ranges over
                     [0 .. extent-1] with unit stride. *)
  parallel : bool;  (** Whether iterations are independent (mappable to
                        GPU threads / OpenMP). *)
}

type kernel = {
  name : string;
  loops : loop list;  (** Loop nest, outermost first. *)
  body : stmt list;  (** Statements of the innermost loop body. *)
}

val loop : ?parallel:bool -> string -> extent:int -> loop
(** [parallel] defaults to [true]. *)

val load : string -> Index_expr.t list -> stmt

val store : string -> Index_expr.t list -> stmt

val load_indirect : ?offset:Index_expr.t list -> string -> via:string -> stmt
(** [load_indirect a ~via:idx] is a load of [a] subscripted by values
    read from [idx]; [offset] (default [\[\]]) is the affine
    within-base part. *)

val store_indirect : ?offset:Index_expr.t list -> string -> via:string -> stmt

val compute : ?int_ops:float -> ?heavy_ops:float -> float -> stmt
(** [compute flops] with optional integer-operation and heavy-operation
    counts (both default 0). *)

val branch : ?divergent:bool -> probability:float -> stmt list -> stmt
(** [divergent] defaults to [true] (the conservative assumption for
    data-dependent branches). *)

val kernel : string -> loops:loop list -> body:stmt list -> kernel

val trip_count : kernel -> int
(** Product of all loop extents: total innermost iterations. *)

val parallel_iterations : kernel -> int
(** Product of the parallel loop extents: exploitable data
    parallelism. *)

val loop_bounds : kernel -> string -> int * int
(** Inclusive value range of a loop variable.
    @raise Not_found for an unbound variable. *)

val fold_refs :
  kernel -> init:'a -> f:('a -> weight:float -> array_ref -> 'a) -> 'a
(** Fold over every array reference in the body, [weight] being the
    execution probability of its enclosing branches (1.0 at top
    level). *)

val refs : kernel -> (float * array_ref) list
(** All references with their execution weights, in syntactic order. *)

val add_fingerprint : Gpp_cache.Fingerprint.t -> kernel -> unit
(** Feed the kernel's full structure (name, loop nest, statements,
    subscript expressions) into a digest.  Structurally equal kernels —
    however they were constructed — contribute identical bytes. *)

val fingerprint : kernel -> string
(** Stable structural digest of one kernel. *)

val validate : decls:Decl.t list -> kernel -> (unit, string) result
(** Structural well-formedness: non-empty loop nest, positive extents,
    unique loop variables, every referenced array declared with matching
    dimensionality, subscripts only over bound variables, branch
    probabilities within [0, 1], and at least one statement. *)

val pp_ref : Format.formatter -> array_ref -> unit
(** One reference in skeleton syntax, e.g. [load a[i+1]] or
    [store y[<col_idx>][j]] — the statement-location string the
    static-analysis diagnostics anchor to. *)

val pp_kernel : Format.formatter -> kernel -> unit
