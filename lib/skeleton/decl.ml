type kind = Dense | Sparse of { nnz : int option }

type t = { name : string; elem_bytes : int; dims : int list; kind : kind }

let dense ?(elem_bytes = 4) name ~dims = { name; elem_bytes; dims; kind = Dense }

let sparse ?(elem_bytes = 4) ?nnz name ~dims = { name; elem_bytes; dims; kind = Sparse { nnz } }

let elements t = List.fold_left ( * ) 1 t.dims

let footprint_bytes t = elements t * t.elem_bytes

let add_fingerprint fp t =
  let module F = Gpp_cache.Fingerprint in
  F.add_string fp t.name;
  F.add_int fp t.elem_bytes;
  F.add_int_list fp t.dims;
  match t.kind with
  | Dense -> F.add_string fp "dense"
  | Sparse { nnz } -> (
      F.add_string fp "sparse";
      match nnz with
      | None -> F.add_bool fp false
      | Some n ->
          F.add_bool fp true;
          F.add_int fp n)

let fingerprint t = Gpp_cache.Fingerprint.of_value add_fingerprint t

let validate t =
  if t.elem_bytes <= 0 then Error (Printf.sprintf "array %s: non-positive element size" t.name)
  else if t.dims = [] then Error (Printf.sprintf "array %s: no dimensions" t.name)
  else if List.exists (fun d -> d <= 0) t.dims then
    Error (Printf.sprintf "array %s: non-positive extent" t.name)
  else
    match t.kind with
    | Sparse { nnz = Some n } when n < 0 || n > elements t ->
        Error (Printf.sprintf "array %s: nnz %d outside [0, %d]" t.name n (elements t))
    | Sparse _ | Dense -> Ok ()

let pp ppf t =
  let kind_str =
    match t.kind with
    | Dense -> ""
    | Sparse { nnz = Some n } -> Printf.sprintf " sparse(nnz=%d)" n
    | Sparse { nnz = None } -> " sparse"
  in
  Format.fprintf ppf "%s[%s] x %dB%s" t.name
    (String.concat "][" (List.map string_of_int t.dims))
    t.elem_bytes kind_str
