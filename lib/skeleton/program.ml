type invocation = Call of string | Repeat of int * invocation list

type t = {
  name : string;
  arrays : Decl.t list;
  kernels : Ir.kernel list;
  schedule : invocation list;
  temporaries : string list;
}

let create ?(temporaries = []) ~name ~arrays ~kernels ~schedule () =
  { name; arrays; kernels; schedule; temporaries }

let find_kernel t name = List.find_opt (fun (k : Ir.kernel) -> k.name = name) t.kernels

let kernel_exn t name =
  match find_kernel t name with Some k -> k | None -> raise Not_found

let flatten_schedule t =
  let rec go acc = function
    | [] -> acc
    | Call name :: rest -> go (name :: acc) rest
    | Repeat (n, body) :: rest ->
        let acc = ref acc in
        for _ = 1 to n do
          acc := go !acc body
        done;
        go !acc rest
  in
  List.rev (go [] t.schedule)

let invocation_count t =
  let rec count = function
    | Call _ -> 1
    | Repeat (n, body) -> n * List.fold_left (fun acc i -> acc + count i) 0 body
  in
  List.fold_left (fun acc i -> acc + count i) 0 t.schedule

let with_iterations t n =
  if n < 1 then invalid_arg "Program.with_iterations: iteration count must be >= 1";
  let rec rewrite = function
    | Call _ as c -> c
    | Repeat (_, body) -> Repeat (n, List.map rewrite body)
  in
  { t with schedule = List.map rewrite t.schedule }

module F = Gpp_cache.Fingerprint

let rec add_invocation_fingerprint fp = function
  | Call name ->
      F.add_string fp "call";
      F.add_string fp name
  | Repeat (n, body) ->
      F.add_string fp "repeat";
      F.add_int fp n;
      F.add_list fp add_invocation_fingerprint body

let add_fingerprint fp t =
  F.add_string fp "program";
  F.add_string fp t.name;
  F.add_list fp Decl.add_fingerprint t.arrays;
  F.add_list fp Ir.add_fingerprint t.kernels;
  F.add_list fp add_invocation_fingerprint t.schedule;
  F.add_list fp F.add_string t.temporaries

let fingerprint t = F.of_value add_fingerprint t

let validate t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "program %s: %s" t.name s)) fmt in
  let* () =
    List.fold_left
      (fun acc (d : Decl.t) ->
        let* () = acc in
        Decl.validate d)
      (Ok ()) t.arrays
  in
  let kernel_names = List.map (fun (k : Ir.kernel) -> k.name) t.kernels in
  let* () =
    if List.length (List.sort_uniq String.compare kernel_names) <> List.length kernel_names then
      err "duplicate kernel names"
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        Ir.validate ~decls:t.arrays k)
      (Ok ()) t.kernels
  in
  let* () = if t.schedule = [] then err "empty schedule" else Ok () in
  let rec check_invocation = function
    | Call name ->
        if List.mem name kernel_names then Ok () else err "schedule calls undefined kernel %s" name
    | Repeat (n, body) ->
        if n < 1 then err "repeat count %d < 1" n
        else if body = [] then err "empty repeat body"
        else
          List.fold_left
            (fun acc i ->
              let* () = acc in
              check_invocation i)
            (Ok ()) body
  in
  let* () =
    List.fold_left
      (fun acc i ->
        let* () = acc in
        check_invocation i)
      (Ok ()) t.schedule
  in
  List.fold_left
    (fun acc tmp ->
      let* () = acc in
      if List.exists (fun (d : Decl.t) -> d.name = tmp) t.arrays then Ok ()
      else err "temporary hint for undeclared array %s" tmp)
    (Ok ()) t.temporaries

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s@," t.name;
  Format.fprintf ppf "arrays:@,";
  List.iter (fun d -> Format.fprintf ppf "  %a@," Decl.pp d) t.arrays;
  if t.temporaries <> [] then
    Format.fprintf ppf "temporaries: %s@," (String.concat ", " t.temporaries);
  let rec pp_invocation indent = function
    | Call name -> Format.fprintf ppf "%scall %s@," indent name
    | Repeat (n, body) ->
        Format.fprintf ppf "%srepeat %d:@," indent n;
        List.iter (pp_invocation (indent ^ "  ")) body
  in
  Format.fprintf ppf "schedule:@,";
  List.iter (pp_invocation "  ") t.schedule;
  List.iter (fun k -> Format.fprintf ppf "%a@," Ir.pp_kernel k) t.kernels;
  Format.fprintf ppf "@]"
