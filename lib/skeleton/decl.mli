(** Array declarations in a code skeleton.

    Each array the kernel touches is declared with its element size and
    logical extents.  Sparse/irregular arrays carry an optional
    population estimate; the data usage analyzer falls back to the
    paper's conservative whole-array transfer for them (§III-B). *)

type kind =
  | Dense
  | Sparse of { nnz : int option }
      (** Irregularly accessed storage (e.g. CSR payload).  [nnz] is the
          number of elements actually populated, when known; the
          conservative transfer policy ignores it, the exact policy
          (an ablation) uses it. *)

type t = {
  name : string;
  elem_bytes : int;  (** Size of one element in bytes. *)
  dims : int list;  (** Extent of each dimension, outermost first. *)
  kind : kind;
}

val dense : ?elem_bytes:int -> string -> dims:int list -> t
(** Dense array; [elem_bytes] defaults to 4 (32-bit float, the dominant
    element type in the paper's benchmarks). *)

val sparse : ?elem_bytes:int -> ?nnz:int -> string -> dims:int list -> t

val elements : t -> int
(** Product of the declared extents. *)

val footprint_bytes : t -> int
(** [elements t * t.elem_bytes]: bytes occupied by the whole array. *)

val add_fingerprint : Gpp_cache.Fingerprint.t -> t -> unit
(** Feed name, element size, dimensions, and sparsity into a digest. *)

val fingerprint : t -> string

val validate : t -> (unit, string) result
(** Check extents and element size are positive, and [nnz] (when given)
    does not exceed the declared capacity. *)

val pp : Format.formatter -> t -> unit
