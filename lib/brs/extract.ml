module Ir = Gpp_skeleton.Ir
module Index_expr = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl

type ref_info = { section : Section.t; exact : bool }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let gcd a b = gcd (abs a) (abs b)

(* The subscript sumset {sum_i c_i * v_i + const | v_i in [0, e_i - 1]}
   covers a contiguous (stride = gcd of coefficients) range iff, with
   coefficients normalized by the gcd and sorted by decreasing
   magnitude, each coefficient is no larger than one plus the total span
   of all smaller terms.  This is the classic mixed-radix "no gap"
   condition (e.g. c = [N; 1] with extents [M; N] covers 0..M*N-1). *)
let no_gaps terms =
  (* terms: (|coeff| / g, extent) sorted by decreasing coefficient. *)
  let rec check = function
    | [] -> true
    | (c, _) :: rest ->
        let inner_span = List.fold_left (fun acc (ci, ei) -> acc + (ci * (ei - 1))) 0 rest in
        c <= 1 + inner_span && check rest
  in
  check terms

let subscript_dim ~kernel expr =
  let bounds v = Ir.loop_bounds kernel v in
  let lo, hi = Index_expr.range bounds expr in
  let vars = Index_expr.vars expr in
  match vars with
  | [] -> (Section.point lo, true)
  | [ v ] ->
      let stride = abs (Index_expr.coeff_of expr v) in
      (Section.dim_exn ~lo ~hi ~stride, true)
  | _ :: _ :: _ ->
      let g = List.fold_left (fun acc v -> gcd acc (Index_expr.coeff_of expr v)) 0 vars in
      let g = max g 1 in
      let terms =
        List.map
          (fun v ->
            let _, vhi = bounds v in
            (abs (Index_expr.coeff_of expr v) / g, vhi + 1))
          vars
        |> List.sort (fun (a, _) (b, _) -> compare b a)
      in
      (Section.dim_exn ~lo ~hi ~stride:g, no_gaps terms)

let find_decl decls name =
  match List.find_opt (fun (d : Decl.t) -> d.name = name) decls with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Extract: undeclared array %s" name)

let clip_dim (dim : Section.dim) extent =
  match Section.dim_intersect dim (Section.dim_exn ~lo:0 ~hi:(extent - 1) ~stride:1) with
  | Some d -> d
  | None -> Section.point 0 (* degenerate: fully out of bounds *)

let section_of_ref ~decls ~kernel (r : Ir.array_ref) =
  let d = find_decl decls r.array in
  let conservative () = { section = Section.whole_array d; exact = false } in
  match (d.kind, r.pattern) with
  | Decl.Sparse _, _ -> conservative ()
  | Decl.Dense, Ir.Indirect { index_array = _; offset } ->
      (* The indirectly selected leading dimensions are statically
         unknown, but the affine within-base part still bounds the
         trailing dimensions: an indexed-row access a[col[k]][j]
         reaches any row yet only the columns [j] sweeps.  Interval
         analysis of the offset subscripts tightens the fallback from
         the whole array to whole-leading x bounded-trailing; the
         section stays inexact (conservative) either way. *)
      let rank = List.length d.dims and k = List.length offset in
      if k = 0 || k >= rank then conservative ()
      else
        let leading = List.filteri (fun i _ -> i < rank - k) d.dims in
        let trailing_extents = List.filteri (fun i _ -> i >= rank - k) d.dims in
        let dims =
          List.map (fun extent -> Section.dim_exn ~lo:0 ~hi:(extent - 1) ~stride:1) leading
          @ List.map2
              (fun expr extent ->
                let dim, _exact = subscript_dim ~kernel expr in
                clip_dim dim extent)
              offset trailing_extents
        in
        { section = Section.make r.array dims; exact = false }
  | Decl.Dense, Ir.Affine indices ->
      let dims, exact =
        List.fold_left
          (fun (dims, exact) expr ->
            let d, e = subscript_dim ~kernel expr in
            (d :: dims, exact && e))
          ([], true) indices
      in
      (* Clip to the declared extents: a skeleton may describe a halo
         read that steps one element outside the grid; the array itself
         bounds what can be transferred. *)
      let dims = List.map2 clip_dim (List.rev dims) d.dims in
      { section = Section.make r.array dims; exact }

type access = {
  reads : (string * Region.t) list;
  writes : (string * Region.t) list;
  inexact_arrays : string list;
}

let add_to assoc name section =
  let region =
    match List.assoc_opt name assoc with
    | Some r -> Region.add r section
    | None -> Region.of_section section
  in
  (name, region) :: List.remove_assoc name assoc

let of_kernel ~decls (k : Ir.kernel) =
  let reads = ref [] and writes = ref [] and inexact = ref [] in
  let record (r : Ir.array_ref) =
    let info = section_of_ref ~decls ~kernel:k r in
    if (not info.exact) && not (List.mem r.array !inexact) then inexact := r.array :: !inexact;
    match r.access with
    | Ir.Load -> reads := add_to !reads r.array info.section
    | Ir.Store -> writes := add_to !writes r.array info.section
  in
  (* Execution probability does not matter for transfer analysis: data
     that might be touched must be resident, so every reference counts. *)
  Ir.fold_refs k ~init:() ~f:(fun () ~weight:_ r -> record r);
  { reads = List.rev !reads; writes = List.rev !writes; inexact_arrays = List.rev !inexact }

let reads_of access name = List.assoc_opt name access.reads

let writes_of access name = List.assoc_opt name access.writes

let pp_access ppf a =
  let pp_side label assoc =
    Format.fprintf ppf "%s:@," label;
    List.iter (fun (name, region) -> Format.fprintf ppf "  %s: %a@," name Region.pp region) assoc
  in
  Format.fprintf ppf "@[<v>";
  pp_side "reads" a.reads;
  pp_side "writes" a.writes;
  if a.inexact_arrays <> [] then
    Format.fprintf ppf "conservative: %s@," (String.concat ", " a.inexact_arrays);
  Format.fprintf ppf "@]"
