(** Unions of sections of a single array.

    The data usage analyzer accumulates "all BRSs read but not
    previously written" and "all BRSs written" (paper §III-B).  A region
    holds such an accumulation.  Adding a section merges it with an
    existing one when the regular-section union is {e exact}; otherwise
    both are kept, so {!covered_elements} never under-counts and only
    over-counts when the analysis itself (not this container) is
    conservative. *)

type t
(** Immutable region over one array. *)

val empty : array:string -> t

val array_name : t -> string

val is_empty : t -> bool

val of_section : Section.t -> t

val add : t -> Section.t -> t
(** Merge a section into the region.
    @raise Invalid_argument if array names differ. *)

val merge : t -> t -> t
(** Union of two regions of the same array. *)

val sections : t -> Section.t list
(** Current canonical section list (mutually non-contained). *)

val covers : t -> Section.t -> bool
(** True when some single stored section contains the given section.
    (Sound but incomplete for sections split across stored pieces —
    conservative in the right direction for "was this data already
    written on the device?") *)

val subset : t -> t -> bool
(** [subset a b]: every section of [a] is covered (in the {!covers}
    sense) by [b].  Sound but incomplete, like {!covers}: a [true]
    answer proves containment, a [false] answer proves nothing.  This
    is the partial order the fixpoint lattice over region maps uses —
    incompleteness only delays convergence, never breaks soundness. *)

val equal : t -> t -> bool
(** Same array and the same canonical section set (order-insensitive). *)

val mem : t -> int list -> bool
(** Point membership in any stored section. *)

val covered_elements : t -> int
(** Number of elements covered.  Exact when stored sections are
    disjoint; otherwise an upper bound obtained by summing section sizes
    (double-counting overlap is conservative for transfer-size
    estimation, and never occurs when sections merged exactly). *)

val covered_bytes : elem_bytes:int -> t -> int

val pp : Format.formatter -> t -> unit
