(** Extraction of Bounded Regular Sections from kernel skeletons.

    For an affine reference, each subscript's value range over the
    enclosing loop bounds gives the section bounds, and the GCD of the
    subscript's coefficients gives the stride.  Multi-variable
    subscripts are additionally checked for gaps (the mixed-radix
    cover condition), so [i*N + j] with [j] spanning [0..N-1] is
    recognized as the exact contiguous range.  Sparse arrays and pure
    gathers fall back to the conservative whole-array section (paper
    §III-B); an indirect reference with an affine within-base part
    ([a\[col\[k\]\]\[j\]]) keeps the indirectly selected leading
    dimensions whole but bounds the trailing dimensions by interval
    analysis of the offset subscripts — still inexact, but no longer
    necessarily the whole array. *)

type ref_info = {
  section : Section.t;  (** Over-approximation of the accessed set. *)
  exact : bool;  (** Whether the section is known to be exact. *)
}

val section_of_ref :
  decls:Gpp_skeleton.Decl.t list -> kernel:Gpp_skeleton.Ir.kernel -> Gpp_skeleton.Ir.array_ref ->
  ref_info
(** @raise Invalid_argument for references to undeclared arrays (run
    {!Gpp_skeleton.Ir.validate} first). *)

type access = {
  reads : (string * Region.t) list;  (** Per-array union of read sections. *)
  writes : (string * Region.t) list;  (** Per-array union of written sections. *)
  inexact_arrays : string list;
      (** Arrays whose sections required conservative approximation. *)
}
(** A kernel's whole access summary.  Association lists are keyed by
    array name, in first-touch order. *)

val of_kernel : decls:Gpp_skeleton.Decl.t list -> Gpp_skeleton.Ir.kernel -> access

val reads_of : access -> string -> Region.t option

val writes_of : access -> string -> Region.t option

val pp_access : Format.formatter -> access -> unit
