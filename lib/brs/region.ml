type t = { array : string; sections : Section.t list }

let empty ~array = { array; sections = [] }

let array_name t = t.array

let is_empty t = t.sections = []

let of_section (s : Section.t) = { array = s.array; sections = [ s ] }

(* Insert [s], repeatedly fusing with any stored section whose union
   with [s] is exact; drop stored sections already contained in [s]. *)
let rec insert stored s =
  let s, remaining, fused =
    List.fold_left
      (fun (s, remaining, fused) existing ->
        if Section.contains ~outer:s ~inner:existing then (s, remaining, fused)
        else if Section.contains ~outer:existing ~inner:s then (existing, remaining, true)
        else if Section.union_exact s existing then (Section.union s existing, remaining, true)
        else (s, existing :: remaining, fused))
      (s, [], false) stored
  in
  (* A fusion may enable further fusions (e.g. three adjacent rows). *)
  if fused then insert (List.rev remaining) s else s :: List.rev remaining

let add t (s : Section.t) =
  if s.array <> t.array then invalid_arg "Region.add: array name mismatch";
  { t with sections = insert t.sections s }

let merge a b =
  if a.array <> b.array then invalid_arg "Region.merge: array name mismatch";
  List.fold_left add a b.sections

let sections t = t.sections

let covers t s = List.exists (fun stored -> Section.contains ~outer:stored ~inner:s) t.sections

let subset a b =
  a.array = b.array && List.for_all (fun s -> covers b s) a.sections

let equal a b =
  a.array = b.array
  && List.length a.sections = List.length b.sections
  && List.for_all (fun s -> List.exists (Section.equal s) b.sections) a.sections

let mem t coords = List.exists (fun s -> Section.mem s coords) t.sections

let covered_elements t = List.fold_left (fun acc s -> acc + Section.size s) 0 t.sections

let covered_bytes ~elem_bytes t = covered_elements t * elem_bytes

let pp ppf t =
  if is_empty t then Format.fprintf ppf "%s{}" t.array
  else
    Format.fprintf ppf "@[<h>{%a}@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " u ") Section.pp)
      t.sections
