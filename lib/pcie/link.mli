(** Simulated PCIe link: the "hardware" that transfer measurements run
    against.

    This module stands in for the paper's physical bus + CUDA driver
    (see DESIGN.md).  It models:
    - wire time from the link spec (per-lane rate, encoding, TLP
      headers, payload segmentation) derated by a DMA-engine efficiency;
    - per-transfer DMA/driver setup latency, per direction;
    - pinned (page-locked) transfers: a single DMA of the whole buffer;
    - pageable transfers: chunked staging copies through a pinned bounce
      buffer at host-memcpy bandwidth, partially overlapped with the
      DMA, plus per-chunk overhead — and, for small host-to-device
      transfers, the driver's command-buffer fast path that makes
      pageable {e faster} than pinned below ~2 KB (paper Fig. 3);
    - measurement noise whose relative magnitude is larger for
      latency-dominated (small) transfers, and an optional rare-outlier
      mode reproducing the bimodal slow transfers the paper observed in
      CFD (§V-A).

    All stochastic behaviour comes from an internal seeded
    {!Gpp_util.Rng.t}, so experiment runs are reproducible. *)

type direction = Host_to_device | Device_to_host

type memory = Pinned | Pageable

val direction_name : direction -> string
(** ["CPU-to-GPU"] / ["GPU-to-CPU"], the paper's labels. *)

val memory_name : memory -> string

val memory_of_staging : Gpp_arch.Machine.staging -> memory
(** A machine's default staging mode as a link memory kind. *)

type config = {
  spec : Gpp_arch.Pcie_spec.t;
  host_copy_bandwidth : float;  (** Staging memcpy bandwidth, bytes/s. *)
  dma_efficiency_h2d : float;  (** Achieved fraction of raw wire rate. *)
  dma_efficiency_d2h : float;
  dma_setup_h2d : float;  (** Pinned-transfer setup latency, seconds. *)
  dma_setup_d2h : float;
  pageable_fastpath_bytes : int;
      (** Host-to-device pageable transfers at or below this size take
          the command-buffer fast path. *)
  pageable_fastpath_overhead : float;
  pageable_fastpath_bandwidth : float;
  pageable_setup : float;  (** Staged-path setup latency. *)
  pageable_chunk : int;  (** Staging chunk size in bytes. *)
  pageable_chunk_overhead : float;  (** Per-chunk bookkeeping cost. *)
  pageable_overlap_h2d : float;
      (** Fraction of the shorter of (memcpy, DMA) hidden under the
          longer, in [0, 1]. *)
  pageable_overlap_d2h : float;
  noise_sigma_base : float;  (** Relative noise on every transfer. *)
  noise_sigma_small_h2d : float;
      (** Extra relative noise applied in proportion to how
          latency-dominated the transfer is. *)
  noise_sigma_small_d2h : float;
  outlier_probability : float;  (** Chance a transfer lands in the slow
                                    mode (0 disables). *)
  outlier_slowdown : float * float;  (** Uniform slow-mode multiplier range. *)
}

val default_config : Gpp_arch.Machine.t -> config
(** Tuned so that the paper's testbed preset measures ~10 us setup and
    ~2.5 GB/s pinned bandwidth (§III-C). *)

type t

val create : ?seed:int64 -> config -> t
(** [seed] defaults to a fixed constant: two links created with equal
    seeds and configs produce identical measurement streams. *)

val config : t -> config

val expected_time : t -> direction -> memory -> bytes:int -> float
(** Noise-free transfer time: the link's deterministic ground truth.
    @raise Invalid_argument for negative [bytes]. *)

val transfer_time : t -> direction -> memory -> bytes:int -> float
(** One noisy measurement (advances the internal RNG). *)

val mean_transfer_time : t -> runs:int -> direction -> memory -> bytes:int -> float
(** Arithmetic mean of [runs] noisy measurements — the paper's
    measurement protocol uses [runs = 10]. *)

val pinned_bandwidth : t -> direction -> float
(** Asymptotic noise-free pinned bandwidth (bytes/s), for reporting. *)
