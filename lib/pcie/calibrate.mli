(** Calibration of the transfer-time model against a link.

    The paper's synthetic benchmark (§III-C): measure the time of a
    single-byte transfer ([t_S] at size [s_S = 1]) and of one large
    transfer ([t_L] at size [s_L = 512 MiB]), each averaged over 10
    runs, then fit the line through both points:
    [beta = (t_L - t_S) / (s_L - s_S)] and
    [alpha = t_S - beta * s_S], so [T(d) = alpha + beta * d]
    interpolates both calibration measurements.  GROPHECY++ runs this
    automatically on each new system.

    Also provides the full-sweep least-squares alternative used by the
    calibration ablation, and measurement helpers for the validation
    figures. *)

type protocol = {
  small_bytes : int;  (** Default 1. *)
  large_bytes : int;  (** Default 512 MiB (footnote 5: the exact value
                          is arbitrary beyond a few MiB). *)
  runs : int;  (** Default 10. *)
}

val default_protocol : protocol

val calibrate :
  ?protocol:protocol -> Link.t -> Link.direction -> Link.memory -> Model.t
(** Two-point calibration of one (direction, memory) combination.
    @raise Invalid_argument unless
    [protocol.small_bytes < protocol.large_bytes]. *)

val calibrate_pair : ?protocol:protocol -> Link.t -> Link.memory -> Model.t * Model.t
(** [(host_to_device, device_to_host)] models for one staging mode, in
    that draw order. *)

val calibrate_pinned_pair : ?protocol:protocol -> Link.t -> Model.t * Model.t
(** [calibrate_pair link Pinned] — the combination GROPHECY++ assumes on
    the paper's testbed (§III-C). *)

val calibrate_all : ?protocol:protocol -> Link.t -> Model.t list
(** All four (direction, memory) combinations. *)

val power_of_two_sizes : ?min_bytes:int -> max_bytes:int -> unit -> int list
(** [1; 2; 4; ...; max_bytes] — the validation sweep of §V-A. *)

val measure_sweep :
  ?runs:int ->
  Link.t ->
  Link.direction ->
  Link.memory ->
  sizes:int list ->
  (int * float) list
(** Mean measured transfer time per size ([runs] defaults to 10). *)

val least_squares_model :
  Link.t -> Link.direction -> Link.memory -> sweep:(int * float) list -> Model.t
(** Ablation: fit [alpha], [beta] to a whole sweep by ordinary least
    squares instead of the paper's two measurements.
    @raise Invalid_argument if the fitted parameters are unusable
    (non-positive slope). *)
