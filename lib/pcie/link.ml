module Units = Gpp_util.Units
module Rng = Gpp_util.Rng
module Pcie_spec = Gpp_arch.Pcie_spec
module Obs = Gpp_obs.Obs

let c_transfers = Obs.counter "pcie.transfers"

let c_bytes = Obs.counter "pcie.bytes"

let c_rng = Obs.counter "rng.draws"

type direction = Host_to_device | Device_to_host

type memory = Pinned | Pageable

let direction_name = function
  | Host_to_device -> "CPU-to-GPU"
  | Device_to_host -> "GPU-to-CPU"

let memory_name = function Pinned -> "pinned" | Pageable -> "pageable"

let memory_of_staging = function
  | Gpp_arch.Machine.Pinned -> Pinned
  | Gpp_arch.Machine.Pageable -> Pageable

type config = {
  spec : Pcie_spec.t;
  host_copy_bandwidth : float;
  dma_efficiency_h2d : float;
  dma_efficiency_d2h : float;
  dma_setup_h2d : float;
  dma_setup_d2h : float;
  pageable_fastpath_bytes : int;
  pageable_fastpath_overhead : float;
  pageable_fastpath_bandwidth : float;
  pageable_setup : float;
  pageable_chunk : int;
  pageable_chunk_overhead : float;
  pageable_overlap_h2d : float;
  pageable_overlap_d2h : float;
  noise_sigma_base : float;
  noise_sigma_small_h2d : float;
  noise_sigma_small_d2h : float;
  outlier_probability : float;
  outlier_slowdown : float * float;
}

let default_config (machine : Gpp_arch.Machine.t) =
  {
    spec = machine.pcie;
    (* A single-threaded memcpy sustains roughly a third of the FSB-era
       peak on the testbed CPU; on newer hosts it scales with the
       memory system. *)
    host_copy_bandwidth = Float.max (Units.gb_per_s 3.5) (machine.cpu.mem_bandwidth *. 0.33);
    dma_efficiency_h2d = 0.72;
    dma_efficiency_d2h = 0.70;
    dma_setup_h2d = Units.us 10.0;
    dma_setup_d2h = Units.us 12.0;
    pageable_fastpath_bytes = 2 * Units.kib;
    pageable_fastpath_overhead = Units.us 5.0;
    pageable_fastpath_bandwidth = Units.gb_per_s 0.35;
    pageable_setup = Units.us 15.0;
    pageable_chunk = 64 * Units.kib;
    pageable_chunk_overhead = Units.us 1.5;
    pageable_overlap_h2d = 0.35;
    pageable_overlap_d2h = 0.20;
    noise_sigma_base = 0.005;
    noise_sigma_small_h2d = 0.075;
    noise_sigma_small_d2h = 0.035;
    outlier_probability = 0.0;
    outlier_slowdown = (1.8, 2.6);
  }

type t = { cfg : config; rng : Rng.t }

let default_seed = 0x6CA1_1B0A_2013_0520L

let create ?(seed = default_seed) cfg = { cfg; rng = Rng.create seed }

let config t = t.cfg

let dma_efficiency cfg = function
  | Host_to_device -> cfg.dma_efficiency_h2d
  | Device_to_host -> cfg.dma_efficiency_d2h

let dma_setup cfg = function
  | Host_to_device -> cfg.dma_setup_h2d
  | Device_to_host -> cfg.dma_setup_d2h

(* Time on the wire for [bytes] of payload: headers are paid per TLP,
   and the DMA engine sustains only a fraction of the raw link rate. *)
let wire_time cfg direction bytes =
  if bytes = 0 then 0.0
  else
    let payload = cfg.spec.max_payload in
    let packets = (bytes + payload - 1) / payload in
    let wire_bytes = bytes + (packets * cfg.spec.header_bytes) in
    float_of_int wire_bytes /. (Pcie_spec.raw_bandwidth cfg.spec *. dma_efficiency cfg direction)

let pinned_time cfg direction bytes = dma_setup cfg direction +. wire_time cfg direction bytes

let pageable_time cfg direction bytes =
  match direction with
  | Host_to_device when bytes <= cfg.pageable_fastpath_bytes ->
      (* The driver copies small sources straight into the command
         buffer: cheaper setup, but a slow uncacheable write path. *)
      cfg.pageable_fastpath_overhead
      +. (float_of_int bytes /. cfg.pageable_fastpath_bandwidth)
      +. wire_time cfg direction bytes
  | Host_to_device | Device_to_host ->
      let overlap =
        match direction with
        | Host_to_device -> cfg.pageable_overlap_h2d
        | Device_to_host -> cfg.pageable_overlap_d2h
      in
      let chunks = max 1 ((bytes + cfg.pageable_chunk - 1) / cfg.pageable_chunk) in
      let t_copy = float_of_int bytes /. cfg.host_copy_bandwidth in
      let t_dma = wire_time cfg direction bytes in
      let longer = Float.max t_copy t_dma and shorter = Float.min t_copy t_dma in
      cfg.pageable_setup
      +. (float_of_int chunks *. cfg.pageable_chunk_overhead)
      +. longer
      +. ((1.0 -. overlap) *. shorter)

let expected_time t direction memory ~bytes =
  if bytes < 0 then invalid_arg "Link.expected_time: negative size";
  match memory with
  | Pinned -> pinned_time t.cfg direction bytes
  | Pageable -> pageable_time t.cfg direction bytes

let transfer_time t direction memory ~bytes =
  Obs.incr c_transfers;
  Obs.add c_bytes bytes;
  let base = expected_time t direction memory ~bytes in
  let cfg = t.cfg in
  (* Latency-dominated transfers see proportionally more jitter
     (interrupts, scheduler wakeups); bulk transfers average it out. *)
  let latency_fraction = dma_setup cfg direction /. base in
  let sigma_small =
    match direction with
    | Host_to_device -> cfg.noise_sigma_small_h2d
    | Device_to_host -> cfg.noise_sigma_small_d2h
  in
  let sigma = cfg.noise_sigma_base +. (sigma_small *. latency_fraction) in
  Obs.incr c_rng;
  let noisy = base *. Rng.lognormal_noise t.rng ~sigma in
  if cfg.outlier_probability > 0.0 then begin
    Obs.incr c_rng;
    if Rng.float t.rng < cfg.outlier_probability then begin
      Obs.incr c_rng;
      let lo, hi = cfg.outlier_slowdown in
      noisy *. Rng.uniform t.rng ~lo ~hi
    end
    else noisy
  end
  else noisy

let mean_transfer_time t ~runs direction memory ~bytes =
  if runs <= 0 then invalid_arg "Link.mean_transfer_time: runs must be positive";
  Obs.span "pcie.transfer" @@ fun () ->
  (* Draw strictly left to right: [List.init]'s application order is
     unspecified, and each draw advances the link's rng, so the mean
     (a float sum over the sample list) would otherwise depend on the
     stdlib's current choice.  test_pcie pins a golden calibration
     value against this order. *)
  let rec draw k acc =
    if k = 0 then List.rev acc
    else draw (k - 1) (transfer_time t direction memory ~bytes :: acc)
  in
  Gpp_util.Stats.mean (draw runs [])

let pinned_bandwidth t direction =
  (* Asymptotic: bytes / wire_time for a large transfer. *)
  let bytes = 512 * Units.mib in
  float_of_int bytes /. wire_time t.cfg direction bytes
