type protocol = { small_bytes : int; large_bytes : int; runs : int }

let default_protocol = { small_bytes = 1; large_bytes = 512 * Gpp_util.Units.mib; runs = 10 }

let calibrate ?(protocol = default_protocol) link direction memory =
  if protocol.large_bytes <= protocol.small_bytes then
    invalid_arg "Calibrate.calibrate: protocol needs small_bytes < large_bytes";
  let t_small =
    Link.mean_transfer_time link ~runs:protocol.runs direction memory ~bytes:protocol.small_bytes
  in
  let t_large =
    Link.mean_transfer_time link ~runs:protocol.runs direction memory ~bytes:protocol.large_bytes
  in
  (* Two-point form of T(d) = alpha + beta * d: the slope comes from the
     difference of the two measurements, so the latency term alpha is
     not folded into it, and the line interpolates both calibration
     points (up to the alpha >= 0 clamp against measurement noise). *)
  let beta =
    (t_large -. t_small) /. float_of_int (protocol.large_bytes - protocol.small_bytes)
  in
  let alpha = Float.max 0.0 (t_small -. (beta *. float_of_int protocol.small_bytes)) in
  Model.create ~alpha ~beta ~direction ~memory

(* H2D first, then D2H — the draw order every session has always used;
   [calibrate_pair Pinned] must stay bit-identical to the historical
   pinned pair. *)
let calibrate_pair ?protocol link memory =
  ( calibrate ?protocol link Link.Host_to_device memory,
    calibrate ?protocol link Link.Device_to_host memory )

let calibrate_pinned_pair ?protocol link = calibrate_pair ?protocol link Link.Pinned

let calibrate_all ?protocol link =
  List.concat_map
    (fun direction ->
      List.map (fun memory -> calibrate ?protocol link direction memory) [ Link.Pinned; Link.Pageable ])
    [ Link.Host_to_device; Link.Device_to_host ]

let power_of_two_sizes ?(min_bytes = 1) ~max_bytes () =
  if min_bytes < 1 || max_bytes < min_bytes then
    invalid_arg "Calibrate.power_of_two_sizes: bad bounds";
  let rec go acc size = if size > max_bytes then List.rev acc else go (size :: acc) (size * 2) in
  go [] min_bytes

let measure_sweep ?(runs = 10) link direction memory ~sizes =
  List.map (fun bytes -> (bytes, Link.mean_transfer_time link ~runs direction memory ~bytes)) sizes

let least_squares_model link direction memory ~sweep =
  ignore link;
  let points = List.map (fun (bytes, time) -> (float_of_int bytes, time)) sweep in
  let fit = Gpp_util.Stats.least_squares points in
  (* A sweep dominated by latency noise can fit a slightly negative
     intercept; clamp it, since alpha < 0 is physically meaningless. *)
  Model.create ~alpha:(Float.max fit.intercept 0.0) ~beta:fit.slope ~direction ~memory
