(** Descriptive statistics and error metrics used throughout the
    evaluation.

    The paper's accuracy metric is the {e error magnitude}: the absolute
    value of the percent difference between a predicted and a measured
    value (§V-A).  All averages in the paper are arithmetic means, and we
    follow that convention. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on an empty list or non-positive element. *)

val variance : float list -> float
(** Sample variance with Bessel's correction ([n - 1] divisor), as
    appropriate for summaries of a few noisy measurement runs.
    [variance [x]] is 0.  @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Population standard deviation. *)

val min_max : float list -> float * float
(** Smallest and largest element.
    @raise Invalid_argument on an empty list. *)

val median : float list -> float
(** Median (mean of the two central elements for even lengths).
    @raise Invalid_argument on an empty list. *)

val percent_difference : predicted:float -> measured:float -> float
(** [(predicted - measured) / measured * 100].  Positive means
    over-prediction.  @raise Invalid_argument if [measured = 0]. *)

val error_magnitude : predicted:float -> measured:float -> float
(** Absolute value of {!percent_difference} — the paper's accuracy
    metric. *)

val mean_error_magnitude : (float * float) list -> float
(** [mean_error_magnitude pairs] is the arithmetic mean of
    {!error_magnitude} over [(predicted, measured)] pairs. *)

type linear_fit = {
  intercept : float;  (** alpha: value at x = 0. *)
  slope : float;  (** beta: change per unit of x. *)
  r_squared : float;  (** Coefficient of determination in [0, 1]. *)
}
(** Result of a least-squares line fit, used by the ablation comparing
    the paper's two-point calibration against a full regression. *)

val least_squares : (float * float) list -> linear_fit
(** Ordinary least-squares fit of [y = intercept + slope * x].
    @raise Invalid_argument with fewer than two distinct x values. *)

type summary = {
  n : int;
  sum_mean : float;
  sum_stddev : float;
  sum_min : float;
  sum_max : float;
}
(** Five-number-ish roll-up for reporting repeated measurements. *)

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)
