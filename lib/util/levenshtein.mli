(** Levenshtein edit distance and nearest-candidate suggestion.

    Shared by every "unknown name" error path that wants to suggest the
    closest known spelling: lint diagnostic codes, predictor stage
    names.  The candidate sets are tiny, so the plain O(|a|*|b|)
    two-row dynamic program is the right tool. *)

val distance : string -> string -> int
(** Number of single-character insertions, deletions, and substitutions
    turning one string into the other. *)

val nearest : candidates:string list -> string -> string option
(** The candidate with the smallest {!distance} to the query (ties
    break toward the earlier candidate); [None] on an empty candidate
    list.  Comparison is exact — canonicalize case before calling if
    the namespace is case-insensitive. *)
