let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  require_nonempty "Stats.geomean" xs;
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element"
        else acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (List.length xs))

(* Sample variance (Bessel's correction): measurement summaries are
   drawn from a handful of noisy runs, so dividing by n would
   systematically understate the spread.  A single observation carries
   no spread information; define its variance as 0 rather than 0/0. *)
let variance xs =
  require_nonempty "Stats.variance" xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let sq_sum = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sq_sum /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let median xs =
  require_nonempty "Stats.median" xs;
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percent_difference ~predicted ~measured =
  if measured = 0.0 then invalid_arg "Stats.percent_difference: measured = 0";
  (predicted -. measured) /. measured *. 100.0

let error_magnitude ~predicted ~measured =
  Float.abs (percent_difference ~predicted ~measured)

let mean_error_magnitude pairs =
  mean (List.map (fun (predicted, measured) -> error_magnitude ~predicted ~measured) pairs)

type linear_fit = { intercept : float; slope : float; r_squared : float }

let least_squares points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.least_squares: need at least two points";
  let xs = List.map fst points and ys = List.map snd points in
  let mx = mean xs and my = mean ys in
  let sxx, sxy =
    List.fold_left
      (fun (sxx, sxy) (x, y) -> (sxx +. ((x -. mx) ** 2.0), sxy +. ((x -. mx) *. (y -. my))))
      (0.0, 0.0) points
  in
  if sxx = 0.0 then invalid_arg "Stats.least_squares: all x values identical";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.0)) 0.0 ys in
  let ss_res =
    List.fold_left
      (fun acc (x, y) -> acc +. ((y -. (intercept +. (slope *. x))) ** 2.0))
      0.0 points
  in
  let r_squared = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { intercept; slope; r_squared }

type summary = {
  n : int;
  sum_mean : float;
  sum_stddev : float;
  sum_min : float;
  sum_max : float;
}

let summarize xs =
  require_nonempty "Stats.summarize" xs;
  let sum_min, sum_max = min_max xs in
  { n = List.length xs; sum_mean = mean xs; sum_stddev = stddev xs; sum_min; sum_max }
