let distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let nearest ~candidates query =
  List.fold_left
    (fun best candidate ->
      let d = distance query candidate in
      match best with
      | Some (best_d, _) when best_d <= d -> best
      | _ -> Some (d, candidate))
    None candidates
  |> Option.map snd
