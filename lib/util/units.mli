(** Byte and time quantities: constants, formatting, and parsing.

    Conventions used across the code base:
    - data sizes are [int] byte counts; binary prefixes (KiB = 1024 B)
      match the paper's power-of-two transfer sweep (1 B .. 512 MiB);
    - times are [float] seconds;
    - bandwidths are [float] bytes per second. *)

val kib : int
val mib : int
val gib : int

val bytes_of_kib : float -> int
val bytes_of_mib : float -> int
val bytes_of_gib : float -> int
(** Rounded byte counts.  All three raise [Invalid_argument] with a
    clear message when the input is non-finite, negative, or would
    overflow [max_int] — instead of silently wrapping to a garbage
    (possibly negative) size that only blows up later inside the
    transfer model. *)

val mib_of_bytes : int -> float
(** Fractional MiB, e.g. for reporting Table I transfer sizes. *)

val us : float -> float
(** [us x] is [x] microseconds expressed in seconds. *)

val ms : float -> float
(** [ms x] is [x] milliseconds expressed in seconds. *)

val ms_of_seconds : float -> float
(** Seconds -> milliseconds, for reporting. *)

val us_of_seconds : float -> float
(** Seconds -> microseconds, for reporting. *)

val gb_per_s : float -> float
(** [gb_per_s x] is a bandwidth of [x] decimal gigabytes per second in
    bytes per second.  Bandwidth specs (PCIe, DRAM) are conventionally
    decimal. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-friendly byte count: ["512 B"], ["2.0 KiB"], ["512 MiB"]. *)

val pp_time : Format.formatter -> float -> unit
(** Human-friendly duration with an auto-selected unit:
    ["13.0 us"], ["4.62 ms"], ["1.20 s"]. *)

val pp_bandwidth : Format.formatter -> float -> unit
(** Human-friendly bandwidth: ["2.53 GB/s"]. *)

val bytes_to_string : int -> string
val time_to_string : float -> string
val bandwidth_to_string : float -> string

val parse_bytes : string -> int option
(** Parse strings such as ["97000"], ["4 KiB"], ["512MiB"], ["1.5 GiB"],
    ["64kb"] (case-insensitive, optional space, 'b' suffix optional on
    the prefix).  Returns [None] on malformed input, negative sizes, and
    sizes that do not fit an [int] byte count (e.g.
    ["99999999999999 GiB"]). *)
