let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

(* [int_of_float] on a non-finite or out-of-range float silently
   produces an unspecified value (typically a wrapped, possibly
   negative count that surfaces much later as a confusing invalid_arg
   deep in Link), so every float->byte-count conversion is guarded
   here, at the boundary.  Note [float_of_int max_int] rounds up to
   2^62, which does NOT fit, hence [>=]. *)
let checked_bytes x =
  if not (Float.is_finite x) then None
  else
    let r = Float.round x in
    if r < 0.0 || r >= float_of_int max_int then None else Some (int_of_float r)

let bytes_or_invalid ~what x =
  match checked_bytes x with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "%s: %g is not a representable byte count" what x)

let bytes_of_kib x = bytes_or_invalid ~what:"Units.bytes_of_kib" (x *. float_of_int kib)
let bytes_of_mib x = bytes_or_invalid ~what:"Units.bytes_of_mib" (x *. float_of_int mib)
let bytes_of_gib x = bytes_or_invalid ~what:"Units.bytes_of_gib" (x *. float_of_int gib)

let mib_of_bytes b = float_of_int b /. float_of_int mib

let us x = x *. 1e-6
let ms x = x *. 1e-3
let ms_of_seconds t = t *. 1e3
let us_of_seconds t = t *. 1e6
let gb_per_s x = x *. 1e9

let pp_bytes ppf b =
  let fb = float_of_int b in
  if b < kib then Format.fprintf ppf "%d B" b
  else if b < mib then Format.fprintf ppf "%.1f KiB" (fb /. float_of_int kib)
  else if b < gib then Format.fprintf ppf "%.1f MiB" (fb /. float_of_int mib)
  else Format.fprintf ppf "%.2f GiB" (fb /. float_of_int gib)

let pp_time ppf t =
  let a = Float.abs t in
  if a < 1e-6 then Format.fprintf ppf "%.1f ns" (t *. 1e9)
  else if a < 1e-3 then Format.fprintf ppf "%.2f us" (t *. 1e6)
  else if a < 1.0 then Format.fprintf ppf "%.3f ms" (t *. 1e3)
  else Format.fprintf ppf "%.3f s" t

let pp_bandwidth ppf bw =
  if bw >= 1e9 then Format.fprintf ppf "%.2f GB/s" (bw /. 1e9)
  else if bw >= 1e6 then Format.fprintf ppf "%.2f MB/s" (bw /. 1e6)
  else Format.fprintf ppf "%.0f B/s" bw

let bytes_to_string b = Format.asprintf "%a" pp_bytes b
let time_to_string t = Format.asprintf "%a" pp_time t
let bandwidth_to_string bw = Format.asprintf "%a" pp_bandwidth bw

let parse_bytes s =
  let s = String.trim s in
  let is_digit c = c >= '0' && c <= '9' in
  let num_end =
    let rec go i =
      if i < String.length s && (is_digit s.[i] || s.[i] = '.') then go (i + 1) else i
    in
    go 0
  in
  if num_end = 0 then None
  else
    match float_of_string_opt (String.sub s 0 num_end) with
    | None -> None
    | Some value when value < 0.0 -> None
    | Some value -> (
        let suffix =
          String.lowercase_ascii (String.trim (String.sub s num_end (String.length s - num_end)))
        in
        let scale = function
          | "" | "b" -> Some 1.0
          | "k" | "kb" | "kib" -> Some (float_of_int kib)
          | "m" | "mb" | "mib" -> Some (float_of_int mib)
          | "g" | "gb" | "gib" -> Some (float_of_int gib)
          | _ -> None
        in
        match scale suffix with
        | None -> None
        | Some k -> checked_bytes (value *. k))
