type t = {
  name : string;
  sm_count : int;
  cores_per_sm : int;
  clock_ghz : float;
  warp_size : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_threads_per_block : int;
  registers_per_sm : int;
  shared_mem_per_sm : int;
  dram_bandwidth : float;
  dram_latency_cycles : int;
  coalesce_segment : int;
  issue_cycles : float;
  launch_overhead : float;
  flops_per_core_cycle : float;
}

let quadro_fx_5600 =
  {
    name = "NVIDIA Quadro FX 5600";
    sm_count = 16;
    cores_per_sm = 8;
    clock_ghz = 1.35;
    warp_size = 32;
    max_threads_per_sm = 768;
    max_blocks_per_sm = 8;
    max_threads_per_block = 512;
    registers_per_sm = 8192;
    shared_mem_per_sm = 16 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 76.8;
    dram_latency_cycles = 500;
    coalesce_segment = 64;
    issue_cycles = 4.0 (* one instruction per half-warp pair on G80 *);
    launch_overhead = Gpp_util.Units.us 30.0 (* CUDA 2.3-era driver *);
    flops_per_core_cycle = 2.0;
  }

let tesla_c1060 =
  {
    name = "NVIDIA Tesla C1060";
    sm_count = 30;
    cores_per_sm = 8;
    clock_ghz = 1.3;
    warp_size = 32;
    max_threads_per_sm = 1024;
    max_blocks_per_sm = 8;
    max_threads_per_block = 512;
    registers_per_sm = 16384;
    shared_mem_per_sm = 16 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 102.0;
    dram_latency_cycles = 550;
    coalesce_segment = 64;
    issue_cycles = 4.0;
    launch_overhead = Gpp_util.Units.us 10.0;
    flops_per_core_cycle = 2.0;
  }

let tesla_c2050 =
  {
    name = "NVIDIA Tesla C2050";
    sm_count = 14;
    cores_per_sm = 32;
    clock_ghz = 1.15;
    warp_size = 32;
    max_threads_per_sm = 1536;
    max_blocks_per_sm = 8;
    max_threads_per_block = 1024;
    registers_per_sm = 32768;
    shared_mem_per_sm = 48 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 144.0;
    dram_latency_cycles = 600;
    coalesce_segment = 128;
    issue_cycles = 2.0;
    launch_overhead = Gpp_util.Units.us 7.0;
    flops_per_core_cycle = 2.0;
  }

let gtx_750_ti =
  {
    name = "NVIDIA GeForce GTX 750 Ti";
    sm_count = 5;
    cores_per_sm = 128;
    clock_ghz = 1.02;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    shared_mem_per_sm = 64 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 86.4;
    dram_latency_cycles = 400;
    coalesce_segment = 128;
    issue_cycles = 1.0;
    launch_overhead = Gpp_util.Units.us 6.0;
    flops_per_core_cycle = 2.0;
  }

let tesla_k20x =
  {
    name = "NVIDIA Tesla K20X";
    sm_count = 14;
    cores_per_sm = 192;
    clock_ghz = 0.732;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    shared_mem_per_sm = 48 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 249.6;
    dram_latency_cycles = 600;
    coalesce_segment = 128;
    issue_cycles = 1.0;
    launch_overhead = Gpp_util.Units.us 5.0;
    flops_per_core_cycle = 2.0;
  }

let tesla_p100 =
  {
    name = "NVIDIA Tesla P100";
    sm_count = 56;
    cores_per_sm = 64;
    clock_ghz = 1.328;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    shared_mem_per_sm = 64 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 732.0;
    dram_latency_cycles = 450;
    coalesce_segment = 128;
    issue_cycles = 1.0;
    launch_overhead = Gpp_util.Units.us 4.0;
    flops_per_core_cycle = 2.0;
  }

let tesla_v100 =
  {
    name = "NVIDIA Tesla V100";
    sm_count = 80;
    cores_per_sm = 64;
    clock_ghz = 1.53;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    shared_mem_per_sm = 96 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 900.0;
    dram_latency_cycles = 430;
    coalesce_segment = 128;
    issue_cycles = 1.0;
    launch_overhead = Gpp_util.Units.us 3.5;
    flops_per_core_cycle = 2.0;
  }

let a100 =
  {
    name = "NVIDIA A100";
    sm_count = 108;
    cores_per_sm = 64;
    clock_ghz = 1.41;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    shared_mem_per_sm = 164 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 1555.0;
    dram_latency_cycles = 400;
    coalesce_segment = 128;
    issue_cycles = 1.0;
    launch_overhead = Gpp_util.Units.us 3.0;
    flops_per_core_cycle = 2.0;
  }

let h100 =
  {
    name = "NVIDIA H100";
    sm_count = 114;
    cores_per_sm = 128;
    clock_ghz = 1.755;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    shared_mem_per_sm = 228 * 1024;
    dram_bandwidth = Gpp_util.Units.gb_per_s 2000.0;
    dram_latency_cycles = 380;
    coalesce_segment = 128;
    issue_cycles = 1.0;
    launch_overhead = Gpp_util.Units.us 2.5;
    flops_per_core_cycle = 2.0;
  }

let presets =
  [
    ("quadro-fx-5600", quadro_fx_5600);
    ("tesla-c1060", tesla_c1060);
    ("tesla-c2050", tesla_c2050);
    ("gtx-750-ti", gtx_750_ti);
    ("tesla-k20x", tesla_k20x);
    ("tesla-p100", tesla_p100);
    ("tesla-v100", tesla_v100);
    ("a100", a100);
    ("h100", h100);
  ]

let peak_gflops t =
  float_of_int (t.sm_count * t.cores_per_sm) *. t.clock_ghz *. t.flops_per_core_cycle

let peak_warps_per_sm t = t.max_threads_per_sm / t.warp_size

let cycle_time t = 1e-9 /. t.clock_ghz

let add_fingerprint fp t =
  let module F = Gpp_cache.Fingerprint in
  F.add_string fp t.name;
  F.add_int fp t.sm_count;
  F.add_int fp t.cores_per_sm;
  F.add_float fp t.clock_ghz;
  F.add_int fp t.warp_size;
  F.add_int fp t.max_threads_per_sm;
  F.add_int fp t.max_blocks_per_sm;
  F.add_int fp t.max_threads_per_block;
  F.add_int fp t.registers_per_sm;
  F.add_int fp t.shared_mem_per_sm;
  F.add_float fp t.dram_bandwidth;
  F.add_int fp t.dram_latency_cycles;
  F.add_int fp t.coalesce_segment;
  F.add_float fp t.issue_cycles;
  F.add_float fp t.launch_overhead;
  F.add_float fp t.flops_per_core_cycle

let fingerprint t = Gpp_cache.Fingerprint.of_value add_fingerprint t

let validate t =
  let check cond msg = if cond then Ok () else Error (t.name ^ ": " ^ msg) in
  let ( let* ) = Result.bind in
  let* () = check (t.sm_count > 0) "sm_count must be positive" in
  let* () = check (t.cores_per_sm > 0) "cores_per_sm must be positive" in
  let* () = check (t.clock_ghz > 0.0) "clock must be positive" in
  let* () = check (t.warp_size > 0) "warp_size must be positive" in
  let* () =
    check (t.max_threads_per_sm mod t.warp_size = 0) "max_threads_per_sm not warp-aligned"
  in
  let* () = check (t.max_blocks_per_sm > 0) "max_blocks_per_sm must be positive" in
  let* () =
    check (t.max_threads_per_block <= t.max_threads_per_sm) "block larger than SM capacity"
  in
  let* () = check (t.dram_bandwidth > 0.0) "dram_bandwidth must be positive" in
  let* () = check (t.dram_latency_cycles > 0) "dram_latency must be positive" in
  let* () = check (t.coalesce_segment > 0) "coalesce_segment must be positive" in
  let* () = check (t.issue_cycles > 0.0) "issue_cycles must be positive" in
  check (t.launch_overhead >= 0.0) "launch_overhead must be non-negative"

let pp ppf t =
  Format.fprintf ppf "%s: %d SMs x %d cores @ %.2f GHz, %.0f GFLOP/s, %a DRAM" t.name t.sm_count
    t.cores_per_sm t.clock_ghz (peak_gflops t) Gpp_util.Units.pp_bandwidth t.dram_bandwidth
