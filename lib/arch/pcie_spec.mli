(** Host-to-accelerator link specifications.

    These describe the physical link; transfer mechanics (DMA setup,
    pinned vs pageable staging, noise) live in [Gpp_pcie.Link].  The
    derived raw bandwidth accounts for per-lane signalling rate and line
    encoding; the packet efficiency accounts for TLP header overhead at
    the configured maximum payload size.

    NVLink-class links are folded into the same abstraction: one NVLink
    brick is modelled as eight lanes at the per-pair signalling rate, so
    a six-brick V100 SXM2 mesh is a 48-"lane" link.  The packetisation
    model (payload + per-packet header) is the same shape, with NVLink's
    smaller flit header. *)

type generation = Gen1 | Gen2 | Gen3 | Gen4 | Gen5 | Nvlink2 | Nvlink3

type t = {
  generation : generation;
  lanes : int;  (** PCIe: 1, 2, 4, 8, or 16.  NVLink: a multiple of 8. *)
  max_payload : int;  (** TLP maximum payload size in bytes. *)
  header_bytes : int;  (** TLP header + framing per packet. *)
}

val v1_x16 : t
(** The paper's bus: PCIe v1 device in an x16 slot (§IV-A). *)

val v2_x16 : t

val v3_x16 : t

val v3_x4 : t
(** A lane-starved Gen3 slot (laptops, shared risers). *)

val v4_x16 : t

val v5_x16 : t

val nvlink2_x48 : t
(** Six NVLink 2.0 bricks (V100 SXM2-class), flattened to 48 lanes. *)

val nvlink3_x48 : t
(** Twelve NVLink 3.0 links (A100 SXM4-class), flattened to 48 lanes. *)

val gt_per_s : generation -> float
(** Per-lane signalling rate in gigatransfers per second. *)

val encoding_efficiency : generation -> float
(** 8b/10b for Gen1/2 (0.8), 128b/130b for Gen3+ and NVLink. *)

val is_nvlink : generation -> bool

val raw_bandwidth : t -> float
(** Bytes per second after line encoding, before packet overhead. *)

val packet_efficiency : t -> float
(** [max_payload / (max_payload + header_bytes)]. *)

val effective_bandwidth : t -> float
(** {!raw_bandwidth} x {!packet_efficiency}: the ceiling a perfect DMA
    engine could sustain. *)

val generation_name : generation -> string
(** ["1"].["5"], ["NVLink2"], ["NVLink3"] — the label {!link_label} and
    the machine-descriptor printer use. *)

val generation_of_name : string -> (generation, string) result
(** Inverse of the label used in machine-descriptor files: ["1"].["5"]
    (or ["gen1"]..["gen5"]), ["nvlink2"], ["nvlink3"];
    case-insensitive. *)

val link_label : t -> string
(** Short human label: ["PCIe v4 x16"], ["NVLink2 x48"]. *)

val presets : (string * t) list
(** Link presets by catalog key (["pcie1-x16"], ["nvlink2-x48"], ...),
    referenced by name from machine-descriptor sexp files. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
