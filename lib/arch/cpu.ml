type t = {
  name : string;
  cores : int;
  threads : int;
  clock_ghz : float;
  flops_per_core_cycle : float;
  mem_bandwidth : float;
  achieved_bw_fraction : float;
  llc_bytes : int;
  cache_bandwidth : float;
  parallel_efficiency : float;
  parallel_overhead : float;
}

let xeon_e5405 =
  {
    name = "Intel Xeon E5405";
    cores = 4;
    threads = 8;
    clock_ghz = 2.0;
    flops_per_core_cycle = 4.0 (* SSE: 2-wide double FMA-less mul+add *);
    mem_bandwidth = Gpp_util.Units.gb_per_s 10.6 (* FSB 1333 MT/s x 8 B *);
    achieved_bw_fraction = 0.55;
    llc_bytes = 12 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 48.0;
    parallel_efficiency = 0.82;
    parallel_overhead = Gpp_util.Units.us 6.0;
  }

let xeon_e5645 =
  {
    name = "Intel Xeon E5645";
    cores = 6;
    threads = 12;
    clock_ghz = 2.4;
    flops_per_core_cycle = 4.0;
    mem_bandwidth = Gpp_util.Units.gb_per_s 32.0;
    achieved_bw_fraction = 0.6;
    llc_bytes = 12 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 120.0;
    parallel_efficiency = 0.85;
    parallel_overhead = Gpp_util.Units.us 5.0;
  }

let xeon_e5_2690 =
  {
    name = "Intel Xeon E5-2690";
    cores = 8;
    threads = 16;
    clock_ghz = 2.9;
    flops_per_core_cycle = 8.0 (* AVX: 4-wide double mul+add *);
    mem_bandwidth = Gpp_util.Units.gb_per_s 51.2;
    achieved_bw_fraction = 0.65;
    llc_bytes = 20 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 250.0;
    parallel_efficiency = 0.87;
    parallel_overhead = Gpp_util.Units.us 4.0;
  }

let power9 =
  {
    name = "IBM POWER9";
    cores = 22;
    threads = 88;
    clock_ghz = 3.07;
    flops_per_core_cycle = 8.0;
    mem_bandwidth = Gpp_util.Units.gb_per_s 170.0;
    achieved_bw_fraction = 0.7;
    llc_bytes = 110 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 450.0;
    parallel_efficiency = 0.85;
    parallel_overhead = Gpp_util.Units.us 4.0;
  }

let epyc_7502 =
  {
    name = "AMD EPYC 7502";
    cores = 32;
    threads = 64;
    clock_ghz = 2.5;
    flops_per_core_cycle = 16.0 (* AVX2: two 4-wide double FMAs *);
    mem_bandwidth = Gpp_util.Units.gb_per_s 204.8;
    achieved_bw_fraction = 0.7;
    llc_bytes = 128 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 700.0;
    parallel_efficiency = 0.88;
    parallel_overhead = Gpp_util.Units.us 3.5;
  }

let xeon_8480 =
  {
    name = "Intel Xeon Platinum 8480+";
    cores = 56;
    threads = 112;
    clock_ghz = 2.0;
    flops_per_core_cycle = 32.0 (* AVX-512: two 8-wide double FMAs *);
    mem_bandwidth = Gpp_util.Units.gb_per_s 307.2;
    achieved_bw_fraction = 0.72;
    llc_bytes = 105 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 1000.0;
    parallel_efficiency = 0.88;
    parallel_overhead = Gpp_util.Units.us 3.0;
  }

let core_i7_4790 =
  {
    name = "Intel Core i7-4790";
    cores = 4;
    threads = 8;
    clock_ghz = 3.6;
    flops_per_core_cycle = 16.0 (* AVX2 FMA *);
    mem_bandwidth = Gpp_util.Units.gb_per_s 25.6;
    achieved_bw_fraction = 0.7;
    llc_bytes = 8 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 180.0;
    parallel_efficiency = 0.83;
    parallel_overhead = Gpp_util.Units.us 4.5;
  }

let presets =
  [
    ("xeon-e5405", xeon_e5405);
    ("xeon-e5645", xeon_e5645);
    ("xeon-e5-2690", xeon_e5_2690);
    ("power9", power9);
    ("epyc-7502", epyc_7502);
    ("xeon-8480", xeon_8480);
    ("core-i7-4790", core_i7_4790);
  ]

let peak_gflops t = float_of_int t.cores *. t.clock_ghz *. t.flops_per_core_cycle

let validate t =
  let check cond msg = if cond then Ok () else Error (t.name ^ ": " ^ msg) in
  let ( let* ) = Result.bind in
  let* () = check (t.cores > 0) "cores must be positive" in
  let* () = check (t.threads >= t.cores) "threads must be >= cores" in
  let* () = check (t.clock_ghz > 0.0) "clock must be positive" in
  let* () = check (t.mem_bandwidth > 0.0) "mem_bandwidth must be positive" in
  let* () =
    check
      (t.achieved_bw_fraction > 0.0 && t.achieved_bw_fraction <= 1.0)
      "achieved_bw_fraction outside (0, 1]"
  in
  let* () = check (t.llc_bytes > 0) "llc_bytes must be positive" in
  let* () = check (t.cache_bandwidth >= t.mem_bandwidth) "cache slower than memory" in
  let* () =
    check
      (t.parallel_efficiency > 0.0 && t.parallel_efficiency <= 1.0)
      "parallel_efficiency outside (0, 1]"
  in
  check (t.parallel_overhead >= 0.0) "parallel_overhead must be non-negative"

let pp ppf t =
  Format.fprintf ppf "%s: %d cores (%d threads) @ %.2f GHz, %.0f GFLOP/s, %a memory" t.name
    t.cores t.threads t.clock_ghz (peak_gflops t) Gpp_util.Units.pp_bandwidth t.mem_bandwidth
