(** GPU hardware descriptions.

    The analytic model and the transaction-level simulator are both
    configured from one of these records, so a projection can target any
    described device (paper §II-C: "the GPU performance model can be
    configured to reflect different GPU architectures"). *)

type t = {
  name : string;
  sm_count : int;  (** Streaming multiprocessors. *)
  cores_per_sm : int;  (** Scalar cores ("SPs") per SM. *)
  clock_ghz : float;  (** Shader clock. *)
  warp_size : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_threads_per_block : int;
  registers_per_sm : int;  (** 32-bit registers per SM. *)
  shared_mem_per_sm : int;  (** Bytes of scratchpad per SM. *)
  dram_bandwidth : float;  (** Peak device-memory bandwidth, bytes/s. *)
  dram_latency_cycles : int;  (** Uncontended global-memory latency. *)
  coalesce_segment : int;
      (** Memory-transaction granularity in bytes: a fully coalesced
          half-warp (pre-Fermi) or warp access collapses into
          transactions of this size. *)
  issue_cycles : float;  (** Cycles to issue one warp instruction. *)
  launch_overhead : float;  (** Per-kernel launch cost in seconds. *)
  flops_per_core_cycle : float;  (** 2.0 when FMA counts as two. *)
}

val quadro_fx_5600 : t
(** The paper's device: G80-class, 16 SMs, PCIe v1 era (§IV-A). *)

val tesla_c1060 : t
(** GT200-class part, for cross-architecture projection experiments. *)

val tesla_c2050 : t
(** Fermi-class part with larger coalescing segments and caches. *)

val gtx_750_ti : t
(** Maxwell desktop part: few SMs, modest DRAM — the low end of the
    zoo's launch-overhead/bandwidth regimes. *)

val tesla_k20x : t
(** Kepler GK110 compute part. *)

val tesla_p100 : t
(** Pascal HBM2 part (first >700 GB/s device in the zoo). *)

val tesla_v100 : t
(** Volta part; pairs with the NVLink2 link spec. *)

val a100 : t
(** Ampere part; pairs with PCIe Gen4 or NVLink3. *)

val h100 : t
(** Hopper part; pairs with PCIe Gen5. *)

val presets : (string * t) list
(** GPU presets by catalog key (["quadro-fx-5600"], ["a100"], ...),
    referenced by name from machine-descriptor sexp files. *)

val peak_gflops : t -> float
(** [sm_count * cores_per_sm * clock * flops_per_core_cycle] in
    GFLOP/s. *)

val peak_warps_per_sm : t -> int
(** [max_threads_per_sm / warp_size]. *)

val cycle_time : t -> float
(** Seconds per shader-clock cycle. *)

val add_fingerprint : Gpp_cache.Fingerprint.t -> t -> unit
(** Feed every architectural parameter into a digest, so cache keys
    distinguish any two differing device descriptions. *)

val fingerprint : t -> string

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
