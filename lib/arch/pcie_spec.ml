type generation = Gen1 | Gen2 | Gen3 | Gen4 | Gen5 | Nvlink2 | Nvlink3

type t = { generation : generation; lanes : int; max_payload : int; header_bytes : int }

let v1_x16 = { generation = Gen1; lanes = 16; max_payload = 128; header_bytes = 20 }

let v2_x16 = { generation = Gen2; lanes = 16; max_payload = 256; header_bytes = 20 }

let v3_x16 = { generation = Gen3; lanes = 16; max_payload = 256; header_bytes = 22 }

let v3_x4 = { generation = Gen3; lanes = 4; max_payload = 256; header_bytes = 22 }

let v4_x16 = { generation = Gen4; lanes = 16; max_payload = 256; header_bytes = 22 }

let v5_x16 = { generation = Gen5; lanes = 16; max_payload = 512; header_bytes = 22 }

(* One NVLink 2.0 brick is 8 differential pairs at 25 GT/s; a V100 SXM2
   gangs six bricks, which this abstraction flattens to 48 "lanes".
   NVLink 3.0 halves the pairs per brick but doubles the signalling
   rate; an A100 SXM4's twelve links are 4 x 12 = 48 lanes at 50 GT/s. *)
let nvlink2_x48 = { generation = Nvlink2; lanes = 48; max_payload = 256; header_bytes = 16 }

let nvlink3_x48 = { generation = Nvlink3; lanes = 48; max_payload = 256; header_bytes = 16 }

let gt_per_s = function
  | Gen1 -> 2.5
  | Gen2 -> 5.0
  | Gen3 -> 8.0
  | Gen4 -> 16.0
  | Gen5 -> 32.0
  | Nvlink2 -> 25.0
  | Nvlink3 -> 50.0

let encoding_efficiency = function
  | Gen1 | Gen2 -> 0.8
  | Gen3 | Gen4 | Gen5 -> 128.0 /. 130.0
  (* NVLink frames 128 payload bits in a 130-bit flit-like envelope;
     close enough to treat as the same embedded-clock overhead. *)
  | Nvlink2 | Nvlink3 -> 128.0 /. 130.0

let is_nvlink = function Nvlink2 | Nvlink3 -> true | Gen1 | Gen2 | Gen3 | Gen4 | Gen5 -> false

let raw_bandwidth t =
  (* GT/s x lanes = raw gigabits/s on the wire; encoding turns line bits
     into data bits; /8 turns bits into bytes. *)
  gt_per_s t.generation *. 1e9 *. float_of_int t.lanes *. encoding_efficiency t.generation /. 8.0

let packet_efficiency t = float_of_int t.max_payload /. float_of_int (t.max_payload + t.header_bytes)

let effective_bandwidth t = raw_bandwidth t *. packet_efficiency t

let validate t =
  let check cond msg = if cond then Ok () else Error ("pcie: " ^ msg) in
  let ( let* ) = Result.bind in
  let* () =
    if is_nvlink t.generation then
      (* Lanes arrive in whole bricks of eight differential pairs. *)
      check (t.lanes > 0 && t.lanes mod 8 = 0) "nvlink lane count must be a positive multiple of 8"
    else check (List.mem t.lanes [ 1; 2; 4; 8; 16 ]) "invalid lane count"
  in
  let* () = check (t.max_payload > 0) "max_payload must be positive" in
  check (t.header_bytes > 0) "header_bytes must be positive"

let generation_name = function
  | Gen1 -> "1"
  | Gen2 -> "2"
  | Gen3 -> "3"
  | Gen4 -> "4"
  | Gen5 -> "5"
  | Nvlink2 -> "NVLink2"
  | Nvlink3 -> "NVLink3"

let generation_of_name s =
  match String.lowercase_ascii s with
  | "1" | "gen1" -> Ok Gen1
  | "2" | "gen2" -> Ok Gen2
  | "3" | "gen3" -> Ok Gen3
  | "4" | "gen4" -> Ok Gen4
  | "5" | "gen5" -> Ok Gen5
  | "nvlink2" -> Ok Nvlink2
  | "nvlink3" -> Ok Nvlink3
  | _ ->
      Error
        (Printf.sprintf "unknown link generation %S (expected 1-5, nvlink2, or nvlink3)" s)

let link_label t =
  if is_nvlink t.generation then Printf.sprintf "%s x%d" (generation_name t.generation) t.lanes
  else Printf.sprintf "PCIe v%s x%d" (generation_name t.generation) t.lanes

let presets =
  [
    ("pcie1-x16", v1_x16);
    ("pcie2-x16", v2_x16);
    ("pcie3-x16", v3_x16);
    ("pcie3-x4", v3_x4);
    ("pcie4-x16", v4_x16);
    ("pcie5-x16", v5_x16);
    ("nvlink2-x48", nvlink2_x48);
    ("nvlink3-x48", nvlink3_x48);
  ]

let pp ppf t =
  Format.fprintf ppf "%s (%a effective)" (link_label t) Gpp_util.Units.pp_bandwidth
    (effective_bandwidth t)
