(** A complete host + accelerator system.

    Bundles the CPU, GPU, and link descriptions that every projection
    and simulation needs.  [presets] is the paper-era four (frozen: the
    extension experiments iterate it and their goldens embed it); [zoo]
    adds modern descriptors spanning PCIe Gen2–Gen5, NVLink-class links,
    and GPUs across SM-count/bandwidth/launch-overhead regimes;
    [catalog] is both, keyed by the short [id] the CLI accepts. *)

type staging = Pinned | Pageable
(** Default host-memory staging for application transfers: HPC nodes
    pin; desktop-class machines typically run pageable. *)

val staging_name : staging -> string

val staging_of_name : string -> (staging, string) result

type t = {
  id : string;  (** Short catalog key ([argonne], [hopper], ...). *)
  name : string;
  cpu : Cpu.t;
  gpu : Gpu.t;
  pcie : Pcie_spec.t;
  staging : staging;
}

val argonne_node : t
(** One node of the Argonne data analysis and visualization cluster used
    in the paper (§IV-A): Xeon E5405 + Quadro FX 5600 on PCIe v1 x16. *)

val section2b_node : t
(** The machine of the paper's §II-B vector-addition example: a Xeon
    E5645 (32 GB/s memory system) paired with the Quadro FX 5600 on a
    PCIe v1 bus — the combination behind the "2.4x faster kernel, ~10x
    slower end to end" argument. *)

val gt200_node : t
(** A GT200-era step-up (Tesla C1060 on PCIe v2), between the testbed
    and the Fermi node. *)

val modern_node : t
(** A Fermi-era comparison system (Tesla C2050 on PCIe v2), used by the
    extension experiments. *)

val presets : t list
(** The paper-era four, oldest first.  Frozen — new machines go in
    {!zoo}. *)

val zoo : t list
(** The modern machine zoo: Kepler through Hopper, PCIe Gen2–Gen5 plus
    NVLink2/NVLink3, pinned and pageable staging defaults. *)

val catalog : t list
(** [presets @ zoo] — every built-in machine, addressable by [id]. *)

val find : id:string -> t option
(** Catalog lookup by [id]. *)

val validate : t -> (unit, string) result
(** Structural validation of every component; error messages are
    prefixed with the machine [id]. *)

val pp : Format.formatter -> t -> unit
