type staging = Pinned | Pageable

let staging_name = function Pinned -> "pinned" | Pageable -> "pageable"

let staging_of_name = function
  | "pinned" -> Ok Pinned
  | "pageable" -> Ok Pageable
  | s -> Error (Printf.sprintf "unknown staging %S (expected pinned or pageable)" s)

type t = {
  id : string;
  name : string;
  cpu : Cpu.t;
  gpu : Gpu.t;
  pcie : Pcie_spec.t;
  staging : staging;
}

let argonne_node =
  {
    id = "argonne";
    name = "ALCF data analysis node (Xeon E5405 + Quadro FX 5600)";
    cpu = Cpu.xeon_e5405;
    gpu = Gpu.quadro_fx_5600;
    pcie = Pcie_spec.v1_x16;
    staging = Pinned;
  }

let section2b_node =
  {
    id = "section2b";
    name = "paper \u{00a7}II-B example (Xeon E5645 + Quadro FX 5600)";
    cpu = Cpu.xeon_e5645;
    gpu = Gpu.quadro_fx_5600;
    pcie = Pcie_spec.v1_x16;
    staging = Pinned;
  }

let gt200_node =
  {
    id = "gt200";
    name = "GT200 node (Xeon E5405 + Tesla C1060)";
    cpu = Cpu.xeon_e5405;
    gpu = Gpu.tesla_c1060;
    pcie = Pcie_spec.v2_x16;
    staging = Pinned;
  }

let modern_node =
  {
    id = "modern";
    name = "Fermi node (Xeon E5645 + Tesla C2050)";
    cpu = Cpu.xeon_e5645;
    gpu = Gpu.tesla_c2050;
    pcie = Pcie_spec.v2_x16;
    staging = Pinned;
  }

(* [presets] is frozen at the paper-era four: the extension-hardware
   experiment iterates it, and its golden output would change if the zoo
   leaked in.  New machines belong in [zoo]. *)
let presets = [ argonne_node; section2b_node; gt200_node; modern_node ]

let zoo =
  [
    {
      id = "kepler";
      name = "Kepler node (Xeon E5-2690 + Tesla K20X)";
      cpu = Cpu.xeon_e5_2690;
      gpu = Gpu.tesla_k20x;
      pcie = Pcie_spec.v2_x16;
      staging = Pinned;
    };
    {
      id = "desktop-maxwell";
      name = "Desktop (Core i7-4790 + GTX 750 Ti)";
      cpu = Cpu.core_i7_4790;
      gpu = Gpu.gtx_750_ti;
      pcie = Pcie_spec.v3_x16;
      staging = Pageable;
    };
    {
      id = "laptop-x4";
      name = "Lane-starved mobile workstation (Core i7-4790 + GTX 750 Ti, x4 slot)";
      cpu = Cpu.core_i7_4790;
      gpu = Gpu.gtx_750_ti;
      pcie = Pcie_spec.v3_x4;
      staging = Pageable;
    };
    {
      id = "pascal";
      name = "Pascal node (Xeon E5-2690 + Tesla P100)";
      cpu = Cpu.xeon_e5_2690;
      gpu = Gpu.tesla_p100;
      pcie = Pcie_spec.v3_x16;
      staging = Pinned;
    };
    {
      id = "volta-nvlink";
      name = "Summit-class node (POWER9 + Tesla V100, NVLink2)";
      cpu = Cpu.power9;
      gpu = Gpu.tesla_v100;
      pcie = Pcie_spec.nvlink2_x48;
      staging = Pinned;
    };
    {
      id = "ampere";
      name = "Ampere node (EPYC 7502 + A100, PCIe v4)";
      cpu = Cpu.epyc_7502;
      gpu = Gpu.a100;
      pcie = Pcie_spec.v4_x16;
      staging = Pinned;
    };
    {
      id = "dgx-a100";
      name = "DGX-class node (EPYC 7502 + A100, NVLink3)";
      cpu = Cpu.epyc_7502;
      gpu = Gpu.a100;
      pcie = Pcie_spec.nvlink3_x48;
      staging = Pinned;
    };
    {
      id = "hopper";
      name = "Hopper node (Xeon Platinum 8480+ + H100, PCIe v5)";
      cpu = Cpu.xeon_8480;
      gpu = Gpu.h100;
      pcie = Pcie_spec.v5_x16;
      staging = Pinned;
    };
  ]

let catalog = presets @ zoo

let find ~id = List.find_opt (fun t -> String.equal t.id id) catalog

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    if String.length t.id = 0 then Error "machine: id must be non-empty"
    else if String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') t.id then
      Error (Printf.sprintf "machine %s: id must not contain whitespace" t.id)
    else Ok ()
  in
  let* () = if String.length t.name = 0 then Error (t.id ^ ": name must be non-empty") else Ok () in
  let in_machine = Result.map_error (fun m -> Printf.sprintf "%s: %s" t.id m) in
  let* () = in_machine (Cpu.validate t.cpu) in
  let* () = in_machine (Gpu.validate t.gpu) in
  in_machine (Pcie_spec.validate t.pcie)

(* The suite golden embeds this rendering verbatim — the id and staging
   are surfaced by `grophecy list` and the crossval TSV instead. *)
let pp ppf t =
  Format.fprintf ppf "@[<v>%s@,  %a@,  %a@,  %a@]" t.name Cpu.pp t.cpu Gpu.pp t.gpu Pcie_spec.pp
    t.pcie
