(** CPU hardware descriptions for the baseline timing model.

    The evaluation compares GPU time against an OpenMP implementation
    running with 8 threads on the host (paper §IV-B); these records
    parameterize the multicore roofline model in [Gpp_cpu]. *)

type t = {
  name : string;
  cores : int;
  threads : int;  (** Hardware threads used by the OpenMP baseline. *)
  clock_ghz : float;
  flops_per_core_cycle : float;  (** SIMD width x FMA factor. *)
  mem_bandwidth : float;  (** Peak memory bandwidth, bytes/s. *)
  achieved_bw_fraction : float;
      (** Fraction of peak bandwidth a well-tuned streaming loop
          achieves (FSB-era parts sustain well under peak). *)
  llc_bytes : int;  (** Last-level cache capacity. *)
  cache_bandwidth : float;  (** Bandwidth when the working set is
                                cache-resident, bytes/s. *)
  parallel_efficiency : float;  (** Scaling efficiency of the threaded
                                    loop in (0, 1]. *)
  parallel_overhead : float;  (** Per parallel-region fork/join cost,
                                  seconds. *)
}

val xeon_e5405 : t
(** The paper's host CPU: quad-core Harpertown at 2.00 GHz (§IV-A). *)

val xeon_e5645 : t
(** The Westmere part from the paper's §II-B vector-add example
    (32 GB/s class memory system). *)

val xeon_e5_2690 : t
(** Sandy Bridge server part (AVX, quad-channel DDR3). *)

val power9 : t
(** The Summit-class host that pairs with NVLink-attached V100s. *)

val epyc_7502 : t
(** Rome-era 32-core host (8-channel DDR4). *)

val xeon_8480 : t
(** Sapphire Rapids host for PCIe Gen5 systems. *)

val core_i7_4790 : t
(** A desktop-class Haswell: the small-host end of the zoo. *)

val presets : (string * t) list
(** CPU presets by catalog key (["xeon-e5405"], ["epyc-7502"], ...),
    referenced by name from machine-descriptor sexp files. *)

val peak_gflops : t -> float

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
