module D = Diagnostic

let pp_text ppf (report : Driver.report) =
  let e = Driver.errors report and w = Driver.warnings report and i = Driver.infos report in
  Format.fprintf ppf "@[<v>lint %s:@," report.program_name;
  List.iter (fun d -> Format.fprintf ppf "  %a@," D.pp d) report.diagnostics;
  if e + w + i = 0 then Format.fprintf ppf "  clean: no findings@,"
  else
    Format.fprintf ppf "  %d error%s, %d warning%s, %d note%s@," e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
      i
      (if i = 1 then "" else "s");
  Format.fprintf ppf "@]"

(* Minimal JSON emission, same approach as the Chrome-trace exporter:
   the structure is fixed and shallow, so a serializer dependency would
   be overkill.  Strings are escaped per RFC 8259. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (escape s)

(* Printf "%g" can produce OCaml-isms ("inf", "nan") that are not JSON;
   diagnostics only carry finite payloads, but guard anyway. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else json_string (Float.to_string f)

let json_value = function
  | D.String s -> json_string s
  | D.Int i -> string_of_int i
  | D.Float f -> json_float f
  | D.Bool b -> if b then "true" else "false"

let json_object fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let json_array items = "[" ^ String.concat "," items ^ "]"

let json_of_diagnostic (d : D.t) =
  let optional key = function Some v -> [ (key, json_string v) ] | None -> [] in
  json_object
    ([
       ("code", json_string d.code);
       ("severity", json_string (D.severity_name d.severity));
     ]
    @ optional "kernel" d.location.kernel
    @ optional "array" d.location.array
    @ optional "detail" d.location.detail
    @ [
        ("message", json_string d.message);
        ("payload", json_object (List.map (fun (k, v) -> (k, json_value v)) d.payload));
      ])

let json_of_report (report : Driver.report) =
  json_object
    [
      ("program", json_string report.program_name);
      ("valid", if report.valid then "true" else "false");
      ( "summary",
        json_object
          [
            ("errors", string_of_int (Driver.errors report));
            ("warnings", string_of_int (Driver.warnings report));
            ("infos", string_of_int (Driver.infos report));
          ] );
      ("passes", json_array (List.map json_string report.passes_run));
      ("diagnostics", json_array (List.map json_of_diagnostic report.diagnostics));
    ]

let to_json report = json_of_report report

let json_of_reports reports = json_array (List.map json_of_report reports)
