module Program = Gpp_skeleton.Program
module Obs = Gpp_obs.Obs

let c_passes = Obs.counter "fixpoint.passes"

let c_loop_iterations = Obs.counter "fixpoint.loop_iterations"

let c_widenings = Obs.counter "fixpoint.widenings"

module type LATTICE = sig
  type t

  val leq : t -> t -> bool

  val join : t -> t -> t

  val widen : t -> t -> t
end

type stats = { passes : int; loop_iterations : int; widenings : int }

let widen_delay = 4

let max_loop_passes = 64

module Make (L : LATTICE) = struct
  type point = { index : int; kernel : string; before : L.t; after : L.t }

  type result = { points : point list; exit_fact : L.t; stats : stats }

  (* The numbered schedule: Call sites annotated with their pre-order
     index so facts recorded on later passes overwrite earlier ones. *)
  type node = NCall of int * string | NRepeat of int * node list

  let number schedule =
    let counter = ref 0 in
    let rec go inv =
      match inv with
      | Program.Call name ->
          let i = !counter in
          incr counter;
          NCall (i, name)
      | Program.Repeat (n, body) -> NRepeat (n, List.map go body)
    in
    let nodes = List.map go schedule in
    (nodes, !counter)

  let solve ~direction ~schedule ~transfer ~init =
    Obs.span "fixpoint.solve" @@ fun () ->
    let nodes, n_calls = number schedule in
    let recorded : (int * string * L.t * L.t) option array = Array.make n_calls None in
    let passes = ref 0 and loop_iterations = ref 0 and widenings = ref 0 in
    let visit_call i name fact =
      incr passes;
      let out = transfer ~index:i name fact in
      (* Schedule orientation: [before] is always the fact holding
         before the invocation executes. *)
      let before, after = match direction with `Forward -> (fact, out) | `Backward -> (out, fact) in
      recorded.(i) <- Some (i, name, before, after);
      out
    in
    let rec eval_list fact nodes =
      match direction with
      | `Forward -> List.fold_left eval fact nodes
      | `Backward -> List.fold_left eval fact (List.rev nodes)
    and eval fact node =
      match node with
      | NCall (i, name) -> visit_call i name fact
      | NRepeat (n, body) ->
          if n <= 1 then eval_list fact body
          else
            (* Back edge: iterate the body from a growing entry fact
               until it stabilizes, widening after [widen_delay]
               passes.  The final body pass runs at the fixed point, so
               the facts recorded at the calls inside are loop
               invariants. *)
            let rec iterate entry pass =
              if pass > max_loop_passes then
                failwith "Fixpoint: loop failed to stabilize (widening does not terminate?)";
              incr loop_iterations;
              let out = eval_list entry body in
              let combine = if pass >= widen_delay then (incr widenings; L.widen) else L.join in
              let next = combine entry (L.join entry out) in
              if L.leq next entry then out else iterate next (pass + 1)
            in
            iterate fact 1
    in
    let exit_fact = eval_list init nodes in
    if Obs.is_enabled () then begin
      Obs.add c_passes !passes;
      Obs.add c_loop_iterations !loop_iterations;
      Obs.add c_widenings !widenings
    end;
    let points =
      Array.to_list recorded
      |> List.filter_map
           (Option.map (fun (index, kernel, before, after) -> { index; kernel; before; after }))
    in
    {
      points;
      exit_fact;
      stats = { passes = !passes; loop_iterations = !loop_iterations; widenings = !widenings };
    }

  let forward ~schedule ~transfer ~init = solve ~direction:`Forward ~schedule ~transfer ~init

  let backward ~schedule ~transfer ~exit_ = solve ~direction:`Backward ~schedule ~transfer ~init:exit_
end

module Interval = struct
  type t = Bot | Range of int * int

  let bot = Bot

  let of_bounds (lo, hi) = if lo > hi then Bot else Range (lo, hi)

  let singleton n = Range (n, n)

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | Range _, Bot -> false
    | Range (a0, a1), Range (b0, b1) -> b0 <= a0 && a1 <= b1

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Range (a0, a1), Range (b0, b1) -> Range (min a0 b0, max a1 b1)

  let widen a b =
    match (a, b) with
    | Bot, x -> x
    | x, Bot -> x
    | Range (a0, a1), Range (b0, b1) ->
        Range ((if b0 < a0 then min_int else a0), if b1 > a1 then max_int else a1)

  let hull l = List.fold_left join Bot l

  let mem n = function Bot -> false | Range (lo, hi) -> lo <= n && n <= hi

  let pp ppf = function
    | Bot -> Format.pp_print_string ppf "⊥"
    | Range (lo, hi) -> Format.fprintf ppf "[%d, %d]" lo hi
end
