(* Bounds checking (GPP1xx).

   For every affine reference the per-dimension subscript range over the
   enclosing loop bounds is compared against the declared extents — the
   same interval arithmetic BRS extraction uses, but *before* the
   extraction's clip to the declared array (Extract clips because a halo
   read past the grid edge cannot enlarge a transfer; the linter's job
   is to report that the skeleton said it would happen).

   Severity grading follows the established skeleton idiom: stencil
   workloads legitimately describe halo *loads* one element past the
   edge (the reference implementations clamp), so an out-of-range load
   is an advisory note; an out-of-range *store* would corrupt memory in
   the real kernel and is an error, as is any reference whose section
   lies entirely outside the array. *)

module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module D = Diagnostic

type dim_status = In_bounds | Partial | Disjoint

let dim_status ~extent (lo, hi) =
  if hi < 0 || lo > extent - 1 then Disjoint
  else if lo < 0 || hi > extent - 1 then Partial
  else In_bounds

let ref_to_string (r : Ir.array_ref) = Format.asprintf "%a" Ir.pp_ref r

let check_ref ~kernel_name ~(kernel : Ir.kernel) ~(decl : Decl.t) (r : Ir.array_ref) =
  match r.pattern with
  | Ir.Indirect _ -> []
  | Ir.Affine indices ->
      let bounds v = Ir.loop_bounds kernel v in
      let ranges = List.map (Ix.range bounds) indices in
      let statuses = List.map2 (fun range extent -> dim_status ~extent range) ranges decl.dims in
      let worst =
        List.fold_left
          (fun acc s -> match (acc, s) with Disjoint, _ | _, Disjoint -> Disjoint
            | Partial, _ | _, Partial -> Partial | In_bounds, In_bounds -> In_bounds)
          In_bounds statuses
      in
      let payload =
        List.concat
          (List.mapi
             (fun i ((lo, hi), extent) ->
               [
                 (Printf.sprintf "dim%d_range" i, D.String (Printf.sprintf "%d..%d" lo hi));
                 (Printf.sprintf "dim%d_extent" i, D.Int extent);
               ])
             (List.combine ranges decl.dims))
      in
      let detail = ref_to_string r in
      let diag ~code ~severity fmt =
        Format.kasprintf
          (fun message ->
            [ D.v ~code ~severity ~kernel:kernel_name ~array:r.array ~detail ~payload message ])
          fmt
      in
      let extents = String.concat " x " (List.map string_of_int decl.dims) in
      let spans =
        String.concat ", " (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) ranges)
      in
      (match (worst, r.access) with
      | In_bounds, _ -> []
      | Disjoint, _ ->
          diag ~code:"GPP103" ~severity:D.Error
            "reference lies entirely outside %s (subscripts span [%s], extents %s): no declared \
             element is ever touched"
            r.array spans extents
      | Partial, Ir.Store ->
          diag ~code:"GPP101" ~severity:D.Error
            "store past the declared extent of %s (subscripts span [%s], extents %s): the real \
             kernel would corrupt adjacent memory"
            r.array spans extents
      | Partial, Ir.Load ->
          diag ~code:"GPP102" ~severity:D.Info
            "halo load outside %s (subscripts span [%s], extents %s); transfer analysis clips to \
             the declared extent"
            r.array spans extents)

let run (ctx : Pass.context) =
  let program = ctx.program in
  List.concat_map
    (fun (k : Ir.kernel) ->
      match Pass.summary_of ctx k.name with
      | None -> []
      | Some _ ->
          List.concat_map
            (fun (_weight, r) ->
              match Pass.decl_of ctx r.Ir.array with
              | None -> []
              | Some decl -> check_ref ~kernel_name:k.name ~kernel:k ~decl r)
            (Ir.refs k))
    program.kernels

let pass : Pass.t =
  {
    Pass.name = "bounds";
    description = "affine subscript ranges vs declared array extents";
    codes =
      [
        {
          Pass.code = "GPP101";
          severity = D.Error;
          summary = "store past the declared extent";
          explanation =
            "Interval analysis of the affine subscripts shows this store can reach indices \
             beyond the declared array extent.  On real hardware that is memory corruption; in \
             the model it means the declaration and the loop bounds disagree.";
          fix =
            "Grow the declared dimension, shrink the loop extent, or guard the store with the \
             branch the original code uses.";
        };
        {
          Pass.code = "GPP102";
          severity = D.Info;
          summary = "halo load outside the declared extent";
          explanation =
            "A load steps at most one element outside the array — the classic stencil halo.  \
             The section is clipped to the declaration for transfer sizing, so the plan is \
             unaffected; the note exists so a genuinely missing halo row is not mistaken for \
             modeling noise.";
          fix =
            "Nothing, if the original code clamps at the boundary; otherwise declare the array \
             with its halo included.";
        };
        {
          Pass.code = "GPP103";
          severity = D.Error;
          summary = "reference entirely out of bounds";
          explanation =
            "No index this subscript can produce lands inside the declared extent, so the \
             reference as modeled touches nothing — the skeleton is inconsistent and the \
             transfer plan for this array is meaningless.";
          fix = "Fix the subscript expression or the declared dimensions; they cannot both be right.";
        };
      ];
    needs_valid = true;
    run;
  }
