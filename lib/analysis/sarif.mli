(** SARIF 2.1.0 export of lint reports.

    Static Analysis Results Interchange Format, the schema code-hosting
    CIs ingest for inline annotations.  The writer is self-contained
    (built on {!Render}'s JSON primitives — no serializer dependency)
    and emits a single run:

    - the tool component lists every registered diagnostic code as a
      SARIF [reportingDescriptor], with the short summary, the
      long-form explanation, and the suggested fix from the pass's
      {!Pass.code_doc};
    - each diagnostic becomes a [result] referencing its rule by index,
      with severities mapped [Error]→[error], [Warning]→[warning],
      [Info]→[note], the skeleton location (program / kernel / array)
      as a logical location, and the diagnostic payload preserved under
      [properties]. *)

val of_reports : Driver.report list -> string
(** One SARIF log document covering all reports (one run, results in
    report order). *)
