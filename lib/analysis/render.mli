(** Report renderers for [grophecy lint]. *)

val pp_text : Format.formatter -> Driver.report -> unit
(** Human-readable listing: one line per diagnostic plus a summary
    tally (or a "clean" line when there is nothing to say). *)

val to_json : Driver.report -> string
(** Machine-readable report:
    {v
    { "program": ..., "valid": ...,
      "summary": {"errors": n, "warnings": n, "infos": n},
      "passes": [...],
      "diagnostics": [
        {"code": ..., "severity": ..., "message": ...,
         "kernel"?: ..., "array"?: ..., "detail"?: ...,
         "payload": {...}}, ...] }
    v}
    Location fields are omitted when absent; payload values keep their
    types (string/int/float/bool). *)

val json_of_reports : Driver.report list -> string
(** Several programs linted in one invocation, as a JSON array. *)

(** {2 JSON emission primitives}

    Shared with the SARIF exporter ({!Sarif}); strings are escaped per
    RFC 8259. *)

val json_string : string -> string

val json_value : Diagnostic.payload_value -> string

val json_object : (string * string) list -> string
(** Keys are escaped; values must already be rendered JSON. *)

val json_array : string list -> string
