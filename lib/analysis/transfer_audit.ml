(* Transfer audit (GPP3xx).

   Grades the transfer plan itself, as two clients of the fixpoint
   dataflow engine over the invocation schedule (paper §III-B):

   - GPP301: a temporary array is written on the device but no later
     kernel ever reads it — it is not copied back (that is what the
     temporary hint means) and never consumed, so the writes and the
     bandwidth they occupy are dead.  Detected as absence from the
     backward live-section fact after the first writing call site
     ({!Gpp_dataflow.Liveness.device_live}), which handles [Repeat]
     back edges without expanding them;
   - GPP302: a kernel reads data that is already resident (produced by
     an earlier kernel, or uploaded for one) — a naive per-kernel copy
     scheme would re-transfer it; the plan elides the copy, which is
     worth knowing when comparing against a hand-written port.
     Detected by a forward engine replay whose fact tracks the
     device-resident sections; loop bodies converge after two passes
     because residency only accumulates, so the replay reports exactly
     what an unbounded schedule expansion would;
   - GPP303: an indirect or sparse access forced the conservative
     whole-array fallback, inflating the plan relative to the data the
     kernels can actually touch. *)

module Ir = Gpp_skeleton.Ir
module Program = Gpp_skeleton.Program
module Region = Gpp_brs.Region
module Extract = Gpp_brs.Extract
module Analyzer = Gpp_dataflow.Analyzer
module Liveness = Gpp_dataflow.Liveness
module Section_lattice = Gpp_dataflow.Section_lattice
module D = Diagnostic

(* The GPP302 fact: device residency split by how the data got there
   (the distinction the diagnostic message reports).  A product of two
   section-map lattices is itself a lattice, which is all the engine
   asks for. *)
module Residency = struct
  type t = { written : Section_lattice.t; uploaded : Section_lattice.t }

  let empty = { written = Section_lattice.empty; uploaded = Section_lattice.empty }

  let leq a b =
    Section_lattice.leq a.written b.written && Section_lattice.leq a.uploaded b.uploaded

  let join a b =
    {
      written = Section_lattice.join a.written b.written;
      uploaded = Section_lattice.join a.uploaded b.uploaded;
    }

  let widen a b =
    {
      written = Section_lattice.widen a.written b.written;
      uploaded = Section_lattice.widen a.uploaded b.uploaded;
    }
end

module Walk = Gpp_fixpoint.Fixpoint.Make (Residency)

let writes_region (ctx : Pass.context) kernel_name array =
  match Pass.summary_of ctx kernel_name with
  | None -> None
  | Some access -> (
      match Extract.writes_of access array with
      | Some region when not (Region.is_empty region) -> Some region
      | _ -> None)

let dead_temporaries (ctx : Pass.context) =
  let program = ctx.program in
  (* Flattened schedule position of the first write, kept purely for
     the diagnostic payload (positions are what the schedule printer
     shows); the liveness verdict comes from the engine. *)
  let first_write_position tmp =
    let rec go pos = function
      | [] -> None
      | kernel_name :: rest ->
          if Option.is_some (writes_region ctx kernel_name tmp) then Some pos
          else go (pos + 1) rest
    in
    go 0 (Program.flatten_schedule program)
  in
  let live = Liveness.device_live ~summaries:ctx.summaries program in
  List.filter_map
    (fun tmp ->
      match first_write_position tmp with
      | None -> None
      | Some first_write -> (
          (* The engine numbers call sites in schedule pre-order, so the
             first point whose kernel writes [tmp] is the same call site
             as the first flattened write occurrence.  Its [live_after]
             fact is a loop invariant: a read earlier in the same
             [Repeat] body reaches it through the back edge, exactly as
             the next flattened iteration would. *)
          match
            List.find_opt
              (fun (p : Liveness.live_point) ->
                Option.is_some (writes_region ctx p.kernel tmp))
              live.Liveness.points
          with
          | Some point when Section_lattice.mem tmp point.Liveness.live_after -> None
          | Some _ ->
              Some
                (D.v ~code:"GPP301" ~severity:D.Warning ~array:tmp
                   ~payload:[ ("first_write_position", D.Int first_write) ]
                   (Printf.sprintf
                      "dead device write: temporary %s is written on the device but never read by \
                       a later kernel and never copied back — the writes are wasted work"
                      tmp))
          | None -> None))
    program.temporaries

let resident_rereads (ctx : Pass.context) =
  let program = ctx.program in
  let reported = ref [] in
  let diagnostics = ref [] in
  let report ~array ~kernel ~source ~bytes =
    if not (List.mem array !reported) then begin
      reported := array :: !reported;
      diagnostics :=
        D.v ~code:"GPP302" ~severity:D.Info ~kernel ~array
          ~payload:[ ("resident_via", D.String source); ("elided_bytes", D.Int bytes) ]
          (Printf.sprintf
             "section of %s read by %s is already resident on the device (%s); a naive \
              per-kernel copy would re-transfer it, the transfer plan does not"
             array kernel source)
        :: !diagnostics
    end
  in
  let transfer ~index:_ kernel_name before =
    match Pass.summary_of ctx kernel_name with
    | None -> before
    | Some access ->
        (* Checks run against [before] — the fact entering this
           invocation — so only data made resident by *earlier*
           invocations counts as a re-read, while uploads accumulate
           into the outgoing fact. *)
        let acc = ref before in
        List.iter
          (fun (array, region) ->
            let elem_bytes =
              match Pass.decl_of ctx array with Some d -> d.elem_bytes | None -> 1
            in
            List.iter
              (fun section ->
                let bytes = Gpp_brs.Section.bytes ~elem_bytes section in
                if Section_lattice.covers array section before.Residency.written then
                  report ~array ~kernel:kernel_name ~source:"produced by an earlier kernel" ~bytes
                else if Section_lattice.covers array section before.Residency.uploaded then
                  report ~array ~kernel:kernel_name ~source:"uploaded for an earlier kernel" ~bytes
                else
                  acc :=
                    {
                      !acc with
                      Residency.uploaded =
                        Section_lattice.add_section array section !acc.Residency.uploaded;
                    })
              (Region.sections region))
          access.Extract.reads;
        List.iter
          (fun (array, region) ->
            List.iter
              (fun section ->
                acc :=
                  {
                    !acc with
                    Residency.written =
                      Section_lattice.add_section array section !acc.Residency.written;
                  })
              (Region.sections region))
          access.Extract.writes;
        !acc
  in
  ignore (Walk.forward ~schedule:program.schedule ~transfer ~init:Residency.empty);
  List.rev !diagnostics

let conservative_fallbacks (ctx : Pass.context) =
  let plan = Analyzer.analyze ctx.program in
  let seen = ref [] in
  List.filter_map
    (fun (t : Analyzer.transfer) ->
      if (not t.conservative) || List.mem t.array !seen then None
      else begin
        seen := t.array :: !seen;
        let kind =
          match Pass.decl_of ctx t.array with
          | Some { Gpp_skeleton.Decl.kind = Gpp_skeleton.Decl.Sparse _; _ } -> "sparse"
          | _ -> "indirectly accessed"
        in
        Some
          (D.v ~code:"GPP303" ~severity:D.Info ~array:t.array
             ~payload:
               [ ("bytes", D.Int t.bytes); ("elements", D.Int t.elements); ("kind", D.String kind) ]
             (Printf.sprintf
                "whole-array fallback: %s is %s, so the plan conservatively transfers all %s \
                 rather than the touched section"
                t.array kind
                (Gpp_util.Units.bytes_to_string t.bytes)))
      end)
    (Analyzer.transfers plan)

let run (ctx : Pass.context) =
  if ctx.summaries = [] then []
  else dead_temporaries ctx @ resident_rereads ctx @ conservative_fallbacks ctx

let pass : Pass.t =
  {
    Pass.name = "transfer-audit";
    description = "dead device writes, resident re-reads, conservative whole-array transfers";
    codes =
      [
        {
          Pass.code = "GPP301";
          severity = D.Warning;
          summary = "temporary written on the device but never read afterwards";
          explanation =
            "Backward liveness over the schedule shows no kernel after the first write ever \
             reads this temporary, and the temporary hint means it is not copied back either \
             — the store bandwidth and the kernel time spent producing it are pure waste.";
          fix =
            "Delete the producing stores (and possibly the kernel), or drop the temporary \
             hint if the host actually consumes the data.";
        };
        {
          Pass.code = "GPP302";
          severity = D.Info;
          summary = "re-read of data already resident on the device (copy elided)";
          explanation =
            "A kernel reads a section an earlier invocation already made resident (produced \
             on the device, or uploaded for an earlier kernel).  The transfer plan elides the \
             copy; a naive per-kernel port would pay it again, so this marks where the \
             data-transfer modeling wins over the baseline.";
          fix =
            "Nothing — this is informational.  When comparing against a hand port, make sure \
             the port also keeps the data resident.";
        };
        {
          Pass.code = "GPP303";
          severity = D.Info;
          summary = "conservative whole-array transfer for sparse/indirect data";
          explanation =
            "An indirect or sparse access pattern defeated section extraction, so the plan \
             falls back to transferring the whole array.  The projection stays sound but may \
             overstate transfer time relative to the elements actually touched.";
          fix =
            "If the runtime contents are known, enable the sparse-exact policy \
             (--sparse-exact) to size sparse arrays by their populated payload.";
        };
      ];
    needs_valid = true;
    run;
  }
