(* Transfer audit (GPP3xx).

   Replays the data usage analyzer's walk over the invocation schedule
   (paper §III-B) to grade the transfer plan itself:

   - GPP301: a temporary array is written on the device but no later
     kernel ever reads it — it is not copied back (that is what the
     temporary hint means) and never consumed, so the writes and the
     bandwidth they occupy are dead;
   - GPP302: a kernel reads data that is already resident (produced by
     an earlier kernel, or uploaded for one) — a naive per-kernel copy
     scheme would re-transfer it; the plan elides the copy, which is
     worth knowing when comparing against a hand-written port;
   - GPP303: an indirect or sparse access forced the conservative
     whole-array fallback, inflating the plan relative to the data the
     kernels can actually touch. *)

module Ir = Gpp_skeleton.Ir
module Program = Gpp_skeleton.Program
module Region = Gpp_brs.Region
module Extract = Gpp_brs.Extract
module Analyzer = Gpp_dataflow.Analyzer
module D = Diagnostic

module Smap = Map.Make (String)

let region_find array map =
  match Smap.find_opt array map with Some r -> r | None -> Region.empty ~array

let region_update array section map = Smap.add array (Region.add (region_find array map) section) map

let dead_temporaries (ctx : Pass.context) =
  let program = ctx.program in
  let schedule = Program.flatten_schedule program in
  let positions side array =
    List.concat
      (List.mapi
         (fun pos kernel_name ->
           match Pass.summary_of ctx kernel_name with
           | None -> []
           | Some access -> (
               match side access array with
               | Some region when not (Region.is_empty region) -> [ pos ]
               | _ -> []))
         schedule)
  in
  List.filter_map
    (fun tmp ->
      let writes = positions (fun a name -> Extract.writes_of a name) tmp in
      let reads = positions (fun a name -> Extract.reads_of a name) tmp in
      match writes with
      | [] -> None
      | first_write :: _ ->
          if List.exists (fun p -> p > first_write) reads then None
          else
            Some
              (D.v ~code:"GPP301" ~severity:D.Warning ~array:tmp
                 ~payload:[ ("first_write_position", D.Int first_write) ]
                 (Printf.sprintf
                    "dead device write: temporary %s is written on the device but never read by \
                     a later kernel and never copied back — the writes are wasted work"
                    tmp)))
    program.temporaries

let resident_rereads (ctx : Pass.context) =
  let program = ctx.program in
  let written = ref Smap.empty and uploaded = ref Smap.empty in
  let reported = ref [] in
  let diagnostics = ref [] in
  let report ~array ~kernel ~source ~bytes =
    if not (List.mem array !reported) then begin
      reported := array :: !reported;
      diagnostics :=
        D.v ~code:"GPP302" ~severity:D.Info ~kernel ~array
          ~payload:[ ("resident_via", D.String source); ("elided_bytes", D.Int bytes) ]
          (Printf.sprintf
             "section of %s read by %s is already resident on the device (%s); a naive \
              per-kernel copy would re-transfer it, the transfer plan does not"
             array kernel source)
        :: !diagnostics
    end
  in
  List.iter
    (fun kernel_name ->
      match Pass.summary_of ctx kernel_name with
      | None -> ()
      | Some access ->
          (* Snapshots from before this invocation: only data made
             resident by *earlier* invocations counts as a re-read. *)
          let written_before = !written and uploaded_before = !uploaded in
          List.iter
            (fun (array, region) ->
              let elem_bytes =
                match Pass.decl_of ctx array with Some d -> d.elem_bytes | None -> 1
              in
              List.iter
                (fun section ->
                  let bytes = Gpp_brs.Section.bytes ~elem_bytes section in
                  if Region.covers (region_find array written_before) section then
                    report ~array ~kernel:kernel_name ~source:"produced by an earlier kernel"
                      ~bytes
                  else if Region.covers (region_find array uploaded_before) section then
                    report ~array ~kernel:kernel_name ~source:"uploaded for an earlier kernel"
                      ~bytes
                  else uploaded := region_update array section !uploaded)
                (Region.sections region))
            access.Extract.reads;
          List.iter
            (fun (array, region) ->
              List.iter
                (fun section -> written := region_update array section !written)
                (Region.sections region))
            access.Extract.writes)
    (Program.flatten_schedule program);
  List.rev !diagnostics

let conservative_fallbacks (ctx : Pass.context) =
  let plan = Analyzer.analyze ctx.program in
  let seen = ref [] in
  List.filter_map
    (fun (t : Analyzer.transfer) ->
      if (not t.conservative) || List.mem t.array !seen then None
      else begin
        seen := t.array :: !seen;
        let kind =
          match Pass.decl_of ctx t.array with
          | Some { Gpp_skeleton.Decl.kind = Gpp_skeleton.Decl.Sparse _; _ } -> "sparse"
          | _ -> "indirectly accessed"
        in
        Some
          (D.v ~code:"GPP303" ~severity:D.Info ~array:t.array
             ~payload:
               [ ("bytes", D.Int t.bytes); ("elements", D.Int t.elements); ("kind", D.String kind) ]
             (Printf.sprintf
                "whole-array fallback: %s is %s, so the plan conservatively transfers all %s \
                 rather than the touched section"
                t.array kind
                (Gpp_util.Units.bytes_to_string t.bytes)))
      end)
    (Analyzer.transfers plan)

let run (ctx : Pass.context) =
  if ctx.summaries = [] then []
  else dead_temporaries ctx @ resident_rereads ctx @ conservative_fallbacks ctx

let pass : Pass.t =
  {
    Pass.name = "transfer-audit";
    description = "dead device writes, resident re-reads, conservative whole-array transfers";
    codes =
      [
        {
          Pass.code = "GPP301";
          severity = D.Warning;
          summary = "temporary written on the device but never read afterwards";
        };
        {
          Pass.code = "GPP302";
          severity = D.Info;
          summary = "re-read of data already resident on the device (copy elided)";
        };
        {
          Pass.code = "GPP303";
          severity = D.Info;
          summary = "conservative whole-array transfer for sparse/indirect data";
        };
      ];
    needs_valid = true;
    run;
  }
