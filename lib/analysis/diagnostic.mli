(** Structured diagnostics produced by the static-analysis passes.

    Every finding carries a stable code ([GPP] + three digits, grouped
    by pass family), a severity, a source location inside the skeleton
    (kernel / array / statement detail, each optional), a human-readable
    message, and a machine-readable payload rendered verbatim into the
    JSON output.  Codes are part of the tool's contract: tests and CI
    match on them, so existing codes must never be renumbered. *)

type severity =
  | Error  (** Definite defect: the projection over this skeleton is untrustworthy. *)
  | Warning  (** Likely defect or wasted work; [lint --strict] fails on these. *)
  | Info  (** Advisory note (expected conservatism, performance hints). *)

type location = {
  kernel : string option;  (** Kernel the finding is anchored in, when any. *)
  array : string option;  (** Array the finding concerns, when any. *)
  detail : string option;
      (** Statement-level context, e.g. the offending reference printed
          in skeleton syntax. *)
}

type payload_value = String of string | Int of int | Float of float | Bool of bool

type t = {
  code : string;  (** Stable identifier, e.g. ["GPP101"]. *)
  severity : severity;
  location : location;
  message : string;
  payload : (string * payload_value) list;
}

val v :
  code:string ->
  severity:severity ->
  ?kernel:string ->
  ?array:string ->
  ?detail:string ->
  ?payload:(string * payload_value) list ->
  string ->
  t

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_rank : severity -> int
(** 0 for [Error], 1 for [Warning], 2 for [Info] — ascending urgency
    order used for sorting. *)

val compare : t -> t -> int
(** Severity first (errors before infos), then code, then location —
    the presentation order of a report. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** One line: [error GPP101 (kernel k, array a): message]. *)
