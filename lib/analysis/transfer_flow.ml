(* Transfer-flow diagnostics (GPP6xx).

   Where the GPP3xx audit replays the plan the analyzer builds, this
   pass diagnoses what the fixpoint machinery can prove *about* the
   plan:

   - GPP601/GPP602 diff the conservative plan against the minimal one.
     Both policies track device residency identically (see
     {!Gpp_dataflow.Analyzer}), so an array present in one plan and
     absent from the other differs for exactly one reason: every
     reference that priced the transfer is statically dead, and
     {!Gpp_dataflow.Liveness.refine} names which reference and why.
   - GPP603 inspects [Repeat] nodes of the schedule directly: an array
     read but never written inside an iterative region has a
     loop-invariant upload, which the engine hoists (the fact entering
     the loop already covers it after one body pass) and a naive
     per-iteration port would not.
   - GPP604 runs the {!Gpp_fixpoint.Fixpoint.Interval} lattice over
     affine subscripts: the hull of every reference to an array is a
     sound over-approximation of the touched index set, so a hull that
     stops short of the declared extent proves the tail (or head) of
     the declaration unreachable. *)

module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program
module Region = Gpp_brs.Region
module Extract = Gpp_brs.Extract
module Analyzer = Gpp_dataflow.Analyzer
module Liveness = Gpp_dataflow.Liveness
module Interval = Gpp_fixpoint.Fixpoint.Interval
module D = Diagnostic

(* Distinct dead-reference reasons for [array] with access [access],
   in kernel order — the evidence quoted by GPP601/602. *)
let dead_reasons ~(ctx : Pass.context) ~access array =
  let decls = ctx.program.arrays in
  List.fold_left
    (fun acc (k : Ir.kernel) ->
      let refined = Liveness.refine ~decls k in
      List.fold_left
        (fun acc (d : Liveness.dead_ref) ->
          if d.array = array && d.access = access then
            let reason = Liveness.reason_text d.reason in
            if List.mem reason acc then acc else acc @ [ reason ]
          else acc)
        acc refined.Liveness.dead_refs)
    [] ctx.program.kernels

let plan_diff (ctx : Pass.context) =
  let conservative = Analyzer.analyze ctx.program in
  let minimal =
    Analyzer.analyze
      ~policy:{ Analyzer.default_policy with Analyzer.plan = Analyzer.Minimal }
      ctx.program
  in
  let elided side (t : Analyzer.transfer) =
    not (List.exists (fun (m : Analyzer.transfer) -> m.array = t.array) (side minimal))
  in
  let describe ~code ~access ~what ~consequence (t : Analyzer.transfer) =
    let reasons =
      match dead_reasons ~ctx ~access t.array with
      | [] -> "no statically live reference remains"
      | rs -> String.concat "; " rs
    in
    D.v ~code ~severity:D.Warning ~array:t.array
      ~payload:[ ("bytes", D.Int t.bytes); ("reasons", D.String reasons) ]
      (Printf.sprintf "%s: every %s of %s is statically dead (%s), so the %s %s" what
         (match access with Ir.Load -> "device read" | Ir.Store -> "device store")
         t.array reasons
         (Gpp_util.Units.bytes_to_string t.bytes)
         consequence)
  in
  let redundant_uploads =
    conservative.Analyzer.to_device
    |> List.filter (elided (fun (p : Analyzer.plan) -> p.Analyzer.to_device))
    |> List.map
         (describe ~code:"GPP601" ~access:Ir.Load ~what:"redundant host-to-device transfer"
            ~consequence:"upload in the conservative plan is never consumed")
  in
  let dead_downloads =
    conservative.Analyzer.from_device
    |> List.filter (elided (fun (p : Analyzer.plan) -> p.Analyzer.from_device))
    |> List.map
         (describe ~code:"GPP602" ~access:Ir.Store ~what:"dead device-to-host transfer"
            ~consequence:"download in the conservative plan carries data the device never produces")
  in
  redundant_uploads @ dead_downloads

(* Kernel names called anywhere inside a schedule subtree. *)
let rec called_kernels acc = function
  | Program.Call name -> name :: acc
  | Program.Repeat (_, body) -> List.fold_left called_kernels acc body

let hoistable_transfers (ctx : Pass.context) =
  let program = ctx.program in
  let plan = Analyzer.analyze program in
  let uploaded array =
    List.find_opt (fun (t : Analyzer.transfer) -> t.array = array) plan.Analyzer.to_device
  in
  let reported = ref [] in
  let loop_diags n body =
    let kernels = List.fold_left called_kernels [] body in
    let side_region side array =
      List.fold_left
        (fun acc kernel ->
          match Pass.summary_of ctx kernel with
          | None -> acc
          | Some access -> (
              match side access array with Some r -> Region.merge acc r | None -> acc))
        (Region.empty ~array) kernels
    in
    List.filter_map
      (fun (d : Decl.t) ->
        if List.mem d.name !reported then None
        else
          let reads = side_region Extract.reads_of d.name in
          if Region.is_empty reads || not (Region.is_empty (side_region Extract.writes_of d.name))
          then None
          else
            match uploaded d.name with
            | None -> None
            | Some t ->
                reported := d.name :: !reported;
                let per_iteration =
                  min (Region.covered_elements reads) (Decl.elements d) * d.elem_bytes
                in
                let saved = (n - 1) * per_iteration in
                Some
                  (D.v ~code:"GPP603" ~severity:D.Info ~array:d.name
                     ~payload:
                       [
                         ("iterations", D.Int n);
                         ("per_iteration_bytes", D.Int per_iteration);
                         ("saved_bytes", D.Int saved);
                         ("planned_bytes", D.Int t.bytes);
                       ]
                     (Printf.sprintf
                        "loop-invariant transfer: %s is read inside a %d-iteration schedule loop \
                         but never written by it; the plan hoists the upload before the loop, \
                         saving %s versus a per-iteration copy"
                        d.name n
                        (Gpp_util.Units.bytes_to_string saved))))
      program.arrays
  in
  let rec walk = function
    | Program.Call _ -> []
    | Program.Repeat (n, body) ->
        let here = if n >= 2 then loop_diags n body else [] in
        here @ List.concat_map walk body
  in
  List.concat_map walk program.schedule

(* GPP604: interval hulls of affine subscripts vs declared extents. *)
let unreachable_extents (ctx : Pass.context) =
  let program = ctx.program in
  (* Arrays read through an index array are touched data-dependently;
     their reachable set is unknowable statically, as is that of the
     index array itself (read in full by the gather). *)
  let excluded =
    List.concat_map
      (fun (k : Ir.kernel) ->
        List.concat_map
          (fun ((_, r) : float * Ir.array_ref) ->
            match r.pattern with
            | Ir.Indirect { index_array; _ } -> [ r.array; index_array ]
            | Ir.Affine _ -> [])
          (Ir.refs k))
      program.kernels
  in
  List.filter_map
    (fun (d : Decl.t) ->
      if List.mem d.name excluded then None
      else
        let hulls =
          List.fold_left
            (fun acc (k : Ir.kernel) ->
              let bounds v = Ir.loop_bounds k v in
              List.fold_left
                (fun acc ((_, r) : float * Ir.array_ref) ->
                  if r.array <> d.name then acc
                  else
                    match r.pattern with
                    | Ir.Indirect _ -> acc
                    | Ir.Affine indices ->
                        let ranges =
                          List.map (fun e -> Interval.of_bounds (Ix.range bounds e)) indices
                        in
                        Some
                          (match acc with
                          | None -> ranges
                          | Some acc -> List.map2 Interval.join acc ranges))
                acc (Ir.refs k))
            None program.kernels
        in
        match hulls with
        | None -> None
        | Some hulls ->
            let reached =
              List.map2
                (fun hull extent ->
                  match hull with
                  | Interval.Bot -> (0, -1)
                  | Interval.Range (lo, hi) -> (max 0 lo, min hi (extent - 1)))
                hulls d.dims
            in
            let unreachable =
              List.exists2
                (fun (lo, hi) extent -> lo > 0 || hi < extent - 1)
                reached d.dims
            in
            if not unreachable then None
            else
              let spans =
                String.concat ", "
                  (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) reached)
              in
              let extents = String.concat " x " (List.map string_of_int d.dims) in
              let payload =
                List.concat
                  (List.mapi
                     (fun i ((lo, hi), extent) ->
                       [
                         ( Printf.sprintf "dim%d_reached" i,
                           D.String (Printf.sprintf "%d..%d" lo hi) );
                         (Printf.sprintf "dim%d_extent" i, D.Int extent);
                       ])
                     (List.combine reached d.dims))
              in
              Some
                (D.v ~code:"GPP604" ~severity:D.Info ~array:d.name ~payload
                   (Printf.sprintf
                      "declared extent unreachable: the interval hull of every affine subscript \
                       of %s reaches only [%s] of the declared %s — the untouched elements \
                       inflate any conservative transfer of the array"
                      d.name spans extents)))
    program.arrays

let run (ctx : Pass.context) =
  if ctx.summaries = [] then []
  else plan_diff ctx @ hoistable_transfers ctx @ unreachable_extents ctx

let pass : Pass.t =
  {
    Pass.name = "transfer-flow";
    description = "plan-diff, loop-hoisting, and interval-reachability transfer findings";
    codes =
      [
        {
          Pass.code = "GPP601";
          severity = D.Warning;
          summary = "redundant host-to-device transfer (reads statically dead)";
          explanation =
            "The conservative plan uploads this array, but every device read of it is \
             statically dead — under a probability-0 branch, or covered by an identical prior \
             store in the same kernel — so the minimal plan elides the transfer entirely.  The \
             upload spends PCIe bandwidth on data the device never consumes.";
          fix =
            "Delete the dead loads from the skeleton (or fix the branch probability if the \
             reads do execute); compare with --transfer-plan minimal to size the saving.";
        };
        {
          Pass.code = "GPP602";
          severity = D.Warning;
          summary = "dead device-to-host transfer (stores statically dead)";
          explanation =
            "The conservative plan copies this array back to the host, but every device store \
             to it is statically dead, so the download carries data the device never actually \
             produces — the real program would read back stale or uninitialized memory.";
          fix =
            "Delete the dead stores, mark the array as a temporary, or fix the branch \
             probability if the stores do execute.";
        };
        {
          Pass.code = "GPP603";
          severity = D.Info;
          summary = "upload hoistable out of an iterative schedule";
          explanation =
            "The array is read inside a Repeat loop of the schedule and never written by it, \
             so its upload is loop-invariant: the plan moves it once before the loop (§IV-B).  \
             A naive port that copies per kernel launch would pay the upload every iteration; \
             the payload quantifies that saving.";
          fix =
            "Nothing for the model — this marks a place where the data-transfer analysis \
             beats a per-kernel copy scheme.  A hand port should hoist the same copy.";
        };
        {
          Pass.code = "GPP604";
          severity = D.Info;
          summary = "declared extent provably never referenced in full";
          explanation =
            "The interval hull of every affine subscript over its loop bounds is a sound \
             over-approximation of the indices touched, and it stops short of the declared \
             extent — the untouched slice can never be referenced by any execution.  \
             Conservative whole-array transfers (sparse or indirect fallbacks) are sized by \
             the declaration, so they move bytes no kernel can see.";
          fix =
            "Shrink the declared dimensions to the data actually used, or widen the loop \
             bounds if the kernel is meant to cover the whole array.";
        };
      ];
    needs_valid = true;
    run;
  }
