(** Transfer-flow diagnostics (GPP6xx): findings derived from the
    fixpoint dataflow clients — the conservative-vs-minimal plan diff,
    the schedule's loop structure, and interval analysis of affine
    subscripts.

    - [GPP601] (warning): the conservative plan uploads an array whose
      device reads are all statically dead, so the minimal plan elides
      the transfer entirely — the upload is redundant;
    - [GPP602] (warning): the conservative plan downloads an array whose
      device stores are all statically dead — the download carries data
      the device never produces;
    - [GPP603] (info): an array is read inside a [Repeat] loop of the
      schedule but never written by it; the plan hoists its upload
      before the loop, which a naive per-iteration port would pay every
      iteration;
    - [GPP604] (info): the interval hull of every affine subscript of an
      array stops short of its declared extent — part of the
      declaration is provably never referenced. *)

val pass : Pass.t
