(** The analysis driver: runs every registered pass over a program and
    assembles a report.

    A program that fails [Program.validate] still produces a report: the
    validation error is surfaced as diagnostic [GPP001] and only passes
    that do not require a valid program (the structural checks) run.

    [grophecy lint] renders reports; [grophecy project]/[advise] run the
    driver first so an ill-formed-but-valid skeleton cannot project
    silently. *)

type report = {
  program_name : string;
  valid : bool;  (** Whether [Program.validate] succeeded. *)
  passes_run : string list;
  diagnostics : Diagnostic.t list;  (** Deduplicated, severity-sorted. *)
}

val default_passes : Pass.t list
(** Program checks, bounds, races, transfer audit, transfer flow,
    performance lints — in that order. *)

val code_index : unit -> Pass.code_doc list
(** Every diagnostic code the default passes can emit (plus [GPP001]),
    sorted by code — the source of the documentation table. *)

val find_code : string -> Pass.code_doc option
(** Case-insensitive lookup in {!code_index} ("gpp101" finds
    ["GPP101"]). *)

val nearest_code : string -> string
(** The registered code closest to the (unrecognized) input by edit
    distance — the "did you mean" suggestion for [lint --explain] and
    [lint --codes]. *)

val run : ?gpu:Gpp_arch.Gpu.t -> ?passes:Pass.t list -> Gpp_skeleton.Program.t -> report
(** [gpu] (default: the paper's Quadro FX 5600) parameterizes the
    coalescing lints. *)

val errors : report -> int

val warnings : report -> int

val infos : report -> int

val clean : strict:bool -> report -> bool
(** No errors; with [~strict:true], no warnings either. *)

val exit_code : strict:bool -> report -> int
(** [0] when {!clean}, [1] otherwise. *)
