(* Performance lints (GPP4xx).

   Advisory notes derived from the same mapping analysis the
   transformation explorer uses: they do not make a projection wrong
   (the models account for them — that is the point of the framework),
   but they mark the spots where the projected kernel loses hardware
   efficiency, which is what a porting effort would attack first.

   - GPP401: an access whose adjacent-thread stride defeats coalescing
     on the target GPU — scattered gathers, or affine strides at least
     one full coalescing segment wide (one memory transaction per lane);
   - GPP402: a divergent branch in a hot kernel — both sides execute
     serially for any warp whose lanes disagree.

   Tiny kernels are exempt ([hot_threshold]): launch overhead dwarfs
   anything these lints describe. *)

module Ir = Gpp_skeleton.Ir
module Mapping = Gpp_transform.Mapping
module D = Diagnostic

let hot_threshold = 256
(* Parallel iterations below which a kernel is too small to bother. *)

let ref_to_string (r : Ir.array_ref) = Format.asprintf "%a" Ir.pp_ref r

let uncoalesced ~(ctx : Pass.context) ~(kernel : Ir.kernel) =
  let gpu = ctx.gpu in
  let decls = ctx.program.arrays in
  List.filter_map
    (fun (_weight, (r : Ir.array_ref)) ->
      match Pass.decl_of ctx r.array with
      | None -> None
      | Some decl -> (
          let stride = Mapping.ref_stride ~decls ~kernel r in
          let transactions =
            Mapping.transactions_per_access ~gpu ~elem_bytes:decl.elem_bytes stride
          in
          let diag why payload =
            Some
              (D.v ~code:"GPP401" ~severity:D.Info ~kernel:kernel.name ~array:r.array
                 ~detail:(ref_to_string r)
                 ~payload:
                   (payload
                   @ [
                       ("transactions_per_warp_access", D.Float transactions);
                       ("coalesce_segment_bytes", D.Int gpu.coalesce_segment);
                     ])
                 (Printf.sprintf
                    "uncoalesced access to %s: %s, costing %.0f memory transactions per warp \
                     access (fully coalesced would need %.0f)"
                    r.array why transactions
                    (ceil
                       (float_of_int (gpu.warp_size * decl.elem_bytes)
                       /. float_of_int gpu.coalesce_segment))))
          in
          match stride with
          | Mapping.Scattered ->
              diag "adjacent threads gather unrelated addresses"
                [ ("stride", D.String "scattered") ]
          | Mapping.Bytes b when abs b >= gpu.coalesce_segment ->
              diag
                (Printf.sprintf "adjacent threads are %d bytes apart (segment is %d)" (abs b)
                   gpu.coalesce_segment)
                [ ("stride_bytes", D.Int (abs b)) ]
          | Mapping.Bytes _ -> None))
    (Ir.refs kernel)

let divergent_branches ~kernel_name (body : Ir.stmt list) =
  let rec go acc = function
    | Ir.Ref _ | Ir.Compute _ -> acc
    | Ir.Branch { probability; divergent; body } ->
        let acc =
          if divergent && probability > 0.0 && probability < 1.0 then
            D.v ~code:"GPP402" ~severity:D.Info ~kernel:kernel_name
              ~payload:[ ("probability", D.Float probability) ]
              (Printf.sprintf
                 "divergent branch (taken with probability %g): warps whose lanes disagree \
                  execute both sides serially"
                 probability)
            :: acc
          else acc
        in
        List.fold_left go acc body
  in
  List.rev (List.fold_left go [] body)

let run (ctx : Pass.context) =
  List.concat_map
    (fun (k : Ir.kernel) ->
      match Pass.summary_of ctx k.name with
      | None -> []
      | Some _ when Ir.parallel_iterations k < hot_threshold -> []
      | Some _ -> uncoalesced ~ctx ~kernel:k @ divergent_branches ~kernel_name:k.name k.body)
    ctx.program.kernels

let pass : Pass.t =
  {
    Pass.name = "perf-lints";
    description = "coalescing and divergence hints for hot kernels";
    codes =
      [
        {
          Pass.code = "GPP401";
          severity = D.Info;
          summary = "access stride defeats memory coalescing";
          explanation =
            "Adjacent threads of this access are at least one coalescing segment apart (or \
             scattered through an index array), so each warp access costs one memory \
             transaction per lane instead of a handful per warp.  The performance model \
             already charges for this; the lint marks where a port would recover bandwidth.";
          fix =
            "Transpose the array or swap the loop nest so the fastest-varying thread index \
             walks the contiguous dimension, or stage the gather through shared memory.";
        };
        {
          Pass.code = "GPP402";
          severity = D.Info;
          summary = "divergent branch in a hot kernel";
          explanation =
            "A branch marked divergent with probability strictly between 0 and 1 makes any \
             warp whose lanes disagree execute both sides serially, halving (or worse) the \
             kernel's arithmetic throughput on the diverged warps.";
          fix =
            "Restructure so whole warps agree (sort or partition the data), or replace the \
             branch with predicated arithmetic when both sides are cheap.";
        };
      ];
    needs_valid = true;
    run;
  }
