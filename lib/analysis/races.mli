(** Race detection over BRS sections.

    Emits [GPP201] (error: store independent of a parallel loop
    variable — a write-write race by construction), [GPP202] (warning:
    two distinct stores with overlapping sections), and [GPP203]
    (warning: intra-kernel read overlapping another thread's store —
    requires a barrier the kernel cannot express). *)

val pass : Pass.t
