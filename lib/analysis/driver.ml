type report = {
  program_name : string;
  valid : bool;
  passes_run : string list;
  diagnostics : Diagnostic.t list;
}

let default_passes =
  [
    Program_checks.pass;
    Bounds.pass;
    Races.pass;
    Transfer_audit.pass;
    Transfer_flow.pass;
    Perf_lints.pass;
  ]

let invalid_program_doc =
  {
    Pass.code = "GPP001";
    severity = Diagnostic.Error;
    summary = "program failed structural validation";
    explanation =
      "Program.validate rejected the skeleton (an unknown array or kernel name, a malformed \
       loop nest, or an inconsistent declaration), so BRS extraction cannot run and every \
       pass that needs section summaries is skipped.";
    fix = "Fix the structural error quoted in the message; the remaining passes run once \
           validation succeeds.";
  }

let code_index () =
  invalid_program_doc :: List.concat_map (fun (p : Pass.t) -> p.Pass.codes) default_passes
  |> List.sort (fun (a : Pass.code_doc) b -> String.compare a.code b.code)

let find_code query =
  let canon = String.uppercase_ascii (String.trim query) in
  List.find_opt (fun (c : Pass.code_doc) -> c.Pass.code = canon) (code_index ())

let nearest_code query =
  let canon = String.uppercase_ascii (String.trim query) in
  let candidates = List.map (fun (c : Pass.code_doc) -> c.Pass.code) (code_index ()) in
  Option.value (Gpp_util.Levenshtein.nearest ~candidates canon) ~default:"GPP001"

let dedupe diagnostics =
  List.fold_left
    (fun acc d -> if List.exists (Diagnostic.equal d) acc then acc else d :: acc)
    [] diagnostics
  |> List.rev

let run ?gpu ?(passes = default_passes) (program : Gpp_skeleton.Program.t) =
  let ctx = Pass.make_context ?gpu program in
  let validation = Gpp_skeleton.Program.validate program in
  let valid = Result.is_ok validation in
  let validation_diags =
    match validation with
    | Ok () -> []
    | Error message -> [ Diagnostic.v ~code:"GPP001" ~severity:Diagnostic.Error message ]
  in
  let runnable = List.filter (fun (p : Pass.t) -> valid || not p.Pass.needs_valid) passes in
  let diagnostics =
    validation_diags @ List.concat_map (fun (p : Pass.t) -> p.Pass.run ctx) runnable
  in
  {
    program_name = program.name;
    valid;
    passes_run = List.map (fun (p : Pass.t) -> p.Pass.name) runnable;
    diagnostics = List.sort Diagnostic.compare (dedupe diagnostics);
  }

let count severity report =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = severity) report.diagnostics)

let errors = count Diagnostic.Error

let warnings = count Diagnostic.Warning

let infos = count Diagnostic.Info

let clean ~strict report = errors report = 0 && ((not strict) || warnings report = 0)

let exit_code ~strict report = if clean ~strict report then 0 else 1
