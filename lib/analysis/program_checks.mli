(** Structural program checks (run even on invalid programs).

    Emits [GPP501]/[GPP502] (error: duplicate array/kernel names),
    [GPP503] (warning: array never referenced), [GPP504] (warning:
    kernel never scheduled), and [GPP505] (warning: temporary hint on
    an array no kernel writes). *)

val pass : Pass.t
