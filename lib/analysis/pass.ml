type context = {
  program : Gpp_skeleton.Program.t;
  gpu : Gpp_arch.Gpu.t;
  summaries : (string * Gpp_brs.Extract.access) list;
}

type code_doc = {
  code : string;
  severity : Diagnostic.severity;
  summary : string;
  explanation : string;
  fix : string;
}

type t = {
  name : string;
  description : string;
  codes : code_doc list;
  needs_valid : bool;
  run : context -> Diagnostic.t list;
}

let make_context ?(gpu = Gpp_arch.Gpu.quadro_fx_5600) (program : Gpp_skeleton.Program.t) =
  let summaries =
    match Gpp_skeleton.Program.validate program with
    | Error _ -> []
    | Ok () ->
        List.map
          (fun (k : Gpp_skeleton.Ir.kernel) ->
            (k.name, Gpp_brs.Extract.of_kernel ~decls:program.arrays k))
          program.kernels
  in
  { program; gpu; summaries }

let summary_of ctx name = List.assoc_opt name ctx.summaries

let decl_of ctx name =
  List.find_opt (fun (d : Gpp_skeleton.Decl.t) -> d.name = name) ctx.program.arrays
