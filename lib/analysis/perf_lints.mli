(** Performance lints against the context GPU.

    Emits [GPP401] (info: access stride defeats coalescing) and
    [GPP402] (info: divergent branch in a hot kernel).  Kernels with
    fewer than {!hot_threshold} parallel iterations are exempt. *)

val hot_threshold : int

val pass : Pass.t
