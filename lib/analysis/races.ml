(* Race detection (GPP2xx).

   The skeleton execution model maps parallel loop iterations to GPU
   threads with no ordering guarantees and no synchronization inside a
   kernel (kernel boundaries are the only barriers, as in the CUDA
   programs the skeletons describe).  Three hazards are detectable
   directly from the BRS section algebra:

   - GPP201: a store whose subscripts are independent of some parallel
     loop variable — every thread along that variable writes the same
     elements (a write-write race by construction);
   - GPP202: two syntactically distinct stores to one array whose
     sections overlap — different threads can target the same element;
   - GPP203: a load and a store to one array with distinct subscripts
     and overlapping sections — a thread may read an element another
     thread writes, which needs a barrier the kernel cannot express
     (kernel fission required).

   Stores and loads with *identical* subscript patterns are the
   same-element-per-thread idiom (read-modify-write accumulators,
   in-place updates) and race-free under the one-thread-per-iteration
   mapping, so such pairs are exempt. *)

module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Section = Gpp_brs.Section
module Extract = Gpp_brs.Extract
module D = Diagnostic

let pattern_equal p1 p2 =
  match (p1, p2) with
  | Ir.Affine a, Ir.Affine b -> List.length a = List.length b && List.for_all2 Ix.equal a b
  | Ir.Indirect { index_array = i1; offset = o1 }, Ir.Indirect { index_array = i2; offset = o2 }
    ->
      i1 = i2 && List.length o1 = List.length o2 && List.for_all2 Ix.equal o1 o2
  | Ir.Affine _, Ir.Indirect _ | Ir.Indirect _, Ir.Affine _ -> false

let ref_to_string (r : Ir.array_ref) = Format.asprintf "%a" Ir.pp_ref r

(* GPP201: parallel loop variables (extent > 1) absent from every
   subscript of an affine store. *)
let independent_store_races ~kernel_name ~(kernel : Ir.kernel) (r : Ir.array_ref) =
  match r.pattern with
  | Ir.Indirect _ -> []
  | Ir.Affine indices ->
      kernel.loops
      |> List.filter (fun (l : Ir.loop) ->
             l.parallel && l.extent > 1
             && List.for_all (fun e -> Ix.coeff_of e l.var = 0) indices)
      |> List.map (fun (l : Ir.loop) ->
             D.v ~code:"GPP201" ~severity:D.Error ~kernel:kernel_name ~array:r.array
               ~detail:(ref_to_string r)
               ~payload:[ ("parallel_var", D.String l.var); ("extent", D.Int l.extent) ]
               (Printf.sprintf
                  "write-write race: the store does not depend on parallel loop %s, so all %d \
                   threads along it write the same elements of %s"
                  l.var l.extent r.array))

let section_of ~decls ~kernel r = (Extract.section_of_ref ~decls ~kernel r).Extract.section

(* Unordered pairs (i < j) of one list. *)
let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let run (ctx : Pass.context) =
  let decls = ctx.program.arrays in
  List.concat_map
    (fun (k : Ir.kernel) ->
      match Pass.summary_of ctx k.name with
      | None -> []
      | Some _ when Ir.parallel_iterations k <= 1 -> []
      | Some _ ->
          let refs = List.map snd (Ir.refs k) in
          let stores = List.filter (fun (r : Ir.array_ref) -> r.access = Ir.Store) refs in
          let loads = List.filter (fun (r : Ir.array_ref) -> r.access = Ir.Load) refs in
          let independent =
            List.concat_map (independent_store_races ~kernel_name:k.name ~kernel:k) stores
          in
          let conflicting_pair ~code ~severity ~describe (r1 : Ir.array_ref) (r2 : Ir.array_ref) =
            if r1.array <> r2.array || pattern_equal r1.pattern r2.pattern then None
            else
              let s1 = section_of ~decls ~kernel:k r1 and s2 = section_of ~decls ~kernel:k r2 in
              if not (Section.overlap s1 s2) then None
              else
                Some
                  (D.v ~code ~severity ~kernel:k.name ~array:r1.array
                     ~detail:
                       (Printf.sprintf "%s / %s" (ref_to_string r1) (ref_to_string r2))
                     ~payload:
                       [
                         ("section1", D.String (Section.to_string s1));
                         ("section2", D.String (Section.to_string s2));
                       ]
                     (describe r1.array))
          in
          let write_write =
            List.filter_map
              (fun (r1, r2) ->
                conflicting_pair ~code:"GPP202" ~severity:D.Warning
                  ~describe:(fun array ->
                    Printf.sprintf
                      "overlapping writes: two distinct stores to %s cover common elements, so \
                       different threads can write the same location"
                      array)
                  r1 r2)
              (pairs stores)
          in
          let read_after_write =
            List.concat_map
              (fun store ->
                List.filter_map
                  (fun load ->
                    conflicting_pair ~code:"GPP203" ~severity:D.Warning
                      ~describe:(fun array ->
                        Printf.sprintf
                          "read-after-write hazard: a load of %s overlaps elements stored by \
                           other threads of the same kernel; a device-wide barrier (kernel \
                           fission) is required for a deterministic result"
                          array)
                      store load)
                  loads)
              stores
          in
          independent @ write_write @ read_after_write)
    ctx.program.kernels

let pass : Pass.t =
  {
    Pass.name = "races";
    description = "cross-thread write-write and read-after-write hazards via BRS overlap";
    codes =
      [
        {
          Pass.code = "GPP201";
          severity = D.Error;
          summary = "store independent of a parallel loop variable (write-write race)";
          explanation =
            "The store's subscripts do not mention some parallel loop variable, so every \
             iteration of that loop writes the same elements concurrently.  Mapped to GPU \
             threads, the final value is nondeterministic.";
          fix =
            "Make the offending loop serial (it is a reduction), or include its variable in \
             the subscript so threads write disjoint elements.";
        };
        {
          Pass.code = "GPP202";
          severity = D.Warning;
          summary = "distinct stores to one array with overlapping sections";
          explanation =
            "Two different store statements in the kernel write BRS sections that overlap, so \
             different threads may write the same element through different statements.  The \
             overlap test is conservative: disjoint strided interleavings are recognized, \
             everything else is flagged.";
          fix =
            "Split the array, restrict each store's range, or confirm the stores are \
             iteration-disjoint and restructure the subscripts so the analysis can see it.";
        };
        {
          Pass.code = "GPP203";
          severity = D.Warning;
          summary = "intra-kernel read overlaps another thread's store (needs a barrier)";
          explanation =
            "A load's section overlaps a store's section from the same kernel with subscripts \
             that differ, so one thread may read elements another thread writes in the same \
             launch — a read-after-write hazard that needs a kernel split or synchronization \
             on real hardware.";
          fix =
            "Split the kernel at the dependence (the schedule then orders the two halves), or \
             double-buffer the array so reads and writes target different copies.";
        };
      ];
    needs_valid = true;
    run;
  }
