(** Bounds checking: affine subscript ranges vs declared extents.

    Emits [GPP101] (error: store past the declared extent), [GPP102]
    (info: halo load outside the extent — the stencil idiom the
    transfer analysis clips), and [GPP103] (error: reference entirely
    out of bounds). *)

val pass : Pass.t
