(* SARIF 2.1.0 writer (see sarif.mli).  Field names and nesting follow
   the OASIS sarif-schema-2.1.0; only the required subset plus logical
   locations and properties is emitted. *)

module D = Diagnostic
open Render

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let level_of_severity = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let text s = json_object [ ("text", json_string s) ]

let rule_of_doc (doc : Pass.code_doc) =
  json_object
    [
      ("id", json_string doc.code);
      ("shortDescription", text doc.summary);
      ("fullDescription", text doc.explanation);
      ("help", text doc.fix);
      ( "defaultConfiguration",
        json_object [ ("level", json_string (level_of_severity doc.severity)) ] );
    ]

(* program/kernel/array, most specific part last; SARIF wants a single
   fully-qualified name per logical location. *)
let logical_location ~program (d : D.t) =
  let parts =
    [ Some program; d.location.kernel; d.location.array ] |> List.filter_map Fun.id
  in
  let kind =
    match (d.location.kernel, d.location.array) with
    | _, Some _ -> "variable"
    | Some _, None -> "function"
    | None, None -> "module"
  in
  json_object
    [
      ("fullyQualifiedName", json_string (String.concat "/" parts));
      ("kind", json_string kind);
    ]

let result_of ~program ~rule_index_of (d : D.t) =
  let properties =
    ("program", json_string program)
    :: (match d.location.detail with
       | Some detail -> [ ("detail", json_string detail) ]
       | None -> [])
    @ List.map (fun (k, v) -> (k, json_value v)) d.payload
  in
  json_object
    ([ ("ruleId", json_string d.code) ]
    @ (match rule_index_of d.code with
      | Some i -> [ ("ruleIndex", string_of_int i) ]
      | None -> [])
    @ [
        ("level", json_string (level_of_severity d.severity));
        ("message", text d.message);
        ( "locations",
          json_array
            [ json_object [ ("logicalLocations", json_array [ logical_location ~program d ]) ] ]
        );
        ("properties", json_object properties);
      ])

let of_reports (reports : Driver.report list) =
  let rules = Driver.code_index () in
  let rule_index_of code =
    let rec go i = function
      | [] -> None
      | (doc : Pass.code_doc) :: rest -> if doc.code = code then Some i else go (i + 1) rest
    in
    go 0 rules
  in
  let results =
    List.concat_map
      (fun (r : Driver.report) ->
        List.map (result_of ~program:r.Driver.program_name ~rule_index_of) r.Driver.diagnostics)
      reports
  in
  let driver =
    json_object
      [
        ("name", json_string "grophecy");
        ("version", json_string "1.0.0");
        ("rules", json_array (List.map rule_of_doc rules));
      ]
  in
  json_object
    [
      ("$schema", json_string schema_uri);
      ("version", json_string "2.1.0");
      ( "runs",
        json_array
          [
            json_object
              [
                ("tool", json_object [ ("driver", driver) ]);
                ("results", json_array results);
              ];
          ] );
    ]
