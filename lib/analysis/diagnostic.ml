type severity = Error | Warning | Info

type location = { kernel : string option; array : string option; detail : string option }

type payload_value = String of string | Int of int | Float of float | Bool of bool

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
  payload : (string * payload_value) list;
}

let v ~code ~severity ?kernel ?array ?detail ?(payload = []) message =
  { code; severity; location = { kernel; array; detail }; message; payload }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_compare a b =
  let field f = compare (f a) (f b) in
  let c = field (fun l -> l.kernel) in
  if c <> 0 then c
  else
    let c = field (fun l -> l.array) in
    if c <> 0 then c else field (fun l -> l.detail)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = location_compare a.location b.location in
      if c <> 0 then c else String.compare a.message b.message

let equal a b = compare a b = 0

let pp ppf t =
  let where =
    List.filter_map
      (fun (label, v) -> Option.map (fun v -> Printf.sprintf "%s %s" label v) v)
      [ ("kernel", t.location.kernel); ("array", t.location.array); ("at", t.location.detail) ]
  in
  Format.fprintf ppf "%s %s" (severity_name t.severity) t.code;
  if where <> [] then Format.fprintf ppf " (%s)" (String.concat ", " where);
  Format.fprintf ppf ": %s" t.message
