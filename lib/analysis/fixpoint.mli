(** Generic fixpoint dataflow engine over the kernel invocation
    schedule.

    The data usage analyzer (paper §III-B) and the transfer diagnostics
    both need facts "at every point of the schedule" — which sections
    are resident before an invocation, which are still read after it.
    Straight-line schedules need one pass; [Repeat] nodes introduce a
    back edge, so facts must be iterated to a fixed point instead of
    unrolling the loop body once per iteration.

    The engine is parameterized by a join-semilattice ({!LATTICE}) and a
    per-invocation transfer function, and runs either {e forward}
    (facts flow from the first invocation to the last) or {e backward}
    (facts flow from after the last invocation to before the first —
    liveness-style).  Loop bodies are re-evaluated until the entry fact
    stabilizes; after {!widen_delay} body passes the engine switches
    from [join] to [widen] so lattices with unbounded ascending chains
    (intervals) still terminate.

    Instrumented with {!Gpp_obs.Obs} spans and counters
    ([fixpoint.solve], [fixpoint.passes], [fixpoint.loop_iterations],
    [fixpoint.widenings]); when observability is off the
    instrumentation is a no-op and results are byte-identical. *)

module type LATTICE = sig
  type t

  val leq : t -> t -> bool
  (** Partial order: [leq a b] iff [a] is below (at most as precise
      information as) [b].  The engine only ever calls it with
      arguments where [b = join a _], i.e. to detect stabilization. *)

  val join : t -> t -> t
  (** Least upper bound (or a sound over-approximation of it). *)

  val widen : t -> t -> t
  (** Widening: like [join] but must guarantee that every chain
      [x0, widen x0 x1, widen (widen x0 x1) x2, ...] stabilizes after
      finitely many steps.  Lattices with finite height can use
      [join]. *)
end

type stats = {
  passes : int;  (** Transfer-function applications (calls visited). *)
  loop_iterations : int;
      (** Total body re-evaluations across all [Repeat] nodes — the
          iterations-to-fixpoint measure. *)
  widenings : int;  (** Times [widen] replaced [join] on a back edge. *)
}

val widen_delay : int
(** Body passes per loop before the engine starts widening. *)

val max_loop_passes : int
(** Hard cap on body passes per loop; a lattice whose [widen] fails to
    stabilize by then raises [Failure] rather than diverging. *)

module Make (L : LATTICE) : sig
  type point = {
    index : int;  (** Pre-order position of the [Call] in the schedule
                      tree (each syntactic call site counted once). *)
    kernel : string;
    before : L.t;  (** Stabilized fact entering the invocation. *)
    after : L.t;  (** Stabilized fact leaving the invocation. *)
  }

  type result = {
    points : point list;  (** One per call site, in schedule order. *)
    exit_fact : L.t;
        (** Forward: fact after the whole schedule.  Backward: fact
            before the whole schedule. *)
    stats : stats;
  }

  val forward :
    schedule:Gpp_skeleton.Program.invocation list ->
    transfer:(index:int -> string -> L.t -> L.t) ->
    init:L.t ->
    result
  (** Forward analysis.  [transfer ~index kernel fact] maps the fact
      before an invocation to the fact after it.  For a [Repeat] the
      body is re-evaluated until its entry fact stabilizes, so the
      recorded {!point} facts are loop invariants; the transfer
      function may be re-applied to the same call site with growing
      facts and must therefore be monotone (and idempotent in any side
      effects). *)

  val backward :
    schedule:Gpp_skeleton.Program.invocation list ->
    transfer:(index:int -> string -> L.t -> L.t) ->
    exit_:L.t ->
    result
  (** Backward analysis: the schedule is walked last-to-first and
      [transfer] maps the fact {e after} an invocation to the fact
      {e before} it.  A [Repeat] joins the fact flowing in from after
      the loop with the fact at the head of the next iteration (the
      back edge).  [point.before]/[point.after] keep their schedule
      orientation: [before] is the fact holding before the invocation
      runs. *)
end

module Interval : sig
  (** Integer intervals, the lattice behind the index-expression
      client (GPP604) and the widening law tests. *)

  type t = Bot | Range of int * int  (** Inclusive, [lo <= hi]. *)

  val bot : t

  val of_bounds : int * int -> t
  (** Normalizes a [(lo, hi)] pair; [Bot] if [lo > hi]. *)

  val singleton : int -> t

  val leq : t -> t -> bool

  val join : t -> t -> t

  val widen : t -> t -> t
  (** Jumps an unstable bound to [min_int]/[max_int]: at most two
      widening steps per chain, hence guaranteed termination. *)

  val hull : t list -> t

  val mem : int -> t -> bool

  val pp : Format.formatter -> t -> unit
end
