(* Program-level checks (GPP5xx).

   Structural hygiene over the raw skeleton: name clashes and dead
   declarations.  This pass runs even when [Program.validate] fails, so
   it only inspects names — never BRS extraction. *)

module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program
module D = Diagnostic

let duplicates names =
  let sorted = List.sort String.compare names in
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (if a = b && not (List.mem a acc) then a :: acc else acc) rest
    | _ -> List.rev acc
  in
  go [] sorted

(* Array names a kernel mentions, including indirect index arrays. *)
let referenced_arrays (k : Ir.kernel) =
  let rec go acc = function
    | Ir.Ref { Ir.array; pattern; _ } ->
        let acc = array :: acc in
        (match pattern with Ir.Indirect { index_array; _ } -> index_array :: acc | Ir.Affine _ -> acc)
    | Ir.Compute _ -> acc
    | Ir.Branch { body; _ } -> List.fold_left go acc body
  in
  List.fold_left go [] k.body

let written_arrays (k : Ir.kernel) =
  let rec go acc = function
    | Ir.Ref { Ir.array; access = Ir.Store; _ } -> array :: acc
    | Ir.Ref _ | Ir.Compute _ -> acc
    | Ir.Branch { body; _ } -> List.fold_left go acc body
  in
  List.fold_left go [] k.body

let run (ctx : Pass.context) =
  let program = ctx.program in
  let array_names = List.map (fun (d : Decl.t) -> d.name) program.arrays in
  let kernel_names = List.map (fun (k : Ir.kernel) -> k.name) program.kernels in
  let duplicate_arrays =
    List.map
      (fun name ->
        D.v ~code:"GPP501" ~severity:D.Error ~array:name
          (Printf.sprintf "array %s is declared more than once" name))
      (duplicates array_names)
  in
  let duplicate_kernels =
    List.map
      (fun name ->
        D.v ~code:"GPP502" ~severity:D.Error ~kernel:name
          (Printf.sprintf "kernel %s is defined more than once" name))
      (duplicates kernel_names)
  in
  let referenced = List.concat_map referenced_arrays program.kernels in
  let unused_arrays =
    program.arrays
    |> List.filter (fun (d : Decl.t) -> not (List.mem d.name referenced))
    |> List.map (fun (d : Decl.t) ->
           D.v ~code:"GPP503" ~severity:D.Warning ~array:d.name
             ~payload:[ ("footprint_bytes", D.Int (Decl.footprint_bytes d)) ]
             (Printf.sprintf "array %s is declared but no kernel references it" d.name))
  in
  let scheduled = Program.flatten_schedule program in
  let unscheduled_kernels =
    program.kernels
    |> List.filter (fun (k : Ir.kernel) -> not (List.mem k.name scheduled))
    |> List.map (fun (k : Ir.kernel) ->
           D.v ~code:"GPP504" ~severity:D.Warning ~kernel:k.name
             (Printf.sprintf "kernel %s is defined but the schedule never invokes it" k.name))
  in
  let written = List.concat_map written_arrays program.kernels in
  let idle_temporaries =
    program.temporaries
    |> List.filter (fun t -> List.mem t array_names && not (List.mem t written))
    |> List.map (fun t ->
           D.v ~code:"GPP505" ~severity:D.Warning ~array:t
             (Printf.sprintf
                "temporary hint on %s has no effect: no kernel ever writes it on the device" t))
  in
  duplicate_arrays @ duplicate_kernels @ unused_arrays @ unscheduled_kernels @ idle_temporaries

let pass : Pass.t =
  {
    Pass.name = "program-checks";
    description = "name clashes, unused declarations, unscheduled kernels";
    codes =
      [
        {
          Pass.code = "GPP501";
          severity = D.Error;
          summary = "duplicate array declaration";
          explanation =
            "Two array declarations share one name, so every analysis that looks a name up \
             (section extraction, transfer planning, bounds checks) would silently use whichever \
             declaration comes first and ignore the other.";
          fix = "Rename one of the arrays, or delete the redundant declaration.";
        };
        {
          Pass.code = "GPP502";
          severity = D.Error;
          summary = "duplicate kernel definition";
          explanation =
            "Two kernels share one name; schedule entries resolve by name, so only one of the \
             definitions can ever be invoked and the projection would not cover the other.";
          fix = "Rename one kernel and reference the intended one from the schedule.";
        };
        {
          Pass.code = "GPP503";
          severity = D.Warning;
          summary = "array declared but never referenced";
          explanation =
            "No scheduled kernel loads or stores this array.  It contributes nothing to the \
             projection, which usually means the skeleton dropped an access the real code \
             performs — an under-modeled transfer or kernel.";
          fix =
            "Remove the declaration, or add the missing load/store statements to the kernel \
             that touches it in the original code.";
        };
        {
          Pass.code = "GPP504";
          severity = D.Warning;
          summary = "kernel defined but never scheduled";
          explanation =
            "The kernel exists but no schedule entry invokes it, so its time and its data \
             demands are absent from the projection.";
          fix = "Add a Call (or Repeat body entry) for it, or delete the dead definition.";
        };
        {
          Pass.code = "GPP505";
          severity = D.Warning;
          summary = "temporary hint on a never-written array";
          explanation =
            "The temporaries list exempts device-produced data from the copy back to the host, \
             but no kernel ever writes this array, so the hint cannot change the plan — likely \
             a stale or misspelled name.";
          fix = "Drop the hint or point it at the array the kernels actually write.";
        };
      ];
    needs_valid = false;
    run;
  }
