(** The analysis-pass framework.

    A pass inspects a program skeleton through a shared {!context} and
    returns diagnostics.  Passes declare the codes they can emit (the
    documentation index and the CLI's code listing are generated from
    these) and whether they require a program that already passed
    [Program.validate] — structural passes run even on invalid programs
    so that a broken skeleton still gets precise findings. *)

type context = {
  program : Gpp_skeleton.Program.t;
  gpu : Gpp_arch.Gpu.t;
      (** Device the performance lints judge coalescing against. *)
  summaries : (string * Gpp_brs.Extract.access) list;
      (** Per-kernel BRS access summaries, keyed by kernel name.  Empty
          when the program failed validation. *)
}

type code_doc = {
  code : string;
  severity : Diagnostic.severity;
  summary : string;  (** One line, shown by [lint --codes]. *)
  explanation : string;
      (** Long-form description shown by [lint --explain CODE]: what
          the analysis proves and why it matters for the projection. *)
  fix : string;  (** Suggested remediation, same audience. *)
}

type t = {
  name : string;
  description : string;
  codes : code_doc list;  (** Every code this pass can emit. *)
  needs_valid : bool;
      (** When [true] the driver skips this pass on programs that fail
          [Program.validate] (BRS extraction would raise). *)
  run : context -> Diagnostic.t list;
}

val make_context : ?gpu:Gpp_arch.Gpu.t -> Gpp_skeleton.Program.t -> context
(** Builds the shared context; computes access summaries only when the
    program validates.  [gpu] defaults to the paper's Quadro FX 5600. *)

val summary_of : context -> string -> Gpp_brs.Extract.access option

val decl_of : context -> string -> Gpp_skeleton.Decl.t option
