(** Transfer-plan audit over the data usage analyzer's walk.

    Emits [GPP301] (warning: dead device write — a temporary written
    but never read afterwards), [GPP302] (info: re-read of data already
    resident on the device), and [GPP303] (info: conservative
    whole-array transfer for sparse or indirectly accessed arrays). *)

val pass : Pass.t
