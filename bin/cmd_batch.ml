open Cmdliner
module Engine = Gpp_engine

(* grophecy batch — run a workload × machine × iterations matrix through
   the engine in one process, sharing the calibrated sessions and the
   projection cache across cells, and render the result as a stable TSV
   (the CI batch-matrix leg diffs it against a committed golden file).
   Per-cell failures become rows, not aborts; exit 1 if any cell failed. *)

let run machines machines_file workloads iterations_list out jobs seed predict config_file
    no_cache cache_dir trace verbose =
  match
    Cmd_common.scenario ?machines_file ?seed ?jobs ?predict ?config_file ~no_cache ~cache_dir
      ~trace ~verbose ()
  with
  | Error e -> Cmd_common.fail e
  | Ok c -> (
      (* The machine axis arrives as names and resolves against the
         scenario's final catalog, so --machines/config-file machines
         are valid axis values. *)
      match Cmd_common.resolve_machines c machines with
      | Error e -> Cmd_common.fail e
      | Ok resolved ->
      let workloads =
        match workloads with
        | [] -> List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.paper_instances
        | ws -> ws
      in
      let machines = match resolved with [] -> None | ms -> Some ms in
      let iterations =
        match iterations_list with [] -> [ None ] | l -> List.map Option.some l
      in
      let batch = Engine.Batch.run ?machines ~iterations c ~workloads in
      let tsv = Engine.Batch.to_tsv batch in
      (match out with
      | None -> print_string tsv
      | Some path ->
          Out_channel.with_open_text path (fun oc -> output_string oc tsv);
          Printf.printf "wrote %d cell(s) to %s\n" (List.length batch.Engine.Batch.cells) path);
      (match Engine.Batch.failed batch with
      | [] -> 0
      | failures ->
          List.iter
            (fun ((cell : Engine.Batch.cell), e) ->
              Printf.eprintf "batch: %s on %s failed: %s\n" cell.workload
                cell.machine.Gpp_arch.Machine.name (Engine.Error.message e))
            failures;
          1))

let cmd =
  let doc =
    "Run a workload × machine × iterations matrix through the prediction engine and print a TSV \
     of speedups and errors."
  in
  let workloads_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workload instances ($(b,app/size)) or paths to $(b,.skel) files.  Defaults to every \
             Table I instance.")
  in
  let machines_arg =
    Arg.(
      value & opt_all string []
      & info [ "machine"; "m" ] ~docv:"NAME"
          ~doc:
            "Machine to include in the matrix by catalog id (repeatable; see $(b,grophecy \
             list)).  Defaults to the scenario's machine.")
  in
  let iterations_arg =
    Arg.(
      value & opt_all int []
      & info [ "iterations"; "n" ]
          ~doc:
            "Iteration count to include in the matrix (repeatable).  Defaults to each program as \
             bundled.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the TSV to $(docv) instead of stdout.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains to shard the matrix across (also $(b,GPP_JOBS); default 1, \
             sequential).  The TSV is byte-identical at every value: only the deterministic \
             phases of each cell run in parallel, transfer pricing stays in cell order.")
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ machines_arg $ Cmd_common.machines_file_arg $ workloads_arg $ iterations_arg
      $ out_arg $ jobs_arg $ Cmd_common.seed_opt_arg $ Cmd_common.predict_arg
      $ Cmd_common.config_file_arg
      $ Cmd_common.no_cache_arg $ Cmd_common.cache_dir_arg $ Cmd_common.trace_file_arg
      $ Cmd_common.verbose_arg)
