(* Regenerate every table and figure of the paper, plus the ablations.
   Usage:
     experiments                  run the whole suite
     experiments fig7 ...         run selected experiments by id
     experiments --list           print the available ids
     experiments --no-cache      bypass the projection cache (both tiers)
     experiments --cache-dir DIR  persistent cache location
                                  (default: GPP_CACHE_DIR, then XDG)
     experiments --trace FILE     stream a Chrome trace of the run to FILE
                                  and print a per-phase summary to stderr *)

let main () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then begin
    List.iter
      (fun (e : Gpp_experiments.Suite.entry) -> Printf.printf "%-26s %s\n" e.id e.title)
      Gpp_experiments.Suite.all;
    exit 0
  end;
  let no_cache = List.mem "--no-cache" args in
  let args = List.filter (fun a -> a <> "--no-cache") args in
  let extract_opt name args =
    let rec go acc = function
      | opt :: value :: rest when opt = name -> (Some value, List.rev_append acc rest)
      | [ opt ] when opt = name ->
          Printf.eprintf "experiments: %s needs an argument\n" name;
          exit 2
      | arg :: rest -> go (arg :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let cache_dir, args = extract_opt "--cache-dir" args in
  let trace, args = extract_opt "--trace" args in
  (* The trace trailer is written after the final cache flush (at_exit
     runs handlers in reverse registration order), so flush events land
     in the timeline. *)
  (match trace with
  | None -> ()
  | Some file -> (
      Gpp_obs.Obs.set_enabled true;
      match Gpp_obs.Obs.start_trace file with
      | Ok () ->
          at_exit (fun () ->
              Gpp_obs.Obs.stop_trace ();
              Gpp_obs.Obs.print_summary ();
              Printf.eprintf "wrote %s (open in chrome://tracing or Perfetto)\n" file)
      | Error e ->
          Printf.eprintf "experiments: cannot open trace file %s: %s (tracing disabled)\n" file e));
  Option.iter Gpp_cache.Control.set_dir cache_dir;
  if no_cache then begin
    Gpp_cache.Control.set_enabled false;
    Gpp_cache.Control.set_disk_enabled false
  end
  else Gpp_cache.Memo.load_disk ();
  let selected =
    match args with
    | [] -> Gpp_experiments.Suite.all
    | ids ->
        List.map
          (fun id ->
            match Gpp_experiments.Suite.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment id %s (try --list)\n" id;
                exit 2)
          ids
  in
  Printf.printf "GROPHECY++ reproduction: regenerating %d experiment(s)\n" (List.length selected);
  Printf.printf "calibrating the simulated testbed and measuring all workloads...\n%!";
  let ctx = Gpp_obs.Obs.span "experiment.context" (fun () -> Gpp_experiments.Context.create ()) in
  Format.printf "%a@.@." Gpp_arch.Machine.pp (Gpp_experiments.Context.machine ctx);
  List.iter
    (fun (e : Gpp_experiments.Suite.entry) ->
      let out = Gpp_obs.Obs.span ("experiment." ^ e.id) (fun () -> e.run ctx) in
      Gpp_experiments.Output.print out;
      print_newline ())
    selected;
  Printf.printf "projection cache: %s\n" (if no_cache then "bypassed (--no-cache)" else "enabled");
  List.iter
    (fun s -> Format.printf "  %a@." Gpp_cache.Memo.pp_snapshot s)
    (Gpp_cache.Memo.snapshots ());
  (* Persist the memo tables for the next invocation (normal exit only;
     --no-cache leaves the disk untouched). *)
  Gpp_cache.Memo.flush_disk ()

(* A downstream `| head` closing stdout mid-suite is success, not a
   crash; everything already printed reached the consumer. *)
let () =
  Gpp_engine.Runtime.ignore_sigpipe ();
  try
    main ();
    Gpp_engine.Runtime.flush_stdout ()
  with e when Gpp_engine.Runtime.is_broken_pipe e ->
    Gpp_engine.Runtime.discard_stdout ();
    exit 0
