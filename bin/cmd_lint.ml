open Cmdliner

let run machine keys all strict json codes verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  if codes then begin
    Printf.printf "%-8s %-8s %s\n" "CODE" "SEVERITY" "SUMMARY";
    List.iter
      (fun (c : Gpp_analysis.Pass.code_doc) ->
        Printf.printf "%-8s %-8s %s\n" c.code
          (Gpp_analysis.Diagnostic.severity_name c.severity)
          c.summary)
      (Gpp_analysis.Driver.code_index ());
    0
  end
  else begin
    let targets =
      (if all then List.map (fun i -> Ok i) Gpp_workloads.Registry.all else [])
      @ List.map Gpp_engine.Workload.resolve keys
    in
    if targets = [] then begin
      prerr_endline "lint: nothing to check (give WORKLOAD arguments or --all)";
      2
    end
    else begin
      let failures = List.filter_map (function Error e -> Some e | Ok _ -> None) targets in
      List.iter (fun e -> prerr_endline (Gpp_engine.Error.message e)) failures;
      if failures <> [] then 2
      else begin
        let reports =
          List.map
            (function
              | Error _ -> assert false
              | Ok (inst : Gpp_workloads.Registry.instance) ->
                  Gpp_analysis.Driver.run ~gpu:machine.Gpp_arch.Machine.gpu (inst.program 1))
            targets
        in
        if json then
          print_endline
            (match reports with
            | [ report ] -> Gpp_analysis.Render.to_json report
            | reports -> Gpp_analysis.Render.json_of_reports reports)
        else
          List.iter (fun report -> Format.printf "%a@." Gpp_analysis.Render.pp_text report) reports;
        List.fold_left
          (fun acc report -> max acc (Gpp_analysis.Driver.exit_code ~strict report))
          0 reports
      end
    end
  end

let cmd =
  let doc =
    "Run the static-analysis passes (bounds, races, transfer audit, performance lints, program \
     checks) over workloads or .skel files and report diagnostics."
  in
  let keys_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload instances ($(b,app/size)) or paths to $(b,.skel) files.")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every bundled workload skeleton.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ] ~doc:"List every diagnostic code and exit.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ Cmd_common.machine_arg $ keys_arg $ all_arg $ strict_arg $ json_arg $ codes_arg
      $ Cmd_common.verbose_arg)
