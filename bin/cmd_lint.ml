open Cmdliner
module Driver = Gpp_analysis.Driver
module Pass = Gpp_analysis.Pass

let print_code_table () =
  Printf.printf "%-8s %-8s %s\n" "CODE" "SEVERITY" "SUMMARY";
  List.iter
    (fun (c : Pass.code_doc) ->
      Printf.printf "%-8s %-8s %s\n" c.code
        (Gpp_analysis.Diagnostic.severity_name c.severity)
        c.summary)
    (Driver.code_index ())

let explain_code query =
  match Driver.find_code query with
  | Some (doc : Pass.code_doc) ->
      Printf.printf "%s (%s): %s\n\n%s\n\nfix: %s\n" doc.code
        (Gpp_analysis.Diagnostic.severity_name doc.severity)
        doc.summary doc.explanation doc.fix;
      0
  | None ->
      Printf.eprintf "lint: unknown diagnostic code %S (did you mean %s?)\n" query
        (Driver.nearest_code query);
      2

(* "GPP101,GPP301" -> Ok ["GPP101"; "GPP301"], rejecting unknown codes
   with a nearest-match suggestion instead of silently matching
   nothing. *)
let parse_code_filter spec =
  let parts =
    String.split_on_char ',' spec |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  let resolved =
    List.map
      (fun part ->
        match Driver.find_code part with
        | Some (doc : Pass.code_doc) -> Ok doc.Pass.code
        | None -> Error part)
      parts
  in
  let unknown = List.filter_map (function Error p -> Some p | Ok _ -> None) resolved in
  if unknown <> [] then begin
    List.iter
      (fun part ->
        Printf.eprintf "lint: unknown diagnostic code %S (did you mean %s?)\n" part
          (Driver.nearest_code part))
      unknown;
    Error ()
  end
  else Ok (List.filter_map Result.to_option resolved)

let filter_report selected (report : Driver.report) =
  match selected with
  | [] -> report
  | codes ->
      {
        report with
        Driver.diagnostics =
          List.filter
            (fun (d : Gpp_analysis.Diagnostic.t) -> List.mem d.code codes)
            report.Driver.diagnostics;
      }

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let run machine keys all strict json codes explain sarif verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  match explain with
  | Some query -> explain_code query
  | None -> (
      if codes = Some "" then begin
        print_code_table ();
        0
      end
      else
        match
          match codes with Some spec -> parse_code_filter spec | None -> Ok []
        with
        | Error () -> 2
        | Ok selected ->
            let targets =
              (if all then List.map (fun i -> Ok i) Gpp_workloads.Registry.all else [])
              @ List.map Gpp_engine.Workload.resolve keys
            in
            if targets = [] then begin
              prerr_endline "lint: nothing to check (give WORKLOAD arguments or --all)";
              2
            end
            else begin
              let failures = List.filter_map (function Error e -> Some e | Ok _ -> None) targets in
              List.iter (fun e -> prerr_endline (Gpp_engine.Error.message e)) failures;
              if failures <> [] then 2
              else begin
                let reports =
                  List.map
                    (function
                      | Error _ -> assert false
                      | Ok (inst : Gpp_workloads.Registry.instance) ->
                          filter_report selected
                            (Driver.run ~gpu:machine.Gpp_arch.Machine.gpu (inst.program 1)))
                    targets
                in
                (match sarif with
                | Some path -> write_file path (Gpp_analysis.Sarif.of_reports reports)
                | None -> ());
                if json then
                  print_endline
                    (match reports with
                    | [ report ] -> Gpp_analysis.Render.to_json report
                    | reports -> Gpp_analysis.Render.json_of_reports reports)
                else
                  List.iter
                    (fun report -> Format.printf "%a@." Gpp_analysis.Render.pp_text report)
                    reports;
                List.fold_left
                  (fun acc report -> max acc (Driver.exit_code ~strict report))
                  0 reports
              end
            end)

let cmd =
  let doc =
    "Run the static-analysis passes (bounds, races, transfer audit, transfer flow, performance \
     lints, program checks) over workloads or .skel files and report diagnostics."
  in
  let keys_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload instances ($(b,app/size)) or paths to $(b,.skel) files.")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every bundled workload skeleton.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let codes_arg =
    let doc =
      "Without a value, list every diagnostic code and exit.  With a comma-separated list \
       (e.g. $(b,--codes GPP101,GPP301)), restrict the report to those codes; unknown codes \
       are an error with a nearest-match suggestion, never a silently empty filter."
    in
    Arg.(value & opt ~vopt:(Some "") (some string) None & info [ "codes" ] ~docv:"CODES" ~doc)
  in
  let explain_arg =
    let doc =
      "Print the long-form description and suggested fix for one diagnostic code \
       (e.g. $(b,--explain GPP601)) and exit.  Unknown codes exit 2 with the nearest valid \
       code."
    in
    Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"CODE" ~doc)
  in
  let sarif_arg =
    let doc =
      "Also write the report as SARIF 2.1.0 to $(docv) — the format code-hosting CIs ingest \
       for inline annotations."
    in
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ Cmd_common.machine_arg $ keys_arg $ all_arg $ strict_arg $ json_arg $ codes_arg
      $ explain_arg $ sarif_arg $ Cmd_common.verbose_arg)
