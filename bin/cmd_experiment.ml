open Cmdliner

let run ids list_only csv_dir config_file no_cache cache_dir trace verbose =
  match Cmd_common.scenario ?config_file ~no_cache ~cache_dir ~trace ~verbose () with
  | Error e -> Cmd_common.fail e
  | Ok c ->
      if list_only then begin
        List.iter
          (fun (e : Gpp_experiments.Suite.entry) -> Printf.printf "%-26s %s\n" e.id e.title)
          Gpp_experiments.Suite.all;
        0
      end
      else begin
        (* Resolve every id before running anything, and report a usage
           error (exit 2) through the same return path as the rest of the
           CLI — never a bare [exit] that skips Cmd.eval'. *)
        let entries =
          match ids with
          | [] -> Ok Gpp_experiments.Suite.all
          | ids ->
              List.fold_left
                (fun acc id ->
                  match (acc, Gpp_experiments.Suite.find id) with
                  | Error e, _ -> Error e
                  | Ok _, None -> Error id
                  | Ok entries, Some e -> Ok (entries @ [ e ]))
                (Ok []) ids
        in
        match entries with
        | Error id ->
            Printf.eprintf "unknown experiment id %s (try --list)\n" id;
            2
        | Ok entries ->
            let ctx =
              Gpp_obs.Obs.span "experiment.context" (fun () ->
                  Gpp_experiments.Context.create ~machine:c.Gpp_engine.Config.machine
                    ~seed:c.Gpp_engine.Config.seed ())
            in
            List.iter
              (fun (e : Gpp_experiments.Suite.entry) ->
                let out = Gpp_obs.Obs.span ("experiment." ^ e.id) (fun () -> e.run ctx) in
                Gpp_experiments.Output.print out;
                print_newline ())
              entries;
            (match csv_dir with
            | None -> ()
            | Some dir ->
                let written = Gpp_experiments.Export.write_all ctx ~dir in
                Printf.printf "wrote %d CSV files to %s\n" (List.length written) dir);
            Gpp_core.Grophecy.log_cache_stats ();
            0
      end

let cmd =
  let doc = "Regenerate paper tables and figures (all, or selected by id)." in
  let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.") in
  let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List available experiment ids.") in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also export every experiment's data as CSV into $(docv).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(
      const run $ ids_arg $ list_arg $ csv_arg $ Cmd_common.config_file_arg
      $ Cmd_common.no_cache_arg $ Cmd_common.cache_dir_arg $ Cmd_common.trace_file_arg
      $ Cmd_common.verbose_arg)
