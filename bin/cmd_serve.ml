open Cmdliner
module Engine = Gpp_engine

(* grophecy serve — run the prediction pipeline as a long-lived HTTP
   service (see lib/serve).  The scenario resolves through the same
   layers as every pipeline command; --listen/--flush-every layer over
   GPP_LISTEN/GPP_FLUSH_EVERY and the config file's (serve ...) group.
   Blocks until SIGINT/SIGTERM, then flushes the cache tier and exits
   0. *)

let run machine seed listen flush_every jobs predict config_file no_cache cache_dir trace
    verbose =
  match
    Cmd_common.scenario ?machine ?seed ?jobs ?predict ?listen ?flush_every ?config_file ~no_cache
      ~cache_dir ~trace ~verbose ()
  with
  | Error e -> Cmd_common.fail e
  | Ok c -> (
      (* Sys.set_signal handlers cannot fire while every thread is
         parked in a blocking C call (accept, join), which is exactly
         this command's steady state — so take the sigwait route
         instead: mask the shutdown signals before the server spawns
         its threads (they inherit the mask) and park the main thread
         in Thread.wait_signal, where delivery is guaranteed. *)
      let signals = [ Sys.sigint; Sys.sigterm ] in
      let _prev = Thread.sigmask Unix.SIG_BLOCK signals in
      match Gpp_serve.Serve.start c with
      | Error e -> Cmd_common.fail e
      | Ok server ->
          Printf.printf "grophecy serve: listening on %s\n%!" (Gpp_serve.Serve.address server);
          let _signal = Thread.wait_signal signals in
          (* stop flushes the persistent tier; the at_exit chain (trace
             sink, logs) then runs on the normal return path. *)
          Gpp_serve.Serve.stop server;
          0)

let cmd =
  let doc = "Serve projections, batches, and experiments over HTTP (long-running)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Binds $(b,--listen) (default $(b,127.0.0.1:8080); also $(b,GPP_LISTEN) or the config \
         file's $(b,(serve (listen ...))) key; $(b,unix:PATH) for a Unix-domain socket; port \
         $(b,0) picks a free port) and answers:";
      `P "$(b,GET /healthz) — liveness JSON."; `Noblank;
      `P "$(b,GET /metrics) — observability counters and cache statistics."; `Noblank;
      `P "$(b,GET /experiments) — available experiment ids."; `Noblank;
      `P "$(b,GET /experiment/)$(i,ID) — byte-identical to $(b,grophecy experiment) $(i,ID)."; `Noblank;
      `P
        "$(b,GET /batch?machines=..&workloads=..&iterations=..) — byte-identical to the \
         $(b,grophecy batch) TSV.";
      `Noblank;
      `P
        "$(b,GET /project?workload=)$(i,APP/SIZE) (or POST with a JSON body) — byte-identical \
         to $(b,grophecy project).";
      `P
        "Responses are memoized (and persisted with the projection cache) keyed by the request \
         and the scenario; identical concurrent requests coalesce onto one computation.  The \
         cache tier is flushed every $(b,--flush-every) requests (also $(b,GPP_FLUSH_EVERY)), \
         so killing the server loses at most that many requests' worth of memoized work.";
    ]
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Bind address: $(b,HOST:PORT) (port $(b,0) = pick a free one) or $(b,unix:PATH).  \
             Also $(b,GPP_LISTEN); default $(b,127.0.0.1:8080).")
  in
  let flush_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "flush-every" ] ~docv:"N"
          ~doc:
            "Flush the persistent cache tier every $(docv) requests (also \
             $(b,GPP_FLUSH_EVERY); default 64).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for /batch requests (also $(b,GPP_JOBS); default 1).")
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ Cmd_common.machine_opt_arg $ Cmd_common.seed_opt_arg $ listen_arg
      $ flush_every_arg $ jobs_arg $ Cmd_common.predict_arg $ Cmd_common.config_file_arg
      $ Cmd_common.no_cache_arg
      $ Cmd_common.cache_dir_arg $ Cmd_common.trace_file_arg $ Cmd_common.verbose_arg)
