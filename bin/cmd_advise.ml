open Cmdliner
module Engine = Gpp_engine

let run machine machines_file seed key iterations config_file no_cache cache_dir trace verbose =
  match
    Cmd_common.scenario ?machine ?machines_file ?seed ?config_file ~no_cache ~cache_dir ~trace
      ~verbose ()
  with
  | Error e -> Cmd_common.fail e
  | Ok c -> (
      (* The break-even verdict prices the program as bundled; the -n
         flag feeds the advisor's amortization analysis only, so the
         Parse stage must not rescale Repeat nodes here. *)
      let c = { c with Engine.Config.lint = true; iterations = None } in
      let session = Engine.Pipeline.session_of c in
      match Engine.Pipeline.run ~through:Engine.Stage.Project ~session c ~workload:key with
      | Error e -> Cmd_common.fail e
      | Ok state ->
          let projection = Engine.Pipeline.projection_exn state in
          let r = Gpp_core.Advisor.recommend ~iterations projection in
          Format.printf "%a@." Gpp_core.Advisor.pp r;
          0)

let cmd =
  let doc =
    "Should this workload be ported?  Prediction-only verdict with break-even analysis."
  in
  let iterations_arg =
    let doc = "Iteration count for iterative workloads." in
    Arg.(value & opt int 1 & info [ "iterations"; "n" ] ~doc)
  in
  Cmd.v
    (Cmd.info "advise" ~doc)
    Term.(
      const run $ Cmd_common.machine_opt_arg $ Cmd_common.machines_file_arg
      $ Cmd_common.seed_opt_arg $ Cmd_common.workload_arg
      $ iterations_arg $ Cmd_common.config_file_arg $ Cmd_common.no_cache_arg
      $ Cmd_common.cache_dir_arg $ Cmd_common.trace_file_arg $ Cmd_common.verbose_arg)
