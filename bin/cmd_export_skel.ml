open Cmdliner

let run key =
  match Gpp_engine.Workload.resolve key with
  | Error e -> Cmd_common.fail e
  | Ok inst ->
      print_string (Gpp_skeleton.Printer.to_skel (inst.program 1));
      0

let cmd =
  let doc = "Print a workload as an editable textual skeleton (.skel) on stdout." in
  Cmd.v (Cmd.info "export-skel" ~doc) Term.(const run $ Cmd_common.workload_arg)
