open Cmdliner

let trace_workload machine seed key output verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  match Gpp_engine.Workload.resolve key with
  | Error e -> Cmd_common.fail e
  | Ok inst -> (
      let session = Cmd_common.session_of machine seed in
      match
        Gpp_core.Projection.project ~pricing:session.Gpp_core.Grophecy.pricing (inst.program 1)
      with
      | Error e -> Cmd_common.fail e
      | Ok projection ->
          let rng = Gpp_util.Rng.create seed in
          List.fold_left
            (fun status (kp : Gpp_core.Projection.kernel_projection) ->
              if status <> 0 then status
              else begin
                let collector = Gpp_gpusim.Trace.create () in
                match
                  Gpp_gpusim.Gpu_sim.run ~trace:collector ~rng ~gpu:machine.Gpp_arch.Machine.gpu
                    kp.Gpp_core.Projection.candidate.Gpp_transform.Explore.characteristics
                with
                | Error e ->
                    prerr_endline e;
                    1
                | Ok result ->
                    Printf.printf "%s (%s): simulated %s\n%s"
                      kp.Gpp_core.Projection.kernel_name
                      kp.Gpp_core.Projection.candidate.Gpp_transform.Explore.characteristics
                        .Gpp_model.Characteristics.config_label
                      (Gpp_util.Units.time_to_string result.Gpp_gpusim.Gpu_sim.time)
                      (Gpp_gpusim.Trace.summary collector);
                    let path =
                      Printf.sprintf "%s.%s.json" output kp.Gpp_core.Projection.kernel_name
                    in
                    Out_channel.with_open_text path (fun oc ->
                        output_string oc (Gpp_gpusim.Trace.to_chrome_json collector));
                    Printf.printf "wrote %s (open in chrome://tracing or Perfetto)\n\n" path;
                    0
              end)
            0 projection.Gpp_core.Projection.kernels)

(* trace selftest: emit a miniature trace through the real span/counter
   machinery (every canonical pipeline phase appears), then validate it
   with the built-in checker — no external tooling, so CI can gate on
   it.  With a FILE argument it validates that file instead, which is
   how CI checks traces produced by real runs. *)
let trace_selftest file verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  match file with
  | Some path -> (
      match Gpp_obs.Validate.validate_file path with
      | Ok stats ->
          Format.printf "%s: valid Chrome trace (%a)@." path Gpp_obs.Validate.pp_stats stats;
          0
      | Error e ->
          Format.eprintf "%s: INVALID trace: %s@." path e;
          1)
  | None -> (
      let module Obs = Gpp_obs.Obs in
      let path = Filename.temp_file "grophecy-selftest" ".trace.json" in
      let finish status =
        Obs.set_enabled false;
        Obs.reset ();
        (try Sys.remove path with Sys_error _ -> ());
        status
      in
      Obs.set_enabled true;
      match Obs.start_trace path with
      | Error e ->
          Format.eprintf "trace selftest: cannot open %s: %s@." path e;
          finish 1
      | Ok () ->
          Obs.span "selftest" (fun () ->
              Obs.span "parse" (fun () -> ());
              Obs.span "analysis.lint" (fun () -> ());
              Obs.span "core.project" (fun () ->
                  Obs.span "core.search" (fun () ->
                      Obs.span "transform.search" (fun () ->
                          Obs.span "transform.candidate" (fun () -> ())));
                  Obs.span "dataflow.analyze" (fun () -> ());
                  Obs.span "core.price_transfers" (fun () -> ()));
              Obs.span "core.measure" (fun () ->
                  Obs.span "gpusim.run_mean" (fun () -> Obs.span "gpusim.run" (fun () -> ()));
                  Obs.span "pcie.transfer" (fun () -> ()));
              Obs.event ~detail:"selftest" "cache.hit";
              Obs.add (Obs.counter "selftest.counter") 42);
          Obs.stop_trace ();
          (match Gpp_obs.Validate.validate_file path with
          | Ok stats ->
              Format.printf "trace selftest: ok (%a)@." Gpp_obs.Validate.pp_stats stats;
              finish 0
          | Error e ->
              Format.eprintf "trace selftest: emitted trace is INVALID: %s@." e;
              finish 1))

let cmd =
  let doc =
    "Simulate a workload's kernels and export Chrome-trace timelines, or ($(b,trace selftest)) \
     check the observability layer's own trace output."
  in
  let output_arg =
    Arg.(
      value & opt string "gpp-trace"
      & info [ "output"; "o" ] ~docv:"PREFIX" ~doc:"Output path prefix for the trace JSON files.")
  in
  (* Workload keys are free-form ("hotspot/1024 x 1024"), so selftest
     cannot be a Cmd.group subcommand — the group would reject every
     workload as an unknown command name.  Dispatch on the first
     positional instead: no bundled workload is named "selftest". *)
  let target_arg =
    let doc =
      "Workload instance as $(b,app/size) (e.g. $(b,cfd/97K)), or the literal $(b,selftest) to \
       emit a miniature trace through the observability layer and validate it — exits 1 if the \
       trace is malformed; CI gates on this."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD|selftest" ~doc)
  in
  let file_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"With $(b,selftest): an existing trace JSON file to validate instead.")
  in
  let dispatch machine seed target file output verbose =
    match target with
    | "selftest" -> trace_selftest file verbose
    | key -> trace_workload machine seed key output verbose
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const dispatch $ Cmd_common.machine_arg $ Cmd_common.seed_arg $ target_arg $ file_arg
      $ output_arg $ Cmd_common.verbose_arg)
