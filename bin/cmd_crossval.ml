open Cmdliner
module Engine = Gpp_engine
module Crossval = Gpp_experiments.Crossval

(* grophecy crossval — calibrate (alpha, beta) on every machine of a
   set, score each calibration against every other machine's transfers
   and end-to-end projections, and render the ordered-pair matrix as a
   stable TSV (the CI cross-machine leg diffs it against a committed
   golden file).  Same-machine rows are the accuracy baseline. *)

(* Each --predict occurrence names one predictor variant to score; no
   occurrence keeps the historical single-matrix output byte-identical. *)
let parse_predictors specs =
  List.fold_left
    (fun acc spec ->
      match acc with
      | Error _ as e -> e
      | Ok ps -> (
          match Gpp_predict.Predictor.of_string spec with
          | Ok p -> Ok (ps @ [ p ])
          | Error m -> Error (Engine.Error.config ~source:"--predict" m)))
    (Ok []) specs

let emit_tsv ~out ~count tsv =
  match out with
  | None -> print_string tsv
  | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc tsv);
      Printf.printf "wrote %d pair(s) to %s\n" count path

let run machines machines_file workloads predicts max_mib out summary seed config_file no_cache
    cache_dir trace verbose =
  match
    Cmd_common.scenario ?machines_file ?seed ?config_file ~no_cache ~cache_dir ~trace ~verbose ()
  with
  | Error e -> Cmd_common.fail e
  | Ok c -> (
      match Cmd_common.resolve_machines c machines with
      | Error e -> Cmd_common.fail e
      | Ok resolved -> (
          let machines =
            match resolved with [] -> c.Engine.Config.machines | ms -> ms
          in
          let workloads = match workloads with [] -> None | ws -> Some ws in
          match parse_predictors predicts with
          | Error e -> Cmd_common.fail e
          | Ok [] -> (
              match
                Crossval.run ?protocol:c.Engine.Config.protocol
                  ?analytic_params:c.Engine.Config.analytic ?space:c.Engine.Config.space
                  ?policy:c.Engine.Config.policy ~seed:c.Engine.Config.seed ?workloads
                  ~max_bytes:(max_mib * Gpp_util.Units.mib) ~machines ()
              with
              | Error e -> Cmd_common.fail e
              | Ok result ->
                  emit_tsv ~out ~count:(List.length result.Crossval.pairs)
                    (Crossval.to_tsv result);
                  if summary then Format.printf "%a@." Crossval.pp_summary result;
                  0)
          | Ok predictors -> (
              match
                Crossval.run_variants ?protocol:c.Engine.Config.protocol
                  ?analytic_params:c.Engine.Config.analytic ?space:c.Engine.Config.space
                  ?policy:c.Engine.Config.policy ?sim_config:c.Engine.Config.sim
                  ?runs:c.Engine.Config.runs ~lambda:c.Engine.Config.predict_lambda
                  ~seed:c.Engine.Config.seed ?workloads
                  ~max_bytes:(max_mib * Gpp_util.Units.mib) ~predictors ~machines ()
              with
              | Error e -> Cmd_common.fail e
              | Ok result ->
                  emit_tsv ~out ~count:(List.length result.Crossval.rows)
                    (Crossval.variants_to_tsv result);
                  if summary then Format.printf "%a@." Crossval.pp_variants_summary result;
                  0)))

let cmd =
  let doc =
    "Calibrate the transfer model on every machine and score each calibration on every other \
     machine (transfer sweep and end-to-end projections), as an ordered-pair TSV matrix."
  in
  let machines_arg =
    Arg.(
      value & opt_all string []
      & info [ "machine"; "m" ] ~docv:"NAME"
          ~doc:
            "Machine to include by catalog id (repeatable; see $(b,grophecy list)).  Defaults \
             to the entire catalog.")
  in
  let workloads_arg =
    Arg.(
      value & opt_all string []
      & info [ "workload"; "w" ] ~docv:"WORKLOAD"
          ~doc:
            "Workload instance ($(b,app/size)) for the end-to-end leg (repeatable).  Defaults \
             to a small transfer- and kernel-bound mix.")
  in
  let predict_arg =
    Arg.(
      value & opt_all string []
      & info [ "predict" ] ~docv:"STACK"
          ~doc:
            "Predictor variant to score (repeatable): a comma-separated stage list among \
             $(b,analytic), $(b,scaled), and $(b,learned), e.g. $(b,--predict analytic --predict \
             scaled --predict scaled,learned).  With at least one occurrence the matrix switches \
             to the per-variant format scored against each target's simulated measured totals; \
             without it the historical single-matrix TSV is emitted unchanged.  Unknown stage \
             names exit 2 with a suggestion.")
  in
  let max_mib_arg =
    Arg.(
      value & opt int 64
      & info [ "max-mib" ] ~docv:"MIB"
          ~doc:"Largest transfer of the power-of-two sweep, in MiB.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the TSV to $(docv) instead of stdout.")
  in
  let summary_arg =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:"Also print the accuracy/scope summary (same-machine residual, cross-machine \
                decay, pairs within a 10% end-to-end budget).")
  in
  Cmd.v (Cmd.info "crossval" ~doc)
    Term.(
      const run $ machines_arg $ Cmd_common.machines_file_arg $ workloads_arg $ predict_arg
      $ max_mib_arg $ out_arg $ summary_arg $ Cmd_common.seed_opt_arg $ Cmd_common.config_file_arg
      $ Cmd_common.no_cache_arg $ Cmd_common.cache_dir_arg $ Cmd_common.trace_file_arg
      $ Cmd_common.verbose_arg)
