open Cmdliner

let run machine seed size_str to_host =
  match Gpp_util.Units.parse_bytes size_str with
  | None ->
      Printf.eprintf "cannot parse size %S (try 4KiB, 512MiB, 97000)\n" size_str;
      2
  | Some bytes ->
      let session = Cmd_common.session_of machine seed in
      let model =
        if to_host then session.Gpp_core.Grophecy.d2h else session.Gpp_core.Grophecy.h2d
      in
      Format.printf "%a@.T(%s) = %a@." Gpp_pcie.Model.pp model
        (Gpp_util.Units.bytes_to_string bytes)
        Gpp_util.Units.pp_time
        (Gpp_pcie.Model.predict model ~bytes);
      0

let cmd =
  let doc = "Predict the time of a single pinned transfer of a given size." in
  let size_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SIZE" ~doc:"Transfer size.")
  in
  let to_host_arg =
    Arg.(value & flag & info [ "to-host" ] ~doc:"Price a GPU-to-CPU transfer instead.")
  in
  Cmd.v
    (Cmd.info "predict-transfer" ~doc)
    Term.(const run $ Cmd_common.machine_arg $ Cmd_common.seed_arg $ size_arg $ to_host_arg)
