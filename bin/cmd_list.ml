open Cmdliner

let run () =
  Printf.printf "%-24s %s\n" "WORKLOAD" "KERNELS";
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let program = inst.program 1 in
      Printf.printf "%-24s %s\n"
        (Gpp_workloads.Registry.key inst)
        (String.concat ", "
           (List.map (fun (k : Gpp_skeleton.Ir.kernel) -> k.name) program.kernels)))
    Gpp_workloads.Registry.all;
  0

let cmd =
  let doc = "List the bundled workload skeletons." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())
