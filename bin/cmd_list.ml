open Cmdliner
module Machine = Gpp_arch.Machine

let list_workloads () =
  Printf.printf "%-24s %s\n" "WORKLOAD" "KERNELS";
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let program = inst.program 1 in
      Printf.printf "%-24s %s\n"
        (Gpp_workloads.Registry.key inst)
        (String.concat ", "
           (List.map (fun (k : Gpp_skeleton.Ir.kernel) -> k.name) program.kernels)))
    Gpp_workloads.Registry.all

let list_machines catalog =
  Printf.printf "%-16s %-12s %-9s %-26s %s\n" "MACHINE" "LINK" "STAGING" "GPU" "LINK-BW";
  List.iter
    (fun (m : Machine.t) ->
      Printf.printf "%-16s %-12s %-9s %-26s %s\n" m.id
        (Gpp_arch.Pcie_spec.link_label m.pcie)
        (Machine.staging_name m.staging)
        m.gpu.Gpp_arch.Gpu.name
        (Format.asprintf "%a" Gpp_util.Units.pp_bandwidth
           (Gpp_arch.Pcie_spec.effective_bandwidth m.pcie)))
    catalog

let run machines_file =
  (* Honor the same sources as the pipeline commands: --machines beats
     GPP_MACHINES beats the builtin catalog. *)
  let file =
    match machines_file with Some _ -> machines_file | None -> Sys.getenv_opt "GPP_MACHINES"
  in
  match
    match file with
    | None -> Ok Machine.catalog
    | Some path -> Gpp_engine.Machines.load_file ~base:Machine.catalog path
  with
  | Error e -> Cmd_common.fail e
  | Ok catalog ->
      list_workloads ();
      print_newline ();
      list_machines catalog;
      0

let cmd =
  let doc = "List the bundled workload skeletons and the machine catalog." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ Cmd_common.machines_file_arg)
