open Cmdliner
module Machine = Gpp_arch.Machine

let list_workloads () =
  Printf.printf "%-24s %s\n" "WORKLOAD" "KERNELS";
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let program = inst.program 1 in
      Printf.printf "%-24s %s\n"
        (Gpp_workloads.Registry.key inst)
        (String.concat ", "
           (List.map (fun (k : Gpp_skeleton.Ir.kernel) -> k.name) program.kernels)))
    Gpp_workloads.Registry.all

let list_machines catalog =
  Printf.printf "%-16s %-12s %-9s %-26s %s\n" "MACHINE" "LINK" "STAGING" "GPU" "LINK-BW";
  List.iter
    (fun (m : Machine.t) ->
      Printf.printf "%-16s %-12s %-9s %-26s %s\n" m.id
        (Gpp_arch.Pcie_spec.link_label m.pcie)
        (Machine.staging_name m.staging)
        m.gpu.Gpp_arch.Gpu.name
        (Format.asprintf "%a" Gpp_util.Units.pp_bandwidth
           (Gpp_arch.Pcie_spec.effective_bandwidth m.pcie)))
    catalog

(* Stable machine-readable output, mirroring `cache stats --porcelain`:
   one record per line, record type first, TAB-separated:
     workload\t<key>\t<kernel>[,<kernel>...]
     machine\t<id>\t<link>\t<staging>\t<gpu>\t<bandwidth-bytes-per-sec>
   CI and scripts pick axis values out of this instead of parsing the
   human tables' column widths. *)
let porcelain_workloads () =
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let program = inst.program 1 in
      Printf.printf "workload\t%s\t%s\n"
        (Gpp_workloads.Registry.key inst)
        (String.concat ","
           (List.map (fun (k : Gpp_skeleton.Ir.kernel) -> k.name) program.kernels)))
    Gpp_workloads.Registry.all

let porcelain_machines catalog =
  List.iter
    (fun (m : Machine.t) ->
      Printf.printf "machine\t%s\t%s\t%s\t%s\t%.0f\n" m.id
        (Gpp_arch.Pcie_spec.link_label m.pcie)
        (Machine.staging_name m.staging)
        m.gpu.Gpp_arch.Gpu.name
        (Gpp_arch.Pcie_spec.effective_bandwidth m.pcie))
    catalog

let run machines_file porcelain =
  (* Honor the same sources as the pipeline commands: --machines beats
     GPP_MACHINES beats the builtin catalog. *)
  let file =
    match machines_file with Some _ -> machines_file | None -> Sys.getenv_opt "GPP_MACHINES"
  in
  match
    match file with
    | None -> Ok Machine.catalog
    | Some path -> Gpp_engine.Machines.load_file ~base:Machine.catalog path
  with
  | Error e -> Cmd_common.fail e
  | Ok catalog ->
      if porcelain then begin
        porcelain_workloads ();
        porcelain_machines catalog
      end
      else begin
        list_workloads ();
        print_newline ();
        list_machines catalog
      end;
      0

let cmd =
  let doc = "List the bundled workload skeletons and the machine catalog." in
  let porcelain_arg =
    Arg.(
      value & flag
      & info [ "porcelain" ]
          ~doc:
            "Stable machine-readable output: TAB-separated records ($(b,workload ...), \
             $(b,machine ...)), one per line, following the $(b,cache stats --porcelain) \
             conventions.")
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ Cmd_common.machines_file_arg $ porcelain_arg)
