open Cmdliner

let run machine seed verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  let session = Cmd_common.session_of machine seed in
  Format.printf "%a@.@." Gpp_arch.Machine.pp machine;
  Format.printf "two-point calibration (1 B and 512 MiB transfers, 10 runs each):@.";
  List.iter
    (fun model -> Format.printf "  %a@." Gpp_pcie.Model.pp model)
    (Gpp_pcie.Calibrate.calibrate_all session.Gpp_core.Grophecy.calibration_link);
  Format.printf "@.models used for projection (pinned, as in the paper):@.";
  Format.printf "  %a@.  %a@." Gpp_pcie.Model.pp session.Gpp_core.Grophecy.h2d Gpp_pcie.Model.pp
    session.Gpp_core.Grophecy.d2h;
  0

let cmd =
  let doc = "Run the synthetic PCIe benchmark and print the calibrated transfer models." in
  Cmd.v (Cmd.info "calibrate" ~doc)
    Term.(const run $ Cmd_common.machine_arg $ Cmd_common.seed_arg $ Cmd_common.verbose_arg)
