(* Flags, converters, and the scenario-resolution preamble shared by
   every grophecy subcommand.  The pipeline commands resolve a layered
   Gpp_engine.Config scenario (defaults < --config file < GPP_* env <
   flags) and install its process-wide effects; the simple commands
   (calibrate, list, lint, trace, predict-transfer) keep their concrete
   defaults and touch no cache or trace state they did not before. *)

open Cmdliner
module Config = Gpp_engine.Config
module Error = Gpp_engine.Error

let verbose_arg =
  let doc = "Print pipeline progress (calibration, chosen transformations, measurements)." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let no_cache_arg =
  let doc =
    "Bypass the projection cache entirely (both the in-memory tables and the on-disk store): \
     recompute every transformation search and kernel simulation instead of reusing memoized \
     results.  Output is bit-identical either way."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Directory of the persistent projection cache.  Defaults to $(b,GPP_CACHE_DIR), then \
     $(b,\\$XDG_CACHE_HOME/grophecy), then $(b,~/.cache/grophecy)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let trace_file_arg =
  let doc =
    "Enable observability and stream a Chrome trace-event JSON timeline of the run to $(docv) \
     (open it in chrome://tracing or https://ui.perfetto.dev).  A per-phase summary table is \
     printed to stderr when the run ends.  Without this flag the instrumentation is a no-op and \
     output is byte-identical."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let config_file_arg =
  let doc =
    "Read scenario settings from a sexp configuration file.  Settings layer as: library defaults \
     < $(docv) < $(b,GPP_*) environment variables < command-line flags."
  in
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE" ~doc)

let machine_conv =
  let parse s = match Config.machine_of_name s with Ok m -> Ok m | Error e -> Error (`Msg e) in
  let print ppf (m : Gpp_arch.Machine.t) = Format.fprintf ppf "%s" m.name in
  Arg.conv (parse, print)

let machine_doc =
  "Target machine by catalog id: the paper-era presets ($(b,argonne), $(b,section2b), \
   $(b,gt200), $(b,modern)) or any zoo machine ($(b,kepler) .. $(b,hopper)); run \
   $(b,grophecy list) for the full catalog."

(* Pipeline commands: the flag is an *override layer*, so "not given"
   must be distinguishable from "given the default value".  It stays a
   bare name — resolution happens against the scenario's final catalog,
   so it can name a machine that --machines (or the config file, or
   GPP_MACHINES) defined. *)
let machine_opt_arg =
  Arg.(value & opt (some string) None & info [ "machine"; "m" ] ~docv:"NAME" ~doc:machine_doc)

let machines_file_arg =
  let doc =
    "Merge a machine-descriptor catalog file over the builtin catalog (and over the config \
     file's and $(b,GPP_MACHINES)'s machines).  Descriptors with a known id replace that \
     machine; new ids extend the catalog."
  in
  Arg.(value & opt (some string) None & info [ "machines" ] ~docv:"FILE" ~doc)

(* Simple commands keep their concrete defaults (no config/env layers). *)
let machine_arg =
  Arg.(value & opt machine_conv Gpp_arch.Machine.argonne_node & info [ "machine"; "m" ] ~doc:machine_doc)

let seed_doc = "Seed for the simulated hardware's noise streams."

let seed_opt_arg = Arg.(value & opt (some int64) None & info [ "seed" ] ~doc:seed_doc)

let seed_arg = Arg.(value & opt int64 0x1B0A_2013_6CA1_55AAL & info [ "seed" ] ~doc:seed_doc)

let workload_arg =
  let doc = "Workload instance as $(b,app/size), e.g. $(b,cfd/97K) or $(b,hotspot/1024 x 1024)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let iterations_opt_arg =
  let doc = "Iteration count for iterative workloads (default 1)." in
  Arg.(value & opt (some int) None & info [ "iterations"; "n" ] ~doc)

let runs_opt_arg =
  let doc = "Runs to average per measurement (the paper uses 10)." in
  Arg.(value & opt (some int) None & info [ "runs" ] ~doc)

let transfer_plan_arg =
  let doc =
    "Transfer-plan policy: $(b,conservative) (the paper's analysis, the default) or \
     $(b,minimal) (price only statically live references — an ablation lower bound).  \
     Layers under $(b,GPP_TRANSFER_PLAN) and the config file's $(b,policy (plan ...)) key."
  in
  let plan_conv =
    let parse s =
      match Gpp_dataflow.Analyzer.plan_policy_of_name s with
      | Ok p -> Ok p
      | Error e -> Error (`Msg e)
    in
    let print ppf p = Format.pp_print_string ppf (Gpp_dataflow.Analyzer.plan_policy_name p) in
    Arg.conv (parse, print)
  in
  Arg.(value & opt (some plan_conv) None & info [ "transfer-plan" ] ~docv:"PLAN" ~doc)

let predict_arg =
  let doc =
    "Predictor stack for transfer pricing: a comma-separated list of stages among $(b,analytic) \
     (the paper's calibrated projection, the default), $(b,scaled) (rescale the calibrated \
     (alpha, beta) by the source and target machines' spec'd setup/bandwidth ratios), and \
     $(b,learned) (additionally fit a ridge correction of the projected total against simulated \
     measurements, leave-one-workload-out).  Layers under $(b,GPP_PREDICT) and the config file's \
     $(b,(predict (stages ...))) key.  Unknown stage names exit 2 with a suggestion."
  in
  Arg.(value & opt (some string) None & info [ "predict" ] ~docv:"STACK" ~doc)

let session_of machine seed = Gpp_core.Grophecy.init ~seed machine

(* Resolve a list of machine names against a resolved scenario's
   catalog, keeping flag order.  Shared by the matrix commands (batch,
   crossval). *)
let resolve_machines (c : Config.t) names =
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ as e -> e
      | Ok ms -> (
          match Config.find_machine c name with
          | Ok m -> Ok (ms @ [ m ])
          | Error m -> Error (Error.config m)))
    (Ok []) names

(* Print a structured error the way the CLI always has — the bare
   message on stderr — and map it to the documented exit-code space. *)
let fail e =
  prerr_endline (Error.message e);
  Error.exit_code e

(* Layered scenario resolution + process-wide setup for the pipeline
   commands.  Flags arrive as options ([None] = not given) so lower
   layers show through. *)
let scenario ?machines_file ?machine ?seed ?runs ?iterations ?jobs ?transfer_plan ?predict
    ?listen ?flush_every ?config_file ~no_cache ~cache_dir ~trace ~verbose () =
  let overrides =
    {
      Config.o_machines_file = machines_file;
      o_machine = machine;
      o_seed = seed;
      o_runs = runs;
      o_iterations = iterations;
      o_jobs = jobs;
      o_no_cache = no_cache;
      o_cache_dir = cache_dir;
      o_trace = trace;
      o_verbose = verbose;
      o_transfer_plan = transfer_plan;
      o_predict = predict;
      o_listen = listen;
      o_flush_every = flush_every;
    }
  in
  match Config.resolve ?file:config_file ~overrides () with
  | Error e -> Error e
  | Ok c ->
      Gpp_engine.Runtime.install c;
      Ok c
