open Cmdliner

let resolve_cache_dir cache_dir =
  Option.iter Gpp_cache.Control.set_dir cache_dir;
  Gpp_cache.Control.dir ()

(* Counters are read from the shared observability registry (lib/obs) —
   the same one a traced run reports — so the disk-tier numbers here
   and in `--trace` summaries can never disagree.  Observability is
   enabled for the duration of the command so the load below lands in
   the registry. *)
let stats cache_dir porcelain verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  let dir = resolve_cache_dir cache_dir in
  Gpp_obs.Obs.set_enabled true;
  Gpp_cache.Memo.load_disk ();
  let files = Gpp_cache.Store.list_dir ~dir in
  if porcelain then begin
    (* Stable machine-readable output, one record per line, TAB-separated:
         dir\t<path>
         table\t<name>\t<hits>\t<misses>\t<evictions>\t<bypasses>\t<entries>\t<capacity>
         store\t<path>\t<entries>\t<corrupt>
         counter\t<name>\t<value>
       CI picks store filenames out of this instead of hardcoding them. *)
    Printf.printf "dir\t%s\n" dir;
    List.iter
      (fun (s : Gpp_cache.Memo.snapshot) ->
        Printf.printf "table\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n" s.name s.hits s.misses s.evictions
          s.bypasses s.entries s.capacity)
      (Gpp_cache.Memo.snapshots ());
    List.iter
      (fun path ->
        let r = Gpp_cache.Store.verify ~path in
        Printf.printf "store\t%s\t%d\t%d\n" path r.Gpp_cache.Store.total
          r.Gpp_cache.Store.vcorrupt)
      files;
    List.iter (fun (name, v) -> Printf.printf "counter\t%s\t%d\n" name v) (Gpp_obs.Obs.counters ());
    0
  end
  else begin
    Printf.printf "cache directory: %s\n" dir;
    List.iter
      (fun s -> Format.printf "  %a@." Gpp_cache.Memo.pp_snapshot s)
      (Gpp_cache.Memo.snapshots ());
    (match files with
    | [] -> Printf.printf "  (no store files)\n"
    | files ->
        let total =
          List.fold_left
            (fun acc path ->
              let r = Gpp_cache.Store.verify ~path in
              acc + r.Gpp_cache.Store.total)
            0 files
        in
        Printf.printf "  %d store file(s), %d entr%s on disk\n" (List.length files) total
          (if total = 1 then "y" else "ies"));
    (match Gpp_obs.Obs.counters () with
    | [] -> ()
    | counters ->
        Printf.printf "observability counters:\n";
        List.iter (fun (name, v) -> Printf.printf "  %-24s %d\n" name v) counters);
    0
  end

let verify cache_dir verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  let dir = resolve_cache_dir cache_dir in
  match Gpp_cache.Store.list_dir ~dir with
  | [] ->
      Printf.printf "no store files in %s\n" dir;
      0
  | files ->
      let bad =
        List.fold_left
          (fun bad path ->
            let r = Gpp_cache.Store.verify ~path in
            match r.Gpp_cache.Store.vheader with
            | Some err ->
                Printf.printf "%s: UNREADABLE (%s)\n" path
                  (Gpp_cache.Store.describe_header_error err);
                bad + 1
            | None when r.Gpp_cache.Store.vcorrupt > 0 ->
                Printf.printf "%s: %d/%d entries CORRUPT\n" path r.Gpp_cache.Store.vcorrupt
                  r.Gpp_cache.Store.total;
                bad + 1
            | None ->
                Printf.printf "%s: ok (%d entries)\n" path r.Gpp_cache.Store.total;
                bad)
          0 files
      in
      if bad = 0 then 0
      else begin
        Printf.eprintf "%d of %d store file(s) damaged (they load as cache misses; run \
                        `grophecy cache clear` to drop them)\n"
          bad (List.length files);
        1
      end

let clear cache_dir verbose =
  Gpp_engine.Runtime.setup_logs verbose;
  let dir = resolve_cache_dir cache_dir in
  let removed = Gpp_cache.Store.clear_dir ~dir in
  Printf.printf "removed %d file(s) from %s\n" removed dir;
  0

let cmd =
  let doc = "Inspect, verify, or clear the persistent projection cache." in
  let stats_cmd =
    let doc =
      "Per-table cache statistics, including the disk tier (entries loaded, rejected, bytes)."
    in
    let porcelain_arg =
      Arg.(
        value & flag
        & info [ "porcelain" ]
            ~doc:
              "Machine-readable output: TAB-separated $(b,dir)/$(b,table)/$(b,store)/$(b,counter) \
               records with stable field order, for scripts and CI.")
    in
    Cmd.v (Cmd.info "stats" ~doc)
      Term.(const stats $ Cmd_common.cache_dir_arg $ porcelain_arg $ Cmd_common.verbose_arg)
  in
  let verify_cmd =
    let doc =
      "Walk every store file and checksum every entry; reports corrupt files and exits 1 if any \
       are found.  Corrupt entries are never fatal to a run — they load as cache misses."
    in
    Cmd.v (Cmd.info "verify" ~doc)
      Term.(const verify $ Cmd_common.cache_dir_arg $ Cmd_common.verbose_arg)
  in
  let clear_cmd =
    let doc = "Delete every store file (and leftover temp file) in the cache directory." in
    Cmd.v (Cmd.info "clear" ~doc)
      Term.(const clear $ Cmd_common.cache_dir_arg $ Cmd_common.verbose_arg)
  in
  Cmd.group (Cmd.info "cache" ~doc) [ stats_cmd; verify_cmd; clear_cmd ]
