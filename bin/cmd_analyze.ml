open Cmdliner
module Engine = Gpp_engine

let run machine machines_file seed key iterations runs transfer_plan config_file no_cache
    cache_dir trace verbose =
  match
    Cmd_common.scenario ?machine ?machines_file ?seed ?runs ?iterations ?transfer_plan
      ?config_file ~no_cache ~cache_dir ~trace ~verbose ()
  with
  | Error e -> Cmd_common.fail e
  | Ok c -> (
      let c =
        if c.Engine.Config.iterations = None then { c with Engine.Config.iterations = Some 1 }
        else c
      in
      let session = Engine.Pipeline.session_of c in
      match Engine.Pipeline.run ~session c ~workload:key with
      | Error e -> Cmd_common.fail e
      | Ok state ->
          Format.printf "%a@." Gpp_core.Grophecy.pp_report (Engine.Pipeline.report_exn state);
          Gpp_core.Grophecy.log_cache_stats ();
          0)

let cmd =
  let doc =
    "Project a workload, measure it on the simulated hardware, and report speedups and errors."
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ Cmd_common.machine_opt_arg $ Cmd_common.machines_file_arg
      $ Cmd_common.seed_opt_arg $ Cmd_common.workload_arg
      $ Cmd_common.iterations_opt_arg $ Cmd_common.runs_opt_arg $ Cmd_common.transfer_plan_arg
      $ Cmd_common.config_file_arg $ Cmd_common.no_cache_arg $ Cmd_common.cache_dir_arg
      $ Cmd_common.trace_file_arg $ Cmd_common.verbose_arg)
