open Cmdliner
module Engine = Gpp_engine

let run machine machines_file seed key iterations transfer_plan predict config_file no_cache
    cache_dir trace verbose =
  match
    Cmd_common.scenario ?machine ?machines_file ?seed ?iterations ?transfer_plan ?predict
      ?config_file ~no_cache ~cache_dir ~trace ~verbose ()
  with
  | Error e -> Cmd_common.fail e
  | Ok c -> (
      (* The projection commands have always rescaled Repeat nodes by the
         -n flag (default 1) and linted before projecting. *)
      let c = { c with Engine.Config.lint = true } in
      let c =
        if c.Engine.Config.iterations = None then { c with Engine.Config.iterations = Some 1 }
        else c
      in
      let session = Engine.Pipeline.session_of c in
      match Engine.Pipeline.run ~through:Engine.Stage.Project ~session c ~workload:key with
      | Error e -> Cmd_common.fail e
      | Ok state ->
          let projection = Engine.Pipeline.projection_exn state in
          Format.printf "%a@." Gpp_core.Projection.pp projection;
          Format.printf "%a@." Gpp_dataflow.Analyzer.pp_plan projection.Gpp_core.Projection.plan;
          Gpp_core.Grophecy.log_cache_stats ();
          0)

let cmd =
  let doc = "Project GPU kernel and transfer time for a workload (prediction only)." in
  Cmd.v
    (Cmd.info "project" ~doc)
    Term.(
      const run $ Cmd_common.machine_opt_arg $ Cmd_common.machines_file_arg
      $ Cmd_common.seed_opt_arg $ Cmd_common.workload_arg
      $ Cmd_common.iterations_opt_arg $ Cmd_common.transfer_plan_arg
      $ Cmd_common.predict_arg $ Cmd_common.config_file_arg $ Cmd_common.no_cache_arg $ Cmd_common.cache_dir_arg
      $ Cmd_common.trace_file_arg $ Cmd_common.verbose_arg)
