(* GROPHECY++ command-line interface: the thin dispatch shell.

   Subcommands live in their own Cmd_* modules and mirror how the
   framework is used in the paper:
     calibrate          run the synthetic PCIe benchmark, print the models
     list               list the bundled workload skeletons
     lint               static-analysis report over workloads/.skel files
     project            project GPU performance of a workload (no measurement)
     analyze            full prediction vs simulated-measurement report
     advise             break-even porting verdict
     batch              workload × machine × iterations matrix, TSV output
     export-skel        dump a workload as a textual skeleton
     trace              per-kernel Chrome-trace export / trace selftest
     predict-transfer   price a single transfer with the calibrated model
     experiment         regenerate paper tables/figures by id
     cache              inspect/verify/clear the persistent cache

   The pipeline commands (project, analyze, advise, batch, experiment)
   resolve a layered Gpp_engine.Config scenario: library defaults <
   --config FILE < GPP_* environment < flags. *)

open Cmdliner

let main_cmd =
  let doc = "GPU performance projection with data transfer modeling (GROPHECY++)" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "All subcommands share one exit-code space: $(b,0) on success; $(b,1) when the requested \
         operation fails (a projection or simulation error, lint findings at or above the \
         threshold, corrupt store files from $(b,cache verify), a failed $(b,batch) cell); \
         $(b,2) on usage errors (unknown workload, experiment, or machine, malformed sizes, \
         flags, or $(b,--config) files).";
      `S "ENVIRONMENT";
      `P
        "The pipeline commands also read $(b,GPP_MACHINE), $(b,GPP_SEED), $(b,GPP_RUNS), \
         $(b,GPP_ITERATIONS), $(b,GPP_OUTLIER_PROBABILITY), $(b,GPP_NO_CACHE), \
         $(b,GPP_CACHE_DIR), $(b,GPP_TRACE), and $(b,GPP_VERBOSE), which override $(b,--config) \
         files and are overridden by flags.";
    ]
  in
  let info = Cmd.info "grophecy" ~version:"1.0.0" ~doc ~man in
  Cmd.group info
    [
      Cmd_calibrate.cmd;
      Cmd_list.cmd;
      Cmd_lint.cmd;
      Cmd_project.cmd;
      Cmd_analyze.cmd;
      Cmd_advise.cmd;
      Cmd_batch.cmd;
      Cmd_export_skel.cmd;
      Cmd_trace.cmd;
      Cmd_predict_transfer.cmd;
      Cmd_experiment.cmd;
      Cmd_cache.cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
