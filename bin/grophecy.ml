(* GROPHECY++ command-line interface.

   Subcommands mirror how the framework is used in the paper:
     calibrate          run the synthetic PCIe benchmark, print the models
     list               list the bundled workload skeletons
     project            project GPU performance of a workload (no measurement)
     analyze            full prediction vs simulated-measurement report
     predict-transfer   price a single transfer with the calibrated model
     experiment         regenerate paper tables/figures by id *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  let doc = "Print pipeline progress (calibration, chosen transformations, measurements)." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let no_cache_arg =
  let doc =
    "Bypass the projection cache entirely (both the in-memory tables and the on-disk store): \
     recompute every transformation search and kernel simulation instead of reusing memoized \
     results.  Output is bit-identical either way."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Directory of the persistent projection cache.  Defaults to $(b,GPP_CACHE_DIR), then \
     $(b,\\$XDG_CACHE_HOME/grophecy), then $(b,~/.cache/grophecy)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let trace_file_arg =
  let doc =
    "Enable observability and stream a Chrome trace-event JSON timeline of the run to $(docv) \
     (open it in chrome://tracing or https://ui.perfetto.dev).  A per-phase summary table is \
     printed to stderr when the run ends.  Without this flag the instrumentation is a no-op and \
     output is byte-identical."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Shared --verbose/--no-cache/--cache-dir/--trace preamble.  Cache
   statistics land on the gpp.core log source at info level, so they
   show up under -v.  With caching on, the persistent tier is loaded up
   front and flushed on exit (at_exit covers every exit path of
   Cmd.eval'); with --no-cache both tiers are off, so stale disk state
   can never leak into a run that asked for a recompute.

   The trace sink is set up *before* the cache at_exit is registered:
   at_exit handlers run in reverse order, so the final cache flush is
   still captured by the trace before the trailer is written. *)
let setup_run verbose no_cache cache_dir trace =
  setup_logs verbose;
  (match trace with
  | None -> ()
  | Some file -> (
      Gpp_obs.Obs.set_enabled true;
      match Gpp_obs.Obs.start_trace file with
      | Ok () ->
          at_exit (fun () ->
              Gpp_obs.Obs.stop_trace ();
              Gpp_obs.Obs.print_summary ();
              Format.eprintf "wrote %s (open in chrome://tracing or Perfetto)@." file)
      | Error e -> Format.eprintf "cannot open trace file %s: %s (tracing disabled)@." file e));
  Option.iter Gpp_cache.Control.set_dir cache_dir;
  if no_cache then begin
    Gpp_cache.Control.set_enabled false;
    Gpp_cache.Control.set_disk_enabled false
  end
  else begin
    Gpp_cache.Memo.load_disk ();
    at_exit (fun () -> Gpp_cache.Memo.flush_disk ())
  end

let machine_conv =
  let parse = function
    | "argonne" -> Ok Gpp_arch.Machine.argonne_node
    | "section2b" -> Ok Gpp_arch.Machine.section2b_node
    | "gt200" -> Ok Gpp_arch.Machine.gt200_node
    | "modern" -> Ok Gpp_arch.Machine.modern_node
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (expected argonne, section2b, gt200, or modern)" s))
  in
  let print ppf (m : Gpp_arch.Machine.t) = Format.fprintf ppf "%s" m.name in
  Arg.conv (parse, print)

let machine_arg =
  let doc =
    "Target machine preset: $(b,argonne) (the paper's testbed), $(b,section2b), $(b,gt200), or \
     $(b,modern)."
  in
  Arg.(value & opt machine_conv Gpp_arch.Machine.argonne_node & info [ "machine"; "m" ] ~doc)

let seed_arg =
  let doc = "Seed for the simulated hardware's noise streams." in
  Arg.(value & opt int64 0x1B0A_2013_6CA1_55AAL & info [ "seed" ] ~doc)

let workload_arg =
  let doc = "Workload instance as $(b,app/size), e.g. $(b,cfd/97K) or $(b,hotspot/1024 x 1024)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let iterations_arg =
  let doc = "Iteration count for iterative workloads." in
  Arg.(value & opt int 1 & info [ "iterations"; "n" ] ~doc)

let runs_arg =
  let doc = "Runs to average per measurement (the paper uses 10)." in
  Arg.(value & opt int 10 & info [ "runs" ] ~doc)

let session_of machine seed = Gpp_core.Grophecy.init ~seed machine

(* A workload argument is either a bundled "app/size" key or a path to a
   textual .skel file. *)
let resolve_workload key =
  match Gpp_workloads.Registry.find_by_key key with
  | Some inst -> Ok inst
  | None when Sys.file_exists key && not (Sys.is_directory key) -> (
      match Gpp_skeleton.Parser.parse_file key with
      | Ok program ->
          Ok
            {
              Gpp_workloads.Registry.app = program.Gpp_skeleton.Program.name;
              size = "file";
              program =
                (fun iterations ->
                  if iterations = 1 then program
                  else Gpp_skeleton.Program.with_iterations program iterations);
            }
      | Error e -> Error e (* parse/validation errors already carry the path *))
  | None ->
      let known = List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.all in
      Error
        (Printf.sprintf "unknown workload %S; known: %s (or a path to a .skel file)" key
           (String.concat ", " known))

(* Static analysis: run the lint driver and surface findings before a
   projection, so an ill-formed-but-valid skeleton never projects
   silently.  Warnings and errors go to stderr; infos stay quiet here
   (run `grophecy lint` for the full report). *)
let warn_diagnostics ~machine program =
  let report = Gpp_analysis.Driver.run ~gpu:machine.Gpp_arch.Machine.gpu program in
  List.iter
    (fun (d : Gpp_analysis.Diagnostic.t) ->
      if d.severity <> Gpp_analysis.Diagnostic.Info then
        Format.eprintf "%s: %a@." report.Gpp_analysis.Driver.program_name
          Gpp_analysis.Diagnostic.pp d)
    report.Gpp_analysis.Driver.diagnostics

(* calibrate *)

let calibrate machine seed verbose =
  setup_logs verbose;
  let session = session_of machine seed in
  Format.printf "%a@.@." Gpp_arch.Machine.pp machine;
  Format.printf "two-point calibration (1 B and 512 MiB transfers, 10 runs each):@.";
  List.iter
    (fun model -> Format.printf "  %a@." Gpp_pcie.Model.pp model)
    (Gpp_pcie.Calibrate.calibrate_all session.Gpp_core.Grophecy.calibration_link);
  Format.printf "@.models used for projection (pinned, as in the paper):@.";
  Format.printf "  %a@.  %a@." Gpp_pcie.Model.pp session.Gpp_core.Grophecy.h2d Gpp_pcie.Model.pp
    session.Gpp_core.Grophecy.d2h;
  0

let calibrate_cmd =
  let doc = "Run the synthetic PCIe benchmark and print the calibrated transfer models." in
  Cmd.v (Cmd.info "calibrate" ~doc) Term.(const calibrate $ machine_arg $ seed_arg $ verbose_arg)

(* list *)

let list_workloads () =
  Printf.printf "%-24s %s\n" "WORKLOAD" "KERNELS";
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let program = inst.program 1 in
      Printf.printf "%-24s %s\n"
        (Gpp_workloads.Registry.key inst)
        (String.concat ", "
           (List.map (fun (k : Gpp_skeleton.Ir.kernel) -> k.name) program.kernels)))
    Gpp_workloads.Registry.all;
  0

let list_cmd =
  let doc = "List the bundled workload skeletons." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_workloads $ const ())

(* project *)

let project machine seed key iterations no_cache cache_dir trace verbose =
  setup_run verbose no_cache cache_dir trace;
  match Gpp_obs.Obs.span "parse" (fun () -> resolve_workload key) with
  | Error e ->
      prerr_endline e;
      2
  | Ok inst -> (
      let session = session_of machine seed in
      let program = Gpp_skeleton.Program.with_iterations (inst.program 1) iterations in
      Gpp_obs.Obs.span "analysis.lint" (fun () -> warn_diagnostics ~machine program);
      match
        Gpp_core.Projection.project ~machine ~h2d:session.Gpp_core.Grophecy.h2d
          ~d2h:session.Gpp_core.Grophecy.d2h program
      with
      | Error e ->
          prerr_endline e;
          1
      | Ok projection ->
          Format.printf "%a@." Gpp_core.Projection.pp projection;
          Format.printf "%a@." Gpp_dataflow.Analyzer.pp_plan projection.Gpp_core.Projection.plan;
          Gpp_core.Grophecy.log_cache_stats ();
          0)

let project_cmd =
  let doc = "Project GPU kernel and transfer time for a workload (prediction only)." in
  Cmd.v
    (Cmd.info "project" ~doc)
    Term.(
      const project $ machine_arg $ seed_arg $ workload_arg $ iterations_arg $ no_cache_arg
      $ cache_dir_arg $ trace_file_arg $ verbose_arg)

(* analyze *)

let analyze machine seed key iterations runs no_cache cache_dir trace verbose =
  setup_run verbose no_cache cache_dir trace;
  match Gpp_obs.Obs.span "parse" (fun () -> resolve_workload key) with
  | Error e ->
      prerr_endline e;
      2
  | Ok inst -> (
      let session = session_of machine seed in
      match Gpp_core.Grophecy.analyze ~runs ~iterations session (inst.program 1) with
      | Error e ->
          prerr_endline e;
          1
      | Ok report ->
          Format.printf "%a@." Gpp_core.Grophecy.pp_report report;
          Gpp_core.Grophecy.log_cache_stats ();
          0)

let analyze_cmd =
  let doc =
    "Project a workload, measure it on the simulated hardware, and report speedups and errors."
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ machine_arg $ seed_arg $ workload_arg $ iterations_arg $ runs_arg
      $ no_cache_arg $ cache_dir_arg $ trace_file_arg $ verbose_arg)

(* export-skel *)

let export_skel key =
  match resolve_workload key with
  | Error e ->
      prerr_endline e;
      2
  | Ok inst ->
      print_string (Gpp_skeleton.Printer.to_skel (inst.program 1));
      0

let export_skel_cmd =
  let doc = "Print a workload as an editable textual skeleton (.skel) on stdout." in
  Cmd.v (Cmd.info "export-skel" ~doc) Term.(const export_skel $ workload_arg)

(* advise *)

let advise machine seed key iterations no_cache cache_dir trace verbose =
  setup_run verbose no_cache cache_dir trace;
  match Gpp_obs.Obs.span "parse" (fun () -> resolve_workload key) with
  | Error e ->
      prerr_endline e;
      2
  | Ok inst -> (
      let session = session_of machine seed in
      Gpp_obs.Obs.span "analysis.lint" (fun () -> warn_diagnostics ~machine (inst.program 1));
      match
        Gpp_core.Projection.project ~machine ~h2d:session.Gpp_core.Grophecy.h2d
          ~d2h:session.Gpp_core.Grophecy.d2h (inst.program 1)
      with
      | Error e ->
          prerr_endline e;
          1
      | Ok projection ->
          let r = Gpp_core.Advisor.recommend ~iterations projection in
          Format.printf "%a@." Gpp_core.Advisor.pp r;
          0)

let advise_cmd =
  let doc =
    "Should this workload be ported?  Prediction-only verdict with break-even analysis."
  in
  Cmd.v
    (Cmd.info "advise" ~doc)
    Term.(
      const advise $ machine_arg $ seed_arg $ workload_arg $ iterations_arg $ no_cache_arg
      $ cache_dir_arg $ trace_file_arg $ verbose_arg)

(* lint *)

let lint machine keys all strict json codes verbose =
  setup_logs verbose;
  if codes then begin
    Printf.printf "%-8s %-8s %s\n" "CODE" "SEVERITY" "SUMMARY";
    List.iter
      (fun (c : Gpp_analysis.Pass.code_doc) ->
        Printf.printf "%-8s %-8s %s\n" c.code
          (Gpp_analysis.Diagnostic.severity_name c.severity)
          c.summary)
      (Gpp_analysis.Driver.code_index ());
    0
  end
  else begin
    let targets =
      (if all then List.map (fun i -> Ok i) Gpp_workloads.Registry.all else [])
      @ List.map resolve_workload keys
    in
    if targets = [] then begin
      prerr_endline "lint: nothing to check (give WORKLOAD arguments or --all)";
      2
    end
    else begin
      let failures = List.filter_map (function Error e -> Some e | Ok _ -> None) targets in
      List.iter prerr_endline failures;
      if failures <> [] then 2
      else begin
        let reports =
          List.map
            (function
              | Error _ -> assert false
              | Ok (inst : Gpp_workloads.Registry.instance) ->
                  Gpp_analysis.Driver.run ~gpu:machine.Gpp_arch.Machine.gpu (inst.program 1))
            targets
        in
        if json then
          print_endline
            (match reports with
            | [ report ] -> Gpp_analysis.Render.to_json report
            | reports -> Gpp_analysis.Render.json_of_reports reports)
        else
          List.iter (fun report -> Format.printf "%a@." Gpp_analysis.Render.pp_text report) reports;
        List.fold_left
          (fun acc report -> max acc (Gpp_analysis.Driver.exit_code ~strict report))
          0 reports
      end
    end
  end

let lint_cmd =
  let doc =
    "Run the static-analysis passes (bounds, races, transfer audit, performance lints, program \
     checks) over workloads or .skel files and report diagnostics."
  in
  let keys_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload instances ($(b,app/size)) or paths to $(b,.skel) files.")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every bundled workload skeleton.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ] ~doc:"List every diagnostic code and exit.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const lint $ machine_arg $ keys_arg $ all_arg $ strict_arg $ json_arg $ codes_arg
      $ verbose_arg)

(* predict-transfer *)

let predict_transfer machine seed size_str to_host =
  match Gpp_util.Units.parse_bytes size_str with
  | None ->
      Printf.eprintf "cannot parse size %S (try 4KiB, 512MiB, 97000)\n" size_str;
      2
  | Some bytes ->
      let session = session_of machine seed in
      let model =
        if to_host then session.Gpp_core.Grophecy.d2h else session.Gpp_core.Grophecy.h2d
      in
      Format.printf "%a@.T(%s) = %a@." Gpp_pcie.Model.pp model
        (Gpp_util.Units.bytes_to_string bytes)
        Gpp_util.Units.pp_time
        (Gpp_pcie.Model.predict model ~bytes);
      0

let predict_transfer_cmd =
  let doc = "Predict the time of a single pinned transfer of a given size." in
  let size_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SIZE" ~doc:"Transfer size.")
  in
  let to_host_arg =
    Arg.(value & flag & info [ "to-host" ] ~doc:"Price a GPU-to-CPU transfer instead.")
  in
  Cmd.v
    (Cmd.info "predict-transfer" ~doc)
    Term.(const predict_transfer $ machine_arg $ seed_arg $ size_arg $ to_host_arg)

(* trace *)

let trace machine seed key output verbose =
  setup_logs verbose;
  match resolve_workload key with
  | Error e ->
      prerr_endline e;
      2
  | Ok inst -> (
      let session = session_of machine seed in
      match
        Gpp_core.Projection.project ~machine ~h2d:session.Gpp_core.Grophecy.h2d
          ~d2h:session.Gpp_core.Grophecy.d2h (inst.program 1)
      with
      | Error e ->
          prerr_endline e;
          1
      | Ok projection ->
          let rng = Gpp_util.Rng.create seed in
          let status =
            List.fold_left
              (fun status (kp : Gpp_core.Projection.kernel_projection) ->
                if status <> 0 then status
                else begin
                  let collector = Gpp_gpusim.Trace.create () in
                  match
                    Gpp_gpusim.Gpu_sim.run ~trace:collector ~rng
                      ~gpu:machine.Gpp_arch.Machine.gpu
                      kp.Gpp_core.Projection.candidate.Gpp_transform.Explore.characteristics
                  with
                  | Error e ->
                      prerr_endline e;
                      1
                  | Ok result ->
                      Printf.printf "%s (%s): simulated %s
%s"
                        kp.Gpp_core.Projection.kernel_name
                        kp.Gpp_core.Projection.candidate.Gpp_transform.Explore.characteristics
                          .Gpp_model.Characteristics.config_label
                        (Gpp_util.Units.time_to_string result.Gpp_gpusim.Gpu_sim.time)
                        (Gpp_gpusim.Trace.summary collector);
                      let path =
                        Printf.sprintf "%s.%s.json" output kp.Gpp_core.Projection.kernel_name
                      in
                      Out_channel.with_open_text path (fun oc ->
                          output_string oc (Gpp_gpusim.Trace.to_chrome_json collector));
                      Printf.printf "wrote %s (open in chrome://tracing or Perfetto)

" path;
                      0
                end)
              0 projection.Gpp_core.Projection.kernels
          in
          status)

(* trace selftest: emit a miniature trace through the real span/counter
   machinery (every canonical pipeline phase appears), then validate it
   with the built-in checker — no external tooling, so CI can gate on
   it.  With a FILE argument it validates that file instead, which is
   how CI checks traces produced by real runs. *)

let trace_selftest file verbose =
  setup_logs verbose;
  match file with
  | Some path -> (
      match Gpp_obs.Validate.validate_file path with
      | Ok stats ->
          Format.printf "%s: valid Chrome trace (%a)@." path Gpp_obs.Validate.pp_stats stats;
          0
      | Error e ->
          Format.eprintf "%s: INVALID trace: %s@." path e;
          1)
  | None -> (
      let module Obs = Gpp_obs.Obs in
      let path = Filename.temp_file "grophecy-selftest" ".trace.json" in
      let finish status =
        Obs.set_enabled false;
        Obs.reset ();
        (try Sys.remove path with Sys_error _ -> ());
        status
      in
      Obs.set_enabled true;
      match Obs.start_trace path with
      | Error e ->
          Format.eprintf "trace selftest: cannot open %s: %s@." path e;
          finish 1
      | Ok () ->
          Obs.span "selftest" (fun () ->
              Obs.span "parse" (fun () -> ());
              Obs.span "analysis.lint" (fun () -> ());
              Obs.span "core.project" (fun () ->
                  Obs.span "core.search" (fun () ->
                      Obs.span "transform.search" (fun () ->
                          Obs.span "transform.candidate" (fun () -> ())));
                  Obs.span "dataflow.analyze" (fun () -> ());
                  Obs.span "core.price_transfers" (fun () -> ()));
              Obs.span "core.measure" (fun () ->
                  Obs.span "gpusim.run_mean" (fun () -> Obs.span "gpusim.run" (fun () -> ()));
                  Obs.span "pcie.transfer" (fun () -> ()));
              Obs.event ~detail:"selftest" "cache.hit";
              Obs.add (Obs.counter "selftest.counter") 42);
          Obs.stop_trace ();
          (match Gpp_obs.Validate.validate_file path with
          | Ok stats ->
              Format.printf "trace selftest: ok (%a)@." Gpp_obs.Validate.pp_stats stats;
              finish 0
          | Error e ->
              Format.eprintf "trace selftest: emitted trace is INVALID: %s@." e;
              finish 1))

let trace_cmd =
  let doc =
    "Simulate a workload's kernels and export Chrome-trace timelines, or ($(b,trace selftest)) \
     check the observability layer's own trace output."
  in
  let output_arg =
    Arg.(
      value & opt string "gpp-trace"
      & info [ "output"; "o" ] ~docv:"PREFIX" ~doc:"Output path prefix for the trace JSON files.")
  in
  (* Workload keys are free-form ("hotspot/1024 x 1024"), so selftest
     cannot be a Cmd.group subcommand — the group would reject every
     workload as an unknown command name.  Dispatch on the first
     positional instead: no bundled workload is named "selftest". *)
  let target_arg =
    let doc =
      "Workload instance as $(b,app/size) (e.g. $(b,cfd/97K)), or the literal $(b,selftest) to \
       emit a miniature trace through the observability layer and validate it — exits 1 if the \
       trace is malformed; CI gates on this."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD|selftest" ~doc)
  in
  let file_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"With $(b,selftest): an existing trace JSON file to validate instead.")
  in
  let dispatch machine seed target file output verbose =
    match target with
    | "selftest" -> trace_selftest file verbose
    | key -> trace machine seed key output verbose
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const dispatch $ machine_arg $ seed_arg $ target_arg $ file_arg $ output_arg $ verbose_arg)

(* experiment *)

let experiment ids list_only csv_dir no_cache cache_dir trace verbose =
  setup_run verbose no_cache cache_dir trace;
  if list_only then begin
    List.iter
      (fun (e : Gpp_experiments.Suite.entry) -> Printf.printf "%-26s %s\n" e.id e.title)
      Gpp_experiments.Suite.all;
    0
  end
  else begin
    (* Resolve every id before running anything, and report a usage
       error (exit 2) through the same return path as the rest of the
       CLI — never a bare [exit] that skips Cmd.eval'. *)
    let entries =
      match ids with
      | [] -> Ok Gpp_experiments.Suite.all
      | ids ->
          List.fold_left
            (fun acc id ->
              match (acc, Gpp_experiments.Suite.find id) with
              | Error e, _ -> Error e
              | Ok _, None -> Error id
              | Ok entries, Some e -> Ok (entries @ [ e ]))
            (Ok []) ids
    in
    match entries with
    | Error id ->
        Printf.eprintf "unknown experiment id %s (try --list)\n" id;
        2
    | Ok entries ->
        let ctx = Gpp_obs.Obs.span "experiment.context" (fun () -> Gpp_experiments.Context.create ()) in
        List.iter
          (fun (e : Gpp_experiments.Suite.entry) ->
            let out = Gpp_obs.Obs.span ("experiment." ^ e.id) (fun () -> e.run ctx) in
            Gpp_experiments.Output.print out;
            print_newline ())
          entries;
        (match csv_dir with
        | None -> ()
        | Some dir ->
            let written = Gpp_experiments.Export.write_all ctx ~dir in
            Printf.printf "wrote %d CSV files to %s\n" (List.length written) dir);
        Gpp_core.Grophecy.log_cache_stats ();
        0
  end

let experiment_cmd =
  let doc = "Regenerate paper tables and figures (all, or selected by id)." in
  let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.") in
  let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List available experiment ids.") in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also export every experiment's data as CSV into $(docv).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(
      const experiment $ ids_arg $ list_arg $ csv_arg $ no_cache_arg $ cache_dir_arg
      $ trace_file_arg $ verbose_arg)

(* cache *)

let resolve_cache_dir cache_dir =
  Option.iter Gpp_cache.Control.set_dir cache_dir;
  Gpp_cache.Control.dir ()

(* Counters are read from the shared observability registry (lib/obs) —
   the same one a traced run reports — so the disk-tier numbers here
   and in `--trace` summaries can never disagree.  Observability is
   enabled for the duration of the command so the load below lands in
   the registry. *)
let cache_stats cache_dir porcelain verbose =
  setup_logs verbose;
  let dir = resolve_cache_dir cache_dir in
  Gpp_obs.Obs.set_enabled true;
  Gpp_cache.Memo.load_disk ();
  let files = Gpp_cache.Store.list_dir ~dir in
  if porcelain then begin
    (* Stable machine-readable output, one record per line, TAB-separated:
         dir\t<path>
         table\t<name>\t<hits>\t<misses>\t<evictions>\t<bypasses>\t<entries>\t<capacity>
         store\t<path>\t<entries>\t<corrupt>
         counter\t<name>\t<value>
       CI picks store filenames out of this instead of hardcoding them. *)
    Printf.printf "dir\t%s\n" dir;
    List.iter
      (fun (s : Gpp_cache.Memo.snapshot) ->
        Printf.printf "table\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n" s.name s.hits s.misses s.evictions
          s.bypasses s.entries s.capacity)
      (Gpp_cache.Memo.snapshots ());
    List.iter
      (fun path ->
        let r = Gpp_cache.Store.verify ~path in
        Printf.printf "store\t%s\t%d\t%d\n" path r.Gpp_cache.Store.total
          r.Gpp_cache.Store.vcorrupt)
      files;
    List.iter (fun (name, v) -> Printf.printf "counter\t%s\t%d\n" name v) (Gpp_obs.Obs.counters ());
    0
  end
  else begin
    Printf.printf "cache directory: %s\n" dir;
    List.iter
      (fun s -> Format.printf "  %a@." Gpp_cache.Memo.pp_snapshot s)
      (Gpp_cache.Memo.snapshots ());
    (match files with
    | [] -> Printf.printf "  (no store files)\n"
    | files ->
        let total =
          List.fold_left
            (fun acc path ->
              let r = Gpp_cache.Store.verify ~path in
              acc + r.Gpp_cache.Store.total)
            0 files
        in
        Printf.printf "  %d store file(s), %d entr%s on disk\n" (List.length files) total
          (if total = 1 then "y" else "ies"));
    (match Gpp_obs.Obs.counters () with
    | [] -> ()
    | counters ->
        Printf.printf "observability counters:\n";
        List.iter (fun (name, v) -> Printf.printf "  %-24s %d\n" name v) counters);
    0
  end

let cache_verify cache_dir verbose =
  setup_logs verbose;
  let dir = resolve_cache_dir cache_dir in
  match Gpp_cache.Store.list_dir ~dir with
  | [] ->
      Printf.printf "no store files in %s\n" dir;
      0
  | files ->
      let bad =
        List.fold_left
          (fun bad path ->
            let r = Gpp_cache.Store.verify ~path in
            match r.Gpp_cache.Store.vheader with
            | Some err ->
                Printf.printf "%s: UNREADABLE (%s)\n" path
                  (Gpp_cache.Store.describe_header_error err);
                bad + 1
            | None when r.Gpp_cache.Store.vcorrupt > 0 ->
                Printf.printf "%s: %d/%d entries CORRUPT\n" path r.Gpp_cache.Store.vcorrupt
                  r.Gpp_cache.Store.total;
                bad + 1
            | None ->
                Printf.printf "%s: ok (%d entries)\n" path r.Gpp_cache.Store.total;
                bad)
          0 files
      in
      if bad = 0 then 0
      else begin
        Printf.eprintf "%d of %d store file(s) damaged (they load as cache misses; run \
                        `grophecy cache clear` to drop them)\n"
          bad (List.length files);
        1
      end

let cache_clear cache_dir verbose =
  setup_logs verbose;
  let dir = resolve_cache_dir cache_dir in
  let removed = Gpp_cache.Store.clear_dir ~dir in
  Printf.printf "removed %d file(s) from %s\n" removed dir;
  0

let cache_cmd =
  let doc = "Inspect, verify, or clear the persistent projection cache." in
  let stats =
    let doc =
      "Per-table cache statistics, including the disk tier (entries loaded, rejected, bytes)."
    in
    let porcelain_arg =
      Arg.(
        value & flag
        & info [ "porcelain" ]
            ~doc:
              "Machine-readable output: TAB-separated $(b,dir)/$(b,table)/$(b,store)/$(b,counter) \
               records with stable field order, for scripts and CI.")
    in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const cache_stats $ cache_dir_arg $ porcelain_arg $ verbose_arg)
  in
  let verify =
    let doc =
      "Walk every store file and checksum every entry; reports corrupt files and exits 1 if any \
       are found.  Corrupt entries are never fatal to a run — they load as cache misses."
    in
    Cmd.v (Cmd.info "verify" ~doc) Term.(const cache_verify $ cache_dir_arg $ verbose_arg)
  in
  let clear =
    let doc = "Delete every store file (and leftover temp file) in the cache directory." in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const cache_clear $ cache_dir_arg $ verbose_arg)
  in
  Cmd.group (Cmd.info "cache" ~doc) [ stats; verify; clear ]

let main_cmd =
  let doc = "GPU performance projection with data transfer modeling (GROPHECY++)" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "All subcommands share one exit-code space: $(b,0) on success; $(b,1) when the requested \
         operation fails (a projection or simulation error, lint findings at or above the \
         threshold, corrupt store files from $(b,cache verify)); $(b,2) on usage errors (unknown \
         workload, experiment, or machine, malformed sizes or flags).";
    ]
  in
  let info = Cmd.info "grophecy" ~version:"1.0.0" ~doc ~man in
  Cmd.group info
    [
      calibrate_cmd;
      list_cmd;
      lint_cmd;
      project_cmd;
      analyze_cmd;
      advise_cmd;
      export_skel_cmd;
      trace_cmd;
      predict_transfer_cmd;
      experiment_cmd;
      cache_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
