(* GROPHECY++ command-line interface: the thin dispatch shell.

   Subcommands live in their own Cmd_* modules and mirror how the
   framework is used in the paper:
     calibrate          run the synthetic PCIe benchmark, print the models
     list               list the bundled workload skeletons
     lint               static-analysis report over workloads/.skel files
     project            project GPU performance of a workload (no measurement)
     analyze            full prediction vs simulated-measurement report
     advise             break-even porting verdict
     batch              workload × machine × iterations matrix, TSV output
     crossval           cross-machine calibration accuracy matrix, TSV output
     export-skel        dump a workload as a textual skeleton
     trace              per-kernel Chrome-trace export / trace selftest
     predict-transfer   price a single transfer with the calibrated model
     experiment         regenerate paper tables/figures by id
     cache              inspect/verify/clear the persistent cache
     serve              long-running HTTP prediction service

   The pipeline commands (project, analyze, advise, batch, crossval,
   experiment) resolve a layered Gpp_engine.Config scenario: library
   defaults < --config FILE < GPP_* environment < flags. *)

open Cmdliner

let main_cmd =
  let doc = "GPU performance projection with data transfer modeling (GROPHECY++)" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "All subcommands share one exit-code space: $(b,0) on success; $(b,1) when the requested \
         operation fails (a projection or simulation error, lint findings at or above the \
         threshold, corrupt store files from $(b,cache verify), a failed $(b,batch) cell); \
         $(b,2) on usage errors (unknown workload, experiment, or machine, malformed sizes, \
         flags, or $(b,--config) files).";
      `S "ENVIRONMENT";
      `P
        "The pipeline commands also read $(b,GPP_MACHINES), $(b,GPP_MACHINE), $(b,GPP_SEED), $(b,GPP_RUNS), \
         $(b,GPP_ITERATIONS), $(b,GPP_JOBS), $(b,GPP_OUTLIER_PROBABILITY), $(b,GPP_NO_CACHE), \
         $(b,GPP_CACHE_DIR), $(b,GPP_TRACE), $(b,GPP_VERBOSE), $(b,GPP_LISTEN), and \
         $(b,GPP_FLUSH_EVERY), which override $(b,--config) files and are overridden by flags.";
    ]
  in
  let info = Cmd.info "grophecy" ~version:"1.0.0" ~doc ~man in
  Cmd.group info
    [
      Cmd_calibrate.cmd;
      Cmd_list.cmd;
      Cmd_lint.cmd;
      Cmd_project.cmd;
      Cmd_analyze.cmd;
      Cmd_advise.cmd;
      Cmd_batch.cmd;
      Cmd_crossval.cmd;
      Cmd_export_skel.cmd;
      Cmd_trace.cmd;
      Cmd_predict_transfer.cmd;
      Cmd_experiment.cmd;
      Cmd_cache.cmd;
      Cmd_serve.cmd;
    ]

(* eval' with ~catch:false so a broken pipe propagates here instead of
   being reported as an internal error: `grophecy suite | head` closing
   stdout early is the downstream's prerogative, not a failure.  Any
   other escaped exception reproduces Cmdliner's default report. *)
let () =
  Gpp_engine.Runtime.ignore_sigpipe ();
  let code =
    try
      let code = Cmd.eval' ~catch:false main_cmd in
      Gpp_engine.Runtime.flush_stdout ();
      code
    with
    | e when Gpp_engine.Runtime.is_broken_pipe e ->
        Gpp_engine.Runtime.discard_stdout ();
        0
    | e ->
        let bt = Printexc.get_raw_backtrace () in
        Format.eprintf "grophecy: internal error, uncaught exception:@\n%s@\n%s@."
          (Printexc.to_string e)
          (Printexc.raw_backtrace_to_string bt);
        Cmd.Exit.internal_error
  in
  exit code
