(* Tests for Gpp_util: RNG, statistics, units, tables, plots. *)

module Rng = Gpp_util.Rng
module Stats = Gpp_util.Stats
module Units = Gpp_util.Units

(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 7L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b);
  (* Advancing one does not affect the other. *)
  ignore (Rng.next_int64 a);
  ignore (Rng.next_int64 a);
  let x = Rng.next_int64 a and y = Rng.next_int64 b in
  Alcotest.(check bool) "streams diverge after unequal advances" true (x <> y)

let test_rng_split_differs () =
  let parent = Rng.create 1L in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.next_int64 parent) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 child) in
  Alcotest.(check bool) "split stream differs from parent" true (xs <> ys)

let test_rng_float_range =
  Helpers.qtest "float in [0,1)" QCheck2.Gen.int64 (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

let test_rng_uniform_range =
  Helpers.qtest "uniform in [lo,hi)"
    QCheck2.Gen.(triple int64 (float_range (-100.) 100.) (float_range 0.001 50.))
    (fun (seed, lo, width) ->
      let rng = Rng.create seed in
      let v = Rng.uniform rng ~lo ~hi:(lo +. width) in
      v >= lo && v < lo +. width)

let test_rng_int_bound =
  Helpers.qtest "int in [0,bound)"
    QCheck2.Gen.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng ~bound in
      v >= 0 && v < bound)

let test_rng_gaussian_moments () =
  let rng = Rng.create 2024L in
  let n = 20000 in
  let samples = List.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  Helpers.close ~tolerance:0.1 "mean" 3.0 (Stats.mean samples);
  Helpers.close ~tolerance:0.1 "stddev" 2.0 (Stats.stddev samples)

let test_rng_lognormal_median () =
  let rng = Rng.create 5L in
  let samples = List.init 10001 (fun _ -> Rng.lognormal_noise rng ~sigma:0.1) in
  Helpers.close ~tolerance:0.02 "median near 1" 1.0 (Stats.median samples);
  List.iter (fun s -> Helpers.check_positive "noise factor" s) samples

(* Stats *)

let test_mean_and_variance () =
  Helpers.close "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  (* Sample variance (Bessel's correction): sum of squares 2 over n-1 = 2. *)
  Helpers.close "variance" 1.0 (Stats.variance [ 1.0; 2.0; 3.0 ]);
  Helpers.close "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Helpers.close "singleton variance" 0.0 (Stats.variance [ 42.0 ]);
  Helpers.close "singleton stddev" 0.0 (Stats.stddev [ 42.0 ]);
  Helpers.check_raises_invalid "empty mean" (fun () -> Stats.mean [])

let test_geomean () =
  Helpers.close "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Helpers.check_raises_invalid "non-positive" (fun () -> Stats.geomean [ 1.0; 0.0 ])

let test_median () =
  Helpers.close "odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  Helpers.close "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 2.0 ] in
  Helpers.close "min" (-1.0) lo;
  Helpers.close "max" 3.0 hi

let test_error_magnitude () =
  Helpers.close "over-prediction" 50.0 (Stats.error_magnitude ~predicted:3.0 ~measured:2.0);
  Helpers.close "under-prediction" 50.0 (Stats.error_magnitude ~predicted:1.0 ~measured:2.0);
  Helpers.close "signed" (-50.0) (Stats.percent_difference ~predicted:1.0 ~measured:2.0);
  Helpers.check_raises_invalid "zero measured" (fun () ->
      Stats.error_magnitude ~predicted:1.0 ~measured:0.0)

let test_mean_error_magnitude () =
  Helpers.close "pairs" 25.0 (Stats.mean_error_magnitude [ (1.0, 2.0); (2.0, 2.0) ])

let test_least_squares_exact () =
  let points = List.init 10 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  let fit = Stats.least_squares points in
  Helpers.close "intercept" 3.0 fit.Stats.intercept;
  Helpers.close "slope" 2.0 fit.Stats.slope;
  Helpers.close "r2" 1.0 fit.Stats.r_squared

let test_least_squares_errors () =
  Helpers.check_raises_invalid "one point" (fun () -> Stats.least_squares [ (1.0, 1.0) ]);
  Helpers.check_raises_invalid "degenerate x" (fun () ->
      Stats.least_squares [ (1.0, 1.0); (1.0, 2.0) ])

let test_least_squares_recovers_line =
  Helpers.qtest ~count:50 "fit recovers arbitrary line"
    QCheck2.Gen.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (a, b) ->
      let points = List.init 5 (fun i -> (float_of_int i, a +. (b *. float_of_int i))) in
      let fit = Stats.least_squares points in
      Float.abs (fit.Stats.intercept -. a) < 1e-6 && Float.abs (fit.Stats.slope -. b) < 1e-6)

let test_summarize () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Helpers.close "mean" 2.0 s.Stats.sum_mean;
  Helpers.close "min" 1.0 s.Stats.sum_min;
  Helpers.close "max" 3.0 s.Stats.sum_max

(* Units *)

let test_unit_constants () =
  Alcotest.(check int) "kib" 1024 Units.kib;
  Alcotest.(check int) "mib" (1024 * 1024) Units.mib;
  Alcotest.(check int) "4 MiB" (4 * Units.mib) (Units.bytes_of_mib 4.0);
  Helpers.close "mib roundtrip" 3.5 (Units.mib_of_bytes (Units.bytes_of_mib 3.5));
  Helpers.close "us" 1e-5 (Units.us 10.0);
  Helpers.close "ms roundtrip" 2.5 (Units.ms_of_seconds (Units.ms 2.5));
  Helpers.close "gb/s" 2.5e9 (Units.gb_per_s 2.5)

let test_unit_formatting () =
  Alcotest.(check string) "bytes" "512 B" (Units.bytes_to_string 512);
  Alcotest.(check string) "kib" "2.0 KiB" (Units.bytes_to_string 2048);
  Alcotest.(check string) "mib" "512.0 MiB" (Units.bytes_to_string (512 * Units.mib));
  Alcotest.(check string) "time us" "13.00 us" (Units.time_to_string 13e-6);
  Alcotest.(check string) "time ms" "4.620 ms" (Units.time_to_string 4.62e-3);
  Alcotest.(check string) "bandwidth" "2.50 GB/s" (Units.bandwidth_to_string 2.5e9)

let test_parse_bytes () =
  let check s expected =
    match Units.parse_bytes s with
    | Some v -> Alcotest.(check int) s expected v
    | None -> Alcotest.failf "parse_bytes %S returned None" s
  in
  check "97000" 97000;
  check "4 KiB" 4096;
  check "512MiB" (512 * Units.mib);
  check "1.5 GiB" (3 * Units.gib / 2);
  check "64kb" (64 * Units.kib);
  check "2M" (2 * Units.mib);
  Alcotest.(check (option int)) "garbage" None (Units.parse_bytes "abc");
  Alcotest.(check (option int)) "bad suffix" None (Units.parse_bytes "12 pb");
  Alcotest.(check (option int)) "negative" None (Units.parse_bytes "-5")

(* Sizes outside an int byte count must be rejected, not silently
   wrapped by [int_of_float] into a garbage (possibly negative) count. *)
let test_bytes_overflow () =
  Alcotest.(check (option int)) "overflowing GiB count" None
    (Units.parse_bytes "99999999999999 GiB");
  Alcotest.(check (option int)) "overflowing plain count" None
    (Units.parse_bytes "99999999999999999999");
  Alcotest.(check (option int)) "infinite value" None (Units.parse_bytes "1e999 KiB");
  (* Largest whole GiB count that still fits an int on 64-bit. *)
  (match Units.parse_bytes "4294967295 GiB" with
  | Some v -> Alcotest.(check bool) "near-max GiB is positive" true (v > 0)
  | None -> Alcotest.fail "4294967295 GiB should parse");
  Helpers.check_raises_invalid "bytes_of_gib overflow" (fun () ->
      ignore (Units.bytes_of_gib 1e30));
  Helpers.check_raises_invalid "bytes_of_gib nan" (fun () -> ignore (Units.bytes_of_gib Float.nan));
  Helpers.check_raises_invalid "bytes_of_gib infinity" (fun () ->
      ignore (Units.bytes_of_gib Float.infinity));
  Helpers.check_raises_invalid "bytes_of_kib negative" (fun () ->
      ignore (Units.bytes_of_kib (-1.0)));
  Helpers.check_raises_invalid "bytes_of_mib overflow" (fun () ->
      ignore (Units.bytes_of_mib 1e18));
  Alcotest.(check int) "max_int boundary itself is rejected, below is fine" (4 * Units.gib)
    (Units.bytes_of_gib 4.0)

let test_parse_format_roundtrip =
  Helpers.qtest "format then parse is identity on whole KiB"
    QCheck2.Gen.(int_range 1 4096)
    (fun kib ->
      let bytes = kib * Units.kib in
      match Units.parse_bytes (Units.bytes_to_string bytes) with
      | Some parsed ->
          (* Formatting rounds to one decimal; allow that loss. *)
          Float.abs (float_of_int (parsed - bytes)) /. float_of_int bytes < 0.06
      | None -> false)

(* Ascii table / plot *)

let test_table_rendering () =
  let t =
    Gpp_util.Ascii_table.create ~title:"T"
      ~columns:[ ("a", Gpp_util.Ascii_table.Left); ("b", Gpp_util.Ascii_table.Right) ]
      ()
  in
  Gpp_util.Ascii_table.add_row t [ "x"; "1" ];
  Gpp_util.Ascii_table.add_separator t;
  Gpp_util.Ascii_table.add_row t [ "longer"; "22" ];
  let rendered = Gpp_util.Ascii_table.render t in
  Helpers.check_contains "has title" ~needle:"T" rendered;
  Helpers.check_contains "contains cell" ~needle:"longer" rendered;
  Helpers.check_contains "right-aligned number" ~needle:"22" rendered;
  Helpers.check_raises_invalid "bad row width" (fun () ->
      Gpp_util.Ascii_table.add_row t [ "only one" ])

let test_plot_rendering () =
  let series =
    Gpp_util.Ascii_plot.series ~label:"s" ~glyph:'*'
      [ (1.0, 1.0); (10.0, 100.0); (100.0, 10000.0) ]
  in
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log ~y_scale:Gpp_util.Ascii_plot.Log
      ~title:"quadratic" ~x_label:"x" ~y_label:"y" [ series ]
  in
  let rendered = Gpp_util.Ascii_plot.render plot in
  Alcotest.(check bool) "mentions glyph" true (String.contains rendered '*');
  Alcotest.(check bool) "mentions legend" true (String.length rendered > 50)

let test_plot_empty () =
  let plot =
    Gpp_util.Ascii_plot.create ~title:"empty" ~x_label:"x" ~y_label:"y"
      [ Gpp_util.Ascii_plot.series ~label:"none" ~glyph:'.' [] ]
  in
  Alcotest.(check bool) "renders something" true
    (String.length (Gpp_util.Ascii_plot.render plot) > 0)

let test_plot_drops_nonpositive_on_log () =
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log ~title:"log" ~x_label:"x"
      ~y_label:"y"
      [ Gpp_util.Ascii_plot.series ~label:"s" ~glyph:'o' [ (-1.0, 1.0); (0.0, 2.0); (10.0, 3.0) ] ]
  in
  (* Must not raise despite non-positive x values on a log axis. *)
  Alcotest.(check bool) "renders" true (String.length (Gpp_util.Ascii_plot.render plot) > 0)

let () =
  Alcotest.run "gpp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_differs;
          test_rng_float_range;
          test_rng_uniform_range;
          test_rng_int_bound;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "lognormal median" `Quick test_rng_lognormal_median;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_and_variance;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "error magnitude" `Quick test_error_magnitude;
          Alcotest.test_case "mean error magnitude" `Quick test_mean_error_magnitude;
          Alcotest.test_case "least squares exact" `Quick test_least_squares_exact;
          Alcotest.test_case "least squares errors" `Quick test_least_squares_errors;
          test_least_squares_recovers_line;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_unit_constants;
          Alcotest.test_case "formatting" `Quick test_unit_formatting;
          Alcotest.test_case "parsing" `Quick test_parse_bytes;
          Alcotest.test_case "overflow guards" `Quick test_bytes_overflow;
          test_parse_format_roundtrip;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "table" `Quick test_table_rendering;
          Alcotest.test_case "plot" `Quick test_plot_rendering;
          Alcotest.test_case "plot empty" `Quick test_plot_empty;
          Alcotest.test_case "plot log guards" `Quick test_plot_drops_nonpositive_on_log;
        ] );
    ]
