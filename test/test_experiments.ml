(* Tests for Gpp_experiments: the paper's tables and figures regenerate
   with the right structure and shape. *)

module Context = Gpp_experiments.Context
module Suite = Gpp_experiments.Suite

(* One context shared by all cases: building it runs the full pipeline
   over every Table I instance, which is the expensive part. *)
let ctx = lazy (Context.create ())

let test_context_instances () =
  let ctx = Lazy.force ctx in
  Alcotest.(check int) "ten instances" 10 (List.length (Context.instances ctx));
  Alcotest.(check (list string)) "apps" [ "cfd"; "hotspot"; "srad"; "stassuij" ] (Context.apps ctx);
  Alcotest.(check int) "cfd sizes" 3 (List.length (Context.reports_of_app ctx "cfd"));
  (* Lookup works; misses raise a descriptive error naming the pair,
     and the option variant returns None. *)
  ignore (Context.report ctx ~app:"srad" ~size:"2048 x 2048");
  Alcotest.(check bool)
    "find_report hit" true
    (Context.find_report ctx ~app:"srad" ~size:"2048 x 2048" <> None);
  Alcotest.(check bool)
    "find_report miss" true
    (Context.find_report ctx ~app:"srad" ~size:"1 x 1" = None);
  (match Context.report ctx ~app:"srad" ~size:"1 x 1" with
  | exception Invalid_argument msg ->
      Helpers.check_contains "names the missing pair" ~needle:{|"srad"/"1 x 1"|} msg;
      Helpers.check_contains "lists known keys" ~needle:"srad/2048 x 2048" msg
  | _ -> Alcotest.fail "expected Invalid_argument for a missing pair")

let test_fig2_points () =
  let pts = Gpp_experiments.Fig_transfer_time.points (Lazy.force ctx) in
  Alcotest.(check int) "30 sizes (1 B .. 512 MiB)" 30 (List.length pts);
  List.iter
    (fun (p : Gpp_experiments.Fig_transfer_time.point) ->
      Helpers.check_positive "pinned h2d" p.pinned_h2d;
      Helpers.check_positive "pageable d2h" p.pageable_d2h;
      Helpers.check_positive "prediction" p.predicted_h2d)
    pts

let test_fig3_crossover_near_2kb () =
  let ctx = Lazy.force ctx in
  match Gpp_experiments.Fig_pinned_speedup.crossover_h2d ctx with
  | Some bytes ->
      (* Paper: pinned overtakes pageable around 2 KB for h2d. *)
      Helpers.check_in_range "crossover" ~lo:512.0 ~hi:8192.0 (float_of_int bytes)
  | None -> Alcotest.fail "expected a pinned/pageable crossover"

let test_fig3_pinned_wins_large () =
  let pts = Gpp_experiments.Fig_pinned_speedup.points (Lazy.force ctx) in
  let large =
    List.filter (fun (p : Gpp_experiments.Fig_pinned_speedup.point) -> p.bytes >= Gpp_util.Units.mib) pts
  in
  List.iter
    (fun (p : Gpp_experiments.Fig_pinned_speedup.point) ->
      Alcotest.(check bool) "pinned wins large h2d" true (p.h2d_speedup > 1.0);
      Alcotest.(check bool) "pinned wins large d2h" true (p.d2h_speedup > 1.0))
    large

let test_fig4_error_shape () =
  let s = Gpp_experiments.Fig_model_error.summary (Lazy.force ctx) in
  (* Same order of magnitude as the paper: means ~2%/0.8%, max 6.4%/3.3%. *)
  Helpers.check_in_range "mean h2d" ~lo:0.0 ~hi:4.0 s.Gpp_experiments.Fig_model_error.mean_h2d;
  Helpers.check_in_range "mean d2h" ~lo:0.0 ~hi:2.0 s.Gpp_experiments.Fig_model_error.mean_d2h;
  Helpers.check_in_range "max h2d" ~lo:0.0 ~hi:12.0 s.Gpp_experiments.Fig_model_error.max_h2d;
  Helpers.check_in_range "max d2h" ~lo:0.0 ~hi:7.0 s.Gpp_experiments.Fig_model_error.max_d2h;
  (* Essentially zero above 1 MiB. *)
  Helpers.check_in_range "large h2d" ~lo:0.0 ~hi:1.0
    s.Gpp_experiments.Fig_model_error.mean_large_h2d;
  (* And errors concentrate at small sizes. *)
  Alcotest.(check bool) "small-size error dominates" true
    (s.Gpp_experiments.Fig_model_error.mean_h2d
    > s.Gpp_experiments.Fig_model_error.mean_large_h2d)

let test_fig5_transfer_errors () =
  let ctx = Lazy.force ctx in
  let pts = Gpp_experiments.Fig_app_transfers.points ctx in
  Alcotest.(check bool) "has many transfers" true (List.length pts >= 20);
  let err = Gpp_experiments.Fig_app_transfers.overall_error ctx in
  (* Paper: 7.6% across all application transfers. *)
  Helpers.check_in_range "overall transfer error" ~lo:0.5 ~hi:20.0 err

let test_table1_shape () =
  let rows = Gpp_experiments.Table_measured.rows (Lazy.force ctx) in
  Alcotest.(check int) "ten rows" 10 (List.length rows);
  (* The paper's headline: transfer exceeds kernel time everywhere
     (except possibly the smallest HotSpot grid). *)
  List.iter
    (fun (r : Gpp_experiments.Table_measured.row) ->
      if not (r.app = "hotspot" && r.size = "64 x 64") then
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s transfer dominates" r.app r.size)
          true
          (r.transfer_ms > r.kernel_ms))
    rows;
  (* Table I magnitudes: SRAD 4096 x 4096 input/output are 64 MiB each. *)
  let srad_large =
    List.find (fun (r : Gpp_experiments.Table_measured.row) -> r.app = "srad" && r.size = "4096 x 4096") rows
  in
  Helpers.close_rel ~tolerance:0.01 "srad input" 64.0 srad_large.input_mib;
  Helpers.close_rel ~tolerance:0.01 "srad output" 64.0 srad_large.output_mib;
  (* Stassuij input ~8.3 MiB, output ~4.1 MiB (paper: 8.5 / 4.1). *)
  let st = List.find (fun (r : Gpp_experiments.Table_measured.row) -> r.app = "stassuij") rows in
  Helpers.check_in_range "stassuij input" ~lo:8.0 ~hi:8.7 st.input_mib;
  Helpers.check_in_range "stassuij output" ~lo:4.0 ~hi:4.3 st.output_mib

let test_table2_orderings () =
  let s = Gpp_experiments.Table_speedup_error.summary (Lazy.force ctx) in
  let avg = s.Gpp_experiments.Table_speedup_error.average_applications in
  (* The paper's central claim, as an ordering: kernel-only error is
     catastrophic, transfer-only is better, the combination is small. *)
  Alcotest.(check bool) "kernel-only worst" true
    (avg.Gpp_experiments.Table_speedup_error.kernel_only
    > avg.Gpp_experiments.Table_speedup_error.transfer_only);
  Alcotest.(check bool) "combination best" true
    (avg.Gpp_experiments.Table_speedup_error.transfer_only
    > avg.Gpp_experiments.Table_speedup_error.with_transfer);
  (* Magnitudes: hundreds of percent vs tens vs single digits-ish. *)
  Helpers.check_in_range "kernel-only" ~lo:100.0 ~hi:1500.0
    avg.Gpp_experiments.Table_speedup_error.kernel_only;
  Helpers.check_in_range "with transfer" ~lo:0.0 ~hi:30.0
    avg.Gpp_experiments.Table_speedup_error.with_transfer;
  Alcotest.(check int) "app averages" 4
    (List.length s.Gpp_experiments.Table_speedup_error.app_averages)

let test_stassuij_decision_flip () =
  let ctx = Lazy.force ctx in
  let report = Context.report ctx ~app:"stassuij" ~size:"132 x 2048" in
  let sp = report.Gpp_core.Grophecy.speedups in
  Alcotest.(check bool) "kernel-only predicts a win" true
    (sp.Gpp_core.Evaluation.kernel_only > 1.0);
  Alcotest.(check bool) "measured is a loss" true (sp.Gpp_core.Evaluation.measured < 1.0);
  Alcotest.(check bool) "transfer-aware predicts the loss" true
    (sp.Gpp_core.Evaluation.with_transfer < 1.0)

let test_iteration_figures () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun (app, size) ->
      let pts =
        Gpp_experiments.Fig_iterations.points ctx ~app ~size ~iterations:[ 1; 10; 100 ]
      in
      (* Measured speedup grows with iterations; kernel-only stays flat
         above it; the two predictions converge. *)
      let at n =
        List.find (fun (p : Gpp_experiments.Fig_iterations.point) -> p.iterations = n) pts
      in
      Alcotest.(check bool) "grows" true ((at 100).measured > (at 1).measured);
      let gap n = Float.abs ((at n).kernel_only -. (at n).with_transfer) in
      Alcotest.(check bool) "predictions converge" true (gap 100 < gap 1);
      let crossover = Gpp_experiments.Fig_iterations.twice_as_accurate_until ctx ~app ~size in
      Alcotest.(check bool) "transfer-aware wins early iterations" true (crossover >= 1))
    [ ("cfd", "233K"); ("hotspot", "1024 x 1024"); ("srad", "4096 x 4096") ]

let test_cfd_kernel_underpredicted () =
  (* Paper Section V-B.1: CFD's kernel time is under-predicted (by ~32%)
     because of its irregular gathers. *)
  let ctx = Lazy.force ctx in
  List.iter
    (fun size ->
      let report = Context.report ctx ~app:"cfd" ~size in
      Alcotest.(check bool)
        (Printf.sprintf "cfd %s underpredicts" size)
        true
        (report.Gpp_core.Grophecy.projection.Gpp_core.Projection.kernel_time
        < report.Gpp_core.Grophecy.measurement.Gpp_core.Measurement.kernel_time))
    [ "97K"; "193K"; "233K" ]

let test_all_experiments_render () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun (e : Suite.entry) ->
      let out = e.Suite.run ctx in
      Alcotest.(check string) "id stable" e.Suite.id out.Gpp_experiments.Output.id;
      Alcotest.(check bool)
        (Printf.sprintf "%s non-empty" e.Suite.id)
        true
        (String.length out.Gpp_experiments.Output.body > 100))
    Suite.all

let test_csv_escaping () =
  Alcotest.(check string) "plain" "a,b\n1,2\n"
    (Gpp_experiments.Export.csv_of_rows ~header:[ "a"; "b" ] [ [ "1"; "2" ] ]);
  Alcotest.(check string) "quoted comma" "h\n\"x,y\"\n"
    (Gpp_experiments.Export.csv_of_rows ~header:[ "h" ] [ [ "x,y" ] ]);
  Alcotest.(check string) "doubled quote" "h\n\"say \"\"hi\"\"\"\n"
    (Gpp_experiments.Export.csv_of_rows ~header:[ "h" ] [ [ "say \"hi\"" ] ])

let test_csv_exports_parse () =
  let ctx = Lazy.force ctx in
  let check_csv name csv expected_cols =
    let lines = String.split_on_char '\n' (String.trim csv) in
    match lines with
    | [] -> Alcotest.failf "%s: empty" name
    | header :: rows ->
        Alcotest.(check int)
          (name ^ " column count")
          expected_cols
          (List.length (String.split_on_char ',' header));
        Alcotest.(check bool) (name ^ " has rows") true (rows <> []);
        List.iter
          (fun row ->
            Alcotest.(check int)
              (name ^ " row width")
              expected_cols
              (List.length (String.split_on_char ',' row)))
          rows
  in
  check_csv "fig2" (Gpp_experiments.Export.fig2_csv ctx) 7;
  check_csv "fig3" (Gpp_experiments.Export.fig3_csv ctx) 3;
  check_csv "fig4" (Gpp_experiments.Export.fig4_csv ctx) 3;
  check_csv "fig5" (Gpp_experiments.Export.fig5_csv ctx) 7;
  check_csv "fig6" (Gpp_experiments.Export.fig6_csv ctx) 4;
  check_csv "table1" (Gpp_experiments.Export.table1_csv ctx) 7;
  check_csv "table2" (Gpp_experiments.Export.table2_csv ctx) 5;
  check_csv "speedup" (Gpp_experiments.Export.speedup_csv ctx ~app:"srad") 4;
  check_csv "iterations"
    (Gpp_experiments.Export.iterations_csv ctx ~app:"srad" ~size:"4096 x 4096")
    4

let test_csv_write_all () =
  let ctx = Lazy.force ctx in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "gpp_csv_test" in
  let written = Gpp_experiments.Export.write_all ctx ~dir in
  Alcotest.(check int) "thirteen files" 13 (List.length written);
  List.iter
    (fun (_, path) ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) (path ^ " non-empty") true (len > 0))
    written

let test_suite_registry () =
  Alcotest.(check int) "13 paper experiments" 13 (List.length Suite.paper);
  Alcotest.(check int) "5 ablations" 5 (List.length Suite.ablations);
  Alcotest.(check int) "5 extensions" 5 (List.length Suite.extensions);
  Alcotest.(check bool) "find fig7" true (Suite.find "fig7" <> None);
  Alcotest.(check bool) "find miss" true (Suite.find "fig99" = None);
  Alcotest.(check int) "ids" 23 (List.length (Suite.ids ()))

let () =
  Alcotest.run "gpp_experiments"
    [
      ( "context",
        [ Alcotest.test_case "instances" `Quick test_context_instances ] );
      ( "figures",
        [
          Alcotest.test_case "fig2 points" `Quick test_fig2_points;
          Alcotest.test_case "fig3 crossover" `Quick test_fig3_crossover_near_2kb;
          Alcotest.test_case "fig3 pinned wins large" `Quick test_fig3_pinned_wins_large;
          Alcotest.test_case "fig4 error shape" `Quick test_fig4_error_shape;
          Alcotest.test_case "fig5 transfer errors" `Quick test_fig5_transfer_errors;
          Alcotest.test_case "iteration figures" `Quick test_iteration_figures;
          Alcotest.test_case "cfd underprediction" `Quick test_cfd_kernel_underpredicted;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table1 shape" `Quick test_table1_shape;
          Alcotest.test_case "table2 orderings" `Quick test_table2_orderings;
          Alcotest.test_case "stassuij flip" `Quick test_stassuij_decision_flip;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "exports parse" `Quick test_csv_exports_parse;
          Alcotest.test_case "write_all" `Quick test_csv_write_all;
        ] );
      ( "suite",
        [
          Alcotest.test_case "all render" `Slow test_all_experiments_render;
          Alcotest.test_case "registry" `Quick test_suite_registry;
        ] );
    ]
