(* Tests for Gpp_engine: sexp parsing, layered scenario configuration,
   structured errors and their exit-code mapping, workload resolution,
   the staged pipeline (including bit-parity with the core facade), and
   the batch runner. *)

module Engine = Gpp_engine
module Config = Gpp_engine.Config
module Error = Gpp_engine.Error
module Sexp = Gpp_engine.Sexp
module Grophecy = Gpp_core.Grophecy

let write_temp ~suffix content =
  let path = Filename.temp_file "gpp-engine-test" suffix in
  Out_channel.with_open_text path (fun oc -> output_string oc content);
  path

let getenv_of assoc name = List.assoc_opt name assoc

(* --- sexp ------------------------------------------------------------ *)

let test_sexp_parse () =
  (match Sexp.parse_string "(a (b c) \"d e\")" with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ]; Sexp.Atom "d e" ])
    -> ()
  | Ok s -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string s)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Comments and blank lines are skipped. *)
  (match Sexp.parse_string "; header\n(x 1) ; trailing\n" with
  | Ok (Sexp.List [ Sexp.Atom "x"; Sexp.Atom "1" ]) -> ()
  | Ok s -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string s)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Errors carry a line number. *)
  match Sexp.parse_string "(a\n(b" with
  | Ok s -> Alcotest.failf "expected an error, got %s" (Sexp.to_string s)
  | Error e -> Helpers.check_contains "line number" ~needle:"line" e

let test_sexp_roundtrip () =
  let s =
    Sexp.List [ Sexp.Atom "k"; Sexp.List [ Sexp.Atom "with space"; Sexp.Atom "plain" ] ]
  in
  match Sexp.parse_string (Sexp.to_string s) with
  | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
  | Error e -> Alcotest.failf "reparse failed: %s" e

(* --- errors ---------------------------------------------------------- *)

let test_error_exit_codes () =
  let usage_class =
    [ Error.parse "p"; Error.config "c"; Error.usage "u"; Error.parse ~source:"k" "p" ]
  in
  List.iter (fun e -> Alcotest.(check int) (Error.category e) 2 (Error.exit_code e)) usage_class;
  let failure_class =
    [
      Error.projection "x";
      Error.projection ~kernel:"k" "x";
      Error.simulation "x";
      Error.calibration "x";
      Error.cache "x";
      Error.io "x";
      Error.Lint { program = "p"; errors = 1; warnings = 0 };
    ]
  in
  List.iter (fun e -> Alcotest.(check int) (Error.category e) 1 (Error.exit_code e)) failure_class

let test_error_message_bare () =
  (* The CLI prints [message] verbatim, so payloads must carry the full
     text with no category prefix. *)
  Alcotest.(check string) "bare" "it broke" (Error.message (Error.projection "it broke"));
  Alcotest.(check string)
    "parse bare" "unknown workload" (Error.message (Error.parse ~source:"k" "unknown workload"))

(* --- config layering ------------------------------------------------- *)

let test_config_defaults_mirror_init () =
  let c = Config.default in
  Alcotest.(check string) "machine" "argonne"
    (if c.Config.machine == Gpp_arch.Machine.argonne_node then "argonne" else "other");
  Alcotest.(check int64) "seed" 0x1B0A_2013_6CA1_55AAL c.Config.seed;
  Helpers.close "outlier" 0.05 c.Config.outlier_probability;
  Alcotest.(check bool) "cache on" true c.Config.cache_enabled;
  Alcotest.(check bool) "lint off" false c.Config.lint;
  (* The per-call projection of a default scenario is default_params. *)
  Alcotest.(check bool) "core params" true (Config.core_params c = Grophecy.default_params)

let test_config_file_layer () =
  let path =
    write_temp ~suffix:".sexp"
      "; scenario\n\
       ((machine gt200)\n\
      \ (seed 99)\n\
      \ (runs 5)\n\
      \ (sim ((noise-sigma 0.25)))\n\
      \ (space ((block-sizes (64 128)) (allow-tiling false)))\n\
      \ (cache ((enabled false) (dir /tmp/gpp-test-cache))))"
  in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let c = Helpers.check_core "apply_file" (Config.apply_file Config.default ~path) in
  Alcotest.(check bool) "machine" true (c.Config.machine == Gpp_arch.Machine.gt200_node);
  Alcotest.(check int64) "seed" 99L c.Config.seed;
  Alcotest.(check (option int)) "runs" (Some 5) c.Config.runs;
  (match c.Config.sim with
  | Some sim ->
      Helpers.close "noise sigma" 0.25 sim.Gpp_gpusim.Gpu_sim.noise_sigma;
      (* Partial groups keep the library defaults for unnamed fields. *)
      Helpers.close "streaming untouched"
        Gpp_gpusim.Gpu_sim.default_config.Gpp_gpusim.Gpu_sim.streaming_efficiency
        sim.Gpp_gpusim.Gpu_sim.streaming_efficiency
  | None -> Alcotest.fail "sim group not applied");
  (match c.Config.space with
  | Some space ->
      Alcotest.(check (list int)) "block sizes" [ 64; 128 ] space.Gpp_transform.Explore.block_sizes;
      Alcotest.(check bool) "tiling" false space.Gpp_transform.Explore.allow_tiling
  | None -> Alcotest.fail "space group not applied");
  Alcotest.(check bool) "cache disabled" false c.Config.cache_enabled;
  Alcotest.(check (option string)) "cache dir" (Some "/tmp/gpp-test-cache") c.Config.cache_dir

let expect_config_error what = function
  | Ok (_ : Config.t) -> Alcotest.failf "%s: expected a config error" what
  | Error (Error.Config { source; message }) ->
      Alcotest.(check bool) (what ^ ": source set") true (source <> None);
      message
  | Error e -> Alcotest.failf "%s: expected Config error, got %s" what (Error.category e)

let test_config_file_bad_sexp () =
  let path = write_temp ~suffix:".sexp" "((machine argonne" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let msg = expect_config_error "bad sexp" (Config.apply_file Config.default ~path) in
  Helpers.check_contains "names the file" ~needle:(Filename.basename path) msg

let test_config_file_unknown_key () =
  let path = write_temp ~suffix:".sexp" "((machina argonne))" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let msg = expect_config_error "unknown key" (Config.apply_file Config.default ~path) in
  Helpers.check_contains "names the key" ~needle:{|"machina"|} msg;
  let path2 = write_temp ~suffix:".sexp" "((sim ((noise 1))))" in
  Fun.protect ~finally:(fun () -> Sys.remove path2) @@ fun () ->
  let msg2 =
    expect_config_error "unknown group key" (Config.apply_file Config.default ~path:path2)
  in
  Helpers.check_contains "names the group" ~needle:"sim" msg2

let test_config_env_layer () =
  let env =
    getenv_of
      [ ("GPP_MACHINE", "modern"); ("GPP_SEED", "7"); ("GPP_NO_CACHE", "1"); ("GPP_RUNS", "3") ]
  in
  let c = Helpers.check_core "apply_env" (Config.apply_env ~getenv:env Config.default) in
  Alcotest.(check bool) "machine" true (c.Config.machine == Gpp_arch.Machine.modern_node);
  Alcotest.(check int64) "seed" 7L c.Config.seed;
  Alcotest.(check bool) "no cache" false c.Config.cache_enabled;
  Alcotest.(check (option int)) "runs" (Some 3) c.Config.runs;
  (* Malformed values name the variable. *)
  let bad = Config.apply_env ~getenv:(getenv_of [ ("GPP_SEED", "banana") ]) Config.default in
  let msg = expect_config_error "bad env" bad in
  Helpers.check_contains "names the variable" ~needle:"GPP_SEED" msg

let test_config_precedence () =
  (* defaults < file < env < flags, per field. *)
  let path = write_temp ~suffix:".sexp" "((machine gt200) (seed 1) (runs 2))" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let getenv = getenv_of [ ("GPP_SEED", "22"); ("GPP_ITERATIONS", "4") ] in
  let overrides = { Config.no_overrides with Config.o_seed = Some 333L } in
  let c = Helpers.check_core "resolve" (Config.resolve ~getenv ~file:path ~overrides ()) in
  (* file beats defaults where neither env nor flags speak *)
  Alcotest.(check bool) "machine from file" true (c.Config.machine == Gpp_arch.Machine.gt200_node);
  Alcotest.(check (option int)) "runs from file" (Some 2) c.Config.runs;
  (* env beats file *)
  Alcotest.(check (option int)) "iterations from env" (Some 4) c.Config.iterations;
  (* flags beat env *)
  Alcotest.(check int64) "seed from flags" 333L c.Config.seed

let test_config_transfer_plan_layers () =
  let module Analyzer = Gpp_dataflow.Analyzer in
  let plan_of (c : Config.t) =
    match c.Config.policy with
    | Some p -> p.Analyzer.plan
    | None -> Alcotest.fail "policy should be set"
  in
  (* Environment layer. *)
  let c =
    Helpers.check_core "apply_env"
      (Config.apply_env ~getenv:(getenv_of [ ("GPP_TRANSFER_PLAN", "minimal") ]) Config.default)
  in
  Alcotest.(check bool) "env sets minimal" true (plan_of c = Analyzer.Minimal);
  (* Malformed values name the variable. *)
  let bad =
    Config.apply_env ~getenv:(getenv_of [ ("GPP_TRANSFER_PLAN", "bogus") ]) Config.default
  in
  Helpers.check_contains "names the variable" ~needle:"GPP_TRANSFER_PLAN"
    (expect_config_error "bad plan" bad);
  (* Config-file layer: the nested policy group. *)
  let path = write_temp ~suffix:".sexp" "((policy ((plan minimal))))" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let from_file = Helpers.check_core "apply_file" (Config.apply_file Config.default ~path) in
  Alcotest.(check bool) "file sets minimal" true (plan_of from_file = Analyzer.Minimal);
  (* The --transfer-plan flag beats the env. *)
  let overrides =
    { Config.no_overrides with Config.o_transfer_plan = Some Analyzer.Conservative }
  in
  let resolved =
    Helpers.check_core "resolve"
      (Config.resolve
         ~getenv:(getenv_of [ ("GPP_TRANSFER_PLAN", "minimal") ])
         ~overrides ())
  in
  Alcotest.(check bool) "flag beats env" true (plan_of resolved = Analyzer.Conservative)

(* --- workload resolution --------------------------------------------- *)

let test_workload_resolve () =
  (match Engine.Workload.resolve "vecadd/16M" with
  | Ok inst -> Alcotest.(check string) "app" "vecadd" inst.Gpp_workloads.Registry.app
  | Error e -> Alcotest.failf "registry key failed: %s" (Error.to_string e));
  (match Engine.Workload.resolve "no-such-workload/1" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error (Error.Parse { source; message }) ->
      Alcotest.(check (option string)) "source" (Some "no-such-workload/1") source;
      Helpers.check_contains "lists known keys" ~needle:"vecadd/16M" message;
      Helpers.check_contains "mentions .skel" ~needle:".skel" message
  | Error e -> Alcotest.failf "expected Parse, got %s" (Error.category e));
  (* A .skel file path resolves through the parser. *)
  let program = Gpp_workloads.Vecadd.program ~n:4096 in
  let path = write_temp ~suffix:".skel" (Gpp_skeleton.Printer.to_skel program) in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  match Engine.Workload.resolve path with
  | Ok inst ->
      Alcotest.(check string) "size marker" "file" inst.Gpp_workloads.Registry.size;
      Alcotest.(check string)
        "program name" program.Gpp_skeleton.Program.name
        (inst.Gpp_workloads.Registry.program 1).Gpp_skeleton.Program.name
  | Error e -> Alcotest.failf "skel path failed: %s" (Error.to_string e)

(* --- stages and pipeline --------------------------------------------- *)

let test_stage_metadata () =
  Alcotest.(check int) "eight stages" 8 (List.length Engine.Stage.all);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Engine.Stage.name id ^ " roundtrip")
        true
        (Engine.Stage.of_name (Engine.Stage.name id) = Some id))
    Engine.Stage.all;
  Alcotest.(check (option string)) "unknown" None (Option.map Engine.Stage.name (Engine.Stage.of_name "nope"));
  let sorted = List.sort Engine.Stage.compare Engine.Stage.all in
  Alcotest.(check bool) "all is pipeline order" true (sorted = Engine.Stage.all);
  Alcotest.(check int) "pipeline stage list agrees" 8 (List.length Engine.Pipeline.stages);
  List.iteri
    (fun i (st : Engine.Pipeline.stage) ->
      Alcotest.(check int) "stage order" i (Engine.Stage.index st.Engine.Pipeline.id))
    Engine.Pipeline.stages

(* The tentpole's safety net: the staged pipeline must be bit-identical
   to the one-call facade it replaced. *)
let test_pipeline_matches_facade () =
  let program = Gpp_workloads.Vecadd.program ~n:100_000 in
  let path = write_temp ~suffix:".skel" (Gpp_skeleton.Printer.to_skel program) in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let config = { Config.default with Config.seed = 2024L } in
  (* Two fresh sessions with the same seed: the application link is
     stateful, so each path needs its own. *)
  let facade_session = Grophecy.init ~seed:config.Config.seed config.Config.machine in
  let facade_report =
    Helpers.check_core "facade" (Grophecy.analyze facade_session program)
  in
  let engine_session = Engine.Pipeline.session_of config in
  let state =
    Helpers.check_core "pipeline"
      (Engine.Pipeline.run ~session:engine_session config ~workload:path)
  in
  let engine_report = Engine.Pipeline.report_exn state in
  Alcotest.(check string)
    "reports render identically"
    (Format.asprintf "%a" Grophecy.pp_report facade_report)
    (Format.asprintf "%a" Grophecy.pp_report engine_report);
  Alcotest.(check bool)
    "bitwise kernel time" true
    (Int64.bits_of_float facade_report.Grophecy.measurement.Gpp_core.Measurement.kernel_time
    = Int64.bits_of_float engine_report.Grophecy.measurement.Gpp_core.Measurement.kernel_time);
  (* Stage bookkeeping: everything ran except Lint (config.lint=false). *)
  let ran = Engine.Pipeline.completed state in
  Alcotest.(check bool) "lint skipped" true (not (List.mem Engine.Stage.Lint ran));
  Alcotest.(check int) "seven stages ran" 7 (List.length ran)

let test_pipeline_partial_run () =
  let config = Config.default in
  let session = Engine.Pipeline.session_of config in
  let state =
    Helpers.check_core "through analyze"
      (Engine.Pipeline.run ~through:Engine.Stage.Analyze ~session config ~workload:"vecadd/16M")
  in
  Alcotest.(check bool) "plan present" true (state.Engine.Pipeline.plan <> None);
  Alcotest.(check bool) "no kernels yet" true (state.Engine.Pipeline.kernels = None);
  Alcotest.(check bool) "no report yet" true (state.Engine.Pipeline.report = None);
  (* Parse failures surface as structured parse errors. *)
  match Engine.Pipeline.run ~session config ~workload:"bogus/size" with
  | Ok _ -> Alcotest.fail "expected parse failure"
  | Error e ->
      Alcotest.(check string) "category" "parse" (Error.category e);
      Alcotest.(check int) "exit code" 2 (Error.exit_code e)

(* --- batch ----------------------------------------------------------- *)

let test_batch_matrix () =
  let config = Config.default in
  let batch =
    Engine.Batch.run ~iterations:[ None; Some 4 ] config ~workloads:[ "vecadd/16M"; "nope/1" ]
  in
  Alcotest.(check int) "four cells" 4 (List.length batch.Engine.Batch.cells);
  Alcotest.(check int) "two ok" 2 (List.length (Engine.Batch.succeeded batch));
  Alcotest.(check int) "two failed" 2 (List.length (Engine.Batch.failed batch));
  Alcotest.(check bool)
    "session exposed" true
    (Engine.Batch.session batch ~machine:config.Config.machine.Gpp_arch.Machine.name <> None);
  let tsv = Engine.Batch.to_tsv batch in
  let lines = String.split_on_char '\n' (String.trim tsv) in
  Alcotest.(check int) "header + 4 rows" 5 (List.length lines);
  Alcotest.(check string) "header" Engine.Batch.tsv_header (List.hd lines);
  Alcotest.(check int)
    "error rows marked" 2
    (List.length (List.filter (fun l -> Helpers.contains_substring ~needle:"error:parse" l) lines))

(* Batch over the paper instances is exactly the experiment context:
   same sessions, same reports, in the same order. *)
let test_batch_matches_context () =
  let ctx = Gpp_experiments.Context.create () in
  let batch =
    Engine.Batch.run Config.default
      ~workloads:
        (List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.paper_instances)
  in
  Alcotest.(check int) "no failures" 0 (List.length (Engine.Batch.failed batch));
  List.iter2
    (fun ((inst : Gpp_workloads.Registry.instance), (ctx_report : Grophecy.report))
         ((cell : Engine.Batch.cell), batch_report) ->
      Alcotest.(check string)
        "same order" (Gpp_workloads.Registry.key inst) cell.Engine.Batch.workload;
      Alcotest.(check string)
        (Gpp_workloads.Registry.key inst ^ " renders identically")
        (Format.asprintf "%a" Grophecy.pp_report ctx_report)
        (Format.asprintf "%a" Grophecy.pp_report batch_report))
    (Gpp_experiments.Context.instances ctx)
    (Engine.Batch.succeeded batch)

let () =
  Alcotest.run "engine"
    [
      ( "sexp",
        [
          Alcotest.test_case "parse" `Quick test_sexp_parse;
          Alcotest.test_case "roundtrip" `Quick test_sexp_roundtrip;
        ] );
      ( "errors",
        [
          Alcotest.test_case "exit codes" `Quick test_error_exit_codes;
          Alcotest.test_case "bare messages" `Quick test_error_message_bare;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults mirror init" `Quick test_config_defaults_mirror_init;
          Alcotest.test_case "file layer" `Quick test_config_file_layer;
          Alcotest.test_case "bad sexp" `Quick test_config_file_bad_sexp;
          Alcotest.test_case "unknown keys" `Quick test_config_file_unknown_key;
          Alcotest.test_case "env layer" `Quick test_config_env_layer;
          Alcotest.test_case "precedence" `Quick test_config_precedence;
          Alcotest.test_case "transfer-plan layers" `Quick test_config_transfer_plan_layers;
        ] );
      ( "workload",
        [ Alcotest.test_case "resolve" `Quick test_workload_resolve ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage metadata" `Quick test_stage_metadata;
          Alcotest.test_case "matches facade" `Quick test_pipeline_matches_facade;
          Alcotest.test_case "partial run" `Quick test_pipeline_partial_run;
        ] );
      ( "batch",
        [
          Alcotest.test_case "matrix" `Quick test_batch_matrix;
          Alcotest.test_case "matches context" `Slow test_batch_matches_context;
        ] );
    ]
