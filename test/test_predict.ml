(* Predictor-stack tests: the ridge solver's algebra (qcheck properties:
   exact recovery at lambda=0, monotone norm shrinkage in lambda), the
   feature extractor's bit-determinism across worker domains, predictor
   parsing with nearest-name suggestions, the Scaled stage's
   same-machine identity guarantee (the byte-identity keystone), and
   the learned correction's fit/apply/clamp behaviour. *)

module Predictor = Gpp_predict.Predictor
module Ridge = Gpp_predict.Ridge
module Features = Gpp_predict.Features
module Correction = Gpp_predict.Correction
module Pricing = Gpp_predict.Pricing
module Machine = Gpp_arch.Machine
module Link = Gpp_pcie.Link
module Model = Gpp_pcie.Model
module Grophecy = Gpp_core.Grophecy
module Projection = Gpp_core.Projection
module Analyzer = Gpp_dataflow.Analyzer

(* --- ridge solver (qcheck) ------------------------------------------- *)

let dot w x = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i wi -> wi *. x.(i)) w)

(* Design matrices that always include the d basis rows, so X'X is
   I + E'E: symmetric positive definite and well conditioned, and the
   lambda=0 system has the planted weights as its unique solution. *)
let ridge_case_gen =
  QCheck2.Gen.(
    int_range 2 5 >>= fun d ->
    int_range 2 6 >>= fun extra ->
    list_repeat d (float_range (-2.0) 2.0) >>= fun w ->
    list_repeat extra (list_repeat d (float_range (-1.0) 1.0)) >>= fun rows ->
    return (d, Array.of_list w, List.map Array.of_list rows))

let case_matrix (d, _w, rows) =
  List.init d (fun i -> Array.init d (fun j -> if i = j then 1.0 else 0.0)) @ rows

let prop_ridge_recovers_planted_weights =
  Helpers.qtest ~count:200 "ridge: lambda=0 recovers planted weights"
    ridge_case_gen
    (fun ((_, w, _) as case) ->
      let xs = case_matrix case in
      let ys = List.map (dot w) xs in
      let fitted = Ridge.fit ~lambda:0.0 ~xs ~ys () in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) fitted w)

let prop_ridge_shrinks_norm =
  Helpers.qtest ~count:200 "ridge: larger lambda never grows the weight norm"
    QCheck2.Gen.(pair ridge_case_gen (pair (float_range 0.0 2.0) (float_range 0.0 8.0)))
    (fun (((_, w, _) as case), (l1, l2)) ->
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      let xs = case_matrix case in
      let ys = List.map (dot w) xs in
      let n l = Ridge.norm (Ridge.fit ~lambda:l ~xs ~ys ()) in
      n hi <= n lo +. 1e-9)

let test_ridge_rejects_singular () =
  (* Two identical equations in two unknowns: no pivot at lambda=0. *)
  match Ridge.solve [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] [| 1.0; 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a singular system"

(* --- feature extraction ---------------------------------------------- *)

let machine = Machine.argonne_node

let feature_inputs =
  lazy
    (let program = Gpp_workloads.Srad.program ~iterations:1 ~n:256 () in
     let kernels = Helpers.check_core "explore" (Projection.explore ~machine program) in
     let chars =
       List.map
         (fun (kp : Projection.kernel_projection) ->
           kp.Projection.candidate.Gpp_transform.Explore.characteristics)
         kernels
     in
     (program, Analyzer.analyze program, chars))

let extract_features () =
  let program, plan, chars = Lazy.force feature_inputs in
  Features.extract ~source:machine ~target:machine ~program ~plan ~kernels:chars

let test_feature_shape () =
  let v = extract_features () in
  Alcotest.(check int) "dim matches names" Features.dim (Array.length v);
  Alcotest.(check int) "names list length" Features.dim (List.length Features.names);
  Alcotest.(check (float 0.0)) "bias" 1.0 v.(0)

(* The Learned stage trains on worker domains in batch runs, so the
   extractor must be bit-deterministic whatever domain it runs on. *)
let test_feature_determinism_across_jobs () =
  let reference = extract_features () in
  List.iter
    (fun jobs ->
      let n = 16 in
      let results = Array.make n [||] in
      Gpp_engine.Pool.run ~jobs n (fun i -> results.(i) <- extract_features ());
      Array.iteri
        (fun i r ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d sample=%d dim" jobs i)
            (Array.length reference) (Array.length r);
          Array.iteri
            (fun j v ->
              if Int64.bits_of_float v <> Int64.bits_of_float reference.(j) then
                Alcotest.failf "jobs=%d sample=%d: feature %d differs bitwise" jobs i j)
            r)
        results)
    [ 1; 4 ]

(* --- predictor parsing ----------------------------------------------- *)

let test_predictor_parse () =
  let p = Helpers.check_ok "scaled,learned" (Predictor.of_string "scaled,learned") in
  Alcotest.(check string) "name" "scaled,learned" (Predictor.name p);
  Alcotest.(check bool) "has scaled" true (Predictor.has_scaled p);
  Alcotest.(check bool) "has learned" true (Predictor.has_learned p);
  let a = Helpers.check_ok "ANALYTIC" (Predictor.of_string " ANALYTIC ") in
  Alcotest.(check bool) "case/space-insensitive analytic" true
    (Predictor.equal a Predictor.analytic)

let test_predictor_parse_errors () =
  let dup = Helpers.check_error "duplicate" (Predictor.of_string "scaled,scaled") in
  Helpers.check_contains "duplicate message" ~needle:"duplicate" dup;
  let comp = Helpers.check_error "composed analytic" (Predictor.of_string "analytic,scaled") in
  Helpers.check_contains "composition message" ~needle:"identity base" comp;
  let unk = Helpers.check_error "unknown" (Predictor.of_string "sclaed") in
  Helpers.check_contains "suggestion" ~needle:{|did you mean "scaled"|} unk

let test_levenshtein () =
  Alcotest.(check int) "kitten/sitting" 3 (Gpp_util.Levenshtein.distance "kitten" "sitting");
  Alcotest.(check int) "identity" 0 (Gpp_util.Levenshtein.distance "abc" "abc");
  Alcotest.(check (option string))
    "nearest" (Some "scaled")
    (Gpp_util.Levenshtein.nearest ~candidates:[ "analytic"; "scaled"; "learned" ] "scald");
  Alcotest.(check (option string))
    "empty candidates" None
    (Gpp_util.Levenshtein.nearest ~candidates:[] "x")

(* --- pricing --------------------------------------------------------- *)

let catalog_machine id =
  match List.find_opt (fun (m : Machine.t) -> m.Machine.id = id) Machine.catalog with
  | Some m -> m
  | None -> Alcotest.failf "machine %s not in catalog" id

(* The byte-identity keystone: with source = target the Scaled stage
   must hand back the calibrated models *physically* unchanged, so the
   default pipeline cannot drift by even one ulp. *)
let test_scaled_same_machine_identity () =
  let s = Grophecy.init machine in
  let scaled = Helpers.check_ok "scaled" (Predictor.of_string "scaled") in
  let p =
    Pricing.make ~predictor:scaled ~source:machine ~target:machine ~h2d:s.Grophecy.h2d
      ~d2h:s.Grophecy.d2h ()
  in
  Alcotest.(check bool) "h2d physically unchanged" true (p.Pricing.h2d == s.Grophecy.h2d);
  Alcotest.(check bool) "d2h physically unchanged" true (p.Pricing.d2h == s.Grophecy.d2h);
  Alcotest.(check bool) "no correction" true (p.Pricing.correction = None)

let test_analytic_cross_machine_identity () =
  let s = Grophecy.init machine in
  let target = catalog_machine "dgx-a100" in
  let p =
    Pricing.make ~predictor:Predictor.analytic ~source:machine ~target ~h2d:s.Grophecy.h2d
      ~d2h:s.Grophecy.d2h ()
  in
  (* Analytic carries the source models verbatim, only the target
     machine changes. *)
  Alcotest.(check bool) "models unchanged" true
    (p.Pricing.h2d == s.Grophecy.h2d && p.Pricing.d2h == s.Grophecy.d2h);
  Alcotest.(check string) "machine is target" "dgx-a100" (Pricing.machine p).Machine.id

let test_scaled_beats_naive_cross () =
  let source = machine in
  let target = catalog_machine "dgx-a100" in
  let ssess = Grophecy.init source in
  let tsess = Grophecy.init target in
  let memory = Link.memory_of_staging target.Machine.staging in
  let truth direction ~bytes =
    Link.expected_time tsess.Grophecy.calibration_link direction memory ~bytes
  in
  let mk predictor =
    Pricing.make ~predictor ~source ~target ~h2d:ssess.Grophecy.h2d ~d2h:ssess.Grophecy.d2h ()
  in
  let scaled = mk (Helpers.check_ok "scaled" (Predictor.of_string "scaled")) in
  let naive = mk Predictor.analytic in
  let mib = Gpp_util.Units.mib in
  let err pricing direction =
    List.fold_left
      (fun acc bytes ->
        let t = truth direction ~bytes in
        acc +. (Float.abs (Pricing.predict pricing direction ~bytes -. t) /. t))
      0.0
      [ mib; 4 * mib; 16 * mib; 64 * mib ]
  in
  List.iter
    (fun direction ->
      let s = err scaled direction and n = err naive direction in
      if s >= n then
        Alcotest.failf "scaled (%.3f) should beat naive (%.3f) on a PCIe1->PCIe4 pair" s n)
    [ Link.Host_to_device; Link.Device_to_host ]

(* --- learned correction ---------------------------------------------- *)

let test_correction_fit_apply () =
  (* Constant measured/projected ratio 1.5 with a near-zero lambda: the
     fitted multiplier must reproduce it on the training points. *)
  let samples =
    [ ([| 1.0; 0.5 |], 1.5); ([| 1.0; 1.0 |], 1.5); ([| 1.0; 2.0 |], 1.5) ]
  in
  let c = Helpers.check_ok "fit" (Correction.fit ~lambda:1e-9 samples) in
  List.iter
    (fun (features, _) ->
      Helpers.close_rel ~tolerance:0.02 "multiplier" 1.5 (Correction.multiplier c ~features);
      Helpers.close_rel ~tolerance:0.02 "apply" 15.0 (Correction.apply c ~features ~base:10.0))
    samples

let test_correction_shrinks_to_identity () =
  let samples = [ ([| 1.0; 0.5 |], 1.5); ([| 1.0; 1.0 |], 1.5); ([| 1.0; 2.0 |], 1.5) ] in
  let c = Helpers.check_ok "fit" (Correction.fit ~lambda:1e9 samples) in
  (* An overwhelming lambda shrinks the correction toward the identity
     multiplier, never past it. *)
  List.iter
    (fun (features, _) ->
      Helpers.close_rel ~tolerance:0.01 "identity" 1.0 (Correction.multiplier c ~features))
    samples

let test_correction_clamps () =
  let high = [ ([| 1.0 |], 100.0); ([| 1.0 |], 100.0) ] in
  let c = Helpers.check_ok "fit high" (Correction.fit ~lambda:1e-9 high) in
  Alcotest.(check (float 1e-9)) "clamped high" Correction.max_multiplier
    (Correction.multiplier c ~features:[| 1.0 |]);
  let low = [ ([| 1.0 |], 0.001); ([| 1.0 |], 0.001) ] in
  let c = Helpers.check_ok "fit low" (Correction.fit ~lambda:1e-9 low) in
  Alcotest.(check (float 1e-9)) "clamped low" Correction.min_multiplier
    (Correction.multiplier c ~features:[| 1.0 |])

let test_correction_fit_errors () =
  (match Correction.fit [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sample set must not fit");
  match Correction.fit [ ([| 1.0; 2.0 |], 1.1); ([| 1.0 |], 1.2) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged features must not fit"

(* --- config layering ------------------------------------------------- *)

let test_config_layering () =
  let module Config = Gpp_engine.Config in
  let getenv = function "GPP_PREDICT" -> Some "scaled" | _ -> None in
  let c = Helpers.check_core "env" (Config.resolve ~getenv ()) in
  Alcotest.(check string) "env layer" "scaled" (Predictor.name c.Config.predictor);
  let overrides = { Config.no_overrides with Config.o_predict = Some "scaled,learned" } in
  let c = Helpers.check_core "flag" (Config.resolve ~getenv ~overrides ()) in
  Alcotest.(check string) "flag beats env" "scaled,learned" (Predictor.name c.Config.predictor);
  let overrides = { Config.no_overrides with Config.o_predict = Some "nope" } in
  match Config.resolve ~getenv ~overrides () with
  | Ok _ -> Alcotest.fail "unknown predictor must fail resolution"
  | Error e -> Alcotest.(check int) "exit code 2" 2 (Gpp_engine.Error.exit_code e)

let () =
  Alcotest.run "predict"
    [
      ( "ridge",
        [ Alcotest.test_case "singular rejected" `Quick test_ridge_rejects_singular ]
        @ [ prop_ridge_recovers_planted_weights; prop_ridge_shrinks_norm ] );
      ( "features",
        [
          Alcotest.test_case "shape" `Quick test_feature_shape;
          Alcotest.test_case "bit-deterministic across jobs" `Slow
            test_feature_determinism_across_jobs;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "parse" `Quick test_predictor_parse;
          Alcotest.test_case "parse errors" `Quick test_predictor_parse_errors;
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
        ] );
      ( "pricing",
        [
          Alcotest.test_case "scaled same-machine identity" `Quick
            test_scaled_same_machine_identity;
          Alcotest.test_case "analytic cross-machine identity" `Quick
            test_analytic_cross_machine_identity;
          Alcotest.test_case "scaled beats naive" `Quick test_scaled_beats_naive_cross;
        ] );
      ( "correction",
        [
          Alcotest.test_case "fit/apply" `Quick test_correction_fit_apply;
          Alcotest.test_case "shrinks to identity" `Quick test_correction_shrinks_to_identity;
          Alcotest.test_case "clamps" `Quick test_correction_clamps;
          Alcotest.test_case "fit errors" `Quick test_correction_fit_errors;
        ] );
      ( "config",
        [ Alcotest.test_case "layering" `Quick test_config_layering ] );
    ]
