(* Tests for Gpp_dataflow: the data usage analyzer (paper Section III-B). *)

module Analyzer = Gpp_dataflow.Analyzer
module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program

let input_of plan array =
  List.find_opt (fun (t : Analyzer.transfer) -> t.Analyzer.array = array) plan.Analyzer.to_device

let output_of plan array =
  List.find_opt (fun (t : Analyzer.transfer) -> t.Analyzer.array = array) plan.Analyzer.from_device

let test_chain_basics () =
  let n = 1024 in
  let plan = Analyzer.analyze (Helpers.chain_program ~n ()) in
  (* input is read before written: uploaded. *)
  (match input_of plan "input" with
  | Some t -> Alcotest.(check int) "input bytes" (4 * n) t.Analyzer.bytes
  | None -> Alcotest.fail "input should be uploaded");
  (* middle is produced on the device before it is consumed: no upload. *)
  Alcotest.(check bool) "middle not uploaded" true (input_of plan "middle" = None);
  (* middle is hinted as a temporary: not downloaded either. *)
  Alcotest.(check bool) "middle not downloaded" true (output_of plan "middle" = None);
  (* output is written: downloaded. *)
  (match output_of plan "output" with
  | Some t -> Alcotest.(check int) "output bytes" (4 * n) t.Analyzer.bytes
  | None -> Alcotest.fail "output should be downloaded");
  Alcotest.(check int) "input total" (4 * n) (Analyzer.input_bytes plan);
  Alcotest.(check int) "output total" (4 * n) (Analyzer.output_bytes plan);
  Alcotest.(check int) "grand total" (8 * n) (Analyzer.total_bytes plan)

let test_without_temporary_hint () =
  let p = Helpers.chain_program () in
  let plan = Analyzer.analyze { p with Program.temporaries = [] } in
  (* Without the hint, the intermediate array is downloaded too. *)
  Alcotest.(check bool) "middle downloaded" true (output_of plan "middle" <> None)

let test_read_modify_write () =
  let n = 256 in
  let arrays = [ Decl.dense "acc" ~dims:[ n ] ] in
  let kernel =
    Ir.kernel "rmw"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:[ Ir.load "acc" [ Ix.var "i" ]; Ir.compute 1.0; Ir.store "acc" [ Ix.var "i" ] ]
  in
  let p =
    Program.create ~name:"rmw" ~arrays ~kernels:[ kernel ] ~schedule:[ Program.Call "rmw" ] ()
  in
  let plan = Analyzer.analyze p in
  (* Read before written on the device: both directions. *)
  Alcotest.(check int) "uploaded" (4 * n) (Analyzer.input_bytes plan);
  Alcotest.(check int) "downloaded" (4 * n) (Analyzer.output_bytes plan)

let test_write_only_no_upload () =
  let n = 64 in
  let arrays = [ Decl.dense "out" ~dims:[ n ] ] in
  let kernel =
    Ir.kernel "init"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:[ Ir.compute 1.0; Ir.store "out" [ Ix.var "i" ] ]
  in
  let p =
    Program.create ~name:"init" ~arrays ~kernels:[ kernel ] ~schedule:[ Program.Call "init" ] ()
  in
  let plan = Analyzer.analyze p in
  Alcotest.(check int) "nothing uploaded" 0 (Analyzer.input_bytes plan);
  Alcotest.(check int) "result downloaded" (4 * n) (Analyzer.output_bytes plan)

let test_iteration_invariance () =
  (* The paper's key property: a fixed amount of data transfers no
     matter the iteration count (Section IV-B). *)
  let sizes_at iterations =
    let p = Gpp_workloads.Hotspot.program ~iterations ~n:128 () in
    let plan = Analyzer.analyze p in
    (Analyzer.input_bytes plan, Analyzer.output_bytes plan)
  in
  let base = sizes_at 1 in
  List.iter
    (fun n -> Alcotest.(check (pair int int)) (Printf.sprintf "%d iterations" n) base (sizes_at n))
    [ 2; 7; 100 ]

let test_each_array_transferred_once () =
  let plan = Analyzer.analyze (Gpp_workloads.Cfd.program ~nelem:1000 ()) in
  let names = List.map (fun (t : Analyzer.transfer) -> t.Analyzer.array) plan.Analyzer.to_device in
  Alcotest.(check (list string)) "unique per array" (List.sort_uniq compare names)
    (List.sort compare names)

let test_partial_section_upload () =
  (* A kernel reading only the first half of an array uploads half. *)
  let arrays = [ Decl.dense "a" ~dims:[ 100 ]; Decl.dense "o" ~dims:[ 100 ] ] in
  let kernel =
    Ir.kernel "half"
      ~loops:[ Ir.loop "i" ~extent:50 ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 1.0; Ir.store "o" [ Ix.var "i" ] ]
  in
  let p =
    Program.create ~name:"half" ~arrays ~kernels:[ kernel ] ~schedule:[ Program.Call "half" ] ()
  in
  let plan = Analyzer.analyze p in
  Alcotest.(check int) "half uploaded" (4 * 50) (Analyzer.input_bytes plan);
  Alcotest.(check int) "half downloaded" (4 * 50) (Analyzer.output_bytes plan)

let test_producer_covers_consumer_halo () =
  (* Producer writes the whole array; consumer reads it with a halo.
     Nothing extra is uploaded: the device copy is complete. *)
  let n = 64 in
  let arrays = [ Decl.dense "a" ~dims:[ n ]; Decl.dense "b" ~dims:[ n ]; Decl.dense "c" ~dims:[ n ] ] in
  let producer =
    Ir.kernel "produce"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 1.0; Ir.store "b" [ Ix.var "i" ] ]
  in
  let consumer =
    Ir.kernel "consume"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:
        [
          Ir.load "b" [ Ix.offset (Ix.var "i") (-1) ];
          Ir.load "b" [ Ix.var "i" ];
          Ir.compute 1.0;
          Ir.store "c" [ Ix.var "i" ];
        ]
  in
  let p =
    Program.create ~name:"halo" ~arrays
      ~kernels:[ producer; consumer ]
      ~schedule:[ Program.Call "produce"; Program.Call "consume" ]
      ~temporaries:[ "b" ] ()
  in
  let plan = Analyzer.analyze p in
  Alcotest.(check bool) "b never uploaded" true (input_of plan "b" = None);
  Alcotest.(check int) "only a uploaded" (4 * n) (Analyzer.input_bytes plan)

let test_sparse_policies () =
  let arrays = [ Decl.sparse "s" ~nnz:100 ~dims:[ 10000 ]; Decl.dense "o" ~dims:[ 100 ] ] in
  let kernel =
    Ir.kernel "touch"
      ~loops:[ Ir.loop "i" ~extent:100 ]
      ~body:[ Ir.load "s" [ Ix.var "i" ]; Ir.compute 1.0; Ir.store "o" [ Ix.var "i" ] ]
  in
  let p =
    Program.create ~name:"sparse" ~arrays ~kernels:[ kernel ] ~schedule:[ Program.Call "touch" ] ()
  in
  let conservative = Analyzer.analyze p in
  let exact =
    Analyzer.analyze ~policy:{ Analyzer.default_policy with Analyzer.sparse_exact = true } p
  in
  (match input_of conservative "s" with
  | Some t ->
      Alcotest.(check int) "whole capacity" (4 * 10000) t.Analyzer.bytes;
      Alcotest.(check bool) "flagged conservative" true t.Analyzer.conservative
  | None -> Alcotest.fail "sparse array should upload");
  match input_of exact "s" with
  | Some t -> Alcotest.(check int) "nnz only" (4 * 100) t.Analyzer.bytes
  | None -> Alcotest.fail "sparse array should upload"

let test_paper_transfer_sizes () =
  (* Table I cross-check: per-element transfer sizes of the skeletons. *)
  let check_instance name expected_in expected_out plan =
    Alcotest.(check int) (name ^ " input") expected_in (Analyzer.input_bytes plan);
    Alcotest.(check int) (name ^ " output") expected_out (Analyzer.output_bytes plan)
  in
  let n = 10_000 in
  let cfd = Analyzer.analyze (Gpp_workloads.Cfd.program ~nelem:n ()) in
  (* variables 20 B + neighbors 16 B + normals 32 B + areas 4 B = 72 B/elem in;
     variables 20 B/elem out. *)
  check_instance "cfd" (72 * n) (20 * n) cfd;
  let g = 128 in
  let hotspot = Analyzer.analyze (Gpp_workloads.Hotspot.program ~n:g ()) in
  check_instance "hotspot" (2 * 4 * g * g) (4 * g * g) hotspot;
  let srad = Analyzer.analyze (Gpp_workloads.Srad.program ~n:g ()) in
  check_instance "srad" (4 * g * g) (4 * g * g) srad;
  let st = Analyzer.analyze (Gpp_workloads.Stassuij.program ()) in
  (* xmat + ymat complex in, ymat out, plus the three CSR vectors. *)
  let dense = 132 * 2048 * 16 in
  let csr = (1716 * 8) + (1716 * 4) + (133 * 4) in
  check_instance "stassuij" ((2 * dense) + csr) dense st

(* Property tests over randomly generated (valid) programs. *)

let array_pool = [ "a0"; "a1"; "a2"; "a3" ]

let pool_extent = 64

let random_program_gen =
  QCheck2.Gen.(
    let stmt_gen =
      let* array = oneofl array_pool in
      let* is_store = bool in
      let* offset = int_range (-1) 1 in
      let expr = Ix.offset (Ix.var "i") offset in
      return (if is_store then Ir.store array [ expr ] else Ir.load array [ expr ])
    in
    let kernel_gen name =
      let* extent = int_range 2 pool_extent in
      let* stmts = list_size (int_range 1 5) stmt_gen in
      return (Ir.kernel name ~loops:[ Ir.loop "i" ~extent ] ~body:(stmts @ [ Ir.compute 1.0 ]))
    in
    let* kernel_count = int_range 1 3 in
    let names = List.init kernel_count (Printf.sprintf "k%d") in
    let* kernels =
      List.fold_right
        (fun name acc ->
          let* ks = acc in
          let* k = kernel_gen name in
          return (k :: ks))
        names (return [])
    in
    let* repeat_count = int_range 1 4 in
    let* use_repeat = bool in
    let calls = List.map (fun n -> Program.Call n) names in
    let schedule = if use_repeat then [ Program.Repeat (repeat_count, calls) ] else calls in
    let* temporaries =
      List.fold_right
        (fun name acc ->
          let* ts = acc in
          let* keep = bool in
          return (if keep then name :: ts else ts))
        array_pool (return [])
    in
    let arrays = List.map (fun name -> Decl.dense name ~dims:[ pool_extent ]) array_pool in
    return (Program.create ~temporaries ~name:"random" ~arrays ~kernels ~schedule ()))

let written_arrays (p : Program.t) =
  List.concat_map
    (fun k ->
      List.filter_map
        (fun (_, (r : Ir.array_ref)) -> if r.Ir.access = Ir.Store then Some r.Ir.array else None)
        (Ir.refs k))
    p.Program.kernels
  |> List.sort_uniq compare

let read_arrays (p : Program.t) =
  List.concat_map
    (fun k ->
      List.filter_map
        (fun (_, (r : Ir.array_ref)) -> if r.Ir.access = Ir.Load then Some r.Ir.array else None)
        (Ir.refs k))
    p.Program.kernels
  |> List.sort_uniq compare

let test_random_programs_valid =
  Helpers.qtest ~count:200 "generated programs validate and analyze" random_program_gen
    (fun p ->
      match Program.validate p with
      | Error _ -> false
      | Ok () ->
          let plan = Analyzer.analyze p in
          Analyzer.input_bytes plan >= 0 && Analyzer.output_bytes plan >= 0)

let test_random_iteration_invariance =
  Helpers.qtest ~count:200 "transfer set independent of iteration count" random_program_gen
    (fun p ->
      let at n =
        let plan = Analyzer.analyze (Program.with_iterations p n) in
        (Analyzer.input_bytes plan, Analyzer.output_bytes plan)
      in
      at 1 = at 7)

let test_random_transfer_soundness =
  Helpers.qtest ~count:200 "uploads are read somewhere; downloads written and not temporary"
    random_program_gen (fun p ->
      let plan = Analyzer.analyze p in
      let reads = read_arrays p and writes = written_arrays p in
      let footprint name =
        Decl.footprint_bytes (List.find (fun (d : Decl.t) -> d.Decl.name = name) p.Program.arrays)
      in
      List.for_all
        (fun (t : Analyzer.transfer) ->
          List.mem t.Analyzer.array reads && t.Analyzer.bytes <= footprint t.Analyzer.array)
        plan.Analyzer.to_device
      && List.for_all
           (fun (t : Analyzer.transfer) ->
             List.mem t.Analyzer.array writes
             && (not (List.mem t.Analyzer.array p.Program.temporaries))
             && t.Analyzer.bytes <= footprint t.Analyzer.array)
           plan.Analyzer.from_device)

let test_random_temporaries_monotone =
  Helpers.qtest ~count:200 "dropping temporary hints never shrinks downloads" random_program_gen
    (fun p ->
      let with_hints = Analyzer.analyze p in
      let without = Analyzer.analyze { p with Program.temporaries = [] } in
      Analyzer.output_bytes without >= Analyzer.output_bytes with_hints
      && Analyzer.input_bytes without = Analyzer.input_bytes with_hints)

(* --- plan-policy ablation: minimal vs conservative ------------------- *)

let minimal_policy = { Analyzer.default_policy with Analyzer.plan = Analyzer.Minimal }

(* Minimal prices only statically live references but tracks device
   residency with the same conservative write set, so it can never plan
   more than conservative — per direction and per array. *)
let test_random_minimal_le_conservative =
  Helpers.qtest ~count:200 "minimal plan never exceeds conservative" random_program_gen (fun p ->
      let c = Analyzer.analyze p and m = Analyzer.analyze ~policy:minimal_policy p in
      let le_side side_m side_c =
        List.for_all
          (fun (mt : Analyzer.transfer) ->
            match
              List.find_opt (fun (t : Analyzer.transfer) -> t.Analyzer.array = mt.Analyzer.array) side_c
            with
            | Some ct -> mt.Analyzer.bytes <= ct.Analyzer.bytes
            | None -> false)
          side_m
      in
      le_side m.Analyzer.to_device c.Analyzer.to_device
      && le_side m.Analyzer.from_device c.Analyzer.from_device
      && Analyzer.input_bytes m <= Analyzer.input_bytes c
      && Analyzer.output_bytes m <= Analyzer.output_bytes c)

(* --- fixpoint engine vs the unrolled schedule ------------------------ *)

let rec flatten_invocations = function
  | Program.Call _ as c -> [ c ]
  | Program.Repeat (n, body) ->
      List.concat (List.init n (fun _ -> List.concat_map flatten_invocations body))

(* The engine iterates Repeat bodies to a fixed point instead of
   walking every iteration; the resulting plan must equal the one from
   the literally unrolled straight-line schedule, under both
   policies. *)
let test_random_fixpoint_matches_unrolled =
  Helpers.qtest ~count:200 "plan over Repeat equals plan over the unrolled schedule"
    random_program_gen (fun p ->
      let unrolled =
        { p with Program.schedule = List.concat_map flatten_invocations p.Program.schedule }
      in
      Analyzer.analyze p = Analyzer.analyze unrolled
      && Analyzer.analyze ~policy:minimal_policy p
         = Analyzer.analyze ~policy:minimal_policy unrolled)

(* --- lattice laws the engine's termination argument rests on --------- *)

module FI = Gpp_fixpoint.Fixpoint.Interval

let interval_gen =
  QCheck2.Gen.(
    let* which = int_range 0 8 in
    if which = 0 then return FI.Bot
    else
      let* lo = int_range (-100) 100 in
      let* len = int_range 0 100 in
      return (FI.of_bounds (lo, lo + len)))

let interval_pair_gen = QCheck2.Gen.pair interval_gen interval_gen

let test_interval_join_commutes =
  Helpers.qtest ~count:500 "interval join commutes" interval_pair_gen (fun (a, b) ->
      FI.join a b = FI.join b a)

let test_interval_join_associates =
  Helpers.qtest ~count:500 "interval join associates"
    QCheck2.Gen.(triple interval_gen interval_gen interval_gen)
    (fun (a, b, c) -> FI.join a (FI.join b c) = FI.join (FI.join a b) c)

let test_interval_join_upper_bound =
  Helpers.qtest ~count:500 "interval join bounds both operands" interval_pair_gen (fun (a, b) ->
      let j = FI.join a b in
      FI.leq a j && FI.leq b j && FI.join a a = a)

let test_interval_widening_terminates =
  (* Iterating x <- widen x (join x b) must stabilize after at most two
     steps (each unstable bound jumps to +-infinity once) while staying
     above the plain join. *)
  Helpers.qtest ~count:500 "interval widening stabilizes in two steps" interval_pair_gen
    (fun (a, b) ->
      let step x = FI.widen x (FI.join x b) in
      let x1 = step a in
      let x2 = step x1 in
      let x3 = step x2 in
      FI.leq (FI.join a b) x1 && x3 = x2)

module SL = Gpp_dataflow.Section_lattice
module Section = Gpp_brs.Section

let fact_gen =
  QCheck2.Gen.(
    let entry_gen =
      let* array = oneofl array_pool in
      let* lo = int_range 0 40 in
      let* len = int_range 0 20 in
      let* stride = int_range 1 4 in
      return (array, Section.make array [ Section.dim_exn ~lo ~hi:(lo + len) ~stride ])
    in
    let* entries = list_size (int_range 0 6) entry_gen in
    return
      (List.fold_left
         (fun acc (array, s) -> SL.add_section array s acc)
         SL.empty entries))

let fact_pair_gen = QCheck2.Gen.pair fact_gen fact_gen

let test_section_lattice_join_upper_bound =
  Helpers.qtest ~count:500 "section-map join bounds both operands" fact_pair_gen (fun (a, b) ->
      let j = SL.join a b in
      SL.leq a j && SL.leq b j && SL.leq a a)

let test_section_lattice_join_commutes =
  Helpers.qtest ~count:500 "section-map join commutes up to equal" fact_pair_gen (fun (a, b) ->
      SL.equal (SL.join a b) (SL.join b a))

let test_section_lattice_widening_terminates =
  Helpers.qtest ~count:500 "section-map widening stabilizes" fact_pair_gen (fun (a, b) ->
      let step x = SL.widen x (SL.join x b) in
      let x1 = step a in
      let x2 = step x1 in
      let x3 = step x2 in
      SL.leq (SL.join a b) x1 && SL.equal x3 x2)

(* --- the engine itself, on a hand-built schedule --------------------- *)

module Trace_lattice = struct
  type t = string list (* sorted kernel-name set *)

  let leq a b = List.for_all (fun x -> List.mem x b) a
  let join a b = List.sort_uniq compare (a @ b)
  let widen = join
end

module Trace_walk = Gpp_fixpoint.Fixpoint.Make (Trace_lattice)

let test_fixpoint_forward_loop_invariant () =
  let schedule =
    [ Program.Call "a"; Program.Repeat (3, [ Program.Call "b" ]); Program.Call "c" ]
  in
  let transfer ~index:_ kernel fact = List.sort_uniq compare (kernel :: fact) in
  let r = Trace_walk.forward ~schedule ~transfer ~init:[] in
  Alcotest.(check int) "one point per call site" 3 (List.length r.Trace_walk.points);
  Alcotest.(check (list string)) "exit fact" [ "a"; "b"; "c" ] r.Trace_walk.exit_fact;
  (match r.Trace_walk.points with
  | [ pa; pb; pc ] ->
      Alcotest.(check int) "pre-order indices" 0 pa.Trace_walk.index;
      Alcotest.(check int) "loop body index" 1 pb.Trace_walk.index;
      Alcotest.(check int) "post-loop index" 2 pc.Trace_walk.index;
      (* The loop-body fact is the invariant: it includes [b] flowing
         around the back edge, not just the entry fact. *)
      Alcotest.(check (list string)) "loop invariant before b" [ "a"; "b" ] pb.Trace_walk.before;
      Alcotest.(check (list string)) "fact before c" [ "a"; "b" ] pc.Trace_walk.before
  | _ -> Alcotest.fail "expected three points");
  Alcotest.(check bool) "body iterated to a fixed point" true
    (r.Trace_walk.stats.Gpp_fixpoint.Fixpoint.loop_iterations >= 2)

let test_fixpoint_backward_orientation () =
  (* Backward: [before] still means "before the invocation executes". *)
  let schedule = [ Program.Call "a"; Program.Call "b" ] in
  let transfer ~index:_ kernel fact = List.sort_uniq compare (kernel :: fact) in
  let r = Trace_walk.backward ~schedule ~transfer ~exit_:[] in
  match r.Trace_walk.points with
  | [ pa; pb ] ->
      Alcotest.(check string) "first point is a" "a" pa.Trace_walk.kernel;
      Alcotest.(check (list string)) "everything live before a" [ "a"; "b" ] pa.Trace_walk.before;
      Alcotest.(check (list string)) "only b live before b" [ "b" ] pb.Trace_walk.before;
      Alcotest.(check (list string)) "entry fact" [ "a"; "b" ] r.Trace_walk.exit_fact
  | _ -> Alcotest.fail "expected two points"

let test_direction_names () =
  Alcotest.(check string) "in" "to device" (Analyzer.direction_name Analyzer.To_device);
  Alcotest.(check string) "out" "from device" (Analyzer.direction_name Analyzer.From_device)

let () =
  Alcotest.run "gpp_dataflow"
    [
      ( "analyzer",
        [
          Alcotest.test_case "producer/consumer chain" `Quick test_chain_basics;
          Alcotest.test_case "no temporary hint" `Quick test_without_temporary_hint;
          Alcotest.test_case "read-modify-write" `Quick test_read_modify_write;
          Alcotest.test_case "write-only" `Quick test_write_only_no_upload;
          Alcotest.test_case "iteration invariance" `Quick test_iteration_invariance;
          Alcotest.test_case "one transfer per array" `Quick test_each_array_transferred_once;
          Alcotest.test_case "partial sections" `Quick test_partial_section_upload;
          Alcotest.test_case "producer covers halo" `Quick test_producer_covers_consumer_halo;
          Alcotest.test_case "sparse policies" `Quick test_sparse_policies;
          Alcotest.test_case "paper transfer sizes" `Quick test_paper_transfer_sizes;
          Alcotest.test_case "direction names" `Quick test_direction_names;
        ] );
      ( "properties",
        [
          test_random_programs_valid;
          test_random_iteration_invariance;
          test_random_transfer_soundness;
          test_random_temporaries_monotone;
          test_random_minimal_le_conservative;
          test_random_fixpoint_matches_unrolled;
        ] );
      ( "lattice laws",
        [
          test_interval_join_commutes;
          test_interval_join_associates;
          test_interval_join_upper_bound;
          test_interval_widening_terminates;
          test_section_lattice_join_upper_bound;
          test_section_lattice_join_commutes;
          test_section_lattice_widening_terminates;
        ] );
      ( "fixpoint engine",
        [
          Alcotest.test_case "forward loop invariant" `Quick test_fixpoint_forward_loop_invariant;
          Alcotest.test_case "backward orientation" `Quick test_fixpoint_backward_orientation;
        ] );
    ]
