(* The projection cache: fingerprint stability, memo accounting and LRU
   eviction, the bypass paths, and the regression the whole design rests
   on — cached and uncached pipeline runs produce bit-identical
   reports. *)

module F = Gpp_cache.Fingerprint
module Memo = Gpp_cache.Memo
module Control = Gpp_cache.Control
module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program

(* Every test must see the cache in its default (enabled, empty) state
   regardless of alcotest's execution order. *)
let fresh f () =
  Control.set_enabled true;
  Memo.clear_all ();
  Fun.protect ~finally:(fun () -> Control.set_enabled true) f

(* Fingerprints *)

let mk_kernel ?(name = "k") ?(extent = 1024) ?(flops = 2.0) () =
  Ir.kernel name
    ~loops:[ Ir.loop "i" ~extent ]
    ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute flops; Ir.store "b" [ Ix.var "i" ] ]

let mk_program ?(elem_bytes = 4) () =
  let kernel = mk_kernel () in
  Program.create ~name:"p"
    ~arrays:[ Decl.dense ~elem_bytes "a" ~dims:[ 1024 ]; Decl.dense ~elem_bytes "b" ~dims:[ 1024 ] ]
    ~kernels:[ kernel ]
    ~schedule:[ Program.Call "k" ]
    ()

let test_kernel_fingerprint_stable () =
  (* Separately constructed but structurally equal values must digest
     identically — the cache key cannot depend on physical identity. *)
  Alcotest.(check string)
    "equal kernels, equal digests"
    (Ir.fingerprint (mk_kernel ()))
    (Ir.fingerprint (mk_kernel ()));
  Alcotest.(check string)
    "equal programs, equal digests"
    (Program.fingerprint (mk_program ()))
    (Program.fingerprint (mk_program ()))

let test_kernel_fingerprint_sensitive () =
  let base = Ir.fingerprint (mk_kernel ()) in
  let differs what fp = Alcotest.(check bool) (what ^ " changes digest") false (String.equal base fp) in
  differs "extent" (Ir.fingerprint (mk_kernel ~extent:2048 ()));
  differs "flops" (Ir.fingerprint (mk_kernel ~flops:3.0 ()));
  differs "name" (Ir.fingerprint (mk_kernel ~name:"other" ()));
  let pbase = Program.fingerprint (mk_program ()) in
  Alcotest.(check bool)
    "elem_bytes changes program digest" false
    (String.equal pbase (Program.fingerprint (mk_program ~elem_bytes:8 ())))

let test_fingerprint_encoding_unambiguous () =
  (* Length-prefixing must keep adjacent fields from bleeding into each
     other: ("ab","c") and ("a","bc") are different keys. *)
  let digest parts = F.of_value (fun fp () -> List.iter (F.add_string fp) parts) () in
  Alcotest.(check bool)
    "string boundaries preserved" false
    (String.equal (digest [ "ab"; "c" ]) (digest [ "a"; "bc" ]));
  let fd v = F.of_value F.add_float v in
  Alcotest.(check bool) "+0. and -0. are distinct bit patterns" false (String.equal (fd 0.0) (fd (-0.0)));
  Alcotest.(check string) "float digest reproducible" (fd 1.5) (fd 1.5)

(* Memo accounting *)

let test_memo_hit_miss () =
  let memo = Memo.create ~capacity:8 ~name:"test.hit-miss" () in
  let calls = ref 0 in
  let compute () = incr calls; !calls in
  Alcotest.(check int) "first lookup computes" 1 (Memo.find_or_add memo ~key:"a" compute);
  Alcotest.(check int) "second lookup is served cached" 1 (Memo.find_or_add memo ~key:"a" compute);
  Alcotest.(check int) "distinct key recomputes" 2 (Memo.find_or_add memo ~key:"b" compute);
  let s = Memo.snapshot memo in
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "misses" 2 s.misses;
  Alcotest.(check int) "entries" 2 s.entries;
  Alcotest.(check int) "no evictions" 0 s.evictions;
  Alcotest.(check int) "no bypasses" 0 s.bypasses;
  Alcotest.(check bool) "non-zero footprint" true (s.bytes > 0)

let test_memo_lru_eviction () =
  let memo = Memo.create ~capacity:2 ~name:"test.lru" () in
  let stored = ref [] in
  let compute key () = stored := key :: !stored; key in
  ignore (Memo.find_or_add memo ~key:"a" (compute "a"));
  ignore (Memo.find_or_add memo ~key:"b" (compute "b"));
  (* Touch "a" so "b" becomes least recently used, then overflow. *)
  ignore (Memo.find_or_add memo ~key:"a" (compute "a!"));
  ignore (Memo.find_or_add memo ~key:"c" (compute "c"));
  Alcotest.(check string) "survivor still cached" "a" (Memo.find_or_add memo ~key:"a" (compute "a!!"));
  Alcotest.(check string) "victim was evicted" "b2" (Memo.find_or_add memo ~key:"b" (compute "b2"));
  let s = Memo.snapshot memo in
  Alcotest.(check int) "evictions counted" 2 s.evictions;
  Alcotest.(check int) "entries bounded by capacity" 2 s.entries;
  Alcotest.(check (list string)) "computed exactly when missed" [ "b2"; "c"; "b"; "a" ] !stored

let test_memo_exception_not_stored () =
  let memo = Memo.create ~name:"test.exn" () in
  (match Memo.find_or_add memo ~key:"k" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the exception to propagate");
  Alcotest.(check int) "failed compute left nothing behind" 7
    (Memo.find_or_add memo ~key:"k" (fun () -> 7));
  Alcotest.(check int) "no entry from the failed call" 1 (Memo.snapshot memo).entries

(* Bypass *)

let test_memo_bypass () =
  let memo = Memo.create ~name:"test.bypass" () in
  let calls = ref 0 in
  let compute () = incr calls; !calls in
  Alcotest.(check int) "bypassed call computes" 1 (Memo.find_or_add ~cache:false memo ~key:"k" compute);
  Alcotest.(check int) "and does not store" 2 (Memo.find_or_add ~cache:false memo ~key:"k" compute);
  Control.without_cache (fun () ->
      Alcotest.(check int) "global disable also bypasses" 3 (Memo.find_or_add memo ~key:"k" compute));
  Alcotest.(check bool) "flag restored afterwards" true (Control.is_enabled ());
  let s = Memo.snapshot memo in
  Alcotest.(check int) "bypasses counted" 3 s.bypasses;
  Alcotest.(check int) "no entries written" 0 s.entries;
  (* With caching back on, the same key is a plain miss-then-hit. *)
  Alcotest.(check int) "cache works again" 4 (Memo.find_or_add memo ~key:"k" compute);
  Alcotest.(check int) "hit after re-enable" 4 (Memo.find_or_add memo ~key:"k" compute)

let snapshot_named name =
  match List.find_opt (fun (s : Memo.snapshot) -> String.equal s.name name) (Memo.snapshots ()) with
  | Some s -> s
  | None -> Alcotest.failf "no registered cache named %s" name

let test_search_memoized () =
  let machine = Gpp_arch.Machine.argonne_node in
  let program = mk_program () in
  let kernel = List.hd program.Program.kernels in
  let search () =
    Gpp_transform.Explore.search ~gpu:machine.Gpp_arch.Machine.gpu ~decls:program.Program.arrays
      kernel
  in
  let first = search () in
  let before = snapshot_named "transform.search" in
  let again = search () in
  let after = snapshot_named "transform.search" in
  Alcotest.(check int) "second search hits" (before.hits + 1) after.hits;
  Alcotest.(check int) "no extra miss" before.misses after.misses;
  Alcotest.(check bool) "hit returns the cached list" true (first == again);
  let bypassed =
    Gpp_transform.Explore.search ~cache:false ~gpu:machine.Gpp_arch.Machine.gpu
      ~decls:program.Program.arrays kernel
  in
  let final = snapshot_named "transform.search" in
  Alcotest.(check int) "~cache:false bypasses" (after.bypasses + 1) final.bypasses;
  Alcotest.(check int) "recomputed list has same length" (List.length first) (List.length bypassed)

(* Cached vs uncached pipeline equivalence *)

let report_exn = function
  | Ok r -> r
  | Error e -> Alcotest.failf "analyze failed: %s" (Gpp_core.Error.to_string e)

let analyze_fresh ?cache () =
  (* A fresh session per run: Grophecy.init and the transfer
     measurements are deliberately uncached (the link is stateful), so
     identical seeds must reproduce them exactly. *)
  let session = Gpp_core.Grophecy.init Gpp_arch.Machine.argonne_node in
  report_exn
    (Gpp_core.Grophecy.analyze
       ~params:{ Gpp_core.Grophecy.default_params with Gpp_core.Grophecy.cache }
       session
       (Gpp_workloads.Vecadd.program ~n:100_000))

let test_cached_vs_uncached_identical () =
  let uncached = Control.without_cache (fun () -> analyze_fresh ()) in
  Memo.clear_all ();
  let cold = analyze_fresh () in
  let warm = analyze_fresh () in
  let sim = snapshot_named "gpusim.run_mean" in
  Alcotest.(check bool) "warm run actually hit the simulation cache" true (sim.hits > 0);
  let check_same what (a : Gpp_core.Grophecy.report) (b : Gpp_core.Grophecy.report) =
    let exact name x y =
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then
        Alcotest.failf "%s: %s differs (%h vs %h)" what name x y
    in
    exact "projected kernel time" a.projection.Gpp_core.Projection.kernel_time
      b.projection.Gpp_core.Projection.kernel_time;
    exact "projected transfer time" a.projection.Gpp_core.Projection.transfer_time
      b.projection.Gpp_core.Projection.transfer_time;
    exact "measured total" a.measurement.Gpp_core.Measurement.total_time
      b.measurement.Gpp_core.Measurement.total_time;
    exact "kernel error" a.kernel_error b.kernel_error;
    exact "transfer error" a.transfer_error b.transfer_error;
    Alcotest.(check string)
      (what ^ ": full report renders identically")
      (Format.asprintf "%a" Gpp_core.Grophecy.pp_report a)
      (Format.asprintf "%a" Gpp_core.Grophecy.pp_report b)
  in
  check_same "cold vs uncached" cold uncached;
  check_same "warm vs uncached" warm uncached

let () =
  let t name fn = Alcotest.test_case name `Quick (fresh fn) in
  Alcotest.run "cache"
    [
      ( "fingerprint",
        [
          t "structurally equal values digest identically" test_kernel_fingerprint_stable;
          t "perturbations change the digest" test_kernel_fingerprint_sensitive;
          t "encoding is unambiguous" test_fingerprint_encoding_unambiguous;
        ] );
      ( "memo",
        [
          t "hit/miss accounting" test_memo_hit_miss;
          t "LRU eviction" test_memo_lru_eviction;
          t "exceptions are not stored" test_memo_exception_not_stored;
        ] );
      ( "bypass",
        [ t "per-call and global bypass" test_memo_bypass; t "search memoization" test_search_memoized ]
      );
      ( "equivalence",
        [ t "cached and uncached reports are bit-identical" test_cached_vs_uncached_identical ] );
    ]
