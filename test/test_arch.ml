(* Tests for Gpp_arch: hardware description records and derived
   quantities. *)

module Gpu = Gpp_arch.Gpu
module Cpu = Gpp_arch.Cpu
module Pcie = Gpp_arch.Pcie_spec
module Machine = Gpp_arch.Machine

let test_gpu_presets_valid () =
  List.iter
    (fun gpu -> ignore (Helpers.check_ok gpu.Gpu.name (Gpu.validate gpu)))
    [ Gpu.quadro_fx_5600; Gpu.tesla_c1060; Gpu.tesla_c2050 ]

let test_gpu_derived () =
  let gpu = Gpu.quadro_fx_5600 in
  (* 16 SMs x 8 cores x 1.35 GHz x 2 flops = 345.6 GFLOP/s. *)
  Helpers.close_rel ~tolerance:0.01 "peak gflops" 345.6 (Gpu.peak_gflops gpu);
  Alcotest.(check int) "peak warps" 24 (Gpu.peak_warps_per_sm gpu);
  Helpers.close_rel ~tolerance:0.01 "cycle time" (1.0 /. 1.35e9) (Gpu.cycle_time gpu)

let test_gpu_validation_catches () =
  let bad = { Gpu.quadro_fx_5600 with Gpu.sm_count = 0 } in
  ignore (Helpers.check_error "sm_count" (Gpu.validate bad));
  let bad = { Gpu.quadro_fx_5600 with Gpu.max_threads_per_sm = 100 } in
  ignore (Helpers.check_error "warp alignment" (Gpu.validate bad));
  let bad = { Gpu.quadro_fx_5600 with Gpu.max_threads_per_block = 10_000 } in
  ignore (Helpers.check_error "block capacity" (Gpu.validate bad))

let test_cpu_presets_valid () =
  List.iter
    (fun cpu -> ignore (Helpers.check_ok cpu.Cpu.name (Cpu.validate cpu)))
    [ Cpu.xeon_e5405; Cpu.xeon_e5645 ]

let test_cpu_derived () =
  (* 4 cores x 2.0 GHz x 4 flops = 32 GFLOP/s. *)
  Helpers.close_rel ~tolerance:0.01 "peak gflops" 32.0 (Cpu.peak_gflops Cpu.xeon_e5405)

let test_cpu_validation_catches () =
  let bad = { Cpu.xeon_e5405 with Cpu.threads = 1 } in
  ignore (Helpers.check_error "threads < cores" (Cpu.validate bad));
  let bad = { Cpu.xeon_e5405 with Cpu.parallel_efficiency = 1.5 } in
  ignore (Helpers.check_error "efficiency" (Cpu.validate bad))

let test_pcie_bandwidth_math () =
  (* Gen1 x16: 2.5 GT/s x 16 lanes x 0.8 encoding / 8 = 4 GB/s raw. *)
  Helpers.close_rel ~tolerance:0.001 "gen1 raw" 4e9 (Pcie.raw_bandwidth Pcie.v1_x16);
  (* Packet efficiency with 128 B payload and 20 B header. *)
  Helpers.close_rel ~tolerance:0.001 "packet efficiency" (128.0 /. 148.0)
    (Pcie.packet_efficiency Pcie.v1_x16);
  Helpers.close_rel ~tolerance:0.001 "effective" (4e9 *. 128.0 /. 148.0)
    (Pcie.effective_bandwidth Pcie.v1_x16);
  (* Generations get faster. *)
  Alcotest.(check bool) "gen2 > gen1" true
    (Pcie.effective_bandwidth Pcie.v2_x16 > Pcie.effective_bandwidth Pcie.v1_x16);
  Alcotest.(check bool) "gen3 > gen2" true
    (Pcie.effective_bandwidth Pcie.v3_x16 > Pcie.effective_bandwidth Pcie.v2_x16)

let test_pcie_validation () =
  ignore (Helpers.check_ok "v1 x16" (Pcie.validate Pcie.v1_x16));
  ignore (Helpers.check_error "lanes" (Pcie.validate { Pcie.v1_x16 with Pcie.lanes = 3 }));
  ignore
    (Helpers.check_error "payload" (Pcie.validate { Pcie.v1_x16 with Pcie.max_payload = 0 }))

let test_machine_presets () =
  ignore (Helpers.check_ok "argonne" (Machine.validate Machine.argonne_node));
  ignore (Helpers.check_ok "modern" (Machine.validate Machine.modern_node));
  (* The paper's testbed: FX 5600 on PCIe v1. *)
  Alcotest.(check string) "gpu" "NVIDIA Quadro FX 5600" Machine.argonne_node.Machine.gpu.Gpu.name;
  Alcotest.(check string) "cpu" "Intel Xeon E5405" Machine.argonne_node.Machine.cpu.Cpu.name;
  Alcotest.(check bool) "pcie gen1" true
    (Machine.argonne_node.Machine.pcie.Pcie.generation = Pcie.Gen1)

let test_zoo_valid () =
  List.iter
    (fun (m : Machine.t) -> ignore (Helpers.check_ok m.Machine.id (Machine.validate m)))
    Machine.zoo

let test_catalog_shape () =
  (* presets are frozen at the paper-era four — extension goldens
     iterate them — and the zoo rides behind without id collisions. *)
  Alcotest.(check int) "presets frozen" 4 (List.length Machine.presets);
  Alcotest.(check int) "catalog = presets @ zoo"
    (List.length Machine.presets + List.length Machine.zoo)
    (List.length Machine.catalog);
  let ids = List.map (fun (m : Machine.t) -> m.Machine.id) Machine.catalog in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun id ->
      match Machine.find ~id with
      | Some m -> Alcotest.(check string) "find returns the id" id m.Machine.id
      | None -> Alcotest.failf "find %s" id)
    ids;
  Alcotest.(check bool) "find misses politely" true (Machine.find ~id:"cray-1" = None)

let test_zoo_spans_regimes () =
  let gens =
    List.sort_uniq compare
      (List.map (fun (m : Machine.t) -> m.Machine.pcie.Pcie.generation) Machine.catalog)
  in
  Alcotest.(check bool) "gen1 through gen5 plus nvlink" true (List.length gens >= 6);
  Alcotest.(check bool) "an nvlink machine exists" true
    (List.exists (fun g -> g = Pcie.Nvlink2 || g = Pcie.Nvlink3) gens);
  Alcotest.(check bool) "a pageable-staging machine exists" true
    (List.exists (fun (m : Machine.t) -> m.Machine.staging = Machine.Pageable) Machine.zoo);
  (* Link bandwidth spans two orders of magnitude across the catalog. *)
  let bw =
    List.map (fun (m : Machine.t) -> Pcie.effective_bandwidth m.Machine.pcie) Machine.catalog
  in
  let lo = List.fold_left min (List.hd bw) bw and hi = List.fold_left max (List.hd bw) bw in
  Alcotest.(check bool) "dynamic range >= 50x" true (hi /. lo >= 50.0)

let test_paper_bandwidth_claims () =
  (* Section II-B quotes 77 GB/s for the FX 5600 and 32 GB/s for the
     E5645's memory system. *)
  Helpers.close_rel ~tolerance:0.01 "fx5600 dram" 76.8e9
    Gpp_arch.Gpu.quadro_fx_5600.Gpu.dram_bandwidth;
  Helpers.close_rel ~tolerance:0.01 "e5645 memory" 32e9 Cpu.xeon_e5645.Cpu.mem_bandwidth

let () =
  Alcotest.run "gpp_arch"
    [
      ( "gpu",
        [
          Alcotest.test_case "presets valid" `Quick test_gpu_presets_valid;
          Alcotest.test_case "derived quantities" `Quick test_gpu_derived;
          Alcotest.test_case "validation" `Quick test_gpu_validation_catches;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "presets valid" `Quick test_cpu_presets_valid;
          Alcotest.test_case "derived quantities" `Quick test_cpu_derived;
          Alcotest.test_case "validation" `Quick test_cpu_validation_catches;
        ] );
      ( "pcie",
        [
          Alcotest.test_case "bandwidth math" `Quick test_pcie_bandwidth_math;
          Alcotest.test_case "validation" `Quick test_pcie_validation;
        ] );
      ( "machine",
        [
          Alcotest.test_case "presets" `Quick test_machine_presets;
          Alcotest.test_case "zoo validates" `Quick test_zoo_valid;
          Alcotest.test_case "catalog shape" `Quick test_catalog_shape;
          Alcotest.test_case "zoo spans regimes" `Quick test_zoo_spans_regimes;
          Alcotest.test_case "paper claims" `Quick test_paper_bandwidth_claims;
        ] );
    ]
