(* Shared assertion helpers for the test suites. *)

let close ?(tolerance = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g, got %g (tolerance %g)" msg expected actual tolerance

let close_rel ?(tolerance = 0.05) msg expected actual =
  if expected = 0.0 then close ~tolerance msg expected actual
  else if Float.abs ((actual -. expected) /. expected) > tolerance then
    Alcotest.failf "%s: expected %g within %g%%, got %g" msg expected (tolerance *. 100.0) actual

let check_positive msg v = if v <= 0.0 then Alcotest.failf "%s: expected positive, got %g" msg v

let check_non_negative msg v =
  if v < 0.0 then Alcotest.failf "%s: expected non-negative, got %g" msg v

let check_in_range msg ~lo ~hi v =
  if v < lo || v > hi then Alcotest.failf "%s: expected in [%g, %g], got %g" msg lo hi v

let check_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg e

let check_error msg = function
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error (e : string) -> e

(* Variants of the two above for the structured core/engine errors. *)
let check_core msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg (Gpp_core.Error.to_string e)

let check_core_error msg = function
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error (e : Gpp_core.Error.t) -> e

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains msg ~needle haystack =
  if not (contains_substring ~needle haystack) then
    Alcotest.failf "%s: expected %S to appear" msg needle

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A small well-formed program used across suites: two kernels in a
   producer/consumer chain over 1-D arrays, plus a temporary. *)
let chain_program ?(n = 1024) () =
  let module Ir = Gpp_skeleton.Ir in
  let module Ix = Gpp_skeleton.Index_expr in
  let module Decl = Gpp_skeleton.Decl in
  let arrays =
    [
      Decl.dense "input" ~dims:[ n ];
      Decl.dense "middle" ~dims:[ n ];
      Decl.dense "output" ~dims:[ n ];
    ]
  in
  let producer =
    Ir.kernel "producer"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:[ Ir.load "input" [ Ix.var "i" ]; Ir.compute 2.0; Ir.store "middle" [ Ix.var "i" ] ]
  in
  let consumer =
    Ir.kernel "consumer"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:[ Ir.load "middle" [ Ix.var "i" ]; Ir.compute 3.0; Ir.store "output" [ Ix.var "i" ] ]
  in
  Gpp_skeleton.Program.create ~name:"chain" ~arrays ~kernels:[ producer; consumer ]
    ~schedule:[ Gpp_skeleton.Program.Call "producer"; Gpp_skeleton.Program.Call "consumer" ]
    ~temporaries:[ "middle" ] ()
