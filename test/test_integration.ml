(* End-to-end integration tests: the complete GROPHECY++ pipeline on
   hand-built skeletons, exercising every library together, plus the
   paper's headline claims. *)

module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program
module Grophecy = Gpp_core.Grophecy
module Evaluation = Gpp_core.Evaluation
module Analyzer = Gpp_dataflow.Analyzer

let machine = Gpp_arch.Machine.argonne_node

let session = lazy (Grophecy.init machine)

(* A hand-built matmul, as in examples/custom_workload.ml. *)
let matmul_program ~n =
  let arrays =
    [ Decl.dense "a" ~dims:[ n; n ]; Decl.dense "b" ~dims:[ n; n ]; Decl.dense "c" ~dims:[ n; n ] ]
  in
  let kernel =
    Ir.kernel "matmul"
      ~loops:
        [ Ir.loop "i" ~extent:n; Ir.loop "j" ~extent:n; Ir.loop ~parallel:false "k" ~extent:n ]
      ~body:
        [
          Ir.load "a" [ Ix.var "i"; Ix.var "k" ];
          Ir.load "b" [ Ix.var "k"; Ix.var "j" ];
          Ir.compute ~int_ops:1.0 2.0;
          Ir.branch ~divergent:false ~probability:(1.0 /. float_of_int n)
            [ Ir.load "c" [ Ix.var "i"; Ix.var "j" ]; Ir.store "c" [ Ix.var "i"; Ix.var "j" ] ];
        ]
  in
  Program.create ~name:"matmul" ~arrays ~kernels:[ kernel ] ~schedule:[ Program.Call "matmul" ] ()

let test_matmul_end_to_end () =
  let s = Lazy.force session in
  let n = 512 in
  let report = Helpers.check_core "analyze" (Grophecy.analyze s (matmul_program ~n)) in
  (* Transfer plan: all three matrices in (c is read-modify-write), one
     out. *)
  let plan = report.Grophecy.projection.Gpp_core.Projection.plan in
  Alcotest.(check int) "uploads" (3 * 4 * n * n) (Analyzer.input_bytes plan);
  Alcotest.(check int) "downloads" (4 * n * n) (Analyzer.output_bytes plan);
  (* Matmul reuses each element n times: the GPU should win end to end
     (unlike vecadd), and by less than the kernel-only projection. *)
  let sp = report.Grophecy.speedups in
  Alcotest.(check bool) "GPU wins" true (sp.Evaluation.measured > 1.0);
  Alcotest.(check bool) "kernel-only optimistic" true
    (sp.Evaluation.kernel_only > sp.Evaluation.with_transfer)

let test_vecadd_paper_story () =
  (* Section II-B: bandwidth-bound vecadd wins on the kernel, loses end
     to end once three bus crossings are paid. *)
  let s = Lazy.force session in
  let report =
    Helpers.check_core "analyze" (Grophecy.analyze s (Gpp_workloads.Vecadd.program ~n:(16 * 1024 * 1024)))
  in
  let sp = report.Grophecy.speedups in
  Alcotest.(check bool) "kernel alone looks great" true (sp.Evaluation.kernel_only > 2.0);
  Alcotest.(check bool) "end to end loses" true (sp.Evaluation.measured < 1.0);
  Alcotest.(check bool) "transfer-aware predicts the loss" true
    (sp.Evaluation.with_transfer < 1.0);
  (* Transfer volume is exactly three vectors. *)
  Alcotest.(check int) "three crossings" (3 * 4 * 16 * 1024 * 1024)
    (Analyzer.total_bytes report.Grophecy.projection.Gpp_core.Projection.plan)

let test_headline_error_reduction () =
  (* The paper's abstract: adding the transfer model reduces the average
     speedup-prediction error dramatically (255% -> 9% there).  Require
     a 5x reduction here, on a representative spread of workloads. *)
  let s = Lazy.force session in
  let reports =
    List.map
      (fun (inst : Gpp_workloads.Registry.instance) ->
        Helpers.check_core (Gpp_workloads.Registry.key inst)
          (Grophecy.analyze s (inst.Gpp_workloads.Registry.program 1)))
      Gpp_workloads.Registry.paper_instances
  in
  let mean select = Gpp_util.Stats.mean (List.map select reports) in
  let kernel_only = mean (fun r -> r.Grophecy.errors.Evaluation.kernel_only) in
  let with_transfer = mean (fun r -> r.Grophecy.errors.Evaluation.with_transfer) in
  Alcotest.(check bool)
    (Printf.sprintf "5x error reduction (%.0f%% -> %.0f%%)" kernel_only with_transfer)
    true
    (kernel_only > 5.0 *. with_transfer);
  Helpers.check_in_range "combined error is small" ~lo:0.0 ~hi:30.0 with_transfer

let test_transfer_overhead_prediction_accuracy () =
  (* Abstract: "our model predicts the data transfer overhead with an
     error of only 8%".  Require better than 25% on every workload. *)
  let s = Lazy.force session in
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let report =
        Helpers.check_core (Gpp_workloads.Registry.key inst)
          (Grophecy.analyze s (inst.Gpp_workloads.Registry.program 1))
      in
      Helpers.check_in_range
        (Gpp_workloads.Registry.key inst ^ " transfer error")
        ~lo:0.0 ~hi:25.0 report.Grophecy.transfer_error)
    Gpp_workloads.Registry.paper_instances

let test_cross_machine_projection () =
  (* The same skeleton projected on a faster machine: the modern node's
     GPU and bus should both beat the 2008 testbed. *)
  let argonne = Lazy.force session in
  let modern = Grophecy.init Gpp_arch.Machine.modern_node in
  let program = Gpp_workloads.Srad.program ~n:1024 () in
  let r_old = Helpers.check_core "argonne" (Grophecy.analyze argonne program) in
  let r_new = Helpers.check_core "modern" (Grophecy.analyze modern program) in
  Alcotest.(check bool) "newer GPU faster" true
    (r_new.Grophecy.projection.Gpp_core.Projection.kernel_time
    < r_old.Grophecy.projection.Gpp_core.Projection.kernel_time);
  Alcotest.(check bool) "newer bus faster" true
    (r_new.Grophecy.projection.Gpp_core.Projection.transfer_time
    < r_old.Grophecy.projection.Gpp_core.Projection.transfer_time)

let test_reproducibility_across_sessions () =
  (* Two sessions with the same seed produce identical reports. *)
  let program = Gpp_workloads.Hotspot.program ~n:256 () in
  let r1 =
    Helpers.check_core "r1" (Grophecy.analyze (Grophecy.init ~seed:123L machine) program)
  in
  let r2 =
    Helpers.check_core "r2" (Grophecy.analyze (Grophecy.init ~seed:123L machine) program)
  in
  Helpers.close "kernel time reproducible"
    r1.Grophecy.measurement.Gpp_core.Measurement.kernel_time
    r2.Grophecy.measurement.Gpp_core.Measurement.kernel_time;
  Helpers.close "transfer time reproducible"
    r1.Grophecy.measurement.Gpp_core.Measurement.transfer_time
    r2.Grophecy.measurement.Gpp_core.Measurement.transfer_time;
  Helpers.close "speedup reproducible" r1.Grophecy.speedups.Evaluation.measured
    r2.Grophecy.speedups.Evaluation.measured

let test_different_seeds_differ () =
  let program = Gpp_workloads.Hotspot.program ~n:256 () in
  let r1 =
    Helpers.check_core "r1" (Grophecy.analyze (Grophecy.init ~seed:1L machine) program)
  in
  let r2 =
    Helpers.check_core "r2" (Grophecy.analyze (Grophecy.init ~seed:2L machine) program)
  in
  Alcotest.(check bool) "seeds change measurements" true
    (r1.Grophecy.measurement.Gpp_core.Measurement.kernel_time
    <> r2.Grophecy.measurement.Gpp_core.Measurement.kernel_time)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "matmul" `Quick test_matmul_end_to_end;
          Alcotest.test_case "vecadd story" `Quick test_vecadd_paper_story;
          Alcotest.test_case "cross-machine" `Quick test_cross_machine_projection;
        ] );
      ( "paper headlines",
        [
          Alcotest.test_case "error reduction" `Slow test_headline_error_reduction;
          Alcotest.test_case "transfer accuracy" `Slow test_transfer_overhead_prediction_accuracy;
        ] );
      ( "reproducibility",
        [
          Alcotest.test_case "same seed" `Quick test_reproducibility_across_sessions;
          Alcotest.test_case "different seeds" `Quick test_different_seeds_differ;
        ] );
    ]
