(* The persistent (disk) tier of the projection cache: framing and
   checksum round-trips, the corruption matrix (every damaged store must
   load as cache misses, never as an error), restart-equivalent
   memo persistence down to the float bit pattern, and golden key
   vectors guarding against silent fingerprint-format drift (which
   would invalidate every cache on disk without anyone noticing). *)

module Store = Gpp_cache.Store
module Memo = Gpp_cache.Memo
module Control = Gpp_cache.Control
module Crc32 = Gpp_cache.Crc32
module F = Gpp_cache.Fingerprint

let tmp_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpp-store-test.%d" (int_of_float (Unix.gettimeofday () *. 1e3) mod 1_000_000))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  dir

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Store.path ~dir:tmp_dir ~table:(Printf.sprintf "t%d" !n)

let entry key payload = { Store.key; payload }

let entries_testable =
  Alcotest.(list (pair string string))

let pairs es = List.map (fun (e : Store.entry) -> (e.key, e.payload)) es

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* CRC-32 reference vectors (IEEE, reflected — same as gzip/PNG). *)
let test_crc32_vectors () =
  let check name expected s =
    Alcotest.(check int32) name expected (Crc32.string s)
  in
  check "empty" 0l "";
  check "check string" 0xCBF43926l "123456789";
  check "single byte" 0xE8B7BE43l "a";
  Alcotest.(check int32) "split = whole"
    (Crc32.string "hello world")
    (Crc32.strings [ "hello"; " "; "world" ])

(* Round trips *)

let test_save_load_roundtrip () =
  let path = fresh_path () in
  let entries = [ entry "k1" "v1"; entry "k2" (String.make 1000 '\000'); entry "" "" ] in
  (match Store.save ~path ~tag:"t" entries with
  | Ok bytes -> Alcotest.(check bool) "non-empty file" true (bytes > 0)
  | Error e -> Alcotest.failf "save failed: %s" e);
  let r = Store.load ~path ~tag:"t" in
  Alcotest.(check (option string)) "no header error" None
    (Option.map Store.describe_header_error r.Store.header);
  Alcotest.(check int) "nothing corrupt" 0 r.Store.corrupt;
  Alcotest.(check entries_testable) "entries survive byte-exact" (pairs entries)
    (pairs r.Store.entries)

let test_save_is_atomic_rename () =
  let path = fresh_path () in
  (match Store.save ~path ~tag:"t" [ entry "k" "v" ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  Alcotest.(check bool) "no staging file left behind" false
    (Sys.file_exists (Filename.chop_suffix path Store.suffix ^ Store.temp_suffix))

(* Corruption matrix: every damaged store loads as a (partial) cache
   miss without raising, and `verify` pins the damage. *)

let saved_entries = [ entry "alpha" "payload-one"; entry "beta" "payload-two"; entry "gamma" "payload-three" ]

let saved_store () =
  let path = fresh_path () in
  (match Store.save ~path ~tag:"t" saved_entries with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  path

let test_corrupt_truncated () =
  let path = saved_store () in
  let data = read_file path in
  write_file path (String.sub data 0 (String.length data - 7));
  let r = Store.load ~path ~tag:"t" in
  Alcotest.(check (option string)) "header still fine" None
    (Option.map Store.describe_header_error r.Store.header);
  Alcotest.(check int) "the cut tail is one corrupt region" 1 r.Store.corrupt;
  Alcotest.(check entries_testable) "intact prefix still loads"
    (pairs [ entry "alpha" "payload-one"; entry "beta" "payload-two" ])
    (pairs r.Store.entries);
  let v = Store.verify ~path in
  Alcotest.(check int) "verify counts the corruption" 1 v.Store.vcorrupt

let test_corrupt_flipped_byte () =
  let path = saved_store () in
  let data = Bytes.of_string (read_file path) in
  (* Flip a byte inside the second entry's payload (header is 8+4+4+1
     bytes for tag "t"; entry 1 is 8+5+11+4 bytes). *)
  let pos = 17 + 28 + 8 + 4 + 3 in
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0xFF));
  write_file path (Bytes.to_string data);
  let r = Store.load ~path ~tag:"t" in
  Alcotest.(check int) "one entry dropped" 1 r.Store.corrupt;
  Alcotest.(check entries_testable) "other entries unaffected"
    (pairs [ entry "alpha" "payload-one"; entry "gamma" "payload-three" ])
    (pairs r.Store.entries);
  let v = Store.verify ~path in
  Alcotest.(check int) "verify sees 3 entries" 3 v.Store.total;
  Alcotest.(check int) "verify flags exactly one" 1 v.Store.vcorrupt

let test_corrupt_stale_version () =
  let path = saved_store () in
  let data = Bytes.of_string (read_file path) in
  Bytes.set_int32_le data 8 99l;
  write_file path (Bytes.to_string data);
  let r = Store.load ~path ~tag:"t" in
  Alcotest.(check entries_testable) "whole file skipped" [] (pairs r.Store.entries);
  (match r.Store.header with
  | Some (Store.Bad_version 99) -> ()
  | other ->
      Alcotest.failf "expected Bad_version 99, got %s"
        (match other with Some e -> Store.describe_header_error e | None -> "no error"))

let test_corrupt_stale_tag () =
  let path = saved_store () in
  let r = Store.load ~path ~tag:"another-schema" in
  Alcotest.(check entries_testable) "whole file skipped" [] (pairs r.Store.entries);
  match r.Store.header with
  | Some (Store.Bad_tag "t") -> ()
  | _ -> Alcotest.fail "expected Bad_tag"

let test_corrupt_empty_file () =
  let path = fresh_path () in
  write_file path "";
  let r = Store.load ~path ~tag:"t" in
  Alcotest.(check entries_testable) "no entries" [] (pairs r.Store.entries);
  (match r.Store.header with
  | Some Store.Truncated_header -> ()
  | _ -> Alcotest.fail "expected Truncated_header");
  let v = Store.verify ~path in
  Alcotest.(check bool) "verify reports it" true (v.Store.vheader <> None)

let test_corrupt_bad_magic () =
  let path = saved_store () in
  let data = Bytes.of_string (read_file path) in
  Bytes.set data 0 'X';
  write_file path (Bytes.to_string data);
  match (Store.load ~path ~tag:"t").Store.header with
  | Some Store.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic"

let test_missing_file_is_cold () =
  let r = Store.load ~path:(Filename.concat tmp_dir "never-written.gppc") ~tag:"t" in
  match r.Store.header with
  | Some Store.Missing -> Alcotest.(check int) "no corruption reported" 0 r.Store.corrupt
  | _ -> Alcotest.fail "expected Missing"

let test_leftover_temp_file_ignored () =
  let dir = Filename.concat tmp_dir "tmpcase" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = Store.path ~dir ~table:"w" in
  (match Store.save ~path ~tag:"t" saved_entries with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  (* A concurrent writer died mid-stage: its temp file must neither be
     listed nor loaded, and clear sweeps it. *)
  write_file (Filename.concat dir ("w" ^ Store.temp_suffix)) "half-written garbage";
  Alcotest.(check (list string)) "only the real store is listed" [ path ] (Store.list_dir ~dir);
  let r = Store.load ~path ~tag:"t" in
  Alcotest.(check int) "store loads cleanly" 0 r.Store.corrupt;
  Alcotest.(check int) "clear removes store and leftover" 2 (Store.clear_dir ~dir);
  Alcotest.(check (list string)) "directory swept" [] (Store.list_dir ~dir)

(* Memo persistence: flush + clear + load behaves like a process
   restart, bit-identically. *)

let test_memo_restart_roundtrip () =
  Control.set_enabled true;
  Control.set_disk_enabled true;
  let dir = Filename.concat tmp_dir "restart" in
  let memo : float Memo.t = Memo.create ~name:"test.restart" ~capacity:16 () in
  Memo.persist ~schema:1 memo;
  let v1 = Float.of_string "0x1.921fb54442d18p+1" in
  let v2 = -0.0 in
  ignore (Memo.find_or_add memo ~key:"pi" (fun () -> v1));
  ignore (Memo.find_or_add memo ~key:"negzero" (fun () -> v2));
  Memo.flush_disk ~dir ();
  Memo.clear memo;
  Memo.load_disk ~dir ();
  let recompute = ref 0 in
  let r1 = Memo.find_or_add memo ~key:"pi" (fun () -> incr recompute; 0.0) in
  let r2 = Memo.find_or_add memo ~key:"negzero" (fun () -> incr recompute; 0.0) in
  Alcotest.(check int) "both served from disk, nothing recomputed" 0 !recompute;
  Alcotest.(check bool) "pi round-trips bit-identically" true
    (Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float r1));
  Alcotest.(check bool) "-0. round-trips bit-identically" true
    (Int64.equal (Int64.bits_of_float v2) (Int64.bits_of_float r2));
  match (Memo.snapshot memo).Memo.disk with
  | Some d ->
      Alcotest.(check int) "disk stats: loaded" 2 d.Memo.loaded;
      Alcotest.(check int) "disk stats: nothing rejected" 0 d.Memo.rejected
  | None -> Alcotest.fail "expected disk stats after a load"

let test_memo_schema_bump_invalidates () =
  Control.set_enabled true;
  Control.set_disk_enabled true;
  let dir = Filename.concat tmp_dir "schema" in
  let old_memo : int Memo.t = Memo.create ~name:"test.schema" ~capacity:4 () in
  Memo.persist ~schema:1 old_memo;
  ignore (Memo.find_or_add old_memo ~key:"k" (fun () -> 42));
  Memo.flush_disk ~dir ();
  (* A "new build" whose value type changed shape bumps the schema; the
     old file must be skipped wholesale, not misdecoded. *)
  let new_memo : string Memo.t = Memo.create ~name:"test.schema" ~capacity:4 () in
  Memo.persist ~schema:2 new_memo;
  Memo.load_disk ~dir ();
  let computed = ref false in
  let v = Memo.find_or_add new_memo ~key:"k" (fun () -> computed := true; "fresh") in
  Alcotest.(check bool) "stale schema forces a recompute" true !computed;
  Alcotest.(check string) "fresh value" "fresh" v

(* Incremental flush: a periodic flush mid-run persists everything
   inserted so far, so a kill (no exit flush) only loses the entries
   computed after the last flush — not everything since startup. *)
let test_memo_incremental_flush_survives_kill () =
  Control.set_enabled true;
  Control.set_disk_enabled true;
  let dir = Filename.concat tmp_dir "kill" in
  let memo : int Memo.t = Memo.create ~name:"test.kill" ~capacity:16 () in
  Memo.persist memo;
  ignore (Memo.find_or_add memo ~key:"a" (fun () -> 1));
  ignore (Memo.find_or_add memo ~key:"b" (fun () -> 2));
  Memo.flush_disk ~dir ();
  (* Computed after the periodic flush, then the process is killed —
     no further flush ever runs. *)
  ignore (Memo.find_or_add memo ~key:"c" (fun () -> 3));
  (* "Restart": a fresh table under the same name reloads the store. *)
  let reborn : int Memo.t = Memo.create ~name:"test.kill" ~capacity:16 () in
  Memo.persist reborn;
  Memo.load_disk ~dir ();
  let recompute = ref 0 in
  let a = Memo.find_or_add reborn ~key:"a" (fun () -> incr recompute; 0) in
  let b = Memo.find_or_add reborn ~key:"b" (fun () -> incr recompute; 0) in
  Alcotest.(check int) "flushed entries survive the kill" 0 !recompute;
  Alcotest.(check (pair int int)) "values intact" (1, 2) (a, b);
  let c = Memo.find_or_add reborn ~key:"c" (fun () -> incr recompute; 33) in
  Alcotest.(check int) "only the unflushed tail is lost" 1 !recompute;
  Alcotest.(check int) "tail recomputes fine" 33 c

(* flush_disk is idempotent: with no mutations since the last flush the
   store file is not rewritten at all (observable by tampering with the
   file — a skipped flush leaves the tampering in place), and a single
   mutation re-arms it. *)
let test_memo_flush_skips_when_clean () =
  Control.set_enabled true;
  Control.set_disk_enabled true;
  let dir = Filename.concat tmp_dir "idem" in
  let memo : int Memo.t = Memo.create ~name:"test.idem" ~capacity:16 () in
  Memo.persist memo;
  ignore (Memo.find_or_add memo ~key:"k" (fun () -> 7));
  Alcotest.(check bool) "mutations pending before flush" true (Memo.dirty_entries () > 0);
  Memo.flush_disk ~dir ();
  Alcotest.(check int) "flush syncs every table" 0 (Memo.dirty_entries ());
  let path = Store.path ~dir ~table:"test.idem" in
  write_file path "tampered";
  Memo.flush_disk ~dir ();
  Alcotest.(check string) "clean flush skips the rewrite" "tampered" (read_file path);
  ignore (Memo.find_or_add memo ~key:"k2" (fun () -> 8));
  Memo.flush_disk ~dir ();
  Alcotest.(check bool) "one mutation re-arms the flush" true (read_file path <> "tampered");
  let r = Store.load ~path ~tag:(Printf.sprintf "test.idem;schema=1;ocaml=%s;word=%d" Sys.ocaml_version Sys.word_size) in
  Alcotest.(check int) "rewritten store holds both entries" 2 (List.length r.Store.entries)

(* Lookups and inserts proceed while another domain flushes in a loop:
   no corruption, no deadlock, and the final flush captures the full
   keyspace. *)
let test_memo_flush_concurrent_with_lookups () =
  Control.set_enabled true;
  Control.set_disk_enabled true;
  let dir = Filename.concat tmp_dir "conc" in
  let memo : int Memo.t = Memo.create ~name:"test.conc" ~capacity:128 () in
  Memo.persist memo;
  let stop = Atomic.make false in
  let flushes = Atomic.make 0 in
  let flusher =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Memo.flush_disk ~dir ();
          Atomic.incr flushes
        done)
  in
  (* Keep the lookup traffic going until several flushes have landed
     underneath it, so the two genuinely overlap. *)
  let i = ref 0 in
  while Atomic.get flushes < 3 && !i < 5_000_000 do
    let k = !i mod 100 in
    let v = Memo.find_or_add memo ~key:(Printf.sprintf "k%d" k) (fun () -> k * 3) in
    if v <> k * 3 then failwith (Printf.sprintf "corrupt value for k%d: %d" k v);
    incr i
  done;
  Atomic.set stop true;
  Domain.join flusher;
  Alcotest.(check bool) "flusher made progress" true (Atomic.get flushes > 0);
  Memo.flush_disk ~dir ();
  let reborn : int Memo.t = Memo.create ~name:"test.conc" ~capacity:128 () in
  Memo.persist reborn;
  Memo.load_disk ~dir ();
  let recompute = ref 0 in
  for k = 0 to 99 do
    ignore (Memo.find_or_add reborn ~key:(Printf.sprintf "k%d" k) (fun () -> incr recompute; k * 3))
  done;
  Alcotest.(check int) "final flush captured the full keyspace" 0 !recompute

let test_no_cache_disables_disk () =
  Control.set_enabled true;
  Control.set_disk_enabled true;
  let dir = Filename.concat tmp_dir "nocache" in
  let memo : int Memo.t = Memo.create ~name:"test.nocache" ~capacity:4 () in
  Memo.persist memo;
  ignore (Memo.find_or_add memo ~key:"k" (fun () -> 1));
  Control.set_enabled false;
  Memo.flush_disk ~dir ();
  Control.set_enabled true;
  Alcotest.(check bool) "globally disabled cache never writes stores" false
    (Sys.file_exists (Store.path ~dir ~table:"test.nocache"));
  Control.set_disk_enabled false;
  Memo.flush_disk ~dir ();
  Alcotest.(check bool) "disk switch alone also blocks" false
    (Sys.file_exists (Store.path ~dir ~table:"test.nocache"));
  Control.set_disk_enabled true;
  Memo.flush_disk ~dir ();
  Alcotest.(check bool) "enabled again, the flush lands" true
    (Sys.file_exists (Store.path ~dir ~table:"test.nocache"))

(* Cache-dir resolution chain *)

let test_dir_resolution () =
  Unix.putenv "GPP_CACHE_DIR" "/tmp/from-env";
  Alcotest.(check string) "GPP_CACHE_DIR wins the env chain" "/tmp/from-env"
    (Control.default_dir ());
  Unix.putenv "GPP_CACHE_DIR" "";
  Unix.putenv "XDG_CACHE_HOME" "/tmp/xdg";
  Alcotest.(check string) "then XDG_CACHE_HOME/grophecy"
    (Filename.concat "/tmp/xdg" "grophecy")
    (Control.default_dir ());
  Unix.putenv "XDG_CACHE_HOME" "";
  Unix.putenv "HOME" "/tmp/home";
  Alcotest.(check string) "then ~/.cache/grophecy" "/tmp/home/.cache/grophecy"
    (Control.default_dir ());
  Control.set_dir "/tmp/explicit";
  Alcotest.(check string) "--cache-dir beats everything" "/tmp/explicit" (Control.dir ())

(* Properties *)

let entry_gen =
  QCheck.(
    pair (string_gen_of_size Gen.(0 -- 32) Gen.char) (string_gen_of_size Gen.(0 -- 256) Gen.char))

let prop_roundtrip =
  QCheck.Test.make ~count:50 ~name:"store round-trips arbitrary binary entries"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) entry_gen)
    (fun raw ->
      let entries = List.map (fun (k, p) -> entry k p) raw in
      let path = fresh_path () in
      match Store.save ~path ~tag:"prop" entries with
      | Error e -> QCheck.Test.fail_reportf "save failed: %s" e
      | Ok _ ->
          let r = Store.load ~path ~tag:"prop" in
          r.Store.corrupt = 0 && r.Store.header = None && pairs r.Store.entries = raw)

let prop_floats_bit_identical =
  QCheck.Test.make ~count:200 ~name:"floats survive the disk tier bit-identically"
    QCheck.float (fun f ->
      let path = fresh_path () in
      let payload = Marshal.to_string f [] in
      match Store.save ~path ~tag:"f" [ entry "k" payload ] with
      | Error e -> QCheck.Test.fail_reportf "save failed: %s" e
      | Ok _ -> (
          match (Store.load ~path ~tag:"f").Store.entries with
          | [ e ] ->
              Int64.equal (Int64.bits_of_float f)
                (Int64.bits_of_float (Marshal.from_string e.Store.payload 0))
          | _ -> false))

(* Golden key vectors: fingerprints of fixed structures, checked against
   test/golden_keys.expected.  A mismatch means the fingerprint format
   changed — which silently invalidates every store file in the wild —
   so it must be a conscious decision (regenerate the file and say so in
   the changelog), never an accident. *)

let golden_values () =
  let module Ir = Gpp_skeleton.Ir in
  let module Ix = Gpp_skeleton.Index_expr in
  let module Decl = Gpp_skeleton.Decl in
  let kernel =
    Ir.kernel "golden"
      ~loops:[ Ir.loop "i" ~extent:4096 ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 2.0; Ir.store "b" [ Ix.var "i" ] ]
  in
  let characteristics =
    Gpp_model.Characteristics.create ~kernel_name:"golden" ~grid_blocks:32 ~threads_per_block:128
      ~flops_per_thread:2.0 ~load_insts_per_thread:1.0 ~store_insts_per_thread:1.0
      ~load_transactions_per_warp:2.0 ~store_transactions_per_warp:2.0 ()
  in
  [
    ( "primitives",
      F.of_value
        (fun fp () ->
          F.add_string fp "grophecy";
          F.add_int fp 2013;
          F.add_int64 fp 0x1B0A_2013_6CA1_55AAL;
          F.add_float fp 2.5e9;
          F.add_float fp (-0.0);
          F.add_bool fp true;
          F.add_int_list fp [ 64; 128; 256 ];
          F.add_list fp F.add_string [ "a"; "bc" ])
        () );
    ("kernel", Ir.fingerprint kernel);
    ("decl", Decl.fingerprint (Decl.dense "a" ~elem_bytes:8 ~dims:[ 64; 64 ]));
    ("gpu", Gpp_arch.Gpu.fingerprint Gpp_arch.Machine.argonne_node.Gpp_arch.Machine.gpu);
    ("characteristics", Gpp_model.Characteristics.fingerprint characteristics);
    ( "analytic-params",
      F.of_value Gpp_model.Analytic.add_params_fingerprint Gpp_model.Analytic.default_params );
  ]

let test_golden_key_vectors () =
  let actual =
    golden_values ()
    |> List.map (fun (name, digest) -> Printf.sprintf "%s %s\n" name digest)
    |> String.concat ""
  in
  let expected = In_channel.with_open_text "golden_keys.expected" In_channel.input_all in
  if not (String.equal expected actual) then
    Alcotest.failf
      "fingerprint format drift — cache keys no longer match the pinned vectors, which \
       silently invalidates every persistent store in the wild.  If the change is \
       intentional, update test/golden_keys.expected to:\n%s" actual

let () =
  let t name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "store"
    [
      ("crc32", [ t "reference vectors" test_crc32_vectors ]);
      ( "roundtrip",
        [ t "save/load" test_save_load_roundtrip; t "atomic rename" test_save_is_atomic_rename ]
      );
      ( "corruption-matrix",
        [
          t "truncated file" test_corrupt_truncated;
          t "flipped byte" test_corrupt_flipped_byte;
          t "stale version" test_corrupt_stale_version;
          t "stale tag" test_corrupt_stale_tag;
          t "empty file" test_corrupt_empty_file;
          t "bad magic" test_corrupt_bad_magic;
          t "missing file" test_missing_file_is_cold;
          t "leftover temp file" test_leftover_temp_file_ignored;
        ] );
      ( "memo-persistence",
        [
          t "restart round-trip is bit-identical" test_memo_restart_roundtrip;
          t "schema bump invalidates" test_memo_schema_bump_invalidates;
          t "incremental flush survives a kill" test_memo_incremental_flush_survives_kill;
          t "clean flush skips the rewrite" test_memo_flush_skips_when_clean;
          t "flush concurrent with lookups" test_memo_flush_concurrent_with_lookups;
          t "--no-cache disables the disk tier" test_no_cache_disables_disk;
        ] );
      ("resolution", [ t "cache-dir chain" test_dir_resolution ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_floats_bit_identical ] );
      ("golden", [ t "key vectors" test_golden_key_vectors ]);
    ]
