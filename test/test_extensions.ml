(* Tests for the future-work extensions: allocation cost, memory-type
   choice, temporal fusion, and transfer/compute overlap. *)

module Link = Gpp_pcie.Link
module Allocation = Gpp_pcie.Allocation
module Memory_choice = Gpp_pcie.Memory_choice
module Fusion = Gpp_transform.Fusion
module Overlap = Gpp_core.Overlap
module Units = Gpp_util.Units

let machine = Gpp_arch.Machine.argonne_node

let link = lazy (Link.create (Link.default_config machine))

(* Allocation *)

let test_allocation_costs () =
  let pinned = Allocation.allocation_time Link.Pinned ~bytes:Units.mib in
  let pageable = Allocation.allocation_time Link.Pageable ~bytes:Units.mib in
  Alcotest.(check bool) "pinning is much more expensive" true (pinned > 5.0 *. pageable);
  (* Costs grow with size (per-page terms). *)
  Alcotest.(check bool) "grows with size" true
    (Allocation.allocation_time Link.Pinned ~bytes:(16 * Units.mib) > pinned);
  (* Zero-byte allocation still pays the base cost. *)
  Helpers.check_positive "base cost" (Allocation.allocation_time Link.Pinned ~bytes:0);
  Helpers.check_raises_invalid "negative" (fun () ->
      ignore (Allocation.allocation_time Link.Pinned ~bytes:(-1)))

let test_allocation_amortization () =
  let one = Allocation.amortized_time Link.Pinned ~bytes:Units.mib ~reuses:1 in
  let ten = Allocation.amortized_time Link.Pinned ~bytes:Units.mib ~reuses:10 in
  Helpers.close_rel ~tolerance:1e-9 "amortizes linearly" (one /. 10.0) ten;
  Helpers.check_raises_invalid "zero reuses" (fun () ->
      ignore (Allocation.amortized_time Link.Pinned ~bytes:1 ~reuses:0))

(* Memory choice *)

let h2d_models = lazy (Memory_choice.models_for (Lazy.force link) Link.Host_to_device)

let test_choice_one_shot_small_prefers_pageable () =
  let d = Memory_choice.choose (Lazy.force h2d_models) ~bytes:(64 * Units.kib) ~reuses:1 in
  Alcotest.(check bool) "one-shot small: pageable" true (d.Memory_choice.memory = Link.Pageable);
  Helpers.check_positive "saving" d.Memory_choice.saving

let test_choice_reused_large_prefers_pinned () =
  let d = Memory_choice.choose (Lazy.force h2d_models) ~bytes:(64 * Units.mib) ~reuses:100 in
  Alcotest.(check bool) "reused large: pinned" true (d.Memory_choice.memory = Link.Pinned)

let test_choice_consistency () =
  let models = Lazy.force h2d_models in
  let d = Memory_choice.choose models ~bytes:(4 * Units.mib) ~reuses:3 in
  (* The decision must pick the smaller total. *)
  let winner, loser =
    if d.Memory_choice.memory = Link.Pinned then
      (d.Memory_choice.pinned_total, d.Memory_choice.pageable_total)
    else (d.Memory_choice.pageable_total, d.Memory_choice.pinned_total)
  in
  Alcotest.(check bool) "winner cheaper" true (winner <= loser);
  Helpers.close ~tolerance:1e-12 "saving = gap" (loser -. winner) d.Memory_choice.saving

let test_break_even_monotone_in_size () =
  let models = Lazy.force h2d_models in
  let be bytes = Memory_choice.break_even_reuses models ~bytes in
  (* Large buffers justify pinning after fewer reuses than small ones. *)
  match (be (64 * Units.kib), be (64 * Units.mib)) with
  | Some small, Some large ->
      Alcotest.(check bool) "large breaks even earlier" true (large <= small)
  | None, Some _ -> () (* small never pays: even stronger *)
  | _, None -> Alcotest.fail "64 MiB should justify pinning"

let test_break_even_is_tight () =
  let models = Lazy.force h2d_models in
  match Memory_choice.break_even_reuses models ~bytes:Units.mib with
  | None -> Alcotest.fail "1 MiB should eventually justify pinning"
  | Some n ->
      let at k = (Memory_choice.choose models ~bytes:Units.mib ~reuses:k).Memory_choice.memory in
      Alcotest.(check bool) "wins at n" true (at n = Link.Pinned);
      if n > 1 then Alcotest.(check bool) "loses at n-1" true (at (n - 1) = Link.Pageable)

(* Fusion *)

let gpu = machine.Gpp_arch.Machine.gpu

let hotspot_iterated = Gpp_workloads.Hotspot.program ~iterations:50 ~n:512 ()

let test_fusion_eligibility () =
  Alcotest.(check bool) "iterated hotspot eligible" true
    (Fusion.eligible hotspot_iterated <> None);
  (* One iteration: nothing to fuse. *)
  Alcotest.(check bool) "single iteration not eligible" true
    (Fusion.eligible (Gpp_workloads.Hotspot.program ~iterations:1 ~n:512 ()) = None);
  (* Two kernels per iteration: not a single repeated stencil. *)
  Alcotest.(check bool) "srad not eligible" true
    (Fusion.eligible (Gpp_workloads.Srad.program ~iterations:50 ~n:512 ()) = None);
  (* No stencil: not eligible. *)
  Alcotest.(check bool) "vecadd not eligible" true
    (Fusion.eligible (Gpp_workloads.Vecadd.program ~n:4096) = None)

let test_fusion_factor_one_matches_tiled_synthesis () =
  let e = Option.get (Fusion.eligible hotspot_iterated) in
  let config = { (Gpp_transform.Synthesize.scalar ~threads_per_block:256) with
      Gpp_transform.Synthesize.shared_tiling = true } in
  let fused =
    Helpers.check_ok "f=1"
      (Fusion.fused_characteristics ~gpu ~decls:hotspot_iterated.Gpp_skeleton.Program.arrays
         e.Fusion.kernel ~config ~factor:1)
  in
  let plain =
    Helpers.check_ok "tiled"
      (Gpp_transform.Synthesize.characteristics ~gpu
         ~decls:hotspot_iterated.Gpp_skeleton.Program.arrays e.Fusion.kernel config)
  in
  (* Same grid and same order of magnitude of global loads. *)
  Alcotest.(check int) "same grid"
    plain.Gpp_model.Characteristics.grid_blocks fused.Gpp_model.Characteristics.grid_blocks;
  Helpers.check_in_range "comparable loads" ~lo:0.3 ~hi:3.0
    (fused.Gpp_model.Characteristics.load_insts_per_thread
    /. plain.Gpp_model.Characteristics.load_insts_per_thread)

let test_fusion_reduces_per_step_traffic () =
  let e = Option.get (Fusion.eligible hotspot_iterated) in
  let config = { (Gpp_transform.Synthesize.scalar ~threads_per_block:256) with
      Gpp_transform.Synthesize.shared_tiling = true } in
  let chars factor =
    Helpers.check_ok "chars"
      (Fusion.fused_characteristics ~gpu ~decls:hotspot_iterated.Gpp_skeleton.Program.arrays
         e.Fusion.kernel ~config ~factor)
  in
  let f1 = chars 1 and f4 = chars 4 in
  (* Per fused step, the tile round trip amortizes: loads per step drop. *)
  Alcotest.(check bool) "per-step loads drop" true
    (f4.Gpp_model.Characteristics.load_insts_per_thread /. 4.0
    < f1.Gpp_model.Characteristics.load_insts_per_thread);
  (* But compute per launch grows superlinearly (halo redundancy). *)
  Alcotest.(check bool) "redundant compute" true
    (f4.Gpp_model.Characteristics.flops_per_thread
    > 4.0 *. f1.Gpp_model.Characteristics.flops_per_thread);
  Alcotest.(check bool) "bigger tile in shared memory" true
    (f4.Gpp_model.Characteristics.shared_mem_per_block
    > f1.Gpp_model.Characteristics.shared_mem_per_block)

let test_fusion_infeasible_factor () =
  let e = Option.get (Fusion.eligible hotspot_iterated) in
  let config =
    { (Gpp_transform.Synthesize.scalar ~threads_per_block:64) with
      Gpp_transform.Synthesize.shared_tiling = true }
  in
  (* Tile side 8; factor 8 needs halo 16 >= 8: infeasible. *)
  ignore
    (Helpers.check_error "halo exceeds tile"
       (Fusion.fused_characteristics ~gpu ~decls:hotspot_iterated.Gpp_skeleton.Program.arrays
          e.Fusion.kernel ~config ~factor:8))

let test_fusion_plan_covers_iterations () =
  let p = Helpers.check_ok "plan" (Fusion.plan ~gpu hotspot_iterated ~factor:4) in
  (* 50 iterations at factor 4: 13 launches. *)
  Alcotest.(check int) "launch count" 13 p.Fusion.launches;
  Helpers.close_rel ~tolerance:1e-9 "total = launches x launch"
    (float_of_int p.Fusion.launches *. p.Fusion.launch_time)
    p.Fusion.total_time

let test_fusion_best_factor_sorted () =
  let plans = Helpers.check_ok "best" (Fusion.best_factor ~gpu hotspot_iterated) in
  Alcotest.(check bool) "non-empty" true (plans <> []);
  let totals = List.map (fun p -> p.Fusion.total_time) plans in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare totals = totals);
  ignore
    (Helpers.check_error "ineligible program"
       (Fusion.best_factor ~gpu (Gpp_workloads.Vecadd.program ~n:4096)))

(* Overlap *)

let session = lazy (Gpp_core.Grophecy.init machine)

let projection_of program =
  let s = Lazy.force session in
  Helpers.check_core "project"
    (Gpp_core.Projection.project ~pricing:s.Gpp_core.Grophecy.pricing program)

let test_overlap_chunk_one_is_serial () =
  let p = projection_of (Gpp_workloads.Srad.program ~n:512 ()) in
  let o = Overlap.project ~chunks:1 p in
  Helpers.close_rel ~tolerance:1e-6 "1 chunk = serial" o.Overlap.serial_total
    o.Overlap.overlapped_total;
  Helpers.close ~tolerance:1e-12 "no saving" 0.0 o.Overlap.saving

let test_overlap_saves_on_transfer_bound () =
  let p = projection_of (Gpp_workloads.Srad.program ~n:1024 ()) in
  let o = Overlap.project ~chunks:8 p in
  Alcotest.(check bool) "streaming saves time" true (o.Overlap.saving > 0.0);
  Alcotest.(check bool) "never worse than serial" true
    (o.Overlap.overlapped_total <= o.Overlap.serial_total);
  (* Lower bound: streaming can hide transfers, never the kernel. *)
  Alcotest.(check bool) "bounded below by kernel time" true
    (o.Overlap.overlapped_total >= p.Gpp_core.Projection.kernel_time)

let test_overlap_best_chunks () =
  let p = projection_of (Gpp_workloads.Cfd.program ~nelem:97_000 ()) in
  let best = Overlap.best_chunks p in
  List.iter
    (fun chunks ->
      Alcotest.(check bool) "best is minimal" true
        ((Overlap.project ~chunks p).Overlap.overlapped_total
        >= best.Overlap.overlapped_total -. 1e-12))
    [ 1; 2; 4; 8; 16 ];
  Helpers.check_raises_invalid "bad chunks" (fun () -> ignore (Overlap.project ~chunks:0 p))

let test_overlap_cannot_flip_stassuij () =
  (* Even best-case streaming keeps Stassuij a slowdown: the bus is the
     bottleneck. *)
  let program = Gpp_workloads.Stassuij.program () in
  let p = projection_of program in
  let o = Overlap.best_chunks p in
  let cpu = Gpp_core.Evaluation.cpu_time ~machine program in
  Alcotest.(check bool) "still a loss when streamed" true
    (cpu /. o.Overlap.overlapped_total < 1.0)

(* Roofline sweep *)

let test_roofline_shape () =
  let ctx = Gpp_experiments.Context.create () in
  let pts = Gpp_experiments.Extensions.roofline_points ctx in
  (* Model and simulator agree within 50% everywhere. *)
  List.iter
    (fun (p : Gpp_experiments.Extensions.roofline_point) ->
      Helpers.check_in_range
        (Printf.sprintf "agreement at %.0f flops" p.flops_per_thread)
        ~lo:0.5 ~hi:1.5
        (p.model_time /. p.sim_time))
    pts;
  (* Low intensity is memory-bound and flat; high intensity is
     compute-bound and grows. *)
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  Alcotest.(check bool) "starts memory-bound" true
    (first.model_bound = Gpp_model.Analytic.Memory_bound);
  Alcotest.(check bool) "ends compute-bound" true
    (last.model_bound = Gpp_model.Analytic.Compute_bound);
  Alcotest.(check bool) "compute slope" true (last.sim_time > 2.0 *. first.sim_time);
  let second = List.nth pts 1 in
  Helpers.close_rel ~tolerance:0.05 "memory plateau" first.sim_time second.sim_time

let () =
  Alcotest.run "extensions"
    [
      ( "allocation",
        [
          Alcotest.test_case "costs" `Quick test_allocation_costs;
          Alcotest.test_case "amortization" `Quick test_allocation_amortization;
        ] );
      ( "memory_choice",
        [
          Alcotest.test_case "one-shot small" `Quick test_choice_one_shot_small_prefers_pageable;
          Alcotest.test_case "reused large" `Quick test_choice_reused_large_prefers_pinned;
          Alcotest.test_case "consistency" `Quick test_choice_consistency;
          Alcotest.test_case "break-even monotone" `Quick test_break_even_monotone_in_size;
          Alcotest.test_case "break-even tight" `Quick test_break_even_is_tight;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "eligibility" `Quick test_fusion_eligibility;
          Alcotest.test_case "factor one" `Quick test_fusion_factor_one_matches_tiled_synthesis;
          Alcotest.test_case "traffic vs redundancy" `Quick test_fusion_reduces_per_step_traffic;
          Alcotest.test_case "infeasible factor" `Quick test_fusion_infeasible_factor;
          Alcotest.test_case "plan" `Quick test_fusion_plan_covers_iterations;
          Alcotest.test_case "best factor" `Quick test_fusion_best_factor_sorted;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "one chunk is serial" `Quick test_overlap_chunk_one_is_serial;
          Alcotest.test_case "saves on transfer-bound" `Quick test_overlap_saves_on_transfer_bound;
          Alcotest.test_case "best chunks" `Quick test_overlap_best_chunks;
          Alcotest.test_case "stassuij stays a loss" `Quick test_overlap_cannot_flip_stassuij;
        ] );
      ("roofline", [ Alcotest.test_case "shape" `Slow test_roofline_shape ]);
    ]
