(* Domain-parallelism tests: the work-stealing pool's scheduling
   contract, the batch runner's jobs-invariance (byte-identical TSV at
   every --jobs value, including against the committed golden), memo
   tables hammered from several domains at once, and the obs layer's
   counters and span stacks under concurrency. *)

module Engine = Gpp_engine
module Config = Gpp_engine.Config
module Pool = Gpp_engine.Pool
module Memo = Gpp_cache.Memo
module Obs = Gpp_obs.Obs

(* --- pool ------------------------------------------------------------ *)

(* Every index runs exactly once, whatever the worker count.  The slots
   are disjoint per index, so the unsynchronized writes are safe and the
   joins in Pool.run order them before the reads. *)
let test_pool_covers_indices () =
  List.iter
    (fun (jobs, n) ->
      let hits = Array.make (max n 1) 0 in
      Pool.run ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i c ->
          if i < n && c <> 1 then Alcotest.failf "jobs=%d: index %d ran %d times" jobs i c;
          if i >= n && c <> 0 then Alcotest.failf "jobs=%d: phantom index %d" jobs i)
        hits)
    [ (1, 100); (2, 100); (8, 100); (3, 1); (4, 0); (64, 50) ]

(* Out-of-range worker counts are rejected, not silently clamped:
   --jobs 200 must not quietly run on 64 domains. *)
let test_pool_rejects_out_of_range_jobs () =
  List.iter
    (fun jobs ->
      match Pool.run ~jobs 10 (fun _ -> ()) with
      | () -> Alcotest.failf "jobs=%d: expected Invalid_argument" jobs
      | exception Invalid_argument _ -> ())
    [ 0; -1; Pool.max_jobs + 1; 1000 ]

(* The same range is enforced at the config layer, as a structured
   config error (exit 2) whichever layer supplied the value. *)
let test_config_rejects_out_of_range_jobs () =
  let getenv = function "GPP_JOBS" -> Some "200" | _ -> None in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  (match Config.resolve ~getenv () with
  | Ok _ -> Alcotest.fail "GPP_JOBS=200: expected a config error"
  | Error e ->
      Alcotest.(check int) "exit code" 2 (Gpp_core.Error.exit_code e);
      let msg = Gpp_core.Error.message e in
      Alcotest.(check bool) ("mentions range: " ^ msg) true (contains ~sub:"out of range" msg));
  let overrides = { Config.no_overrides with o_jobs = Some 0 } in
  match Config.resolve ~getenv:(fun _ -> None) ~overrides () with
  | Ok _ -> Alcotest.fail "--jobs 0: expected a config error"
  | Error e -> Alcotest.(check int) "exit code" 2 (Gpp_core.Error.exit_code e)

let test_pool_sequential_order () =
  let seen = ref [] in
  Pool.run ~jobs:1 5 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "index order" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let test_pool_propagates_exception () =
  (try
     Pool.run ~jobs:4 16 (fun i -> if i = 7 then failwith "boom-7");
     Alcotest.fail "expected the task exception to propagate"
   with Failure msg -> Alcotest.(check string) "task exception" "boom-7" msg);
  (* The pool is reusable after a failed run. *)
  let count = Atomic.make 0 in
  Pool.run ~jobs:4 16 (fun _ -> Atomic.incr count);
  Alcotest.(check int) "pool survives a failure" 16 (Atomic.get count)

let test_pool_default_jobs () =
  let d = Pool.default_jobs () in
  Alcotest.(check bool) "at least one" true (d >= 1);
  Alcotest.(check bool) "within max" true (d <= Pool.max_jobs)

(* --- memo under domains ---------------------------------------------- *)

(* Several domains hammer one table over a keyspace smaller than its
   capacity: values must never be corrupted, every lookup must be
   counted exactly once, and the table must stay within capacity.  The
   compute counter equals the miss counter — a lookup is a miss exactly
   when its caller ran the computation. *)
let test_memo_domain_stress () =
  let t = Memo.create ~capacity:64 ~name:"test-parallel-memo" () in
  let domains = 4 and per = 2_000 and keyspace = 40 in
  let computes = Atomic.make 0 in
  let worker d () =
    for i = 0 to per - 1 do
      let k = (d + i) mod keyspace in
      let v =
        Memo.find_or_add t
          ~key:(Printf.sprintf "k%d" k)
          (fun () ->
            Atomic.incr computes;
            k * 7)
      in
      if v <> k * 7 then failwith (Printf.sprintf "corrupt value for k%d: %d" k v)
    done
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  let s = Memo.snapshot t in
  Alcotest.(check int) "every lookup counted once" (domains * per) (s.Memo.hits + s.Memo.misses);
  Alcotest.(check int) "misses = computations run" (Atomic.get computes) s.Memo.misses;
  Alcotest.(check bool) "all keys seen" true (s.Memo.misses >= keyspace);
  Alcotest.(check int) "no evictions below capacity" 0 s.Memo.evictions;
  Alcotest.(check bool) "entries within capacity" true (s.Memo.entries <= s.Memo.capacity)

(* --- obs under domains ----------------------------------------------- *)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_obs_parallel_counters () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.parallel.hits" in
  let domains = 4 and per = 10_000 in
  let spawned =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.incr c
            done))
  in
  List.iter Domain.join spawned;
  Alcotest.(check int) "no lost increments" (domains * per) (Obs.value c)

let test_obs_parallel_spans () =
  with_obs @@ fun () ->
  let domains = 4 and per = 100 in
  let spawned =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> ()))
            done;
            Obs.depth ()))
  in
  let depths = List.map Domain.join spawned in
  List.iter (fun d -> Alcotest.(check int) "span stack balanced" 0 d) depths;
  let count_of name =
    match List.find_opt (fun (a : Obs.agg) -> a.Obs.name = name) (Obs.aggregates ()) with
    | Some a -> a.Obs.count
    | None -> 0
  in
  Alcotest.(check int) "outer spans all aggregated" (domains * per) (count_of "outer");
  Alcotest.(check int) "inner spans all aggregated" (domains * per) (count_of "inner")

(* --- batch jobs-invariance ------------------------------------------- *)

(* The same small matrix (including failing cells) must render the same
   TSV at every jobs value — the parallel path splits cells around the
   serial transfer pricing, so scheduling cannot leak into the output. *)
let test_batch_jobs_invariant () =
  let config = Config.default in
  let run jobs =
    Engine.Batch.to_tsv
      (Engine.Batch.run ~jobs ~iterations:[ None; Some 4 ] config
         ~workloads:[ "vecadd/16M"; "nope/1" ])
  in
  let sequential = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string) (Printf.sprintf "jobs=%d equals jobs=1" jobs) sequential (run jobs))
    [ 2; 8 ]

(* The full paper matrix at jobs=4 against the committed golden — the
   same file the CI batch leg diffs the CLI output against. *)
let test_batch_golden_parallel () =
  let config = { Config.default with Config.use_cache = Some false } in
  let machines = [ Gpp_arch.Machine.argonne_node; Gpp_arch.Machine.gt200_node ] in
  let workloads = List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.paper_instances in
  let batch = Engine.Batch.run ~machines ~jobs:4 config ~workloads in
  (* dune runtest runs in _build/default/test; dune exec from the root. *)
  let golden =
    List.find Sys.file_exists [ "golden/batch.expected.tsv"; "test/golden/batch.expected.tsv" ]
  in
  let expected = In_channel.with_open_text golden In_channel.input_all in
  Alcotest.(check string) "parallel batch matches golden" expected (Engine.Batch.to_tsv batch)

(* The plan-policy plumbing must not perturb default outputs: a config
   that names Conservative explicitly is byte-identical to the
   committed golden, sequentially and under the domain pool. *)
let test_batch_golden_explicit_conservative () =
  let module Analyzer = Gpp_dataflow.Analyzer in
  let config =
    {
      Config.default with
      Config.use_cache = Some false;
      policy = Some { Analyzer.default_policy with Analyzer.plan = Analyzer.Conservative };
    }
  in
  let machines = [ Gpp_arch.Machine.argonne_node; Gpp_arch.Machine.gt200_node ] in
  let workloads = List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.paper_instances in
  let golden =
    List.find Sys.file_exists [ "golden/batch.expected.tsv"; "test/golden/batch.expected.tsv" ]
  in
  let expected = In_channel.with_open_text golden In_channel.input_all in
  List.iter
    (fun jobs ->
      let batch = Engine.Batch.run ~machines ~jobs config ~workloads in
      Alcotest.(check string)
        (Printf.sprintf "explicit conservative matches golden at jobs=%d" jobs)
        expected (Engine.Batch.to_tsv batch))
    [ 1; 4 ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "covers indices" `Quick test_pool_covers_indices;
          Alcotest.test_case "sequential order" `Quick test_pool_sequential_order;
          Alcotest.test_case "propagates exception" `Quick test_pool_propagates_exception;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "rejects out-of-range jobs" `Quick
            test_pool_rejects_out_of_range_jobs;
          Alcotest.test_case "config rejects out-of-range jobs" `Quick
            test_config_rejects_out_of_range_jobs;
        ] );
      ( "memo",
        [ Alcotest.test_case "domain stress" `Quick test_memo_domain_stress ] );
      ( "obs",
        [
          Alcotest.test_case "parallel counters" `Quick test_obs_parallel_counters;
          Alcotest.test_case "parallel spans" `Quick test_obs_parallel_spans;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs invariant" `Quick test_batch_jobs_invariant;
          Alcotest.test_case "golden at jobs=4" `Slow test_batch_golden_parallel;
          Alcotest.test_case "explicit conservative golden at jobs=1,4" `Slow
            test_batch_golden_explicit_conservative;
        ] );
    ]
