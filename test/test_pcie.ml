(* Tests for Gpp_pcie: link simulator, linear model, calibration. *)

module Link = Gpp_pcie.Link
module Model = Gpp_pcie.Model
module Calibrate = Gpp_pcie.Calibrate
module Units = Gpp_util.Units
module Stats = Gpp_util.Stats

let make_link ?seed () =
  Link.create ?seed (Link.default_config Gpp_arch.Machine.argonne_node)

(* Link: deterministic expectations *)

let test_expected_monotone () =
  let link = make_link () in
  List.iter
    (fun (direction, memory) ->
      let prev = ref 0.0 in
      List.iter
        (fun bytes ->
          let t = Link.expected_time link direction memory ~bytes in
          if t < !prev then
            Alcotest.failf "%s/%s not monotone at %d bytes" (Link.direction_name direction)
              (Link.memory_name memory) bytes;
          prev := t)
        (Calibrate.power_of_two_sizes ~max_bytes:(512 * Units.mib) ()))
    [
      (Link.Host_to_device, Link.Pinned);
      (Link.Host_to_device, Link.Pageable);
      (Link.Device_to_host, Link.Pinned);
      (Link.Device_to_host, Link.Pageable);
    ]

let test_expected_latency_floor () =
  let link = make_link () in
  let cfg = Link.config link in
  Helpers.close_rel ~tolerance:0.01 "1-byte pinned h2d is the setup latency"
    cfg.Link.dma_setup_h2d
    (Link.expected_time link Link.Host_to_device Link.Pinned ~bytes:1);
  Helpers.check_raises_invalid "negative size" (fun () ->
      ignore (Link.expected_time link Link.Host_to_device Link.Pinned ~bytes:(-1)))

let test_pinned_bandwidth_near_paper () =
  let link = make_link () in
  (* Paper: ~2.5 GB/s pinned on the PCIe v1 x16 testbed. *)
  Helpers.check_in_range "h2d bandwidth" ~lo:2.2e9 ~hi:2.8e9
    (Link.pinned_bandwidth link Link.Host_to_device);
  Helpers.check_in_range "d2h bandwidth" ~lo:2.1e9 ~hi:2.7e9
    (Link.pinned_bandwidth link Link.Device_to_host)

let test_pinned_vs_pageable_shape () =
  let link = make_link () in
  (* Paper Figure 3: pinned wins everywhere except tiny h2d transfers. *)
  let pinned b = Link.expected_time link Link.Host_to_device Link.Pinned ~bytes:b in
  let pageable b = Link.expected_time link Link.Host_to_device Link.Pageable ~bytes:b in
  Alcotest.(check bool) "pageable faster at 256 B" true (pageable 256 < pinned 256);
  Alcotest.(check bool) "pinned faster at 64 KiB" true (pinned (64 * Units.kib) < pageable (64 * Units.kib));
  Alcotest.(check bool) "pinned faster at 512 MiB" true
    (pinned (512 * Units.mib) < pageable (512 * Units.mib));
  (* d2h: pinned always wins. *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "pinned d2h wins at %d" b)
        true
        (Link.expected_time link Link.Device_to_host Link.Pinned ~bytes:b
        < Link.expected_time link Link.Device_to_host Link.Pageable ~bytes:b))
    [ 1; 1024; Units.mib; 64 * Units.mib ]

let test_pinned_large_speedup_magnitude () =
  let link = make_link () in
  let b = 512 * Units.mib in
  let speedup =
    Link.expected_time link Link.Host_to_device Link.Pageable ~bytes:b
    /. Link.expected_time link Link.Host_to_device Link.Pinned ~bytes:b
  in
  (* Paper Figure 3: around 1.5x for large h2d transfers. *)
  Helpers.check_in_range "large-transfer pinned speedup" ~lo:1.2 ~hi:2.0 speedup

(* Link: noise and determinism *)

let test_link_determinism () =
  let a = make_link ~seed:99L () and b = make_link ~seed:99L () in
  for _ = 1 to 20 do
    Helpers.close "same seed, same sample"
      (Link.transfer_time a Link.Host_to_device Link.Pinned ~bytes:4096)
      (Link.transfer_time b Link.Host_to_device Link.Pinned ~bytes:4096)
  done

let test_link_noise_varies () =
  let link = make_link () in
  let samples =
    List.init 20 (fun _ -> Link.transfer_time link Link.Host_to_device Link.Pinned ~bytes:4096)
  in
  Alcotest.(check bool) "samples differ" true
    (List.length (List.sort_uniq Float.compare samples) > 1);
  let expected = Link.expected_time link Link.Host_to_device Link.Pinned ~bytes:4096 in
  List.iter (fun s -> Helpers.check_in_range "noise bounded" ~lo:(0.5 *. expected) ~hi:(2.0 *. expected) s) samples

let test_mean_transfer_time () =
  let link = make_link () in
  let expected = Link.expected_time link Link.Device_to_host Link.Pinned ~bytes:Units.mib in
  let mean = Link.mean_transfer_time link ~runs:50 Link.Device_to_host Link.Pinned ~bytes:Units.mib in
  Helpers.close_rel ~tolerance:0.05 "mean near expectation" expected mean;
  Helpers.check_raises_invalid "zero runs" (fun () ->
      ignore (Link.mean_transfer_time link ~runs:0 Link.Device_to_host Link.Pinned ~bytes:1))

let test_outlier_mode () =
  let cfg =
    {
      (Link.default_config Gpp_arch.Machine.argonne_node) with
      Link.outlier_probability = 1.0;
      outlier_slowdown = (2.0, 2.0);
      noise_sigma_base = 0.0;
      noise_sigma_small_h2d = 0.0;
      noise_sigma_small_d2h = 0.0;
    }
  in
  let link = Link.create cfg in
  let expected = Link.expected_time link Link.Host_to_device Link.Pinned ~bytes:Units.mib in
  let sample = Link.transfer_time link Link.Host_to_device Link.Pinned ~bytes:Units.mib in
  Helpers.close_rel ~tolerance:0.001 "forced outlier doubles" (2.0 *. expected) sample

(* Model *)

let test_model_basics () =
  let m =
    Model.create ~alpha:1e-5 ~beta:4e-10 ~direction:Link.Host_to_device ~memory:Link.Pinned
  in
  Helpers.close "predict 0" 1e-5 (Model.predict m ~bytes:0);
  Helpers.close "predict linear" (1e-5 +. 4e-10 *. 1e6) (Model.predict m ~bytes:1_000_000);
  Helpers.close_rel ~tolerance:0.001 "bandwidth" 2.5e9 (Model.bandwidth m);
  Helpers.close "latency" 1e-5 (Model.latency m);
  Helpers.check_raises_invalid "negative bytes" (fun () -> ignore (Model.predict m ~bytes:(-1)));
  Helpers.check_raises_invalid "bad alpha" (fun () ->
      ignore (Model.create ~alpha:(-1.0) ~beta:1.0 ~direction:Link.Host_to_device ~memory:Link.Pinned));
  Helpers.check_raises_invalid "bad beta" (fun () ->
      ignore (Model.create ~alpha:0.0 ~beta:0.0 ~direction:Link.Host_to_device ~memory:Link.Pinned))

let test_model_break_even () =
  let mk alpha beta =
    Model.create ~alpha ~beta ~direction:Link.Host_to_device ~memory:Link.Pinned
  in
  (* Higher latency, higher bandwidth: crossover where the lines meet. *)
  let pinned = mk 10e-6 4e-10 and pageable = mk 5e-6 6e-10 in
  (match Model.break_even_bytes pinned ~against:pageable with
  | Some d ->
      (* 10e-6 + 4e-10 d = 5e-6 + 6e-10 d  =>  d = 25000 *)
      Alcotest.(check int) "crossover" 25000 d
  | None -> Alcotest.fail "expected a crossover");
  (* Strictly better model: wins from zero. *)
  Alcotest.(check (option int)) "dominates" (Some 0)
    (Model.break_even_bytes (mk 1e-6 1e-10) ~against:(mk 2e-6 2e-10));
  (* Strictly worse: never. *)
  Alcotest.(check (option int)) "never" None
    (Model.break_even_bytes (mk 2e-6 2e-10) ~against:(mk 1e-6 1e-10))

(* Calibration *)

let test_two_point_calibration () =
  let link = make_link () in
  let h2d, d2h = Calibrate.calibrate_pinned_pair link in
  let cfg = Link.config link in
  (* Alpha is measured from a 1-byte transfer: close to the setup cost. *)
  Helpers.close_rel ~tolerance:0.15 "alpha h2d" cfg.Link.dma_setup_h2d (Model.latency h2d);
  Helpers.close_rel ~tolerance:0.15 "alpha d2h" cfg.Link.dma_setup_d2h (Model.latency d2h);
  (* Beta recovers the asymptotic pinned bandwidth. *)
  Helpers.close_rel ~tolerance:0.05 "beta h2d"
    (Link.pinned_bandwidth link Link.Host_to_device)
    (Model.bandwidth h2d);
  Helpers.close_rel ~tolerance:0.05 "beta d2h"
    (Link.pinned_bandwidth link Link.Device_to_host)
    (Model.bandwidth d2h)

let test_validation_error_bounds () =
  (* Paper Section V-A: max 6.4% / 3.3%, mean 2.0% / 0.8%.  Assert the
     same order of magnitude on the reproduction. *)
  let link = make_link () in
  let sizes = Calibrate.power_of_two_sizes ~max_bytes:(512 * Units.mib) () in
  List.iter
    (fun (direction, mean_bound, max_bound) ->
      let model = Calibrate.calibrate link direction Link.Pinned in
      let sweep = Calibrate.measure_sweep link direction Link.Pinned ~sizes in
      let errors =
        List.map
          (fun (bytes, measured) ->
            Stats.error_magnitude ~predicted:(Model.predict model ~bytes) ~measured)
          sweep
      in
      Helpers.check_in_range "mean error" ~lo:0.0 ~hi:mean_bound (Stats.mean errors);
      Helpers.check_in_range "max error" ~lo:0.0 ~hi:max_bound (snd (Stats.min_max errors));
      (* Error is essentially zero above 1 MiB. *)
      let large =
        List.filteri (fun i _ -> List.nth sizes i > Units.mib) errors
      in
      Helpers.check_in_range "large-size error" ~lo:0.0 ~hi:1.5 (Stats.mean large))
    [ (Link.Host_to_device, 4.0, 10.0); (Link.Device_to_host, 2.0, 6.0) ]

let test_power_of_two_sizes () =
  Alcotest.(check (list int)) "small range" [ 1; 2; 4; 8 ]
    (Calibrate.power_of_two_sizes ~max_bytes:8 ());
  Alcotest.(check int) "count to 512 MiB" 30
    (List.length (Calibrate.power_of_two_sizes ~max_bytes:(512 * Units.mib) ()));
  Helpers.check_raises_invalid "bad bounds" (fun () ->
      ignore (Calibrate.power_of_two_sizes ~min_bytes:0 ~max_bytes:8 ()))

let test_least_squares_calibration () =
  let link = make_link () in
  let sizes = Calibrate.power_of_two_sizes ~max_bytes:(64 * Units.mib) () in
  let sweep = Calibrate.measure_sweep link Link.Host_to_device Link.Pinned ~sizes in
  let model = Calibrate.least_squares_model link Link.Host_to_device Link.Pinned ~sweep in
  (* The fit recovers a bandwidth in the right range. *)
  Helpers.check_in_range "fit bandwidth" ~lo:2e9 ~hi:3e9 (Model.bandwidth model)

let test_calibrate_all () =
  let link = make_link () in
  Alcotest.(check int) "four combinations" 4 (List.length (Calibrate.calibrate_all link))

(* Golden calibration: exact bit patterns from the default-seeded link.
   These pin the rng draw *order* — [mean_transfer_time] and the
   calibration sweeps must consume samples strictly left to right, not
   in [List.init]'s unspecified application order — and double as a
   cross-process determinism anchor for the persistent cache (a value
   computed in one process must equal the one a later process would
   recompute).  A mismatch means the sampling order, the rng, or the
   link model changed: all of them invalidate recorded experiments, so
   the change must be deliberate (update the constants and bump the
   affected memo schemas). *)

let check_bits name expected actual =
  if not (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float actual)) then
    Alcotest.failf "%s: expected %h, got %h" name expected actual

let test_golden_calibration () =
  let h2d, d2h = Calibrate.calibrate_pinned_pair (make_link ()) in
  check_bits "h2d alpha" 0x1.58070ef2267b6p-17 (Model.latency h2d);
  check_bits "h2d bandwidth" 0x1.295ef50a8bf2cp+31 (Model.bandwidth h2d);
  check_bits "d2h alpha" 0x1.9469463a4d277p-17 (Model.latency d2h);
  check_bits "d2h bandwidth" 0x1.208fa44742848p+31 (Model.bandwidth d2h);
  check_bits "mean of ten 4 KiB pinned h2d draws" 0x1.89939ca63c019p-17
    (Link.mean_transfer_time (make_link ()) ~runs:10 Link.Host_to_device Link.Pinned ~bytes:4096)

let () =
  Alcotest.run "gpp_pcie"
    [
      ( "link",
        [
          Alcotest.test_case "monotone in size" `Quick test_expected_monotone;
          Alcotest.test_case "latency floor" `Quick test_expected_latency_floor;
          Alcotest.test_case "bandwidth near paper" `Quick test_pinned_bandwidth_near_paper;
          Alcotest.test_case "pinned vs pageable shape" `Quick test_pinned_vs_pageable_shape;
          Alcotest.test_case "pinned speedup magnitude" `Quick test_pinned_large_speedup_magnitude;
          Alcotest.test_case "determinism" `Quick test_link_determinism;
          Alcotest.test_case "noise varies" `Quick test_link_noise_varies;
          Alcotest.test_case "mean transfer time" `Quick test_mean_transfer_time;
          Alcotest.test_case "outlier mode" `Quick test_outlier_mode;
        ] );
      ( "model",
        [
          Alcotest.test_case "basics" `Quick test_model_basics;
          Alcotest.test_case "break even" `Quick test_model_break_even;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "two-point" `Quick test_two_point_calibration;
          Alcotest.test_case "validation error bounds" `Quick test_validation_error_bounds;
          Alcotest.test_case "power-of-two sizes" `Quick test_power_of_two_sizes;
          Alcotest.test_case "least squares" `Quick test_least_squares_calibration;
          Alcotest.test_case "all combinations" `Quick test_calibrate_all;
          Alcotest.test_case "golden values" `Quick test_golden_calibration;
        ] );
    ]
