(* grophecy serve: the long-running prediction service.

   The contract under test: server responses are byte-equivalent to CLI
   output (the committed fig5 golden doubles as the server golden),
   identical concurrent requests coalesce onto exactly one memo miss, a
   malformed request is a structured 400 that leaves the server alive,
   /healthz and /metrics have their documented shapes, and a client
   that hangs up mid-exchange kills its connection, not the process. *)

module Config = Gpp_engine.Config
module Error = Gpp_engine.Error
module Memo = Gpp_cache.Memo
module Serve = Gpp_serve.Serve
module Validate = Gpp_obs.Validate

let tmp_cache_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpp-serve-test.%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  dir

let test_config ~listen =
  let overrides =
    {
      Config.no_overrides with
      Config.o_listen = Some listen;
      o_cache_dir = Some tmp_cache_dir;
    }
  in
  match Config.resolve ~getenv:(fun _ -> None) ~overrides () with
  | Error e -> Alcotest.failf "config: %s" (Error.message e)
  | Ok c ->
      Gpp_engine.Runtime.install c;
      c

(* One shared in-process server: every test reads counters as deltas so
   ordering stays irrelevant. *)
let server =
  lazy
    (match Serve.start (test_config ~listen:"127.0.0.1:0") with
    | Error e -> Alcotest.failf "Serve.start: %s" (Error.message e)
    | Ok t -> t)

let get ?meth ?body target =
  match Serve.request (Lazy.force server) ?meth ?body target with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request %s: %s" target msg

let responses_snapshot () =
  match List.find_opt (fun (s : Memo.snapshot) -> s.name = "serve.responses") (Memo.snapshots ()) with
  | Some s -> s
  | None -> Alcotest.fail "serve.responses memo not registered"

let counter name = List.assoc_opt name (Gpp_obs.Obs.counters ()) |> Option.value ~default:0

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* The committed CLI golden *is* the server golden: GET /experiment/fig5
   must return the exact bytes `grophecy experiment fig5` prints. *)
let test_fig5_golden_roundtrip () =
  let golden = read_file "golden/fig5.expected" in
  let status, _headers, body = get "/experiment/fig5" in
  Alcotest.(check int) "status" 200 status;
  Alcotest.(check string) "body is byte-identical to the CLI golden" golden body;
  (* And again, warm: same bytes from the response memo. *)
  let status2, _, body2 = get "/experiment/fig5" in
  Alcotest.(check int) "warm status" 200 status2;
  Alcotest.(check string) "warm body" golden body2

(* N identical concurrent requests: one leader computes (one memo miss),
   everyone else either coalesces onto the in-flight computation or
   hits the memo after it lands.  Never two computations. *)
let test_concurrent_duplicates_one_miss () =
  let n = 8 in
  let before = responses_snapshot () in
  let computed_before = counter "serve.computed" in
  let results = Array.make n (0, "") in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let status, _, body = get "/project?workload=vecadd/16M" in
            results.(i) <- (status, body))
          ())
  in
  List.iter Thread.join threads;
  let after = responses_snapshot () in
  Array.iter (fun (status, _) -> Alcotest.(check int) "status" 200 status) results;
  let first = snd results.(0) in
  Alcotest.(check bool) "non-empty body" true (String.length first > 0);
  Array.iter
    (fun (_, body) -> Alcotest.(check string) "identical bodies" first body)
    results;
  Alcotest.(check int) "exactly one memo miss" 1 (after.misses - before.misses);
  Alcotest.(check int) "exactly one computation" 1 (counter "serve.computed" - computed_before);
  let hits = after.hits - before.hits in
  Alcotest.(check bool)
    (Printf.sprintf "misses + hits <= %d (rest coalesced), hits = %d" n hits)
    true
    (1 + hits <= n)

(* A malformed request must produce a structured 400 and leave the
   server answering. *)
let test_malformed_request_structured_400 () =
  let status, _, body = get ~meth:"POST" ~body:"{not json" "/project" in
  Alcotest.(check int) "status" 400 status;
  (match Validate.parse body with
  | Ok (Validate.Obj fields) ->
      Alcotest.(check bool) "has error field" true (List.mem_assoc "error" fields);
      Alcotest.(check bool) "has message field" true (List.mem_assoc "message" fields)
  | Ok _ -> Alcotest.fail "error body is not a JSON object"
  | Error msg -> Alcotest.failf "error body is not JSON: %s" msg);
  (* Ill-typed fields and unknown routes too. *)
  let status, _, _ = get ~meth:"POST" ~body:{|{"workload": 42}|} "/project" in
  Alcotest.(check int) "ill-typed field" 400 status;
  let status, _, _ = get "/no/such/route" in
  Alcotest.(check int) "unknown route" 404 status;
  let status, _, _ = get "/project" in
  Alcotest.(check int) "missing workload" 400 status;
  let status, _, _ = get "/healthz" in
  Alcotest.(check int) "server still alive" 200 status

let test_healthz_shape () =
  let status, _, body = get "/healthz" in
  Alcotest.(check int) "status" 200 status;
  match Validate.parse body with
  | Ok (Validate.Obj fields) -> (
      (match List.assoc_opt "status" fields with
      | Some (Validate.Str s) -> Alcotest.(check string) "status field" "ok" s
      | _ -> Alcotest.fail "healthz: missing string status");
      (match List.assoc_opt "uptime_seconds" fields with
      | Some (Validate.Num u) -> Alcotest.(check bool) "uptime >= 0" true (u >= 0.)
      | _ -> Alcotest.fail "healthz: missing numeric uptime_seconds");
      match List.assoc_opt "requests" fields with
      | Some (Validate.Num r) -> Alcotest.(check bool) "requests >= 0" true (r >= 0.)
      | _ -> Alcotest.fail "healthz: missing numeric requests")
  | Ok _ -> Alcotest.fail "healthz body is not a JSON object"
  | Error msg -> Alcotest.failf "healthz body is not JSON: %s" msg

let test_metrics_shape () =
  ignore (get "/experiment/fig5");
  let status, _, body = get "/metrics" in
  Alcotest.(check int) "status" 200 status;
  let lines = String.split_on_char '\n' body |> List.filter (fun l -> l <> "") in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ name; value ] ->
          Alcotest.(check bool)
            (Printf.sprintf "gpp_ prefix: %s" name)
            true
            (String.length name > 4 && String.sub name 0 4 = "gpp_");
          Alcotest.(check bool)
            (Printf.sprintf "integer value: %s" line)
            true
            (int_of_string_opt value <> None)
      | _ -> Alcotest.failf "metrics line not 'name value': %S" line)
    lines;
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  Alcotest.(check bool) "serve requests counter" true (has "gpp_serve_requests ");
  Alcotest.(check bool) "response-cache stats" true (has "gpp_cache_serve_responses_")

(* A peer that sends a request and slams the connection (RST via
   linger 0) must cost at most that connection: the next request works. *)
let test_broken_pipe_connection_only () =
  let t = Lazy.force server in
  let port =
    match Serve.port t with Some p -> p | None -> Alcotest.fail "expected TCP server"
  in
  for _ = 1 to 3 do
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req = "GET /experiment/fig5 HTTP/1.1\r\nHost: t\r\n\r\n" in
    ignore (Unix.write_substring fd req 0 (String.length req));
    Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
    Unix.close fd
  done;
  (* Give the handler threads a beat to hit the dead sockets. *)
  Thread.delay 0.2;
  let status, _, body = get "/experiment/fig5" in
  Alcotest.(check int) "server still answers" 200 status;
  Alcotest.(check string) "still the golden bytes" (read_file "golden/fig5.expected") body

(* Bad listen addresses are configuration errors (exit 2), not crashes. *)
let test_listen_parse_errors () =
  List.iter
    (fun listen ->
      match Serve.start { Config.default with Config.listen } with
      | Ok t ->
          Serve.stop t;
          Alcotest.failf "listen %S unexpectedly bound" listen
      | Error e -> Alcotest.(check int) (Printf.sprintf "exit code for %S" listen) 2 (Error.exit_code e))
    [ "no-port-here"; "127.0.0.1:notaport"; "127.0.0.1:70000"; "unix:" ]

(* A Unix-domain listener speaks the same protocol. *)
let test_unix_socket_roundtrip () =
  let path = Filename.concat tmp_cache_dir "serve.sock" in
  match Serve.start { Config.default with Config.listen = "unix:" ^ path } with
  | Error e -> Alcotest.failf "unix listen: %s" (Error.message e)
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> Serve.stop t)
        (fun () ->
          Alcotest.(check string) "address" ("unix:" ^ path) (Serve.address t);
          match Serve.request t "/healthz" with
          | Ok (status, _, _) -> Alcotest.(check int) "healthz over unix socket" 200 status
          | Error msg -> Alcotest.failf "unix request: %s" msg)

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "fig5 golden round-trip" `Quick test_fig5_golden_roundtrip;
          Alcotest.test_case "concurrent duplicates: one miss" `Quick
            test_concurrent_duplicates_one_miss;
          Alcotest.test_case "malformed request: structured 400" `Quick
            test_malformed_request_structured_400;
          Alcotest.test_case "healthz shape" `Quick test_healthz_shape;
          Alcotest.test_case "metrics shape" `Quick test_metrics_shape;
          Alcotest.test_case "broken pipe: connection only" `Quick
            test_broken_pipe_connection_only;
          Alcotest.test_case "listen parse errors" `Quick test_listen_parse_errors;
          Alcotest.test_case "unix socket round-trip" `Quick test_unix_socket_roundtrip;
        ] );
    ]
