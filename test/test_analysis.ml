(* Tests for Gpp_analysis: the static-analysis pass framework, the lint
   driver, and the renderers.

   The core contract: every seeded-defect fixture triggers exactly the
   diagnostic code it was built to trigger, and every bundled workload
   skeleton lints clean under --strict (no errors, no warnings). *)

module D = Gpp_analysis.Diagnostic
module Driver = Gpp_analysis.Driver
module Render = Gpp_analysis.Render
module Pass = Gpp_analysis.Pass
module Section = Gpp_brs.Section
module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program

let lint_source source =
  match Gpp_skeleton.Parser.parse source with
  | Ok program -> Driver.run program
  | Error e -> Alcotest.failf "fixture failed to parse: %s" e

let codes (report : Driver.report) =
  List.map (fun (d : D.t) -> d.code) report.Driver.diagnostics

let check_fires ?(msg = "") code report =
  if not (List.mem code (codes report)) then
    Alcotest.failf "expected %s to fire%s; got [%s]" code
      (if msg = "" then "" else " (" ^ msg ^ ")")
      (String.concat ", " (codes report))

let check_silent code report =
  if List.mem code (codes report) then
    Alcotest.failf "expected %s NOT to fire; got [%s]" code (String.concat ", " (codes report))

let severity_of code (report : Driver.report) =
  match List.find_opt (fun (d : D.t) -> d.code = code) report.diagnostics with
  | Some d -> d.severity
  | None -> Alcotest.failf "no %s diagnostic in report" code

(* Seeded-defect fixtures: each skeleton is clean except for the one
   defect its test asserts on. *)

let clean_base =
  {|
program clean
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  compute flops 1
  store out [i]
end
schedule
  call k
end
|}

let test_clean_program () =
  let report = lint_source clean_base in
  Alcotest.(check int) "no diagnostics" 0 (List.length report.Driver.diagnostics);
  Alcotest.(check bool) "strict-clean" true (Driver.clean ~strict:true report);
  Alcotest.(check int) "exit 0" 0 (Driver.exit_code ~strict:true report)

let test_gpp101_store_out_of_bounds () =
  let report =
    lint_source
      {|
program fx101
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  store out [i+1]
end
schedule
  call k
end
|}
  in
  check_fires "GPP101" report;
  Alcotest.(check bool) "error severity" true (severity_of "GPP101" report = D.Error);
  Alcotest.(check bool) "fails non-strict" false (Driver.clean ~strict:false report)

let test_gpp102_halo_load () =
  let report =
    lint_source
      {|
program fx102
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i-1]
  load a [i]
  load a [i+1]
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP102" report;
  check_silent "GPP101" report;
  Alcotest.(check bool) "info only" true (severity_of "GPP102" report = D.Info);
  Alcotest.(check bool) "still strict-clean" true (Driver.clean ~strict:true report)

let test_gpp103_fully_out_of_bounds () =
  let report =
    lint_source
      {|
program fx103
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i+4096]
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP103" report;
  Alcotest.(check bool) "error severity" true (severity_of "GPP103" report = D.Error)

let test_gpp201_parallel_independent_store () =
  let report =
    lint_source
      {|
program fx201
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  store out [0]
end
schedule
  call k
end
|}
  in
  check_fires "GPP201" report;
  Alcotest.(check bool) "error severity" true (severity_of "GPP201" report = D.Error)

let test_gpp201_serial_loop_is_fine () =
  (* The same subscript shape under a serial loop is a legal
     accumulator, not a race. *)
  let report =
    lint_source
      {|
program fx201ok
array a dense 4096
array out dense 1
kernel k
  loop i serial 4096
  load a [i]
  store out [0]
end
schedule
  call k
end
|}
  in
  check_silent "GPP201" report

let test_gpp202_overlapping_stores () =
  let report =
    lint_source
      {|
program fx202
array a dense 4096
array out dense 4097
kernel k
  loop i parallel 4096
  load a [i]
  store out [i]
  store out [i+1]
end
schedule
  call k
end
|}
  in
  check_fires "GPP202" report;
  Alcotest.(check bool) "warning severity" true (severity_of "GPP202" report = D.Warning);
  Alcotest.(check bool) "strict fails" false (Driver.clean ~strict:true report);
  Alcotest.(check bool) "non-strict passes" true (Driver.clean ~strict:false report)

let test_gpp203_read_after_write () =
  let report =
    lint_source
      {|
program fx203
array a dense 4096
kernel k
  loop i parallel 4096
  load a [i+1]
  compute flops 1
  store a [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP203" report

let test_gpp203_in_place_update_is_fine () =
  (* Identical subscripts: the same-element read-modify-write idiom
     (srad_update, stassuij's accumulator) is race-free. *)
  let report =
    lint_source
      {|
program fx203ok
array a dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  compute flops 1
  store a [i]
end
schedule
  call k
end
|}
  in
  check_silent "GPP203" report;
  check_silent "GPP202" report

let test_gpp301_dead_temporary_write () =
  let report =
    lint_source
      {|
program fx301
array a dense 4096
array t dense 4096
array out dense 4096
temporary t
kernel k
  loop i parallel 4096
  load a [i]
  store t [i]
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP301" report;
  Alcotest.(check bool) "warning severity" true (severity_of "GPP301" report = D.Warning)

let test_gpp301_consumed_temporary_is_fine () =
  let report =
    lint_source
      {|
program fx301ok
array a dense 4096
array t dense 4096
array out dense 4096
temporary t
kernel producer
  loop i parallel 4096
  load a [i]
  store t [i]
end
kernel consumer
  loop i parallel 4096
  load t [i]
  store out [i]
end
schedule
  call producer
  call consumer
end
|}
  in
  check_silent "GPP301" report;
  (* ... and the consumer's re-read of device-resident t is the
     GPP302 note. *)
  check_fires "GPP302" report;
  Alcotest.(check bool) "info severity" true (severity_of "GPP302" report = D.Info)

let test_gpp303_conservative_fallback () =
  let report =
    lint_source
      {|
program fx303
array idx dense 4096
array table dense 65536
array out dense 4096
kernel gather
  loop i parallel 4096
  load idx [i]
  load table via idx
  store out [i]
end
schedule
  call gather
end
|}
  in
  check_fires "GPP303" report;
  (* The scattered gather is also the canonical GPP401 case. *)
  check_fires "GPP401" report

let test_gpp401_strided_access () =
  let report =
    lint_source
      {|
program fx401
array a dense 4096 64
array out dense 4096
kernel colwalk
  loop i parallel 4096
  load a [i, 0]
  store out [i]
end
schedule
  call colwalk
end
|}
  in
  (* Adjacent threads are one 64-element row apart: 256 B stride vs a
     64 B coalescing segment. *)
  check_fires "GPP401" report;
  Alcotest.(check bool) "info severity" true (severity_of "GPP401" report = D.Info)

let test_gpp402_divergent_branch () =
  let report =
    lint_source
      {|
program fx402
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  branch 0.5 {
    compute flops 10
  }
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP402" report

let test_gpp402_uniform_branch_is_fine () =
  let report =
    lint_source
      {|
program fx402ok
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  branch 0.5 uniform {
    compute flops 10
  }
  store out [i]
end
schedule
  call k
end
|}
  in
  check_silent "GPP402" report

let test_perf_lints_skip_cold_kernels () =
  let report =
    lint_source
      {|
program coldfx
array a dense 16
array out dense 16
kernel tiny
  loop i parallel 16
  load a [i]
  branch 0.5 {
    compute flops 10
  }
  store out [i]
end
schedule
  call tiny
end
|}
  in
  check_silent "GPP402" report

(* Program-level checks are easiest to seed through the IR API (the
   parser now rejects duplicate names at parse time). *)

let simple_kernel ?(name = "k") ?(array = "a") ?(out = "out") n =
  Ir.kernel name
    ~loops:[ Ir.loop "i" ~extent:n ]
    ~body:[ Ir.load array [ Ix.var "i" ]; Ir.compute 1.0; Ir.store out [ Ix.var "i" ] ]

let test_gpp501_duplicate_arrays () =
  let program =
    Program.create ~name:"fx501"
      ~arrays:[ Decl.dense "a" ~dims:[ 64 ]; Decl.dense "a" ~dims:[ 64 ]; Decl.dense "out" ~dims:[ 64 ] ]
      ~kernels:[ simple_kernel 64 ]
      ~schedule:[ Program.Call "k" ] ()
  in
  check_fires "GPP501" (Driver.run program)

let test_gpp502_duplicate_kernels () =
  let program =
    Program.create ~name:"fx502"
      ~arrays:[ Decl.dense "a" ~dims:[ 64 ]; Decl.dense "out" ~dims:[ 64 ] ]
      ~kernels:[ simple_kernel 64; simple_kernel 64 ]
      ~schedule:[ Program.Call "k" ] ()
  in
  let report = Driver.run program in
  check_fires "GPP502" report;
  (* Duplicate kernels also fail Program.validate, which must surface
     as GPP001 rather than crash the BRS-based passes. *)
  check_fires "GPP001" report;
  Alcotest.(check bool) "marked invalid" false report.Driver.valid

let test_gpp503_unused_array () =
  let report =
    lint_source
      {|
program fx503
array a dense 4096
array ghost dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP503" report

let test_gpp504_unscheduled_kernel () =
  let report =
    lint_source
      {|
program fx504
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  store out [i]
end
kernel orphan
  loop i parallel 4096
  load a [i]
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP504" report

let test_gpp505_never_written_temporary () =
  let report =
    lint_source
      {|
program fx505
array a dense 4096
array out dense 4096
temporary a
kernel k
  loop i parallel 4096
  load a [i]
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP505" report

let test_indirect_index_array_counts_as_referenced () =
  (* The via-array of an indirect access is a use: no GPP503. *)
  let report =
    lint_source
      {|
program fxvia
array idx dense 4096
array table dense 65536
array out dense 4096
kernel gather
  loop i parallel 4096
  load table via idx
  store out [i]
end
schedule
  call gather
end
|}
  in
  check_silent "GPP503" report

(* GPP6xx transfer-flow fixtures: conservative-vs-minimal plan diffs,
   loop-invariant uploads, and interval reachability. *)

let payload_int code key (report : Driver.report) =
  match List.find_opt (fun (d : D.t) -> d.code = code) report.Driver.diagnostics with
  | None -> Alcotest.failf "no %s diagnostic in report" code
  | Some d -> (
      match List.assoc_opt key d.D.payload with
      | Some (D.Int i) -> i
      | _ -> Alcotest.failf "%s: missing integer payload %s" code key)

let test_gpp601_redundant_upload () =
  (* Every read of [a] sits under a probability-0 branch, so the
     conservative upload is never consumed and the minimal plan elides
     it. *)
  let report =
    lint_source
      {|
program fx601
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  branch 0.0 uniform {
    load a [i]
  }
  compute flops 1
  store out [i]
end
schedule
  call k
end
|}
  in
  check_fires "GPP601" report;
  Alcotest.(check bool) "warning severity" true (severity_of "GPP601" report = D.Warning);
  Alcotest.(check int) "priced at the full upload" (4 * 4096) (payload_int "GPP601" "bytes" report);
  check_silent "GPP602" report

let test_gpp602_dead_download () =
  (* The only store to [out] can never execute: the download in the
     conservative plan carries data the device never produces. *)
  let report =
    lint_source
      {|
program fx602
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i]
  compute flops 1
  branch 0.0 uniform {
    store out [i]
  }
end
schedule
  call k
end
|}
  in
  check_fires "GPP602" report;
  Alcotest.(check bool) "warning severity" true (severity_of "GPP602" report = D.Warning);
  check_silent "GPP601" report

let test_gpp603_hoistable_upload () =
  (* [coeff] is read inside the 4-iteration schedule loop and never
     written by it: the upload is loop-invariant and the plan hoists
     it, saving 3 of the 4 per-iteration copies. *)
  let report =
    lint_source
      {|
program fx603
array coeff dense 4096
array state dense 4096
kernel step
  loop i parallel 4096
  load coeff [i]
  load state [i]
  compute flops 2
  store state [i]
end
schedule
  repeat 4 {
    call step
  }
end
|}
  in
  check_fires "GPP603" report;
  Alcotest.(check bool) "info severity" true (severity_of "GPP603" report = D.Info);
  Alcotest.(check int) "iterations" 4 (payload_int "GPP603" "iterations" report);
  Alcotest.(check int) "per-iteration bytes" (4 * 4096)
    (payload_int "GPP603" "per_iteration_bytes" report);
  Alcotest.(check int) "saves n-1 copies" (3 * 4 * 4096)
    (payload_int "GPP603" "saved_bytes" report);
  Alcotest.(check bool) "still strict-clean" true (Driver.clean ~strict:true report)

let test_gpp603_silent_without_iteration () =
  (* The same program with a single-iteration loop has nothing to
     hoist. *)
  let report =
    lint_source
      {|
program fx603ok
array coeff dense 4096
array state dense 4096
kernel step
  loop i parallel 4096
  load coeff [i]
  load state [i]
  compute flops 2
  store state [i]
end
schedule
  repeat 1 {
    call step
  }
end
|}
  in
  check_silent "GPP603" report

let test_gpp604_unreachable_extent () =
  (* [a] declares 100 elements but the interval hull of its only
     subscript reaches 0..49; [out]'s declaration matches its use
     exactly, so only [a] is flagged. *)
  let report =
    lint_source
      {|
program fx604
array a dense 100
array out dense 50
kernel half
  loop i parallel 50
  load a [i]
  compute flops 1
  store out [i]
end
schedule
  call half
end
|}
  in
  check_fires "GPP604" report;
  Alcotest.(check bool) "info severity" true (severity_of "GPP604" report = D.Info);
  Alcotest.(check int) "one array flagged" 1
    (List.length (List.filter (fun (d : D.t) -> d.code = "GPP604") report.Driver.diagnostics));
  Alcotest.(check int) "declared extent in payload" 100 (payload_int "GPP604" "dim0_extent" report);
  (match List.find_opt (fun (d : D.t) -> d.code = "GPP604") report.Driver.diagnostics with
  | Some d -> Alcotest.(check (option string)) "anchored on a" (Some "a") d.D.location.array
  | None -> Alcotest.fail "GPP604 should fire");
  Alcotest.(check bool) "still strict-clean" true (Driver.clean ~strict:true report)

(* Every bundled workload must lint strict-clean: info-level notes are
   expected (halo loads, gathers), warnings and errors are not. *)

let test_bundled_workloads_strict_clean () =
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let report = Driver.run (inst.program 1) in
      let offenders =
        List.filter (fun (d : D.t) -> d.severity <> D.Info) report.Driver.diagnostics
      in
      if offenders <> [] then
        Alcotest.failf "%s not strict-clean: %s"
          (Gpp_workloads.Registry.key inst)
          (String.concat "; "
             (List.map (fun d -> Format.asprintf "%a" D.pp d) offenders));
      Alcotest.(check int)
        (Gpp_workloads.Registry.key inst ^ " exit code")
        0
        (Driver.exit_code ~strict:true report))
    Gpp_workloads.Registry.all

let test_bundled_workloads_roundtrip_clean () =
  (* The .skel export of a workload must lint identically to the
     program it was exported from (the CI gate runs the linter over
     exports). *)
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let original = inst.program 1 in
      let reparsed =
        Helpers.check_ok "reparse"
          (Gpp_skeleton.Parser.parse (Gpp_skeleton.Printer.to_skel original))
      in
      let a = Driver.run original and b = Driver.run reparsed in
      Alcotest.(check (list string)) (Gpp_workloads.Registry.key inst) (codes a) (codes b))
    Gpp_workloads.Registry.all

(* Driver mechanics *)

let test_report_sorted_and_deduped () =
  let report =
    lint_source
      {|
program fxsort
array a dense 4096
array out dense 4096
kernel k
  loop i parallel 4096
  load a [i+1]
  load a [i+1]
  store out [0]
end
schedule
  call k
end
|}
  in
  (* Two identical halo loads collapse to one diagnostic... *)
  Alcotest.(check int) "deduplicated" 1
    (List.length (List.filter (fun (d : D.t) -> d.code = "GPP102") report.Driver.diagnostics));
  (* ...and errors sort before infos. *)
  (match report.Driver.diagnostics with
  | first :: _ -> Alcotest.(check string) "errors first" "GPP201" first.D.code
  | [] -> Alcotest.fail "expected diagnostics");
  Alcotest.(check int) "errors counted" 1 (Driver.errors report);
  (* The halo-load info, plus GPP604 on both arrays: [a] never touches
     element 0 and [out] only touches element 0. *)
  Alcotest.(check int) "infos counted" 3 (Driver.infos report)

let test_code_index_covers_report_codes () =
  let indexed = List.map (fun (c : Pass.code_doc) -> c.code) (Driver.code_index ()) in
  let sorted = List.sort String.compare indexed in
  Alcotest.(check (list string)) "index is sorted and unique" sorted (List.sort_uniq String.compare indexed);
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " indexed") true (List.mem code indexed))
    [ "GPP001"; "GPP101"; "GPP203"; "GPP301"; "GPP402"; "GPP505" ]

(* JSON output: a minimal RFC 8259 parser (objects, arrays, strings,
   numbers, booleans, null) so the report can be schema-checked without
   a JSON dependency. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json text =
  let pos = ref 0 in
  let n = String.length text in
  let fail fmt = Format.kasprintf (fun s -> Alcotest.failf "JSON parse: %s (at %d)" s !pos) fmt in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail "expected %C" c
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              pos := !pos + 4;
              Buffer.add_char buf '?';
              go ()
          | Some c -> advance (); Buffer.add_char buf c; go ()
          | None -> fail "truncated escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match text.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Jobj [] end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, value) :: acc)
            | Some '}' -> advance (); Jobj (List.rev ((key, value) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Jarr [] end
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (value :: acc)
            | Some ']' -> advance (); Jarr (List.rev (value :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj key =
  match obj with
  | Jobj fields -> List.assoc_opt key fields
  | _ -> None

let field_exn msg obj key =
  match field obj key with Some v -> v | None -> Alcotest.failf "%s: missing field %s" msg key

let as_string msg = function Jstr s -> s | _ -> Alcotest.failf "%s: expected a string" msg

let as_int msg = function
  | Jnum f when Float.is_integer f -> int_of_float f
  | _ -> Alcotest.failf "%s: expected an integer" msg

let is_code s =
  String.length s = 6
  && String.sub s 0 3 = "GPP"
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 3 3)

let defect_soup =
  {|
program soup
array a dense 4096
array ghost dense 4096
array t dense 4096
array out dense 4097
temporary t
kernel k
  loop i parallel 4096
  load a [i+1]
  store t [i]
  store out [i]
  store out [i+1]
  branch 0.3 {
    compute flops 2
  }
end
schedule
  call k
end
|}

let test_json_schema_roundtrip () =
  let report = lint_source defect_soup in
  Alcotest.(check bool) "fixture has findings" true (report.Driver.diagnostics <> []);
  let json = parse_json (Render.to_json report) in
  Alcotest.(check string) "program name" report.Driver.program_name
    (as_string "program" (field_exn "root" json "program"));
  (match field_exn "root" json "valid" with
  | Jbool b -> Alcotest.(check bool) "valid flag" report.Driver.valid b
  | _ -> Alcotest.fail "valid: expected a bool");
  let summary = field_exn "root" json "summary" in
  Alcotest.(check int) "errors" (Driver.errors report)
    (as_int "errors" (field_exn "summary" summary "errors"));
  Alcotest.(check int) "warnings" (Driver.warnings report)
    (as_int "warnings" (field_exn "summary" summary "warnings"));
  Alcotest.(check int) "infos" (Driver.infos report)
    (as_int "infos" (field_exn "summary" summary "infos"));
  (match field_exn "root" json "passes" with
  | Jarr passes ->
      Alcotest.(check (list string)) "passes round-trip" report.Driver.passes_run
        (List.map (as_string "pass") passes)
  | _ -> Alcotest.fail "passes: expected an array");
  match field_exn "root" json "diagnostics" with
  | Jarr diags ->
      Alcotest.(check int) "diagnostic count" (List.length report.Driver.diagnostics)
        (List.length diags);
      List.iter2
        (fun (expected : D.t) j ->
          let code = as_string "code" (field_exn "diag" j "code") in
          Alcotest.(check string) "code round-trips" expected.D.code code;
          Alcotest.(check bool) ("well-formed code " ^ code) true (is_code code);
          let sev = as_string "severity" (field_exn "diag" j "severity") in
          Alcotest.(check string) "severity round-trips" (D.severity_name expected.D.severity) sev;
          Alcotest.(check string) "message round-trips" expected.D.message
            (as_string "message" (field_exn "diag" j "message"));
          (match field_exn "diag" j "payload" with
          | Jobj payload ->
              Alcotest.(check (list string)) "payload keys"
                (List.map fst expected.D.payload)
                (List.map fst payload)
          | _ -> Alcotest.fail "payload: expected an object");
          (* Optional location fields, when present, must be strings
             matching the diagnostic. *)
          List.iter
            (fun (key, expected_loc) ->
              match (field j key, expected_loc) with
              | None, None -> ()
              | Some v, Some loc -> Alcotest.(check string) key loc (as_string key v)
              | Some _, None -> Alcotest.failf "%s present but not in diagnostic" key
              | None, Some _ -> Alcotest.failf "%s missing from JSON" key)
            [
              ("kernel", expected.D.location.kernel);
              ("array", expected.D.location.array);
              ("detail", expected.D.location.detail);
            ])
        report.Driver.diagnostics diags
  | _ -> Alcotest.fail "diagnostics: expected an array"

let test_json_reports_array () =
  let reports = [ lint_source clean_base; lint_source defect_soup ] in
  match parse_json (Render.json_of_reports reports) with
  | Jarr [ a; b ] ->
      Alcotest.(check string) "first" "clean" (as_string "program" (field_exn "r" a "program"));
      Alcotest.(check string) "second" "soup" (as_string "program" (field_exn "r" b "program"))
  | _ -> Alcotest.fail "expected a two-element JSON array"

(* SARIF export: schema-shape checks through the same embedded JSON
   parser — one run, one reportingDescriptor per indexed code, one
   result per diagnostic with a consistent ruleId/ruleIndex pair. *)

let as_array msg = function Jarr items -> items | _ -> Alcotest.failf "%s: expected an array" msg

let test_sarif_schema () =
  let reports = [ lint_source clean_base; lint_source defect_soup ] in
  let diagnostics = List.concat_map (fun (r : Driver.report) -> r.Driver.diagnostics) reports in
  let sarif = parse_json (Gpp_analysis.Sarif.of_reports reports) in
  Alcotest.(check string) "version" "2.1.0"
    (as_string "version" (field_exn "root" sarif "version"));
  Helpers.check_contains "schema uri names 2.1.0" ~needle:"sarif-schema-2.1.0"
    (as_string "$schema" (field_exn "root" sarif "$schema"));
  match as_array "runs" (field_exn "root" sarif "runs") with
  | [ run ] ->
      let driver = field_exn "tool" (field_exn "run" run "tool") "driver" in
      Alcotest.(check string) "driver name" "grophecy"
        (as_string "name" (field_exn "driver" driver "name"));
      let rules = as_array "rules" (field_exn "driver" driver "rules") in
      Alcotest.(check int) "one rule per indexed code"
        (List.length (Driver.code_index ()))
        (List.length rules);
      let rule_ids = List.map (fun r -> as_string "rule id" (field_exn "rule" r "id")) rules in
      List.iter
        (fun r ->
          let id = as_string "rule id" (field_exn "rule" r "id") in
          Alcotest.(check bool) ("well-formed rule id " ^ id) true (is_code id);
          List.iter
            (fun key -> ignore (field_exn ("rule " ^ id) r key))
            [ "shortDescription"; "fullDescription"; "help"; "defaultConfiguration" ])
        rules;
      let results = as_array "results" (field_exn "run" run "results") in
      Alcotest.(check int) "one result per diagnostic" (List.length diagnostics)
        (List.length results);
      List.iter2
        (fun (expected : D.t) r ->
          let rule_id = as_string "ruleId" (field_exn "result" r "ruleId") in
          Alcotest.(check string) "ruleId is the code" expected.D.code rule_id;
          let index = as_int "ruleIndex" (field_exn "result" r "ruleIndex") in
          Alcotest.(check string) "ruleIndex points at the rule" rule_id (List.nth rule_ids index);
          Alcotest.(check string) "level from severity"
            (match expected.D.severity with
            | D.Error -> "error"
            | D.Warning -> "warning"
            | D.Info -> "note")
            (as_string "level" (field_exn "result" r "level"));
          let locations = as_array "locations" (field_exn "result" r "locations") in
          let logical =
            match locations with
            | [ l ] -> as_array "logicalLocations" (field_exn "location" l "logicalLocations")
            | _ -> Alcotest.fail "expected one location"
          in
          match logical with
          | [ l ] ->
              let fqn = as_string "fqn" (field_exn "logical" l "fullyQualifiedName") in
              Helpers.check_contains "qualified by program" ~needle:"soup" fqn
          | _ -> Alcotest.fail "expected one logical location")
        diagnostics results
  | _ -> Alcotest.fail "runs: expected a one-element array"

(* Code lookup behind --explain and the --codes filter. *)

let test_find_code_lookup () =
  (match Driver.find_code "gpp601" with
  | Some doc -> Alcotest.(check string) "case-insensitive" "GPP601" doc.Pass.code
  | None -> Alcotest.fail "gpp601 should resolve");
  (match Driver.find_code "  GPP101  " with
  | Some doc -> Alcotest.(check string) "trimmed" "GPP101" doc.Pass.code
  | None -> Alcotest.fail "padded GPP101 should resolve");
  Alcotest.(check bool) "unknown code is None" true (Driver.find_code "GPP999" = None);
  (* Every indexed code resolves to itself and documents a fix. *)
  List.iter
    (fun (c : Pass.code_doc) ->
      match Driver.find_code c.code with
      | Some doc ->
          Alcotest.(check string) "self-lookup" c.code doc.Pass.code;
          Alcotest.(check bool) (c.code ^ " has explanation") true (doc.explanation <> "");
          Alcotest.(check bool) (c.code ^ " has fix") true (doc.fix <> "")
      | None -> Alcotest.failf "indexed code %s does not resolve" c.code)
    (Driver.code_index ())

let test_nearest_code_suggestion () =
  Alcotest.(check string) "missing final digit" "GPP101" (Driver.nearest_code "GPP10");
  Alcotest.(check string) "trailing typo" "GPP301" (Driver.nearest_code "GPP301x");
  Alcotest.(check string) "ties break alphabetically" "GPP601" (Driver.nearest_code "GPP600")

(* Section laws the bounds and race passes lean on. *)

let dim_gen =
  QCheck2.Gen.(
    let* lo = int_range (-40) 40 in
    let* len = int_range 0 50 in
    let* stride = int_range 1 6 in
    return (Section.dim_exn ~lo ~hi:(lo + len) ~stride))

(* Same-rank groups, so intersect/union are defined across all of
   them. *)
let section_pair_gen =
  QCheck2.Gen.(
    let* rank = int_range 1 2 in
    let* d1 = list_size (return rank) dim_gen in
    let* d2 = list_size (return rank) dim_gen in
    return (Section.make "a" d1, Section.make "a" d2))

let section_triple_gen =
  QCheck2.Gen.(
    let* rank = int_range 1 2 in
    let* d1 = list_size (return rank) dim_gen in
    let* d2 = list_size (return rank) dim_gen in
    let* d3 = list_size (return rank) dim_gen in
    return (Section.make "a" d1, Section.make "a" d2, Section.make "a" d3))

let test_intersect_commutative =
  Helpers.qtest ~count:500 "intersect commutes" section_pair_gen (fun (s1, s2) ->
      match (Section.intersect s1 s2, Section.intersect s2 s1) with
      | None, None -> true
      | Some a, Some b -> Section.equal a b
      | Some _, None | None, Some _ -> false)

let test_union_upper_bound =
  Helpers.qtest ~count:500 "union contains both operands" section_pair_gen (fun (s1, s2) ->
      let u = Section.union s1 s2 in
      Section.contains ~outer:u ~inner:s1 && Section.contains ~outer:u ~inner:s2)

let test_containment_monotone_under_union =
  Helpers.qtest ~count:500 "containment is monotone under union" section_triple_gen
    (fun (outer, inner, extra) ->
      (* Growing the outer section by a union can never lose a
         containment — the property that keeps the race pass's
         region accumulation sound. *)
      QCheck2.assume (Section.contains ~outer ~inner);
      Section.contains ~outer:(Section.union outer extra) ~inner)

let test_overlap_symmetric =
  Helpers.qtest ~count:500 "overlap is symmetric" section_pair_gen (fun (s1, s2) ->
      Section.overlap s1 s2 = Section.overlap s2 s1)

(* Parser satellite: path-qualified errors, duplicate-name rejection. *)

let test_parser_duplicate_kernel_rejected () =
  let e =
    Helpers.check_error "duplicate kernel"
      (Gpp_skeleton.Parser.parse
         {|
program dup
array a dense 16
kernel k
  loop i parallel 16
  load a [i]
end
kernel k
  loop i parallel 16
  load a [i]
end
schedule
  call k
end
|})
  in
  Helpers.check_contains "mentions the duplicate" ~needle:"duplicate kernel name k" e

let test_parser_duplicate_array_rejected () =
  let e =
    Helpers.check_error "duplicate array"
      (Gpp_skeleton.Parser.parse
         {|
program dup
array a dense 16
array a dense 32
kernel k
  loop i parallel 16
  load a [i]
end
schedule
  call k
end
|})
  in
  Helpers.check_contains "mentions the duplicate" ~needle:"duplicate array name a" e;
  Helpers.check_contains "carries the line" ~needle:"line 4" e

let test_parser_error_carries_path () =
  let e =
    Helpers.check_error "path prefix"
      (Gpp_skeleton.Parser.parse ~path:"broken.skel" "program p\nnonsense here\n")
  in
  Helpers.check_contains "path first" ~needle:"broken.skel: line 2" e

let test_parse_file_error_carries_path () =
  let path = Filename.temp_file "gpp_lint_fixture" ".skel" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "program p\narray a dense 16\nbogus\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let e = Helpers.check_error "parse_file" (Gpp_skeleton.Parser.parse_file path) in
      Helpers.check_contains "path in message" ~needle:path e;
      Helpers.check_contains "line in message" ~needle:"line 3" e)

let test_parse_file_validation_error_carries_path () =
  let path = Filename.temp_file "gpp_lint_fixture" ".skel" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        "program p\narray a dense 16\nkernel k\n  loop i parallel 16\n  load a [i]\nend\nschedule\n  call missing\nend\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let e = Helpers.check_error "parse_file" (Gpp_skeleton.Parser.parse_file path) in
      Helpers.check_contains "path in message" ~needle:path e;
      Helpers.check_contains "validation text" ~needle:"undefined kernel" e)

let () =
  Alcotest.run "analysis"
    [
      ( "fixtures",
        [
          Alcotest.test_case "clean program" `Quick test_clean_program;
          Alcotest.test_case "GPP101 store out of bounds" `Quick test_gpp101_store_out_of_bounds;
          Alcotest.test_case "GPP102 halo load" `Quick test_gpp102_halo_load;
          Alcotest.test_case "GPP103 fully out of bounds" `Quick test_gpp103_fully_out_of_bounds;
          Alcotest.test_case "GPP201 independent store" `Quick test_gpp201_parallel_independent_store;
          Alcotest.test_case "GPP201 serial ok" `Quick test_gpp201_serial_loop_is_fine;
          Alcotest.test_case "GPP202 overlapping stores" `Quick test_gpp202_overlapping_stores;
          Alcotest.test_case "GPP203 read after write" `Quick test_gpp203_read_after_write;
          Alcotest.test_case "GPP203 in-place ok" `Quick test_gpp203_in_place_update_is_fine;
          Alcotest.test_case "GPP301 dead temporary" `Quick test_gpp301_dead_temporary_write;
          Alcotest.test_case "GPP301 consumed ok + GPP302" `Quick test_gpp301_consumed_temporary_is_fine;
          Alcotest.test_case "GPP303 conservative fallback" `Quick test_gpp303_conservative_fallback;
          Alcotest.test_case "GPP401 strided access" `Quick test_gpp401_strided_access;
          Alcotest.test_case "GPP402 divergent branch" `Quick test_gpp402_divergent_branch;
          Alcotest.test_case "GPP402 uniform ok" `Quick test_gpp402_uniform_branch_is_fine;
          Alcotest.test_case "perf lints skip cold kernels" `Quick test_perf_lints_skip_cold_kernels;
          Alcotest.test_case "GPP501 duplicate arrays" `Quick test_gpp501_duplicate_arrays;
          Alcotest.test_case "GPP502 duplicate kernels" `Quick test_gpp502_duplicate_kernels;
          Alcotest.test_case "GPP503 unused array" `Quick test_gpp503_unused_array;
          Alcotest.test_case "GPP504 unscheduled kernel" `Quick test_gpp504_unscheduled_kernel;
          Alcotest.test_case "GPP505 idle temporary" `Quick test_gpp505_never_written_temporary;
          Alcotest.test_case "via-array is a use" `Quick test_indirect_index_array_counts_as_referenced;
          Alcotest.test_case "GPP601 redundant upload" `Quick test_gpp601_redundant_upload;
          Alcotest.test_case "GPP602 dead download" `Quick test_gpp602_dead_download;
          Alcotest.test_case "GPP603 hoistable upload" `Quick test_gpp603_hoistable_upload;
          Alcotest.test_case "GPP603 single iteration ok" `Quick test_gpp603_silent_without_iteration;
          Alcotest.test_case "GPP604 unreachable extent" `Quick test_gpp604_unreachable_extent;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "bundled strict-clean" `Quick test_bundled_workloads_strict_clean;
          Alcotest.test_case "export round-trip" `Quick test_bundled_workloads_roundtrip_clean;
        ] );
      ( "driver",
        [
          Alcotest.test_case "sorted and deduped" `Quick test_report_sorted_and_deduped;
          Alcotest.test_case "code index" `Quick test_code_index_covers_report_codes;
          Alcotest.test_case "find_code lookup" `Quick test_find_code_lookup;
          Alcotest.test_case "nearest_code suggestion" `Quick test_nearest_code_suggestion;
        ] );
      ( "json",
        [
          Alcotest.test_case "schema round-trip" `Quick test_json_schema_roundtrip;
          Alcotest.test_case "multi-report array" `Quick test_json_reports_array;
          Alcotest.test_case "SARIF schema shape" `Quick test_sarif_schema;
        ] );
      ( "section laws",
        [
          test_intersect_commutative;
          test_union_upper_bound;
          test_containment_monotone_under_union;
          test_overlap_symmetric;
        ] );
      ( "parser",
        [
          Alcotest.test_case "duplicate kernel rejected" `Quick test_parser_duplicate_kernel_rejected;
          Alcotest.test_case "duplicate array rejected" `Quick test_parser_duplicate_array_rejected;
          Alcotest.test_case "error carries path" `Quick test_parser_error_carries_path;
          Alcotest.test_case "parse_file error carries path" `Quick test_parse_file_error_carries_path;
          Alcotest.test_case "validation error carries path" `Quick
            test_parse_file_validation_error_carries_path;
        ] );
    ]
