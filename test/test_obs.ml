(* Tests for gpp_obs: span nesting and aggregation, counter
   arithmetic, the disabled-mode no-op guarantee (pipeline output must
   stay byte-identical with the library linked in and idle), and the
   Chrome-trace writer/validator pair — including a qcheck property
   that every emitted trace is well-formed JSON whose B/E events match
   in LIFO order. *)

module Obs = Gpp_obs.Obs
module Validate = Gpp_obs.Validate
module Projection = Gpp_core.Projection
module Grophecy = Gpp_core.Grophecy

let tmp_trace =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpp-obs-test.%d.%d.json" (Unix.getpid ()) !n)

(* Every test leaves the registry clean and the flag off, so suites
   sharing this process never observe stray state. *)
let with_obs ~enabled f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Obs.stop_trace ();
      Obs.set_enabled false;
      Obs.reset ())
    f

let agg_by_name name =
  match List.find_opt (fun (a : Obs.agg) -> a.Obs.name = name) (Obs.aggregates ()) with
  | Some a -> a
  | None -> Alcotest.failf "no aggregate named %s" name

(* Spans *)

let test_span_nesting () =
  with_obs ~enabled:true @@ fun () ->
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
        Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 2));
        Obs.span "leaf" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "span returns the body's value" 42 r;
  Alcotest.(check int) "all spans closed" 0 (Obs.depth ());
  let names = List.map (fun (a : Obs.agg) -> a.Obs.name) (Obs.aggregates ()) in
  Alcotest.(check (list string)) "first-seen order" [ "outer"; "inner"; "leaf" ] names;
  let outer = agg_by_name "outer" and inner = agg_by_name "inner" and leaf = agg_by_name "leaf" in
  Alcotest.(check int) "outer ran once" 1 outer.Obs.count;
  Alcotest.(check int) "inner ran twice" 2 inner.Obs.count;
  Alcotest.(check int) "outer at depth 0" 0 outer.Obs.depth;
  Alcotest.(check int) "inner at depth 1" 1 inner.Obs.depth;
  Alcotest.(check int) "leaf at depth 1" 1 leaf.Obs.depth;
  Alcotest.(check bool) "inclusive >= children" true
    (outer.Obs.total_us >= inner.Obs.total_us +. leaf.Obs.total_us);
  Alcotest.(check bool) "self = inclusive - children" true
    (outer.Obs.self_us <= outer.Obs.total_us);
  match Obs.summary_table () with
  | Some s -> Alcotest.(check bool) "summary mentions spans" true (String.length s > 0)
  | None -> Alcotest.fail "summary_table empty after recording spans"

let test_span_exception_safety () =
  with_obs ~enabled:true @@ fun () ->
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Obs.depth ());
  Alcotest.(check int) "raising span still aggregated" 1 (agg_by_name "boom").Obs.count

(* Counters *)

let test_counter_arithmetic () =
  with_obs ~enabled:true @@ fun () ->
  let c = Obs.counter "test.zeta" in
  let c' = Obs.counter "test.zeta" in
  let d = Obs.counter "test.alpha" in
  let z = Obs.counter "test.untouched" in
  Obs.add c 40;
  Obs.incr c';
  Obs.incr c';
  Alcotest.(check int) "interned handles share state" 42 (Obs.value c);
  Obs.set d 7;
  Obs.set d 5;
  Alcotest.(check int) "set is absolute" 5 (Obs.value d);
  Alcotest.(check int) "untouched stays zero" 0 (Obs.value z);
  Alcotest.(check (list (pair string int)))
    "counters () is non-zero only, sorted by name"
    [ ("test.alpha", 5); ("test.zeta", 42) ]
    (Obs.counters ())

(* Disabled mode *)

let test_disabled_noop () =
  with_obs ~enabled:false @@ fun () ->
  let c = Obs.counter "test.disabled" in
  Obs.add c 10;
  Obs.incr c;
  Obs.set c 99;
  let r = Obs.span "invisible" (fun () -> "through") in
  Obs.event ~detail:"nothing" "invisible.event";
  Alcotest.(check string) "span is transparent" "through" r;
  Alcotest.(check int) "counter updates dropped" 0 (Obs.value c);
  Alcotest.(check (list (pair string int))) "no counters recorded" [] (Obs.counters ());
  Alcotest.(check int) "no aggregates recorded" 0 (List.length (Obs.aggregates ()));
  Alcotest.(check bool) "summary empty" true (Obs.summary_table () = None)

(* Byte-identity: projecting a workload with tracing on must print the
   exact same projection as with the library idle.  The memo cache is
   bypassed so the second run really recomputes. *)

let test_golden_byte_identity () =
  let machine = Gpp_arch.Machine.argonne_node in
  let s = Grophecy.init machine in
  let program = Gpp_workloads.Srad.program ~iterations:1 ~n:256 () in
  let render () =
    match Projection.project ~pricing:s.Grophecy.pricing program with
    | Ok p -> Format.asprintf "%a" Projection.pp p
    | Error e -> Alcotest.failf "projection failed: %s" (Gpp_core.Error.to_string e)
  in
  Gpp_cache.Control.set_enabled false;
  Fun.protect ~finally:(fun () -> Gpp_cache.Control.set_enabled true) @@ fun () ->
  let plain = render () in
  let file = tmp_trace () in
  let traced =
    with_obs ~enabled:true @@ fun () ->
    (match Obs.start_trace file with
    | Ok () -> ()
    | Error e -> Alcotest.failf "start_trace: %s" e);
    let out = render () in
    Obs.stop_trace ();
    out
  in
  Alcotest.(check string) "traced output byte-identical" plain traced;
  (match Validate.validate_file file with
  | Ok st ->
      Alcotest.(check bool) "trace has spans" true (st.Validate.spans > 0);
      Alcotest.(check bool) "trace has counter samples" true (st.Validate.counter_samples > 0)
  | Error e -> Alcotest.failf "trace does not validate: %s" e);
  Sys.remove file

(* Validator negatives: each malformation must be rejected, never
   silently accepted. *)

let ev fields = Printf.sprintf "{%s}" (String.concat "," fields)
let arr evs = Printf.sprintf "[%s]" (String.concat "," evs)
let b name = ev [ {|"ph":"B"|}; Printf.sprintf {|"name":%S|} name; {|"ts":1|}; {|"pid":1|}; {|"tid":1|} ]
let e name = ev [ {|"ph":"E"|}; Printf.sprintf {|"name":%S|} name; {|"ts":2|}; {|"pid":1|}; {|"tid":1|} ]

let test_validator_rejects () =
  let reject what s =
    match Validate.validate_string s with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "truncated JSON" {|{"traceEvents":[|};
  reject "non-array payload" {|{"traceEvents":42}|};
  reject "unmatched B" (arr [ b "open" ]);
  reject "E without B" (arr [ e "stray" ]);
  reject "crossed B/E pairs" (arr [ b "a"; b "b"; e "a"; e "b" ]);
  reject "unknown phase" (arr [ ev [ {|"ph":"Q"|}; {|"name":"x"|}; {|"ts":1|}; {|"pid":1|}; {|"tid":1|} ] ]);
  reject "X without dur" (arr [ ev [ {|"ph":"X"|}; {|"name":"x"|}; {|"ts":1|}; {|"pid":1|}; {|"tid":1|} ] ]);
  reject "C without args" (arr [ ev [ {|"ph":"C"|}; {|"name":"x"|}; {|"ts":1|}; {|"pid":1|}; {|"tid":1|} ] ]);
  match Validate.validate_string (arr [ b "a"; e "a" ]) with
  | Ok st -> Alcotest.(check int) "sane trace accepted" 1 st.Validate.spans
  | Error err -> Alcotest.failf "validator rejected a sane trace: %s" err

(* Property: any tree of spans emits a trace that parses, whose B/E
   events pair up in LIFO order, with exactly one span pair per node
   and a max nesting depth equal to the tree's. *)

type span_tree = Node of span_tree list

let rec tree_size (Node kids) = List.fold_left (fun a k -> a + tree_size k) 1 kids
let rec tree_depth (Node kids) = 1 + List.fold_left (fun a k -> max a (tree_depth k)) 0 kids

let tree_gen =
  QCheck.Gen.(
    sized_size (int_range 1 4) @@ fix (fun self depth ->
        if depth <= 1 then return (Node [])
        else
          let* width = int_range 0 3 in
          let* kids = list_size (return width) (self (depth - 1)) in
          return (Node kids)))

let arbitrary_tree =
  let rec print (Node kids) = Printf.sprintf "Node[%s]" (String.concat ";" (List.map print kids)) in
  QCheck.make ~print tree_gen

let rec run_tree i (Node kids) =
  Obs.span (Printf.sprintf "prop.n%d" i) (fun () ->
      List.iteri (fun j k -> run_tree ((i * 10) + j + 1) k) kids)

let prop_trace_well_formed =
  QCheck.Test.make ~count:60 ~name:"emitted traces are well-formed with matched B/E pairs"
    arbitrary_tree (fun tree ->
      let file = tmp_trace () in
      with_obs ~enabled:true @@ fun () ->
      (match Obs.start_trace file with
      | Ok () -> ()
      | Error err -> QCheck.Test.fail_reportf "start_trace: %s" err);
      run_tree 1 tree;
      Obs.stop_trace ();
      let result = Validate.validate_file file in
      Sys.remove file;
      match result with
      | Error err -> QCheck.Test.fail_reportf "invalid trace: %s" err
      | Ok st ->
          st.Validate.spans = tree_size tree
          && st.Validate.instants = 0
          && st.Validate.counter_samples = 0
          && st.Validate.max_depth = tree_depth tree
          (* metadata record + one B and one E per node *)
          && st.Validate.events = 1 + (2 * tree_size tree))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and aggregation" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
        ] );
      ("counters", [ Alcotest.test_case "arithmetic" `Quick test_counter_arithmetic ]);
      ( "disabled",
        [
          Alcotest.test_case "true no-op" `Quick test_disabled_noop;
          Alcotest.test_case "golden byte identity" `Quick test_golden_byte_identity;
        ] );
      ( "trace",
        [ Alcotest.test_case "validator rejects malformed" `Quick test_validator_rejects ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_trace_well_formed ] );
    ]
