(* Tests for Gpp_engine.Machines: the sexp machine-descriptor catalog
   behind --machines / GPP_MACHINES / the config (machines ...) group. *)

module Machine = Gpp_arch.Machine
module Pcie = Gpp_arch.Pcie_spec
module Machines = Gpp_engine.Machines
module Sexp = Gpp_engine.Sexp
module Error = Gpp_engine.Error

let sexp_of_string s =
  match Sexp.parse_string s with
  | Ok sexp -> sexp
  | Error m -> Alcotest.failf "test sexp did not parse: %s" m

let parse ?(base = fun id -> Machine.find ~id) s = Machines.of_sexp ~base (sexp_of_string s)

let with_catalog_file contents f =
  let path = Filename.temp_file "gpp_machines" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

(* The error path every test below cares about: a Config error naming
   the file, mapped onto exit code 2. *)
let check_config_error msg ~path ~needle = function
  | Ok _ -> Alcotest.failf "%s: expected a config error" msg
  | Error (Error.Config { source; message }) ->
      Alcotest.(check (option string)) (msg ^ ": source") (Some path) source;
      Helpers.check_contains (msg ^ ": message names the file") ~needle:path message;
      Helpers.check_contains (msg ^ ": message") ~needle message;
      Alcotest.(check int)
        (msg ^ ": exit code")
        2
        (Error.exit_code (Error.Config { source; message }))
  | Error e -> Alcotest.failf "%s: expected Config, got %s" msg (Error.to_string e)

(* -- descriptor parsing ------------------------------------------------- *)

let test_base_and_overrides () =
  let m =
    parse
      {|((base hopper) (id hopper-x8) (staging pageable)
         (cpu ((mem-bandwidth-gb 100)))
         (gpu ((launch-overhead-us 7)))
         (link ((preset pcie5-x16) (lanes 8))))|}
  in
  Alcotest.(check string) "id" "hopper-x8" m.Machine.id;
  Alcotest.(check bool) "staging" true (m.Machine.staging = Machine.Pageable);
  Helpers.close_rel ~tolerance:1e-9 "cpu -gb key" 100e9 m.Machine.cpu.Gpp_arch.Cpu.mem_bandwidth;
  Helpers.close_rel ~tolerance:1e-9 "gpu -us key" 7e-6
    m.Machine.gpu.Gpp_arch.Gpu.launch_overhead;
  Alcotest.(check int) "link lanes" 8 m.Machine.pcie.Pcie.lanes;
  Alcotest.(check bool) "link preset gen" true (m.Machine.pcie.Pcie.generation = Pcie.Gen5);
  (* Everything not overridden comes from the base. *)
  let hopper = Option.get (Machine.find ~id:"hopper") in
  Alcotest.(check string) "gpu inherited" hopper.Machine.gpu.Gpp_arch.Gpu.name
    m.Machine.gpu.Gpp_arch.Gpu.name

let test_id_defaults_to_base () =
  (* (base kepler) with no (id ...) overrides kepler in place. *)
  let m = parse {|((base kepler) (staging pageable))|} in
  Alcotest.(check string) "id" "kepler" m.Machine.id

let test_parse_errors_name_the_machine () =
  let expect_bad msg ~needle s =
    match parse s with
    | exception Machines.Bad m -> Helpers.check_contains msg ~needle m
    | _ -> Alcotest.failf "%s: expected Machines.Bad" msg
  in
  expect_bad "unknown key" ~needle:"machine hopper-x8" {|((base hopper) (id hopper-x8) (bogus 1))|};
  expect_bad "unknown component key" ~needle:"link: unknown key"
    {|((base hopper) (id x) (link ((speed 9))))|};
  expect_bad "unknown base" ~needle:{|unknown machine "tpu"|} {|((base tpu) (id x))|};
  expect_bad "missing id" ~needle:"missing (id ...)" {|((staging pinned))|};
  expect_bad "unknown preset" ~needle:"unknown preset" {|((id x) (gpu ((preset rtx-9090))))|};
  expect_bad "non-numeric" ~needle:"expected an integer" {|((id x) (link ((lanes many))))|}

let test_validation_rejects_bad_values () =
  (* lanes 3 parses but fails Pcie validation; the message carries the
     machine id so a multi-machine file pinpoints the culprit. *)
  match parse {|((base hopper) (id hopper-bad) (link ((lanes 3))))|} with
  | exception Machines.Bad m -> Helpers.check_contains "names machine" ~needle:"hopper-bad" m
  | _ -> Alcotest.fail "lanes 3 must not validate"

(* -- catalog files ------------------------------------------------------ *)

let test_load_file_good () =
  with_catalog_file
    {|(machines
       ((base kepler) (staging pageable))
       ((id toy) (base argonne) (name "toy") (link ((generation gen2)))))|}
    (fun path ->
      let catalog = Helpers.check_core "load" (Machines.load_file ~base:Machine.catalog path) in
      (* kepler overridden in place: same position, new staging. *)
      Alcotest.(check int) "no growth from override" (List.length Machine.catalog + 1)
        (List.length catalog);
      let kepler = Helpers.check_ok "kepler" (Machines.find catalog "kepler") in
      Alcotest.(check bool) "kepler staging" true (kepler.Machine.staging = Machine.Pageable);
      let toy = Helpers.check_ok "toy" (Machines.find catalog "toy") in
      Alcotest.(check bool) "toy gen2" true (toy.Machine.pcie.Pcie.generation = Pcie.Gen2))

let test_load_file_errors_name_the_file () =
  with_catalog_file {|(machines ((base hopper) (id hx) (bogus 1)))|} (fun path ->
      check_config_error "bad key" ~path ~needle:"machine hx"
        (Machines.load_file ~base:Machine.catalog path));
  with_catalog_file {|(machines ((base hopper) (id hx) (link ((lanes 3)))))|} (fun path ->
      check_config_error "failed validation" ~path ~needle:"hx"
        (Machines.load_file ~base:Machine.catalog path));
  with_catalog_file {|(machines ((id dup) (base argonne)) ((id dup) (base gt200)))|}
    (fun path ->
      check_config_error "duplicate id" ~path ~needle:{|duplicate machine id "dup"|}
        (Machines.load_file ~base:Machine.catalog path));
  with_catalog_file {|(machines ((id unbalanced)|} (fun path ->
      match Machines.load_file ~base:Machine.catalog path with
      | Error (Error.Config { source = Some s; _ }) ->
          Alcotest.(check string) "syntax error source" path s
      | _ -> Alcotest.fail "syntax error must be Config");
  match Machines.load_file ~base:Machine.catalog "/nonexistent/machines.sexp" with
  | Error (Error.Config _) -> ()
  | _ -> Alcotest.fail "unreadable file must be Config"

let test_file_local_base_references () =
  (* A descriptor can (base ...) an earlier descriptor in the same file. *)
  with_catalog_file
    {|(machines
       ((id lab-a) (base ampere) (link ((lanes 8))))
       ((id lab-b) (base lab-a) (staging pageable)))|}
    (fun path ->
      let catalog = Helpers.check_core "load" (Machines.load_file ~base:Machine.catalog path) in
      let b = Helpers.check_ok "lab-b" (Machines.find catalog "lab-b") in
      Alcotest.(check int) "inherited lanes" 8 b.Machine.pcie.Pcie.lanes;
      Alcotest.(check bool) "own staging" true (b.Machine.staging = Machine.Pageable))

let test_find_lists_catalog () =
  let err = Helpers.check_error "unknown" (Machines.find Machine.catalog "cray-1") in
  Helpers.check_contains "names the id" ~needle:{|"cray-1"|} err;
  Helpers.check_contains "lists argonne" ~needle:"argonne" err;
  Helpers.check_contains "lists hopper" ~needle:"hopper" err

(* -- round-trip --------------------------------------------------------- *)

let no_base _ = None

let test_catalog_round_trips () =
  List.iter
    (fun (m : Machine.t) ->
      let back = Machines.of_sexp ~base:no_base (Machines.to_sexp m) in
      if back <> m then Alcotest.failf "%s: to_sexp/of_sexp changed the machine" m.Machine.id)
    Machine.catalog

let test_rendered_text_round_trips () =
  (* Through the printer and parser, not just the Sexp.t value. *)
  List.iter
    (fun (m : Machine.t) ->
      let text = Sexp.to_string (Machines.to_sexp m) in
      let back = Machines.of_sexp ~base:no_base (sexp_of_string text) in
      if back <> m then Alcotest.failf "%s: textual round-trip changed the machine" m.Machine.id)
    Machine.catalog

let qcheck_round_trip =
  (* Perturb a catalog machine with awkward floats (%.17g must preserve
     every bit) and random-but-valid structure, then round-trip. *)
  let gen =
    QCheck2.Gen.(
      let* idx = int_bound (List.length Machine.catalog - 1) in
      let* clock = float_range 0.1 9.9 in
      let* dram = float_range 1e9 9e12 in
      let* launch = float_range 1e-7 1e-3 in
      let* lanes = oneofl [ 1; 2; 4; 8; 16 ] in
      let+ staging = oneofl [ Machine.Pinned; Machine.Pageable ] in
      let m = List.nth Machine.catalog idx in
      {
        m with
        Machine.id = m.Machine.id ^ "-q";
        staging;
        cpu = { m.Machine.cpu with Gpp_arch.Cpu.clock_ghz = clock };
        gpu =
          {
            m.Machine.gpu with
            Gpp_arch.Gpu.dram_bandwidth = dram;
            Gpp_arch.Gpu.launch_overhead = launch;
          };
        pcie =
          (match m.Machine.pcie.Pcie.generation with
          | Pcie.Nvlink2 | Pcie.Nvlink3 -> m.Machine.pcie
          | _ -> { m.Machine.pcie with Pcie.lanes });
      })
  in
  Helpers.qtest ~count:200 "descriptor round-trip is exact" gen (fun m ->
      Machines.of_sexp ~base:no_base (Machines.to_sexp m) = m)

(* -- name tables -------------------------------------------------------- *)

let test_staging_names () =
  List.iter
    (fun s ->
      match Machine.staging_of_name (Machine.staging_name s) with
      | Ok s' when s' = s -> ()
      | _ -> Alcotest.fail "staging name round-trip")
    [ Machine.Pinned; Machine.Pageable ];
  ignore (Helpers.check_error "bad staging" (Machine.staging_of_name "mapped"))

let test_generation_names () =
  List.iter
    (fun (name, expected) ->
      let g = Helpers.check_ok name (Pcie.generation_of_name name) in
      Alcotest.(check bool) name true (g = expected))
    [
      ("gen3", Pcie.Gen3);
      ("GEN3", Pcie.Gen3);
      ("3", Pcie.Gen3);
      ("nvlink2", Pcie.Nvlink2);
      ("NVLink3", Pcie.Nvlink3);
    ];
  ignore (Helpers.check_error "gen9" (Pcie.generation_of_name "gen9"))

let () =
  Alcotest.run "gpp_machines"
    [
      ( "descriptor",
        [
          Alcotest.test_case "base + overrides" `Quick test_base_and_overrides;
          Alcotest.test_case "id defaults to base" `Quick test_id_defaults_to_base;
          Alcotest.test_case "parse errors name the machine" `Quick
            test_parse_errors_name_the_machine;
          Alcotest.test_case "validation rejects bad values" `Quick
            test_validation_rejects_bad_values;
        ] );
      ( "catalog file",
        [
          Alcotest.test_case "load + merge" `Quick test_load_file_good;
          Alcotest.test_case "errors name the file (exit 2)" `Quick
            test_load_file_errors_name_the_file;
          Alcotest.test_case "file-local base references" `Quick test_file_local_base_references;
          Alcotest.test_case "find lists the catalog" `Quick test_find_lists_catalog;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "whole catalog (sexp value)" `Quick test_catalog_round_trips;
          Alcotest.test_case "whole catalog (rendered text)" `Quick
            test_rendered_text_round_trips;
          qcheck_round_trip;
        ] );
      ( "names",
        [
          Alcotest.test_case "staging" `Quick test_staging_names;
          Alcotest.test_case "link generations" `Quick test_generation_names;
        ] );
    ]
