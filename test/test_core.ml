(* Tests for Gpp_core: projection, measurement, evaluation, and the
   Grophecy facade. *)

module Projection = Gpp_core.Projection
module Measurement = Gpp_core.Measurement
module Evaluation = Gpp_core.Evaluation
module Grophecy = Gpp_core.Grophecy
module Analyzer = Gpp_dataflow.Analyzer

let machine = Gpp_arch.Machine.argonne_node

let session = lazy (Grophecy.init machine)

let project program =
  let s = Lazy.force session in
  Helpers.check_core "projection"
    (Projection.project ~pricing:s.Grophecy.pricing program)

let test_projection_structure () =
  let program = Helpers.chain_program ~n:(1 lsl 16) () in
  let p = project program in
  Alcotest.(check int) "one projection per kernel" 2 (List.length p.Projection.kernels);
  Helpers.check_positive "kernel time" p.Projection.kernel_time;
  Helpers.check_positive "transfer time" p.Projection.transfer_time;
  Helpers.close ~tolerance:1e-12 "total = kernel + transfer"
    (p.Projection.kernel_time +. p.Projection.transfer_time)
    p.Projection.total_time;
  (* Transfers priced positively, one per planned transfer. *)
  Alcotest.(check int) "priced transfers"
    (List.length (Analyzer.transfers p.Projection.plan))
    (List.length p.Projection.transfers);
  List.iter
    (fun (pt : Projection.priced_transfer) -> Helpers.check_positive "priced" pt.Projection.time)
    p.Projection.transfers

let test_projection_schedule_multiplicity () =
  let p1 = project (Gpp_workloads.Srad.program ~iterations:1 ~n:256 ()) in
  let p3 = project (Gpp_workloads.Srad.program ~iterations:3 ~n:256 ()) in
  (* Kernel time scales with the schedule; transfers do not. *)
  Helpers.close_rel ~tolerance:0.001 "3x kernel time" (3.0 *. p1.Projection.kernel_time)
    p3.Projection.kernel_time;
  Helpers.close ~tolerance:1e-12 "same transfers" p1.Projection.transfer_time
    p3.Projection.transfer_time

let test_projection_accessors () =
  let p = project (Helpers.chain_program ~n:(1 lsl 14) ()) in
  Alcotest.(check bool) "kernel_time_of hit" true (Projection.kernel_time_of p "producer" <> None);
  Alcotest.(check bool) "kernel_time_of miss" true (Projection.kernel_time_of p "ghost" = None);
  Alcotest.(check int) "per-kernel list" 2 (List.length (Projection.per_kernel_times p))

let test_projection_invalid_program () =
  let s = Lazy.force session in
  let bad =
    { (Helpers.chain_program ()) with Gpp_skeleton.Program.schedule = [ Gpp_skeleton.Program.Call "nope" ] }
  in
  match Projection.project ~pricing:s.Grophecy.pricing bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected validation failure"

let test_measurement_structure () =
  let s = Lazy.force session in
  let p = project (Helpers.chain_program ~n:(1 lsl 16) ()) in
  let m =
    Helpers.check_core "measurement" (Measurement.measure ~link:s.Grophecy.application_link p)
  in
  Helpers.check_positive "kernel time" m.Measurement.kernel_time;
  Helpers.check_positive "transfer time" m.Measurement.transfer_time;
  Helpers.close ~tolerance:1e-12 "total" (m.Measurement.kernel_time +. m.Measurement.transfer_time)
    m.Measurement.total_time;
  Alcotest.(check int) "transfer count matches plan"
    (List.length p.Projection.transfers)
    (List.length m.Measurement.transfers);
  Alcotest.(check bool) "per-kernel accessor" true (Measurement.kernel_time_of m "producer" <> None)

let test_measurement_seed_determinism () =
  let s = Lazy.force session in
  let p = project (Helpers.chain_program ~n:(1 lsl 14) ()) in
  let m1 = Helpers.check_core "m1" (Measurement.measure ~seed:11L ~link:s.Grophecy.calibration_link p) in
  let m2 = Helpers.check_core "m2" (Measurement.measure ~seed:11L ~link:s.Grophecy.calibration_link p) in
  Helpers.close "same seed same kernel time" m1.Measurement.kernel_time m2.Measurement.kernel_time

let test_evaluation_speedup_identities () =
  let s = Lazy.force session in
  let program = Gpp_workloads.Hotspot.program ~n:256 () in
  let p = project program in
  let m = Helpers.check_core "m" (Measurement.measure ~link:s.Grophecy.application_link p) in
  let cpu_time = Evaluation.cpu_time ~machine program in
  let sp = Evaluation.speedups ~cpu_time p m in
  Helpers.close_rel ~tolerance:1e-6 "measured identity"
    (cpu_time /. m.Measurement.total_time)
    sp.Evaluation.measured;
  Helpers.close_rel ~tolerance:1e-6 "kernel-only identity"
    (cpu_time /. p.Projection.kernel_time)
    sp.Evaluation.kernel_only;
  Helpers.close_rel ~tolerance:1e-6 "with-transfer identity"
    (cpu_time /. p.Projection.total_time)
    sp.Evaluation.with_transfer;
  (* Kernel-only always predicts a higher speedup than kernel+transfer. *)
  Alcotest.(check bool) "kernel-only is optimistic" true
    (sp.Evaluation.kernel_only > sp.Evaluation.with_transfer);
  let errors = Evaluation.errors sp in
  Helpers.check_non_negative "error non-negative" errors.Evaluation.kernel_only

let test_iteration_sweep_monotone () =
  let s = Lazy.force session in
  let report =
    Helpers.check_core "analyze" (Grophecy.analyze s (Gpp_workloads.Srad.program ~n:512 ()))
  in
  let sweep = Grophecy.iteration_sweep report ~iterations:[ 1; 2; 4; 8; 16; 64; 256 ] in
  let measured =
    List.map (fun (p : Evaluation.iteration_point) -> p.Evaluation.speedups.Evaluation.measured) sweep
  in
  (* Transfer amortizes: measured speedup increases with iterations. *)
  let rec increasing = function a :: b :: rest -> a <= b && increasing (b :: rest) | _ -> true in
  Alcotest.(check bool) "measured speedup grows" true (increasing measured);
  (* Kernel-only prediction is iteration-independent. *)
  let ko =
    List.map (fun (p : Evaluation.iteration_point) -> p.Evaluation.speedups.Evaluation.kernel_only) sweep
  in
  List.iter (fun v -> Helpers.close_rel ~tolerance:0.02 "kernel-only flat" (List.hd ko) v) ko

let test_limit_speedups () =
  let s = Lazy.force session in
  let report =
    Helpers.check_core "analyze" (Grophecy.analyze s (Gpp_workloads.Srad.program ~n:512 ()))
  in
  let limit = Evaluation.limit_speedups report.Grophecy.projection report.Grophecy.measurement in
  (* In the limit, predictions with and without transfers coincide. *)
  Helpers.close "limit convergence" limit.Evaluation.kernel_only limit.Evaluation.with_transfer;
  Alcotest.(check bool) "transfer-only diverges" true
    (limit.Evaluation.transfer_only = Float.infinity);
  (* The limit dominates any finite-iteration measured speedup. *)
  let at_100 =
    List.hd (Grophecy.iteration_sweep report ~iterations:[ 100 ])
  in
  Alcotest.(check bool) "limit above n=100" true
    (limit.Evaluation.measured >= at_100.Evaluation.speedups.Evaluation.measured *. 0.99)

let test_facade_report () =
  let s = Lazy.force session in
  let report =
    Helpers.check_core "analyze" (Grophecy.analyze s (Gpp_workloads.Hotspot.program ~n:256 ()))
  in
  Helpers.check_positive "cpu time" report.Grophecy.cpu_time;
  Helpers.check_non_negative "kernel error" report.Grophecy.kernel_error;
  Helpers.check_non_negative "transfer error" report.Grophecy.transfer_error;
  (* analyze with params.iterations rescales before projecting. *)
  let r4 =
    Helpers.check_core "analyze 4"
      (Grophecy.analyze
         ~params:{ Grophecy.default_params with Grophecy.iterations = Some 4 }
         s
         (Gpp_workloads.Hotspot.program ~n:256 ()))
  in
  Helpers.close_rel ~tolerance:0.15 "4x kernel time"
    (4.0 *. report.Grophecy.measurement.Measurement.kernel_time)
    r4.Grophecy.measurement.Measurement.kernel_time

let test_init_calibrates () =
  let s = Grophecy.init ~seed:77L machine in
  Helpers.check_in_range "h2d bandwidth" ~lo:2e9 ~hi:3e9 (Gpp_pcie.Model.bandwidth s.Grophecy.h2d);
  Helpers.check_in_range "d2h bandwidth" ~lo:2e9 ~hi:3e9 (Gpp_pcie.Model.bandwidth s.Grophecy.d2h);
  (* Application link carries the outlier mode, calibration link not. *)
  let app_cfg = Gpp_pcie.Link.config s.Grophecy.application_link in
  let cal_cfg = Gpp_pcie.Link.config s.Grophecy.calibration_link in
  Alcotest.(check bool) "outliers on app link" true (app_cfg.Gpp_pcie.Link.outlier_probability > 0.0);
  Helpers.close "no outliers on calibration link" 0.0 cal_cfg.Gpp_pcie.Link.outlier_probability

(* Advisor *)

let project_for_advice program =
  let s = Lazy.force session in
  Helpers.check_core "project"
    (Projection.project ~pricing:s.Grophecy.pricing program)

let test_advisor_port () =
  let p = project_for_advice (Gpp_workloads.Srad.program ~n:2048 ()) in
  let r = Gpp_core.Advisor.recommend p in
  Alcotest.(check bool) "srad ports" true (r.Gpp_core.Advisor.verdict = Gpp_core.Advisor.Port);
  Alcotest.(check bool) "speedup above one" true (r.Gpp_core.Advisor.projected_speedup > 1.0);
  Alcotest.(check bool) "kernel-only is higher" true
    (r.Gpp_core.Advisor.kernel_only_speedup > r.Gpp_core.Advisor.projected_speedup);
  Alcotest.(check (option int)) "break-even immediately" (Some 1)
    r.Gpp_core.Advisor.break_even_iterations

let test_advisor_port_if_iterated () =
  let p = project_for_advice (Gpp_workloads.Stassuij.program ()) in
  let r = Gpp_core.Advisor.recommend p in
  (match r.Gpp_core.Advisor.verdict with
  | Gpp_core.Advisor.Port_if_iterated n ->
      Alcotest.(check bool) "plausible break-even" true (n > 1 && n < 1000);
      (* The break-even really is the crossing point. *)
      let at k =
        (Gpp_core.Advisor.recommend ~iterations:k p).Gpp_core.Advisor.projected_speedup
      in
      Alcotest.(check bool) "wins at n" true (at n > 1.0);
      Alcotest.(check bool) "loses at n-1" true (at (n - 1) <= 1.0)
  | v -> Alcotest.failf "expected Port_if_iterated, got %s" (Gpp_core.Advisor.verdict_name v));
  Alcotest.(check bool) "has actionable notes" true (r.Gpp_core.Advisor.notes <> [])

let test_advisor_do_not_port () =
  let p = project_for_advice (Gpp_workloads.Vecadd.program ~n:(16 * 1024 * 1024)) in
  let r = Gpp_core.Advisor.recommend p in
  Alcotest.(check bool) "vecadd rejected" true
    (r.Gpp_core.Advisor.verdict = Gpp_core.Advisor.Do_not_port);
  Alcotest.(check (option int)) "no break-even" None r.Gpp_core.Advisor.break_even_iterations;
  (* Transfer dominates vecadd. *)
  Alcotest.(check bool) "transfer-dominated" true
    (r.Gpp_core.Advisor.dominant_cost <> Gpp_core.Advisor.Kernel_time)

let test_advisor_iterations_flip_verdict () =
  let p = project_for_advice (Gpp_workloads.Stassuij.program ()) in
  let now = Gpp_core.Advisor.recommend p in
  let later = Gpp_core.Advisor.recommend ~iterations:500 p in
  Alcotest.(check bool) "loss at one iteration" true
    (now.Gpp_core.Advisor.verdict <> Gpp_core.Advisor.Port);
  Alcotest.(check bool) "win at many iterations" true
    (later.Gpp_core.Advisor.verdict = Gpp_core.Advisor.Port);
  Helpers.check_raises_invalid "bad iterations" (fun () ->
      ignore (Gpp_core.Advisor.recommend ~iterations:0 p))

let () =
  Alcotest.run "gpp_core"
    [
      ( "projection",
        [
          Alcotest.test_case "structure" `Quick test_projection_structure;
          Alcotest.test_case "schedule multiplicity" `Quick test_projection_schedule_multiplicity;
          Alcotest.test_case "accessors" `Quick test_projection_accessors;
          Alcotest.test_case "invalid program" `Quick test_projection_invalid_program;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "structure" `Quick test_measurement_structure;
          Alcotest.test_case "determinism" `Quick test_measurement_seed_determinism;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "speedup identities" `Quick test_evaluation_speedup_identities;
          Alcotest.test_case "iteration sweep" `Quick test_iteration_sweep_monotone;
          Alcotest.test_case "limit" `Quick test_limit_speedups;
        ] );
      ( "facade",
        [
          Alcotest.test_case "report" `Quick test_facade_report;
          Alcotest.test_case "init calibrates" `Quick test_init_calibrates;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "port" `Quick test_advisor_port;
          Alcotest.test_case "port if iterated" `Quick test_advisor_port_if_iterated;
          Alcotest.test_case "do not port" `Quick test_advisor_do_not_port;
          Alcotest.test_case "iterations flip verdict" `Quick test_advisor_iterations_flip_verdict;
        ] );
    ]
