(* Benchmark harness: one Bechamel test per paper table/figure (the cost
   of regenerating each experiment from the shared measurement context),
   plus pipeline-stage benches covering the framework's own phases.

   Run with:  dune exec bench/main.exe
   Output: one row per benchmark with the OLS-estimated time per run. *)

open Bechamel

(* The context (calibration + full measurement of every Table I
   instance) is built once; each experiment bench then regenerates its
   table/figure from it, exactly as bin/experiments.exe does. *)
let ctx = lazy (Gpp_experiments.Context.create ())

(* Cache A/B: the headline number for the memoized projection engine.
   The full suite (fresh context + every table/figure, exactly what
   bin/experiments.exe runs) is timed four ways: cache bypassed, cold
   cache (empty tables, populated as it runs), warm cache (tables left
   over from the cold run), and warm *disk* — tables flushed to a store
   directory, cleared from memory, and reloaded, which is what a cold
   process with a persistent cache pays. *)

let run_full_suite () =
  let ctx = Gpp_experiments.Context.create () in
  List.iter
    (fun (e : Gpp_experiments.Suite.entry) -> ignore (e.run ctx))
    Gpp_experiments.Suite.all

(* Wall-clock timer.  Sys.time is process CPU time: it ignores waiting
   and, worse, *sums* across domains, so a perfectly parallel run would
   "take" as long as the sequential one.  Every A/B here reads the
   monotonic clock instead. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let timed f =
  let t0 = now_s () in
  f ();
  now_s () -. t0

(* A store directory unique to this run, removed however the bench
   exits.  A fixed path under $TMPDIR would collide between concurrent
   bench processes (one run's flush poisoning another's reload) and leak
   the store on crash. *)
let with_temp_store f =
  let dir = Filename.temp_dir "gpp-bench-store" "" in
  Fun.protect ~finally:(fun () -> ignore (Gpp_cache.Store.clear_dir ~dir)) (fun () -> f dir)

let cache_ab () =
  print_endline "cache A/B: full experiments suite (context + every table/figure)";
  let uncached = Gpp_cache.Control.without_cache (fun () -> timed run_full_suite) in
  Printf.printf "  cache bypassed: %6.2f s\n%!" uncached;
  Gpp_cache.Memo.clear_all ();
  let cold = timed run_full_suite in
  Printf.printf "  cold cache:     %6.2f s  (%.2fx vs bypassed)\n%!" cold (uncached /. cold);
  let warm = timed run_full_suite in
  Printf.printf "  warm cache:     %6.2f s  (%.2fx vs bypassed)\n%!" warm (uncached /. warm);
  (* Warm disk, cold process: flush, drop the in-memory tables, reload
     from the store files, rerun. *)
  with_temp_store @@ fun store_dir ->
  Gpp_cache.Memo.flush_disk ~dir:store_dir ();
  Gpp_cache.Memo.clear_all ();
  let load = timed (fun () -> Gpp_cache.Memo.load_disk ~dir:store_dir ()) in
  let disk_warm = timed run_full_suite in
  Printf.printf "  warm disk:      %6.2f s  (%.2fx vs bypassed; store load %.3f s)\n%!" disk_warm
    (uncached /. disk_warm) load;
  List.iter
    (fun s -> Format.printf "  %a@." Gpp_cache.Memo.pp_snapshot s)
    (Gpp_cache.Memo.snapshots ())

(* Parallel batch A/B: the full paper matrix (Table I workloads ×
   argonne and gt200) sequentially and sharded across the domain pool,
   with the cache bypassed so the parallel leg cannot ride the
   sequential leg's memo entries.  Asserts the TSVs are byte-identical,
   then writes the machine-readable result to BENCH_batch.json. *)
let batch_ab () =
  (* At least two domains even on a single-core box, so the A/B always
     exercises the pool path (the speedup is then honestly ~1x). *)
  let jobs = max 2 (Gpp_engine.Pool.default_jobs ()) in
  Printf.printf "batch A/B: paper matrix, --jobs 1 vs --jobs %d (cache bypassed)\n%!" jobs;
  let config = { Gpp_engine.Config.default with Gpp_engine.Config.use_cache = Some false } in
  let machines = [ Gpp_arch.Machine.argonne_node; Gpp_arch.Machine.gt200_node ] in
  let workloads = List.map Gpp_workloads.Registry.key Gpp_workloads.Registry.paper_instances in
  let run jobs =
    let result = ref None in
    let t = timed (fun () -> result := Some (Gpp_engine.Batch.run ~machines ~jobs config ~workloads)) in
    (Option.get !result, t)
  in
  let seq, seq_s = run 1 in
  Printf.printf "  --jobs 1:  %6.2f s\n%!" seq_s;
  let par, par_s = run jobs in
  let identical = Gpp_engine.Batch.to_tsv seq = Gpp_engine.Batch.to_tsv par in
  Printf.printf "  --jobs %d:  %6.2f s  (%.2fx; identical output: %b)\n%!" jobs par_s
    (seq_s /. par_s) identical;
  if not identical then failwith "batch A/B: parallel TSV differs from sequential";
  let cells = List.length seq.Gpp_engine.Batch.cells in
  let host_cores = Domain.recommended_domain_count () in
  (* On a box with fewer cores than domains the pool can only add
     overhead, so the speedup number measures scheduling cost, not
     scaling; the note tells the trajectory guard to skip it. *)
  let note =
    if host_cores < jobs then
      Printf.sprintf ",\n  \"note\": \"host has %d core(s) for %d domains; speedup measures pool overhead, not scaling\"" host_cores jobs
    else ""
  in
  Out_channel.with_open_text "BENCH_batch.json" (fun oc ->
      Printf.fprintf oc
        "{\n  \"benchmark\": \"batch-matrix\",\n  \"cells\": %d,\n  \"jobs\": %d,\n  \
         \"host_cores\": %d,\n  \"sequential_s\": %.3f,\n  \"parallel_s\": %.3f,\n  \
         \"speedup\": %.3f,\n  \"identical_tsv\": %b%s\n}\n"
        cells jobs host_cores seq_s par_s (seq_s /. par_s) identical note);
  Printf.printf "  wrote BENCH_batch.json (%d cells)\n%!" cells

(* Analysis leg: the cost of the fixpoint-based static analyses — the
   transfer plan under both policies and the full lint driver — over
   every registry instance, plus the engine's headline property: plan
   time is independent of the schedule's iteration count, because a
   [Repeat] body is solved to a fixed point instead of being unrolled.
   Writes BENCH_analysis.json. *)
let analysis_ab () =
  print_endline "analysis bench: fixpoint dataflow + lint over the registry";
  let reps = 50 in
  let timed_reps f =
    f ();
    (* warm-up *)
    let t0 = now_s () in
    for _ = 1 to reps do
      f ()
    done;
    (now_s () -. t0) /. float_of_int reps *. 1e3
  in
  let programs =
    List.map (fun (i : Gpp_workloads.Registry.instance) -> i.program 1) Gpp_workloads.Registry.all
  in
  let minimal_policy =
    { Gpp_dataflow.Analyzer.default_policy with Gpp_dataflow.Analyzer.plan = Gpp_dataflow.Analyzer.Minimal }
  in
  let conservative_ms =
    timed_reps (fun () ->
        List.iter (fun p -> ignore (Gpp_dataflow.Analyzer.analyze p)) programs)
  in
  Printf.printf "  plan (conservative): %8.3f ms/registry\n%!" conservative_ms;
  let minimal_ms =
    timed_reps (fun () ->
        List.iter
          (fun p -> ignore (Gpp_dataflow.Analyzer.analyze ~policy:minimal_policy p))
          programs)
  in
  Printf.printf "  plan (minimal):      %8.3f ms/registry\n%!" minimal_ms;
  let lint_ms =
    timed_reps (fun () -> List.iter (fun p -> ignore (Gpp_analysis.Driver.run p)) programs)
  in
  Printf.printf "  lint (all passes):   %8.3f ms/registry\n%!" lint_ms;
  (* Iteration-count independence on an iterative schedule. *)
  let srad n = Gpp_workloads.Srad.program ~n:1024 () |> fun p -> Gpp_skeleton.Program.with_iterations p n in
  let iter1 = srad 1 and iter1000 = srad 1000 in
  let iter1_ms = timed_reps (fun () -> ignore (Gpp_dataflow.Analyzer.analyze iter1)) in
  let iter1000_ms = timed_reps (fun () -> ignore (Gpp_dataflow.Analyzer.analyze iter1000)) in
  let scaling = iter1000_ms /. iter1_ms in
  Printf.printf "  plan srad n=1:       %8.3f ms\n%!" iter1_ms;
  Printf.printf "  plan srad n=1000:    %8.3f ms  (%.2fx — fixpoint, not unrolled)\n%!"
    iter1000_ms scaling;
  Out_channel.with_open_text "BENCH_analysis.json" (fun oc ->
      Printf.fprintf oc
        "{\n  \"benchmark\": \"analysis\",\n  \"reps\": %d,\n  \"registry_programs\": %d,\n  \
         \"plan_conservative_ms\": %.3f,\n  \"plan_minimal_ms\": %.3f,\n  \"lint_ms\": %.3f,\n  \
         \"srad_iter1_ms\": %.3f,\n  \"srad_iter1000_ms\": %.3f,\n  \
         \"iteration_scaling\": %.3f\n}\n"
        reps (List.length programs) conservative_ms minimal_ms lint_ms iter1_ms iter1000_ms
        scaling);
  Printf.printf "  wrote BENCH_analysis.json (%d programs)\n%!" (List.length programs)

(* Predictor-stack leg: the cost of training the Learned stage's ridge
   correction (the full leave-none-out fit over the Table I registry,
   simulations included) and the marginal cost each predictor variant
   adds to assembling a projection — analytic is the baseline, scaled
   re-prices through rebuilt models, learned additionally extracts
   features and applies the correction.  Writes BENCH_predict.json. *)
let predict_ab () =
  print_endline "predict bench: correction fit + per-variant assembly throughput";
  let machine = Gpp_arch.Machine.argonne_node in
  let target =
    match
      List.find_opt (fun (m : Gpp_arch.Machine.t) -> m.Gpp_arch.Machine.id = "dgx-a100")
        Gpp_arch.Machine.catalog
    with
    | Some m -> m
    | None -> failwith "predict bench: dgx-a100 missing from the catalog"
  in
  let config = Gpp_engine.Config.default in
  let session = Gpp_engine.Pipeline.session_of config in
  let correction = ref None in
  let fit_s =
    timed (fun () ->
        match Gpp_engine.Learn.correction ~config ~session () with
        | Ok c -> correction := Some c
        | Error e -> failwith ("predict bench: fit failed: " ^ Gpp_engine.Error.message e))
  in
  Printf.printf "  correction fit (full registry, sims included): %6.2f s\n%!" fit_s;
  let correction = Option.get !correction in
  let prepared =
    List.map
      (fun (i : Gpp_workloads.Registry.instance) ->
        let program = i.program 1 in
        let kernels =
          match Gpp_core.Projection.explore ~machine program with
          | Ok ks -> ks
          | Error e -> failwith ("predict bench: explore failed: " ^ Gpp_core.Error.to_string e)
        in
        (program, kernels, Gpp_dataflow.Analyzer.analyze program))
      Gpp_workloads.Registry.paper_instances
  in
  let variant name =
    match Gpp_predict.Predictor.of_string name with
    | Ok p -> p
    | Error m -> failwith ("predict bench: " ^ m)
  in
  let pricing_of predictor =
    let p =
      Gpp_predict.Pricing.make ~predictor ~source:machine ~target
        ~h2d:session.Gpp_core.Grophecy.h2d ~d2h:session.Gpp_core.Grophecy.d2h ()
    in
    if Gpp_predict.Predictor.has_learned predictor then
      Gpp_predict.Pricing.with_correction p correction
    else p
  in
  let reps = 200 in
  let throughput pricing =
    let t0 = now_s () in
    for _ = 1 to reps do
      List.iter
        (fun (program, kernels, plan) ->
          ignore (Gpp_core.Projection.assemble ~pricing ~kernels ~plan program))
        prepared
    done;
    float_of_int (reps * List.length prepared) /. (now_s () -. t0)
  in
  let rate name =
    let r = throughput (pricing_of (variant name)) in
    Printf.printf "  %-16s %10.0f predictions/s\n%!" name r;
    r
  in
  let analytic_rate = rate "analytic" in
  let scaled_rate = rate "scaled" in
  let learned_rate = rate "scaled,learned" in
  Out_channel.with_open_text "BENCH_predict.json" (fun oc ->
      Printf.fprintf oc
        "{\n  \"benchmark\": \"predict\",\n  \"training_workloads\": %d,\n  \
         \"assembly_reps\": %d,\n  \"fit_s\": %.3f,\n  \"analytic_predictions_per_s\": %.0f,\n  \
         \"scaled_predictions_per_s\": %.0f,\n  \"learned_predictions_per_s\": %.0f\n}\n"
        (List.length Gpp_workloads.Registry.paper_instances)
        reps fit_s analytic_rate scaled_rate learned_rate);
  Printf.printf "  wrote BENCH_predict.json\n%!"

let experiment_tests =
  List.map
    (fun (e : Gpp_experiments.Suite.entry) ->
      Test.make ~name:e.Gpp_experiments.Suite.id
        (Staged.stage (fun () ->
             let ctx = Lazy.force ctx in
             ignore (e.Gpp_experiments.Suite.run ctx))))
    Gpp_experiments.Suite.all

(* Pipeline-stage benches: how expensive each phase of GROPHECY++ itself
   is (the framework's own cost, not the modeled GPU time). *)

let machine = Gpp_arch.Machine.argonne_node

let session = lazy (Gpp_core.Grophecy.init machine)

(* Observability overhead: time a span-heavy workload (the hotspot
   transform search, ~hundreds of candidate spans) with the obs layer
   idle, enabled, and enabled + tracing to a file.  Run manually ahead
   of the bechamel suites — toggling the process-wide flag inside a
   staged test would contaminate every other bench. *)

let obs_overhead () =
  print_endline "obs overhead: transform search (idle / enabled / enabled+trace)";
  let program = Gpp_workloads.Hotspot.program ~n:1024 () in
  let kernel = List.hd program.Gpp_skeleton.Program.kernels in
  let search () =
    ignore
      (Gpp_cache.Control.without_cache (fun () ->
           Gpp_transform.Explore.search ~gpu:machine.Gpp_arch.Machine.gpu
             ~decls:program.Gpp_skeleton.Program.arrays kernel))
  in
  let reps = 20 in
  let timed_reps () =
    search ();
    (* warm-up *)
    let t0 = now_s () in
    for _ = 1 to reps do
      search ()
    done;
    (now_s () -. t0) /. float_of_int reps *. 1e3
  in
  let idle = timed_reps () in
  Printf.printf "  obs idle:        %8.3f ms/search\n%!" idle;
  Gpp_obs.Obs.set_enabled true;
  let enabled = timed_reps () in
  Printf.printf "  obs enabled:     %8.3f ms/search  (+%.1f%%)\n%!" enabled
    ((enabled /. idle -. 1.0) *. 100.0);
  let trace_file = Filename.temp_file "gpp-bench-trace" ".json" in
  (match Gpp_obs.Obs.start_trace trace_file with
  | Ok () -> ()
  | Error e -> failwith ("start_trace: " ^ e));
  let traced = timed_reps () in
  Gpp_obs.Obs.stop_trace ();
  Printf.printf "  obs + trace:     %8.3f ms/search  (+%.1f%%)\n%!" traced
    ((traced /. idle -. 1.0) *. 100.0);
  Sys.remove trace_file;
  Gpp_obs.Obs.set_enabled false;
  Gpp_obs.Obs.reset ()

(* Serve leg: sustained request throughput of the prediction service,
   cold (the first request computes the experiment) vs warm (responses
   come from the memo), plus the cheap liveness endpoint.  Writes
   BENCH_serve.json. *)
let serve_ab () =
  print_endline "serve bench: grophecy serve throughput, cold vs warm";
  with_temp_store @@ fun store_dir ->
  let config =
    {
      Gpp_engine.Config.default with
      Gpp_engine.Config.listen = "127.0.0.1:0";
      cache_dir = Some store_dir;
    }
  in
  Gpp_engine.Runtime.install config;
  Gpp_cache.Memo.clear_all ();
  match Gpp_serve.Serve.start config with
  | Error e -> failwith ("serve bench: " ^ Gpp_engine.Error.message e)
  | Ok server ->
      Fun.protect ~finally:(fun () -> Gpp_serve.Serve.stop server) @@ fun () ->
      let fetch target =
        match Gpp_serve.Serve.request server target with
        | Ok (200, _, body) -> body
        | Ok (status, _, _) -> failwith (Printf.sprintf "serve bench: %s -> %d" target status)
        | Error msg -> failwith ("serve bench: " ^ msg)
      in
      let cold_s = timed (fun () -> ignore (fetch "/experiment/fig5")) in
      Printf.printf "  cold /experiment/fig5: %6.2f s (computes the experiment)\n%!" cold_s;
      let reps = 200 in
      let warm_s =
        timed (fun () ->
            for _ = 1 to reps do
              ignore (fetch "/experiment/fig5")
            done)
      in
      let warm_rps = float_of_int reps /. warm_s in
      let warm_ms = warm_s /. float_of_int reps *. 1e3 in
      Printf.printf "  warm /experiment/fig5: %8.1f req/s (memoized; %.2f ms/req)\n%!" warm_rps
        warm_ms;
      let health_s =
        timed (fun () ->
            for _ = 1 to reps do
              ignore (fetch "/healthz")
            done)
      in
      let health_rps = float_of_int reps /. health_s in
      Printf.printf "  /healthz:              %8.1f req/s\n%!" health_rps;
      Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
          Printf.fprintf oc
            "{\n  \"benchmark\": \"serve\",\n  \"endpoint\": \"/experiment/fig5\",\n  \
             \"cold_first_request_s\": %.3f,\n  \"warm_requests\": %d,\n  \
             \"warm_requests_per_s\": %.1f,\n  \"warm_ms_per_request\": %.3f,\n  \
             \"healthz_requests_per_s\": %.1f,\n  \"speedup_cold_vs_warm\": %.1f\n}\n"
            cold_s reps warm_rps warm_ms health_rps
            (cold_s /. (warm_s /. float_of_int reps)));
      Printf.printf "  wrote BENCH_serve.json\n%!"

let stage_tests =
  [
    Test.make ~name:"stage:calibration"
      (Staged.stage (fun () -> ignore (Gpp_core.Grophecy.init machine)));
    Test.make ~name:"stage:transfer-analysis"
      (Staged.stage
         (let program = Gpp_workloads.Cfd.program ~nelem:97_000 () in
          fun () -> ignore (Gpp_dataflow.Analyzer.analyze program)));
    Test.make ~name:"stage:transform-search"
      (Staged.stage
         (let program = Gpp_workloads.Hotspot.program ~n:1024 () in
          let kernel = List.hd program.Gpp_skeleton.Program.kernels in
          fun () ->
            ignore
              (Gpp_transform.Explore.search ~gpu:machine.Gpp_arch.Machine.gpu
                 ~decls:program.Gpp_skeleton.Program.arrays kernel)));
    Test.make ~name:"stage:projection"
      (Staged.stage
         (let program = Gpp_workloads.Srad.program ~n:1024 () in
          fun () ->
            let s = Lazy.force session in
            ignore
              (Gpp_core.Projection.project ~pricing:s.Gpp_core.Grophecy.pricing program)));
    Test.make ~name:"stage:gpu-simulation"
      (Staged.stage
         (let program = Gpp_workloads.Srad.program ~n:1024 () in
          let s = Lazy.force session in
          let projection =
            match
              Gpp_core.Projection.project ~pricing:s.Gpp_core.Grophecy.pricing program
            with
            | Ok p -> p
            | Error e -> failwith (Gpp_core.Error.to_string e)
          in
          fun () ->
            ignore
              (Gpp_core.Measurement.measure ~runs:1 ~link:s.Gpp_core.Grophecy.application_link
                 projection)));
    Test.make ~name:"stage:full-analysis"
      (Staged.stage
         (let program = Gpp_workloads.Stassuij.program () in
          fun () ->
            let s = Lazy.force session in
            ignore
              (Gpp_core.Grophecy.analyze
                 ~params:{ Gpp_core.Grophecy.default_params with Gpp_core.Grophecy.runs = Some 3 }
                 s program)));
  ]

let all_tests = experiment_tests @ stage_tests

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ~stabilize:false ()
  in
  List.map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      Analyze.all ols Toolkit.Instance.monotonic_clock raw)
    all_tests

let () =
  (* `bench/main.exe batch` runs only the parallel batch A/B (the leg CI
     uses to refresh BENCH_batch.json without paying for the full
     suite). *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "batch" then (
    batch_ab ();
    exit 0);
  (* `bench/main.exe analysis` likewise refreshes BENCH_analysis.json
     alone. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "analysis" then (
    analysis_ab ();
    exit 0);
  (* `bench/main.exe serve` refreshes BENCH_serve.json alone. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve" then (
    serve_ab ();
    exit 0);
  (* `bench/main.exe predict` refreshes BENCH_predict.json alone. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "predict" then (
    predict_ab ();
    exit 0);
  cache_ab ();
  batch_ab ();
  analysis_ab ();
  obs_overhead ();
  serve_ab ();
  predict_ab ();
  (* Force the shared context up front so its (substantial) cost is not
     attributed to the first benchmark. *)
  print_endline "building measurement context (calibration + all Table I workloads)...";
  ignore (Lazy.force ctx);
  ignore (Lazy.force session);
  print_endline "running benchmarks...";
  let results = benchmark () in
  Printf.printf "%-28s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
          in
          let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
          Printf.printf "%-28s %13.3f ms %10.3f\n" name (estimate /. 1e6) r2)
        result)
    results
