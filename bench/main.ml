(* Benchmark harness: one Bechamel test per paper table/figure (the cost
   of regenerating each experiment from the shared measurement context),
   plus pipeline-stage benches covering the framework's own phases.

   Run with:  dune exec bench/main.exe
   Output: one row per benchmark with the OLS-estimated time per run. *)

open Bechamel

(* The context (calibration + full measurement of every Table I
   instance) is built once; each experiment bench then regenerates its
   table/figure from it, exactly as bin/experiments.exe does. *)
let ctx = lazy (Gpp_experiments.Context.create ())

(* Cache A/B: the headline number for the memoized projection engine.
   The full suite (fresh context + every table/figure, exactly what
   bin/experiments.exe runs) is timed four ways: cache bypassed, cold
   cache (empty tables, populated as it runs), warm cache (tables left
   over from the cold run), and warm *disk* — tables flushed to a store
   directory, cleared from memory, and reloaded, which is what a cold
   process with a persistent cache pays. *)

let run_full_suite () =
  let ctx = Gpp_experiments.Context.create () in
  List.iter
    (fun (e : Gpp_experiments.Suite.entry) -> ignore (e.run ctx))
    Gpp_experiments.Suite.all

let timed f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let cache_ab () =
  print_endline "cache A/B: full experiments suite (context + every table/figure)";
  let uncached = Gpp_cache.Control.without_cache (fun () -> timed run_full_suite) in
  Printf.printf "  cache bypassed: %6.2f s\n%!" uncached;
  Gpp_cache.Memo.clear_all ();
  let cold = timed run_full_suite in
  Printf.printf "  cold cache:     %6.2f s  (%.2fx vs bypassed)\n%!" cold (uncached /. cold);
  let warm = timed run_full_suite in
  Printf.printf "  warm cache:     %6.2f s  (%.2fx vs bypassed)\n%!" warm (uncached /. warm);
  (* Warm disk, cold process: flush, drop the in-memory tables, reload
     from the store files, rerun. *)
  let store_dir = Filename.concat (Filename.get_temp_dir_name ()) "gpp-bench-store" in
  ignore (Gpp_cache.Store.clear_dir ~dir:store_dir);
  Gpp_cache.Memo.flush_disk ~dir:store_dir ();
  Gpp_cache.Memo.clear_all ();
  let load = timed (fun () -> Gpp_cache.Memo.load_disk ~dir:store_dir ()) in
  let disk_warm = timed run_full_suite in
  Printf.printf "  warm disk:      %6.2f s  (%.2fx vs bypassed; store load %.3f s)\n%!" disk_warm
    (uncached /. disk_warm) load;
  List.iter
    (fun s -> Format.printf "  %a@." Gpp_cache.Memo.pp_snapshot s)
    (Gpp_cache.Memo.snapshots ());
  ignore (Gpp_cache.Store.clear_dir ~dir:store_dir)

let experiment_tests =
  List.map
    (fun (e : Gpp_experiments.Suite.entry) ->
      Test.make ~name:e.Gpp_experiments.Suite.id
        (Staged.stage (fun () ->
             let ctx = Lazy.force ctx in
             ignore (e.Gpp_experiments.Suite.run ctx))))
    Gpp_experiments.Suite.all

(* Pipeline-stage benches: how expensive each phase of GROPHECY++ itself
   is (the framework's own cost, not the modeled GPU time). *)

let machine = Gpp_arch.Machine.argonne_node

let session = lazy (Gpp_core.Grophecy.init machine)

(* Observability overhead: time a span-heavy workload (the hotspot
   transform search, ~hundreds of candidate spans) with the obs layer
   idle, enabled, and enabled + tracing to a file.  Run manually ahead
   of the bechamel suites — toggling the process-wide flag inside a
   staged test would contaminate every other bench. *)

let obs_overhead () =
  print_endline "obs overhead: transform search (idle / enabled / enabled+trace)";
  let program = Gpp_workloads.Hotspot.program ~n:1024 () in
  let kernel = List.hd program.Gpp_skeleton.Program.kernels in
  let search () =
    ignore
      (Gpp_cache.Control.without_cache (fun () ->
           Gpp_transform.Explore.search ~gpu:machine.Gpp_arch.Machine.gpu
             ~decls:program.Gpp_skeleton.Program.arrays kernel))
  in
  let reps = 20 in
  let timed_reps () =
    search ();
    (* warm-up *)
    let t0 = Sys.time () in
    for _ = 1 to reps do
      search ()
    done;
    (Sys.time () -. t0) /. float_of_int reps *. 1e3
  in
  let idle = timed_reps () in
  Printf.printf "  obs idle:        %8.3f ms/search\n%!" idle;
  Gpp_obs.Obs.set_enabled true;
  let enabled = timed_reps () in
  Printf.printf "  obs enabled:     %8.3f ms/search  (+%.1f%%)\n%!" enabled
    ((enabled /. idle -. 1.0) *. 100.0);
  let trace_file = Filename.temp_file "gpp-bench-trace" ".json" in
  (match Gpp_obs.Obs.start_trace trace_file with
  | Ok () -> ()
  | Error e -> failwith ("start_trace: " ^ e));
  let traced = timed_reps () in
  Gpp_obs.Obs.stop_trace ();
  Printf.printf "  obs + trace:     %8.3f ms/search  (+%.1f%%)\n%!" traced
    ((traced /. idle -. 1.0) *. 100.0);
  Sys.remove trace_file;
  Gpp_obs.Obs.set_enabled false;
  Gpp_obs.Obs.reset ()

let stage_tests =
  [
    Test.make ~name:"stage:calibration"
      (Staged.stage (fun () -> ignore (Gpp_core.Grophecy.init machine)));
    Test.make ~name:"stage:transfer-analysis"
      (Staged.stage
         (let program = Gpp_workloads.Cfd.program ~nelem:97_000 () in
          fun () -> ignore (Gpp_dataflow.Analyzer.analyze program)));
    Test.make ~name:"stage:transform-search"
      (Staged.stage
         (let program = Gpp_workloads.Hotspot.program ~n:1024 () in
          let kernel = List.hd program.Gpp_skeleton.Program.kernels in
          fun () ->
            ignore
              (Gpp_transform.Explore.search ~gpu:machine.Gpp_arch.Machine.gpu
                 ~decls:program.Gpp_skeleton.Program.arrays kernel)));
    Test.make ~name:"stage:projection"
      (Staged.stage
         (let program = Gpp_workloads.Srad.program ~n:1024 () in
          fun () ->
            let s = Lazy.force session in
            ignore
              (Gpp_core.Projection.project ~machine ~h2d:s.Gpp_core.Grophecy.h2d
                 ~d2h:s.Gpp_core.Grophecy.d2h program)));
    Test.make ~name:"stage:gpu-simulation"
      (Staged.stage
         (let program = Gpp_workloads.Srad.program ~n:1024 () in
          let s = Lazy.force session in
          let projection =
            match
              Gpp_core.Projection.project ~machine ~h2d:s.Gpp_core.Grophecy.h2d
                ~d2h:s.Gpp_core.Grophecy.d2h program
            with
            | Ok p -> p
            | Error e -> failwith (Gpp_core.Error.to_string e)
          in
          fun () ->
            ignore
              (Gpp_core.Measurement.measure ~runs:1 ~link:s.Gpp_core.Grophecy.application_link
                 projection)));
    Test.make ~name:"stage:full-analysis"
      (Staged.stage
         (let program = Gpp_workloads.Stassuij.program () in
          fun () ->
            let s = Lazy.force session in
            ignore
              (Gpp_core.Grophecy.analyze
                 ~params:{ Gpp_core.Grophecy.default_params with Gpp_core.Grophecy.runs = Some 3 }
                 s program)));
  ]

let all_tests = experiment_tests @ stage_tests

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ~stabilize:false ()
  in
  List.map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      Analyze.all ols Toolkit.Instance.monotonic_clock raw)
    all_tests

let () =
  cache_ab ();
  obs_overhead ();
  (* Force the shared context up front so its (substantial) cost is not
     attributed to the first benchmark. *)
  print_endline "building measurement context (calibration + all Table I workloads)...";
  ignore (Lazy.force ctx);
  ignore (Lazy.force session);
  print_endline "running benchmarks...";
  let results = benchmark () in
  Printf.printf "%-28s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
          in
          let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
          Printf.printf "%-28s %13.3f ms %10.3f\n" name (estimate /. 1e6) r2)
        result)
    results
