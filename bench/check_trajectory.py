#!/usr/bin/env python3
"""Bench-trajectory guard: compare fresh BENCH_*.json files against the
committed copies and fail on order-of-magnitude regressions.

CI runners are noisy, so this is a tripwire, not a benchmark: a metric
may drift inside a wide tolerance band (warn only); crossing the band
(default 2x on wall-time metrics) fails the build.  Usage:

    python3 bench/check_trajectory.py BASELINE_DIR FRESH_DIR
    python3 bench/check_trajectory.py --self-test

Each directory holds BENCH_batch.json / BENCH_analysis.json /
BENCH_serve.json (missing files are skipped with a warning, so the
guard keeps working if a bench leg is ever split out).

Metric direction matters: for times (seconds / ms) a regression is the
fresh value growing; for rates (req/s) and speedups it is the fresh
value shrinking.  A "note" field in a report marks its speedup as
non-comparable (e.g. a 1-core runner timing a 2-domain pool measures
scheduling overhead, not scaling) — noted speedups are reported but
never enforced.
"""

import json
import sys
import tempfile
from pathlib import Path

FAIL_RATIO = 2.0  # fail when a metric regresses by more than this
WARN_RATIO = 1.25  # mention anything drifting past this
EPSILON = 1e-3  # ignore sub-millisecond absolute noise entirely

# (file, metric, direction); direction "lower" = lower is better.
METRICS = [
    ("BENCH_batch.json", "sequential_s", "lower"),
    ("BENCH_batch.json", "parallel_s", "lower"),
    ("BENCH_batch.json", "speedup", "higher"),
    ("BENCH_analysis.json", "plan_conservative_ms", "lower"),
    ("BENCH_analysis.json", "plan_minimal_ms", "lower"),
    ("BENCH_analysis.json", "lint_ms", "lower"),
    ("BENCH_analysis.json", "iteration_scaling", "lower"),
    ("BENCH_serve.json", "cold_first_request_s", "lower"),
    ("BENCH_serve.json", "warm_ms_per_request", "lower"),
    ("BENCH_serve.json", "warm_requests_per_s", "higher"),
    ("BENCH_serve.json", "healthz_requests_per_s", "higher"),
    ("BENCH_predict.json", "fit_s", "lower"),
    ("BENCH_predict.json", "analytic_predictions_per_s", "higher"),
    ("BENCH_predict.json", "scaled_predictions_per_s", "higher"),
    ("BENCH_predict.json", "learned_predictions_per_s", "higher"),
]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def regression_ratio(direction, baseline, fresh):
    """How many times worse the fresh value is (1.0 = unchanged)."""
    if baseline <= 0 or fresh <= 0:
        return 1.0
    return fresh / baseline if direction == "lower" else baseline / fresh


def check(baseline_dir, fresh_dir):
    failures, warnings = [], []
    reports = {}
    for name in sorted({m[0] for m in METRICS}):
        base = load(Path(baseline_dir) / name)
        new = load(Path(fresh_dir) / name)
        if base is None or new is None:
            warnings.append(f"{name}: missing from "
                            f"{'baseline' if base is None else 'fresh run'}, skipped")
            continue
        reports[name] = (base, new)

    for name, metric, direction in METRICS:
        if name not in reports:
            continue
        base, new = reports[name]
        if metric not in base or metric not in new:
            warnings.append(f"{name}:{metric}: absent, skipped")
            continue
        b, f = float(base[metric]), float(new[metric])
        noted = metric == "speedup" and ("note" in base or "note" in new)
        if abs(f - b) <= EPSILON:
            continue
        ratio = regression_ratio(direction, b, f)
        line = f"{name}:{metric}: {b:g} -> {f:g} ({ratio:.2f}x worse)"
        if noted:
            warnings.append(line + " [not enforced: " +
                            (new.get("note") or base.get("note")) + "]")
        elif ratio > FAIL_RATIO:
            failures.append(line)
        elif ratio > WARN_RATIO:
            warnings.append(line)

    for w in warnings:
        print(f"warning: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        print(f"bench trajectory: {len(failures)} metric(s) regressed past "
              f"{FAIL_RATIO}x; see above")
        return 1
    print(f"bench trajectory: ok ({len(warnings)} warning(s))")
    return 0


def self_test():
    """Prove the guard fires: inject a fake 3x wall-time regression and a
    noted speedup drop, and require exactly the right verdicts."""
    base = {
        "BENCH_batch.json": {
            "benchmark": "batch-matrix", "cells": 20, "jobs": 2, "host_cores": 1,
            "sequential_s": 10.0, "parallel_s": 12.0, "speedup": 0.833,
            "identical_tsv": True,
            "note": "host has 1 core(s) for 2 domains",
        },
        "BENCH_analysis.json": {
            "benchmark": "analysis", "plan_conservative_ms": 0.125,
            "plan_minimal_ms": 0.190, "lint_ms": 1.5, "iteration_scaling": 1.1,
        },
        "BENCH_serve.json": {
            "benchmark": "serve", "cold_first_request_s": 5.0,
            "warm_ms_per_request": 0.2, "warm_requests_per_s": 5000.0,
            "healthz_requests_per_s": 9000.0,
        },
        "BENCH_predict.json": {
            "benchmark": "predict", "training_workloads": 10, "assembly_reps": 200,
            "fit_s": 6.0, "analytic_predictions_per_s": 6000000.0,
            "scaled_predictions_per_s": 7000000.0, "learned_predictions_per_s": 800000.0,
        },
    }
    import copy

    ok = copy.deepcopy(base)
    ok["BENCH_serve.json"]["warm_requests_per_s"] = 4500.0  # mild drift: warn at most
    regressed = copy.deepcopy(base)
    regressed["BENCH_batch.json"]["sequential_s"] = 30.0  # 3x: must fail
    regressed["BENCH_batch.json"]["speedup"] = 0.4  # noted: must NOT fail
    regressed["BENCH_serve.json"]["warm_requests_per_s"] = 3500.0  # 1.43x: warn

    def write_all(d, reports):
        for name, data in reports.items():
            (Path(d) / name).write_text(json.dumps(data))

    with tempfile.TemporaryDirectory() as b, tempfile.TemporaryDirectory() as f:
        write_all(b, base)
        write_all(f, ok)
        print("-- self-test: healthy run must pass")
        if check(b, f) != 0:
            print("self-test FAILED: healthy run was rejected")
            return 1
        write_all(f, regressed)
        print("-- self-test: injected 3x regression must fail")
        if check(b, f) != 1:
            print("self-test FAILED: injected regression was not caught")
            return 1
    print("self-test: ok (guard fires on regression, tolerates noise)")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[0])
        print("usage: check_trajectory.py BASELINE_DIR FRESH_DIR | --self-test")
        return 2
    return check(argv[1], argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
