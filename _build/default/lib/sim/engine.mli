(** Discrete-event simulation engine.

    Thin sequential kernel: a simulated clock and a queue of callbacks.
    The GPU and PCIe simulators schedule work as events; the engine
    guarantees callbacks execute in non-decreasing time order, with
    insertion order breaking ties. *)

type t

val create : unit -> t
(** Fresh engine with the clock at 0. *)

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time] precedes the current clock. *)

val run : t -> unit
(** Process events until the queue drains.  The clock is left at the
    time of the last event. *)

val run_until : t -> float -> unit
(** Process events with timestamps [<= deadline]; then advance the clock
    to [deadline] if it has not passed it already. *)

val pending : t -> int
(** Number of queued events. *)

val processed : t -> int
(** Number of events executed since creation (for sanity checks and
    simulator statistics). *)
