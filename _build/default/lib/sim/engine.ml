type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); clock = 0.0; processed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      f t;
      true

let run t = while step t do () done

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= deadline -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.clock < deadline then t.clock <- deadline

let pending t = Event_queue.length t.queue

let processed t = t.processed
