(** A single-server FIFO resource with deterministic service.

    Models a serialization point — a DRAM channel, the PCIe link, an
    SM's issue port — without event-queue overhead: each request is
    admitted at [max arrival next_free] and occupies the server for its
    service time.  Busy time and queueing delay are tracked so simulator
    back-ends can report utilization. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val reserve : t -> arrival:float -> service:float -> float * float
(** [reserve t ~arrival ~service] books the server and returns
    [(start, finish)] with [start = max arrival next_free] and
    [finish = start +. service].  Requests must be issued in
    non-decreasing arrival order (FIFO).
    @raise Invalid_argument on negative [service] or on an arrival that
    precedes the previous request's arrival. *)

val next_free : t -> float
(** Earliest time a new request could begin service. *)

val busy_time : t -> float
(** Total time the server has spent serving requests. *)

val queueing_delay : t -> float
(** Accumulated waiting time ([start - arrival] summed over
    requests). *)

val served : t -> int
(** Number of completed reservations. *)

val utilization : t -> horizon:float -> float
(** [busy_time / horizon]; 0 when [horizon <= 0]. *)

val reset : t -> unit
(** Return the server to its initial idle state. *)
