(** Priority queue of timestamped events.

    A binary min-heap keyed by [(time, sequence)]: ties in time are
    broken by insertion order, which keeps simulations deterministic
    regardless of heap internals. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at [time].  @raise Invalid_argument if [time] is not
    finite (NaN or infinite timestamps would corrupt the ordering). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, insertion order breaking
    ties. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it. *)
