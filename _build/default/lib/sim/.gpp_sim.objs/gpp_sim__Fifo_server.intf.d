lib/sim/fifo_server.mli:
