lib/sim/fifo_server.ml: Float
