lib/sim/event_queue.ml: Array Float Obj
