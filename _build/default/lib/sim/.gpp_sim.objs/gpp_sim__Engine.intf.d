lib/sim/engine.mli:
