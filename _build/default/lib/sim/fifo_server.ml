type t = {
  server_name : string;
  mutable next_free : float;
  mutable last_arrival : float;
  mutable busy : float;
  mutable waiting : float;
  mutable served : int;
}

let create ?(name = "server") () =
  { server_name = name; next_free = 0.0; last_arrival = 0.0; busy = 0.0; waiting = 0.0; served = 0 }

let name t = t.server_name

let reserve t ~arrival ~service =
  if service < 0.0 || not (Float.is_finite service) then
    invalid_arg "Fifo_server.reserve: bad service time";
  if arrival < t.last_arrival then
    invalid_arg "Fifo_server.reserve: arrivals must be non-decreasing (FIFO)";
  t.last_arrival <- arrival;
  let start = Float.max arrival t.next_free in
  let finish = start +. service in
  t.next_free <- finish;
  t.busy <- t.busy +. service;
  t.waiting <- t.waiting +. (start -. arrival);
  t.served <- t.served + 1;
  (start, finish)

let next_free t = t.next_free

let busy_time t = t.busy

let queueing_delay t = t.waiting

let served t = t.served

let utilization t ~horizon = if horizon <= 0.0 then 0.0 else t.busy /. horizon

let reset t =
  t.next_free <- 0.0;
  t.last_arrival <- 0.0;
  t.busy <- 0.0;
  t.waiting <- 0.0;
  t.served <- 0
