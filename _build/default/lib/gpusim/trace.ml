type event = {
  name : string;
  category : string;
  track : int;
  start : float;
  duration : float;
}

let dram_track = -1

type t = { capacity : int; mutable events : event list; mutable count : int; mutable dropped : int }

let create ?(capacity = 200_000) () = { capacity; events = []; count = 0; dropped = 0 }

let record t ~name ~category ~track ~start ~duration =
  if t.count >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    t.events <- { name; category; track; start; duration } :: t.events;
    t.count <- t.count + 1
  end

let events t = List.rev t.events

let length t = t.count

let dropped t = t.dropped

let span t = List.fold_left (fun acc e -> Float.max acc (e.start +. e.duration)) 0.0 t.events

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_chrome_json t =
  let buf = Buffer.create (t.count * 96) in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d}"
           (json_escape e.name) (json_escape e.category) (e.start *. 1e6) (e.duration *. 1e6)
           e.track))
    (events t);
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let summary t =
  let by_category = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let count, busy = try Hashtbl.find by_category e.category with Not_found -> (0, 0.0) in
      Hashtbl.replace by_category e.category (count + 1, busy +. e.duration))
    t.events;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d events over %s (%d dropped)\n" t.count
       (Gpp_util.Units.time_to_string (span t))
       t.dropped);
  Hashtbl.fold (fun category (count, busy) acc -> (category, count, busy) :: acc) by_category []
  |> List.sort compare
  |> List.iter (fun (category, count, busy) ->
         Buffer.add_string buf
           (Printf.sprintf "  %-8s %7d events, %s busy\n" category count
              (Gpp_util.Units.time_to_string busy)));
  Buffer.contents buf
