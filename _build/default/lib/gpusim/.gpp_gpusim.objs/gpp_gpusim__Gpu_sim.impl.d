lib/gpusim/gpu_sim.ml: Array Float Gpp_arch Gpp_model Gpp_sim Gpp_util Printf Trace
