lib/gpusim/trace.ml: Buffer Char Float Gpp_util Hashtbl List Printf String
