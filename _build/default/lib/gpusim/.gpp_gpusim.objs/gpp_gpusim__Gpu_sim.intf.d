lib/gpusim/gpu_sim.mli: Gpp_arch Gpp_model Gpp_util Result Trace
