lib/gpusim/trace.mli:
