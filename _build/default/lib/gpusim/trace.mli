(** Execution traces of simulated kernel launches.

    When a trace collector is passed to {!Gpu_sim.run}, the simulator
    records block lifetimes, per-warp compute chunks, and DRAM service
    windows.  The result can be summarized as text or exported in the
    Chrome trace-event format (load [chrome://tracing] or Perfetto on
    the JSON file) to see wave scheduling, issue serialization, and
    memory contention visually. *)

type event = {
  name : string;
  category : string;  (** ["block"], ["compute"], or ["dram"]. *)
  track : int;  (** SM index; {!dram_track} for the memory channel. *)
  start : float;  (** Seconds of simulated time. *)
  duration : float;
}

val dram_track : int
(** Track id used for DRAM service windows. *)

type t

val create : ?capacity:int -> unit -> t
(** Collector holding up to [capacity] events (default 200_000); later
    events are counted but dropped. *)

val record :
  t -> name:string -> category:string -> track:int -> start:float -> duration:float -> unit

val events : t -> event list
(** In recording order. *)

val length : t -> int

val dropped : t -> int

val span : t -> float
(** Latest event end time. *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON (an array of complete ["X"] events with
    microsecond timestamps). *)

val summary : t -> string
(** Aggregate text summary: event counts and busy time per category. *)
