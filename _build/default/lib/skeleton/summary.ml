type t = {
  kernel_name : string;
  trip_count : int;
  parallel_iterations : int;
  flops_per_iter : float;
  int_ops_per_iter : float;
  heavy_ops_per_iter : float;
  loads_per_iter : float;
  stores_per_iter : float;
  load_bytes_per_iter : float;
  store_bytes_per_iter : float;
  divergent_weight : float;
  has_indirect : bool;
}

type acc = {
  mutable flops : float;
  mutable int_ops : float;
  mutable heavy_ops : float;
  mutable loads : float;
  mutable stores : float;
  mutable load_bytes : float;
  mutable store_bytes : float;
  mutable divergent : float;
  mutable statements : float;
  mutable indirect : bool;
}

let of_kernel ~decls (k : Ir.kernel) =
  let elem_bytes array =
    match List.find_opt (fun (d : Decl.t) -> d.name = array) decls with
    | Some d -> float_of_int d.elem_bytes
    | None -> invalid_arg (Printf.sprintf "Summary.of_kernel: undeclared array %s" array)
  in
  let acc =
    {
      flops = 0.0;
      int_ops = 0.0;
      heavy_ops = 0.0;
      loads = 0.0;
      stores = 0.0;
      load_bytes = 0.0;
      store_bytes = 0.0;
      divergent = 0.0;
      statements = 0.0;
      indirect = false;
    }
  in
  let rec walk weight under_divergent stmts =
    List.iter
      (fun stmt ->
        match (stmt : Ir.stmt) with
        | Ref r ->
            acc.statements <- acc.statements +. weight;
            if under_divergent then acc.divergent <- acc.divergent +. weight;
            let bytes = weight *. elem_bytes r.array in
            (match r.pattern with Indirect _ -> acc.indirect <- true | Affine _ -> ());
            (match r.access with
            | Load ->
                acc.loads <- acc.loads +. weight;
                acc.load_bytes <- acc.load_bytes +. bytes
            | Store ->
                acc.stores <- acc.stores +. weight;
                acc.store_bytes <- acc.store_bytes +. bytes)
        | Compute { flops; int_ops; heavy_ops } ->
            acc.statements <- acc.statements +. weight;
            if under_divergent then acc.divergent <- acc.divergent +. weight;
            acc.flops <- acc.flops +. (weight *. flops);
            acc.int_ops <- acc.int_ops +. (weight *. int_ops);
            acc.heavy_ops <- acc.heavy_ops +. (weight *. heavy_ops)
        | Branch { probability; divergent; body } ->
            walk (weight *. probability) (under_divergent || divergent) body)
      stmts
  in
  walk 1.0 false k.body;
  {
    kernel_name = k.name;
    trip_count = Ir.trip_count k;
    parallel_iterations = Ir.parallel_iterations k;
    flops_per_iter = acc.flops;
    int_ops_per_iter = acc.int_ops;
    heavy_ops_per_iter = acc.heavy_ops;
    loads_per_iter = acc.loads;
    stores_per_iter = acc.stores;
    load_bytes_per_iter = acc.load_bytes;
    store_bytes_per_iter = acc.store_bytes;
    divergent_weight = (if acc.statements > 0.0 then acc.divergent /. acc.statements else 0.0);
    has_indirect = acc.indirect;
  }

let total_flops t = t.flops_per_iter *. float_of_int t.trip_count

let total_bytes t = (t.load_bytes_per_iter +. t.store_bytes_per_iter) *. float_of_int t.trip_count

let arithmetic_intensity t =
  let bytes = total_bytes t in
  if bytes = 0.0 then Float.infinity else total_flops t /. bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>kernel %s: %d iterations (%d parallel)@,\
     per iteration: %.2f flops, %.2f int ops, %.2f heavy, %.2f loads (%.1f B), %.2f stores (%.1f B)@,\
     divergent weight %.2f%s@]"
    t.kernel_name t.trip_count t.parallel_iterations t.flops_per_iter t.int_ops_per_iter
    t.heavy_ops_per_iter t.loads_per_iter t.load_bytes_per_iter t.stores_per_iter
    t.store_bytes_per_iter
    t.divergent_weight
    (if t.has_indirect then ", has indirect accesses" else "")
