lib/skeleton/ir.ml: Decl Format Index_expr List Printf Result String
