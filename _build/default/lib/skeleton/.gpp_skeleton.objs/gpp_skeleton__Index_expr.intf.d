lib/skeleton/index_expr.mli: Format
