lib/skeleton/program.ml: Decl Format Ir List Printf Result String
