lib/skeleton/ir.mli: Decl Format Index_expr
