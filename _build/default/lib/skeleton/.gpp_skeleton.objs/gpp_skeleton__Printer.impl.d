lib/skeleton/printer.ml: Buffer Decl Index_expr Ir List Printf Program String
