lib/skeleton/summary.ml: Decl Float Format Ir List Printf
