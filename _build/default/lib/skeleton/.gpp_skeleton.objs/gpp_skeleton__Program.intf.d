lib/skeleton/program.mli: Decl Format Ir
