lib/skeleton/decl.ml: Format List Printf String
