lib/skeleton/parser.ml: Buffer Decl Format In_channel Index_expr Ir List Printf Program String
