lib/skeleton/parser.mli: Program
