lib/skeleton/decl.mli: Format
