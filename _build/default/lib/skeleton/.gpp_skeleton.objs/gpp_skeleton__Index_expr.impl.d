lib/skeleton/index_expr.ml: Format Int List Map String
