lib/skeleton/summary.mli: Decl Format Ir
