lib/skeleton/printer.mli: Index_expr Program
