(** Affine index expressions over loop variables.

    A code skeleton describes each array subscript as an affine
    combination of surrounding loop variables, e.g. [i*N + j + 1].  The
    BRS analyzer derives accessed array sections from these expressions,
    and the transformation engine derives memory-coalescing behaviour
    from the coefficient of the thread-mapped loop variable. *)

type t
(** An expression [const + sum_i coeff_i * var_i].  Variables with a
    zero coefficient are never stored. *)

val const : int -> t

val var : ?coeff:int -> string -> t
(** [var v] is [1*v]; [var ~coeff:c v] is [c*v]. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : int -> t -> t

val offset : t -> int -> t
(** [offset e k] is [e + k]. *)

val constant_part : t -> int

val coeff_of : t -> string -> int
(** Coefficient of a variable; 0 when absent. *)

val vars : t -> string list
(** Variables with non-zero coefficients, sorted by name. *)

val is_constant : t -> bool

val eval : (string -> int) -> t -> int
(** Evaluate under an environment mapping each variable to a value.
    The environment is consulted only for variables present in the
    expression. *)

val range : (string -> int * int) -> t -> int * int
(** [range bounds e] is the inclusive [(min, max)] of [e] when each
    variable [v] ranges over the inclusive interval [bounds v].
    Standard interval arithmetic: a positive coefficient contributes its
    variable's lower bound to the minimum, a negative one contributes
    the upper bound. *)

val stride_of : t -> string -> int
(** Alias for {!coeff_of}: how far the subscript moves per unit step of
    the given loop variable. *)

val gcd_stride : t -> except:string list -> int
(** GCD of the coefficients of all variables {e not} listed in
    [except]; 0 if no such variable occurs.  Used to derive the stride
    of the section swept by inner loops while outer loops are fixed. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
