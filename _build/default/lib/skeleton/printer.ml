let expr_to_skel e =
  let vars = Index_expr.vars e in
  let buf = Buffer.create 16 in
  List.iteri
    (fun i v ->
      let c = Index_expr.coeff_of e v in
      if i = 0 then begin
        if c = 1 then Buffer.add_string buf v
        else if c = -1 then Buffer.add_string buf ("-" ^ v)
        else Buffer.add_string buf (Printf.sprintf "%d*%s" c v)
      end
      else if c = 1 then Buffer.add_string buf ("+" ^ v)
      else if c = -1 then Buffer.add_string buf ("-" ^ v)
      else if c > 0 then Buffer.add_string buf (Printf.sprintf "+%d*%s" c v)
      else Buffer.add_string buf (Printf.sprintf "-%d*%s" (abs c) v)
    )
    vars;
  let const = Index_expr.constant_part e in
  if vars = [] then Buffer.add_string buf (string_of_int const)
  else if const > 0 then Buffer.add_string buf (Printf.sprintf "+%d" const)
  else if const < 0 then Buffer.add_string buf (Printf.sprintf "-%d" (abs const));
  Buffer.contents buf

(* %.17g guarantees float round-tripping; %g keeps common values tidy. *)
let float_to_skel f =
  let short = Printf.sprintf "%g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let index_list indices = "[" ^ String.concat ", " (List.map expr_to_skel indices) ^ "]"

let rec stmt_lines indent (stmt : Ir.stmt) =
  let pad = String.make indent ' ' in
  match stmt with
  | Ir.Ref { array; access; pattern = Ir.Affine indices } ->
      let verb = match access with Ir.Load -> "load" | Ir.Store -> "store" in
      [ Printf.sprintf "%s%s %s %s" pad verb array (index_list indices) ]
  | Ir.Ref { array; access; pattern = Ir.Indirect { index_array; offset } } ->
      let verb = match access with Ir.Load -> "load" | Ir.Store -> "store" in
      let suffix = match offset with [] -> "" | offset -> " " ^ index_list offset in
      [ Printf.sprintf "%s%s %s via %s%s" pad verb array index_array suffix ]
  | Ir.Compute { flops; int_ops; heavy_ops } ->
      let fields =
        List.filter_map
          (fun (name, v) ->
            if v = 0.0 then None else Some (Printf.sprintf "%s %s" name (float_to_skel v)))
          [ ("flops", flops); ("int", int_ops); ("heavy", heavy_ops) ]
      in
      let fields = if fields = [] then [ "flops 0" ] else fields in
      [ Printf.sprintf "%scompute %s" pad (String.concat " " fields) ]
  | Ir.Branch { probability; divergent; body } ->
      (Printf.sprintf "%sbranch %s%s {" pad (float_to_skel probability)
         (if divergent then "" else " uniform"))
      :: List.concat_map (stmt_lines (indent + 2)) body
      @ [ pad ^ "}" ]

let decl_line (d : Decl.t) =
  let kind =
    match d.Decl.kind with
    | Decl.Dense -> "dense"
    | Decl.Sparse { nnz = Some n } -> Printf.sprintf "sparse nnz %d" n
    | Decl.Sparse { nnz = None } -> "sparse"
  in
  Printf.sprintf "array %s %s %s elem %d" d.Decl.name kind
    (String.concat " " (List.map string_of_int d.Decl.dims))
    d.Decl.elem_bytes

let kernel_lines (k : Ir.kernel) =
  (Printf.sprintf "kernel %s" k.Ir.name)
  :: List.map
       (fun (l : Ir.loop) ->
         Printf.sprintf "  loop %s %s %d" l.Ir.var
           (if l.Ir.parallel then "parallel" else "serial")
           l.Ir.extent)
       k.Ir.loops
  @ List.concat_map (stmt_lines 2) k.Ir.body
  @ [ "end" ]

let rec invocation_lines indent inv =
  let pad = String.make indent ' ' in
  match inv with
  | Program.Call name -> [ Printf.sprintf "%scall %s" pad name ]
  | Program.Repeat (n, body) ->
      (Printf.sprintf "%srepeat %d {" pad n)
      :: List.concat_map (invocation_lines (indent + 2)) body
      @ [ pad ^ "}" ]

let to_skel (p : Program.t) =
  let lines =
    [ Printf.sprintf "program %s" p.Program.name; "" ]
    @ List.map decl_line p.Program.arrays
    @ (match p.Program.temporaries with
      | [] -> []
      | temps -> [ "temporary " ^ String.concat " " temps ])
    @ [ "" ]
    @ List.concat_map (fun k -> kernel_lines k @ [ "" ]) p.Program.kernels
    @ [ "schedule" ]
    @ List.concat_map (invocation_lines 2) p.Program.schedule
    @ [ "end" ]
  in
  String.concat "\n" lines ^ "\n"
